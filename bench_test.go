// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per artifact) plus the ablations
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-relevant metrics (latency in ns, normalized
// ratios, throughput) via b.ReportMetric so `go test -bench` output doubles
// as the experiment record; see EXPERIMENTS.md.
package repro

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// metric builds a ReportMetric unit label (no whitespace allowed).
func metric(parts ...string) string {
	s := strings.Join(parts, "_")
	s = strings.ReplaceAll(s, " ", "-")
	s = strings.ReplaceAll(s, "/", "-")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	return s
}

// benchFig8 keeps simulation benchmarks tractable while preserving shape;
// cmd/edmbench runs the paper-scale 144-node configuration.
func benchFig8() experiments.Fig8Config {
	return experiments.Fig8Config{Nodes: 48, Bandwidth: 100, OpsPerRun: 6000, Seed: 1}
}

// BenchmarkTable1 regenerates Table 1: unloaded remote read/write fabric
// latency for all four stacks, with EDM measured on the block-level fabric.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		op := "read"
		if r.Write {
			op = "write"
		}
		b.ReportMetric(r.Total.Nanoseconds(), metric(r.Stack.String(), op, "ns"))
	}
}

// BenchmarkTable1EDMMeasured times the block-level testbed round trip
// itself: one 64 B remote read per iteration.
func BenchmarkTable1EDMMeasured(b *testing.B) {
	var read, write sim.Time
	for i := 0; i < b.N; i++ {
		var err error
		read, write, err = experiments.MeasureEDMUnloaded()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(read.Nanoseconds(), "read_ns")
	b.ReportMetric(write.Nanoseconds(), "write_ns")
}

// BenchmarkFig5 regenerates the Figure 5 cycle breakdown.
func BenchmarkFig5(b *testing.B) {
	var rc, wc int
	for i := 0; i < b.N; i++ {
		rc, wc = experiments.Fig5Totals()
	}
	b.ReportMetric(float64(rc), "read_cycles")
	b.ReportMetric(float64(wc), "write_cycles")
}

// BenchmarkFig6 regenerates Figure 6: YCSB throughput, EDM vs RDMA.
func BenchmarkFig6(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6()
	}
	for _, r := range rows {
		b.ReportMetric(r.EDMMrps, metric(r.Workload.String(), "EDM", "Mrps"))
		b.ReportMetric(r.RDMAMrps, metric(r.Workload.String(), "RDMA", "Mrps"))
	}
}

// BenchmarkFig7 regenerates Figure 7: YCSB-A latency across local:remote
// splits on the block-level fabric.
func BenchmarkFig7(b *testing.B) {
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7(200)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.EDMNanos, metric("EDM", r.Label, "ns"))
	}
}

// BenchmarkFig8aLoadSweep regenerates Figure 8a's load sweep (reads and
// writes, all seven protocols).
func BenchmarkFig8aLoadSweep(b *testing.B) {
	var rows []experiments.Fig8aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8a(benchFig8(), []float64{0.2, 0.8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Load == 0.8 {
			b.ReportMetric(r.WritesNorm, metric(r.Proto, "w0.8", "norm"))
		}
	}
}

// BenchmarkFig8aMix regenerates Figure 8a's write:read mixture sweep at
// load 0.8.
func BenchmarkFig8aMix(b *testing.B) {
	var rows []experiments.Fig8aMixRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8aMix(benchFig8(), []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Norm, metric(r.Proto, "mix50", "norm"))
	}
}

// BenchmarkFig8b regenerates Figure 8b: normalized MCT on the application
// traces (subset per iteration for benchmark runtime; cmd/edmbench runs all
// five at full scale).
func BenchmarkFig8b(b *testing.B) {
	cfg := benchFig8()
	cfg.OpsPerRun = 2000
	var rows []experiments.Fig8bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8b(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Proto == "EDM" || r.Proto == "CXL" || r.Proto == "Fastpass" {
			b.ReportMetric(r.NormMCT, metric(r.App, r.Proto))
		}
	}
}

// BenchmarkAblationChunkSize sweeps the grant chunk size (§3.1.3).
func BenchmarkAblationChunkSize(b *testing.B) {
	cfg := benchFig8()
	cfg.OpsPerRun = 2000
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationChunkSize(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Norm, metric("chunk", r.Value))
	}
}

// BenchmarkAblationNotifyCap sweeps X (§3.1.2, paper picks X=3).
func BenchmarkAblationNotifyCap(b *testing.B) {
	cfg := benchFig8()
	cfg.OpsPerRun = 2000
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationNotifyCap(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Norm, metric("X", r.Value))
	}
}

// BenchmarkAblationPolicy compares FCFS and SRPT on a heavy-tailed trace.
func BenchmarkAblationPolicy(b *testing.B) {
	cfg := benchFig8()
	cfg.OpsPerRun = 2000
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPolicy(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Norm, metric("policy", r.Value))
	}
}

// BenchmarkAblationPIMIters caps the matching iterations per round.
func BenchmarkAblationPIMIters(b *testing.B) {
	cfg := benchFig8()
	cfg.OpsPerRun = 2000
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPIMIterations(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Norm, metric("iters", r.Value))
	}
}

// BenchmarkAblationPreemption measures intra-frame preemption on/off
// (§3.2.3) on the block-level testbed.
func BenchmarkAblationPreemption(b *testing.B) {
	var res []experiments.PreemptionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationPreemption(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		name := "preempt_mean_ns"
		if r.Policy != "preempting (fair)" {
			name = "nopreempt_mean_ns"
		}
		b.ReportMetric(r.MeanReadNs, name)
	}
}

// BenchmarkIncast runs the bonus 16-to-1 incast comparison.
func BenchmarkIncast(b *testing.B) {
	var rows []experiments.IncastResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Incast(benchFig8(), 16, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanNorm, metric(r.Proto, "mean"))
	}
}

// BenchmarkSchedulerThroughput measures raw scheduler decision rate: grants
// issued per second of wall time under a saturated permutation demand.
func BenchmarkSchedulerThroughput(b *testing.B) {
	const ports = 64
	eng := sim.NewEngine()
	cfg := sched.DefaultConfig(ports)
	s := sched.New(eng, cfg)
	grants := 0
	s.OnGrant = func(g sched.Grant) {
		if g.Final {
			// Refill the pair to keep the scheduler saturated.
			ref := g.MsgRef
			ref.ID += ports
			_ = s.Notify(sched.MsgRef{Src: ref.Src, Dst: ref.Dst, ID: ref.ID, Size: 4096})
		}
		grants++
	}
	for i := 0; i < ports; i++ {
		_ = s.Notify(sched.MsgRef{Src: i, Dst: (i + 1) % ports, ID: uint64(i), Size: 4096})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("scheduler ran dry")
		}
	}
	b.ReportMetric(float64(grants)/float64(b.N), "grants-per-event")
}

// BenchmarkFabric64BRead measures the block-level simulator's wall-clock
// cost per simulated 64 B read.
func BenchmarkFabric64BRead(b *testing.B) {
	read, _, err := experiments.MeasureEDMUnloaded()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MeasureEDMUnloaded(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(read.Nanoseconds(), "simulated_ns")
}

// BenchmarkNetsimEDM measures simulator throughput: simulated ops per
// wall-clock second at 48 nodes, load 0.8.
func BenchmarkNetsimEDM(b *testing.B) {
	ops, err := workload.Generate(workload.GenConfig{
		Nodes: 48, Load: 0.8, Bandwidth: 100,
		Sizes: workload.Fixed(64), ReadFrac: 0.5, Count: 5000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := netsim.Config{Nodes: 48, Bandwidth: 100,
		Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&netsim.EDM{}).Run(cfg, ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ops)), "ops-per-run")
}
