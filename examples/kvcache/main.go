// kvcache: a disaggregated key-value store under YCSB-A, demonstrating the
// Figure 7 experiment in miniature. Hot keys live in node-local DRAM, cold
// keys in remote memory reached over the EDM fabric; the example sweeps the
// local:remote placement and reports average access latency per tier.
package main

import (
	"fmt"
	"log"

	"repro/internal/edm"
	"repro/internal/kvstore"
	"repro/internal/memctl"
	"repro/internal/workload"
)

func main() {
	fmt.Println("local:remote  avg(ns)   local-avg(ns)  remote-avg(ns)  remote-ops")
	for _, localPct := range []int{90, 66, 50, 34, 10} {
		// Fresh fabric per configuration: compute node 0, memory node 1.
		fabric := edm.New(edm.DefaultConfig(2))
		fabric.AttachMemory(1, memctl.New(memctl.DefaultConfig()))
		localDRAM := memctl.New(memctl.DefaultConfig())

		const slots = 4096
		store, err := kvstore.New(fabric, 0, 1, localDRAM, kvstore.Config{
			Slots:      slots,
			SlotBytes:  64,
			LocalSlots: slots * localPct / 100,
		})
		if err != nil {
			log.Fatal(err)
		}

		lats, err := store.RunYCSB(workload.YCSBA, 600, 7)
		if err != nil {
			log.Fatal(err)
		}

		var sum, lsum, rsum float64
		var ln, rn int
		for _, l := range lats {
			ns := l.Latency.Nanoseconds()
			sum += ns
			if l.Local {
				lsum += ns
				ln++
			} else {
				rsum += ns
				rn++
			}
		}
		lavg, ravg := 0.0, 0.0
		if ln > 0 {
			lavg = lsum / float64(ln)
		}
		if rn > 0 {
			ravg = rsum / float64(rn)
		}
		fmt.Printf("%6d:%-6d %8.0f %12.0f %15.0f %11d\n",
			localPct, 100-localPct, sum/float64(len(lats)), lavg, ravg, rn)
	}
	fmt.Println("\nRemote accesses pay the ~300ns EDM fabric on top of DRAM;")
	fmt.Println("compare Figure 7 of the paper (and EXPERIMENTS.md).")
}
