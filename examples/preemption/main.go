// preemption: demonstrates EDM's intra-frame preemption (§3.2.3). A compute
// node streams 1500 B Ethernet frames while issuing 64 B remote reads; with
// the fair PHY mux, memory blocks interleave into the frame at 66-bit
// granularity and reads stay at ~310 ns; with a MAC-like frame-first mux
// the read request waits for the whole frame (limitation 3).
package main

import (
	"fmt"
	"log"

	"repro/internal/edm"
	"repro/internal/memctl"
	"repro/internal/phy"
)

func run(policy phy.MuxPolicy, label string) {
	cfg := edm.DefaultConfig(2)
	cfg.MuxPolicy = policy
	fabric := edm.New(cfg)
	mem := memctl.DefaultConfig()
	mem.TRP, mem.TRCD, mem.TCAS, mem.TBurst, mem.Overhead = 0, 0, 0, 0, 0 // fabric-only
	fabric.AttachMemory(1, memctl.New(mem))
	if _, err := fabric.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		log.Fatal(err)
	}

	frame := make([]byte, 1500)
	fmt.Printf("%s:\n", label)
	for i := 0; i < 5; i++ {
		// Saturate the TX path with IP frames, then issue a read.
		fabric.Host(0).SendFrame(frame)
		fabric.Host(0).SendFrame(frame)
		_, lat, err := fabric.ReadSync(0, 1, 0, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  read %d under frame traffic: %v\n", i, lat)
	}
	fabric.Run()
	st := fabric.Host(0).Stats()
	fmt.Printf("  host TX: %d memory blocks, %d frame blocks interleaved\n\n",
		st.MemBlocksTX, st.FrameBlocksTX)
}

func main() {
	run(phy.PolicyFair, "EDM intra-frame preemption (fair 66-bit mux)")
	run(phy.PolicyFrameFirst, "MAC-like behaviour (no preemption)")
	fmt.Println("A 1500B frame takes 480ns to serialize at 25GbE: without preemption")
	fmt.Println("every read eats that wait; EDM's PHY mux removes it entirely.")
}
