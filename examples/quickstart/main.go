// Quickstart: bring up a 4-node EDM fabric (2 compute, 2 memory nodes on
// one switch), then perform remote writes, reads and an atomic
// compare-and-swap, printing the fabric latency of each operation.
package main

import (
	"fmt"
	"log"

	"repro/internal/edm"
	"repro/internal/memctl"
)

func main() {
	// A fabric is N hosts on a single EDM switch. DefaultConfig reproduces
	// the paper's 25 GbE FPGA testbed timing.
	fabric := edm.New(edm.DefaultConfig(4))

	// Ports 2 and 3 become memory nodes with DDR4-like controllers.
	fabric.AttachMemory(2, memctl.New(memctl.DefaultConfig()))
	fabric.AttachMemory(3, memctl.New(memctl.DefaultConfig()))

	// Remote write from compute node 0 to memory node 2.
	payload := []byte("hello, disaggregated memory")
	lat, err := fabric.WriteSync(0, 2, 0x1000, payload)
	if err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("write %d B to node 2:   %v\n", len(payload), lat)

	// Remote read of the same bytes.
	data, lat, err := fabric.ReadSync(0, 2, 0x1000, len(payload))
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("read  %d B from node 2: %v -> %q\n", len(data), lat, data)

	// A 64 B read — the paper's headline op (~300 ns fabric + DRAM).
	if _, err := fabric.Host(2).Memory().Write(0x2000, make([]byte, 64)); err != nil {
		log.Fatalf("prime: %v", err)
	}
	_, lat, err = fabric.ReadSync(0, 2, 0x2000, 64)
	if err != nil {
		log.Fatalf("read64: %v", err)
	}
	fmt.Printf("read  64 B (cache line): %v\n", lat)

	// Atomic compare-and-swap on node 3 — EDM's RMWREQ path, usable for
	// remote locks. Two compute nodes race for the same lock word.
	res, lat, err := fabric.RMWSync(0, 3, 0x0, memctl.OpCAS, 0, 1)
	if err != nil {
		log.Fatalf("cas: %v", err)
	}
	fmt.Printf("node 0 CAS(0->1):        %v (acquired=%d)\n", lat, res)
	res, _, err = fabric.RMWSync(1, 3, 0x0, memctl.OpCAS, 0, 1)
	if err != nil {
		log.Fatalf("cas: %v", err)
	}
	fmt.Printf("node 1 CAS(0->1):        acquired=%d (lock already held)\n", res)

	// Cross-traffic: both compute nodes read from both memory nodes
	// concurrently; the central scheduler keeps every transfer conflict
	// free.
	done := 0
	for _, c := range []int{0, 1} {
		for _, m := range []int{2, 3} {
			fabric.Host(c).Read(m, 0x2000, 64, func(_ []byte, err error) {
				if err != nil {
					log.Fatalf("concurrent read: %v", err)
				}
				done++
			})
		}
	}
	fabric.Run()
	fmt.Printf("4 concurrent cross reads completed: %d/4\n", done)

	st := fabric.Switch().Stats()
	fmt.Printf("switch: %d requests intercepted, %d grants, %d chunks forwarded\n",
		st.RequestsRX, st.GrantsTX, st.ChunksForward)
}
