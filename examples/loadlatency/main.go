// loadlatency: the Figure 8a experiment in miniature. Sweeps network load
// on a 32-node cluster for EDM's in-network scheduler against the CXL
// credit fabric and the Fastpass central arbiter, printing mean latency
// normalized to each protocol's own unloaded latency.
package main

import (
	"fmt"
	"log"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := netsim.Config{
		Nodes: 32, Bandwidth: 100,
		Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500,
	}
	protocols := []netsim.Protocol{&netsim.EDM{}, &netsim.CXL{}, &netsim.Fastpass{}}

	fmt.Println("64B random reads+writes, 32 nodes x 100Gbps, normalized mean latency")
	fmt.Printf("%-6s", "load")
	for _, p := range protocols {
		fmt.Printf("%12s", p.Name())
	}
	fmt.Println()

	for _, load := range []float64{0.2, 0.4, 0.6, 0.8, 0.9} {
		ops, err := workload.Generate(workload.GenConfig{
			Nodes: cfg.Nodes, Load: load, Bandwidth: cfg.Bandwidth,
			Sizes: workload.Fixed(64), ReadFrac: 0.5, Count: 6000, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.1f", load)
		for _, p := range protocols {
			res, err := netsim.RunNormalized(p, cfg, ops)
			if err != nil {
				log.Fatalf("%s: %v", p.Name(), err)
			}
			fmt.Printf("%12.2f", res.NormalizedSummary(nil).Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nEDM stays near 1x its unloaded latency at every load (paper: <=1.3x);")
	fmt.Println("Fastpass collapses because every request serializes through one arbiter NIC.")
}
