// locks: distributed synchronization over disaggregated memory using EDM's
// RMWREQ path (§3.2.1). Four compute nodes contend for a spinlock word held
// on a memory node via remote compare-and-swap, each incrementing a shared
// counter in its critical section; the final counter proves mutual
// exclusion.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/edm"
	"repro/internal/memctl"
)

const (
	lockAddr    = 0x0
	counterAddr = 0x40
	memNode     = 4
	increments  = 5
)

// worker acquires the lock, increments the counter, releases, repeats.
type worker struct {
	fabric *edm.Fabric
	node   int
	left   int
	done   func(node int)
}

func (w *worker) acquire() {
	w.fabric.Host(w.node).RMW(memNode, lockAddr, memctl.OpCAS,
		[]uint64{0, uint64(w.node) + 1}, func(res []byte, err error) {
			if err != nil {
				log.Fatalf("node %d: %v", w.node, err)
			}
			if res[0] == 1 {
				w.critical()
				return
			}
			w.acquire() // lost the race: spin
		})
}

func (w *worker) critical() {
	// Read-modify-write the shared counter under the lock. A plain
	// read+write is safe here precisely because the lock serializes us.
	w.fabric.Host(w.node).Read(memNode, counterAddr, 8, func(data []byte, err error) {
		if err != nil {
			log.Fatalf("node %d: %v", w.node, err)
		}
		v := binary.LittleEndian.Uint64(data)
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, v+1)
		w.fabric.Host(w.node).Write(memNode, counterAddr, buf, func(err error) {
			if err != nil {
				log.Fatalf("node %d: %v", w.node, err)
			}
			w.release()
		})
	})
}

func (w *worker) release() {
	// Swap the lock back to 0 (unlock is unconditional).
	w.fabric.Host(w.node).RMW(memNode, lockAddr, memctl.OpSwap,
		[]uint64{0}, func(_ []byte, err error) {
			if err != nil {
				log.Fatalf("node %d: %v", w.node, err)
			}
			w.left--
			if w.left > 0 {
				w.acquire()
				return
			}
			w.done(w.node)
		})
}

func main() {
	fabric := edm.New(edm.DefaultConfig(5))
	fabric.AttachMemory(memNode, memctl.New(memctl.DefaultConfig()))

	finished := 0
	for n := 0; n < 4; n++ {
		w := &worker{fabric: fabric, node: n, left: increments, done: func(node int) {
			finished++
			fmt.Printf("node %d finished its %d increments at t=%v\n",
				node, increments, fabric.Engine.Now())
		}}
		w.acquire()
	}
	fabric.Run()

	data, _, err := fabric.Host(memNode).Memory().Read(counterAddr, 8)
	if err != nil {
		log.Fatal(err)
	}
	got := binary.LittleEndian.Uint64(data)
	fmt.Printf("\nshared counter = %d (want %d), workers finished = %d/4\n",
		got, 4*increments, finished)
	if got != 4*increments {
		log.Fatal("mutual exclusion violated!")
	}
	fmt.Println("mutual exclusion held: every increment serialized by the remote CAS lock")
}
