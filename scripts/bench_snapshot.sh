#!/bin/sh
# Snapshot the wire/rmem benchmarks into a BENCH_N.json perf-trajectory file.
#
# Usage: scripts/bench_snapshot.sh [OUT.json] [BASELINE.json]
#   OUT       defaults to the next free BENCH_N.json at the repo root
#   BASELINE  optional earlier snapshot; deltas are printed when given
set -eu
cd "$(dirname "$0")/.."

out="${1:-}"
if [ -z "$out" ]; then
    n=0
    while [ -e "BENCH_$n.json" ]; do n=$((n + 1)); done
    out="BENCH_$n.json"
fi

if [ -n "${2:-}" ]; then
    exec go run ./cmd/edmbench -snapshot "$out" -baseline "$2"
fi
exec go run ./cmd/edmbench -snapshot "$out"
