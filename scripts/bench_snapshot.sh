#!/bin/sh
# Snapshot the wire/rmem benchmarks into a BENCH_N.json perf-trajectory file.
#
# Usage: [BENCH_COUNT=N] [BENCH_TIME=T] scripts/bench_snapshot.sh [OUT.json] [BASELINE.json]
#   OUT          defaults to the next free BENCH_N.json at the repo root
#   BASELINE     optional earlier snapshot; deltas are printed when given
#   BENCH_COUNT  repetitions per benchmark (default 3); the snapshot records
#                the best of N (min for /op metrics, max for /s), which
#                suppresses one-off scheduler/GC noise
#   BENCH_TIME   optional -benchtime per repetition (e.g. 100ms)
set -eu
cd "$(dirname "$0")/.."

out="${1:-}"
baseline="${2:-}"
if [ -z "$out" ]; then
    n=0
    while [ -e "BENCH_$n.json" ]; do n=$((n + 1)); done
    out="BENCH_$n.json"
fi

set -- -snapshot "$out" -count "${BENCH_COUNT:-3}"
if [ -n "${BENCH_TIME:-}" ]; then
    set -- "$@" -benchtime "$BENCH_TIME"
fi
if [ -n "$baseline" ]; then
    set -- "$@" -baseline "$baseline"
fi
exec go run ./cmd/edmbench "$@"
