#!/bin/sh
# Cluster failover smoke: boot a 4-node memory cluster as two edmd processes
# (three nodes in one via -nodes, plus a separate victim process), drive the
# sharded dual-homed cluster service over real UDP with edmload, kill the
# victim mid-run, and assert that the run completes with zero failed ops and
# that cluster_failover_total went positive on the client's /metrics.
#
# Usage: scripts/cluster_smoke.sh
set -eu
cd "$(dirname "$0")/.."

go build -o /tmp/edmd_csmoke ./cmd/edmd
go build -o /tmp/edmload_csmoke ./cmd/edmload

mainlog=$(mktemp)
victimlog=$(mktemp)
loadlog=$(mktemp)
/tmp/edmd_csmoke -listen 127.0.0.1:0 -nodes 3 -slab 8388608 >"$mainlog" 2>&1 &
mainpid=$!
/tmp/edmd_csmoke -listen 127.0.0.1:0 -slab 8388608 >"$victimlog" 2>&1 &
victimpid=$!
loadpid=""
trap 'kill "$mainpid" "$victimpid" $loadpid 2>/dev/null || true; rm -f "$mainlog" "$victimlog" "$loadlog"' EXIT

# Wait for all four node addresses.
n0=""; n1=""; n2=""; victim=""
for _ in $(seq 1 50); do
    n0=$(sed -n 's/.*node 0 listening on \([^ ]*\).*/\1/p' "$mainlog" | head -1)
    n1=$(sed -n 's/.*node 1 listening on \([^ ]*\).*/\1/p' "$mainlog" | head -1)
    n2=$(sed -n 's/.*node 2 listening on \([^ ]*\).*/\1/p' "$mainlog" | head -1)
    victim=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$victimlog" | head -1)
    [ -n "$n0" ] && [ -n "$n1" ] && [ -n "$n2" ] && [ -n "$victim" ] && break
    sleep 0.1
done
if [ -z "$n0" ] || [ -z "$n1" ] || [ -z "$n2" ] || [ -z "$victim" ]; then
    echo "cluster_smoke: daemons never reported their addresses:" >&2
    cat "$mainlog" "$victimlog" >&2
    exit 1
fi

# A long closed-loop run so the kill lands mid-flight; the tight retry budget
# keeps each dead-node op to ~10ms before it fails over, and -evict pushes
# the victim out of the map after three consecutive deadlines.
/tmp/edmload_csmoke -cluster "$n0,$n1,$n2,$victim" -metrics 127.0.0.1:0 \
    -evict 3 -window 2 -retry 5ms -retries 1 \
    -profile memcached -count 40000 -seed 1 >"$loadlog" 2>&1 &
loadpid=$!

# Wait for the client's metrics endpoint (printed just before the replay),
# give the run a head start, then kill the victim node mid-run.
admin=""
for _ in $(seq 1 100); do
    admin=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$loadlog" | head -1)
    [ -n "$admin" ] && break
    if ! kill -0 "$loadpid" 2>/dev/null; then break; fi
    sleep 0.1
done
if [ -z "$admin" ]; then
    echo "cluster_smoke: edmload never reported its metrics address:" >&2
    cat "$loadlog" >&2
    exit 1
fi
sleep 0.3
kill "$victimpid"

# The failover counter must go positive while the run is still in flight.
failovers=0
for _ in $(seq 1 150); do
    if ! kill -0 "$loadpid" 2>/dev/null; then break; fi
    failovers=$(curl -fsS "http://$admin/metrics" 2>/dev/null \
        | sed -n 's/^cluster_failover_total \([0-9]*\)$/\1/p')
    failovers=${failovers:-0}
    [ "$failovers" -gt 0 ] && break
    sleep 0.2
done

if ! wait "$loadpid"; then
    echo "cluster_smoke: edmload failed:" >&2
    cat "$loadlog" >&2
    exit 1
fi
loadpid=""

# Zero failed ops: every op survived the kill on the other replica.
if ! grep -Eq 'issued [0-9]+ done [0-9]+ failed 0' "$loadlog"; then
    echo "cluster_smoke: run lost ops across the node kill:" >&2
    cat "$loadlog" >&2
    exit 1
fi
# Failovers: live from /metrics mid-run, or from the final report line.
if [ "$failovers" -eq 0 ]; then
    failovers=$(sed -n 's/.*failovers \([0-9]*\).*/\1/p' "$loadlog" | head -1)
    failovers=${failovers:-0}
fi
if [ "$failovers" -eq 0 ]; then
    echo "cluster_smoke: kill produced no failovers:" >&2
    cat "$loadlog" >&2
    exit 1
fi

echo "cluster_smoke: ok (nodes $n0,$n1,$n2 victim $victim failovers $failovers)"
