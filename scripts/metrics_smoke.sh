#!/bin/sh
# End-to-end observability smoke: boot edmd with the HTTP admin endpoint,
# push a short edmload run through it over real UDP, then assert that
# /healthz answers and /metrics exposes the per-opcode series the run must
# have populated. Exercises the full path a dashboard would scrape.
#
# Usage: scripts/metrics_smoke.sh
set -eu
cd "$(dirname "$0")/.."

go build -o /tmp/edmd_smoke ./cmd/edmd
go build -o /tmp/edmload_smoke ./cmd/edmload

log=$(mktemp)
/tmp/edmd_smoke -listen 127.0.0.1:0 -metrics 127.0.0.1:0 -trace-ops 64 \
    -slab 1048576 -slotbytes 256 >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f "$log"' EXIT

# Wait for both listen lines (UDP data plane, HTTP admin plane).
udp=""
admin=""
for _ in $(seq 1 50); do
    udp=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$log" | head -1)
    admin=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$log" | head -1)
    [ -n "$udp" ] && [ -n "$admin" ] && break
    sleep 0.1
done
if [ -z "$udp" ] || [ -z "$admin" ]; then
    echo "metrics_smoke: edmd never reported its addresses:" >&2
    cat "$log" >&2
    exit 1
fi

/tmp/edmload_smoke -addr "$udp" -profile memcached -count 200 -seed 1

health=$(curl -fsS "http://$admin/healthz")
if [ "$health" != "ok" ]; then
    echo "metrics_smoke: /healthz said '$health', want 'ok'" >&2
    exit 1
fi

metrics=$(curl -fsS "http://$admin/metrics")
for want in \
    'rmem_server_ops_total{op="read"}' \
    'rmem_server_ops_total{op="write"}' \
    'rmem_server_op_latency_ns_bucket{op="read"' \
    'rmem_server_op_latency_ns_bucket{op="write"' \
    'wire_udp_sessions_started_total' \
    'wire_server_requests_total'; do
    if ! printf '%s\n' "$metrics" | grep -qF "$want"; then
        echo "metrics_smoke: /metrics missing $want" >&2
        printf '%s\n' "$metrics" >&2
        exit 1
    fi
done

traces=$(curl -fsS "http://$admin/debug/traceops")
if ! printf '%s\n' "$traces" | grep -q '"stage"'; then
    echo "metrics_smoke: /debug/traceops has no records" >&2
    exit 1
fi

echo "metrics_smoke: ok (udp $udp admin $admin)"
