package main

import (
	"bytes"
	"errors"

	"os"
	"regexp"
	"repro/internal/cli"
	"sync"
	"testing"
	"time"

	"repro/internal/rmem"
	"repro/internal/wire"
)

// syncBuf is a goroutine-safe writer the daemon logs to while a test pokes
// at it concurrently.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestEdmdHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, nil, &out, &errb); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
}

func TestEdmdUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-listen"},          // flag parse failure
		{"-slab", "-1"},      // invalid slab
		{"-duration", "-1s"}, // negative duration
		{"stray-arg"},        // unexpected positional
		{"-slab", "4096", "-slots", "8", "-slotbytes", "4096"}, // slots overflow slab
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		err := run(args, nil, &out, &errb)
		var ue cli.UsageError
		if !errors.Is(err, cli.ErrFlagParse) && !errors.As(err, &ue) {
			t.Errorf("edmd %v: got %v, want a usage error", args, err)
		}
	}
}

// TestEdmdServesAndReportsStats boots the daemon on an ephemeral port,
// drives it with an rmem client, stops it, and checks the lifecycle log.
func TestEdmdServesAndReportsStats(t *testing.T) {
	out := &syncBuf{}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-slab", "1048576", "-slotbytes", "256"},
			stop, out, out)
	}()

	// Wait for the listening line to learn the bound address.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address:\n%s", out.String())
	}

	uc, err := wire.DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client := rmem.NewClient(uc, rmem.ClientConfig{
		Retry: wire.ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10}})
	go uc.Run(client.Deliver)
	if err := client.Connect(); err != nil {
		t.Fatalf("connect to daemon: %v", err)
	}
	if g := client.Geometry(); g.SlabBytes != 1048576 || g.SlotBytes != 256 {
		t.Fatalf("advertised geometry %+v", g)
	}
	if err := client.WriteSync(0, []byte("daemon")); err != nil {
		t.Fatal(err)
	}
	got, err := client.ReadSync(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "daemon" {
		t.Fatalf("read back %q", got)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop on signal")
	}
	log := out.String()
	for _, want := range []string{
		`served reads 1 writes 1`, `sessions hello 1 bye 1`,
	} {
		if !regexp.MustCompile(want).MatchString(log) {
			t.Errorf("lifecycle log missing %q:\n%s", want, log)
		}
	}
}

// TestEdmdDuration: a timed run exits on its own.
func TestEdmdDuration(t *testing.T) {
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-duration", "100ms"}, nil, &out, &out)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("timed run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("-duration run never exited")
	}
}
