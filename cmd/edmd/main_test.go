package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/rmem"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// syncBuf is a goroutine-safe writer the daemon logs to while a test pokes
// at it concurrently.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestEdmdHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, nil, &out, &errb); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
}

func TestEdmdUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-listen"},          // flag parse failure
		{"-slab", "-1"},      // invalid slab
		{"-duration", "-1s"}, // negative duration
		{"stray-arg"},        // unexpected positional
		{"-slab", "4096", "-slots", "8", "-slotbytes", "4096"}, // slots overflow slab
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		err := run(args, nil, &out, &errb)
		var ue cli.UsageError
		if !errors.Is(err, cli.ErrFlagParse) && !errors.As(err, &ue) {
			t.Errorf("edmd %v: got %v, want a usage error", args, err)
		}
	}
}

// TestEdmdServesAndReportsStats boots the daemon on an ephemeral port,
// drives it with an rmem client, stops it, and checks the lifecycle log.
func TestEdmdServesAndReportsStats(t *testing.T) {
	out := &syncBuf{}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-slab", "1048576", "-slotbytes", "256"},
			stop, out, out)
	}()

	// Wait for the listening line to learn the bound address.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address:\n%s", out.String())
	}

	uc, err := wire.DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client := rmem.NewClient(uc, rmem.ClientConfig{
		Retry: wire.ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10}})
	go uc.Run(client.Deliver)
	if err := client.Connect(); err != nil {
		t.Fatalf("connect to daemon: %v", err)
	}
	if g := client.Geometry(); g.SlabBytes != 1048576 || g.SlotBytes != 256 {
		t.Fatalf("advertised geometry %+v", g)
	}
	if err := client.WriteSync(0, []byte("daemon")); err != nil {
		t.Fatal(err)
	}
	got, err := client.ReadSync(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "daemon" {
		t.Fatalf("read back %q", got)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop on signal")
	}
	log := out.String()
	for _, want := range []string{
		`served reads 1 writes 1`, `sessions hello 1 bye 1`,
	} {
		if !regexp.MustCompile(want).MatchString(log) {
			t.Errorf("lifecycle log missing %q:\n%s", want, log)
		}
	}
}

// TestEdmdMultiNode boots -nodes 3 in one process, connects to each node,
// and checks the slabs are independent (same address, different contents).
func TestEdmdMultiNode(t *testing.T) {
	out := &syncBuf{}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-nodes", "3", "-slab", "1048576"},
			stop, out, out)
	}()
	t.Cleanup(func() {
		stop <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop on signal")
		}
	})

	nodeRe := regexp.MustCompile(`node (\d) listening on (\S+)`)
	addrs := map[string]string{}
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		for _, m := range nodeRe.FindAllStringSubmatch(out.String(), -1) {
			addrs[m[1]] = m[2]
		}
		if len(addrs) == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(addrs) != 3 {
		t.Fatalf("daemon reported %d node addresses, want 3:\n%s", len(addrs), out.String())
	}

	for i := 0; i < 3; i++ {
		uc, err := wire.DialUDP(addrs[strconv.Itoa(i)])
		if err != nil {
			t.Fatal(err)
		}
		client := rmem.NewClient(uc, rmem.ClientConfig{
			Retry: wire.ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10}})
		go uc.Run(client.Deliver)
		if err := client.Connect(); err != nil {
			t.Fatalf("connect node %d: %v", i, err)
		}
		payload := []byte{byte('A' + i)}
		if err := client.WriteSync(0, payload); err != nil {
			t.Fatalf("write node %d: %v", i, err)
		}
		got, err := client.ReadSync(0, 1)
		if err != nil || got[0] != payload[0] {
			t.Fatalf("node %d slab not independent: %q, %v", i, got, err)
		}
		if err := client.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEdmdDuration: a timed run exits on its own.
func TestEdmdDuration(t *testing.T) {
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-duration", "100ms"}, nil, &out, &out)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("timed run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("-duration run never exited")
	}
}

// TestEdmdMetricsEndpoint boots the daemon with the HTTP admin endpoint and
// the trace ring enabled, drives a few ops through it, and checks that
// /healthz answers, /metrics exposes per-opcode series, and /debug/traceops
// returns the op records.
func TestEdmdMetricsEndpoint(t *testing.T) {
	out := &syncBuf{}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
			"-trace-ops", "64", "-slab", "1048576", "-slotbytes", "256"},
			stop, out, out)
	}()
	t.Cleanup(func() {
		stop <- os.Interrupt
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop on signal")
		}
	})

	udpRe := regexp.MustCompile(`listening on (\S+)`)
	httpRe := regexp.MustCompile(`metrics on http://(\S+)/metrics`)
	var udpAddr, httpAddr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		log := out.String()
		um, hm := udpRe.FindStringSubmatch(log), httpRe.FindStringSubmatch(log)
		if um != nil && hm != nil {
			udpAddr, httpAddr = um[1], hm[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if udpAddr == "" || httpAddr == "" {
		t.Fatalf("daemon never reported both addresses:\n%s", out.String())
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + httpAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return string(body)
	}
	if h := get("/healthz"); h != "ok\n" {
		t.Errorf("/healthz = %q, want ok", h)
	}

	uc, err := wire.DialUDP(udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	client := rmem.NewClient(uc, rmem.ClientConfig{
		Retry: wire.ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10}})
	go uc.Run(client.Deliver)
	if err := client.Connect(); err != nil {
		t.Fatalf("connect to daemon: %v", err)
	}
	if err := client.WriteSync(0, []byte("metrics")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReadSync(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`rmem_server_ops_total{op="read"} 1`,
		`rmem_server_ops_total{op="write"} 1`,
		`rmem_server_op_latency_ns_bucket{op="read"`,
		`rmem_server_op_latency_ns_count{op="read"} 1`,
		`wire_udp_sessions_started_total 1`,
		`wire_server_requests_total`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	traces := get("/debug/traceops")
	var recs []telemetry.OpRecord
	if err := json.Unmarshal([]byte(traces), &recs); err != nil {
		t.Fatalf("/debug/traceops: %v\n%s", err, traces)
	}
	// HELLO + WRITE + READ + BYE each leave one serve-stage record.
	if len(recs) < 4 {
		t.Errorf("/debug/traceops has %d records, want >= 4:\n%s", len(recs), traces)
	}
	for _, r := range recs {
		if r.Stage != telemetry.StageServe {
			t.Errorf("trace record stage %v, want %v", r.Stage, telemetry.StageServe)
		}
	}

	snapJSON := get("/metrics.json")
	if !strings.Contains(snapJSON, `rmem_server_ops_total{op=\"read\"}`) {
		t.Errorf("/metrics.json missing read counter:\n%s", snapJSON)
	}
}
