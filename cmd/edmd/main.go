// Command edmd is the live memory-node daemon: it serves the EDM message
// vocabulary (RREQ/WREQ/RMWREQ and the session handshake) over reliable UDP
// against a slab of memory with memctl-style semantics, including the
// NIC-side atomic RMW menu of §3.2.1. Drive it with cmd/edmload and compare
// the measured percentiles against cmd/edmsim's simulated ones.
//
// Usage:
//
//	edmd -listen 127.0.0.1:7979 -slab 67108864 -slotbytes 4096
//	edmd -listen 127.0.0.1:0 -duration 10s   # ephemeral port, timed run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/rmem"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	cli.Exit("edmd", run(os.Args[1:], sig, os.Stdout, os.Stderr))
}

// splitListen parses -listen into a host and a numeric base port (0 means
// every node binds an ephemeral port).
func splitListen(listen string) (host string, port int, err error) {
	host, ps, err := net.SplitHostPort(listen)
	if err != nil {
		return "", 0, fmt.Errorf("edmd: bad -listen %q: %w", listen, err)
	}
	port, err = strconv.Atoi(ps)
	if err != nil || port < 0 || port > 65535 {
		return "", 0, fmt.Errorf("edmd: bad -listen port %q", ps)
	}
	return host, port, nil
}

// run is the testable entry point: flags in, lifecycle log out. stop ends
// the daemon early (main wires it to SIGINT/SIGTERM).
func run(args []string, stop <-chan os.Signal, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("edmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7979", "UDP listen address (host:port; port 0 picks a free one)")
	nodes := fs.Int("nodes", 1, "memory nodes served by this process, each its own slab, on consecutive ports from -listen (port 0: all ephemeral)")
	slab := fs.Int64("slab", 64<<20, "slab size in bytes (per node)")
	slots := fs.Int("slots", 0, "kv slot count (0 = slab/slotbytes)")
	slotBytes := fs.Int("slotbytes", 4096, "bytes per kv slot")
	dupWindow := fs.Int("dup-window", 0, "per-session duplicate-suppression window (0 = default)")
	duration := fs.Duration("duration", 0, "serve for this long then exit (0 = until SIGINT/SIGTERM)")
	metricsAddr := fs.String("metrics", "", "HTTP admin address serving /metrics, /healthz, /debug/pprof (empty = off)")
	traceOps := fs.Int("trace-ops", 0, "keep the last N per-op trace records, served at /debug/traceops (0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return cli.ErrFlagParse
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", fs.Arg(0))
	}
	if *slab <= 0 {
		return cli.Usagef("-slab must be positive, got %d", *slab)
	}
	if *nodes < 1 {
		return cli.Usagef("-nodes must be at least 1, got %d", *nodes)
	}
	if *duration < 0 {
		return cli.Usagef("-duration must not be negative")
	}

	// One registry backs the server's operation counters, the responder's
	// reliability counters, the UDP session lifecycle, and (when enabled)
	// the /metrics endpoint. Per-opcode service-time histograms need a
	// clock; it is wired only when someone can see them.
	reg := telemetry.NewRegistry()
	var ring *telemetry.TraceRing
	if *traceOps > 0 {
		ring = telemetry.NewTraceRing(*traceOps)
	}
	var nowNS func() int64
	if *metricsAddr != "" || ring != nil {
		nowNS = func() int64 { return time.Now().UnixNano() }
	}
	// One process can host a whole memory cluster: node i gets its own slab
	// and UDP listener on -listen's port + i (all ephemeral when port 0).
	// The shared registry makes every log and /metrics series an aggregate
	// over the nodes.
	host, basePort, err := splitListen(*listen)
	if err != nil {
		return cli.UsageError{S: err.Error()}
	}
	servers := make([]*rmem.Server, *nodes)
	listeners := make([]*wire.UDPServer, *nodes)
	closeAll := func() {
		for _, us := range listeners {
			if us != nil {
				us.Close()
			}
		}
	}
	for i := range servers {
		srv, err := rmem.NewServer(rmem.ServerConfig{
			Geometry: rmem.Geometry{
				SlabBytes: uint64(*slab), Slots: *slots, SlotBytes: *slotBytes,
			},
			DupWindow: *dupWindow,
			Metrics:   rmem.NewServerMetrics(reg),
			Responder: wire.NewResponderMetrics(reg),
			NowNS:     nowNS,
			Trace:     ring,
		})
		if err != nil {
			closeAll()
			return cli.UsageError{S: err.Error()}
		}
		addr := net.JoinHostPort(host, strconv.Itoa(0))
		if basePort != 0 {
			addr = net.JoinHostPort(host, strconv.Itoa(basePort+i))
		}
		// Session lifecycle (fresh session per HELLO, retirement on BYE,
		// idle expiry) is handled by wire.UDPServer itself.
		us, err := wire.ListenUDP(addr, func(_ string, reply wire.Pipe) func([]byte) {
			return srv.NewSession(reply).Deliver
		})
		if err != nil {
			closeAll()
			return err
		}
		us.SetMetrics(wire.NewUDPServerMetrics(reg))
		servers[i], listeners[i] = srv, us
		g := srv.Geometry()
		if *nodes == 1 {
			fmt.Fprintf(stdout, "edmd: listening on %s (slab %d B, %d slots x %d B)\n",
				us.Addr(), g.SlabBytes, g.Slots, g.SlotBytes)
		} else {
			fmt.Fprintf(stdout, "edmd: node %d listening on %s (slab %d B, %d slots x %d B)\n",
				i, us.Addr(), g.SlabBytes, g.Slots, g.SlotBytes)
		}
	}
	srv := servers[0]

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			closeAll()
			return fmt.Errorf("edmd: metrics listen %s: %w", *metricsAddr, err)
		}
		defer ln.Close()
		go http.Serve(ln, telemetry.AdminMux(reg, ring))
		fmt.Fprintf(stdout, "edmd: metrics on http://%s/metrics\n", ln.Addr())
	}

	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-stop:
		}
	} else {
		<-stop
	}
	var closeErr error
	for _, us := range listeners {
		if err := us.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	if closeErr != nil {
		return closeErr
	}
	// The exit log is a view of the same registry the /metrics endpoint
	// serves: srv.Stats() loads the telemetry counters, which every node's
	// server shares, so the totals span all -nodes.
	st := srv.Stats()
	fmt.Fprintf(stdout, "edmd: served reads %d writes %d rmws %d (%d B out, %d B in), errors %d\n",
		st.Reads, st.Writes, st.RMWs, st.BytesRead, st.BytesWritten, st.Errors)
	fmt.Fprintf(stdout, "edmd: sessions hello %d bye %d, modeled DRAM time %v\n",
		st.Hellos, st.Byes, st.ModeledDRAM)
	snap := reg.Snapshot()
	fmt.Fprintf(stdout, "edmd: wire replays %d garbage %d rejected %d, sessions started %d reset %d expired %d\n",
		snap.Counters["wire_server_replays_total"], snap.Counters["wire_server_garbage_total"],
		snap.Counters["wire_server_rejected_total"], snap.Counters["wire_udp_sessions_started_total"],
		snap.Counters["wire_udp_session_resets_total"], snap.Counters["wire_udp_sessions_expired_total"])
	return nil
}
