// Command edmload replays a trace (from cmd/tracegen or a file in the same
// format) or a generated workload against a live disaggregated-memory
// endpoint — a cmd/edmd daemon over UDP, or an in-process loopback server —
// and reports latency percentiles in the same rows cmd/edmsim prints, so
// simulated and measured latencies compare directly.
//
// Against the loopback endpoint the run is deterministic: arrivals are
// replayed on the transport's virtual clock and every latency is a pure
// function of the datagram sizes exchanged, so a fixed seed yields a
// byte-identical report.
//
// Usage:
//
//	tracegen -profile memcached -nodes 16 | edmload            # loopback
//	edmload -profile fixed64 -count 5000 -seed 7               # generated
//	edmload -addr 127.0.0.1:7979 -trace t.txt -window 32       # live edmd
//	edmload -addr 127.0.0.1:7979 -profile fixed64 -rate 50000  # paced
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/rmem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	cli.Exit("edmload", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// opResult is one completed operation.
type opResult struct {
	read   bool
	failed bool
	shed   bool // rejected at issue (window exhausted in rate mode)
	bytes  int
	ns     float64
}

// run is the testable entry point: flags in, report out.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("edmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "live endpoint (host:port of an edmd; empty = in-process loopback server)")
	clusterAddrs := fs.String("cluster", "", "comma-separated edmd addresses: drive the sharded dual-homed cluster service over UDP")
	evict := fs.Int("evict", 0, "cluster mode: auto-evict a node after N consecutive retry-budget timeouts (0 = off)")
	metricsAddr := fs.String("metrics", "", "cluster mode: HTTP address serving the client-side /metrics (empty = off)")
	traceFile := fs.String("trace", "-", "trace file ('-' = stdin)")
	profile := fs.String("profile", "", "generate a workload instead of reading a trace: hadoop, spark, sparksql, graphlab, memcached, fixed64")
	nodes := fs.Int("nodes", 16, "generated workload: cluster size")
	load := fs.Float64("load", 0.5, "generated workload: offered load (0,1]")
	count := fs.Int("count", 2000, "generated workload: operations")
	readFrac := fs.Float64("readfrac", 0.5, "generated workload: fraction of reads")
	bw := fs.Int64("bw", 100, "generated workload: link bandwidth (Gbps)")
	seed := fs.Uint64("seed", 1, "PRNG seed (addresses, generated workload)")
	window := fs.Int("window", 1, "outstanding-operation window (pipelining depth; live mode)")
	rate := fs.Float64("rate", 0, "target issue rate in ops/s (live mode; 0 = closed loop)")
	slab := fs.Int64("slab", 64<<20, "loopback server: slab size in bytes")
	slots := fs.Int("slots", 0, "loopback server: kv slot count (0 = slab/slotbytes)")
	slotBytes := fs.Int("slotbytes", 4096, "loopback server: bytes per kv slot")
	retry := fs.Duration("retry", 20*time.Millisecond, "per-attempt retransmission timeout")
	retries := fs.Int("retries", 5, "max retransmissions per operation")
	progress := fs.Duration("progress", 0, "print progress every interval (stderr; loopback counts on the virtual clock)")
	traceOps := fs.Int("trace-ops", 0, "keep and dump the last N per-op trace records (stderr)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return cli.ErrFlagParse
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", fs.Arg(0))
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *profile == "" {
		for _, name := range []string{"nodes", "load", "count", "readfrac", "bw"} {
			if set[name] {
				return cli.Usagef("-%s only applies with -profile (trace mode reads the trace as-is)", name)
			}
		}
	} else if set["trace"] {
		return cli.Usagef("-trace and -profile are mutually exclusive")
	}
	if *clusterAddrs != "" {
		if *addr != "" {
			return cli.Usagef("-addr and -cluster are mutually exclusive")
		}
		if len(strings.Split(*clusterAddrs, ",")) < 2 {
			return cli.Usagef("-cluster needs at least two addresses, got %q", *clusterAddrs)
		}
		for _, name := range []string{"slab", "slots", "slotbytes"} {
			if set[name] {
				return cli.Usagef("-%s only applies to the loopback endpoint (the live servers own their geometry)", name)
			}
		}
		// The cluster replay is closed-loop at -window depth; pacing and the
		// single-connection trace ring do not apply.
		for _, name := range []string{"rate", "progress", "trace-ops"} {
			if set[name] {
				return cli.Usagef("-%s does not apply to cluster mode", name)
			}
		}
	} else if set["evict"] || set["metrics"] {
		return cli.Usagef("-evict and -metrics only apply with -cluster")
	} else if *addr != "" {
		for _, name := range []string{"slab", "slots", "slotbytes"} {
			if set[name] {
				return cli.Usagef("-%s only applies to the loopback endpoint (the live server owns its geometry)", name)
			}
		}
	} else {
		// The loopback replay is strictly closed-loop at depth 1 on the
		// virtual clock; accepting pacing/pipelining flags would silently
		// mislabel the report.
		for _, name := range []string{"rate", "window"} {
			if set[name] {
				return cli.Usagef("-%s only applies to a live endpoint (the loopback replay is closed-loop on the virtual clock)", name)
			}
		}
	}
	if *window < 1 || *window > rmem.MaxWindow {
		return cli.Usagef("-window must be in [1, %d], got %d", rmem.MaxWindow, *window)
	}
	if *rate < 0 {
		return cli.Usagef("-rate must not be negative")
	}

	// Assemble the op stream.
	var ops []workload.Op
	var source string
	if *profile != "" {
		sizes, err := workload.SizeDistByName(*profile)
		if err != nil {
			return cli.UsageError{S: err.Error()}
		}
		ops, err = workload.Generate(workload.GenConfig{
			Nodes: *nodes, Load: *load, Bandwidth: sim.Gbps(*bw),
			Sizes: sizes, ReadFrac: *readFrac, Count: *count, Seed: *seed,
		})
		if err != nil {
			return err
		}
		source = fmt.Sprintf("generated %s (%d ops, seed %d)", *profile, *count, *seed)
	} else {
		in := stdin
		if *traceFile != "-" {
			f, err := os.Open(*traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		var err error
		ops, err = trace.Read(in)
		if err != nil {
			return err
		}
		source = fmt.Sprintf("trace %s (%d ops)", *traceFile, len(ops))
	}
	if len(ops) == 0 {
		return fmt.Errorf("empty trace")
	}

	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1 // flag 0 means none; the config's zero means default
	}
	ccfg := rmem.ClientConfig{
		Window: *window,
		Retry:  wire.ConnConfig{RetryTimeout: *retry, MaxRetries: maxRetries},
	}
	opts := runOpts{progress: *progress, traceN: *traceOps, stderr: stderr}
	switch {
	case *clusterAddrs != "":
		return runCluster(ops, source, *seed, strings.Split(*clusterAddrs, ","), *evict, *metricsAddr, ccfg, stdout)
	case *addr == "":
		return runLoopback(ops, source, *seed, *slab, *slots, *slotBytes, ccfg, opts, stdout)
	default:
		return runLive(ops, source, *seed, *addr, *rate, ccfg, opts, stdout)
	}
}

// runOpts carries the observability knobs into the run loops.
type runOpts struct {
	progress time.Duration
	traceN   int
	stderr   io.Writer
}

// ring builds the per-op trace ring, nil when tracing is off.
func (o runOpts) ring() *telemetry.TraceRing {
	if o.traceN <= 0 {
		return nil
	}
	return telemetry.NewTraceRing(o.traceN)
}

// dumpTrace prints the ring's records oldest-first to stderr.
func (o runOpts) dumpTrace(ring *telemetry.TraceRing) {
	if ring == nil {
		return
	}
	for _, r := range ring.SnapshotRecords() {
		fmt.Fprintf(o.stderr, "edmload: traceop seq=%d id=%d stage=%s kind=%s ts=%dns arg=%d\n",
			r.Seq, r.ID, r.Stage, wire.Kind(r.Op), r.TS, r.Arg)
	}
}

// targets precomputes the (addr, size, read) triple of every op: sizes are
// clamped to the datagram payload, addresses drawn 8-byte aligned from a
// seeded stream over the slab — the same discipline the scenario runner's
// fabric backend uses.
func targets(ops []workload.Op, seed, slabBytes uint64) ([]workload.Op, []uint64, error) {
	maxSize := wire.MaxData
	if uint64(maxSize) > slabBytes/2 {
		maxSize = int(slabBytes / 2)
	}
	if maxSize < 1 {
		return nil, nil, fmt.Errorf("slab too small: %d bytes", slabBytes)
	}
	addrs := make([]uint64, len(ops))
	stream := workload.NewPartition(seed).Stream("addr")
	space := slabBytes - uint64(maxSize)
	for i := range ops {
		if ops[i].Size > maxSize {
			ops[i].Size = maxSize
		}
		addrs[i] = (stream.Uint64() % space) &^ 7
	}
	return ops, addrs, nil
}

// runLoopback replays ops single-threaded against an in-process server,
// measuring on the virtual clock: a deterministic report for a fixed seed.
func runLoopback(ops []workload.Op, source string, seed uint64, slab int64, slots, slotBytes int, ccfg rmem.ClientConfig, opts runOpts, stdout io.Writer) error {
	if slab <= 0 {
		return cli.Usagef("-slab must be positive, got %d", slab)
	}
	srv, err := rmem.NewServer(rmem.ServerConfig{
		Geometry: rmem.Geometry{SlabBytes: uint64(slab), Slots: slots, SlotBytes: slotBytes},
	})
	if err != nil {
		return cli.UsageError{S: err.Error()}
	}
	lb := wire.NewLoopback(wire.LoopbackConfig{})
	// Latency histograms and trace timestamps read the loopback's virtual
	// clock, so the whole run — telemetry included — stays deterministic.
	ring := opts.ring()
	ccfg.NowNS = func() int64 { return int64(lb.Now() / sim.Nanosecond) }
	ccfg.Trace = ring
	client := rmem.NewClient(lb.ClientPipe(), ccfg)
	lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
	lb.BindClient(client.Deliver)
	if err := client.Connect(); err != nil {
		return err
	}
	defer client.Close()

	ops, addrs, err := targets(ops, seed, srv.Geometry().SlabBytes)
	if err != nil {
		return err
	}
	buf := make([]byte, wire.MaxData)
	results := make([]opResult, len(ops))
	nextProgress := opts.progress
	for i, op := range ops {
		lb.AdvanceTo(op.Arrival)
		start := lb.Now()
		var opErr error
		if op.Read {
			_, opErr = client.ReadSync(addrs[i], op.Size)
		} else {
			opErr = client.WriteSync(addrs[i], buf[:op.Size])
		}
		results[i] = opResult{
			read:   op.Read,
			failed: opErr != nil,
			bytes:  op.Size,
			ns:     (lb.Now() - start).Nanoseconds(),
		}
		if opts.progress > 0 && time.Duration(lb.Now()/sim.Nanosecond) >= nextProgress {
			fmt.Fprintf(opts.stderr, "edmload: progress %d/%d ops, virtual %v\n",
				i+1, len(ops), lb.Now())
			for nextProgress <= time.Duration(lb.Now()/sim.Nanosecond) {
				nextProgress += opts.progress
			}
		}
	}
	horizon := lb.Now()
	horizonSec := float64(horizon) / float64(1000*sim.Millisecond)
	err = report(stdout, "loopback (virtual clock)", source, results,
		horizon.String(), horizonSec, client, srv)
	opts.dumpTrace(ring)
	return err
}

// runLive replays ops against a remote edmd over UDP, measured in wall time.
// rate 0 runs closed-loop with window-many workers; rate > 0 paces an open
// loop, shedding ops that find the window full (the client's fail-fast).
func runLive(ops []workload.Op, source string, seed uint64, addr string, rate float64, ccfg rmem.ClientConfig, opts runOpts, stdout io.Writer) error {
	uc, err := wire.DialUDP(addr)
	if err != nil {
		return err
	}
	ring := opts.ring()
	ccfg.NowNS = func() int64 { return time.Now().UnixNano() }
	ccfg.Trace = ring
	client := rmem.NewClient(uc, ccfg)
	go uc.Run(client.Deliver)
	if err := client.Connect(); err != nil {
		uc.Close()
		return err
	}
	defer client.Close()

	ops, addrs, err := targets(ops, seed, client.Geometry().SlabBytes)
	if err != nil {
		return err
	}
	results := make([]opResult, len(ops))
	start := time.Now()
	if opts.progress > 0 {
		stopProgress := make(chan struct{})
		defer close(stopProgress)
		go func() {
			ticker := time.NewTicker(opts.progress)
			defer ticker.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-ticker.C:
				}
				st, cs := client.Stats(), client.ConnStats()
				fmt.Fprintf(opts.stderr, "edmload: progress done %d failed %d of %d, retransmits %d, elapsed %v\n",
					st.Done+st.Failed, st.Failed, len(ops), cs.Retransmit,
					time.Since(start).Round(time.Millisecond))
			}
		}()
	}
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		var wg sync.WaitGroup
		for i, op := range ops {
			i, op := i, op
			if next := start.Add(time.Duration(i) * interval); time.Until(next) > 0 {
				time.Sleep(time.Until(next))
			}
			issue := time.Now()
			wg.Add(1)
			done := func(err error) {
				results[i] = opResult{read: op.Read, failed: err != nil,
					bytes: op.Size, ns: float64(time.Since(issue).Nanoseconds())}
				wg.Done()
			}
			var ierr error
			if op.Read {
				ierr = client.Read(addrs[i], op.Size, func(_ []byte, err error) { done(err) })
			} else {
				ierr = client.Write(addrs[i], make([]byte, op.Size), func(err error) { done(err) })
			}
			if ierr != nil {
				// Window exhausted (or closed): the op is shed, the
				// honest open-loop behaviour at overload.
				results[i] = opResult{read: op.Read, shed: true, failed: true, bytes: op.Size}
				wg.Done()
			}
		}
		wg.Wait()
	} else {
		type item struct{ i int }
		ch := make(chan item)
		var wg sync.WaitGroup
		workers := ccfg.Window
		bufs := make([][]byte, workers)
		for w := 0; w < workers; w++ {
			bufs[w] = make([]byte, wire.MaxData)
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := range ch {
					op := ops[it.i]
					issue := time.Now()
					var opErr error
					if op.Read {
						_, opErr = client.ReadSync(addrs[it.i], op.Size)
					} else {
						opErr = client.WriteSync(addrs[it.i], bufs[w][:op.Size])
					}
					results[it.i] = opResult{read: op.Read, failed: opErr != nil,
						bytes: op.Size, ns: float64(time.Since(issue).Nanoseconds())}
				}
			}()
		}
		for i := range ops {
			ch <- item{i}
		}
		close(ch)
		wg.Wait()
	}
	elapsed := time.Since(start)
	err = report(stdout, "udp "+addr, source, results,
		elapsed.String(), elapsed.Seconds(), client, nil)
	opts.dumpTrace(ring)
	return err
}

// runCluster replays ops closed-loop at -window depth against the sharded,
// dual-homed cluster service over N edmd nodes: reads route to each extent's
// primary and fail over to its mirror, writes go through to both.
func runCluster(ops []workload.Op, source string, seed uint64, nodeAddrs []string, evict int, metricsAddr string, ccfg rmem.ClientConfig, stdout io.Writer) error {
	reg := telemetry.NewRegistry()
	workers := ccfg.Window
	// A routed op fans out up to two datagrams per node; give the node
	// clients headroom so concurrent workers do not trip the window.
	nodeCfg := ccfg
	nodeCfg.Window = 4 * workers
	if nodeCfg.Window > rmem.MaxWindow {
		nodeCfg.Window = rmem.MaxWindow
	}
	nodeCfg.NowNS = func() int64 { return time.Now().UnixNano() }
	clients := make([]*rmem.Client, len(nodeAddrs))
	closeAll := func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
	}
	for i, a := range nodeAddrs {
		uc, err := wire.DialUDP(a)
		if err != nil {
			closeAll()
			return err
		}
		cl := rmem.NewClient(uc, nodeCfg)
		go uc.Run(cl.Deliver)
		if err := cl.Connect(); err != nil {
			uc.Close()
			closeAll()
			return fmt.Errorf("edmload: connect node %d (%s): %w", i, a, err)
		}
		clients[i] = cl
	}
	cc, err := cluster.New(clients, cluster.Config{
		Seed:      seed,
		Metrics:   cluster.NewMetrics(reg, len(nodeAddrs)),
		NowNS:     func() int64 { return time.Now().UnixNano() },
		AutoEvict: evict,
	})
	if err != nil {
		closeAll()
		return err
	}
	defer cc.Close()

	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("edmload: metrics listen %s: %w", metricsAddr, err)
		}
		defer ln.Close()
		go http.Serve(ln, telemetry.AdminMux(reg, nil))
		fmt.Fprintf(stdout, "edmload: metrics on http://%s/metrics\n", ln.Addr())
	}

	ops, addrs, err := targets(ops, seed, cc.Size())
	if err != nil {
		return err
	}
	results := make([]opResult, len(ops))
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		buf := make([]byte, wire.MaxData)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				op := ops[i]
				issue := time.Now()
				var opErr error
				if op.Read {
					_, opErr = cc.ReadSync(addrs[i], op.Size)
				} else {
					opErr = cc.WriteSync(addrs[i], buf[:op.Size])
				}
				results[i] = opResult{read: op.Read, failed: opErr != nil,
					bytes: op.Size, ns: float64(time.Since(issue).Nanoseconds())}
			}
		}()
	}
	start := time.Now()
	for i := range ops {
		ch <- i
	}
	close(ch)
	wg.Wait()
	elapsed := time.Since(start)
	return reportCluster(stdout, nodeAddrs, source, results, elapsed, clients, cc)
}

// reportCluster renders the cluster-mode percentile table: the same latency
// rows as the single-endpoint report plus the map/replication summary.
func reportCluster(w io.Writer, nodeAddrs []string, source string, results []opResult, elapsed time.Duration, clients []*rmem.Client, cc *cluster.Client) error {
	var all, reads, writes []float64
	var done, failed int
	var bytesRead, bytesWritten uint64
	for _, r := range results {
		if r.failed {
			failed++
			continue
		}
		done++
		all = append(all, r.ns)
		if r.read {
			reads = append(reads, r.ns)
			bytesRead += uint64(r.bytes)
		} else {
			writes = append(writes, r.ns)
			bytesWritten += uint64(r.bytes)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "endpoint\tcluster %s\n", strings.Join(nodeAddrs, ","))
	fmt.Fprintf(tw, "source\t%s\n", source)
	fmt.Fprintf(tw, "operations\tissued %d done %d failed %d\n", len(results), done, failed)
	fmt.Fprintf(tw, "horizon\t%s\n", elapsed)
	fmt.Fprintf(tw, "data\tread %d B written %d B\n", bytesRead, bytesWritten)
	if s := stats.Summarize(all); s.N > 0 {
		fmt.Fprintf(tw, "latency (ns) (all)\t%s\n", s.Row())
	}
	if s := stats.Summarize(reads); s.N > 0 {
		fmt.Fprintf(tw, "latency (ns) (reads)\t%s\n", s.Row())
	}
	if s := stats.Summarize(writes); s.N > 0 {
		fmt.Fprintf(tw, "latency (ns) (writes)\t%s\n", s.Row())
	}
	if elapsed > 0 {
		fmt.Fprintf(tw, "throughput\t%.0f ops/s\n", float64(done)/elapsed.Seconds())
	}
	var cs wire.ConnStats
	for _, cl := range clients {
		c := cl.ConnStats()
		cs.Sent += c.Sent
		cs.Retransmit += c.Retransmit
		cs.Timeouts += c.Timeouts
	}
	fmt.Fprintf(tw, "transport\tsent %d retransmits %d timeouts %d\n",
		cs.Sent, cs.Retransmit, cs.Timeouts)
	m := cc.Metrics()
	fmt.Fprintf(tw, "cluster\tnodes %d extents %d x %d B epoch %d\n",
		len(clients), cc.Map().Extents(), cc.ExtentBytes(), cc.Epoch())
	fmt.Fprintf(tw, "cluster faults\tfailovers %d splits %d evictions %d\n",
		m.Failovers.Load(), m.SplitOps.Load(), m.Evictions.Load())
	return tw.Flush()
}

// report renders the percentile table, mirroring cmd/edmsim's summary rows.
func report(w io.Writer, endpoint, source string, results []opResult, horizon string, horizonSec float64, client *rmem.Client, srv *rmem.Server) error {
	var all, reads, writes []float64
	var done, failed, shed int
	var bytesRead, bytesWritten uint64
	for _, r := range results {
		switch {
		case r.shed:
			shed++
		case r.failed:
			failed++
		default:
			done++
			all = append(all, r.ns)
			if r.read {
				reads = append(reads, r.ns)
				bytesRead += uint64(r.bytes)
			} else {
				writes = append(writes, r.ns)
				bytesWritten += uint64(r.bytes)
			}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "endpoint\t%s\n", endpoint)
	fmt.Fprintf(tw, "source\t%s\n", source)
	fmt.Fprintf(tw, "operations\tissued %d done %d failed %d shed %d\n",
		len(results), done, failed, shed)
	fmt.Fprintf(tw, "horizon\t%s\n", horizon)
	fmt.Fprintf(tw, "data\tread %d B written %d B\n", bytesRead, bytesWritten)
	if s := stats.Summarize(all); s.N > 0 {
		fmt.Fprintf(tw, "latency (ns) (all)\t%s\n", s.Row())
	}
	if s := stats.Summarize(reads); s.N > 0 {
		fmt.Fprintf(tw, "latency (ns) (reads)\t%s\n", s.Row())
	}
	if s := stats.Summarize(writes); s.N > 0 {
		fmt.Fprintf(tw, "latency (ns) (writes)\t%s\n", s.Row())
	}
	// The client's telemetry histograms observed the same completions on
	// the same clock; their rows cross-check the exact percentiles above
	// within the histogram's 1/16-bucket resolution.
	if m := client.Metrics(); m != nil {
		for _, h := range []struct {
			label string
			kind  wire.Kind
		}{
			{"histogram (ns) (reads)", wire.KindRREQ},
			{"histogram (ns) (writes)", wire.KindWREQ},
		} {
			if snap := m.Latency[h.kind].Snapshot(); snap.Count > 0 {
				fmt.Fprintf(tw, "%s\tmean %.3f p50 %.3f p90 %.3f p99 %.3f max %.3f\n",
					h.label, snap.Mean, snap.P50, snap.P90, snap.P99, snap.Max)
			}
		}
	}
	if horizonSec > 0 {
		fmt.Fprintf(tw, "throughput\t%.0f ops/s\n", float64(done)/horizonSec)
	}
	cs := client.ConnStats()
	fmt.Fprintf(tw, "transport\tsent %d retransmits %d timeouts %d\n",
		cs.Sent, cs.Retransmit, cs.Timeouts)
	if srv != nil {
		st := srv.Stats()
		fmt.Fprintf(tw, "server\treads %d writes %d rmws %d errors %d, modeled DRAM %v\n",
			st.Reads, st.Writes, st.RMWs, st.Errors, st.ModeledDRAM)
	}
	return tw.Flush()
}
