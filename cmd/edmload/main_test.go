package main

import (
	"bytes"
	"errors"

	"regexp"
	"repro/internal/cli"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/rmem"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// makeTrace renders a small deterministic trace in the wire format.
func makeTrace(t *testing.T, seed uint64) string {
	t.Helper()
	ops, err := workload.Generate(workload.GenConfig{
		Nodes: 8, Load: 0.5, Bandwidth: 100,
		Sizes: workload.Memcached(), ReadFrac: 0.5, Count: 400, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func load(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, strings.NewReader(stdin), &out, &errb); err != nil {
		t.Fatalf("edmload %v: %v (%s)", args, err, errb.String())
	}
	return out.String()
}

// TestLoopbackDeterministic is the acceptance check: replaying a tracegen
// trace against the loopback server yields a byte-identical report for a
// fixed seed.
func TestLoopbackDeterministic(t *testing.T) {
	tr := makeTrace(t, 11)
	a := load(t, tr, "-seed", "5")
	b := load(t, tr, "-seed", "5")
	if a != b {
		t.Fatalf("same trace+seed produced different reports:\n%s\n---\n%s", a, b)
	}
	m := regexp.MustCompile(`operations\s+issued (\d+) done (\d+) failed 0 shed 0`).FindStringSubmatch(a)
	if m == nil {
		t.Fatalf("report missing clean op counts:\n%s", a)
	}
	if m[1] != m[2] {
		t.Fatalf("issued %s but done %s:\n%s", m[1], m[2], a)
	}
	for _, want := range []string{
		`endpoint\s+loopback \(virtual clock\)`,
		`latency \(ns\) \(all\)\s+mean`,
		`latency \(ns\) \(reads\)`, `latency \(ns\) \(writes\)`,
		`throughput\s+\d+ ops/s`,
		`transport\s+sent \d+ retransmits 0 timeouts 0`,
		`server\s+reads \d+ writes \d+`,
	} {
		if !regexp.MustCompile(want).MatchString(a) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
	// A different address seed must change the numbers.
	if c := load(t, tr, "-seed", "6"); c == a {
		t.Fatal("different seed produced an identical report")
	}
}

// TestGeneratedWorkload drives the loopback from a generated op stream.
func TestGeneratedWorkload(t *testing.T) {
	out := load(t, "", "-profile", "fixed64", "-count", "300", "-nodes", "4")
	for _, want := range []string{
		`source\s+generated fixed64 \(300 ops, seed 1\)`,
		`operations\s+issued \d+ done \d+ failed 0`,
	} {
		if !regexp.MustCompile(want).MatchString(out) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEdmloadHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
}

func TestEdmloadUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-window"},                      // flag parse failure
		{"-window", "8"},                 // window without -addr (loopback is closed-loop)
		{"-addr", "h:1", "-window", "0"}, // window below 1
		{"-rate", "-3"},                  // negative rate
		{"-rate", "100"},                 // rate without -addr
		{"-nodes", "4"},                  // generation flag without -profile
		{"-profile", "fixed64", "-trace", "t.txt"}, // conflicting sources
		{"-profile", "nope"},                       // unknown profile
		{"-addr", "h:1", "-slab", "64"},            // loopback geometry with live endpoint
		{"stray"},                                  // unexpected positional
		{"-addr", "h:1", "-cluster", "h:2,h:3"},    // conflicting endpoints
		{"-cluster", "h:1"},                        // a cluster needs two nodes
		{"-cluster", "h:1,h:2", "-slab", "64"},     // live servers own their geometry
		{"-cluster", "h:1,h:2", "-rate", "100"},    // cluster replay is closed-loop
		{"-evict", "3"},                            // cluster knob without -cluster
		{"-metrics", "127.0.0.1:0"},                // cluster knob without -cluster
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		err := run(args, strings.NewReader(""), &out, &errb)
		var ue cli.UsageError
		if !errors.Is(err, cli.ErrFlagParse) && !errors.As(err, &ue) {
			t.Errorf("edmload %v: got %v, want a usage error", args, err)
		}
	}
	// Runtime (exit 1) errors: empty trace, missing file.
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("missing trace file accepted")
	}
}

// startServer spins an in-process rmem server on an ephemeral UDP port.
func startServer(t *testing.T) (addr string, srv *rmem.Server) {
	t.Helper()
	srv, err := rmem.NewServer(rmem.ServerConfig{
		Geometry: rmem.Geometry{SlabBytes: 1 << 22, SlotBytes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	us, err := wire.ListenUDP("127.0.0.1:0", func(_ string, reply wire.Pipe) func([]byte) {
		return srv.NewSession(reply).Deliver
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { us.Close() })
	return us.Addr(), srv
}

// TestLiveEndpoint replays a trace against a real UDP server, pipelined.
func TestLiveEndpoint(t *testing.T) {
	addr, srv := startServer(t)
	out := load(t, makeTrace(t, 7), "-addr", addr, "-window", "8",
		"-retry", "100ms", "-retries", "10")
	for _, want := range []string{
		`endpoint\s+udp ` + regexp.QuoteMeta(addr),
		`operations\s+issued \d+ done \d+ failed 0 shed 0`,
		`latency \(ns\) \(all\)`,
	} {
		if !regexp.MustCompile(want).MatchString(out) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if st := srv.Stats(); st.Reads == 0 || st.Writes == 0 {
		t.Errorf("server never saw traffic: %+v", st)
	}
}

// TestClusterEndpoint drives the dual-homed cluster service over four real
// UDP servers and checks the report's cluster summary and /metrics endpoint.
func TestClusterEndpoint(t *testing.T) {
	var addrs []string
	var servers []*rmem.Server
	for i := 0; i < 4; i++ {
		addr, srv := startServer(t)
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	out := load(t, makeTrace(t, 7), "-cluster", strings.Join(addrs, ","),
		"-window", "4", "-metrics", "127.0.0.1:0", "-retry", "100ms", "-retries", "10")
	for _, want := range []string{
		`endpoint\s+cluster ` + regexp.QuoteMeta(strings.Join(addrs, ",")),
		`operations\s+issued \d+ done \d+ failed 0`,
		`latency \(ns\) \(all\)`,
		`cluster\s+nodes 4 extents \d+ x \d+ B epoch 0`,
		`cluster faults\s+failovers 0 splits \d+ evictions 0`,
		`edmload: metrics on http://`,
	} {
		if !regexp.MustCompile(want).MatchString(out) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Dual-homed write-through: every node serves traffic.
	for i, srv := range servers {
		if st := srv.Stats(); st.Reads+st.Writes == 0 {
			t.Errorf("node %d never saw traffic: %+v", i, st)
		}
	}
}

// TestLiveRatePaced exercises the open-loop path (and its shed accounting).
func TestLiveRatePaced(t *testing.T) {
	addr, _ := startServer(t)
	start := time.Now()
	out := load(t, "", "-addr", addr, "-profile", "fixed64", "-count", "200",
		"-rate", "20000", "-window", "16", "-retry", "100ms", "-retries", "10")
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("paced run finished implausibly fast: %v", elapsed)
	}
	if !regexp.MustCompile(`operations\s+issued 1\d\d done`).MatchString(out) {
		t.Errorf("report missing issue count:\n%s", out)
	}
}

// parseRow extracts mean/p50/p90/p99/max from one labelled report row.
func parseRow(t *testing.T, report, label string) map[string]float64 {
	t.Helper()
	re := regexp.MustCompile(regexp.QuoteMeta(label) +
		`\s+mean (\S+) p50 (\S+) p90 (\S+) p99 (\S+) max (\S+)`)
	m := re.FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("report missing row %q:\n%s", label, report)
	}
	out := map[string]float64{}
	for i, k := range []string{"mean", "p50", "p90", "p99", "max"} {
		v, err := strconv.ParseFloat(m[i+1], 64)
		if err != nil {
			t.Fatalf("row %q field %s = %q: %v", label, k, m[i+1], err)
		}
		out[k] = v
	}
	return out
}

// TestHistogramRowsCrossCheck: the telemetry histograms observe the same
// completions as the exact per-op samples, on the same virtual clock, so
// the histogram rows must agree with the exact rows to within the
// histogram's 1/16-bucket relative resolution.
func TestHistogramRowsCrossCheck(t *testing.T) {
	out := load(t, "", "-profile", "memcached", "-count", "600", "-seed", "7")
	for _, kind := range []string{"reads", "writes"} {
		exact := parseRow(t, out, "latency (ns) ("+kind+")")
		hist := parseRow(t, out, "histogram (ns) ("+kind+")")
		for _, q := range []string{"p50", "p90", "p99", "max"} {
			want, got := exact[q], hist[q]
			// One log-linear sub-bucket of relative error, plus interpolation
			// slack within the bucket.
			tol := want/16 + 2
			if got < want-tol || got > want+tol {
				t.Errorf("%s %s: histogram %v vs exact %v (tol %v)", kind, q, got, want, tol)
			}
		}
		if exact["mean"] <= 0 || hist["mean"] <= 0 {
			t.Errorf("%s: non-positive means (exact %v hist %v)", kind, exact["mean"], hist["mean"])
		}
	}
}

// TestTraceOpsFlag: -trace-ops dumps per-op records on stderr after the
// report, and the dump stays deterministic on the loopback's virtual clock.
func TestTraceOpsFlag(t *testing.T) {
	run1 := loadBoth(t, "-profile", "fixed64", "-count", "50", "-seed", "2", "-trace-ops", "16")
	run2 := loadBoth(t, "-profile", "fixed64", "-count", "50", "-seed", "2", "-trace-ops", "16")
	if run1 != run2 {
		t.Fatalf("trace dump is nondeterministic:\n%s\n---\n%s", run1, run2)
	}
	lines := 0
	for _, l := range strings.Split(run1, "\n") {
		if strings.HasPrefix(l, "edmload: traceop ") {
			lines++
		}
	}
	if lines != 16 {
		t.Fatalf("want 16 traceop lines, got %d:\n%s", lines, run1)
	}
	if !regexp.MustCompile(`edmload: traceop seq=\d+ id=\d+ stage=(enqueue|send|retry|complete|timeout) kind=\S+ ts=\d+ns arg=\d+`).MatchString(run1) {
		t.Fatalf("traceop line shape unexpected:\n%s", run1)
	}
}

// loadBoth runs edmload capturing stdout and stderr together.
func loadBoth(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatalf("edmload %v: %v (%s)", args, err, errb.String())
	}
	return out.String() + "\n===\n" + errb.String()
}
