package main

import "testing"

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/wire
cpu: Some CPU @ 2.00GHz
BenchmarkEncode/64B-8         	 3000000	       312.5 ns/op	 204.80 MB/s	      96 B/op	       2 allocs/op
BenchmarkDecode/64B-8         	 2000000	       501.0 ns/op	     160 B/op	       3 allocs/op
PASS
ok  	repro/internal/wire	3.2s
pkg: repro/internal/rmem
BenchmarkClientRoundTrip-8    	  500000	      2100 ns/op	     512 B/op	       9 allocs/op
PASS
ok  	repro/internal/rmem	1.9s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleBenchOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	// Sorted by (pkg, name): rmem first.
	b := got[0]
	if b.Pkg != "repro/internal/rmem" || b.Name != "BenchmarkClientRoundTrip" {
		t.Fatalf("first = %s %s", b.Pkg, b.Name)
	}
	if b.Iters != 500000 {
		t.Errorf("iters = %d", b.Iters)
	}
	if b.Metrics["ns/op"] != 2100 || b.Metrics["allocs/op"] != 9 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Within a package, names sort: Decode before Encode.
	if got[1].Name != "BenchmarkDecode/64B" {
		t.Errorf("GOMAXPROCS suffix not stripped: %s", got[1].Name)
	}
	enc := got[2]
	if enc.Name != "BenchmarkEncode/64B" {
		t.Errorf("GOMAXPROCS suffix not stripped: %s", enc.Name)
	}
	if enc.Metrics["MB/s"] != 204.8 || enc.Metrics["ns/op"] != 312.5 {
		t.Errorf("encode metrics = %v", enc.Metrics)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench("goos: linux\nPASS\nok x 1s\n"); len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(got))
	}
	// A benchmark line with a non-numeric iteration count is skipped.
	if got := parseBench("BenchmarkBad-8 abc 1 ns/op\n"); len(got) != 0 {
		t.Fatalf("accepted malformed line: %+v", got)
	}
}
