package main

import "testing"

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/wire
cpu: Some CPU @ 2.00GHz
BenchmarkEncode/64B-8         	 3000000	       312.5 ns/op	 204.80 MB/s	      96 B/op	       2 allocs/op
BenchmarkDecode/64B-8         	 2000000	       501.0 ns/op	     160 B/op	       3 allocs/op
PASS
ok  	repro/internal/wire	3.2s
pkg: repro/internal/rmem
BenchmarkClientRoundTrip-8    	  500000	      2100 ns/op	     512 B/op	       9 allocs/op
PASS
ok  	repro/internal/rmem	1.9s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleBenchOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	// Sorted by (pkg, name): rmem first.
	b := got[0]
	if b.Pkg != "repro/internal/rmem" || b.Name != "BenchmarkClientRoundTrip" {
		t.Fatalf("first = %s %s", b.Pkg, b.Name)
	}
	if b.Iters != 500000 {
		t.Errorf("iters = %d", b.Iters)
	}
	if b.Metrics["ns/op"] != 2100 || b.Metrics["allocs/op"] != 9 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Within a package, names sort: Decode before Encode.
	if got[1].Name != "BenchmarkDecode/64B" {
		t.Errorf("GOMAXPROCS suffix not stripped: %s", got[1].Name)
	}
	enc := got[2]
	if enc.Name != "BenchmarkEncode/64B" {
		t.Errorf("GOMAXPROCS suffix not stripped: %s", enc.Name)
	}
	if enc.Metrics["MB/s"] != 204.8 || enc.Metrics["ns/op"] != 312.5 {
		t.Errorf("encode metrics = %v", enc.Metrics)
	}
}

const repeatedBenchOutput = `pkg: repro/internal/rmem
BenchmarkPipelinedRead-8    	  500000	      2100 ns/op	  400000 ops/s	       2 allocs/op
BenchmarkPipelinedRead-8    	  600000	      1900 ns/op	  420000 ops/s	       1 allocs/op
BenchmarkPipelinedRead-8    	  550000	      2000 ns/op	  410000 ops/s	       2 allocs/op
PASS
`

func TestParseBenchMergesCountRuns(t *testing.T) {
	got := parseBench(repeatedBenchOutput)
	if len(got) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1 merged: %+v", len(got), got)
	}
	b := got[0]
	// Best-of-N: /op metrics keep the min, /s metrics the max.
	if b.Metrics["ns/op"] != 1900 || b.Metrics["allocs/op"] != 1 || b.Metrics["ops/s"] != 420000 {
		t.Errorf("merged metrics = %v", b.Metrics)
	}
	if b.Iters != 600000 {
		t.Errorf("iters = %d, want max 600000", b.Iters)
	}
}

func snapOf(name string, metrics map[string]float64) Snapshot {
	return Snapshot{Benchmarks: []Benchmark{{Name: name, Pkg: "repro/internal/rmem", Iters: 1, Metrics: metrics}}}
}

func TestCheckThreshold(t *testing.T) {
	base := snapOf("BenchmarkPipelinedRead", map[string]float64{"ns/op": 1000, "ops/s": 1e6, "allocs/op": 0})
	cases := []struct {
		name string
		cur  Snapshot
		pct  float64
		fail bool
	}{
		{"within", snapOf("BenchmarkPipelinedRead", map[string]float64{"ns/op": 1100, "ops/s": 0.95e6, "allocs/op": 0}), 15, false},
		{"latency regressed 20%", snapOf("BenchmarkPipelinedRead", map[string]float64{"ns/op": 1200, "ops/s": 1e6, "allocs/op": 0}), 15, true},
		{"throughput regressed 20%", snapOf("BenchmarkPipelinedRead", map[string]float64{"ns/op": 1000, "ops/s": 0.8e6, "allocs/op": 0}), 15, true},
		{"new allocation on allocation-free baseline", snapOf("BenchmarkPipelinedRead", map[string]float64{"ns/op": 1000, "ops/s": 1e6, "allocs/op": 1}), 15, true},
		{"gated benchmark deleted", snapOf("BenchmarkOther", map[string]float64{"ns/op": 1}), 15, true},
		{"ungated ignored", snapOf("BenchmarkEncode", map[string]float64{"ns/op": 99999}), 15, true}, // still fails: PipelinedRead missing
	}
	for _, tc := range cases {
		err := checkThreshold(base, tc.cur, tc.pct)
		if (err != nil) != tc.fail {
			t.Errorf("%s: err=%v, want fail=%v", tc.name, err, tc.fail)
		}
	}
	// An ungated benchmark regressing does not trip the gate.
	baseTwo := Snapshot{Benchmarks: append(base.Benchmarks, Benchmark{
		Name: "BenchmarkEncode", Pkg: "repro/internal/wire", Iters: 1,
		Metrics: map[string]float64{"ns/op": 100}})}
	curTwo := Snapshot{Benchmarks: append(snapOf("BenchmarkPipelinedRead",
		map[string]float64{"ns/op": 1000, "ops/s": 1e6, "allocs/op": 0}).Benchmarks, Benchmark{
		Name: "BenchmarkEncode", Pkg: "repro/internal/wire", Iters: 1,
		Metrics: map[string]float64{"ns/op": 1000}})}
	if err := checkThreshold(baseTwo, curTwo, 15); err != nil {
		t.Errorf("ungated regression tripped the gate: %v", err)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench("goos: linux\nPASS\nok x 1s\n"); len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(got))
	}
	// A benchmark line with a non-numeric iteration count is skipped.
	if got := parseBench("BenchmarkBad-8 abc 1 ns/op\n"); len(got) != 0 {
		t.Fatalf("accepted malformed line: %+v", got)
	}
}
