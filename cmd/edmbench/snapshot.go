package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// benchPackages are the hot-path packages whose Go benchmarks the snapshot
// captures: the wire codec/transport and the rmem client/server round trip.
var benchPackages = []string{"repro/internal/wire", "repro/internal/rmem", "repro/internal/telemetry"}

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name    string             `json:"name"` // e.g. BenchmarkEncode/64B (GOMAXPROCS suffix stripped)
	Pkg     string             `json:"pkg"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 312.5
}

// Snapshot is the BENCH_N.json schema: enough to compare perf trajectory
// across PRs without re-running older trees.
type Snapshot struct {
	Go string `json:"go"`
	// Count is how many repetitions each benchmark ran; the recorded
	// metrics are the best of the N (min for /op units, max for /s), which
	// suppresses one-off scheduler noise in the snapshot.
	Count      int         `json:"count,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// runSnapshot benchmarks the hot-path packages count times, records the
// best-of-N per metric, writes the snapshot to outPath, and (with a
// baseline) prints the delta table. A positive threshold additionally turns
// the baseline comparison into a gate: key metrics regressing beyond
// threshold percent make it return an error (nonzero exit).
func runSnapshot(outPath, baselinePath string, count int, benchtime string, threshold float64) error {
	if count < 1 {
		count = 1
	}
	args := []string{"test", "-run", "^$", "-bench", ".", "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", append(args, benchPackages...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("edmbench: bench run: %w", err)
	}
	snap := Snapshot{Go: runtime.Version(), Count: count, Benchmarks: parseBench(string(out))}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("edmbench: no benchmark lines in go test output")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmarks to %s (count=%d, best-of-N)\n", len(snap.Benchmarks), outPath, count)
	if baselinePath == "" {
		return nil
	}
	old, err := loadSnapshot(baselinePath)
	if err != nil {
		return err
	}
	if err := printDelta(old, snap); err != nil {
		return err
	}
	if threshold > 0 {
		return checkThreshold(old, snap, threshold)
	}
	return nil
}

// parseBench extracts benchmark results from `go test -bench` output. The
// text format interleaves per-package headers (`pkg: repro/internal/wire`)
// with result lines (`BenchmarkEncode/64B-8   123456   312.5 ns/op   ...`).
func parseBench(out string) []Benchmark {
	var benches []Benchmark
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS so snapshots from different machines
		// key identically.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Pkg: pkg, Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		benches = append(benches, b)
	}
	benches = mergeRuns(benches)
	sort.Slice(benches, func(i, j int) bool {
		if benches[i].Pkg != benches[j].Pkg {
			return benches[i].Pkg < benches[j].Pkg
		}
		return benches[i].Name < benches[j].Name
	})
	return benches
}

// mergeRuns folds repeated runs of the same benchmark (-count > 1) into one
// best-of-N entry: cost metrics (/op suffixed) keep their minimum, rate
// metrics (/s suffixed) their maximum. The minimum of a cost metric is the
// least-noisy observation — the run with the fewest scheduler/GC intrusions.
func mergeRuns(benches []Benchmark) []Benchmark {
	seen := make(map[string]int)
	var out []Benchmark
	for _, b := range benches {
		key := b.Pkg + " " + b.Name
		i, ok := seen[key]
		if !ok {
			seen[key] = len(out)
			out = append(out, b)
			continue
		}
		prev := &out[i]
		if b.Iters > prev.Iters {
			prev.Iters = b.Iters
		}
		for unit, v := range b.Metrics {
			old, had := prev.Metrics[unit]
			switch {
			case !had:
				prev.Metrics[unit] = v
			case strings.HasSuffix(unit, "/s"):
				if v > old {
					prev.Metrics[unit] = v
				}
			default: // ns/op, B/op, allocs/op, ...
				if v < old {
					prev.Metrics[unit] = v
				}
			}
		}
	}
	return out
}

func loadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("edmbench: %s: %w", path, err)
	}
	return s, nil
}

// printDelta compares ns/op and allocs/op against a baseline snapshot.
func printDelta(old, cur Snapshot) error {
	byKey := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byKey[b.Pkg+" "+b.Name] = b
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tns/op\tbaseline\tdelta\tallocs/op\tbaseline")
	for _, b := range cur.Benchmarks {
		o, ok := byKey[b.Pkg+" "+b.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t%.1f\t-\tnew\t%.0f\t-\n", b.Name, b.Metrics["ns/op"], b.Metrics["allocs/op"])
			continue
		}
		ns, ons := b.Metrics["ns/op"], o.Metrics["ns/op"]
		delta := "-"
		if ons > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(ns-ons)/ons)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%s\t%.0f\t%.0f\n",
			b.Name, ns, ons, delta, b.Metrics["allocs/op"], o.Metrics["allocs/op"])
	}
	return w.Flush()
}

// gated reports whether a benchmark's metrics are regression-gated: the
// round-trip latency and pipelined throughput benches are the repo's key
// perf indicators (ROADMAP "Performance"), everything else is informational.
// BenchmarkClientPipelining is deliberately NOT gated: its concurrent-issuer
// shape makes it scheduling-noise-bound (±40% run to run on small machines);
// BenchmarkPipelinedRead* carries the pipelined-throughput gate instead.
func gated(name string) bool {
	return strings.Contains(name, "RoundTrip") ||
		strings.Contains(name, "Pipelined")
}

// checkThreshold is the bench gate: on the gated benchmarks, ns/op and
// allocs/op may not rise — and ops/s may not fall — by more than pct percent
// versus the baseline. An allocation-free baseline (allocs/op == 0) is a
// hard invariant: any new allocation fails regardless of pct. A gated
// baseline benchmark that disappeared also fails, so the gate cannot be
// dodged by deleting the benchmark.
func checkThreshold(old, cur Snapshot, pct float64) error {
	byKey := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byKey[b.Pkg+" "+b.Name] = b
	}
	curKeys := make(map[string]bool, len(cur.Benchmarks))
	var fails []string
	for _, b := range cur.Benchmarks {
		curKeys[b.Pkg+" "+b.Name] = true
		if !gated(b.Name) {
			continue
		}
		o, ok := byKey[b.Pkg+" "+b.Name]
		if !ok {
			continue // new benchmark: no baseline yet
		}
		worse := func(metric string, newV, oldV float64) {
			fails = append(fails, fmt.Sprintf("%s %s: %.4g -> %.4g (limit %.0f%%)",
				b.Name, metric, oldV, newV, pct))
		}
		for _, metric := range []string{"ns/op", "allocs/op"} {
			nv, okN := b.Metrics[metric]
			ov, okO := o.Metrics[metric]
			if !okN || !okO {
				continue
			}
			if metric == "allocs/op" && ov == 0 {
				if nv > 0.5 {
					fails = append(fails, fmt.Sprintf("%s allocs/op: baseline is allocation-free, now %.4g", b.Name, nv))
				}
				continue
			}
			if ov > 0 && nv > ov*(1+pct/100) {
				worse(metric, nv, ov)
			}
		}
		if nv, okN := b.Metrics["ops/s"]; okN {
			if ov, okO := o.Metrics["ops/s"]; okO && ov > 0 && nv < ov*(1-pct/100) {
				worse("ops/s", nv, ov)
			}
		}
	}
	for _, o := range old.Benchmarks {
		if gated(o.Name) && !curKeys[o.Pkg+" "+o.Name] {
			fails = append(fails, fmt.Sprintf("%s: gated benchmark missing from this run", o.Name))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("bench gate: %d key-metric regression(s) beyond %.0f%%:\n  %s",
			len(fails), pct, strings.Join(fails, "\n  "))
	}
	fmt.Printf("bench gate: key metrics within %.0f%% of baseline\n", pct)
	return nil
}
