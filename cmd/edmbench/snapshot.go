package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// benchPackages are the hot-path packages whose Go benchmarks the snapshot
// captures: the wire codec/transport and the rmem client/server round trip.
var benchPackages = []string{"repro/internal/wire", "repro/internal/rmem", "repro/internal/telemetry"}

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name    string             `json:"name"` // e.g. BenchmarkEncode/64B (GOMAXPROCS suffix stripped)
	Pkg     string             `json:"pkg"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 312.5
}

// Snapshot is the BENCH_N.json schema: enough to compare perf trajectory
// across PRs without re-running older trees.
type Snapshot struct {
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// runSnapshot benchmarks the hot-path packages, writes the snapshot to
// outPath, and (with a baseline) prints the delta table.
func runSnapshot(outPath, baselinePath string) error {
	cmd := exec.Command("go", append([]string{"test", "-run", "^$", "-bench", ".", "-benchmem"}, benchPackages...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("edmbench: bench run: %w", err)
	}
	snap := Snapshot{Go: runtime.Version(), Benchmarks: parseBench(string(out))}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("edmbench: no benchmark lines in go test output")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(snap.Benchmarks), outPath)
	if baselinePath == "" {
		return nil
	}
	old, err := loadSnapshot(baselinePath)
	if err != nil {
		return err
	}
	return printDelta(old, snap)
}

// parseBench extracts benchmark results from `go test -bench` output. The
// text format interleaves per-package headers (`pkg: repro/internal/wire`)
// with result lines (`BenchmarkEncode/64B-8   123456   312.5 ns/op   ...`).
func parseBench(out string) []Benchmark {
	var benches []Benchmark
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS so snapshots from different machines
		// key identically.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Pkg: pkg, Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		benches = append(benches, b)
	}
	sort.Slice(benches, func(i, j int) bool {
		if benches[i].Pkg != benches[j].Pkg {
			return benches[i].Pkg < benches[j].Pkg
		}
		return benches[i].Name < benches[j].Name
	})
	return benches
}

func loadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("edmbench: %s: %w", path, err)
	}
	return s, nil
}

// printDelta compares ns/op and allocs/op against a baseline snapshot.
func printDelta(old, cur Snapshot) error {
	byKey := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byKey[b.Pkg+" "+b.Name] = b
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tns/op\tbaseline\tdelta\tallocs/op\tbaseline")
	for _, b := range cur.Benchmarks {
		o, ok := byKey[b.Pkg+" "+b.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t%.1f\t-\tnew\t%.0f\t-\n", b.Name, b.Metrics["ns/op"], b.Metrics["allocs/op"])
			continue
		}
		ns, ons := b.Metrics["ns/op"], o.Metrics["ns/op"]
		delta := "-"
		if ons > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(ns-ons)/ons)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%s\t%.0f\t%.0f\n",
			b.Name, ns, ons, delta, b.Metrics["allocs/op"], o.Metrics["allocs/op"])
	}
	return w.Flush()
}
