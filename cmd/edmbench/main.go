// Command edmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	edmbench -experiment table1|fig5|fig6|fig7|fig8a|fig8b|ablations|incast|all
//	         [-nodes N] [-ops N] [-seed N]
//	edmbench -snapshot BENCH_1.json [-baseline BENCH_0.json]
//	         [-count N] [-benchtime T] [-threshold pct]
//
// Output is textual rows matching the paper's presentation; see
// EXPERIMENTS.md for the paper-vs-measured record. -snapshot instead runs
// the wire/rmem Go benchmarks and records them as JSON (the BENCH_N.json
// perf trajectory), optionally printing deltas against a baseline snapshot.
// With -threshold the baseline comparison becomes a regression gate: the
// key metrics (round-trip ns/op and allocs/op, pipelined ops/s) regressing
// beyond pct percent exit nonzero, and an allocation-free baseline failing
// allocation-free is an unconditional failure. CI's bench-gate job runs
// this against the newest committed BENCH_*.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	nodes := flag.Int("nodes", 144, "cluster size for fig8 simulations")
	ops := flag.Int("ops", 20000, "operations per simulation run")
	seed := flag.Uint64("seed", 1, "trace seed")
	fig7ops := flag.Int("fig7ops", 400, "YCSB operations per fig7 ratio")
	snapshot := flag.String("snapshot", "", "run the wire/rmem benchmarks and write a JSON snapshot to this file")
	baseline := flag.String("baseline", "", "with -snapshot: print deltas against this earlier snapshot")
	count := flag.Int("count", 1, "with -snapshot: benchmark repetitions; the snapshot records the best of N")
	benchtime := flag.String("benchtime", "", "with -snapshot: -benchtime passed to go test (e.g. 100ms)")
	threshold := flag.Float64("threshold", 0, "with -snapshot and -baseline: exit nonzero when key metrics regress beyond this percentage")
	flag.Parse()

	if *snapshot != "" {
		if err := runSnapshot(*snapshot, *baseline, *count, *benchtime, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "edmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *threshold != 0 || *baseline != "" {
		fmt.Fprintln(os.Stderr, "edmbench: -baseline/-threshold require -snapshot")
		os.Exit(2)
	}

	cfg := experiments.Fig8Config{Nodes: *nodes, Bandwidth: 100, OpsPerRun: *ops, Seed: *seed}

	runners := map[string]func() error{
		"table1":    table1,
		"fig5":      fig5,
		"fig6":      fig6,
		"fig7":      func() error { return fig7(*fig7ops) },
		"fig8a":     func() error { return fig8a(cfg) },
		"fig8b":     func() error { return fig8b(cfg) },
		"ablations": func() error { return ablations(cfg) },
		"incast":    func() error { return incast(cfg) },
	}
	order := []string{"table1", "fig5", "fig6", "fig7", "fig8a", "fig8b", "ablations", "incast"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n================ %s ================\n", name)
			if err := runners[name](); err != nil {
				fmt.Fprintf(os.Stderr, "edmbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "edmbench: unknown experiment %q (want one of %v or all)\n", *exp, order)
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edmbench: %v\n", err)
		os.Exit(1)
	}
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "Stack\tOp\tNetwork stack\tTotal fabric\tPaper\tMeasured (block-level)\tvs EDM")
	for _, r := range rows {
		op := "read"
		if r.Write {
			op = "write"
		}
		measured := "-"
		if r.Measured != 0 {
			measured = r.Measured.String()
		}
		fmt.Fprintf(w, "%v\t%s\t%v\t%v\t%v\t%s\t%.1fx\n",
			r.Stack, op, r.StackTotal, r.Total, r.PaperTotal, measured, r.Ratio())
	}
	return w.Flush()
}

func fig5() error {
	w := tab()
	fmt.Fprintln(w, "Location\tOp\tStage\tCycles\tTime")
	for _, s := range experiments.Fig5() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%v\n", s.Location, s.Op, s.Name, s.Cycles, s.Time)
	}
	rc, wc := experiments.Fig5Totals()
	fmt.Fprintf(w, "\t\tpipeline total (excl. serialization/links)\tread=%d write=%d\t%v / %v\n",
		rc, wc, sim.Time(rc)*2560*sim.Picosecond, sim.Time(wc)*2560*sim.Picosecond)
	return w.Flush()
}

func fig6() error {
	w := tab()
	fmt.Fprintln(w, "Workload\tEDM (Mreq/s)\tRDMA (Mreq/s)\tEDM/RDMA")
	for _, r := range experiments.Fig6() {
		fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%.2fx\n", r.Workload, r.EDMMrps, r.RDMAMrps, r.Ratio)
	}
	return w.Flush()
}

func fig7(ops int) error {
	rows, err := experiments.Fig7(ops)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "Local:Remote\tEDM (ns)\tpaper\tCXL (ns)\tpaper\tRDMA (ns)\tpaper")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Label, r.EDMNanos, r.PaperEDM, r.CXLNanos, r.PaperCXL, r.RDMANanos, r.PaperRDMA)
	}
	return w.Flush()
}

func fig8a(cfg experiments.Fig8Config) error {
	rows, err := experiments.Fig8a(cfg, nil)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "Protocol\tLoad\tReads (norm)\tWrites (norm)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.3f\n", r.Proto, r.Load, r.ReadsNorm, r.WritesNorm)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nMixed write:read at load 0.8:")
	mix, err := experiments.Fig8aMix(cfg, nil)
	if err != nil {
		return err
	}
	w = tab()
	fmt.Fprintln(w, "Protocol\tWrite:Read\tNormalized latency")
	for _, r := range mix {
		fmt.Fprintf(w, "%s\t%.0f:%.0f\t%.3f\n", r.Proto, r.WriteFrac*100, (1-r.WriteFrac)*100, r.Norm)
	}
	return w.Flush()
}

func fig8b(cfg experiments.Fig8Config) error {
	rows, err := experiments.Fig8b(cfg)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "Application\tProtocol\tNormalized MCT\tAbsolute mean MCT")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.0fns\n", r.App, r.Proto, r.NormMCT, r.AbsMeanNs)
	}
	return w.Flush()
}

func ablations(cfg experiments.Fig8Config) error {
	w := tab()
	fmt.Fprintln(w, "Ablation\tValue\tNormalized latency/MCT")
	for _, run := range []func(experiments.Fig8Config) ([]experiments.AblationRow, error){
		experiments.AblationChunkSize,
		experiments.AblationNotifyCap,
		experiments.AblationPolicy,
		experiments.AblationPIMIterations,
		experiments.AblationBatching,
	} {
		rows, err := run(cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.3f\n", r.Param, r.Value, r.Norm)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nIntra-frame preemption (block-level testbed):")
	pre, err := experiments.AblationPreemption(20)
	if err != nil {
		return err
	}
	w = tab()
	fmt.Fprintln(w, "Mux policy\tMean 64B read\tMax 64B read")
	for _, p := range pre {
		fmt.Fprintf(w, "%s\t%.0fns\t%.0fns\n", p.Policy, p.MeanReadNs, p.MaxReadNs)
	}
	return w.Flush()
}

func incast(cfg experiments.Fig8Config) error {
	rows, err := experiments.Incast(cfg, 16, 50)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "Protocol\tMean norm\tP99 norm")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\n", r.Proto, r.MeanNorm, r.P99Norm)
	}
	return w.Flush()
}
