// Command edmsim runs a trace (from cmd/tracegen or a file in the same
// format) through one of the seven protocol models and reports latency
// statistics — the paper artifact's network simulator (§A.5.2) — or runs a
// named/JSON scenario on the scenario runner (multi-phase load, fault
// events, chaos injection; see internal/scenario).
//
// Usage:
//
//	tracegen -profile hadoop | edmsim -protocol EDM
//	edmsim -protocol CXL -trace trace.txt -nodes 144
//	edmsim -scenario chaos-1024
//	edmsim -scenario-file my-scenario.json -seed 7
//	edmsim -list-scenarios
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	cli.Exit("edmsim", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, report out.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("edmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	proto := fs.String("protocol", "EDM", "EDM, IRD, pFabric, PFC, DCTCP, CXL or Fastpass")
	traceFile := fs.String("trace", "-", "trace file ('-' = stdin)")
	nodes := fs.Int("nodes", 144, "cluster size (must cover the trace's node ids)")
	bw := fs.Int64("bw", 100, "link bandwidth (Gbps)")
	scenarioName := fs.String("scenario", "", "run a built-in scenario instead of a trace (see -list-scenarios)")
	scenarioFile := fs.String("scenario-file", "", "run a JSON scenario spec instead of a trace")
	seed := fs.Uint64("seed", 0, "override the scenario's seed (0 = keep the spec's)")
	list := fs.Bool("list-scenarios", false, "list built-in scenarios and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return cli.ErrFlagParse
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *list {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		for _, s := range scenario.Builtins() {
			fmt.Fprintf(tw, "%s\t%s, %d nodes\t%s\n", s.Name, s.Backend, s.Nodes, s.Description)
		}
		return tw.Flush()
	}
	if *scenarioName != "" || *scenarioFile != "" {
		// The trace-mode flags would be silently ignored here — the
		// scenario spec owns protocol, cluster size and bandwidth — so
		// reject the conflict instead of running something else.
		for _, name := range []string{"protocol", "nodes", "bw", "trace"} {
			if set[name] {
				return cli.Usagef("-%s does not apply in scenario mode (the spec defines it)", name)
			}
		}
		return runScenario(*scenarioName, *scenarioFile, *seed, stdout)
	}
	if set["seed"] {
		return cli.Usagef("-seed only applies to scenario mode (seed traces with tracegen -seed)")
	}

	p := netsim.ProtocolByName(*proto)
	if p == nil {
		var names []string
		for _, q := range netsim.Protocols() {
			names = append(names, q.Name())
		}
		return cli.Usagef("unknown protocol %q (want one of %v)", *proto, names)
	}

	in := stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ops, err := trace.Read(in)
	if err != nil {
		return err
	}
	if len(ops) == 0 {
		return fmt.Errorf("empty trace")
	}

	cfg := netsim.Config{
		Nodes: *nodes, Bandwidth: sim.Gbps(*bw),
		Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500,
	}
	res, err := netsim.RunNormalized(p, cfg, ops)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "protocol\t%s\n", res.Proto)
	fmt.Fprintf(w, "operations\t%d\n", res.Completed)
	fmt.Fprintf(w, "horizon\t%v\n", res.Horizon)
	all := res.NormalizedSummary(nil)
	rd := res.NormalizedSummary(netsim.Reads)
	wr := res.NormalizedSummary(netsim.Writes)
	fmt.Fprintf(w, "normalized latency (all)\tmean %.3f p50 %.3f p99 %.3f\n", all.Mean, all.P50, all.P99)
	if rd.N > 0 {
		fmt.Fprintf(w, "normalized latency (reads)\tmean %.3f p50 %.3f p99 %.3f\n", rd.Mean, rd.P50, rd.P99)
	}
	if wr.N > 0 {
		fmt.Fprintf(w, "normalized latency (writes)\tmean %.3f p50 %.3f p99 %.3f\n", wr.Mean, wr.P50, wr.P99)
	}
	abs := make([]float64, 0, len(res.Ops))
	for _, o := range res.Ops {
		abs = append(abs, o.Latency.Nanoseconds())
	}
	as := stats.Summarize(abs)
	fmt.Fprintf(w, "absolute latency (ns)\tmean %.0f p50 %.0f p99 %.0f\n", as.Mean, as.P50, as.P99)
	return w.Flush()
}

// runScenario resolves and runs a scenario, printing its report.
func runScenario(name, file string, seed uint64, stdout io.Writer) error {
	var spec *scenario.Spec
	switch {
	case name != "" && file != "":
		return cli.Usagef("-scenario and -scenario-file are mutually exclusive")
	case name != "":
		spec = scenario.Builtin(name)
		if spec == nil {
			var names []string
			for _, s := range scenario.Builtins() {
				names = append(names, s.Name)
			}
			return cli.Usagef("unknown scenario %q (want one of %v)", name, names)
		}
	default:
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		spec, err = scenario.Load(f)
		if err != nil {
			return err
		}
	}
	if seed != 0 {
		spec.Seed = seed
	}
	rep, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	return rep.Format(stdout)
}
