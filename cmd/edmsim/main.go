// Command edmsim runs a trace (from cmd/tracegen or a file in the same
// format) through one of the seven protocol models and reports latency
// statistics — the paper artifact's network simulator (§A.5.2).
//
// Usage:
//
//	tracegen -profile hadoop | edmsim -protocol EDM
//	edmsim -protocol CXL -trace trace.txt -nodes 144
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	proto := flag.String("protocol", "EDM", "EDM, IRD, pFabric, PFC, DCTCP, CXL or Fastpass")
	traceFile := flag.String("trace", "-", "trace file ('-' = stdin)")
	nodes := flag.Int("nodes", 144, "cluster size (must cover the trace's node ids)")
	bw := flag.Int64("bw", 100, "link bandwidth (Gbps)")
	flag.Parse()

	p := netsim.ProtocolByName(*proto)
	if p == nil {
		var names []string
		for _, q := range netsim.Protocols() {
			names = append(names, q.Name())
		}
		fmt.Fprintf(os.Stderr, "edmsim: unknown protocol %q (want one of %v)\n", *proto, names)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edmsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	ops, err := trace.Read(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edmsim: %v\n", err)
		os.Exit(1)
	}
	if len(ops) == 0 {
		fmt.Fprintln(os.Stderr, "edmsim: empty trace")
		os.Exit(1)
	}

	cfg := netsim.Config{
		Nodes: *nodes, Bandwidth: sim.Gbps(*bw),
		Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500,
	}
	res, err := netsim.RunNormalized(p, cfg, ops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edmsim: %v\n", err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "protocol\t%s\n", res.Proto)
	fmt.Fprintf(w, "operations\t%d\n", res.Completed)
	fmt.Fprintf(w, "horizon\t%v\n", res.Horizon)
	all := res.NormalizedSummary(nil)
	rd := res.NormalizedSummary(netsim.Reads)
	wr := res.NormalizedSummary(netsim.Writes)
	fmt.Fprintf(w, "normalized latency (all)\tmean %.3f p50 %.3f p99 %.3f\n", all.Mean, all.P50, all.P99)
	if rd.N > 0 {
		fmt.Fprintf(w, "normalized latency (reads)\tmean %.3f p50 %.3f p99 %.3f\n", rd.Mean, rd.P50, rd.P99)
	}
	if wr.N > 0 {
		fmt.Fprintf(w, "normalized latency (writes)\tmean %.3f p50 %.3f p99 %.3f\n", wr.Mean, wr.P50, wr.P99)
	}
	abs := make([]float64, 0, len(res.Ops))
	for _, o := range res.Ops {
		abs = append(abs, o.Latency.Nanoseconds())
	}
	as := stats.Summarize(abs)
	fmt.Fprintf(w, "absolute latency (ns)\tmean %.0f p50 %.0f p99 %.0f\n", as.Mean, as.P50, as.P99)
	w.Flush()
}
