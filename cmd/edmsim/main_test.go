package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// makeTrace renders a small deterministic trace in the wire format.
func makeTrace(t *testing.T, seed uint64) string {
	t.Helper()
	ops, err := workload.Generate(workload.GenConfig{
		Nodes: 16, Load: 0.5, Bandwidth: 100,
		Sizes: workload.Memcached(), ReadFrac: 0.5, Count: 400, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func sim16(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errb)
	if err != nil {
		t.Fatalf("edmsim %v: %v (%s)", args, err, errb.String())
	}
	return out.String()
}

// TestEndToEndTraceToSummary is the pipeline test: generate a trace, run it
// through two protocols, and check the summaries are well-formed and
// seed-stable.
func TestEndToEndTraceToSummary(t *testing.T) {
	tr := makeTrace(t, 11)
	for _, proto := range []string{"EDM", "DCTCP"} {
		a := sim16(t, tr, "-protocol", proto, "-nodes", "16")
		b := sim16(t, tr, "-protocol", proto, "-nodes", "16")
		if a != b {
			t.Fatalf("%s: same trace produced different summaries", proto)
		}
		for _, want := range []string{
			`protocol\s+` + proto, `operations\s+400`, "horizon",
			`normalized latency \(all\)`, `normalized latency \(reads\)`,
			`normalized latency \(writes\)`, `absolute latency \(ns\)`,
		} {
			if !regexp.MustCompile(want).MatchString(a) {
				t.Errorf("%s summary missing %q:\n%s", proto, want, a)
			}
		}
	}
	// A different trace seed must change the numbers.
	if sim16(t, tr, "-nodes", "16") == sim16(t, makeTrace(t, 12), "-nodes", "16") {
		t.Fatal("different traces produced identical summaries")
	}
}

func TestEdmsimScenarioMode(t *testing.T) {
	a := sim16(t, "", "-scenario", "failover-16")
	b := sim16(t, "", "-scenario", "failover-16")
	if a != b {
		t.Fatal("scenario mode not deterministic")
	}
	for _, want := range []string{`scenario\s+failover-16`, `backend\s+fabric`, "phase steady", `latency \(ns\)`} {
		if !regexp.MustCompile(want).MatchString(a) {
			t.Errorf("scenario report missing %q:\n%s", want, a)
		}
	}
	// -seed overrides the spec's seed.
	if c := sim16(t, "", "-scenario", "failover-16", "-seed", "99"); c == a {
		t.Fatal("seed override had no effect")
	}
}

func TestEdmsimScenarioFile(t *testing.T) {
	spec := `{
		"name": "file-test", "nodes": 32, "seed": 5, "protocol": "DCTCP",
		"phases": [{"name": "p", "count": 600, "load": 0.5, "read_frac": 0.5, "profile": "fixed64"}],
		"chaos": {"link_flaps": 2}
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := sim16(t, "", "-scenario-file", path)
	for _, want := range []string{`scenario\s+file-test`, `protocol\s+DCTCP`, `fault events\s+2`} {
		if !regexp.MustCompile(want).MatchString(out) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEdmsimListScenarios(t *testing.T) {
	out := sim16(t, "", "-list-scenarios")
	for _, want := range []string{"chaos-1024", "failover-16", "protocol-storm", "corruption-soak"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list-scenarios missing %q:\n%s", want, out)
		}
	}
}

func TestEdmsimErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-protocol", "nope"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run(nil, strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("empty trace accepted")
	}
	if err := run([]string{"-scenario", "nope"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", "chaos-1024", "-scenario-file", "x.json"},
		strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("mutually exclusive scenario flags accepted")
	}
	if err := run([]string{"-scenario", "failover-16", "-protocol", "DCTCP"},
		strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("trace-mode flag accepted in scenario mode")
	}
	if err := run([]string{"-seed", "7"}, strings.NewReader("0 0 1 64 R\n"), &out, &errb); err == nil {
		t.Fatal("-seed accepted in trace mode")
	}
}
