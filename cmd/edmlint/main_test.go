package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h: %v", err)
	}
}

func TestBadFlagIsFlagParse(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-no-such-flag"}, &out, &errb)
	if !errors.Is(err, cli.ErrFlagParse) {
		t.Fatalf("bad flag: got %v, want ErrFlagParse", err)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-only", "nosuch"}, &out, &errb)
	var ue cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("-only nosuch: got %v, want UsageError", err)
	}
}

func TestListDescribesSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, name := range []string{"walltime", "globalrand", "lockcheck", "hotpath",
		"pooledescape", "lockorder", "atomicmix"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestViolatingFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-only", "walltime", "../../internal/lint/testdata/walltime"}, &out, &errb)
	if err == nil {
		t.Fatalf("violating fixture: expected findings, got none\n%s", out.String())
	}
	if errors.Is(err, cli.ErrFlagParse) {
		t.Fatalf("violating fixture: got flag-parse error")
	}
	var ue cli.UsageError
	if errors.As(err, &ue) {
		t.Fatalf("violating fixture: got usage error %v, want findings (exit 1)", err)
	}
	if !strings.Contains(out.String(), "[walltime]") {
		t.Errorf("diagnostics missing [walltime] tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "bad.go:") {
		t.Errorf("diagnostics missing file:line position:\n%s", out.String())
	}
}

func TestCleanFixturePasses(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"../../internal/lint/testdata/clean"}, &out, &errb); err != nil {
		t.Fatalf("clean fixture: %v\n%s", err, out.String())
	}
}

// TestRepoClean is the acceptance gate: the suite must pass over the whole
// module at HEAD. The pattern walks from the module root (the test's working
// directory is cmd/edmlint).
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"../../..."}, &out, &errb); err != nil {
		t.Fatalf("edmlint ./... not clean: %v\n%s", err, out.String())
	}
	if !strings.Contains(errb.String(), "analyzer timing:") {
		t.Errorf("stderr missing analyzer timing line:\n%s", errb.String())
	}
}

func TestJSONReport(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-json", "-only", "walltime", "../../internal/lint/testdata/walltime"}, &out, &errb)
	if err == nil {
		t.Fatal("violating fixture under -json: expected findings error")
	}
	var rep struct {
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
		Analyzers []struct {
			Name    string `json:"name"`
			Elapsed int64  `json:"elapsed_ns"`
		} `json:"analyzers"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("JSON report has no findings for a violating fixture")
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "walltime" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if len(rep.Analyzers) != 1 || rep.Analyzers[0].Name != "walltime" {
		t.Errorf("timing section should cover exactly the analyzers run: %+v", rep.Analyzers)
	}
	// Human diagnostics moved to stderr.
	if !strings.Contains(errb.String(), "[walltime]") {
		t.Errorf("stderr missing human diagnostics under -json:\n%s", errb.String())
	}
}

func TestJSONCleanReportIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-json", "../../internal/lint/testdata/clean"}, &out, &errb); err != nil {
		t.Fatalf("clean fixture under -json: %v", err)
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Errorf("clean report should serialize findings as [], got:\n%s", out.String())
	}
}

func TestSARIFReport(t *testing.T) {
	var out, errb bytes.Buffer
	outFile := filepath.Join(t.TempDir(), "lint.sarif")
	err := run([]string{"-sarif", "-out", outFile, "-only", "walltime",
		"../../internal/lint/testdata/walltime"}, &out, &errb)
	if err == nil {
		t.Fatal("violating fixture under -sarif: expected findings error")
	}
	data, rerr := os.ReadFile(outFile)
	if rerr != nil {
		t.Fatalf("reading -out file: %v", rerr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("-out file is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "edmlint" || len(r.Tool.Driver.Rules) == 0 {
		t.Errorf("driver incomplete: %+v", r.Tool.Driver)
	}
	if len(r.Results) == 0 {
		t.Fatal("SARIF results empty for a violating fixture")
	}
	for _, res := range r.Results {
		if res.RuleID != "walltime" || res.Level != "error" || len(res.Locations) != 1 ||
			res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("incomplete result: %+v", res)
		}
	}
}

func TestJSONAndSARIFAreExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-json", "-sarif"}, &out, &errb)
	var ue cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("-json -sarif: got %v, want UsageError", err)
	}
}

// injectedModule is a minimal module violating each of the three new rules
// exactly once: an escaping pooled record, descending shard locks, and a
// plain read of an atomically-updated field.
const injectedGoMod = "module tmpmod\n\ngo 1.24\n"

const injectedSource = `package payload

import (
	"sync"
	"sync/atomic"
)

// msg is pooled; values are callback-scoped.
//
//edmlint:owned callback
type msg struct {
	data []byte
}

type shard struct {
	mu sync.Mutex
	n  int
}

type keeper struct {
	last   *msg
	shards [4]shard
	hits   uint64
}

// retain escapes the pooled record into a field.
func (k *keeper) retain(m *msg) {
	k.last = m
}

// descend locks shards in descending order.
func (k *keeper) descend(i int) {
	k.shards[i].mu.Lock()
	k.shards[i-1].mu.Lock()
	k.shards[i-1].n++
	k.shards[i-1].mu.Unlock()
	k.shards[i].mu.Unlock()
}

// bump updates hits atomically; peek reads it plainly.
func (k *keeper) bump() {
	atomic.AddUint64(&k.hits, 1)
}

func (k *keeper) peek() uint64 {
	return k.hits
}
`

// TestInjectedViolationsFailTheGate proves each new rule actually gates: a
// module violating pooledescape, lockorder, and atomicmix fails the run
// with all three analyzers reporting.
func TestInjectedViolationsFailTheGate(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(injectedGoMod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "payload.go"), []byte(injectedSource), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	var out, errb bytes.Buffer
	err := run([]string{"./..."}, &out, &errb)
	if err == nil {
		t.Fatalf("injected violations: expected findings, got none\n%s", out.String())
	}
	for _, tag := range []string{"[pooledescape]", "[lockorder]", "[atomicmix]"} {
		if !strings.Contains(out.String(), tag) {
			t.Errorf("diagnostics missing %s:\n%s", tag, out.String())
		}
	}
}
