package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cli"
)

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h: %v", err)
	}
}

func TestBadFlagIsFlagParse(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-no-such-flag"}, &out, &errb)
	if !errors.Is(err, cli.ErrFlagParse) {
		t.Fatalf("bad flag: got %v, want ErrFlagParse", err)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-only", "nosuch"}, &out, &errb)
	var ue cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("-only nosuch: got %v, want UsageError", err)
	}
}

func TestListDescribesSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, name := range []string{"walltime", "globalrand", "lockcheck", "hotpath"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestViolatingFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-only", "walltime", "../../internal/lint/testdata/walltime"}, &out, &errb)
	if err == nil {
		t.Fatalf("violating fixture: expected findings, got none\n%s", out.String())
	}
	if errors.Is(err, cli.ErrFlagParse) {
		t.Fatalf("violating fixture: got flag-parse error")
	}
	var ue cli.UsageError
	if errors.As(err, &ue) {
		t.Fatalf("violating fixture: got usage error %v, want findings (exit 1)", err)
	}
	if !strings.Contains(out.String(), "[walltime]") {
		t.Errorf("diagnostics missing [walltime] tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "bad.go:") {
		t.Errorf("diagnostics missing file:line position:\n%s", out.String())
	}
}

func TestCleanFixturePasses(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"../../internal/lint/testdata/clean"}, &out, &errb); err != nil {
		t.Fatalf("clean fixture: %v\n%s", err, out.String())
	}
}

// TestRepoClean is the acceptance gate: the suite must pass over the whole
// module at HEAD. The pattern walks from the module root (the test's working
// directory is cmd/edmlint).
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"../../..."}, &out, &errb); err != nil {
		t.Fatalf("edmlint ./... not clean: %v\n%s", err, out.String())
	}
}
