// Command edmlint runs the repo's project-specific static-analysis suite
// (internal/lint) over package patterns and prints file:line:col diagnostics.
// It exits 0 when clean, 1 when there are findings, 2 on bad usage — so a CI
// step is just `go run ./cmd/edmlint ./...`.
//
// Usage:
//
//	edmlint ./...                 # the whole module
//	edmlint -only walltime ./...  # one analyzer
//	edmlint -list                 # describe the suite
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	cli.Exit("edmlint", run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: patterns in, diagnostics out.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("edmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "run only these analyzers (comma-separated)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return cli.ErrFlagParse
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[name]
			if a == nil {
				return cli.Usagef("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.FindModule(".")
	if err != nil {
		return err
	}
	dirs, err := lint.ExpandPatterns(mod, patterns)
	if err != nil {
		return err
	}
	pkgs, err := lint.LoadPackages(mod, dirs)
	if err != nil {
		return err
	}

	total := 0
	for _, p := range pkgs {
		for _, f := range lint.Check(p, analyzers) {
			total++
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n",
				relPath(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if total > 0 {
		return fmt.Errorf("%d finding(s)", total)
	}
	return nil
}

// relPath shortens filenames to be relative to the working directory when
// possible, matching how go vet prints positions.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
