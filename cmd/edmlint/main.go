// Command edmlint runs the repo's project-specific static-analysis suite
// (internal/lint) over package patterns and prints file:line:col diagnostics.
// It exits 0 when clean, 1 when there are findings, 2 on bad usage — so a CI
// step is just `go run ./cmd/edmlint ./...`.
//
// Usage:
//
//	edmlint ./...                 # the whole module
//	edmlint -only walltime ./...  # one analyzer
//	edmlint -list                 # describe the suite
//	edmlint -json ./...           # machine-readable findings on stdout
//	edmlint -sarif -out f.sarif ./...  # SARIF 2.1.0 for code-scanning UIs
//
// With -json or -sarif the human diagnostics move to stderr and the report
// goes to stdout (or the -out file), so CI can both show the findings in
// the log and archive/annotate from the structured output. A per-analyzer
// timing summary is printed to stderr either way.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	cli.Exit("edmlint", run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one diagnostic in the -json report, with the file path
// already relativized the way the text output prints it.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output contract: stable field names, findings
// sorted the same way the text output is, timing in nanoseconds.
type jsonReport struct {
	Findings  []jsonFinding    `json:"findings"`
	Analyzers []analyzerTiming `json:"analyzers"`
}

type analyzerTiming struct {
	Name    string `json:"name"`
	Elapsed int64  `json:"elapsed_ns"`
}

// run is the testable entry point: patterns in, diagnostics out.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("edmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "run only these analyzers (comma-separated)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "write a JSON report to stdout (or -out)")
	asSARIF := fs.Bool("sarif", false, "write a SARIF 2.1.0 report to stdout (or -out)")
	outFile := fs.String("out", "", "write the -json/-sarif report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return cli.ErrFlagParse
	}
	if *asJSON && *asSARIF {
		return cli.Usagef("-json and -sarif are mutually exclusive")
	}
	if *outFile != "" && !*asJSON && !*asSARIF {
		return cli.Usagef("-out requires -json or -sarif")
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[name]
			if a == nil {
				return cli.Usagef("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.FindModule(".")
	if err != nil {
		return err
	}
	dirs, err := lint.ExpandPatterns(mod, patterns)
	if err != nil {
		return err
	}
	pkgs, err := lint.LoadPackages(mod, dirs)
	if err != nil {
		return err
	}

	// Wrap each analyzer to accumulate wall time across packages. The
	// timing lives here, not in internal/lint: lint is itself a
	// deterministic package and must not touch the clock.
	elapsed := make(map[string]*time.Duration, len(analyzers))
	timed := make([]*lint.Analyzer, len(analyzers))
	for i, a := range analyzers {
		a := a
		d := new(time.Duration)
		elapsed[a.Name] = d
		timed[i] = &lint.Analyzer{Name: a.Name, Doc: a.Doc,
			Run: func(p *lint.Package, dir *lint.Directives) []lint.Finding {
				start := time.Now()
				defer func() { *d += time.Since(start) }()
				return a.Run(p, dir)
			}}
	}

	var findings []jsonFinding
	for _, p := range pkgs {
		for _, f := range lint.Check(p, timed) {
			findings = append(findings, jsonFinding{
				File:     relPath(f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
	}

	// Human diagnostics: stdout normally, stderr when stdout carries a
	// structured report.
	diagOut := stdout
	if *asJSON || *asSARIF {
		diagOut = stderr
	}
	for _, f := range findings {
		fmt.Fprintf(diagOut, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
	}
	fmt.Fprintf(stderr, "edmlint: %s\n", timingLine(analyzers, elapsed))

	if *asJSON || *asSARIF {
		var data []byte
		if *asJSON {
			data, err = jsonBytes(analyzers, elapsed, findings)
		} else {
			data, err = sarifBytes(analyzers, findings)
		}
		if err != nil {
			return err
		}
		if *outFile != "" {
			if err := os.WriteFile(*outFile, data, 0o644); err != nil {
				return err
			}
		} else {
			stdout.Write(data)
		}
	}

	if len(findings) > 0 {
		return fmt.Errorf("%d finding(s)", len(findings))
	}
	return nil
}

// timingLine renders the per-analyzer wall-time summary, slowest first.
func timingLine(analyzers []*lint.Analyzer, elapsed map[string]*time.Duration) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.SliceStable(names, func(i, j int) bool {
		return *elapsed[names[i]] > *elapsed[names[j]]
	})
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s %s", n, elapsed[n].Round(time.Microsecond))
	}
	return "analyzer timing: " + strings.Join(parts, ", ")
}

func jsonBytes(analyzers []*lint.Analyzer, elapsed map[string]*time.Duration, findings []jsonFinding) ([]byte, error) {
	rep := jsonReport{Findings: findings, Analyzers: make([]analyzerTiming, len(analyzers))}
	if rep.Findings == nil {
		rep.Findings = []jsonFinding{}
	}
	for i, a := range analyzers {
		rep.Analyzers[i] = analyzerTiming{Name: a.Name, Elapsed: int64(*elapsed[a.Name])}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// SARIF 2.1.0 subset: enough structure for code-scanning UIs to place each
// finding (tool driver with rules, results with physical locations).
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func sarifBytes(analyzers []*lint.Analyzer, findings []jsonFinding) ([]byte, error) {
	rules := make([]sarifRule, len(analyzers), len(analyzers)+1)
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDesc: sarifMessage{Text: a.Doc}}
	}
	// Malformed suppression directives report under their own rule ID.
	rules = append(rules, sarifRule{ID: "directive",
		ShortDesc: sarifMessage{Text: "malformed //edmlint: directive"}})
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		results[i] = sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
			}}},
		}
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "edmlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// relPath shortens filenames to be relative to the working directory when
// possible, matching how go vet prints positions.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
