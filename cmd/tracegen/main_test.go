package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("tracegen %v: %v (%s)", args, err, errb.String())
	}
	return out.String()
}

func TestTracegenSeedStable(t *testing.T) {
	args := []string{"-profile", "memcached", "-nodes", "16", "-load", "0.5", "-count", "500", "-seed", "3"}
	a := gen(t, args...)
	b := gen(t, args...)
	if a != b {
		t.Fatal("same seed produced different traces")
	}
	c := gen(t, "-profile", "memcached", "-nodes", "16", "-load", "0.5", "-count", "500", "-seed", "4")
	if c == a {
		t.Fatal("different seed produced an identical trace")
	}
}

func TestTracegenOutputParses(t *testing.T) {
	out := gen(t, "-nodes", "8", "-count", "300", "-seed", "1")
	ops, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 296 { // 37 per node x 8 nodes (count/nodes rounds down)
		t.Fatalf("parsed %d ops", len(ops))
	}
	for i, op := range ops {
		if op.Src < 0 || op.Src >= 8 || op.Dst < 0 || op.Dst >= 8 || op.Src == op.Dst {
			t.Fatalf("op %d: bad endpoints %d->%d", i, op.Src, op.Dst)
		}
		if op.Size <= 0 {
			t.Fatalf("op %d: size %d", i, op.Size)
		}
	}
}

func TestTracegenRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-profile", "nope"}, &out, &errb); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run([]string{"-load", "2.0"}, &out, &errb); err == nil {
		t.Fatal("load > 1 accepted")
	}
}
