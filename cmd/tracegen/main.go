// Command tracegen generates synthetic disaggregated-memory traces from the
// built-in CDF profiles (the paper artifact's trace generator, §A.5.2).
//
// Usage:
//
//	tracegen -profile hadoop|spark|sparksql|graphlab|memcached|fixed64
//	         -nodes 144 -load 0.8 -count 20000 -readfrac 0.5 -seed 1 > trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	profile := flag.String("profile", "fixed64", "size profile: hadoop, spark, sparksql, graphlab, memcached, fixed64")
	nodes := flag.Int("nodes", 144, "cluster size")
	load := flag.Float64("load", 0.8, "offered load (0,1]")
	count := flag.Int("count", 20000, "operations")
	readFrac := flag.Float64("readfrac", 0.5, "fraction of reads")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	bw := flag.Int64("bw", 100, "link bandwidth (Gbps)")
	flag.Parse()

	var sizes workload.SizeDist
	switch *profile {
	case "hadoop":
		sizes = workload.Hadoop()
	case "spark":
		sizes = workload.Spark()
	case "sparksql":
		sizes = workload.SparkSQL()
	case "graphlab":
		sizes = workload.GraphLab()
	case "memcached":
		sizes = workload.Memcached()
	case "fixed64":
		sizes = workload.Fixed(64)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	ops, err := workload.Generate(workload.GenConfig{
		Nodes: *nodes, Load: *load, Bandwidth: sim.Gbps(*bw),
		Sizes: sizes, ReadFrac: *readFrac, Count: *count, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := trace.Write(os.Stdout, ops); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
