// Command tracegen generates synthetic disaggregated-memory traces from the
// built-in CDF profiles (the paper artifact's trace generator, §A.5.2).
//
// Usage:
//
//	tracegen -profile hadoop|spark|sparksql|graphlab|memcached|fixed64
//	         -nodes 144 -load 0.8 -count 20000 -readfrac 0.5 -seed 1 > trace.txt
package main

import (
	"errors"
	"flag"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cli.Exit("tracegen", run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, trace out.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "fixed64", "size profile: hadoop, spark, sparksql, graphlab, memcached, fixed64")
	nodes := fs.Int("nodes", 144, "cluster size")
	load := fs.Float64("load", 0.8, "offered load (0,1]")
	count := fs.Int("count", 20000, "operations")
	readFrac := fs.Float64("readfrac", 0.5, "fraction of reads")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	bw := fs.Int64("bw", 100, "link bandwidth (Gbps)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return cli.ErrFlagParse
	}

	sizes, err := workload.SizeDistByName(*profile)
	if err != nil {
		return cli.UsageError{S: err.Error()}
	}

	ops, err := workload.Generate(workload.GenConfig{
		Nodes: *nodes, Load: *load, Bandwidth: sim.Gbps(*bw),
		Sizes: sizes, ReadFrac: *readFrac, Count: *count, Seed: *seed,
	})
	if err != nil {
		return err
	}
	return trace.Write(stdout, ops)
}
