// Package transport provides the baseline network stacks EDM is compared
// against: per-component latency models of TCP/IP-in-hardware, RoCEv2 and
// raw Ethernet for the unloaded-testbed comparison (Table 1), and shared
// wire-overhead accounting used by the large-scale simulator's protocol
// models (internal/netsim).
package transport

import (
	"repro/internal/mac"
	"repro/internal/sim"
)

// Component latencies measured on the paper's testbed (Table 1 and its
// caption). All four stacks run on the same 25 GbE PHY.
const (
	// Per-traversal protocol stack data-path latency.
	TCPStackLatency  = 666200 * sim.Picosecond // hardware TCP/IP
	RoCEStackLatency = 230200 * sim.Picosecond // RoCEv2

	// Ethernet MAC latency per traversal.
	MACLatency = 7680 * sim.Picosecond // 3 cycles

	// Standard PCS latency per traversal.
	PCSLatency = 7680 * sim.Picosecond

	// Layer-2 forwarding pipeline of the baseline switch:
	// parser 87 ns + match-action 202 ns + packet manager 93 ns +
	// crossbar 18 ns = 400 ns.
	L2ParserLatency       = 87 * sim.Nanosecond
	L2MatchActionLatency  = 202 * sim.Nanosecond
	L2PacketMgrLatency    = 93 * sim.Nanosecond
	L2CrossbarLatency     = 18 * sim.Nanosecond
	L2ForwardingLatency   = L2ParserLatency + L2MatchActionLatency + L2PacketMgrLatency + L2CrossbarLatency
	PMAPMDTransceiverEach = 19 * sim.Nanosecond
	PropagationPerHop     = 10 * sim.Nanosecond
)

// Stack identifies one of the compared network stacks.
type Stack int

const (
	StackTCP Stack = iota
	StackRoCE
	StackRawEthernet
	StackEDM
)

// String names the stack as in Table 1.
func (s Stack) String() string {
	switch s {
	case StackTCP:
		return "TCP/IP in hardware"
	case StackRoCE:
		return "RDMA (RoCEv2)"
	case StackRawEthernet:
		return "Raw Ethernet"
	case StackEDM:
		return "EDM"
	}
	return "?"
}

// Breakdown is one Table 1 column: the per-location latency contributions
// for a remote read or write.
type Breakdown struct {
	Stack Stack
	Write bool

	ComputeStack sim.Time
	ComputeMAC   sim.Time
	ComputePCS   sim.Time
	SwitchL2     sim.Time
	SwitchMAC    sim.Time
	SwitchPCS    sim.Time
	MemoryStack  sim.Time
	MemoryMAC    sim.Time
	MemoryPCS    sim.Time

	PMAPMD      sim.Time
	Propagation sim.Time
}

// StackTotal is the network-stack latency (everything above PMA/PMD).
func (b Breakdown) StackTotal() sim.Time {
	return b.ComputeStack + b.ComputeMAC + b.ComputePCS +
		b.SwitchL2 + b.SwitchMAC + b.SwitchPCS +
		b.MemoryStack + b.MemoryMAC + b.MemoryPCS
}

// Total is the full fabric latency.
func (b Breakdown) Total() sim.Time { return b.StackTotal() + b.PMAPMD + b.Propagation }

// edmPCS* are EDM's PCS-path latencies from Table 1's blue cells, derived
// from the Figure 5 cycle counts at 2.56 ns per cycle.
const (
	cyc = 2560 * sim.Picosecond

	// Read: compute node 2x2cyc + 5cyc; switch 4x2cyc + 11cyc;
	// memory node 2x2cyc + 10cyc.
	edmReadComputePCS = 2*2*cyc + 5*cyc
	edmReadSwitchPCS  = 4*2*cyc + 11*cyc
	edmReadMemoryPCS  = 2*2*cyc + 10*cyc

	// Write: compute node 3x2cyc + 11cyc; switch 4x2cyc + 11cyc;
	// memory node 1x2cyc + 3cyc.
	edmWriteComputePCS = 3*2*cyc + 11*cyc
	edmWriteSwitchPCS  = 4*2*cyc + 11*cyc
	edmWriteMemoryPCS  = 1*2*cyc + 3*cyc
)

// Table1 computes the Table 1 breakdown for the given stack and operation.
// A read crosses the fabric twice (request + response): every baseline
// component is paid twice on the read path and once on the write path,
// except the switch, which both directions traverse. EDM pays no protocol
// stack, no MAC and no layer-2 forwarding; its PCS cycle counts come from
// Figure 5.
func Table1(s Stack, write bool) Breakdown {
	b := Breakdown{Stack: s, Write: write}
	passes := sim.Time(2) // read: request + response
	if write {
		passes = 1
	}
	switch s {
	case StackTCP, StackRoCE, StackRawEthernet:
		stack := sim.Time(0)
		switch s {
		case StackTCP:
			stack = TCPStackLatency
		case StackRoCE:
			stack = RoCEStackLatency
		}
		b.ComputeStack = passes * stack
		b.ComputeMAC = passes * MACLatency
		b.ComputePCS = passes * PCSLatency
		b.SwitchL2 = passes * L2ForwardingLatency
		b.SwitchMAC = 2 * passes * MACLatency // ingress + egress MAC
		b.SwitchPCS = 2 * passes * PCSLatency
		b.MemoryStack = passes * stack
		b.MemoryMAC = passes * MACLatency
		b.MemoryPCS = passes * PCSLatency
	case StackEDM:
		if write {
			b.ComputePCS = edmWriteComputePCS
			b.SwitchPCS = edmWriteSwitchPCS
			b.MemoryPCS = edmWriteMemoryPCS
		} else {
			b.ComputePCS = edmReadComputePCS
			b.SwitchPCS = edmReadSwitchPCS
			b.MemoryPCS = edmReadMemoryPCS
		}
	}
	// Physical layer: each link traversal crosses PMA/PMD twice. A read
	// traverses 4 links, a write 2 — but EDM's write also pays the
	// notification+grant round trip on the compute-side link (Table 1
	// shows 8x19 ns and 4x10 ns for both EDM columns).
	linkTraversals := sim.Time(4)
	if write && s != StackEDM {
		linkTraversals = 2
	}
	b.PMAPMD = 2 * linkTraversals * PMAPMDTransceiverEach
	b.Propagation = linkTraversals * PropagationPerHop
	return b
}

// WireBytes reports the on-wire bytes each stack needs to move n payload
// bytes in one message — the bandwidth-efficiency model behind Figure 6.
// TCP/IP and RoCEv2 add their headers inside the Ethernet frame; EDM uses
// 66-bit PHY blocks with no frame, no preamble and no IFG.
func WireBytes(s Stack, n int) int {
	switch s {
	case StackTCP:
		// Ethernet + IPv4 (20) + TCP (20).
		return mac.WireBytes(n + 40)
	case StackRoCE:
		// Ethernet + IPv4 (20) + UDP (8) + IB BTH (12) + RETH (16) + ICRC (4).
		return mac.WireBytes(n + 60)
	case StackRawEthernet:
		return mac.WireBytes(n)
	case StackEDM:
		// ceil(n/8) data blocks + /MS/ + /MT/, 66 bits each, on an
		// otherwise idle-filled line whose idles EDM repurposes.
		blocks := 2 + (n+7)/8
		if n == 0 {
			blocks = 1
		}
		return (blocks*66 + 7) / 8
	}
	return n
}

// Goodput reports the fraction of link bandwidth delivering payload for
// back-to-back n-byte messages on stack s.
func Goodput(s Stack, n int) float64 {
	return float64(n) / float64(WireBytes(s, n))
}
