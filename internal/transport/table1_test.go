package transport

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func ns(f float64) sim.Time { return sim.Time(math.Round(f * 1000)) }

func TestTable1TotalsMatchPaper(t *testing.T) {
	cases := []struct {
		stack             Stack
		write             bool
		stackTotal, total float64 // ns, from Table 1
	}{
		{StackTCP, false, 3587.68, 3779.68},
		{StackTCP, true, 1793.84, 1889.84},
		{StackRoCE, false, 1843.68, 2035.68},
		{StackRoCE, true, 921.84, 1017.84},
		{StackRawEthernet, false, 922.88, 1114.88},
		{StackRawEthernet, true, 461.44, 557.44},
		{StackEDM, false, 107.52, 299.52},
		{StackEDM, true, 104.96, 296.96},
	}
	for _, c := range cases {
		b := Table1(c.stack, c.write)
		op := "read"
		if c.write {
			op = "write"
		}
		if got := b.StackTotal(); got != ns(c.stackTotal) {
			t.Errorf("%v %s stack total = %v, want %.2fns", c.stack, op, got, c.stackTotal)
		}
		if got := b.Total(); got != ns(c.total) {
			t.Errorf("%v %s total = %v, want %.2fns", c.stack, op, got, c.total)
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	// §4.2.1: EDM's read (write) latency is 3.7x (1.9x), 6.8x (3.4x) and
	// 12.7x (6.4x) lower than raw Ethernet, RoCEv2 and TCP/IP.
	edmR := float64(Table1(StackEDM, false).Total())
	edmW := float64(Table1(StackEDM, true).Total())
	checks := []struct {
		stack Stack
		write bool
		want  float64
	}{
		{StackRawEthernet, false, 3.7},
		{StackRawEthernet, true, 1.9},
		{StackRoCE, false, 6.8},
		{StackRoCE, true, 3.4},
		{StackTCP, false, 12.7},
		{StackTCP, true, 6.4},
	}
	for _, c := range checks {
		base := edmR
		if c.write {
			base = edmW
		}
		ratio := float64(Table1(c.stack, c.write).Total()) / base
		if math.Abs(ratio-c.want) > 0.1 {
			t.Errorf("%v write=%v ratio = %.2f, want %.1f", c.stack, c.write, ratio, c.want)
		}
	}
}

func TestL2PipelineComposition(t *testing.T) {
	if L2ForwardingLatency != 400*sim.Nanosecond {
		t.Fatalf("L2 pipeline = %v, want 400ns", L2ForwardingLatency)
	}
}

func TestWireBytes(t *testing.T) {
	// 8 B RREQ: EDM needs 3 blocks = 24.75 -> 25 B; raw Ethernet needs a
	// full 84 B minimum wire frame; RoCE adds 60 B of headers on top.
	if got := WireBytes(StackEDM, 8); got != 25 {
		t.Errorf("EDM 8B = %d", got)
	}
	if got := WireBytes(StackRawEthernet, 8); got != 84 {
		t.Errorf("raw 8B = %d", got)
	}
	if got := WireBytes(StackRoCE, 8); got != 8+60+18+8+12 {
		t.Errorf("roce 8B = %d", got)
	}
	if got := WireBytes(StackTCP, 64); got != 64+40+18+8+12 {
		t.Errorf("tcp 64B = %d", got)
	}
}

func TestGoodputOrdering(t *testing.T) {
	// For small messages EDM's goodput must dominate every MAC-based
	// stack; the gap is the Figure 6 bandwidth argument.
	for _, n := range []int{8, 16, 64, 100, 256} {
		edm := Goodput(StackEDM, n)
		for _, s := range []Stack{StackTCP, StackRoCE, StackRawEthernet} {
			if g := Goodput(s, n); g >= edm {
				t.Errorf("n=%d: %v goodput %.3f >= EDM %.3f", n, s, g, edm)
			}
		}
	}
	// EDM vs RoCE at the Figure 6 operating point (1 KB reads, 8 B RREQ,
	// 100 B writes): EDM should deliver roughly 2-3x the request rate.
	ratio := Goodput(StackEDM, 100) / Goodput(StackRoCE, 100)
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("EDM/RoCE goodput ratio at 100B = %.2f", ratio)
	}
}
