package cluster

import (
	"strconv"

	"repro/internal/telemetry"
)

// Metrics holds the cluster client's counters, pre-registered so the routed
// hot path only touches atomics. NodeOps is indexed by node.
type Metrics struct {
	// NodeOps counts requests routed to each node (primary, mirror, and
	// failover traffic alike).
	NodeOps []*telemetry.Counter
	// SplitOps counts ops that spanned an extent boundary and were split.
	SplitOps *telemetry.Counter
	// Failovers counts segments that fell back to the other replica after a
	// retry-budget timeout (reads re-routed to the mirror; writes or RMWs
	// acked by only one replica).
	Failovers *telemetry.Counter
	// Evictions counts nodes the client declared dead (scenario events or
	// the auto-evict threshold).
	Evictions *telemetry.Counter
	// Epoch mirrors the active map epoch.
	Epoch *telemetry.Gauge
	// RebalanceExtents/RebalanceBytes count extent copies driven by epoch
	// changes; RebalanceNS times each whole rebalance pass.
	RebalanceExtents *telemetry.Counter
	RebalanceBytes   *telemetry.Counter
	RebalanceNS      *telemetry.Histogram
	// RebalanceErrors counts failed background rebalance passes. A non-zero
	// value with no later successful pass means some extents are still
	// single-homed; a manual Rebalance repairs them.
	RebalanceErrors *telemetry.Counter
}

// NewMetrics registers the cluster client family (`cluster_*`) in r for a
// cluster of nodes nodes. A nil registry yields working but unexported
// metrics.
func NewMetrics(r *telemetry.Registry, nodes int) *Metrics {
	m := &Metrics{
		SplitOps:         r.Counter("cluster_split_ops_total"),
		Failovers:        r.Counter("cluster_failover_total"),
		Evictions:        r.Counter("cluster_evictions_total"),
		Epoch:            r.Gauge("cluster_map_epoch"),
		RebalanceExtents: r.Counter("cluster_rebalance_extents_total"),
		RebalanceBytes:   r.Counter("cluster_rebalance_bytes_total"),
		RebalanceNS:      r.Histogram("cluster_rebalance_duration_ns"),
		RebalanceErrors:  r.Counter("cluster_rebalance_errors_total"),
	}
	m.NodeOps = make([]*telemetry.Counter, nodes)
	for n := range m.NodeOps {
		m.NodeOps[n] = r.Counter(`cluster_client_node_ops_total{node="` + strconv.Itoa(n) + `"}`)
	}
	return m
}
