package cluster

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memctl"
	"repro/internal/rmem"
	"repro/internal/sim"
	"repro/internal/wire"
)

const (
	testSlabBytes   = 4 << 20
	testExtentBytes = 64 << 10
)

// testNode is one in-process memory node with a kill switch: dead nodes drop
// every datagram, so requests to them burn the retry budget.
type testNode struct {
	cl   *rmem.Client
	dead atomic.Bool
}

// newTestCluster builds a connected cluster over n loopback nodes with a
// tight retry budget (a dead-node sub fails over in ~2ms).
func newTestCluster(t *testing.T, n int, cfg Config) (*Client, []*testNode) {
	t.Helper()
	if cfg.ExtentBytes == 0 {
		cfg.ExtentBytes = testExtentBytes
	}
	nodes := make([]*testNode, n)
	clients := make([]*rmem.Client, n)
	for i := 0; i < n; i++ {
		tn := &testNode{}
		srv, err := rmem.NewServer(rmem.ServerConfig{Geometry: rmem.Geometry{SlabBytes: testSlabBytes}})
		if err != nil {
			t.Fatal(err)
		}
		lb := wire.NewLoopback(wire.LoopbackConfig{
			Fault: func(sim.Time, wire.Dir, []byte) wire.Fault {
				if tn.dead.Load() {
					return wire.FaultDrop
				}
				return wire.FaultNone
			},
		})
		cl := rmem.NewClient(lb.ClientPipe(), rmem.ClientConfig{
			Window: 8,
			Retry:  wire.ConnConfig{RetryTimeout: time.Millisecond, MaxRetries: 1},
		})
		lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
		lb.BindClient(cl.Deliver)
		if err := cl.Connect(); err != nil {
			t.Fatal(err)
		}
		tn.cl = cl
		nodes[i], clients[i] = tn, cl
	}
	cc, err := New(clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc, nodes
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestClusterRoundTripSplit(t *testing.T) {
	cc, _ := newTestCluster(t, 4, Config{Seed: 42})
	// Spans the extent 0 / extent 1 boundary: routed as two segments, very
	// likely to two different primaries.
	addr := uint64(testExtentBytes) - 100
	want := pattern(200, 3)
	if err := cc.WriteSync(addr, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := cc.ReadSync(addr, len(want))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("split round trip corrupted data")
	}
	if n := cc.Metrics().SplitOps.Load(); n != 2 {
		t.Fatalf("split ops %d, want 2 (one write + one read)", n)
	}
}

func TestClusterWriteThrough(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42})
	addr := uint64(2 * testExtentBytes)
	want := pattern(128, 9)
	if err := cc.WriteSync(addr, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	e, err := cc.Map().Locate(addr)
	if err != nil {
		t.Fatal(err)
	}
	pri, mir := cc.Map().Extent(e)
	// Identity address mapping: the same address on both replicas.
	for _, n := range []int{pri, mir} {
		got, err := nodes[n].cl.ReadSync(addr, len(want))
		if err != nil {
			t.Fatalf("direct read node %d: %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node %d replica does not hold the written data", n)
		}
	}
}

func TestClusterReadFailover(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42})
	addr := uint64(5 * testExtentBytes)
	want := pattern(256, 1)
	if err := cc.WriteSync(addr, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	e, _ := cc.Map().Locate(addr)
	pri, _ := cc.Map().Extent(e)
	nodes[pri].dead.Store(true)
	got, err := cc.ReadSync(addr, len(want))
	if err != nil {
		t.Fatalf("read with dead primary: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover read returned wrong data")
	}
	if n := cc.Metrics().Failovers.Load(); n == 0 {
		t.Fatal("failover not counted")
	}
}

func TestClusterKillMirrorLosesNoAcks(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42})
	addr := uint64(7 * testExtentBytes)
	e, _ := cc.Map().Locate(addr)
	pri, mir := cc.Map().Extent(e)
	nodes[mir].dead.Store(true)
	// Every write is acked by the primary alone; none may fail.
	want := pattern(64, 5)
	for i := 0; i < 4; i++ {
		if err := cc.WriteSync(addr+uint64(i)*64, want); err != nil {
			t.Fatalf("write %d with dead mirror: %v", i, err)
		}
	}
	got, err := nodes[pri].cl.ReadSync(addr, 64)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("primary lost an acked write: %v", err)
	}
	if n := cc.Metrics().Failovers.Load(); n == 0 {
		t.Fatal("one-replica writes not counted as failovers")
	}
}

func TestClusterRMWWriteThrough(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42})
	addr := uint64(3 * testExtentBytes)
	v, err := cc.RMWSync(addr, memctl.OpFetchAdd, 5)
	if err != nil || v != 0 {
		t.Fatalf("fetchadd = %d, %v; want 0", v, err)
	}
	v, err = cc.RMWSync(addr, memctl.OpFetchAdd, 5)
	if err != nil || v != 5 {
		t.Fatalf("second fetchadd = %d, %v; want 5", v, err)
	}
	e, _ := cc.Map().Locate(addr)
	_, mir := cc.Map().Extent(e)
	// The computed stored value is written through before the callback, so
	// the mirror already holds 10.
	got, err := nodes[mir].cl.RMWSync(addr, memctl.OpFetchAdd, 0)
	if err != nil || got != 10 {
		t.Fatalf("mirror holds %d, %v; want 10", got, err)
	}
}

func TestClusterRMWFailover(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42})
	addr := uint64(9 * testExtentBytes)
	if _, err := cc.RMWSync(addr, memctl.OpSwap, 77); err != nil {
		t.Fatalf("seed swap: %v", err)
	}
	e, _ := cc.Map().Locate(addr)
	pri, _ := cc.Map().Extent(e)
	nodes[pri].dead.Store(true)
	v, err := cc.RMWSync(addr, memctl.OpFetchAdd, 1)
	if err != nil {
		t.Fatalf("RMW with dead primary: %v", err)
	}
	if v != 77 {
		t.Fatalf("failover RMW saw %d, want the mirrored 77", v)
	}
	if n := cc.Metrics().Failovers.Load(); n == 0 {
		t.Fatal("RMW failover not counted")
	}
}

func TestClusterAllReplicasDead(t *testing.T) {
	cc, nodes := newTestCluster(t, 2, Config{Seed: 1})
	// Two nodes: every extent is homed on both; killing both strands all.
	nodes[0].dead.Store(true)
	nodes[1].dead.Store(true)
	_, err := cc.ReadSync(0, 64)
	if err == nil {
		t.Fatal("read with every replica dead succeeded")
	}
	if !errors.Is(err, rmem.ErrDeadline) {
		t.Fatalf("err = %v, want a rmem.ErrDeadline", err)
	}
	if err := cc.WriteSync(0, make([]byte, 64)); !errors.Is(err, rmem.ErrDeadline) {
		t.Fatalf("write err = %v, want a rmem.ErrDeadline", err)
	}
}

//edmlint:allow walltime the test polls for the asynchronous eviction under real wall-clock deadlines
func TestClusterAutoEvict(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42, AutoEvict: 2})
	const dead = 1
	nodes[dead].dead.Store(true)
	// Find an extent homed on the dead node and hammer it until the deadline
	// streak evicts the node and the epoch advances.
	m := cc.Map()
	addr := uint64(0)
	for e := 0; e < m.Extents(); e++ {
		if pri, _ := m.Extent(e); pri == dead {
			addr = uint64(e) * cc.ExtentBytes()
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for cc.Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-evict never advanced the epoch")
		}
		_, _ = cc.ReadSync(addr, 64)
	}
	for wait := time.Now().Add(5 * time.Second); cc.Map().Alive(dead); {
		if time.Now().After(wait) {
			t.Fatal("epoch advanced but node still alive")
		}
		time.Sleep(time.Millisecond)
	}
	// Routed ops now avoid the dead node entirely: no more failovers needed.
	before := cc.Metrics().Failovers.Load()
	if _, err := cc.ReadSync(addr, 64); err != nil {
		t.Fatalf("read after eviction: %v", err)
	}
	if n := cc.Metrics().Failovers.Load(); n != before {
		t.Fatal("post-eviction read still failed over")
	}
}

// TestClusterFailoverTargetAfterRehome pins the failover preference order.
// Under the routing epoch a timed-out primary fails over to the mirror; but
// once the map re-homes an extent (the old mirror promoted to primary, a
// fresh node as the new mirror), an in-flight op that timed out on the dead
// old primary must fail over to the promoted primary — the replica holding
// the data — never to the not-yet-rebalanced empty mirror.
func TestClusterFailoverTargetAfterRehome(t *testing.T) {
	cc, _ := newTestCluster(t, 4, Config{Seed: 42})
	old := cc.Map()
	// Same-epoch sanity: each replica's alternative is the other replica.
	for e := 0; e < old.Extents(); e++ {
		pri, mir := old.Extent(e)
		addr := uint64(e) * cc.ExtentBytes()
		if alt, ok := cc.altFor(&subOp{addr: addr, node: pri}); !ok || alt != mir {
			t.Fatalf("extent %d: primary timeout failed over to %d (%v), want mirror %d", e, alt, ok, mir)
		}
		if alt, ok := cc.altFor(&subOp{addr: addr, node: mir}); !ok || alt != pri {
			t.Fatalf("extent %d: mirror timeout failed over to %d (%v), want primary %d", e, alt, ok, pri)
		}
	}
	const dead = 1
	if _, _, err := cc.MarkDead(dead); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < old.Extents(); e++ {
		pri, mir := old.Extent(e)
		if pri != dead {
			continue
		}
		// An op routed under the old epoch whose retry budget expired on the
		// dead primary after the re-home: the only replica with the data is
		// the promoted old mirror.
		alt, ok := cc.altFor(&subOp{addr: uint64(e) * cc.ExtentBytes(), node: dead})
		if !ok {
			t.Fatalf("extent %d: no failover target after re-home", e)
		}
		if alt != mir {
			t.Fatalf("extent %d: failover chose node %d, want the promoted old mirror %d (the replica holding the data)", e, alt, mir)
		}
	}
}

// TestClusterRebalanceFailureSurfacedAndRetried exercises the background
// rebalance failure path: a pass whose copy source is unreachable must bump
// cluster_rebalance_errors_total and keep its baseline, and a later deadline
// completion must re-arm a retry that finishes the outstanding copies.
//
//edmlint:allow walltime the test polls for the background retry under real wall-clock deadlines
func TestClusterRebalanceFailureSurfacedAndRetried(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42, AutoEvict: 100})
	want := pattern(64, 7)
	for e := 0; e < cc.Map().Extents(); e++ {
		if err := cc.WriteSync(uint64(e)*cc.ExtentBytes(), want); err != nil {
			t.Fatalf("seed extent %d: %v", e, err)
		}
	}
	const dead = 1
	nodes[dead].dead.Store(true)
	old, cur, err := cc.MarkDead(dead)
	if err != nil {
		t.Fatal(err)
	}
	moves := Diff(old, cur)
	if len(moves) == 0 {
		t.Fatal("no moves after a node death")
	}
	// Kill the first move's copy source so the pass fails on its first copy.
	src := moves[0].From
	nodes[src].dead.Store(true)
	cc.rebalancePass(old, cur)
	if n := cc.Metrics().RebalanceErrors.Load(); n == 0 {
		t.Fatal("failed rebalance pass not counted in cluster_rebalance_errors_total")
	}
	cc.mu.Lock()
	pending := cc.pendingOld != nil
	cc.mu.Unlock()
	if !pending {
		t.Fatal("failed pass dropped its baseline; retry impossible")
	}
	// Revive the source; the next deadline completion on any node re-arms
	// the retry in the background.
	nodes[src].dead.Store(false)
	cc.noteDeadline(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		cc.mu.Lock()
		done := cc.pendingOld == nil && !cc.rebalBusy
		cc.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background rebalance retry never completed")
		}
		time.Sleep(time.Millisecond)
	}
	// Every re-homed extent is dual-homed again with the data on both homes.
	m := cc.Map()
	for _, mv := range moves {
		addr := uint64(mv.Extent) * cc.ExtentBytes()
		pri, mir := m.Extent(mv.Extent)
		for _, n := range []int{pri, mir} {
			got, err := nodes[n].cl.ReadSync(addr, 64)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("extent %d replica on node %d missing after retried rebalance: %v", mv.Extent, n, err)
			}
		}
	}
}

func TestClusterRebalanceRemirrors(t *testing.T) {
	cc, nodes := newTestCluster(t, 4, Config{Seed: 42})
	// Seed every extent with a known pattern through the cluster.
	want := pattern(64, 11)
	for e := 0; e < cc.Map().Extents(); e++ {
		if err := cc.WriteSync(uint64(e)*cc.ExtentBytes(), want); err != nil {
			t.Fatalf("seed extent %d: %v", e, err)
		}
	}
	const dead = 2
	nodes[dead].dead.Store(true)
	old, cur, err := cc.MarkDead(dead)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cc.Rebalance(old, cur)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if st.Lost != 0 {
		t.Fatalf("%d extents lost on a single-node death", st.Lost)
	}
	if st.Extents == 0 || st.Bytes == 0 {
		t.Fatalf("rebalance moved nothing: %+v", st)
	}
	// Every extent is again dual-homed with the data present on both homes.
	m := cc.Map()
	for e := 0; e < m.Extents(); e++ {
		addr := uint64(e) * cc.ExtentBytes()
		pri, mir := m.Extent(e)
		for _, n := range []int{pri, mir} {
			got, err := nodes[n].cl.ReadSync(addr, 64)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("extent %d replica on node %d missing after rebalance: %v", e, n, err)
			}
		}
	}
}
