// Package cluster stripes one flat address space across N memory nodes and
// survives node death, reproducing the paper's §3.3 dual-homing story at the
// service layer: every fixed-size extent of the address space is assigned to
// a primary and a mirror node (never the same node), writes go through to
// both, and reads fail over to the mirror when the primary's retry budget
// runs out. The assignment is a versioned, seed-deterministic rendezvous
// hash, so joins and leaves move only the extents that must move and every
// routing decision is stamped with the map epoch that produced it.
package cluster

import (
	"errors"
	"fmt"
)

// DefaultExtentBytes is the extent size when Config leaves it zero: large
// enough that almost no op spans a boundary, small enough that a 16-node map
// over a modest slab still spreads load.
const DefaultExtentBytes = 1 << 20

// Map errors.
var (
	// ErrTooFewNodes rejects maps (or leaves) that cannot dual-home: every
	// extent needs two distinct alive nodes.
	ErrTooFewNodes = errors.New("cluster: fewer than two alive nodes")
	// ErrBadExtent rejects addresses outside the cluster address space.
	ErrBadExtent = errors.New("cluster: address outside cluster space")
)

// Map is an immutable, seed-deterministic assignment of extents to a
// (primary, mirror) node pair. Leave and Join return a successor map with
// the epoch advanced; they never mutate the receiver, so a Map can be read
// without locks once published.
type Map struct {
	seed        uint64
	size        uint64 // cluster address space in bytes
	extentBytes uint64
	epoch       uint64
	alive       []bool // indexed by node
	primary     []int  // indexed by extent
	mirror      []int  // indexed by extent
}

// NewMap builds the epoch-0 map: size bytes of address space in extents of
// extentBytes (0 takes DefaultExtentBytes), dual-homed over nodes alive
// nodes. size is rounded down to a whole number of extents — never up, so
// Map.Size() only ever reports space the backing slabs actually hold — and
// must cover at least one extent.
func NewMap(seed, size, extentBytes uint64, nodes int) (*Map, error) {
	if extentBytes == 0 {
		extentBytes = DefaultExtentBytes
	}
	if nodes < 2 {
		return nil, fmt.Errorf("%w: %d", ErrTooFewNodes, nodes)
	}
	extents := int(size / extentBytes)
	if extents == 0 {
		return nil, fmt.Errorf("cluster: size %d smaller than one extent (%d)", size, extentBytes)
	}
	m := &Map{
		seed:        seed,
		size:        uint64(extents) * extentBytes,
		extentBytes: extentBytes,
		alive:       make([]bool, nodes),
		primary:     make([]int, extents),
		mirror:      make([]int, extents),
	}
	for n := range m.alive {
		m.alive[n] = true
	}
	m.assign()
	return m, nil
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// used as the rendezvous weight hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// weight ranks node for extent: highest-random-weight (rendezvous) hashing.
// A node's weight for an extent never changes, so removing one node only
// reassigns the extents it was ranked first or second for — the
// consistent-hash minimal-movement property without a ring.
func (m *Map) weight(extent, node int) uint64 {
	return mix64(m.seed ^ mix64(uint64(extent)+0x9e3779b97f4a7c15) ^ mix64(uint64(node)+0x2545f4914f6cdd1d))
}

// assign recomputes primary/mirror for every extent from the alive set.
func (m *Map) assign() {
	for e := range m.primary {
		best, second := -1, -1
		var bestW, secondW uint64
		for n := range m.alive {
			if !m.alive[n] {
				continue
			}
			w := m.weight(e, n)
			switch {
			case best < 0 || w > bestW:
				second, secondW = best, bestW
				best, bestW = n, w
			case second < 0 || w > secondW:
				second, secondW = n, w
			}
		}
		m.primary[e] = best
		m.mirror[e] = second
	}
}

// clone copies the map with the epoch advanced by one.
func (m *Map) clone() *Map {
	c := &Map{
		seed:        m.seed,
		size:        m.size,
		extentBytes: m.extentBytes,
		epoch:       m.epoch + 1,
		alive:       append([]bool(nil), m.alive...),
		primary:     append([]int(nil), m.primary...),
		mirror:      append([]int(nil), m.mirror...),
	}
	return c
}

// Leave returns the successor map without node. It fails with ErrTooFewNodes
// when fewer than two alive nodes would remain, and is a pure epoch bump if
// the node is already dead.
func (m *Map) Leave(node int) (*Map, error) {
	if node < 0 || node >= len(m.alive) {
		return nil, fmt.Errorf("cluster: leave of unknown node %d", node)
	}
	c := m.clone()
	c.alive[node] = false
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: %d after node %d leaves", ErrTooFewNodes, n, node)
	}
	c.assign()
	return c, nil
}

// Join returns the successor map with node alive again (or for the first
// time, when the initial map was built excluding it via Leave).
func (m *Map) Join(node int) (*Map, error) {
	if node < 0 || node >= len(m.alive) {
		return nil, fmt.Errorf("cluster: join of unknown node %d", node)
	}
	c := m.clone()
	c.alive[node] = true
	c.assign()
	return c, nil
}

// Epoch is the map version; every successor map advances it by one.
func (m *Map) Epoch() uint64 { return m.epoch }

// Size is the cluster address space in bytes (a whole number of extents).
func (m *Map) Size() uint64 { return m.size }

// ExtentBytes is the extent size.
func (m *Map) ExtentBytes() uint64 { return m.extentBytes }

// Extents is the extent count.
func (m *Map) Extents() int { return len(m.primary) }

// Nodes is the total node count (alive or not).
func (m *Map) Nodes() int { return len(m.alive) }

// Alive reports whether node is in the alive set.
func (m *Map) Alive(node int) bool { return node >= 0 && node < len(m.alive) && m.alive[node] }

// AliveCount is the number of alive nodes.
func (m *Map) AliveCount() int {
	n := 0
	for _, a := range m.alive {
		if a {
			n++
		}
	}
	return n
}

// Locate maps an address to its extent index.
//
//edmlint:hotpath one lookup per routed segment
func (m *Map) Locate(addr uint64) (int, error) {
	if addr >= m.size {
		return 0, ErrBadExtent
	}
	return int(addr / m.extentBytes), nil
}

// Extent returns extent e's (primary, mirror) pair.
//
//edmlint:hotpath one lookup per routed segment
func (m *Map) Extent(e int) (primary, mirror int) { return m.primary[e], m.mirror[e] }

// Move describes one extent whose replica set changed between two maps:
// From is a surviving holder to copy from (-1 when both old holders are
// gone — the data for that extent is lost), To are the nodes that must
// receive a copy.
type Move struct {
	Extent int
	From   int
	To     []int
}

// Diff computes, in extent order, the copies needed to bring cur's replica
// placement up to date from old. Only extents with at least one new holder
// appear.
func Diff(old, cur *Map) []Move {
	var moves []Move
	for e := range cur.primary {
		op, om := old.primary[e], old.mirror[e]
		var to []int
		for _, n := range []int{cur.primary[e], cur.mirror[e]} {
			if n != op && n != om {
				to = append(to, n)
			}
		}
		if len(to) == 0 {
			continue
		}
		from := -1
		// Prefer the old primary as the copy source; it has the
		// authoritative value even if a mirror write was lost.
		if op >= 0 && cur.Alive(op) {
			from = op
		} else if om >= 0 && cur.Alive(om) {
			from = om
		}
		moves = append(moves, Move{Extent: e, From: from, To: to})
	}
	return moves
}
