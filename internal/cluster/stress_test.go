package cluster

import (
	"sync"
	"testing"

	"repro/internal/memctl"
)

// TestClusterStress drives 8 concurrent sessions over a 4-node cluster:
// every session hammers the same shared counters with RMWs (cross-session
// contention on the primaries and their write-through mirrors) while also
// doing private read/write traffic. Run under -race this exercises the
// pooled fan-out records, the route table swap, and the per-node clients
// concurrently.
func TestClusterStress(t *testing.T) {
	const (
		sessions = 8
		addsEach = 100
		counters = 4
	)
	cc, _ := newTestCluster(t, 4, Config{Seed: 7})
	// Shared counters spread over distinct extents.
	shared := make([]uint64, counters)
	for i := range shared {
		shared[i] = uint64(i) * 3 * testExtentBytes
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Private range: far from the shared counters, unique per session.
			private := uint64(40*testExtentBytes) + uint64(s)*4096
			buf := make([]byte, 512)
			for i := range buf {
				buf[i] = byte(s + i)
			}
			for i := 0; i < addsEach; i++ {
				if _, err := cc.RMWSync(shared[i%counters], memctl.OpFetchAdd, 1); err != nil {
					errs <- err
					return
				}
				if i%8 != 0 {
					continue
				}
				if err := cc.WriteSync(private, buf); err != nil {
					errs <- err
					return
				}
				if _, err := cc.ReadSync(private, len(buf)); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("stress op failed: %v", err)
	}
	// Each counter received sessions*addsEach/counters adds; the primary is
	// authoritative (concurrent mirror write-throughs may race each other,
	// but the primary's RMW stream is serialized by the node).
	want := uint64(sessions * addsEach / counters)
	for i, addr := range shared {
		got, err := cc.RMWSync(addr, memctl.OpFetchAdd, 0)
		if err != nil {
			t.Fatalf("counter %d read: %v", i, err)
		}
		if got != want {
			t.Fatalf("counter %d = %d, want %d (lost RMWs)", i, got, want)
		}
	}
}
