package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/memctl"
	"repro/internal/rmem"
)

// Client errors.
var (
	// ErrNoReplica means every replica of a segment exhausted its retry
	// budget: the address range is unreachable until a rebalance re-homes
	// it. (When a concrete deadline error is available it is returned
	// instead, so errors.Is(err, rmem.ErrDeadline) is the usual triage.)
	ErrNoReplica = errors.New("cluster: no reachable replica")
	ErrClosed    = errors.New("cluster: client closed")
)

// Config tunes the cluster client.
type Config struct {
	// Seed determines the extent assignment; equal seeds over equal node
	// counts produce identical maps.
	Seed uint64
	// Size is the cluster address space in bytes. It is rounded down to
	// whole extents (a partial tail extent would route addresses past the
	// configured space) and must fit the smallest node slab, so every node
	// can hold any extent under the identity address mapping. Zero adopts
	// the smallest node slab.
	Size uint64
	// ExtentBytes is the striping grain (default DefaultExtentBytes). It
	// must be a multiple of 8 so an aligned RMW word never spans extents.
	ExtentBytes uint64
	// Metrics receives the cluster_* families. Nil gets a private instance.
	// A supplied instance must have been built for this node count.
	Metrics *Metrics
	// NowNS supplies timestamps for the rebalance-duration histogram
	// (wall or virtual). Nil disables duration measurement.
	NowNS func() int64
	// AutoEvict, when positive, declares a node dead after that many
	// consecutive retry-budget timeouts: the map epoch advances without it
	// and a background rebalance re-mirrors its extents. Zero leaves
	// membership entirely to the caller (the deterministic scenario
	// driver).
	AutoEvict int
}

// Client stripes the flat cluster address space over N rmem.Clients by
// extent: reads route to the extent's primary and fail over to its mirror
// on retry-budget timeout; writes go through to primary and mirror and
// succeed while at least one replica acks; RMWs execute on the primary and
// write the computed value through to the mirror. Ops that span an extent
// boundary are split and completed as one. The routed hot path recycles its
// fan-out records through pools, so steady state allocates nothing.
//
// Atomicity caveat (the cross-shard note one level up): a split op is not
// atomic across extents, and an RMW is atomic only on its primary — the
// mirror's copy is a write-through that can lag or be lost with the
// primary. Failover assumes fail-stop nodes: a merely-slow primary that
// executes a timed-out RMW after the client failed over can double-apply.
type Client struct {
	nodes   []*rmem.Client
	cfg     Config
	metrics *Metrics

	// ops recycles clusterOp join records and subs recycles subOp fan-out
	// records, so steady-state routed ops allocate nothing.
	ops  sync.Pool
	subs sync.Pool

	mu         sync.Mutex
	m          *Map  // guarded by mu: the active route table
	streak     []int // guarded by mu: consecutive deadline completions per node (auto-evict)
	pendingOld *Map  // guarded by mu: baseline of a failed background rebalance awaiting retry
	rebalBusy  bool  // guarded by mu: a background rebalance retry is in flight
	closed     bool  // guarded by mu
}

// New builds a cluster client over connected node clients (Connect each
// first: the default Size comes from the advertised geometry). The node
// index in the slice is the node identity in the map, metrics labels, and
// scenario events.
func New(nodes []*rmem.Client, cfg Config) (*Client, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("%w: %d", ErrTooFewNodes, len(nodes))
	}
	if cfg.ExtentBytes == 0 {
		cfg.ExtentBytes = DefaultExtentBytes
	}
	if cfg.ExtentBytes%8 != 0 {
		return nil, fmt.Errorf("cluster: extent size %d not a multiple of 8", cfg.ExtentBytes)
	}
	if cfg.Size == 0 {
		for _, n := range nodes {
			if s := n.Geometry().SlabBytes; cfg.Size == 0 || s < cfg.Size {
				cfg.Size = s
			}
		}
	}
	// Whole extents only, so the map, checkRange, and Rebalance all agree
	// on the addressable space and never touch past-the-end addresses.
	cfg.Size -= cfg.Size % cfg.ExtentBytes
	if cfg.Size == 0 {
		return nil, fmt.Errorf("cluster: size smaller than one extent (%d)", cfg.ExtentBytes)
	}
	for i, n := range nodes {
		// Geometry is only advertised after Connect; zero means unknown.
		if s := n.Geometry().SlabBytes; s > 0 && cfg.Size > s {
			return nil, fmt.Errorf("cluster: size %d exceeds node %d slab %d", cfg.Size, i, s)
		}
	}
	m, err := NewMap(cfg.Seed, cfg.Size, cfg.ExtentBytes, len(nodes))
	if err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil, len(nodes))
	}
	c := &Client{
		nodes:   nodes,
		cfg:     cfg,
		metrics: cfg.Metrics,
		m:       m,
		streak:  make([]int, len(nodes)),
	}
	c.metrics.Epoch.Set(int64(m.Epoch()))
	return c, nil
}

// Map returns the active route table (immutable; safe to read lock-free).
func (c *Client) Map() *Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// Epoch is the active map epoch.
func (c *Client) Epoch() uint64 { return c.Map().Epoch() }

// Size is the cluster address space in bytes.
func (c *Client) Size() uint64 { return c.Map().Size() }

// ExtentBytes is the striping grain.
func (c *Client) ExtentBytes() uint64 { return c.cfg.ExtentBytes }

// Metrics returns the client's metrics (never nil after New).
func (c *Client) Metrics() *Metrics { return c.metrics }

// ApplyMap installs a successor route table; in-flight ops finish under the
// map they were routed with, new ops route under m.
func (c *Client) ApplyMap(m *Map) error {
	if m.Nodes() != len(c.nodes) {
		return fmt.Errorf("cluster: map for %d nodes applied to %d-node client", m.Nodes(), len(c.nodes))
	}
	c.mu.Lock()
	c.m = m
	c.mu.Unlock()
	c.metrics.Epoch.Set(int64(m.Epoch()))
	return nil
}

// MarkDead advances the map epoch without node (a leave/kill event) and
// returns the (old, new) maps for a follow-up Rebalance. Marking an
// already-dead node is a pure epoch bump.
func (c *Client) MarkDead(node int) (old, cur *Map, err error) {
	c.mu.Lock()
	old = c.m
	cur, err = old.Leave(node)
	if err == nil {
		c.m = cur
		c.streak[node] = 0
	}
	c.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	c.metrics.Evictions.Inc()
	c.metrics.Epoch.Set(int64(cur.Epoch()))
	return old, cur, nil
}

// Rejoin re-admits node (a join event) and returns the (old, new) maps for
// a follow-up Rebalance that copies the node's newly assigned extents in.
func (c *Client) Rejoin(node int) (old, cur *Map, err error) {
	c.mu.Lock()
	old = c.m
	cur, err = old.Join(node)
	if err == nil {
		c.m = cur
		c.streak[node] = 0
	}
	c.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	c.metrics.Epoch.Set(int64(cur.Epoch()))
	return old, cur, nil
}

// Close closes every node client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// noteOK resets node's deadline streak (auto-evict bookkeeping).
//
//edmlint:hotpath one call per successful sub-completion
func (c *Client) noteOK(node int) {
	if c.cfg.AutoEvict <= 0 {
		return
	}
	c.mu.Lock()
	c.streak[node] = 0
	c.mu.Unlock()
}

// noteDeadline counts a retry-budget timeout against node and, at the
// auto-evict threshold, kicks off an eviction + rebalance in the
// background. The threshold fires on equality so one burst of timeouts
// evicts once. Deadlines below the threshold re-arm the retry of any
// earlier failed background rebalance, so affected extents do not stay
// single-homed until the next membership change.
func (c *Client) noteDeadline(node int) {
	if c.cfg.AutoEvict <= 0 {
		return
	}
	c.mu.Lock()
	c.streak[node]++
	hit := c.streak[node] == c.cfg.AutoEvict && c.m.Alive(node) && c.m.AliveCount() > 2
	retry := !hit && c.pendingOld != nil && !c.rebalBusy
	if retry {
		c.rebalBusy = true
	}
	c.mu.Unlock()
	if hit {
		go c.evict(node)
	} else if retry {
		go c.retryRebalance()
	}
}

// evict is the auto-evict driver: epoch advance, then re-mirror.
func (c *Client) evict(node int) {
	old, cur, err := c.MarkDead(node)
	if err != nil {
		return
	}
	c.rebalancePass(old, cur)
}

// retryRebalance re-runs a failed background rebalance against the current
// map. The caller (noteDeadline) has already set rebalBusy.
func (c *Client) retryRebalance() {
	c.mu.Lock()
	cur := c.m
	c.mu.Unlock()
	c.rebalancePass(cur, cur)
	c.mu.Lock()
	c.rebalBusy = false
	c.mu.Unlock()
}

// rebalancePass runs one background rebalance, widening the baseline to
// that of any earlier failed pass so its outstanding copies are retried
// too. A failure bumps cluster_rebalance_errors_total and keeps the
// baseline for the next retry (a later deadline or epoch change).
func (c *Client) rebalancePass(old, cur *Map) {
	c.mu.Lock()
	if c.pendingOld != nil {
		old = c.pendingOld
		c.pendingOld = nil
	}
	c.mu.Unlock()
	if _, err := c.Rebalance(old, cur); err != nil {
		c.metrics.RebalanceErrors.Inc()
		c.mu.Lock()
		if c.pendingOld == nil {
			c.pendingOld = old
		}
		c.mu.Unlock()
	}
}

// opKind is a subOp's request flavour.
type opKind uint8

const (
	kRead   opKind = iota
	kWrite         // one replica of a write-through pair
	kRMW           // the primary-side atomic
	kMirror        // the RMW result written through to the mirror
)

// segState tracks one segment's replica outcomes.
type segState struct {
	acks  int // replicas that acked
	fails int // replicas that timed out
}

// clusterOp is the pooled join record for one routed operation: it fans out
// to per-segment subOps and dispatches the caller's callback when the last
// one completes. Exactly one cb* field is set per use. The record (and the
// data slice handed to a read callback, which aliases it) is callback-scoped
// pooled memory: it recycles as soon as the dispatch returns.
type clusterOp struct {
	c *Client

	mu        sync.Mutex
	remaining int        // guarded by mu: outstanding subOps plus the issuer's hold
	err       error      // guarded by mu: first hard (non-deadline) failure
	dlErr     error      // guarded by mu: last deadline, reported when a segment loses all replicas
	silent    bool       // guarded by mu: issue failed, error went to the caller inline — no dispatch
	failovers int        // guarded by mu: re-routed segments, flushed to metrics at completion
	segs      []segState // guarded by mu: per-segment replica outcomes (capacity reused)
	rmwVal    uint64     // guarded by mu: the RMW result

	// data is the read aggregation buffer. It is owned by the record and
	// reused across recycles; sub-completions copy into disjoint segment
	// ranges before taking mu.
	data []byte

	cbRead  func([]byte, error)
	cbWrite func(error)
	cbRMW   func(uint64, error)
}

// subOp is the pooled per-segment request record. Its rmem callbacks are
// bound once at allocation and reused across recycles, so routing a segment
// allocates nothing in steady state.
type subOp struct {
	c  *Client
	op *clusterOp

	seg     int // index into op.segs
	kind    opKind
	node    int // current target
	addr    uint64
	n       int
	off     int    // read destination offset in op.data
	wdata   []byte // write payload (aliases caller data; captured into the datagram at issue)
	rmwOp   memctl.RMWOp
	rmwArgs []uint64 // aliases caller args; captured at issue
	attempt int      // 0 on the routed target, 1 after failover
	val8    [8]byte  // kMirror payload: the computed RMW result

	readCB  func([]byte, error)
	writeCB func(error)
	rmwCB   func(uint64, error)
}

// getOp pops a pooled join record.
func (c *Client) getOp() *clusterOp {
	if v := c.ops.Get(); v != nil {
		return v.(*clusterOp)
	}
	//edmlint:allow hotpath pool miss; steady state recycles
	return new(clusterOp)
}

// getSub pops a pooled fan-out record; a pool miss binds the completion
// closures once for the record's lifetime.
func (c *Client) getSub() *subOp {
	if v := c.subs.Get(); v != nil {
		return v.(*subOp)
	}
	//edmlint:allow hotpath pool miss; steady state recycles
	s := new(subOp)
	s.readCB = func(d []byte, err error) { s.onRead(d, err) }
	s.writeCB = func(err error) { s.onWrite(err) }
	s.rmwCB = func(v uint64, err error) { s.onRMW(v, err) }
	return s
}

// putSub recycles a fan-out record (the bound closures stay).
//
//edmlint:hotpath one recycle per completed segment
func (c *Client) putSub(s *subOp) {
	s.op = nil
	s.wdata = nil
	s.rmwArgs = nil
	c.subs.Put(s)
}

// route reads the active map once; the op is routed entirely under that
// epoch even if it advances mid-flight (failover re-resolves).
//
//edmlint:hotpath one map read per routed op
func (c *Client) route() (*Map, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	return c.m, nil
}

// altFor re-resolves s's extent under the CURRENT map (the epoch may have
// advanced since the op was routed) and returns the best replica that is
// not the node that just timed out.
func (c *Client) altFor(s *subOp) (int, bool) {
	m, err := c.route()
	if err != nil {
		return 0, false
	}
	e, err := m.Locate(s.addr)
	if err != nil {
		return 0, false
	}
	pri, mir := m.Extent(e)
	// Try the current primary first. Under the routing epoch the primary IS
	// s.node, so the n != s.node filter falls through to the mirror (the
	// usual failover); after a re-home the promoted primary is the old
	// mirror — the replica that holds the data — while the new mirror may be
	// an empty node the rebalance has not reached yet, and must not serve.
	for _, n := range [2]int{pri, mir} {
		if n >= 0 && n != s.node && m.Alive(n) {
			return n, true
		}
	}
	return 0, false
}

// issueSub routes one segment request to its node client.
//
//edmlint:hotpath one issue per routed segment
func (c *Client) issueSub(s *subOp) error {
	c.metrics.NodeOps[s.node].Inc()
	nc := c.nodes[s.node]
	switch s.kind {
	case kRead:
		return nc.Read(s.addr, s.n, s.readCB)
	case kRMW:
		return nc.RMW(s.addr, s.rmwOp, s.rmwArgs, s.rmwCB)
	default: // kWrite, kMirror
		return nc.Write(s.addr, s.wdata, s.writeCB)
	}
}

// subDone records one segment completion: err nil acks the segment, a
// deadline marks a replica miss, hard marks an operation-fatal error. It
// drops one remaining count and finishes the op on the last one.
//
//edmlint:hotpath one call per completed segment
func (o *clusterOp) subDone(seg int, err error, hard bool) {
	o.mu.Lock()
	switch {
	case err == nil:
		o.segs[seg].acks++
	case hard:
		if o.err == nil {
			o.err = err
		}
	default:
		o.segs[seg].fails++
		o.dlErr = err
	}
	o.remaining--
	fire := o.remaining == 0
	o.mu.Unlock()
	if fire {
		o.finish()
	}
}

// ackSeg acks a segment without consuming a remaining count (the RMW
// primary ack, while its mirror write-through is still outstanding).
func (o *clusterOp) ackSeg(seg int) {
	o.mu.Lock()
	o.segs[seg].acks++
	o.mu.Unlock()
}

// addFailover counts one re-routed segment.
func (o *clusterOp) addFailover() {
	o.mu.Lock()
	o.failovers++
	o.mu.Unlock()
}

// setRMW stores the RMW result.
func (o *clusterOp) setRMW(v uint64) {
	o.mu.Lock()
	o.rmwVal = v
	o.mu.Unlock()
}

// releaseHold drops the issuer's remaining count after fan-out. A non-nil
// issueErr (window exhausted, client closed) silences the op: the error
// goes back to the caller inline and the callback never fires. Segments
// issued before the failure still land — a partially issued write is not
// rolled back, matching the split-op atomicity caveat.
//
//edmlint:hotpath one call per routed op
func (o *clusterOp) releaseHold(issueErr error) error {
	o.mu.Lock()
	if issueErr != nil {
		o.silent = true
		if o.err == nil {
			o.err = issueErr
		}
	}
	o.remaining--
	fire := o.remaining == 0
	o.mu.Unlock()
	if fire {
		o.finish()
	}
	return issueErr
}

// finish resolves the op outcome, recycles the record, and dispatches the
// caller's callback.
//
//edmlint:hotpath one call per routed op
func (o *clusterOp) finish() {
	c := o.c
	o.mu.Lock()
	err := o.err
	if err == nil {
		for i := range o.segs {
			if o.segs[i].acks == 0 {
				err = o.dlErr
				if err == nil {
					err = ErrNoReplica
				}
				break
			}
		}
	}
	failovers := o.failovers
	// Replica misses on segments that still acked are failovers too: the op
	// survived on one home of a dual-homed extent. (A segment never counts
	// twice — an explicitly re-routed sub only reaches subDone with its
	// final outcome, so a re-route that acked leaves fails at zero.)
	for i := range o.segs {
		if o.segs[i].acks > 0 && o.segs[i].fails > 0 {
			failovers++
		}
	}
	if failovers > 0 {
		c.metrics.Failovers.Add(uint64(failovers))
	}
	silent := o.silent
	data, rmwVal := o.data, o.rmwVal
	cbRead, cbWrite, cbRMW := o.cbRead, o.cbWrite, o.cbRMW
	n := 0
	if cbRead != nil {
		n = len(data)
	}
	o.silent = false
	o.err, o.dlErr = nil, nil
	o.failovers = 0
	o.cbRead, o.cbWrite, o.cbRMW = nil, nil, nil
	o.mu.Unlock()
	if silent {
		c.ops.Put(o)
		return
	}
	switch {
	case cbRead != nil:
		// The record is lent to the callback (the data slice aliases its
		// buffer) and recycles only after the dispatch returns.
		if err != nil {
			c.ops.Put(o)
			cbRead(nil, err)
			return
		}
		cbRead(data[:n], nil)
		c.ops.Put(o)
	case cbWrite != nil:
		c.ops.Put(o)
		cbWrite(err)
	case cbRMW != nil:
		c.ops.Put(o)
		if err != nil {
			cbRMW(0, err)
			return
		}
		cbRMW(rmwVal, nil)
	}
}

// onRead is the kRead completion: copy the segment into the aggregation
// buffer, or fail over to the other replica on a retry-budget timeout.
//
//edmlint:hotpath one completion per read segment
func (s *subOp) onRead(d []byte, err error) {
	c, op, seg := s.c, s.op, s.seg
	if err == nil {
		c.noteOK(s.node)
		// Disjoint per-segment range of the record-owned buffer; the copy
		// happens inside the rmem callback because d is transient.
		copy(op.data[s.off:s.off+s.n], d)
		c.putSub(s)
		op.subDone(seg, nil, false)
		return
	}
	if errors.Is(err, rmem.ErrDeadline) {
		c.noteDeadline(s.node)
		if s.attempt == 0 {
			if alt, ok := c.altFor(s); ok {
				s.attempt = 1
				s.node = alt
				op.addFailover()
				err2 := c.issueSub(s)
				if err2 == nil {
					return // re-routed; still outstanding
				}
				c.putSub(s)
				op.subDone(seg, err2, true)
				return
			}
		}
		c.putSub(s)
		op.subDone(seg, err, false)
		return
	}
	c.putSub(s)
	op.subDone(seg, err, true)
}

// onWrite is the kWrite/kMirror completion: one replica of a write-through
// pair (or of an RMW's mirror copy) landing or missing.
//
//edmlint:hotpath one completion per write replica
func (s *subOp) onWrite(err error) {
	c, op, seg := s.c, s.op, s.seg
	switch {
	case err == nil:
		c.noteOK(s.node)
		c.putSub(s)
		op.subDone(seg, nil, false)
	case errors.Is(err, rmem.ErrDeadline):
		c.noteDeadline(s.node)
		c.putSub(s)
		op.subDone(seg, err, false)
	default:
		c.putSub(s)
		op.subDone(seg, err, true)
	}
}

// onRMW is the kRMW completion: on success the result is recorded and the
// computed stored value written through to the mirror; on a retry-budget
// timeout the atomic fails over to the other replica.
//
//edmlint:hotpath one completion per RMW
func (s *subOp) onRMW(v uint64, err error) {
	c, op, seg := s.c, s.op, s.seg
	switch {
	case err == nil:
		c.noteOK(s.node)
		op.setRMW(v)
		newVal, mutated := rmwStore(s.rmwOp, s.rmwArgs, v)
		if s.attempt == 0 && mutated {
			if mir, ok := c.altFor(s); ok {
				// The primary ack is banked; the same record becomes the
				// mirror write-through and carries the remaining count.
				op.ackSeg(seg)
				s.kind = kMirror
				s.node = mir
				binary.LittleEndian.PutUint64(s.val8[:], newVal)
				s.wdata = s.val8[:]
				err2 := c.issueSub(s)
				if err2 == nil {
					return
				}
				c.putSub(s)
				op.subDone(seg, err2, true)
				return
			}
		}
		c.putSub(s)
		op.subDone(seg, nil, false)
	case errors.Is(err, rmem.ErrDeadline):
		c.noteDeadline(s.node)
		if s.attempt == 0 {
			if alt, ok := c.altFor(s); ok {
				// Atomic failover: execute on the surviving replica. No
				// write-through follows — the timed-out home is presumed
				// dead (fail-stop), and a rebalance will re-home the extent.
				s.attempt = 1
				s.node = alt
				op.addFailover()
				err2 := c.issueSub(s)
				if err2 == nil {
					return
				}
				c.putSub(s)
				op.subDone(seg, err2, true)
				return
			}
		}
		c.putSub(s)
		op.subDone(seg, err, false)
	default:
		c.putSub(s)
		op.subDone(seg, err, true)
	}
}

// rmwStore computes the value an RMW left in memory from its opcode, args,
// and result (the memctl menu semantics), and whether memory changed at
// all. It is what the mirror write-through stores.
func rmwStore(op memctl.RMWOp, args []uint64, result uint64) (val uint64, mutated bool) {
	switch op {
	case memctl.OpCAS:
		if result == 1 && len(args) >= 2 {
			return args[1], true
		}
		return 0, false
	case memctl.OpFetchAdd:
		return result + args[0], true
	case memctl.OpSwap:
		return args[0], true
	case memctl.OpAnd:
		return result & args[0], true
	case memctl.OpOr:
		return result | args[0], true
	case memctl.OpXor:
		return result ^ args[0], true
	case memctl.OpMin:
		if int64(args[0]) < int64(result) {
			return args[0], true
		}
		return result, true
	case memctl.OpMax:
		if int64(args[0]) > int64(result) {
			return args[0], true
		}
		return result, true
	}
	return 0, false
}

// checkRange bounds [addr, addr+n) against the cluster address space.
func (c *Client) checkRange(addr uint64, n int) error {
	if n < 0 || addr+uint64(n) > c.cfg.Size || addr+uint64(n) < addr {
		return fmt.Errorf("%w: [%d, %d+%d)", ErrBadExtent, addr, addr, n)
	}
	return nil
}

// prep charges the op with its segment count and the issuer's hold. It runs
// before any sub is issued so a synchronous transport (loopback) cannot
// finish the op mid-fan-out.
func (o *clusterOp) prep(nseg int) {
	o.mu.Lock()
	o.segs = o.segs[:0]
	for i := 0; i < nseg; i++ {
		o.segs = append(o.segs, segState{})
	}
	o.mu.Unlock()
}

// charge adds outstanding remaining counts under the lock.
func (o *clusterOp) charge(n int) {
	o.mu.Lock()
	o.remaining += n
	o.mu.Unlock()
}

// segments walks [addr, addr+n) in extent-sized pieces, calling visit with
// each (segment index, address, length, offset).
//
//edmlint:hotpath one walk per routed op
func (c *Client) segments(addr uint64, n int, visit func(seg int, a uint64, ln, off int)) int {
	eb := c.cfg.ExtentBytes
	seg, off := 0, 0
	for {
		ln := n - off
		if rem := int(eb - addr%eb); ln > rem {
			ln = rem
		}
		visit(seg, addr, ln, off)
		seg++
		off += ln
		addr += uint64(ln)
		if off >= n {
			return seg
		}
	}
}

// nsegs counts the extent-sized pieces of [addr, addr+n).
func (c *Client) nsegs(addr uint64, n int) int {
	eb := c.cfg.ExtentBytes
	if n <= 0 {
		return 1
	}
	return int((addr+uint64(n)-1)/eb-addr/eb) + 1
}

// Read issues an asynchronous routed read of n bytes at addr: one segment
// per extent touched, each to its primary, failing over to the mirror on a
// retry-budget timeout. cb's data slice aliases the pooled record and is
// only valid for the duration of the callback — copy to retain.
//
//edmlint:hotpath
//edmlint:owned callback the data slice aliases the pooled aggregation buffer
func (c *Client) Read(addr uint64, n int, cb func([]byte, error)) error {
	if err := c.checkRange(addr, n); err != nil {
		return err
	}
	m, err := c.route()
	if err != nil {
		return err
	}
	op := c.getOp()
	op.c = c
	op.cbRead = cb
	if cap(op.data) < n {
		//edmlint:allow hotpath buffer growth; steady state reuses capacity
		op.data = make([]byte, n)
	}
	op.data = op.data[:n]
	nseg := c.nsegs(addr, n)
	if nseg > 1 {
		c.metrics.SplitOps.Inc()
	}
	op.prep(nseg)
	op.charge(nseg + 1) // +1: the issuer's hold
	var issueErr error
	c.segments(addr, n, func(seg int, a uint64, ln, off int) {
		e, _ := m.Locate(a)
		pri, _ := m.Extent(e)
		s := c.getSub()
		s.c, s.op, s.seg = c, op, seg
		s.kind, s.node, s.attempt = kRead, pri, 0
		s.addr, s.n, s.off = a, ln, off
		if err := c.issueSub(s); err != nil {
			c.putSub(s)
			op.subDone(seg, err, true)
			if issueErr == nil {
				issueErr = err
			}
		}
	})
	return op.releaseHold(issueErr)
}

// Write issues an asynchronous routed write-through: each segment goes to
// its extent's primary and mirror, and the op succeeds while every segment
// is acked by at least one replica with no hard error. data is captured
// into the datagrams before Write returns.
//
//edmlint:hotpath
func (c *Client) Write(addr uint64, data []byte, cb func(error)) error {
	n := len(data)
	if err := c.checkRange(addr, n); err != nil {
		return err
	}
	m, err := c.route()
	if err != nil {
		return err
	}
	op := c.getOp()
	op.c = c
	op.cbWrite = cb
	nseg := c.nsegs(addr, n)
	if nseg > 1 {
		c.metrics.SplitOps.Inc()
	}
	op.prep(nseg)
	op.charge(2*nseg + 1) // two replicas per segment, +1 issuer hold
	var issueErr error
	c.segments(addr, n, func(seg int, a uint64, ln, off int) {
		e, _ := m.Locate(a)
		pri, mir := m.Extent(e)
		for _, node := range [2]int{pri, mir} {
			s := c.getSub()
			s.c, s.op, s.seg = c, op, seg
			s.kind, s.node, s.attempt = kWrite, node, 0
			s.addr, s.n = a, ln
			s.wdata = data[off : off+ln]
			if err := c.issueSub(s); err != nil {
				c.putSub(s)
				op.subDone(seg, err, true)
				if issueErr == nil {
					issueErr = err
				}
			}
		}
	})
	return op.releaseHold(issueErr)
}

// RMW issues an asynchronous routed atomic: it executes on the extent's
// primary, and the computed stored value is written through to the mirror
// before the callback fires. On a primary retry-budget timeout the atomic
// fails over to the mirror. Aligned words never span extents, so an RMW is
// always a single segment.
//
//edmlint:hotpath
func (c *Client) RMW(addr uint64, op memctl.RMWOp, args []uint64, cb func(uint64, error)) error {
	if err := c.checkRange(addr, 8); err != nil {
		return err
	}
	m, err := c.route()
	if err != nil {
		return err
	}
	o := c.getOp()
	o.c = c
	o.cbRMW = cb
	o.prep(1)
	o.charge(2) // the single sub + the issuer's hold
	e, _ := m.Locate(addr)
	pri, _ := m.Extent(e)
	s := c.getSub()
	s.c, s.op, s.seg = c, o, 0
	s.kind, s.node, s.attempt = kRMW, pri, 0
	s.addr = addr
	s.rmwOp, s.rmwArgs = op, args
	var issueErr error
	if err := c.issueSub(s); err != nil {
		c.putSub(s)
		o.subDone(0, err, true)
		issueErr = err
	}
	return o.releaseHold(issueErr)
}

// ReadSync is the blocking form of Read; it returns a fresh copy of the
// data.
func (c *Client) ReadSync(addr uint64, n int) ([]byte, error) {
	type res struct {
		data []byte
		err  error
	}
	ch := make(chan res, 1)
	if err := c.Read(addr, n, func(d []byte, err error) {
		// Copy into a fresh variable: d aliases the pooled aggregation
		// buffer and must not leave the callback.
		var data []byte
		if err == nil {
			data = append([]byte(nil), d...)
		}
		ch <- res{data, err}
	}); err != nil {
		return nil, err
	}
	r := <-ch
	return r.data, r.err
}

// WriteSync is the blocking form of Write.
func (c *Client) WriteSync(addr uint64, data []byte) error {
	ch := make(chan error, 1)
	if err := c.Write(addr, data, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// RMWSync is the blocking form of RMW.
func (c *Client) RMWSync(addr uint64, op memctl.RMWOp, args ...uint64) (uint64, error) {
	type res struct {
		v   uint64
		err error
	}
	ch := make(chan res, 1)
	if err := c.RMW(addr, op, args, func(v uint64, err error) { ch <- res{v, err} }); err != nil {
		return 0, err
	}
	r := <-ch
	return r.v, r.err
}
