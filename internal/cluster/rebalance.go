package cluster

import (
	"errors"
	"fmt"

	"repro/internal/rmem"
)

// rebalanceChunk bounds one bulk-copy request; it divides the extent size
// evenly for every power-of-two extent >= 32 KiB and stays under the wire
// payload limit.
const rebalanceChunk = 32 << 10

// RebalanceStats summarizes one rebalance pass.
type RebalanceStats struct {
	Extents int    // extents copied
	Bytes   uint64 // bytes written to new holders
	Lost    int    // extents with no surviving holder (data loss)
	DurNS   int64  // wall/virtual duration, 0 when no clock is wired
}

// Rebalance brings replica placement up to date after an epoch change: for
// every extent whose replica set changed between old and cur, it bulk-reads
// the extent from a surviving holder and bulk-writes it to each new holder,
// directly against the node clients (routed ops would write through to the
// very replicas being rebuilt). Extents whose holders all died are counted
// in Lost and skipped; the first copy error aborts the pass.
func (c *Client) Rebalance(old, cur *Map) (RebalanceStats, error) {
	var st RebalanceStats
	var start int64
	if c.cfg.NowNS != nil {
		start = c.cfg.NowNS()
	}
	moves := Diff(old, cur)
	for _, mv := range moves {
		if mv.From < 0 {
			st.Lost++
			continue
		}
		base := uint64(mv.Extent) * cur.ExtentBytes()
		end := base + cur.ExtentBytes()
		if end > cur.Size() {
			end = cur.Size()
		}
		for a := base; a < end; a += rebalanceChunk {
			n := int(end - a)
			if n > rebalanceChunk {
				n = rebalanceChunk
			}
			data, err := c.copyChunk(mv, a, n)
			if err != nil {
				return st, err
			}
			for _, dst := range mv.To {
				if err := c.nodes[dst].WriteSync(a, data); err != nil {
					return st, fmt.Errorf("cluster: rebalance write extent %d to node %d: %w", mv.Extent, dst, err)
				}
				st.Bytes += uint64(n)
				c.metrics.RebalanceBytes.Add(uint64(n))
			}
		}
		st.Extents++
		c.metrics.RebalanceExtents.Inc()
	}
	if c.cfg.NowNS != nil {
		st.DurNS = c.cfg.NowNS() - start
		c.metrics.RebalanceNS.Observe(st.DurNS)
	}
	return st, nil
}

// copyChunk reads [a, a+n) from the move's copy source.
func (c *Client) copyChunk(mv Move, a uint64, n int) ([]byte, error) {
	data, err := c.nodes[mv.From].ReadSync(a, n)
	if err == nil {
		return data, nil
	}
	if errors.Is(err, rmem.ErrDeadline) {
		return nil, fmt.Errorf("cluster: rebalance source node %d unreachable for extent %d: %w", mv.From, mv.Extent, err)
	}
	return nil, fmt.Errorf("cluster: rebalance read extent %d from node %d: %w", mv.Extent, mv.From, err)
}
