package cluster

import (
	"errors"
	"testing"
)

func newTestMap(t *testing.T, seed uint64, nodes int) *Map {
	t.Helper()
	m, err := NewMap(seed, 64<<20, 1<<20, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapDeterministic(t *testing.T) {
	a := newTestMap(t, 42, 16)
	b := newTestMap(t, 42, 16)
	for e := 0; e < a.Extents(); e++ {
		ap, am := a.Extent(e)
		bp, bm := b.Extent(e)
		if ap != bp || am != bm {
			t.Fatalf("extent %d: (%d,%d) vs (%d,%d) for equal seeds", e, ap, am, bp, bm)
		}
	}
	c := newTestMap(t, 43, 16)
	same := true
	for e := 0; e < a.Extents(); e++ {
		ap, am := a.Extent(e)
		cp, cm := c.Extent(e)
		if ap != cp || am != cm {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical assignments")
	}
}

func TestMapInvariants(t *testing.T) {
	m := newTestMap(t, 7, 5)
	if m.Epoch() != 0 {
		t.Fatalf("fresh map epoch %d, want 0", m.Epoch())
	}
	if m.Size()%m.ExtentBytes() != 0 {
		t.Fatalf("size %d not a whole number of %d-byte extents", m.Size(), m.ExtentBytes())
	}
	seen := make([]int, m.Nodes())
	for e := 0; e < m.Extents(); e++ {
		pri, mir := m.Extent(e)
		if pri == mir {
			t.Fatalf("extent %d: primary == mirror == %d", e, pri)
		}
		if !m.Alive(pri) || !m.Alive(mir) {
			t.Fatalf("extent %d: dead holder (%d, %d)", e, pri, mir)
		}
		seen[pri]++
		seen[mir]++
	}
	for n, c := range seen {
		if c == 0 {
			t.Errorf("node %d holds no extents of %d", n, m.Extents())
		}
	}
}

func TestMapLocate(t *testing.T) {
	m := newTestMap(t, 1, 3)
	eb := m.ExtentBytes()
	for _, tc := range []struct {
		addr uint64
		want int
	}{{0, 0}, {eb - 1, 0}, {eb, 1}, {5*eb + 17, 5}} {
		e, err := m.Locate(tc.addr)
		if err != nil || e != tc.want {
			t.Fatalf("Locate(%d) = %d, %v; want %d", tc.addr, e, err, tc.want)
		}
	}
	if _, err := m.Locate(m.Size()); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("Locate(size) err = %v, want ErrBadExtent", err)
	}
}

// TestMapMinimalMovement is the consistent-hashing property: a leave only
// reassigns extents the dead node held, and a join only claims extents the
// new node now ranks in the top two for.
func TestMapMinimalMovement(t *testing.T) {
	m := newTestMap(t, 42, 16)
	const dead = 5
	m2, err := m.Leave(dead)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch() != 1 {
		t.Fatalf("epoch after leave %d, want 1", m2.Epoch())
	}
	moved := 0
	for e := 0; e < m.Extents(); e++ {
		op, om := m.Extent(e)
		np, nm := m2.Extent(e)
		if np == dead || nm == dead {
			t.Fatalf("extent %d still assigned to dead node %d", e, dead)
		}
		if op != dead && om != dead {
			if op != np || om != nm {
				t.Fatalf("extent %d moved (%d,%d)->(%d,%d) though node %d held neither replica",
					e, op, om, np, nm, dead)
			}
			continue
		}
		moved++
		// The surviving holder keeps its role's data; only the dead slot is
		// re-filled (primary promotion is allowed: mirror may become primary).
		if op != dead && np != op && nm != op {
			t.Fatalf("extent %d dropped surviving primary %d: now (%d,%d)", e, op, np, nm)
		}
		if om != dead && np != om && nm != om {
			t.Fatalf("extent %d dropped surviving mirror %d: now (%d,%d)", e, om, np, nm)
		}
	}
	if moved == 0 {
		t.Fatal("node 5 held no extents — weight function suspect")
	}

	// Rejoining restores the epoch-0 assignment exactly (weights are pure
	// functions of (seed, extent, node)).
	m3, err := m2.Join(dead)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Epoch() != 2 {
		t.Fatalf("epoch after rejoin %d, want 2", m3.Epoch())
	}
	for e := 0; e < m.Extents(); e++ {
		op, om := m.Extent(e)
		np, nm := m3.Extent(e)
		if op != np || om != nm {
			t.Fatalf("extent %d: rejoin gave (%d,%d), original (%d,%d)", e, np, nm, op, om)
		}
	}
}

func TestMapLeaveTooFew(t *testing.T) {
	m := newTestMap(t, 9, 2)
	if _, err := m.Leave(0); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("leave to 1 alive: err = %v, want ErrTooFewNodes", err)
	}
	if _, err := NewMap(1, 1<<20, 1<<20, 1); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("1-node map: err = %v, want ErrTooFewNodes", err)
	}
}

func TestMapDiff(t *testing.T) {
	m := newTestMap(t, 42, 8)
	const dead = 3
	m2, err := m.Leave(dead)
	if err != nil {
		t.Fatal(err)
	}
	moves := Diff(m, m2)
	if len(moves) == 0 {
		t.Fatal("no moves after a leave")
	}
	byExtent := map[int]Move{}
	for _, mv := range moves {
		byExtent[mv.Extent] = mv
	}
	for e := 0; e < m.Extents(); e++ {
		op, om := m.Extent(e)
		np, nm := m2.Extent(e)
		mv, ok := byExtent[e]
		if op != dead && om != dead {
			if ok {
				t.Fatalf("extent %d in diff but did not move", e)
			}
			continue
		}
		if !ok {
			t.Fatalf("extent %d lost node %d but not in diff", e, dead)
		}
		// The source must be a surviving old holder, preferring the primary.
		wantFrom := om
		if op != dead {
			wantFrom = op
		}
		if mv.From != wantFrom {
			t.Fatalf("extent %d: copy from %d, want surviving holder %d", e, mv.From, wantFrom)
		}
		for _, to := range mv.To {
			if to == op || to == om {
				t.Fatalf("extent %d: copy to %d, already a holder", e, to)
			}
			if to != np && to != nm {
				t.Fatalf("extent %d: copy to %d, not a new holder (%d,%d)", e, to, np, nm)
			}
		}
	}
}
