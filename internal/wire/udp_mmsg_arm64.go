//go:build linux && arm64

package wire

// sysSendmmsg is the linux/arm64 sendmmsg syscall number (mirrors
// syscall.SYS_SENDMMSG, kept symmetric with the amd64 constant).
const sysSendmmsg = 269
