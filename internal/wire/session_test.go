//edmlint:allow walltime these tests exercise real retransmission timers and session expiry

package wire

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestResponderEvictionKeepsInflight: a full cache must not evict an entry
// whose handler is still running — its retransmissions depend on it.
func TestResponderEvictionKeepsInflight(t *testing.T) {
	var sent [][]byte
	var mu sync.Mutex
	pipe := collectPipe{&mu, &sent}
	var executions atomic.Int32
	release := make(chan struct{})
	handler := func(m, _ *Msg) {
		executions.Add(1)
		if m.ID == 0 {
			<-release // first request stalls mid-execution
		}
	}
	r := NewResponder(pipe, ResponderConfig{Window: 2}, handler)

	enc := func(id uint32) []byte {
		b, err := (&Msg{Kind: KindRREQ, ID: id, Count: 1}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Deliver(enc(0)) // blocks in the handler
	}()
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Two completed requests fill the window past capacity; under naive
	// FIFO eviction they would evict ID 0's in-flight entry.
	r.Deliver(enc(1))
	r.Deliver(enc(2))
	// A retransmission of ID 0 must hit the (in-flight) cache entry and
	// wait, not re-execute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Deliver(enc(0))
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := executions.Load(); n != 3 {
		t.Fatalf("handler ran %d times, want 3 (IDs 0, 1, 2 once each)", n)
	}
	if st := r.Stats(); st.Duplicates != 1 {
		t.Fatalf("responder stats %+v, want 1 duplicate", st)
	}
}

// collectPipe records sent datagrams.
type collectPipe struct {
	mu   *sync.Mutex
	sent *[][]byte
}

func (p collectPipe) Send(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	*p.sent = append(*p.sent, b)
	return nil
}

func (p collectPipe) Close() error { return nil }

// TestUDPSessionResetOnHello: a restarted client reusing its source port
// must get a fresh session — the old incarnation's duplicate-suppression
// cache would otherwise replay stale responses to the new message IDs.
func TestUDPSessionResetOnHello(t *testing.T) {
	executions := 0
	var mu sync.Mutex
	handler := func(m, resp *Msg) {
		mu.Lock()
		executions++
		n := executions
		mu.Unlock()
		if m.Kind == KindRREQ {
			// Tag the response with the execution count so a stale cached
			// replay is distinguishable from a fresh execution.
			resp.Data = append(resp.Data[:0], byte(n))
		}
	}
	server, err := ListenUDP("127.0.0.1:0", func(_ string, reply Pipe) func([]byte) {
		return NewResponder(reply, ResponderConfig{}, handler).Deliver
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	saddr, err := net.ResolveUDPAddr("udp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// First incarnation from a fixed local port: HELLO (ID 0) + RREQ (ID 1).
	laddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	sock1, err := net.DialUDP("udp", laddr, saddr)
	if err != nil {
		t.Fatal(err)
	}
	port := sock1.LocalAddr().(*net.UDPAddr).Port
	conn1 := NewConn(&rawUDPPipe{sock1}, ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10})
	go (&UDPClient{conn: sock1}).Run(conn1.Deliver)
	first := udpCallSync(t, conn1, &Msg{Kind: KindHello})
	if first.Kind != KindHelloAck {
		t.Fatalf("handshake got %v", first.Kind)
	}
	r1 := udpCallSync(t, conn1, &Msg{Kind: KindRREQ, Count: 1})
	if len(r1.Data) != 1 {
		t.Fatalf("first read returned %d bytes", len(r1.Data))
	}
	sock1.Close()

	// Second incarnation reuses the same source port. Its HELLO must reset
	// the session; its RREQ reuses wire ID 1 and must be a fresh execution,
	// not the cached response tagged for the first incarnation.
	sock2, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port}, saddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sock2.Close()
	conn2 := NewConn(&rawUDPPipe{sock2}, ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10})
	go (&UDPClient{conn: sock2}).Run(conn2.Deliver)
	if h := udpCallSync(t, conn2, &Msg{Kind: KindHello}); h.Kind != KindHelloAck {
		t.Fatalf("re-handshake got %v", h.Kind)
	}
	r2 := udpCallSync(t, conn2, &Msg{Kind: KindRREQ, Count: 1})
	if len(r2.Data) != 1 {
		t.Fatalf("second read returned %d bytes", len(r2.Data))
	}
	if r2.Data[0] == r1.Data[0] {
		t.Fatalf("restarted client received the old incarnation's cached response (tag %d)", r2.Data[0])
	}
	if server.Sessions() != 1 {
		t.Errorf("sessions = %d, want 1 (HELLO replaced, not added)", server.Sessions())
	}
}

// TestUDPDuplicateHelloKeepsSession: a retransmitted HELLO carrying the
// current session's token must NOT reset the session — wiping the dedup
// cache mid-pipeline would let retransmitted RMWs re-execute.
func TestUDPDuplicateHelloKeepsSession(t *testing.T) {
	var executions atomic.Int32
	handler := func(_, _ *Msg) {
		executions.Add(1)
	}
	server, err := ListenUDP("127.0.0.1:0", func(_ string, reply Pipe) func([]byte) {
		return NewResponder(reply, ResponderConfig{}, handler).Deliver
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	saddr, _ := net.ResolveUDPAddr("udp", server.Addr())
	sock, err := net.DialUDP("udp", nil, saddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	xchg := func(p []byte) {
		t.Helper()
		if _, err := sock.Write(p); err != nil {
			t.Fatal(err)
		}
		sock.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, MaxDatagram)
		if _, err := sock.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	helloEnc, err := (&Msg{Kind: KindHello, ID: 0, Data: []byte("token-A!")}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rmwEnc, err := (&Msg{Kind: KindRMWREQ, ID: 1, Addr: 8, Op: 2, Args: []uint64{1}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	xchg(helloEnc) // handshake: executes
	xchg(rmwEnc)   // RMW: executes
	xchg(helloEnc) // retransmitted HELLO, same token: cached replay, no reset
	xchg(rmwEnc)   // retransmitted RMW: must hit the surviving cache
	if n := executions.Load(); n != 2 {
		t.Fatalf("handler ran %d times, want 2: duplicate HELLO reset the session", n)
	}
	// A *different* token is a new incarnation and must reset.
	hello2, err := (&Msg{Kind: KindHello, ID: 0, Data: []byte("token-B!")}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	xchg(hello2)
	xchg(rmwEnc)
	if n := executions.Load(); n != 4 {
		t.Fatalf("handler ran %d times, want 4: new token should reset the session", n)
	}
}

// rawUDPPipe adapts a connected socket to Pipe without UDPClient's close
// bookkeeping (the test closes sockets directly).
type rawUDPPipe struct{ conn *net.UDPConn }

func (p *rawUDPPipe) Send(b []byte) error { _, err := p.conn.Write(b); return err }
func (p *rawUDPPipe) Close() error        { return nil }

func udpCallSync(t *testing.T, c *Conn, m *Msg) *Msg {
	t.Helper()
	type res struct {
		m   *Msg
		err error
	}
	ch := make(chan res, 1)
	// Clone into a fresh variable: the response is pooled and valid only
	// during the callback.
	if _, err := c.Call(m, func(r *Msg, err error) {
		var cp *Msg
		if r != nil {
			cp = r.Clone()
		}
		ch <- res{cp, err}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.m
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed")
		return nil
	}
}

// TestConnDisableRetries: MaxRetries < 0 means single-attempt fail-fast.
func TestConnDisableRetries(t *testing.T) {
	cfg := LoopbackConfig{Fault: func(_ sim.Time, _ Dir, _ []byte) Fault { return FaultDrop }}
	lb := NewLoopback(cfg)
	conn := NewConn(lb.ClientPipe(), ConnConfig{RetryTimeout: 2 * time.Millisecond, MaxRetries: -1})
	lb.BindClient(conn.Deliver)
	ch := make(chan error, 1)
	if _, err := conn.Call(&Msg{Kind: KindRREQ, Count: 8}, func(_ *Msg, err error) { ch <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ch:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("got %v, want ErrTimeout", err)
		}
	case <-time.After(time.Second):
		t.Fatal("single-attempt call never failed")
	}
	if st := conn.Stats(); st.Sent != 1 || st.Retransmit != 0 {
		t.Fatalf("stats %+v, want exactly one transmission", st)
	}
}
