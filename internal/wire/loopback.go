package wire

import (
	"sync"

	"repro/internal/sim"
)

// Dir is the direction of a loopback datagram.
type Dir int

const (
	// ToServer is the client->server (request) direction.
	ToServer Dir = iota
	// ToClient is the server->client (response) direction.
	ToClient
)

// Fault is a fault hook's verdict for one datagram.
type Fault int

const (
	// FaultNone delivers the datagram unharmed.
	FaultNone Fault = iota
	// FaultDrop loses the datagram; the reliable layer's retry timer is the
	// only way forward.
	FaultDrop
	// FaultCorrupt flips one bit before delivery; the receiver's CRC check
	// detects it and drops the datagram, so a corruption behaves like a
	// drop with an extra counted detection.
	FaultCorrupt
)

// LoopbackConfig tunes the in-process transport.
type LoopbackConfig struct {
	// BaseLatency is charged to the virtual clock per datagram (default
	// 300 ns, the scale of one EDM fabric traversal).
	BaseLatency sim.Time
	// PerByte is the serialization cost per datagram byte (default 80 ps,
	// a 100 Gbps line rate).
	PerByte sim.Time
	// Fault, when non-nil, adjudicates every datagram. It runs with the
	// loopback lock held and must not call back into the loopback.
	Fault func(now sim.Time, dir Dir, p []byte) Fault
	// Clock, when non-nil, is a shared virtual clock: several loopbacks
	// charging one clock model parallel links of one deterministic fabric
	// (the cluster backend's N memory-node transports). Nil gets a private
	// clock, the single-link behaviour.
	Clock *VirtualClock
}

// VirtualClock is a monotonic virtual time source shared by one or more
// loopbacks. Each delivered or dropped datagram charges it, so with a
// closed-loop driver every reading is a pure function of the datagram
// sequence — the property that keeps seeded loopback runs byte-identical
// even when the address space is striped over many transports.
type VirtualClock struct {
	mu  sync.Mutex
	now sim.Time // guarded by mu
}

// NewVirtualClock builds a clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now reads the clock.
func (c *VirtualClock) Now() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the clock forward to t (no-op if t is in the past).
func (c *VirtualClock) AdvanceTo(t sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// advance charges d to the clock and returns the new reading.
//
//edmlint:hotpath one charge per loopback datagram
func (c *VirtualClock) advance(d sim.Time) sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// LoopbackStats counts loopback datagram outcomes.
type LoopbackStats struct {
	Delivered uint64
	Dropped   uint64
	Corrupted uint64
}

// Loopback is an in-process transport pair implementing the same Pipe
// interface as the UDP endpoints, for deterministic tests and the scenario
// runner's live backend. Delivery is synchronous in the sender's goroutine,
// and latency is charged to a virtual clock instead of wall time: with a
// single-threaded (closed-loop) client, every measured latency is a pure
// function of the datagram sizes exchanged, so runs are byte-reproducible.
// Retransmission timers remain real-time; a retried datagram charges the
// virtual clock once per attempt that is actually delivered or dropped,
// which keeps virtual measurements deterministic even under injected loss.
type Loopback struct {
	mu     sync.Mutex
	cfg    LoopbackConfig
	clock  *VirtualClock   // shared or private; charged under mu (lock order: mu -> clock.mu)
	recv   [2]func([]byte) // indexed by Dir: ToServer, ToClient; guarded by mu
	stats  LoopbackStats   // guarded by mu
	closed bool            // guarded by mu
}

// NewLoopback builds the pair. Bind the two receive paths with BindServer
// and BindClient before sending.
func NewLoopback(cfg LoopbackConfig) *Loopback {
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 300 * sim.Nanosecond
	}
	if cfg.PerByte <= 0 {
		cfg.PerByte = 80 * sim.Picosecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Loopback{cfg: cfg, clock: clock}
}

// BindServer routes client->server datagrams (typically Responder.Deliver).
func (l *Loopback) BindServer(recv func([]byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recv[ToServer] = recv
}

// BindClient routes server->client datagrams (typically Conn.Deliver).
func (l *Loopback) BindClient(recv func([]byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recv[ToClient] = recv
}

// Now reads the virtual clock.
func (l *Loopback) Now() sim.Time { return l.clock.Now() }

// AdvanceTo moves the virtual clock forward to t (no-op if t is in the
// past); the load generator uses it to honour trace arrival times.
func (l *Loopback) AdvanceTo(t sim.Time) { l.clock.AdvanceTo(t) }

// Stats returns a snapshot of the datagram counters.
func (l *Loopback) Stats() LoopbackStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// end is one side's Pipe.
type end struct {
	l   *Loopback
	dir Dir // direction this end sends in
}

// ClientPipe returns the client's Pipe (sends toward the server).
func (l *Loopback) ClientPipe() Pipe { return &end{l, ToServer} }

// ServerPipe returns the server's Pipe (sends toward the client).
func (l *Loopback) ServerPipe() Pipe { return &end{l, ToClient} }

// Send charges the virtual clock, runs the fault hook, and delivers the
// datagram synchronously.
//
//edmlint:hotpath one Send per datagram on the loopback backend
func (e *end) Send(p []byte) error {
	l := e.l
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	now := l.clock.advance(l.cfg.BaseLatency + sim.Time(len(p))*l.cfg.PerByte)
	verdict := FaultNone
	if l.cfg.Fault != nil {
		verdict = l.cfg.Fault(now, e.dir, p)
	}
	recv := l.recv[e.dir]
	out := p
	switch verdict {
	case FaultDrop:
		l.stats.Dropped++
		l.mu.Unlock()
		return nil
	case FaultCorrupt:
		l.stats.Corrupted++
		l.stats.Delivered++
		// Only the fault path copies: the bit flip must not corrupt the
		// sender's buffer, which the reliable layer may retransmit intact.
		//edmlint:allow hotpath fault injection must not mutate the sender's buffer
		out = append([]byte(nil), p...)
		out[len(out)/2] ^= 0x10
	default:
		// Receivers decode-and-copy and never retain the datagram, so the
		// clean path forwards the sender's buffer without a per-op copy.
		l.stats.Delivered++
	}
	l.mu.Unlock()
	if recv != nil {
		recv(out)
	}
	return nil
}

// SendBatch delivers each datagram in order through the exact Send path —
// same virtual-clock charge, same fault adjudication, same synchronous
// delivery — so a corked flush is byte-identical to sequential sends and
// seeded loopback runs stay reproducible across the batching change.
func (e *end) SendBatch(ps [][]byte) error {
	for _, p := range ps {
		if err := e.Send(p); err != nil {
			return err
		}
	}
	return nil
}

func (e *end) Close() error {
	l := e.l
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}
