// Package wire carries EDM's memory-message vocabulary over real datagrams.
//
// The simulator speaks the paper's message types (RREQ/WREQ/RMWREQ and their
// responses) at 66-bit-block granularity inside the Ethernet PHY; this
// package re-frames the same vocabulary as a compact binary datagram format
// plus a reliable request/response layer, so a live memory-node daemon
// (cmd/edmd) and a load generator (cmd/edmload) can exchange the messages
// the simulator only models. Three pieces:
//
//   - the codec (this file): one message per datagram, fixed little-endian
//     header + RMW args + payload + CRC-32, with strict decode validation so
//     corrupted datagrams are detected and dropped like a failed PCS decode
//     in the paper's fabric (§3.3);
//   - Conn (conn.go): client-side reliability — per-message retransmission
//     with configurable timeout/retry, response matching by message ID;
//   - Responder (conn.go): server-side duplicate suppression via an ID
//     window with a cached-response replay, so retransmitted RMWREQs stay
//     exactly-once.
//
// Transports: real UDP (udp.go) and a deterministic in-process loopback with
// a virtual clock and fault hooks (loopback.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind is the datagram message type: the paper's §2.3 vocabulary plus the
// session handshake/teardown pairs of the reliable layer.
type Kind uint8

const (
	// KindHello opens a session; the server answers KindHelloAck with its
	// slab geometry (see rmem.Geometry).
	KindHello Kind = iota + 1
	KindHelloAck
	// KindBye closes a session; the server answers KindByeAck and forgets
	// the client's duplicate-suppression window.
	KindBye
	KindByeAck
	// KindRREQ reads Count bytes at Addr; answered by KindRRESP carrying
	// the data.
	KindRREQ
	KindRRESP
	// KindWREQ writes Data at Addr; answered by KindWACK. Unlike the
	// paper's one-sided writes, the live protocol acks writes explicitly —
	// the ack doubles as the retransmission signal.
	KindWREQ
	KindWACK
	// KindRMWREQ performs an atomic read-modify-write (memctl.RMWOp in Op,
	// operands in Args); answered by KindRMWRESP with the 64-bit result in
	// Data.
	KindRMWREQ
	KindRMWRESP

	kindMax = KindRMWRESP
)

// NumKinds sizes per-kind arrays (index by Kind; slot 0 is unused).
const NumKinds = int(kindMax) + 1

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindHelloAck:
		return "HELLO-ACK"
	case KindBye:
		return "BYE"
	case KindByeAck:
		return "BYE-ACK"
	case KindRREQ:
		return "RREQ"
	case KindRRESP:
		return "RRESP"
	case KindWREQ:
		return "WREQ"
	case KindWACK:
		return "WACK"
	case KindRMWREQ:
		return "RMWREQ"
	case KindRMWRESP:
		return "RMWRESP"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsRequest reports whether k travels client->server and expects a response.
func (k Kind) IsRequest() bool {
	switch k {
	case KindHello, KindBye, KindRREQ, KindWREQ, KindRMWREQ:
		return true
	}
	return false
}

// Response returns the response kind a request expects.
func (k Kind) Response() Kind {
	switch k {
	case KindHello:
		return KindHelloAck
	case KindBye:
		return KindByeAck
	case KindRREQ:
		return KindRRESP
	case KindWREQ:
		return KindWACK
	case KindRMWREQ:
		return KindRMWRESP
	}
	return 0
}

// Status is the response outcome code.
type Status uint8

const (
	StatusOK Status = iota
	// StatusRange rejects an access outside the slab.
	StatusRange
	// StatusOp rejects a bad RMW opcode or argument count.
	StatusOp
	// StatusProto rejects a malformed or out-of-session request.
	StatusProto

	statusMax = StatusProto
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRange:
		return "out-of-range"
	case StatusOp:
		return "bad-op"
	case StatusProto:
		return "protocol-error"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Err converts a non-OK status into an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrRemote, s)
}

// Wire format limits.
const (
	// Version is the protocol version carried in every datagram.
	Version = 1
	// MaxArgs bounds the RMW operand count (memctl's widest op takes 2).
	MaxArgs = 4
	// MaxData bounds the payload so any message fits one unfragmented-ish
	// UDP datagram (65507 payload max; leave generous headroom).
	MaxData = 60000
	// headerBytes is the fixed prefix: version(1) kind(1) status(1) op(1)
	// nargs(1) id(4) addr(8) count(4).
	headerBytes = 21
	// crcBytes is the trailing CRC-32 (Castagnoli).
	crcBytes = 4
	// MaxDatagram is the largest encoded message.
	MaxDatagram = headerBytes + 8*MaxArgs + MaxData + crcBytes
)

// Codec errors.
var (
	ErrTooLarge = errors.New("wire: message exceeds datagram bounds")
	ErrShort    = errors.New("wire: datagram too short")
	ErrVersion  = errors.New("wire: protocol version mismatch")
	ErrBadKind  = errors.New("wire: unknown message kind")
	ErrBadMsg   = errors.New("wire: malformed message")
	ErrChecksum = errors.New("wire: checksum mismatch")
	ErrRemote   = errors.New("wire: request failed at server")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Msg is one wire message. Field use by kind:
//
//	RREQ:    ID, Addr, Count (bytes demanded)
//	RRESP:   ID, Status, Data (the bytes; Count mirrors len(Data))
//	WREQ:    ID, Addr, Data (payload; Count mirrors len(Data))
//	WACK:    ID, Status
//	RMWREQ:  ID, Addr, Op, Args
//	RMWRESP: ID, Status, Data (8-byte result)
//	HELLO:   ID
//	HELLO-ACK: ID, Status, Data (server geometry, see rmem)
//	BYE / BYE-ACK: ID
//
// Msgs are pooled: a response handed to a callback (and request records
// recycled by the client) is valid only for the duration of that callback.
// Retaining one — or a view of its Data — requires an explicit copy
// (Clone). The pooledescape analyzer enforces this module-wide.
//
//edmlint:owned callback
type Msg struct {
	Kind   Kind
	Status Status
	// Op is the RMW opcode (a memctl.RMWOp value).
	Op uint8
	// ID matches a response to its request. The reliable layer assigns
	// sequential IDs per connection.
	ID uint32
	// Addr is the slab byte address.
	Addr uint64
	// Count is the byte count of the access: the read demand for RREQ, the
	// payload length otherwise (kept explicit on the wire so demand is
	// visible without the payload, as in the paper's notification headers).
	Count uint32
	// Args are the RMW operands.
	Args []uint64
	// Data is the payload.
	Data []byte
}

// EncodedSize reports the datagram size of m without building it.
func (m *Msg) EncodedSize() int {
	return headerBytes + 8*len(m.Args) + len(m.Data) + crcBytes
}

// Reset clears m for reuse, retaining the Args/Data capacity. It must not
// be used on messages whose slices alias caller-owned buffers (a pooled
// message would then scribble over them on its next decode); those need a
// full zero instead.
func (m *Msg) Reset() {
	m.Kind, m.Status, m.Op = 0, 0, 0
	m.ID, m.Addr, m.Count = 0, 0, 0
	m.Args = m.Args[:0]
	m.Data = m.Data[:0]
}

// Clone returns a deep copy of m: the escape hatch for callbacks that need
// to retain a connection-owned response past the callback's return.
func (m *Msg) Clone() *Msg {
	n := &Msg{Kind: m.Kind, Status: m.Status, Op: m.Op,
		ID: m.ID, Addr: m.Addr, Count: m.Count}
	if len(m.Args) > 0 {
		n.Args = append([]uint64(nil), m.Args...)
	}
	if len(m.Data) > 0 {
		n.Data = append([]byte(nil), m.Data...)
	}
	return n
}

// Encode renders m as one datagram.
//
//edmlint:hotpath one exactly-sized allocation per datagram
func (m *Msg) Encode() ([]byte, error) {
	return m.AppendEncode(nil)
}

// growBytes extends b by n bytes, reallocating only when capacity lacks.
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	want := len(b) + n
	c := 2 * cap(b)
	if c < want {
		c = want
	}
	nb := make([]byte, want, c)
	copy(nb, b)
	return nb
}

// AppendEncode appends m's encoding to dst and returns the extended slice.
// With a recycled dst (sliced to length 0) the steady state allocates
// nothing; Conn and Responder keep one such buffer per call/cache record.
//
//edmlint:hotpath the allocation-free encode used by the pooled hot path
func (m *Msg) AppendEncode(dst []byte) ([]byte, error) {
	if m.Kind == 0 || m.Kind > kindMax {
		return dst, fmt.Errorf("%w: %d", ErrBadKind, uint8(m.Kind))
	}
	if len(m.Args) > MaxArgs {
		return dst, fmt.Errorf("%w: %d RMW args", ErrTooLarge, len(m.Args))
	}
	if len(m.Data) > MaxData {
		return dst, fmt.Errorf("%w: %d payload bytes", ErrTooLarge, len(m.Data))
	}
	start := len(dst)
	dst = growBytes(dst, m.EncodedSize())
	b := dst[start:]
	b[0] = Version
	b[1] = byte(m.Kind)
	b[2] = byte(m.Status)
	b[3] = m.Op
	b[4] = byte(len(m.Args))
	binary.LittleEndian.PutUint32(b[5:], m.ID)
	binary.LittleEndian.PutUint64(b[9:], m.Addr)
	binary.LittleEndian.PutUint32(b[17:], m.Count)
	off := headerBytes
	for _, a := range m.Args {
		binary.LittleEndian.PutUint64(b[off:], a)
		off += 8
	}
	off += copy(b[off:], m.Data)
	binary.LittleEndian.PutUint32(b[off:], crc32.Checksum(b[:off], castagnoli))
	return dst, nil
}

// Decode parses one datagram into a fresh Msg. It validates the version,
// kind, status, arg count, bounds and trailing checksum; any corruption that
// flips a bit anywhere in the datagram is caught by the CRC, mirroring the
// fabric's corrupted-block detection (§3.3).
//
//edmlint:hotpath
func Decode(b []byte) (*Msg, error) {
	//edmlint:allow hotpath one Msg per datagram is the decode contract
	m := new(Msg)
	if err := DecodeInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses one datagram into m, reusing m's Args/Data capacity.
// The payload is copied out of b, so the caller may recycle the datagram
// buffer immediately; m owns its slices until its next DecodeInto/Reset.
// On error m is left in an unspecified state and must not be read.
//
//edmlint:hotpath the allocation-free decode used by the pooled hot path
func DecodeInto(m *Msg, b []byte) error {
	if len(b) < headerBytes+crcBytes {
		return fmt.Errorf("%w: %d bytes", ErrShort, len(b))
	}
	if len(b) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(b))
	}
	body, sum := b[:len(b)-crcBytes], binary.LittleEndian.Uint32(b[len(b)-crcBytes:])
	if crc32.Checksum(body, castagnoli) != sum {
		return ErrChecksum
	}
	if b[0] != Version {
		return fmt.Errorf("%w: got %d want %d", ErrVersion, b[0], Version)
	}
	m.Kind = Kind(b[1])
	m.Status = Status(b[2])
	m.Op = b[3]
	m.ID = binary.LittleEndian.Uint32(b[5:])
	m.Addr = binary.LittleEndian.Uint64(b[9:])
	m.Count = binary.LittleEndian.Uint32(b[17:])
	m.Args = m.Args[:0]
	m.Data = m.Data[:0]
	if m.Kind == 0 || m.Kind > kindMax {
		return fmt.Errorf("%w: %d", ErrBadKind, b[1])
	}
	if m.Status > statusMax {
		return fmt.Errorf("%w: status %d", ErrBadMsg, b[2])
	}
	nargs := int(b[4])
	if nargs > MaxArgs {
		return fmt.Errorf("%w: %d RMW args", ErrBadMsg, nargs)
	}
	if len(body) < headerBytes+8*nargs {
		return fmt.Errorf("%w: %d args do not fit %d bytes", ErrBadMsg, nargs, len(body))
	}
	for i := 0; i < nargs; i++ {
		m.Args = append(m.Args, binary.LittleEndian.Uint64(body[headerBytes+8*i:]))
	}
	payload := body[headerBytes+8*nargs:]
	if len(payload) > MaxData {
		return fmt.Errorf("%w: %d payload bytes", ErrTooLarge, len(payload))
	}
	//edmlint:allow hotpath the datagram buffer is reused by transports; Msg must own its payload
	m.Data = append(m.Data, payload...)
	return nil
}
