//edmlint:allow walltime the UDP transport is the real-time boundary: socket timestamps and idle reclamation are wall time by nature

package wire

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// UDPClient is the client-side Pipe over a connected UDP socket. It
// implements BatchPipe: a corked window flush goes out as one sendmmsg on
// platforms that have it.
type UDPClient struct {
	conn *net.UDPConn
	bs   *batchSender

	mu     sync.Mutex
	closed bool
}

// DialUDP connects a UDP socket to addr ("host:port"). Call Run with the
// receive path (typically Conn.Deliver) to start the read loop.
func DialUDP(addr string) (*UDPClient, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &UDPClient{conn: conn, bs: newBatchSender(conn)}, nil
}

// Run starts the read loop, routing every inbound datagram to deliver.
// Datagrams arrive in receive buffers the loop reuses, so deliver must not
// retain its argument past the call (Conn.Deliver and rmem's client decode
// and copy, satisfying this). Run returns when the socket closes.
func (u *UDPClient) Run(deliver func([]byte)) {
	r := newBatchReceiver(u.conn, false)
	for {
		n, err := r.recvBatch()
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			deliver(r.pkt(i))
		}
	}
}

// Send transmits one datagram.
func (u *UDPClient) Send(p []byte) error {
	_, err := u.conn.Write(p)
	return err
}

// SendBatch transmits ps in order, coalescing datagrams into batched
// syscalls where the platform supports it.
func (u *UDPClient) SendBatch(ps [][]byte) error {
	return u.bs.send(ps)
}

// Close shuts the socket down, stopping the read loop.
func (u *UDPClient) Close() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil
	}
	u.closed = true
	return u.conn.Close()
}

// udpReply is the server's Pipe back to one remote client. It shares the
// listening socket, so Close is a no-op.
type udpReply struct {
	conn *net.UDPConn
	addr *net.UDPAddr
}

func (r *udpReply) Send(p []byte) error {
	_, err := r.conn.WriteToUDP(p, r.addr)
	return err
}

func (r *udpReply) Close() error { return nil }

// sessionIdleTimeout bounds how long a silent session keeps its state (the
// duplicate-suppression cache); a client that vanished without a BYE is
// reclaimed after this long.
const sessionIdleTimeout = 5 * time.Minute

// udpSession is one remote client's state.
type udpSession struct {
	deliver  func([]byte)
	token    string    // HELLO session token; guarded by mu (the server's)
	lastSeen time.Time // guarded by mu (the server's)
}

// packetWork is one inbound datagram bound for a session, parked on the
// worker queue. buf comes from pktBufPool and returns there after delivery.
type packetWork struct {
	buf     *[]byte
	n       int
	deliver func([]byte)
}

// pktBufPool recycles the datagram copies handed to the worker pool, so the
// server's receive path allocates no per-packet buffers in steady state.
var pktBufPool = sync.Pool{New: func() any {
	b := make([]byte, MaxDatagram+1)
	return &b
}}

// UDPServer owns a listening UDP socket and demultiplexes datagrams to
// per-remote sessions. The accept callback is invoked once per new remote
// address with a reply Pipe and returns that session's receive path
// (typically a Responder.Deliver); datagrams are then executed on a
// fixed-size worker pool (GOMAXPROCS workers), so sessions run concurrently
// without a goroutine per packet.
//
// Session lifecycle: a (CRC-valid) HELLO carrying a token different from
// the current session's starts a fresh session — a restarted client
// reusing its source port must not inherit the previous incarnation's
// duplicate-suppression cache, which would replay stale responses to its
// new message IDs. A HELLO with the *same* token is a retransmission of
// the current session's handshake and is delivered into it unchanged (the
// dedup cache replays the HELLO-ACK), so an in-flight duplicate cannot
// wipe the cache out from under pipelined ops. Clients that send no token
// get the conservative always-reset behaviour. A (CRC-valid) BYE retires
// the session after delivery; a retransmitted BYE simply opens and
// immediately closes a fresh one. Sessions idle past sessionIdleTimeout
// are reclaimed by a janitor.
type UDPServer struct {
	conn   *net.UDPConn
	accept func(remote string, reply Pipe) func([]byte)

	mu          sync.Mutex
	sessions    map[string]*udpSession // guarded by mu
	sessMetrics *UDPServerMetrics      // guarded by mu
	closed      bool                   // guarded by mu
	done        chan struct{}
	wg          sync.WaitGroup
}

// ListenUDP binds addr ("host:port"; port 0 picks a free one) and starts
// serving. Use Addr for the bound address and Close to stop.
func ListenUDP(addr string, accept func(remote string, reply Pipe) func([]byte)) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &UDPServer{conn: conn, accept: accept,
		sessions: make(map[string]*udpSession), done: make(chan struct{}),
		sessMetrics: NewUDPServerMetrics(nil)}
	s.wg.Add(2)
	go s.readLoop()
	go s.janitor()
	return s, nil
}

// SetMetrics swaps in registered session-lifecycle metrics. Call it right
// after ListenUDP, before clients connect; events counted on the default
// (unregistered) instance are not carried over.
func (s *UDPServer) SetMetrics(m *UDPServerMetrics) {
	if m == nil {
		return
	}
	s.mu.Lock()
	s.sessMetrics = m
	m.Active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
}

// Addr reports the bound listen address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// sessionControl classifies the rare session-lifecycle datagrams and
// extracts the HELLO's session token. The kind byte sits at a fixed
// offset, so the cheap peek gates the full (CRC-validating) decode — a
// corrupted datagram must not reset or retire a session.
func sessionControl(p []byte) (hello, bye bool, token string) {
	if len(p) < headerBytes+crcBytes {
		return false, false, ""
	}
	k := Kind(p[1])
	if k != KindHello && k != KindBye {
		return false, false, ""
	}
	m, err := Decode(p)
	if err != nil {
		return false, false, ""
	}
	return m.Kind == KindHello, m.Kind == KindBye, string(m.Data)
}

// route classifies one datagram against the session table and returns the
// session's receive path (nil when the server is closed or the session has
// no deliver hook).
func (s *UDPServer) route(p []byte, raddr *net.UDPAddr) func([]byte) {
	hello, bye, token := sessionControl(p)
	key := raddr.String()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	sess, ok := s.sessions[key]
	// A HELLO resets the session unless it carries the current
	// session's token (then it is a handshake retransmission).
	reset := hello && (!ok || token == "" || token != sess.token)
	if !ok || reset {
		sess = &udpSession{
			deliver: s.accept(key, &udpReply{conn: s.conn, addr: cloneUDPAddr(raddr)}),
			token:   token,
		}
		s.sessions[key] = sess
		s.sessMetrics.Started.Inc()
		if ok && reset {
			s.sessMetrics.Resets.Inc()
		}
	}
	sess.lastSeen = time.Now()
	if bye {
		// Retired after this datagram's delivery; the BYE-ACK goes out via
		// the session's own reply pipe regardless.
		delete(s.sessions, key)
		s.sessMetrics.Retired.Inc()
	}
	s.sessMetrics.Active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	return sess.deliver
}

// readLoop drains the socket in recvmmsg batches and fans the packets out
// to a fixed worker pool. Ordering note: packets from one remote can
// execute on different workers concurrently, which is safe because the
// Responder serializes per-ID execution through its dedup window; and a
// worker blocked on an in-progress duplicate is always waiting on an
// execution owned by a *different* packet, never its own, so the pool
// cannot deadlock on itself.
func (s *UDPServer) readLoop() {
	defer s.wg.Done()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	work := make(chan packetWork, 4*workers)
	var workerWG sync.WaitGroup
	defer workerWG.Wait()
	defer close(work)
	for i := 0; i < workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for w := range work {
				w.deliver((*w.buf)[:w.n])
				pktBufPool.Put(w.buf)
			}
		}()
	}
	r := newBatchReceiver(s.conn, true)
	for {
		n, err := r.recvBatch()
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			p := r.pkt(i)
			deliver := s.route(p, r.src(i))
			if deliver == nil {
				continue
			}
			// Copy out of the receiver's reused buffer; the pooled copy
			// travels to a worker and returns to the pool after delivery.
			buf := pktBufPool.Get().(*[]byte)
			nb := copy(*buf, p)
			work <- packetWork{buf: buf, n: nb, deliver: deliver}
		}
	}
}

// janitor reclaims sessions idle past sessionIdleTimeout.
func (s *UDPServer) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(sessionIdleTimeout / 4)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-sessionIdleTimeout)
		s.mu.Lock()
		for key, sess := range s.sessions {
			if sess.lastSeen.Before(cutoff) {
				delete(s.sessions, key)
				s.sessMetrics.Expired.Inc()
			}
		}
		s.sessMetrics.Active.Set(int64(len(s.sessions)))
		s.mu.Unlock()
	}
}

// cloneUDPAddr copies raddr, whose backing storage the read loop reuses.
func cloneUDPAddr(a *net.UDPAddr) *net.UDPAddr {
	return &net.UDPAddr{IP: append(net.IP(nil), a.IP...), Port: a.Port, Zone: a.Zone}
}

// Sessions reports the number of live sessions.
func (s *UDPServer) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Forget drops the session state for one remote (after a BYE, so a future
// HELLO from the same address starts fresh).
func (s *UDPServer) Forget(remote string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[remote]; ok {
		delete(s.sessions, remote)
		s.sessMetrics.Retired.Inc()
	}
	s.sessMetrics.Active.Set(int64(len(s.sessions)))
}

// Close stops the server and waits for in-flight handlers.
func (s *UDPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
