//edmlint:allow walltime the UDP transport is the real-time boundary: socket timestamps and idle reclamation are wall time by nature

package wire

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// UDPClient is the client-side Pipe over a connected UDP socket.
type UDPClient struct {
	conn *net.UDPConn

	mu     sync.Mutex
	closed bool
}

// DialUDP connects a UDP socket to addr ("host:port"). Call Run with the
// receive path (typically Conn.Deliver) to start the read loop.
func DialUDP(addr string) (*UDPClient, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &UDPClient{conn: conn}, nil
}

// Run starts the read loop, routing every inbound datagram to deliver. It
// returns when the socket closes.
func (u *UDPClient) Run(deliver func([]byte)) {
	buf := make([]byte, MaxDatagram+1)
	for {
		n, err := u.conn.Read(buf)
		if err != nil {
			return
		}
		deliver(append([]byte(nil), buf[:n]...))
	}
}

// Send transmits one datagram.
func (u *UDPClient) Send(p []byte) error {
	_, err := u.conn.Write(p)
	return err
}

// Close shuts the socket down, stopping the read loop.
func (u *UDPClient) Close() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil
	}
	u.closed = true
	return u.conn.Close()
}

// udpReply is the server's Pipe back to one remote client. It shares the
// listening socket, so Close is a no-op.
type udpReply struct {
	conn *net.UDPConn
	addr *net.UDPAddr
}

func (r *udpReply) Send(p []byte) error {
	_, err := r.conn.WriteToUDP(p, r.addr)
	return err
}

func (r *udpReply) Close() error { return nil }

// sessionIdleTimeout bounds how long a silent session keeps its state (the
// duplicate-suppression cache); a client that vanished without a BYE is
// reclaimed after this long.
const sessionIdleTimeout = 5 * time.Minute

// udpSession is one remote client's state.
type udpSession struct {
	deliver  func([]byte)
	token    string    // HELLO session token; guarded by mu (the server's)
	lastSeen time.Time // guarded by mu (the server's)
}

// UDPServer owns a listening UDP socket and demultiplexes datagrams to
// per-remote sessions. The accept callback is invoked once per new remote
// address with a reply Pipe and returns that session's receive path
// (typically a Responder.Deliver); each datagram is then handled on its own
// goroutine, so sessions execute concurrently.
//
// Session lifecycle: a (CRC-valid) HELLO carrying a token different from
// the current session's starts a fresh session — a restarted client
// reusing its source port must not inherit the previous incarnation's
// duplicate-suppression cache, which would replay stale responses to its
// new message IDs. A HELLO with the *same* token is a retransmission of
// the current session's handshake and is delivered into it unchanged (the
// dedup cache replays the HELLO-ACK), so an in-flight duplicate cannot
// wipe the cache out from under pipelined ops. Clients that send no token
// get the conservative always-reset behaviour. A (CRC-valid) BYE retires
// the session after delivery; a retransmitted BYE simply opens and
// immediately closes a fresh one. Sessions idle past sessionIdleTimeout
// are reclaimed by a janitor.
type UDPServer struct {
	conn   *net.UDPConn
	accept func(remote string, reply Pipe) func([]byte)

	mu          sync.Mutex
	sessions    map[string]*udpSession // guarded by mu
	sessMetrics *UDPServerMetrics      // guarded by mu
	closed      bool                   // guarded by mu
	done        chan struct{}
	wg          sync.WaitGroup
}

// ListenUDP binds addr ("host:port"; port 0 picks a free one) and starts
// serving. Use Addr for the bound address and Close to stop.
func ListenUDP(addr string, accept func(remote string, reply Pipe) func([]byte)) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &UDPServer{conn: conn, accept: accept,
		sessions: make(map[string]*udpSession), done: make(chan struct{}),
		sessMetrics: NewUDPServerMetrics(nil)}
	s.wg.Add(2)
	go s.readLoop()
	go s.janitor()
	return s, nil
}

// SetMetrics swaps in registered session-lifecycle metrics. Call it right
// after ListenUDP, before clients connect; events counted on the default
// (unregistered) instance are not carried over.
func (s *UDPServer) SetMetrics(m *UDPServerMetrics) {
	if m == nil {
		return
	}
	s.mu.Lock()
	s.sessMetrics = m
	m.Active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
}

// Addr reports the bound listen address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// sessionControl classifies the rare session-lifecycle datagrams and
// extracts the HELLO's session token. The kind byte sits at a fixed
// offset, so the cheap peek gates the full (CRC-validating) decode — a
// corrupted datagram must not reset or retire a session.
func sessionControl(p []byte) (hello, bye bool, token string) {
	if len(p) < headerBytes+crcBytes {
		return false, false, ""
	}
	k := Kind(p[1])
	if k != KindHello && k != KindBye {
		return false, false, ""
	}
	m, err := Decode(p)
	if err != nil {
		return false, false, ""
	}
	return m.Kind == KindHello, m.Kind == KindBye, string(m.Data)
}

func (s *UDPServer) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, MaxDatagram+1)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p := append([]byte(nil), buf[:n]...)
		hello, bye, token := sessionControl(p)
		key := raddr.String()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		sess, ok := s.sessions[key]
		// A HELLO resets the session unless it carries the current
		// session's token (then it is a handshake retransmission).
		reset := hello && (!ok || token == "" || token != sess.token)
		if !ok || reset {
			sess = &udpSession{
				deliver: s.accept(key, &udpReply{conn: s.conn, addr: cloneUDPAddr(raddr)}),
				token:   token,
			}
			s.sessions[key] = sess
			s.sessMetrics.Started.Inc()
			if ok && reset {
				s.sessMetrics.Resets.Inc()
			}
		}
		sess.lastSeen = time.Now()
		if bye {
			// Retired after this datagram's delivery below; the BYE-ACK
			// goes out via the session's own reply pipe regardless.
			delete(s.sessions, key)
			s.sessMetrics.Retired.Inc()
		}
		s.sessMetrics.Active.Set(int64(len(s.sessions)))
		s.mu.Unlock()
		if sess.deliver == nil {
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.deliver(p)
		}()
	}
}

// janitor reclaims sessions idle past sessionIdleTimeout.
func (s *UDPServer) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(sessionIdleTimeout / 4)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-sessionIdleTimeout)
		s.mu.Lock()
		for key, sess := range s.sessions {
			if sess.lastSeen.Before(cutoff) {
				delete(s.sessions, key)
				s.sessMetrics.Expired.Inc()
			}
		}
		s.sessMetrics.Active.Set(int64(len(s.sessions)))
		s.mu.Unlock()
	}
}

// cloneUDPAddr copies raddr, whose backing storage the read loop reuses.
func cloneUDPAddr(a *net.UDPAddr) *net.UDPAddr {
	return &net.UDPAddr{IP: append(net.IP(nil), a.IP...), Port: a.Port, Zone: a.Zone}
}

// Sessions reports the number of live sessions.
func (s *UDPServer) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Forget drops the session state for one remote (after a BYE, so a future
// HELLO from the same address starts fresh).
func (s *UDPServer) Forget(remote string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[remote]; ok {
		delete(s.sessions, remote)
		s.sessMetrics.Retired.Inc()
	}
	s.sessMetrics.Active.Set(int64(len(s.sessions)))
}

// Close stops the server and waits for in-flight handlers.
func (s *UDPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
