//edmlint:allow walltime these tests wait on real retry/timeout deadlines

package wire

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// echoHandler answers every request with its response kind, echoing the
// payload for RREQ-sized checks.
func echoHandler(m, resp *Msg) {
	if m.Kind == KindRREQ {
		resp.Data = growTestData(resp.Data, int(m.Count))
	}
}

// growTestData returns a zeroed slice of n bytes reusing d's capacity.
func growTestData(d []byte, n int) []byte {
	if cap(d) < n {
		return make([]byte, n)
	}
	d = d[:n]
	for i := range d {
		d[i] = 0
	}
	return d
}

// pair wires a Conn and a Responder over a fresh loopback.
func pair(t *testing.T, lcfg LoopbackConfig, ccfg ConnConfig, handler func(req, resp *Msg)) (*Loopback, *Conn, *Responder) {
	t.Helper()
	if handler == nil {
		handler = echoHandler
	}
	lb := NewLoopback(lcfg)
	conn := NewConn(lb.ClientPipe(), ccfg)
	resp := NewResponder(lb.ServerPipe(), ResponderConfig{}, handler)
	lb.BindServer(resp.Deliver)
	lb.BindClient(conn.Deliver)
	return lb, conn, resp
}

// callSync issues one call and waits for its completion.
func callSync(t *testing.T, conn *Conn, m *Msg) (*Msg, error) {
	t.Helper()
	ch := make(chan struct{})
	var resp *Msg
	var cerr error
	if _, err := conn.Call(m, func(r *Msg, err error) {
		// The response is pooled and valid only during the callback.
		if r != nil {
			resp = r.Clone()
		}
		cerr = err
		close(ch)
	}); err != nil {
		return nil, err
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed")
	}
	return resp, cerr
}

func TestConnRoundTrip(t *testing.T) {
	_, conn, resp := pair(t, LoopbackConfig{}, ConnConfig{}, nil)
	r, err := callSync(t, conn, &Msg{Kind: KindRREQ, Addr: 0, Count: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindRRESP || len(r.Data) != 64 {
		t.Fatalf("got %v with %d bytes", r.Kind, len(r.Data))
	}
	if st := resp.Stats(); st.Requests != 1 || st.Duplicates != 0 {
		t.Errorf("responder stats %+v", st)
	}
	if st := conn.Stats(); st.Responses != 1 || st.Retransmit != 0 {
		t.Errorf("conn stats %+v", st)
	}
}

// TestConnRetransmitAfterDrop is the e2e reliability check: a dropped
// request datagram is retried and the call still succeeds.
func TestConnRetransmitAfterDrop(t *testing.T) {
	drops := 0
	cfg := LoopbackConfig{Fault: func(_ sim.Time, dir Dir, _ []byte) Fault {
		if dir == ToServer && drops == 0 {
			drops++
			return FaultDrop
		}
		return FaultNone
	}}
	lb, conn, resp := pair(t, cfg, ConnConfig{RetryTimeout: 5 * time.Millisecond, MaxRetries: 3}, nil)
	r, err := callSync(t, conn, &Msg{Kind: KindRREQ, Count: 8})
	if err != nil {
		t.Fatalf("call after drop: %v", err)
	}
	if r.Kind != KindRRESP {
		t.Fatalf("got %v", r.Kind)
	}
	if st := conn.Stats(); st.Retransmit != 1 {
		t.Errorf("want 1 retransmit, stats %+v", st)
	}
	if st := resp.Stats(); st.Requests != 1 {
		t.Errorf("server should have executed once, stats %+v", st)
	}
	if st := lb.Stats(); st.Dropped != 1 {
		t.Errorf("loopback stats %+v", st)
	}
}

// TestConnDuplicateSuppression: a dropped *response* forces a request
// retransmission; the server must replay its cached response without
// re-executing the handler.
func TestConnDuplicateSuppression(t *testing.T) {
	drops := 0
	cfg := LoopbackConfig{Fault: func(_ sim.Time, dir Dir, _ []byte) Fault {
		if dir == ToClient && drops == 0 {
			drops++
			return FaultDrop
		}
		return FaultNone
	}}
	executions := 0
	handler := func(m, resp *Msg) {
		executions++
		echoHandler(m, resp)
	}
	_, conn, resp := pair(t, cfg, ConnConfig{RetryTimeout: 5 * time.Millisecond, MaxRetries: 3}, handler)
	if _, err := callSync(t, conn, &Msg{Kind: KindRMWREQ, Addr: 8, Op: 2, Args: []uint64{1}}); err != nil {
		t.Fatalf("call after response drop: %v", err)
	}
	if executions != 1 {
		t.Fatalf("handler executed %d times; duplicate suppression failed", executions)
	}
	st := resp.Stats()
	if st.Requests != 1 || st.Duplicates != 1 {
		t.Errorf("responder stats %+v", st)
	}
}

// TestConnTimeout: with every datagram dropped the call fails with
// ErrTimeout after exhausting its retry budget.
func TestConnTimeout(t *testing.T) {
	cfg := LoopbackConfig{Fault: func(sim.Time, Dir, []byte) Fault { return FaultDrop }}
	_, conn, _ := pair(t, cfg, ConnConfig{RetryTimeout: 2 * time.Millisecond, MaxRetries: 2}, nil)
	_, err := callSync(t, conn, &Msg{Kind: KindRREQ, Count: 8})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	st := conn.Stats()
	if st.Sent != 3 || st.Timeouts != 1 { // 1 attempt + 2 retries
		t.Errorf("conn stats %+v", st)
	}
}

// TestConnCorruptionDetected: a corrupted response fails the CRC at the
// client, which then recovers via retransmission.
func TestConnCorruptionDetected(t *testing.T) {
	hits := 0
	cfg := LoopbackConfig{Fault: func(_ sim.Time, dir Dir, _ []byte) Fault {
		if dir == ToClient && hits == 0 {
			hits++
			return FaultCorrupt
		}
		return FaultNone
	}}
	_, conn, _ := pair(t, cfg, ConnConfig{RetryTimeout: 5 * time.Millisecond, MaxRetries: 3}, nil)
	if _, err := callSync(t, conn, &Msg{Kind: KindRREQ, Count: 32}); err != nil {
		t.Fatalf("call after corruption: %v", err)
	}
	if st := conn.Stats(); st.Garbage != 1 {
		t.Errorf("corrupted datagram not counted: %+v", st)
	}
}

func TestConnCloseFailsPending(t *testing.T) {
	cfg := LoopbackConfig{Fault: func(sim.Time, Dir, []byte) Fault { return FaultDrop }}
	_, conn, _ := pair(t, cfg, ConnConfig{RetryTimeout: time.Second, MaxRetries: 5}, nil)
	ch := make(chan error, 1)
	if _, err := conn.Call(&Msg{Kind: KindRREQ, Count: 8}, func(_ *Msg, err error) { ch <- err }); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ch:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending call got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending call never failed")
	}
	if _, err := conn.Call(&Msg{Kind: KindRREQ}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call on closed conn: %v", err)
	}
}

// TestLoopbackVirtualClock: latencies over the loopback are a pure function
// of datagram sizes, so two identical exchanges cost identical virtual time.
func TestLoopbackVirtualClock(t *testing.T) {
	elapse := func() sim.Time {
		lb, conn, _ := pair(t, LoopbackConfig{}, ConnConfig{}, nil)
		start := lb.Now()
		if _, err := callSync(t, conn, &Msg{Kind: KindRREQ, Count: 1024}); err != nil {
			t.Fatal(err)
		}
		return lb.Now() - start
	}
	a, b := elapse(), elapse()
	if a != b {
		t.Fatalf("virtual cost differs across identical runs: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("virtual clock did not advance: %v", a)
	}
	lb := NewLoopback(LoopbackConfig{})
	lb.AdvanceTo(5 * sim.Microsecond)
	if lb.Now() != 5*sim.Microsecond {
		t.Fatalf("AdvanceTo: %v", lb.Now())
	}
	lb.AdvanceTo(1 * sim.Microsecond) // never goes backwards
	if lb.Now() != 5*sim.Microsecond {
		t.Fatalf("AdvanceTo went backwards: %v", lb.Now())
	}
}

// TestConnPipelined: many overlapping calls over one connection complete
// with their own responses (ID matching), from concurrent goroutines.
func TestConnPipelined(t *testing.T) {
	handler := func(m, resp *Msg) {
		if m.Kind == KindRREQ {
			resp.Data = growTestData(resp.Data, int(m.Count))
			for i := range resp.Data {
				resp.Data[i] = byte(m.Addr)
			}
		}
	}
	_, conn, _ := pair(t, LoopbackConfig{}, ConnConfig{}, handler)
	const calls = 64
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := make(chan struct{})
			_, err := conn.Call(&Msg{Kind: KindRREQ, Addr: uint64(i), Count: 16}, func(r *Msg, err error) {
				defer close(done)
				if err != nil {
					errs <- err
					return
				}
				for _, b := range r.Data {
					if b != byte(i) {
						errs <- errors.New("response crossed calls")
						return
					}
				}
			})
			if err != nil {
				errs <- err
				return
			}
			<-done
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestUDPRoundTrip exercises the real-socket path: dial, handshake-free
// echo, close.
func TestUDPRoundTrip(t *testing.T) {
	var server *UDPServer
	server, err := ListenUDP("127.0.0.1:0", func(_ string, reply Pipe) func([]byte) {
		return NewResponder(reply, ResponderConfig{}, echoHandler).Deliver
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	cl, err := DialUDP(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(cl, ConnConfig{RetryTimeout: 50 * time.Millisecond, MaxRetries: 5})
	go cl.Run(conn.Deliver)
	defer conn.Close()

	for i := 0; i < 10; i++ {
		r, err := callSync(t, conn, &Msg{Kind: KindRREQ, Count: 512})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if r.Kind != KindRRESP || len(r.Data) != 512 {
			t.Fatalf("call %d: %v %d bytes", i, r.Kind, len(r.Data))
		}
	}
	if server.Sessions() != 1 {
		t.Errorf("sessions = %d", server.Sessions())
	}
}
