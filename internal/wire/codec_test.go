package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// sampleMsgs covers every kind with representative field use.
func sampleMsgs() []*Msg {
	return []*Msg{
		{Kind: KindHello, ID: 0},
		{Kind: KindHelloAck, ID: 0, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KindBye, ID: 9},
		{Kind: KindByeAck, ID: 9},
		{Kind: KindRREQ, ID: 1, Addr: 0xdeadbeef, Count: 4096},
		{Kind: KindRRESP, ID: 1, Data: bytes.Repeat([]byte{0xab}, 4096)},
		{Kind: KindWREQ, ID: 2, Addr: 64, Count: 100, Data: bytes.Repeat([]byte{0x5a}, 100)},
		{Kind: KindWACK, ID: 2},
		{Kind: KindRMWREQ, ID: 3, Addr: 8, Op: 1, Args: []uint64{7, ^uint64(0)}},
		{Kind: KindRMWRESP, ID: 3, Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
		{Kind: KindWACK, ID: 4, Status: StatusRange},
		{Kind: KindRMWRESP, ID: 5, Status: StatusOp},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", m.Kind, err)
		}
		if len(enc) != m.EncodedSize() {
			t.Fatalf("%v: EncodedSize=%d, got %d bytes", m.Kind, m.EncodedSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip:\n sent %+v\n got  %+v", m.Kind, m, got)
		}
	}
}

// TestCodecDetectsBitFlips: any single corrupted byte must fail the CRC (or
// an earlier validation) — the live analogue of the fabric's corrupted-block
// detection.
func TestCodecDetectsBitFlips(t *testing.T) {
	m := &Msg{Kind: KindWREQ, ID: 42, Addr: 128, Count: 16, Data: bytes.Repeat([]byte{3}, 16)}
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x20
		if _, err := Decode(bad); err == nil {
			t.Errorf("flip at byte %d of %d went undetected", i, len(enc))
		}
	}
}

func TestCodecRejects(t *testing.T) {
	valid, err := (&Msg{Kind: KindRREQ, ID: 1, Count: 8}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"truncated", valid[:headerBytes], ErrShort},
		{"oversize", make([]byte, MaxDatagram+1), ErrTooLarge},
	}
	for _, c := range cases {
		if _, err := Decode(c.b); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}

	if _, err := (&Msg{Kind: 0}).Encode(); !errors.Is(err, ErrBadKind) {
		t.Errorf("encode kind 0: %v", err)
	}
	if _, err := (&Msg{Kind: KindRMWREQ, Args: make([]uint64, MaxArgs+1)}).Encode(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("encode too many args: %v", err)
	}
	if _, err := (&Msg{Kind: KindRRESP, Data: make([]byte, MaxData+1)}).Encode(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("encode oversize payload: %v", err)
	}
}

func TestKindRequestResponsePairs(t *testing.T) {
	pairs := map[Kind]Kind{
		KindHello:  KindHelloAck,
		KindBye:    KindByeAck,
		KindRREQ:   KindRRESP,
		KindWREQ:   KindWACK,
		KindRMWREQ: KindRMWRESP,
	}
	for req, resp := range pairs {
		if !req.IsRequest() {
			t.Errorf("%v should be a request", req)
		}
		if resp.IsRequest() {
			t.Errorf("%v should not be a request", resp)
		}
		if got := req.Response(); got != resp {
			t.Errorf("%v response: got %v want %v", req, got, resp)
		}
	}
}

func TestStatusErr(t *testing.T) {
	if err := StatusOK.Err(); err != nil {
		t.Errorf("StatusOK.Err() = %v", err)
	}
	if err := StatusRange.Err(); !errors.Is(err, ErrRemote) {
		t.Errorf("StatusRange.Err() = %v", err)
	}
}
