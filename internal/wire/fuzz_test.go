package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary datagrams at the decoder: it must never panic,
// and anything it accepts must re-encode to the exact input (the codec is
// canonical: one datagram per message, no redundant encodings).
func FuzzDecode(f *testing.F) {
	for _, m := range []*Msg{
		{Kind: KindHello},
		{Kind: KindRREQ, ID: 7, Addr: 4096, Count: 64},
		{Kind: KindWREQ, ID: 8, Addr: 0, Count: 3, Data: []byte{1, 2, 3}},
		{Kind: KindRMWREQ, ID: 9, Addr: 8, Op: 2, Args: []uint64{5, 6}},
		{Kind: KindRRESP, ID: 7, Data: bytes.Repeat([]byte{0xfe}, 200)},
	} {
		enc, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerBytes+crcBytes))

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("non-canonical datagram:\n in  %x\n out %x", b, enc)
		}
	})
}

// FuzzRoundTrip builds structurally valid messages from fuzzed fields and
// checks Encode/Decode is the identity on them.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(KindRREQ), uint8(0), uint8(0), uint32(1), uint64(64), uint32(8), uint64(0), uint8(0), []byte(nil))
	f.Add(uint8(KindRMWREQ), uint8(0), uint8(1), uint32(2), uint64(8), uint32(0), uint64(77), uint8(2), []byte(nil))
	f.Add(uint8(KindWREQ), uint8(0), uint8(0), uint32(3), uint64(128), uint32(5), uint64(0), uint8(0), []byte("hello"))

	f.Fuzz(func(t *testing.T, kind, status, op uint8, id uint32, addr uint64, count uint32, arg uint64, nargs uint8, data []byte) {
		m := &Msg{
			Kind:   Kind(kind%uint8(kindMax)) + 1,
			Status: Status(status % uint8(statusMax+1)),
			Op:     op,
			ID:     id,
			Addr:   addr,
			Count:  count,
		}
		if n := int(nargs) % (MaxArgs + 1); n > 0 {
			m.Args = make([]uint64, n)
			for i := range m.Args {
				m.Args[i] = arg + uint64(i)
			}
		}
		if len(data) > MaxData {
			data = data[:MaxData]
		}
		if len(data) > 0 {
			m.Data = data
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("encode valid message: %v", err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", m, got)
		}
	})
}
