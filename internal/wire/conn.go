package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Pipe is one unreliable datagram path to a single peer. Send is best-effort
// (the datagram may be lost, duplicated or corrupted in flight); Close
// releases the underlying resources. Implementations: the UDP client and the
// per-remote reply pipes of the UDP server (udp.go), and the two ends of a
// Loopback (loopback.go).
type Pipe interface {
	Send(p []byte) error
	Close() error
}

// BatchPipe extends Pipe with a batched send. SendBatch must behave exactly
// as calling Send on each element in order — same delivery order, same
// fault accounting — merely amortizing the per-datagram cost (one sendmmsg
// syscall on Linux UDP). Conn.Uncork uses it to flush a corked window in
// one call.
type BatchPipe interface {
	Pipe
	SendBatch(ps [][]byte) error
}

// Reliability errors.
var (
	ErrClosed  = errors.New("wire: connection closed")
	ErrTimeout = errors.New("wire: no response within the retry budget")
)

// ConnConfig tunes the client-side reliability layer.
type ConnConfig struct {
	// RetryTimeout is the per-attempt retransmission timeout.
	RetryTimeout time.Duration
	// MaxRetries is how many retransmissions follow the first attempt
	// before the call fails with ErrTimeout. The per-ID deadline is thus
	// RetryTimeout * (MaxRetries + 1). Zero means the default; a negative
	// value disables retransmission entirely (single-attempt fail-fast).
	MaxRetries int
	// Metrics receives the reliability counters. Nil gets a private,
	// unregistered instance, so Stats() works either way; pass a shared
	// instance to aggregate several connections into one family.
	Metrics *ConnMetrics
	// NowNS supplies timestamps (nanoseconds; wall or virtual — the layer
	// never reads a clock itself, keeping deterministic transports
	// byte-reproducible). Nil disables per-op latency in the trace ring.
	NowNS func() int64
	// Trace, when non-nil, receives one record per op lifecycle event
	// (enqueue/send/retry/complete/timeout).
	Trace *telemetry.TraceRing
}

// DefaultConnConfig returns the tuning used by the CLIs: 20 ms per attempt,
// 5 retransmissions (120 ms per-ID deadline).
func DefaultConnConfig() ConnConfig {
	return ConnConfig{RetryTimeout: 20 * time.Millisecond, MaxRetries: 5}
}

func (c *ConnConfig) fill() {
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = DefaultConnConfig().RetryTimeout
	}
	switch {
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	case c.MaxRetries == 0:
		c.MaxRetries = DefaultConnConfig().MaxRetries
	}
	if c.Metrics == nil {
		c.Metrics = NewConnMetrics(nil)
	}
}

// ConnStats counts client-side reliability events.
type ConnStats struct {
	Sent       uint64 // datagrams transmitted (including retransmissions)
	Retransmit uint64 // retransmissions
	Responses  uint64 // responses matched to a pending call
	Stray      uint64 // datagrams that matched no pending call
	Garbage    uint64 // datagrams that failed to decode (corruption)
	Timeouts   uint64 // calls that exhausted their retry budget
}

// Completion receives a call's outcome: the allocation-free alternative to
// a callback closure. A caller embeds its per-op state in a struct
// implementing Completion and passes the same pointer through CallC,
// avoiding one closure allocation per operation. Done is invoked exactly
// once, with either the response or an error; the response Msg is owned by
// the connection and valid only for the duration of the Done call — use
// Msg.Clone (or copy the fields needed) to retain it.
type Completion interface {
	Done(m *Msg, err error)
}

// call is one in-flight request awaiting its response. Records live on a
// per-connection free list: retired calls are recycled, their encode buffer
// and retransmission timer reused, so the steady state allocates nothing.
// The sending count keeps a record (and its enc buffer) alive while any
// goroutine is inside pipe.Send with it — a record is only recycled when it
// is done AND no send references it, so a retransmission can never observe
// a buffer being rewritten for a new call.
//
//edmlint:owned callback
type call struct {
	id       uint32 // guarded by mu
	enc      []byte // cached encoding, re-sent verbatim on retry; owned by the record
	want     Kind   // expected response kind
	cb       func(*Msg, error)
	comp     Completion
	timer    *time.Timer // allocated once per record, Reset across reuses
	start    int64       // NowNS at issue (0 when no clock is wired)
	attempts int         // guarded by mu
	sending  int         // guarded by mu: goroutines inside pipe.Send with enc
	done     bool        // guarded by mu
	next     *call       // guarded by mu: free-list link
}

// queued is one corked call awaiting the Uncork flush. It carries the ID
// alongside the record so a flush can tell a still-pending call from a
// record that was retired and recycled under a new ID while corked.
type queued struct {
	id uint32
	cl *call
}

// Conn is the client half of the reliable layer: it assigns message IDs,
// transmits requests over an unreliable Pipe, retransmits on a per-message
// timer until the matching response arrives, and fails the call with
// ErrTimeout once the retry budget is spent. Callbacks are invoked on
// whatever goroutine delivers the response (the transport's receive path or
// the retry timer), never with the connection lock held — they may issue new
// calls. The response Msg handed to a callback or Completion is pooled and
// valid only during that invocation; Clone it to retain it.
type Conn struct {
	cfg   ConnConfig
	pipe  Pipe
	batch BatchPipe // pipe's batched form when it has one, else nil

	mu       sync.Mutex
	nextID   uint32           // guarded by mu
	pending  map[uint32]*call // guarded by mu
	free     *call            // guarded by mu: recycled call records
	corked   int              // guarded by mu: Cork nesting depth
	queue    []queued         // guarded by mu: sends deferred while corked
	sendBufs [][]byte         // guarded by mu: flush scratch, reused across Uncorks
	closed   bool             // guarded by mu
}

// NewConn builds a reliable connection over pipe. The owner must route
// inbound datagrams from the peer to Deliver.
func NewConn(pipe Pipe, cfg ConnConfig) *Conn {
	cfg.fill()
	c := &Conn{cfg: cfg, pipe: pipe, pending: make(map[uint32]*call)}
	if bp, ok := pipe.(BatchPipe); ok {
		c.batch = bp
	}
	return c
}

// Stats snapshots the reliability counters from the connection's metrics
// (shared ConnMetrics aggregate across every Conn they back).
func (c *Conn) Stats() ConnStats {
	m := c.cfg.Metrics
	return ConnStats{
		Sent:       m.Datagrams.Load(),
		Retransmit: m.Retransmits.Load(),
		Responses:  m.Responses.Load(),
		Stray:      m.Stray.Load(),
		Garbage:    m.Garbage.Load(),
		Timeouts:   m.Timeouts.Load(),
	}
}

// Metrics returns the connection's metrics instance (never nil after NewConn).
func (c *Conn) Metrics() *ConnMetrics { return c.cfg.Metrics }

// newCallLocked draws a call record from the free list.
func (c *Conn) newCallLocked() *call {
	cl := c.free
	if cl == nil {
		//edmlint:allow hotpath free-list miss: allocates only up to the window's high-water mark
		return &call{}
	}
	c.free = cl.next
	cl.next = nil
	cl.done = false
	cl.attempts = 0
	cl.start = 0
	return cl
}

// freeCallLocked recycles a retired record. Callers must have saved the
// cb/comp/want/start fields they still need — the record may be handed to a
// new call the moment the lock drops.
//
//edmlint:allow pooledescape the free list is the pool's own storage for retired records
func (c *Conn) freeCallLocked(cl *call) {
	cl.cb = nil
	cl.comp = nil
	cl.enc = cl.enc[:0]
	cl.next = c.free
	c.free = cl
}

// retireLocked completes a call's bookkeeping: out of pending, timer
// stopped, recycled unless a send still references its buffer (afterSend
// recycles it then).
func (c *Conn) retireLocked(cl *call) {
	cl.done = true
	delete(c.pending, cl.id)
	if cl.timer != nil {
		cl.timer.Stop()
	}
	if cl.sending == 0 {
		c.freeCallLocked(cl)
	}
}

// Call transmits a request and invokes cb exactly once: with the response,
// or with ErrTimeout after the retry budget, or with ErrClosed if the
// connection closes first. The assigned message ID is returned. cb may be
// invoked synchronously (before Call returns) on transports that deliver
// in the caller's stack, such as the loopback. The response Msg is valid
// only during the callback; Clone it to retain it.
//
//edmlint:hotpath one Call per client operation
func (c *Conn) Call(m *Msg, cb func(*Msg, error)) (uint32, error) {
	return c.submit(m, cb, nil)
}

// CallC is Call with a Completion instead of a closure: the caller supplies
// a reusable per-op struct, so issuing a request allocates nothing.
//
//edmlint:hotpath one CallC per client operation
func (c *Conn) CallC(m *Msg, comp Completion) (uint32, error) {
	return c.submit(m, nil, comp)
}

// submit encodes m into a pooled call record and either transmits it or,
// while corked, queues it for the Uncork flush. m itself is not retained:
// it may be pooled or reused the moment submit returns.
//
//edmlint:hotpath the one submission path for every request
func (c *Conn) submit(m *Msg, cb func(*Msg, error), comp Completion) (uint32, error) {
	if !m.Kind.IsRequest() {
		return 0, fmt.Errorf("%w: %v is not a request", ErrBadMsg, m.Kind)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	id := c.nextID
	c.nextID++
	m.ID = id
	cl := c.newCallLocked()
	enc, err := m.AppendEncode(cl.enc[:0])
	if err != nil {
		c.freeCallLocked(cl)
		c.mu.Unlock()
		return 0, err
	}
	cl.enc = enc
	cl.id = id
	cl.want = m.Kind.Response()
	cl.cb = cb
	cl.comp = comp
	cl.attempts = 1
	if c.cfg.NowNS != nil {
		cl.start = c.cfg.NowNS()
	}
	start := cl.start
	c.pending[id] = cl
	mt := c.cfg.Metrics
	if c.corked > 0 {
		c.queue = append(c.queue, queued{id: id, cl: cl})
		c.mu.Unlock()
		mt.Requests[m.Kind].Inc()
		mt.InFlight.Add(1)
		c.cfg.Trace.Record(uint64(id), telemetry.StageEnqueue, uint8(m.Kind), start, 0)
		return id, nil
	}
	cl.sending++
	c.mu.Unlock()
	mt.Datagrams.Inc()
	mt.Requests[m.Kind].Inc()
	mt.InFlight.Add(1)
	c.cfg.Trace.Record(uint64(id), telemetry.StageEnqueue, uint8(m.Kind), start, 0)
	// Send outside the lock: a synchronous transport (loopback) delivers
	// the response in this same stack, re-entering Deliver. A transport
	// error is treated like a lost datagram — the retry timer armed in
	// afterSend will either get through or time the call out.
	c.pipe.Send(enc)
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(uint64(id), telemetry.StageSend, uint8(m.Kind), c.timestamp(), 0)
	}
	c.afterSend(cl)
	return id, nil
}

// Cork suspends transmission: subsequent calls are encoded and registered
// as pending but their datagrams queue until the matching Uncork, which
// flushes them as one batch (a single sendmmsg on batching transports).
// Cork/Uncork pairs nest; only the outermost Uncork flushes. Retransmission
// timers arm at flush time, so a corked call's retry clock starts when its
// datagram first hits the wire.
func (c *Conn) Cork() {
	c.mu.Lock()
	c.corked++
	c.mu.Unlock()
}

// Uncork flushes the corked queue. Calls that were completed or aborted
// while corked (a synchronous transport cannot complete them, but Abort or
// Close can fail them) are skipped.
//
//edmlint:hotpath one Uncork per batch flush
func (c *Conn) Uncork() {
	c.mu.Lock()
	if c.corked > 0 {
		c.corked--
	}
	if c.corked > 0 || len(c.queue) == 0 {
		c.mu.Unlock()
		return
	}
	// Steal the queue and the buffer scratch; both return below so repeat
	// flushes reuse their capacity.
	queue := c.queue
	c.queue = nil
	bufs := c.sendBufs[:0]
	c.sendBufs = nil
	live := queue[:0]
	for _, q := range queue {
		if q.cl.done || c.pending[q.id] != q.cl {
			continue
		}
		q.cl.sending++
		live = append(live, q)
		bufs = append(bufs, q.cl.enc)
	}
	c.mu.Unlock()
	if len(live) > 0 {
		c.cfg.Metrics.Datagrams.Add(uint64(len(live)))
		if c.batch != nil {
			c.batch.SendBatch(bufs)
		} else {
			for _, b := range bufs {
				c.pipe.Send(b)
			}
		}
		if c.cfg.Trace != nil {
			now := c.timestamp()
			for _, q := range live {
				c.cfg.Trace.Record(uint64(q.id), telemetry.StageSend, uint8(q.cl.want), now, 0)
			}
		}
	}
	for _, q := range live {
		c.afterSend(q.cl)
	}
	for i := range bufs {
		bufs[i] = nil
	}
	for i := range queue {
		queue[i] = queued{}
	}
	c.mu.Lock()
	if c.queue == nil {
		c.queue = queue[:0]
	}
	if c.sendBufs == nil {
		c.sendBufs = bufs[:0]
	}
	c.mu.Unlock()
}

// timestamp reads the configured clock; zero when none is wired.
func (c *Conn) timestamp() int64 {
	if c.cfg.NowNS == nil {
		return 0
	}
	return c.cfg.NowNS()
}

// afterSend runs once a send attempt referencing cl.enc has returned: drop
// the send reference, recycle the record if the call completed while the
// datagram was in flight, otherwise (re)arm the retransmission timer.
// Arming after the send — not before — matters for synchronous transports:
// the response may already have been delivered in the send's own stack, and
// a pre-armed timer could race it under scheduler jitter, retransmitting a
// message that was never lost.
//
//edmlint:hotpath runs once per send attempt; the timer is allocated once then Reset
//edmlint:allow walltime,hotpath retransmission deadlines are wall time by contract
func (c *Conn) afterSend(cl *call) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl.sending--
	if cl.done {
		if cl.sending == 0 {
			c.freeCallLocked(cl)
		}
		return
	}
	if c.closed {
		return
	}
	if cl.timer == nil {
		cl.timer = time.AfterFunc(c.cfg.RetryTimeout, func() { c.retry(cl) })
	} else {
		cl.timer.Reset(c.cfg.RetryTimeout)
	}
}

// retry fires on the per-record timer: retransmit, or fail the call. A
// stale firing — the timer's Stop raced a completion and the record now
// carries a newer call — is detected by the pending check and at worst
// costs one early retransmission, which the server's duplicate window
// absorbs.
func (c *Conn) retry(cl *call) {
	c.mu.Lock()
	if c.closed || cl.done || c.pending[cl.id] != cl {
		c.mu.Unlock()
		return
	}
	id, want := cl.id, cl.want
	if cl.attempts > c.cfg.MaxRetries {
		attempts := cl.attempts
		cb, comp := cl.cb, cl.comp
		c.retireLocked(cl)
		c.mu.Unlock()
		c.cfg.Metrics.Timeouts.Inc()
		c.cfg.Metrics.InFlight.Add(-1)
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(uint64(id), telemetry.StageTimeout, uint8(want), c.timestamp(), uint64(attempts))
		}
		err := fmt.Errorf("%w (after %d attempts)", ErrTimeout, attempts)
		if comp != nil {
			comp.Done(nil, err)
		} else if cb != nil {
			cb(nil, err)
		}
		return
	}
	cl.attempts++
	attempts := cl.attempts
	cl.sending++
	enc := cl.enc
	c.mu.Unlock()
	c.cfg.Metrics.Datagrams.Inc()
	c.cfg.Metrics.Retransmits.Inc()
	c.pipe.Send(enc)
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(uint64(id), telemetry.StageRetry, uint8(want), c.timestamp(), uint64(attempts))
	}
	c.afterSend(cl)
}

// Deliver is the inbound datagram path: decode, match by ID, complete the
// call. Unmatched or undecodable datagrams are counted and dropped. The
// decoded Msg is pooled — handed to the callback for the duration of the
// callback only.
//
//edmlint:hotpath one Deliver per response datagram
func (c *Conn) Deliver(p []byte) {
	m := getMsg()
	if err := DecodeInto(m, p); err != nil {
		putMsg(m)
		c.cfg.Metrics.Garbage.Inc()
		return
	}
	c.mu.Lock()
	cl, ok := c.pending[m.ID]
	if !ok || cl.done || cl.want != m.Kind {
		// A response for a call that already timed out, a duplicate of one
		// already delivered, or a kind mismatch.
		c.mu.Unlock()
		c.cfg.Metrics.Stray.Inc()
		putMsg(m)
		return
	}
	cb, comp, start := cl.cb, cl.comp, cl.start
	c.retireLocked(cl)
	c.mu.Unlock()
	c.cfg.Metrics.Responses.Inc()
	c.cfg.Metrics.RecvByKind[m.Kind].Inc()
	c.cfg.Metrics.InFlight.Add(-1)
	if c.cfg.Trace != nil {
		now := c.timestamp()
		var lat uint64
		if start != 0 && now > start {
			lat = uint64(now - start)
		}
		c.cfg.Trace.Record(uint64(m.ID), telemetry.StageComplete, uint8(m.Kind), now, lat)
	}
	if comp != nil {
		comp.Done(m, nil)
	} else if cb != nil {
		cb(m, nil)
	}
	putMsg(m)
}

// Pending reports the number of in-flight calls.
func (c *Conn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// pendingDone is a completion target saved off a retiring call record (the
// record itself may be recycled before the callback runs).
type pendingDone struct {
	cb   func(*Msg, error)
	comp Completion
}

// Abort fails every pending call with err (ErrClosed if nil) without
// closing the connection; new calls proceed normally. Use it to quiesce
// in-flight traffic — and its retransmission timers — before a teardown
// exchange, so no stale request can be retried into a peer that has
// already forgotten the session.
func (c *Conn) Abort(err error) {
	if err == nil {
		err = ErrClosed
	}
	c.mu.Lock()
	done := c.takePendingLocked()
	c.mu.Unlock()
	c.cfg.Metrics.InFlight.Add(-int64(len(done)))
	for _, d := range done {
		if d.comp != nil {
			d.comp.Done(nil, err)
		} else if d.cb != nil {
			d.cb(nil, err)
		}
	}
}

// takePendingLocked retires every live pending call, returning the saved
// completion targets.
func (c *Conn) takePendingLocked() []pendingDone {
	done := make([]pendingDone, 0, len(c.pending))
	for _, cl := range c.pending {
		if !cl.done {
			done = append(done, pendingDone{cb: cl.cb, comp: cl.comp})
			c.retireLocked(cl)
		}
	}
	return done
}

// Close fails every pending call with ErrClosed and closes the pipe.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.queue = nil
	done := c.takePendingLocked()
	c.mu.Unlock()
	c.cfg.Metrics.InFlight.Add(-int64(len(done)))
	for _, d := range done {
		if d.comp != nil {
			d.comp.Done(nil, ErrClosed)
		} else if d.cb != nil {
			d.cb(nil, ErrClosed)
		}
	}
	return c.pipe.Close()
}

// ResponderConfig tunes the server half.
type ResponderConfig struct {
	// Window is the duplicate-suppression capacity: how many recent request
	// IDs keep their cached response for replay. With the client's bounded
	// outstanding window far below this, a retransmitted request always
	// finds its cached response instead of re-executing — which keeps RMWs
	// exactly-once.
	Window int
	// Metrics receives the responder counters. A server passes one shared
	// instance to every session's responder, so the series aggregate over
	// sessions. Nil gets a private, unregistered instance.
	Metrics *ResponderMetrics
}

// DefaultResponderWindow is the default duplicate-suppression window.
const DefaultResponderWindow = 4096

// ResponderStats counts server-side events.
type ResponderStats struct {
	Requests   uint64 // fresh requests executed
	Duplicates uint64 // retransmissions answered from the cache
	Garbage    uint64 // datagrams that failed to decode
	Rejected   uint64 // datagrams that decoded to a non-request kind
}

// respEntry is one duplicate-suppression slot. It is inserted before the
// handler runs (done false, enc empty) so a retransmission racing the first
// execution waits for the response instead of re-executing — the guarantee
// that keeps RMWs exactly-once. Entries live on a free list; enc is owned
// by the entry and reused across evict/insert cycles, and the waiters count
// pins an entry (and its enc) against recycling while a replay still
// references it.
type respEntry struct {
	enc     []byte
	done    bool       // guarded by mu: response cached, safe to replay
	waiters int        // guarded by mu: replays using this entry
	next    *respEntry // guarded by mu: free-list link
}

// Responder is the server half of the reliable layer for one client session:
// it decodes inbound requests, suppresses duplicates via an ID window with
// cached-response replay, executes fresh requests through the handler, and
// transmits the response. The handler runs on the delivering goroutine.
type Responder struct {
	pipe    Pipe
	handler func(req, resp *Msg)
	metrics *ResponderMetrics

	mu      sync.Mutex
	filled  *sync.Cond // signals entries transitioning to done
	waiting int        // guarded by mu: goroutines parked in filled.Wait
	window  int
	cache   map[uint32]*respEntry // guarded by mu
	order   []uint32              // guarded by mu: ring of cached IDs, oldest first
	head    int                   // guarded by mu: ring read position
	count   int                   // guarded by mu: ring occupancy
	free    *respEntry            // guarded by mu: recycled entries
}

// NewResponder builds the server half over pipe. handler serves one fresh
// request: req carries the decoded request, resp arrives reset with Kind
// pre-set to req's response kind and the matching ID. The handler fills in
// status and payload — writing resp.Data via append(resp.Data[:0], ...) or
// assigning a fresh slice (the buffer is donated to the response pool
// either way; it must not alias memory the handler keeps). Both messages
// are pooled: valid only for the duration of the call, never retained.
// Protocol errors are responses with a non-OK status.
func NewResponder(pipe Pipe, cfg ResponderConfig, handler func(req, resp *Msg)) *Responder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultResponderWindow
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewResponderMetrics(nil)
	}
	r := &Responder{pipe: pipe, handler: handler, metrics: cfg.Metrics,
		window: cfg.Window, cache: make(map[uint32]*respEntry, cfg.Window)}
	r.filled = sync.NewCond(&r.mu)
	return r
}

// Stats snapshots the responder counters from its metrics (shared
// ResponderMetrics aggregate across every session they back).
func (r *Responder) Stats() ResponderStats {
	return ResponderStats{
		Requests:   r.metrics.Requests.Load(),
		Duplicates: r.metrics.Duplicates.Load(),
		Garbage:    r.metrics.Garbage.Load(),
		Rejected:   r.metrics.Rejected.Load(),
	}
}

// newEntryLocked draws a dedup entry from the free list.
func (r *Responder) newEntryLocked() *respEntry {
	e := r.free
	if e == nil {
		//edmlint:allow hotpath free-list miss: allocates only until the dedup window fills
		return &respEntry{}
	}
	r.free = e.next
	e.next = nil
	e.done = false
	e.waiters = 0
	e.enc = e.enc[:0]
	return e
}

func (r *Responder) freeEntryLocked(e *respEntry) {
	e.next = r.free
	r.free = e
}

// pushOrderLocked appends id to the eviction ring, growing it by doubling
// (the ring tops out at the configured window plus in-flight overshoot).
func (r *Responder) pushOrderLocked(id uint32) {
	if r.count == len(r.order) {
		n := 2 * len(r.order)
		if n == 0 {
			n = 64
		}
		//edmlint:allow hotpath ring growth is amortized and bounded by the dedup window
		grown := make([]uint32, n)
		for i := 0; i < r.count; i++ {
			grown[i] = r.order[(r.head+i)%len(r.order)]
		}
		r.order = grown
		r.head = 0
	}
	r.order[(r.head+r.count)%len(r.order)] = id
	r.count++
}

func (r *Responder) popOrderLocked() uint32 {
	id := r.order[r.head]
	r.head = (r.head + 1) % len(r.order)
	r.count--
	return id
}

// Deliver is the inbound datagram path for one client's requests.
//
//edmlint:hotpath one Deliver per request datagram
func (r *Responder) Deliver(p []byte) {
	m := getMsg()
	if err := DecodeInto(m, p); err != nil {
		putMsg(m)
		r.metrics.Garbage.Inc()
		return
	}
	if !m.Kind.IsRequest() {
		putMsg(m)
		r.metrics.Rejected.Inc()
		return
	}
	r.metrics.RecvByKind[m.Kind].Inc()
	r.mu.Lock()
	if e, ok := r.cache[m.ID]; ok {
		// Duplicate: wait out a still-running first execution, then replay
		// its response without re-executing. The waiters count pins the
		// entry so eviction cannot recycle its buffer mid-replay.
		e.waiters++
		for !e.done {
			r.waiting++
			r.filled.Wait()
			r.waiting--
		}
		enc := e.enc
		r.mu.Unlock()
		r.metrics.Duplicates.Inc()
		putMsg(m)
		r.pipe.Send(enc)
		r.mu.Lock()
		e.waiters--
		r.mu.Unlock()
		return
	}
	e := r.newEntryLocked()
	if r.count >= r.window {
		// Evict the oldest *completed, unreferenced* entry. An entry whose
		// handler is still running must survive — its retransmissions have
		// to keep hitting the cache or the request would re-execute,
		// breaking exactly-once. If every entry is in flight (bounded by
		// the client's concurrency), the cache temporarily overshoots.
		for i, n := 0, r.count; i < n; i++ {
			oldest := r.popOrderLocked()
			old := r.cache[oldest]
			if old.done && old.waiters == 0 {
				delete(r.cache, oldest)
				r.freeEntryLocked(old)
				break
			}
			r.pushOrderLocked(oldest)
		}
	}
	r.cache[m.ID] = e
	r.pushOrderLocked(m.ID)
	scratch := e.enc
	r.mu.Unlock()
	r.metrics.Requests.Inc()

	resp := getMsg()
	resp.Kind = m.Kind.Response()
	resp.ID = m.ID
	r.handler(m, resp)
	resp.ID = m.ID
	enc, err := resp.AppendEncode(scratch[:0])
	if err != nil {
		// An over-large response is a handler bug; answer with a status
		// the client can surface instead of going silent.
		resp.Reset()
		resp.Kind = m.Kind.Response()
		resp.ID = m.ID
		resp.Status = StatusProto
		enc, _ = resp.AppendEncode(scratch[:0])
	}
	putMsg(resp)
	putMsg(m)
	r.mu.Lock()
	e.enc = enc
	e.done = true
	wake := r.waiting > 0
	r.mu.Unlock()
	if wake {
		r.filled.Broadcast()
	}
	r.pipe.Send(enc)
}
