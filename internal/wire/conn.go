package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Pipe is one unreliable datagram path to a single peer. Send is best-effort
// (the datagram may be lost, duplicated or corrupted in flight); Close
// releases the underlying resources. Implementations: the UDP client and the
// per-remote reply pipes of the UDP server (udp.go), and the two ends of a
// Loopback (loopback.go).
type Pipe interface {
	Send(p []byte) error
	Close() error
}

// Reliability errors.
var (
	ErrClosed  = errors.New("wire: connection closed")
	ErrTimeout = errors.New("wire: no response within the retry budget")
)

// ConnConfig tunes the client-side reliability layer.
type ConnConfig struct {
	// RetryTimeout is the per-attempt retransmission timeout.
	RetryTimeout time.Duration
	// MaxRetries is how many retransmissions follow the first attempt
	// before the call fails with ErrTimeout. The per-ID deadline is thus
	// RetryTimeout * (MaxRetries + 1). Zero means the default; a negative
	// value disables retransmission entirely (single-attempt fail-fast).
	MaxRetries int
	// Metrics receives the reliability counters. Nil gets a private,
	// unregistered instance, so Stats() works either way; pass a shared
	// instance to aggregate several connections into one family.
	Metrics *ConnMetrics
	// NowNS supplies timestamps (nanoseconds; wall or virtual — the layer
	// never reads a clock itself, keeping deterministic transports
	// byte-reproducible). Nil disables per-op latency in the trace ring.
	NowNS func() int64
	// Trace, when non-nil, receives one record per op lifecycle event
	// (enqueue/send/retry/complete/timeout).
	Trace *telemetry.TraceRing
}

// DefaultConnConfig returns the tuning used by the CLIs: 20 ms per attempt,
// 5 retransmissions (120 ms per-ID deadline).
func DefaultConnConfig() ConnConfig {
	return ConnConfig{RetryTimeout: 20 * time.Millisecond, MaxRetries: 5}
}

func (c *ConnConfig) fill() {
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = DefaultConnConfig().RetryTimeout
	}
	switch {
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	case c.MaxRetries == 0:
		c.MaxRetries = DefaultConnConfig().MaxRetries
	}
	if c.Metrics == nil {
		c.Metrics = NewConnMetrics(nil)
	}
}

// ConnStats counts client-side reliability events.
type ConnStats struct {
	Sent       uint64 // datagrams transmitted (including retransmissions)
	Retransmit uint64 // retransmissions
	Responses  uint64 // responses matched to a pending call
	Stray      uint64 // datagrams that matched no pending call
	Garbage    uint64 // datagrams that failed to decode (corruption)
	Timeouts   uint64 // calls that exhausted their retry budget
}

// call is one in-flight request awaiting its response.
type call struct {
	enc      []byte // cached encoding, re-sent verbatim on retry
	want     Kind   // expected response kind
	cb       func(*Msg, error)
	timer    *time.Timer
	start    int64 // NowNS at issue (0 when no clock is wired)
	attempts int
	done     bool
}

// Conn is the client half of the reliable layer: it assigns message IDs,
// transmits requests over an unreliable Pipe, retransmits on a per-message
// timer until the matching response arrives, and fails the call with
// ErrTimeout once the retry budget is spent. Callbacks are invoked on
// whatever goroutine delivers the response (the transport's receive path or
// the retry timer), never with the connection lock held — they may issue new
// calls.
type Conn struct {
	cfg  ConnConfig
	pipe Pipe

	mu      sync.Mutex
	nextID  uint32           // guarded by mu
	pending map[uint32]*call // guarded by mu
	closed  bool             // guarded by mu
}

// NewConn builds a reliable connection over pipe. The owner must route
// inbound datagrams from the peer to Deliver.
func NewConn(pipe Pipe, cfg ConnConfig) *Conn {
	cfg.fill()
	return &Conn{cfg: cfg, pipe: pipe, pending: make(map[uint32]*call)}
}

// Stats snapshots the reliability counters from the connection's metrics
// (shared ConnMetrics aggregate across every Conn they back).
func (c *Conn) Stats() ConnStats {
	m := c.cfg.Metrics
	return ConnStats{
		Sent:       m.Datagrams.Load(),
		Retransmit: m.Retransmits.Load(),
		Responses:  m.Responses.Load(),
		Stray:      m.Stray.Load(),
		Garbage:    m.Garbage.Load(),
		Timeouts:   m.Timeouts.Load(),
	}
}

// Metrics returns the connection's metrics instance (never nil after NewConn).
func (c *Conn) Metrics() *ConnMetrics { return c.cfg.Metrics }

// Call transmits a request and invokes cb exactly once: with the response,
// or with ErrTimeout after the retry budget, or with ErrClosed if the
// connection closes first. The assigned message ID is returned. cb may be
// invoked synchronously (before Call returns) on transports that deliver
// in the caller's stack, such as the loopback.
//
//edmlint:hotpath one Call per client operation
func (c *Conn) Call(m *Msg, cb func(*Msg, error)) (uint32, error) {
	if !m.Kind.IsRequest() {
		return 0, fmt.Errorf("%w: %v is not a request", ErrBadMsg, m.Kind)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	id := c.nextID
	c.nextID++
	m.ID = id
	enc, err := m.Encode()
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	//edmlint:allow hotpath one call record per op is the protocol's bookkeeping
	cl := &call{enc: enc, want: m.Kind.Response(), cb: cb, attempts: 1}
	if c.cfg.NowNS != nil {
		cl.start = c.cfg.NowNS()
	}
	c.pending[id] = cl
	c.mu.Unlock()
	mt := c.cfg.Metrics
	mt.Datagrams.Inc()
	mt.Requests[m.Kind].Inc()
	mt.InFlight.Add(1)
	c.cfg.Trace.Record(uint64(id), telemetry.StageEnqueue, uint8(m.Kind), cl.start, 0)
	// Send outside the lock: a synchronous transport (loopback) delivers
	// the response in this same stack, re-entering Deliver. A transport
	// error is treated like a lost datagram — the retry timer armed below
	// will either get through or time the call out.
	c.pipe.Send(enc)
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(uint64(id), telemetry.StageSend, uint8(m.Kind), c.timestamp(), 0)
	}
	c.arm(id, cl)
	return id, nil
}

// timestamp reads the configured clock; zero when none is wired.
func (c *Conn) timestamp() int64 {
	if c.cfg.NowNS == nil {
		return 0
	}
	return c.cfg.NowNS()
}

// arm starts (or restarts) the retransmission timer for a call, after its
// send attempt has returned. Arming after the send — not before — matters
// for synchronous transports: the response may already have been delivered
// in the send's own stack, and a pre-armed timer could race it under
// scheduler jitter, retransmitting a message that was never lost.
//
//edmlint:hotpath runs once per Call; the timer is allocated once then Reset
//edmlint:allow walltime,hotpath retransmission deadlines are wall time by contract
func (c *Conn) arm(id uint32, cl *call) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl.done || c.closed {
		return
	}
	if cl.timer == nil {
		cl.timer = time.AfterFunc(c.cfg.RetryTimeout, func() { c.retry(id) })
	} else {
		cl.timer.Reset(c.cfg.RetryTimeout)
	}
}

// retry fires on the per-message timer: retransmit, or fail the call.
func (c *Conn) retry(id uint32) {
	c.mu.Lock()
	cl, ok := c.pending[id]
	if !ok || cl.done || c.closed {
		c.mu.Unlock()
		return
	}
	if cl.attempts > c.cfg.MaxRetries {
		cl.done = true
		delete(c.pending, id)
		c.mu.Unlock()
		c.cfg.Metrics.Timeouts.Inc()
		c.cfg.Metrics.InFlight.Add(-1)
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(uint64(id), telemetry.StageTimeout, uint8(cl.want), c.timestamp(), uint64(cl.attempts))
		}
		if cl.cb != nil {
			cl.cb(nil, fmt.Errorf("%w (after %d attempts)", ErrTimeout, cl.attempts))
		}
		return
	}
	cl.attempts++
	attempts := cl.attempts
	c.mu.Unlock()
	c.cfg.Metrics.Datagrams.Inc()
	c.cfg.Metrics.Retransmits.Inc()
	c.pipe.Send(cl.enc)
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(uint64(id), telemetry.StageRetry, uint8(cl.want), c.timestamp(), uint64(attempts))
	}
	c.arm(id, cl)
}

// Deliver is the inbound datagram path: decode, match by ID, complete the
// call. Unmatched or undecodable datagrams are counted and dropped.
//
//edmlint:hotpath one Deliver per response datagram
func (c *Conn) Deliver(p []byte) {
	m, err := Decode(p)
	if err != nil {
		c.cfg.Metrics.Garbage.Inc()
		return
	}
	c.mu.Lock()
	cl, ok := c.pending[m.ID]
	if !ok || cl.done || cl.want != m.Kind {
		// A response for a call that already timed out, a duplicate of one
		// already delivered, or a kind mismatch.
		c.mu.Unlock()
		c.cfg.Metrics.Stray.Inc()
		return
	}
	cl.done = true
	delete(c.pending, m.ID)
	if cl.timer != nil {
		cl.timer.Stop()
	}
	c.mu.Unlock()
	c.cfg.Metrics.Responses.Inc()
	c.cfg.Metrics.RecvByKind[m.Kind].Inc()
	c.cfg.Metrics.InFlight.Add(-1)
	if c.cfg.Trace != nil {
		now := c.timestamp()
		var lat uint64
		if cl.start != 0 && now > cl.start {
			lat = uint64(now - cl.start)
		}
		c.cfg.Trace.Record(uint64(m.ID), telemetry.StageComplete, uint8(m.Kind), now, lat)
	}
	if cl.cb != nil {
		cl.cb(m, nil)
	}
}

// Pending reports the number of in-flight calls.
func (c *Conn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Abort fails every pending call with err (ErrClosed if nil) without
// closing the connection; new calls proceed normally. Use it to quiesce
// in-flight traffic — and its retransmission timers — before a teardown
// exchange, so no stale request can be retried into a peer that has
// already forgotten the session.
func (c *Conn) Abort(err error) {
	if err == nil {
		err = ErrClosed
	}
	c.mu.Lock()
	calls := c.takePendingLocked()
	c.mu.Unlock()
	c.cfg.Metrics.InFlight.Add(-int64(len(calls)))
	for _, cl := range calls {
		if cl.cb != nil {
			cl.cb(nil, err)
		}
	}
}

// takePendingLocked detaches every live pending call, stopping its timer.
func (c *Conn) takePendingLocked() []*call {
	calls := make([]*call, 0, len(c.pending))
	for id, cl := range c.pending {
		if !cl.done {
			cl.done = true
			if cl.timer != nil {
				cl.timer.Stop()
			}
			calls = append(calls, cl)
		}
		delete(c.pending, id)
	}
	return calls
}

// Close fails every pending call with ErrClosed and closes the pipe.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	calls := c.takePendingLocked()
	c.mu.Unlock()
	c.cfg.Metrics.InFlight.Add(-int64(len(calls)))
	for _, cl := range calls {
		if cl.cb != nil {
			cl.cb(nil, ErrClosed)
		}
	}
	return c.pipe.Close()
}

// ResponderConfig tunes the server half.
type ResponderConfig struct {
	// Window is the duplicate-suppression capacity: how many recent request
	// IDs keep their cached response for replay. With the client's bounded
	// outstanding window far below this, a retransmitted request always
	// finds its cached response instead of re-executing — which keeps RMWs
	// exactly-once.
	Window int
	// Metrics receives the responder counters. A server passes one shared
	// instance to every session's responder, so the series aggregate over
	// sessions. Nil gets a private, unregistered instance.
	Metrics *ResponderMetrics
}

// DefaultResponderWindow is the default duplicate-suppression window.
const DefaultResponderWindow = 4096

// ResponderStats counts server-side events.
type ResponderStats struct {
	Requests   uint64 // fresh requests executed
	Duplicates uint64 // retransmissions answered from the cache
	Garbage    uint64 // datagrams that failed to decode
	Rejected   uint64 // datagrams that decoded to a non-request kind
}

// respEntry is one duplicate-suppression slot. It is inserted before the
// handler runs (done open, enc nil) so a retransmission racing the first
// execution waits for the response instead of re-executing — the guarantee
// that keeps RMWs exactly-once.
type respEntry struct {
	enc  []byte
	done chan struct{}
}

// Responder is the server half of the reliable layer for one client session:
// it decodes inbound requests, suppresses duplicates via an ID window with
// cached-response replay, executes fresh requests through the handler, and
// transmits the response. The handler runs on the delivering goroutine.
type Responder struct {
	pipe    Pipe
	handler func(*Msg) *Msg
	metrics *ResponderMetrics

	mu     sync.Mutex
	window int
	cache  map[uint32]*respEntry // guarded by mu
	order  []uint32              // guarded by mu
}

// NewResponder builds the server half over pipe. handler maps one fresh
// request to its response (it must always return a response; protocol errors
// are responses with a non-OK status).
func NewResponder(pipe Pipe, cfg ResponderConfig, handler func(*Msg) *Msg) *Responder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultResponderWindow
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewResponderMetrics(nil)
	}
	return &Responder{pipe: pipe, handler: handler, metrics: cfg.Metrics,
		window: cfg.Window, cache: make(map[uint32]*respEntry, cfg.Window)}
}

// Stats snapshots the responder counters from its metrics (shared
// ResponderMetrics aggregate across every session they back).
func (r *Responder) Stats() ResponderStats {
	return ResponderStats{
		Requests:   r.metrics.Requests.Load(),
		Duplicates: r.metrics.Duplicates.Load(),
		Garbage:    r.metrics.Garbage.Load(),
		Rejected:   r.metrics.Rejected.Load(),
	}
}

// Deliver is the inbound datagram path for one client's requests.
//
//edmlint:hotpath one Deliver per request datagram
func (r *Responder) Deliver(p []byte) {
	m, err := Decode(p)
	if err != nil {
		r.metrics.Garbage.Inc()
		return
	}
	if !m.Kind.IsRequest() {
		r.metrics.Rejected.Inc()
		return
	}
	r.metrics.RecvByKind[m.Kind].Inc()
	r.mu.Lock()
	if e, ok := r.cache[m.ID]; ok {
		// Duplicate: wait out a still-running first execution, then replay
		// its response without re-executing.
		r.mu.Unlock()
		r.metrics.Duplicates.Inc()
		<-e.done
		r.pipe.Send(e.enc)
		return
	}
	//edmlint:allow hotpath one dedup entry per fresh request is the exactly-once cost
	e := &respEntry{done: make(chan struct{})}
	if len(r.order) >= r.window {
		// Evict the oldest *completed* entry. An entry whose handler is
		// still running must survive — its retransmissions have to keep
		// hitting the cache or the request would re-execute, breaking
		// exactly-once. If every entry is in flight (bounded by the
		// client's concurrency), the cache temporarily overshoots.
		for i := 0; i < len(r.order); i++ {
			oldest := r.order[0]
			r.order = r.order[1:]
			select {
			case <-r.cache[oldest].done:
				delete(r.cache, oldest)
			default:
				r.order = append(r.order, oldest)
				continue
			}
			break
		}
	}
	r.cache[m.ID] = e
	r.order = append(r.order, m.ID)
	r.mu.Unlock()
	r.metrics.Requests.Inc()

	resp := r.handler(m)
	resp.ID = m.ID
	enc, err := resp.Encode()
	if err != nil {
		// An over-large response is a handler bug; answer with a status
		// the client can surface instead of going silent.
		//edmlint:allow hotpath cold path: handler produced an unencodable response
		enc, _ = (&Msg{Kind: m.Kind.Response(), ID: m.ID, Status: StatusProto}).Encode()
	}
	e.enc = enc
	close(e.done)
	r.pipe.Send(enc)
}
