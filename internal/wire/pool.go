package wire

import "sync"

// msgPool recycles decode-side Msg structs so the steady-state receive path
// allocates nothing: Conn.Deliver and Responder.Deliver draw a Msg, decode
// into it (reusing its Args/Data capacity), hand it to exactly one callback
// or handler, and return it. The ownership rule this buys is strict: a
// pooled Msg is valid only for the duration of the callback that receives
// it — retain with Msg.Clone or copy the fields you need.
var msgPool = sync.Pool{New: func() any { return new(Msg) }}

func getMsg() *Msg { return msgPool.Get().(*Msg) }

func putMsg(m *Msg) {
	m.Reset()
	msgPool.Put(m)
}
