//go:build linux && (amd64 || arm64)

// Batched UDP I/O via sendmmsg/recvmmsg. The raw syscalls are issued inside
// the RawConn read/write callbacks so the netpoller keeps scheduling the
// socket (returning false on EAGAIN parks the goroutine until readiness),
// and the scratch msghdr/iovec arrays are heap-allocated: the kernel reads
// them by pointer, and Go stacks — unlike the heap — can move.
package wire

import (
	"net"
	"strconv"
	"sync"
	"syscall"
	"unsafe"
)

// udpBatchSize is how many datagrams one sendmmsg/recvmmsg call moves.
const udpBatchSize = 16

// sysSendmmsg is the sendmmsg trap number (the stdlib syscall table on
// linux/amd64 predates sendmmsg; defined per-arch in udp_mmsg_*.go).
// recvmmsg is present as syscall.SYS_RECVMMSG on both gated arches.

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-filled transfer length. syscall.Msghdr is 56 bytes on linux/amd64
// and linux/arm64; the explicit pad reproduces the C struct's 8-byte
// alignment, for 64 bytes per element.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	pad uint32
}

// batchSender coalesces sends on a connected UDP socket.
type batchSender struct {
	c  *net.UDPConn
	rc syscall.RawConn // nil: sequential Write fallback

	mu       sync.Mutex
	sendHdrs []mmsghdr       // guarded by mu: syscall scratch, reused per batch
	sendIovs []syscall.Iovec // guarded by mu
}

func newBatchSender(c *net.UDPConn) *batchSender {
	s := &batchSender{c: c,
		sendHdrs: make([]mmsghdr, udpBatchSize),
		sendIovs: make([]syscall.Iovec, udpBatchSize)}
	if rc, err := c.SyscallConn(); err == nil {
		s.rc = rc
	}
	return s
}

// send transmits ps in order, up to udpBatchSize datagrams per sendmmsg. A
// non-EAGAIN syscall failure is treated as loss of the whole chunk — the
// reliable layer's retransmission covers it, same as any dropped datagram.
func (s *batchSender) send(ps [][]byte) error {
	if s.rc == nil {
		for _, p := range ps {
			if _, err := s.c.Write(p); err != nil {
				return err
			}
		}
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(ps) > 0 {
		n := len(ps)
		if n > udpBatchSize {
			n = udpBatchSize
		}
		for i := 0; i < n; i++ {
			s.sendHdrs[i] = mmsghdr{}
			s.sendIovs[i] = syscall.Iovec{}
			if len(ps[i]) > 0 {
				s.sendIovs[i].Base = &ps[i][0]
				s.sendIovs[i].SetLen(len(ps[i]))
			}
			s.sendHdrs[i].hdr.Iov = &s.sendIovs[i]
			s.sendHdrs[i].hdr.Iovlen = 1
		}
		sent := 0
		err := s.rc.Write(func(fd uintptr) bool {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&s.sendHdrs[0])), uintptr(n), 0, 0, 0)
			switch {
			case errno == syscall.EAGAIN:
				return false
			case errno != 0:
				sent = n // dropped chunk; retransmission recovers
			default:
				sent = int(r1)
			}
			return true
		})
		if err != nil {
			return err
		}
		if sent <= 0 {
			sent = n
		}
		ps = ps[sent:]
	}
	return nil
}

// batchReceiver drains a UDP socket up to udpBatchSize datagrams per
// recvmmsg into buffers it owns and reuses: a received packet is valid only
// until the next recv call. With capture set it also records each packet's
// source address (the server's demux key).
type batchReceiver struct {
	c       *net.UDPConn
	rc      syscall.RawConn // nil: single-datagram fallback
	capture bool

	bufs  [][]byte
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny
	addrs []net.UDPAddr
}

func newBatchReceiver(c *net.UDPConn, capture bool) *batchReceiver {
	r := &batchReceiver{c: c, capture: capture,
		bufs:  make([][]byte, udpBatchSize),
		hdrs:  make([]mmsghdr, udpBatchSize),
		iovs:  make([]syscall.Iovec, udpBatchSize),
		names: make([]syscall.RawSockaddrAny, udpBatchSize),
		addrs: make([]net.UDPAddr, udpBatchSize)}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, MaxDatagram+1)
	}
	if rc, err := c.SyscallConn(); err == nil {
		r.rc = rc
	}
	return r
}

// recv blocks for at least one datagram and returns how many arrived.
func (r *batchReceiver) recvBatch() (int, error) {
	if r.rc == nil {
		return r.recvOne()
	}
	for i := 0; i < udpBatchSize; i++ {
		r.hdrs[i] = mmsghdr{}
		r.iovs[i] = syscall.Iovec{Base: &r.bufs[i][0]}
		r.iovs[i].SetLen(len(r.bufs[i]))
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
		if r.capture {
			r.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
			r.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(r.names[i]))
		}
	}
	got := 0
	var sysErr error
	err := r.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), udpBatchSize, 0, 0, 0)
		switch {
		case errno == syscall.EAGAIN:
			return false
		case errno != 0:
			sysErr = errno
		default:
			got = int(r1)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if sysErr != nil {
		return 0, sysErr
	}
	if r.capture {
		for i := 0; i < got; i++ {
			rawToUDPAddr(&r.names[i], &r.addrs[i])
		}
	}
	return got, nil
}

// recvOne is the fallback when the socket exposes no RawConn.
func (r *batchReceiver) recvOne() (int, error) {
	if r.capture {
		n, addr, err := r.c.ReadFromUDP(r.bufs[0])
		if err != nil {
			return 0, err
		}
		r.hdrs[0].n = uint32(n)
		r.addrs[0] = *addr
		return 1, nil
	}
	n, err := r.c.Read(r.bufs[0])
	if err != nil {
		return 0, err
	}
	r.hdrs[0].n = uint32(n)
	return 1, nil
}

// pkt returns packet i of the last recv; valid until the next recv.
func (r *batchReceiver) pkt(i int) []byte { return r.bufs[i][:r.hdrs[i].n] }

// src returns packet i's source address; valid until the next recv.
func (r *batchReceiver) src(i int) *net.UDPAddr { return &r.addrs[i] }

// rawToUDPAddr decodes a kernel sockaddr into out, reusing out's IP
// capacity. Ports arrive big-endian; the gated platforms are little-endian,
// so the swap is unconditional.
func rawToUDPAddr(sa *syscall.RawSockaddrAny, out *net.UDPAddr) {
	out.Zone = ""
	switch sa.Addr.Family {
	case syscall.AF_INET:
		a := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		out.IP = append(out.IP[:0], a.Addr[:]...)
		out.Port = int(ntohs(a.Port))
	case syscall.AF_INET6:
		a := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		out.IP = append(out.IP[:0], a.Addr[:]...)
		out.Port = int(ntohs(a.Port))
		if a.Scope_id != 0 {
			out.Zone = strconv.FormatUint(uint64(a.Scope_id), 10)
		}
	default:
		out.IP = out.IP[:0]
		out.Port = 0
	}
}

func ntohs(v uint16) uint16 { return v<<8 | v>>8 }
