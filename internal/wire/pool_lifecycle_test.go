package wire

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lint"
)

// blackholePipe answers every request except the first one it sees (the
// victim), whose datagrams it swallows and records. The victim's call record
// therefore stays pending with a live retransmission timer while other
// calls churn the connection's free list.
type blackholePipe struct {
	conn *Conn

	mu        sync.Mutex
	haveVict  bool
	victimID  uint32
	victimTxs [][]byte // copies of every victim transmission
}

func (p *blackholePipe) Send(b []byte) error {
	var m Msg
	if err := DecodeInto(&m, b); err != nil {
		return err
	}
	p.mu.Lock()
	if !p.haveVict {
		p.haveVict = true
		p.victimID = m.ID
	}
	if m.ID == p.victimID {
		p.victimTxs = append(p.victimTxs, append([]byte(nil), b...))
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	enc, err := (&Msg{Kind: m.Kind.Response(), ID: m.ID, Status: StatusOK}).Encode()
	if err != nil {
		return err
	}
	p.conn.Deliver(enc)
	return nil
}

func (p *blackholePipe) Close() error { return nil }

// TestRetransmitBufferStableUnderChurn is the pooled-buffer lifecycle check:
// a call record's encode buffer must not be recycled (and rewritten by a new
// call) while a retransmission timer still references it. The victim call is
// never answered, so its buffer stays owned across many timer firings; the
// churn calls complete synchronously and recycle records through the free
// list the whole time. Every victim transmission must be byte-identical to
// the first — any reuse of its buffer would show up as a corrupted or
// rewritten retransmission.
func TestRetransmitBufferStableUnderChurn(t *testing.T) {
	p := &blackholePipe{}
	c := NewConn(p, ConnConfig{RetryTimeout: 2 * time.Millisecond, MaxRetries: 1000})
	p.conn = c

	victimDone := make(chan error, 1)
	if _, err := c.Call(&Msg{Kind: KindRREQ, Addr: 0xabcd, Count: 64},
		func(_ *Msg, err error) { victimDone <- err }); err != nil {
		t.Fatal(err)
	}

	// Churn: records and enc buffers cycle through the free list with
	// varying payload sizes, interleaved with victim retransmissions.
	data := make([]byte, 512)
	for i := 0; i < 400; i++ {
		for j := range data {
			data[j] = byte(i + j)
		}
		payload := data[:64+(i%7)*64]
		done := false
		if _, err := c.Call(&Msg{Kind: KindWREQ, Addr: uint64(i) * 8,
			Count: uint32(len(payload)), Data: payload},
			func(_ *Msg, err error) {
				if err != nil {
					t.Error(err)
				}
				done = true
			}); err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatal("synchronous pipe did not complete the churn call")
		}
		if i%100 == 0 {
			//edmlint:allow walltime the retransmission timer under test is real wall-clock time
			time.Sleep(3 * time.Millisecond) // let the victim's timer fire mid-churn
		}
	}
	// Collect a few more retransmissions with the free list fully primed.
	//edmlint:allow walltime the retransmission timer under test is real wall-clock time
	time.Sleep(10 * time.Millisecond)
	c.Close()
	if err := <-victimDone; err == nil {
		t.Fatal("victim call completed without a response")
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.victimTxs) < 3 {
		t.Fatalf("victim transmitted %d times, want >= 3 (timer not firing?)", len(p.victimTxs))
	}
	for i, tx := range p.victimTxs[1:] {
		if !bytes.Equal(tx, p.victimTxs[0]) {
			t.Fatalf("retransmission %d differs from the original request:\n  first: %x\n  retry: %x",
				i+1, p.victimTxs[0], tx)
		}
	}
	var m Msg
	if err := DecodeInto(&m, p.victimTxs[0]); err != nil {
		t.Fatalf("victim datagram does not decode: %v", err)
	}
	if m.Kind != KindRREQ || m.Addr != 0xabcd || m.Count != 64 {
		t.Fatalf("victim datagram decoded to %+v", m)
	}
}

// TestEscapeAnalyzerCatchesRetention complements the churn test above: the
// runtime test can only catch a pooled-buffer bug whose corruption it
// happens to trigger, while the pooledescape analyzer proves the absence of
// the whole retention class. This drives the analyzer over a fixture that
// retains a pooled Msg exactly the way a buggy Completion would — storing
// the message in a global and a slice view of its Data in a field — and
// asserts both escapes are caught statically.
func TestEscapeAnalyzerCatchesRetention(t *testing.T) {
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadPackages(mod, []string{"../lint/testdata/pooledescape_wire"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	var msgs []string
	for _, f := range lint.Check(pkgs[0], []*lint.Analyzer{lint.Pooledescape}) {
		msgs = append(msgs, f.Message)
	}
	for _, want := range []string{"stored in package-level variable", "stored into field raw"} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("analyzer missed an escape containing %q; got %v", want, msgs)
		}
	}
}

// TestLoopbackSendBatchMatchesSequential: the loopback's SendBatch is the
// batched transport used by corked flushes, and seeded runs stay
// reproducible only if it is indistinguishable from sequential sends — same
// delivered bytes, same order, same virtual-clock charge, same stats.
func TestLoopbackSendBatchMatchesSequential(t *testing.T) {
	mk := func() (*Loopback, *[][]byte) {
		lb := NewLoopback(LoopbackConfig{})
		got := &[][]byte{}
		lb.BindServer(func(p []byte) { *got = append(*got, append([]byte(nil), p...)) })
		return lb, got
	}
	var msgs [][]byte
	for i := 0; i < 12; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 8+i*16)
		enc, err := (&Msg{Kind: KindWREQ, ID: uint32(i), Addr: uint64(i) * 64,
			Count: uint32(len(payload)), Data: payload}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, enc)
	}

	seqLB, seqGot := mk()
	seqPipe := seqLB.ClientPipe()
	for _, p := range msgs {
		if err := seqPipe.Send(p); err != nil {
			t.Fatal(err)
		}
	}

	batchLB, batchGot := mk()
	bp, ok := batchLB.ClientPipe().(BatchPipe)
	if !ok {
		t.Fatal("loopback pipe does not implement BatchPipe")
	}
	if err := bp.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}

	if seqLB.Now() != batchLB.Now() {
		t.Errorf("virtual clock diverged: sequential %v, batched %v", seqLB.Now(), batchLB.Now())
	}
	if seqLB.Stats() != batchLB.Stats() {
		t.Errorf("stats diverged: sequential %+v, batched %+v", seqLB.Stats(), batchLB.Stats())
	}
	if len(*seqGot) != len(*batchGot) {
		t.Fatalf("delivered %d sequential vs %d batched datagrams", len(*seqGot), len(*batchGot))
	}
	for i := range *seqGot {
		if !bytes.Equal((*seqGot)[i], (*batchGot)[i]) {
			t.Fatalf("datagram %d differs between sequential and batched delivery", i)
		}
	}
}
