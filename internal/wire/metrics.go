package wire

import (
	"repro/internal/telemetry"

	"strconv"
)

// kindLabel renders the `kind="..."` label suffix for per-kind series.
func kindLabel(base string, k Kind) string {
	return base + `{kind=` + strconv.Quote(k.String()) + `}`
}

// ConnMetrics holds the client reliability layer's counters, pre-registered
// so the hot path only touches atomics. One instance may back several Conns
// (the series then aggregate); passing nil to NewConn builds a private,
// unregistered instance so Stats() always works.
type ConnMetrics struct {
	// Datagrams transmitted, including retransmissions.
	Datagrams *telemetry.Counter
	// Requests issued (one per Call), by request kind.
	Requests [NumKinds]*telemetry.Counter
	// Responses matched to a pending call; RecvByKind splits by kind.
	Responses  *telemetry.Counter
	RecvByKind [NumKinds]*telemetry.Counter
	// Retransmissions, datagrams matching no pending call, undecodable
	// datagrams, and calls that exhausted their retry budget.
	Retransmits *telemetry.Counter
	Stray       *telemetry.Counter
	Garbage     *telemetry.Counter
	Timeouts    *telemetry.Counter
	// InFlight tracks calls issued but not yet completed.
	InFlight *telemetry.Gauge
}

// NewConnMetrics registers the client family (`wire_client_*`) in r. A nil
// registry yields working but unexported metrics.
func NewConnMetrics(r *telemetry.Registry) *ConnMetrics {
	m := &ConnMetrics{
		Datagrams:   r.Counter("wire_client_datagrams_total"),
		Responses:   r.Counter("wire_client_responses_total"),
		Retransmits: r.Counter("wire_client_retransmits_total"),
		Stray:       r.Counter("wire_client_stray_total"),
		Garbage:     r.Counter("wire_client_garbage_total"),
		Timeouts:    r.Counter("wire_client_timeouts_total"),
		InFlight:    r.Gauge("wire_client_inflight"),
	}
	for k := KindHello; k <= kindMax; k++ {
		if k.IsRequest() {
			m.Requests[k] = r.Counter(kindLabel("wire_client_requests_total", k))
			m.RecvByKind[k.Response()] = r.Counter(kindLabel("wire_client_recv_total", k.Response()))
		}
	}
	return m
}

// ResponderMetrics holds the server reliability layer's counters. A server
// shares one instance across every client session, so the series aggregate
// over sessions.
type ResponderMetrics struct {
	// Fresh requests executed; RecvByKind counts decoded request datagrams
	// by kind, duplicates included.
	Requests   *telemetry.Counter
	RecvByKind [NumKinds]*telemetry.Counter
	// Retransmissions answered from the dedup cache (replayed responses),
	// undecodable datagrams, and decoded non-request kinds.
	Duplicates *telemetry.Counter
	Garbage    *telemetry.Counter
	Rejected   *telemetry.Counter
}

// NewResponderMetrics registers the server family (`wire_server_*`) in r.
func NewResponderMetrics(r *telemetry.Registry) *ResponderMetrics {
	m := &ResponderMetrics{
		Requests:   r.Counter("wire_server_requests_total"),
		Duplicates: r.Counter("wire_server_replays_total"),
		Garbage:    r.Counter("wire_server_garbage_total"),
		Rejected:   r.Counter("wire_server_rejected_total"),
	}
	for k := KindHello; k <= kindMax; k++ {
		if k.IsRequest() {
			m.RecvByKind[k] = r.Counter(kindLabel("wire_server_recv_total", k))
		}
	}
	return m
}

// UDPServerMetrics counts session lifecycle events on the UDP listener.
type UDPServerMetrics struct {
	Started *telemetry.Counter // sessions opened (first datagram from a remote)
	Resets  *telemetry.Counter // sessions torn down by a fresh HELLO (token mismatch)
	Expired *telemetry.Counter // sessions reaped by the idle janitor
	Retired *telemetry.Counter // sessions closed by BYE
	Active  *telemetry.Gauge   // live sessions
}

// NewUDPServerMetrics registers the listener family (`wire_udp_*`) in r.
func NewUDPServerMetrics(r *telemetry.Registry) *UDPServerMetrics {
	return &UDPServerMetrics{
		Started: r.Counter("wire_udp_sessions_started_total"),
		Resets:  r.Counter("wire_udp_session_resets_total"),
		Expired: r.Counter("wire_udp_sessions_expired_total"),
		Retired: r.Counter("wire_udp_sessions_retired_total"),
		Active:  r.Gauge("wire_udp_sessions_active"),
	}
}
