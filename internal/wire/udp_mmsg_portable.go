//go:build !(linux && (amd64 || arm64))

// Portable single-datagram stand-ins for the batched UDP I/O in
// udp_mmsg_linux.go: same batchSender/batchReceiver API, one Write or
// ReadFromUDP per datagram. Platforms without a verified mmsghdr layout
// take this path; correctness is identical, only the per-datagram syscall
// amortization is lost.
package wire

import "net"

// udpBatchSize is how many datagrams one receive call can return.
const udpBatchSize = 1

type batchSender struct{ c *net.UDPConn }

func newBatchSender(c *net.UDPConn) *batchSender { return &batchSender{c: c} }

// send transmits ps in order, one syscall per datagram.
func (s *batchSender) send(ps [][]byte) error {
	for _, p := range ps {
		if _, err := s.c.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// batchReceiver reads one datagram at a time into a buffer it owns and
// reuses: a received packet is valid only until the next recv call.
type batchReceiver struct {
	c       *net.UDPConn
	capture bool
	buf     []byte
	n       int
	from    net.UDPAddr
}

func newBatchReceiver(c *net.UDPConn, capture bool) *batchReceiver {
	return &batchReceiver{c: c, capture: capture, buf: make([]byte, MaxDatagram+1)}
}

// recv blocks for one datagram and returns 1.
func (r *batchReceiver) recvBatch() (int, error) {
	if r.capture {
		n, addr, err := r.c.ReadFromUDP(r.buf)
		if err != nil {
			return 0, err
		}
		r.n = n
		r.from = *addr
		return 1, nil
	}
	n, err := r.c.Read(r.buf)
	if err != nil {
		return 0, err
	}
	r.n = n
	return 1, nil
}

// pkt returns packet i of the last recv; valid until the next recv.
func (r *batchReceiver) pkt(i int) []byte { return r.buf[:r.n] }

// src returns packet i's source address; valid until the next recv.
func (r *batchReceiver) src(i int) *net.UDPAddr { return &r.from }
