//go:build linux && amd64

package wire

// sysSendmmsg is the linux/amd64 sendmmsg syscall number (not in the
// stdlib syscall table, which was frozen before sendmmsg landed).
const sysSendmmsg = 307
