// Benchmarks for the live wire protocol's hot path: codec encode/decode and
// the loopback request/response round trip. Run with:
//
//	go test -bench=. -benchmem ./internal/wire
//
// Metrics are reported via b.ReportMetric (msgs/s, MB/s) so the output
// doubles as the recorded perf baseline for the live service.
package wire

import (
	"fmt"
	"testing"
)

func benchMsg(payload int) *Msg {
	return &Msg{Kind: KindWREQ, ID: 1, Addr: 4096, Count: uint32(payload),
		Data: make([]byte, payload)}
}

func BenchmarkEncode(b *testing.B) {
	for _, payload := range []int{0, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			m := benchMsg(payload)
			b.SetBytes(int64(m.EncodedSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Encode(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, payload := range []int{0, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			enc, err := benchMsg(payload).Encode()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// BenchmarkLoopbackRoundTrip measures one full reliable request/response
// over the in-process transport (codec both ways, reliability bookkeeping,
// duplicate-suppression cache).
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	for _, payload := range []int{64, 4096} {
		b.Run(fmt.Sprintf("read=%d", payload), func(b *testing.B) {
			lb := NewLoopback(LoopbackConfig{})
			conn := NewConn(lb.ClientPipe(), ConnConfig{})
			resp := NewResponder(lb.ServerPipe(), ResponderConfig{},
				func(m *Msg) *Msg { return &Msg{Kind: KindRRESP, Data: make([]byte, m.Count)} })
			lb.BindServer(resp.Deliver)
			lb.BindClient(conn.Deliver)
			b.SetBytes(int64(payload))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := false
				if _, err := conn.Call(&Msg{Kind: KindRREQ, Count: uint32(payload)},
					func(r *Msg, err error) {
						if err != nil {
							b.Fatal(err)
						}
						done = true
					}); err != nil {
					b.Fatal(err)
				}
				if !done {
					b.Fatal("loopback call did not complete synchronously")
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "roundtrips/s")
		})
	}
}
