// Benchmarks for the live wire protocol's hot path: codec encode/decode and
// the loopback request/response round trip. Run with:
//
//	go test -bench=. -benchmem ./internal/wire
//
// Metrics are reported via b.ReportMetric (msgs/s, MB/s) so the output
// doubles as the recorded perf baseline for the live service.
package wire

import (
	"fmt"
	"testing"
)

func benchMsg(payload int) *Msg {
	return &Msg{Kind: KindWREQ, ID: 1, Addr: 4096, Count: uint32(payload),
		Data: make([]byte, payload)}
}

func BenchmarkEncode(b *testing.B) {
	for _, payload := range []int{0, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			m := benchMsg(payload)
			b.SetBytes(int64(m.EncodedSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Encode(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, payload := range []int{0, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			enc, err := benchMsg(payload).Encode()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// BenchmarkEncodeAppend measures the pooled encode form: appending into a
// recycled buffer, which the steady state does without allocating.
func BenchmarkEncodeAppend(b *testing.B) {
	for _, payload := range []int{0, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			m := benchMsg(payload)
			buf := make([]byte, 0, m.EncodedSize())
			b.SetBytes(int64(m.EncodedSize()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := m.AppendEncode(buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// BenchmarkDecodeInto measures the pooled decode form: parsing into a
// recycled Msg, reusing its Args/Data capacity.
func BenchmarkDecodeInto(b *testing.B) {
	for _, payload := range []int{0, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			enc, err := benchMsg(payload).Encode()
			if err != nil {
				b.Fatal(err)
			}
			var m Msg
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeInto(&m, enc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// BenchmarkLoopbackRoundTrip measures one full reliable request/response
// over the in-process transport (codec both ways, reliability bookkeeping,
// duplicate-suppression cache). The request message and completion callback
// are reused across iterations, as a pipelining client would, so the
// reported allocs/op reflect the protocol stack alone.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	for _, payload := range []int{64, 4096} {
		b.Run(fmt.Sprintf("read=%d", payload), func(b *testing.B) {
			lb := NewLoopback(LoopbackConfig{})
			conn := NewConn(lb.ClientPipe(), ConnConfig{})
			resp := NewResponder(lb.ServerPipe(), ResponderConfig{},
				func(m, resp *Msg) { resp.Data = growTestBytes(resp.Data, int(m.Count)) })
			lb.BindServer(resp.Deliver)
			lb.BindClient(conn.Deliver)
			req := &Msg{Kind: KindRREQ, Count: uint32(payload)}
			done := false
			cb := func(r *Msg, err error) {
				if err != nil {
					b.Fatal(err)
				}
				done = true
			}
			b.SetBytes(int64(payload))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done = false
				if _, err := conn.Call(req, cb); err != nil {
					b.Fatal(err)
				}
				if !done {
					b.Fatal("loopback call did not complete synchronously")
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "roundtrips/s")
		})
	}
}

// growTestBytes is a benchmark helper: an n-byte slice reusing d's capacity.
func growTestBytes(d []byte, n int) []byte {
	if cap(d) < n {
		return make([]byte, n)
	}
	return d[:n]
}
