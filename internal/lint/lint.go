// Package lint is the repo's project-specific static-analysis suite
// (edmlint). The core promises of this codebase — byte-deterministic seeded
// scenario reports, exactly-once RMW under the slab lock, an allocation-lean
// live hot path — are conventions, and this package turns them into checks:
//
//   - walltime: deterministic packages must not read the wall clock; all
//     time flows through the virtual clock (sim.Time).
//   - globalrand: randomness must come from named workload.Partition
//     streams, never the process-global math/rand source.
//   - lockcheck: struct fields annotated `// guarded by <mu>` are only
//     accessed in functions that lock <mu> (flow-insensitive), with
//     receivers and selector chains resolved through go/types.
//   - hotpath: functions annotated //edmlint:hotpath stay free of known
//     allocation/syscall-per-op patterns.
//   - pooledescape: values of types (or arguments of callbacks) annotated
//     //edmlint:owned callback must not outlive their callback — no stores
//     into fields, globals, channels, or goroutine closures without a copy.
//   - lockorder: the per-package lock-acquisition graph stays acyclic, and
//     nested same-class (shard) locks are provably ascending.
//   - atomicmix: a variable accessed through sync/atomic anywhere is never
//     read or written plainly elsewhere.
//
// The suite is stdlib-only, matching the module's bare go.mod: parsing is
// go/parser + go/ast, and type resolution is go/types with the source
// importer (typecheck.go) — module-internal imports are typechecked from
// the module's own source, the standard library from GOROOT source.
// Findings are suppressed with `//edmlint:allow <check> <reason>`
// directives (see directives.go); cmd/edmlint is the driver.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one parsed package: every file of one package name in one
// directory (so a directory's external _test package is its own Package).
type Package struct {
	// ModulePath is the module's import-path prefix (e.g. "repro").
	ModulePath string
	// Path is the package import path (e.g. "repro/internal/wire").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File

	// Typed layer, filled by LoadPackages. Nil on hand-built packages;
	// type-resolved analyzers stand down without it.
	Types *types.Package
	Info  *types.Info
	World *World
	// TypeErrors collects soft type errors: analysis proceeds on whatever
	// information the checker recovered.
	TypeErrors []error
}

// typeOf is a nil-safe Info.TypeOf.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// objectOf resolves an identifier to its object (definition or use).
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// selObj resolves a selector to the object it selects: the struct field or
// method for real selections, the package-level object for qualified
// identifiers.
func (p *Package) selObj(sel *ast.SelectorExpr) types.Object {
	if p.Info == nil {
		return nil
	}
	if s, ok := p.Info.Selections[sel]; ok {
		return s.Obj()
	}
	return p.Info.Uses[sel.Sel]
}

// isPkgIdent reports whether e is an identifier bound to the import of
// path, regardless of the local import name.
func (p *Package) isPkgIdent(e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.objectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// deterministic reports whether the package is held to the virtual-clock /
// seeded-randomness discipline. Commands and examples are exempt: they sit
// at the process boundary where wall time is inherent.
func (p *Package) deterministic() bool {
	if p.Path == p.ModulePath {
		return true // module root (the paper-artifact benchmarks)
	}
	rel := strings.TrimPrefix(p.Path, p.ModulePath+"/")
	return !strings.HasPrefix(rel, "cmd/") && !strings.HasPrefix(rel, "examples/")
}

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyzer is one check over a parsed package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package, d *Directives) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Walltime, Globalrand, Lockcheck, Hotpath,
		Pooledescape, Lockorder, Atomicmix}
}

// analyzerNames is the set of valid names an allow directive may target.
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Check runs the given analyzers over p, applies the package's suppression
// directives, and returns the surviving findings plus any malformed
// directives, sorted by position. Malformed directives are findings in
// their own right and cannot be suppressed.
func Check(p *Package, analyzers []*Analyzer) []Finding {
	d := parseDirectives(p)
	out := append([]Finding(nil), d.Bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(p, d) {
			if !d.Allowed(a.Name, f.Pos) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// importName returns the local name under which file imports path, or ""
// if it does not. A dot import returns "."; a blank import returns "_".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		// Default name: the last path element.
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// importNames returns every local import name bound in file, for telling
// package-qualified selectors apart from field accesses.
func importNames(f *ast.File) map[string]bool {
	names := make(map[string]bool)
	for _, imp := range f.Imports {
		if imp.Name != nil {
			names[imp.Name.Name] = true
			continue
		}
		p := strings.Trim(imp.Path.Value, `"`)
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		names[p] = true
	}
	return names
}
