package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar:
//
//	//edmlint:allow <check>[,<check>...] <reason>
//	//edmlint:hotpath [note]
//	//edmlint:owned callback [note]
//
// An allow directive suppresses findings of the named checks, and its scope
// depends on where it sits:
//
//   - before the package clause (detached header comment): the whole file;
//   - in a top-level declaration's doc comment: that declaration;
//   - anywhere else: the directive's own line and the line below it (so it
//     works both trailing the offending code and standalone above it).
//
// The reason is mandatory — an allow without one is itself a finding, as is
// an allow naming an unknown check. //edmlint:hotpath marks the function
// whose doc comment carries it as a hot path for the hotpath analyzer.
// //edmlint:owned callback sits in a type declaration's doc comment (values
// of that type are callback-scoped: pooled messages, call records) or a
// function declaration's doc comment (function literals passed to it
// receive callback-scoped arguments); pooledescape enforces both, module
// wide (typecheck.go registers the annotations during loading).
const directivePrefix = "edmlint:"

// declSpan is the line range one declaration-scoped allow covers.
type declSpan struct {
	file     string
	from, to int
	checks   map[string]bool
}

// Directives indexes one package's edmlint comments.
type Directives struct {
	fileAllow map[string]map[string]bool         // filename -> checks
	lineAllow map[string]map[int]map[string]bool // filename -> line -> checks
	declSpans []declSpan
	hot       map[*ast.FuncDecl]bool
	// Bad collects malformed directives (missing reason, unknown check,
	// misplaced hotpath); they are reported unconditionally.
	Bad []Finding
}

// Allowed reports whether a finding of check at pos is suppressed.
func (d *Directives) Allowed(check string, pos token.Position) bool {
	if d.fileAllow[pos.Filename][check] {
		return true
	}
	if d.lineAllow[pos.Filename][pos.Line][check] {
		return true
	}
	for _, s := range d.declSpans {
		if s.file == pos.Filename && pos.Line >= s.from && pos.Line <= s.to && s.checks[check] {
			return true
		}
	}
	return false
}

// Hot reports whether fn carries an //edmlint:hotpath directive.
func (d *Directives) Hot(fn *ast.FuncDecl) bool { return d.hot[fn] }

// parseDirectives scans every comment in the package.
func parseDirectives(p *Package) *Directives {
	d := &Directives{
		fileAllow: make(map[string]map[string]bool),
		lineAllow: make(map[string]map[int]map[string]bool),
		hot:       make(map[*ast.FuncDecl]bool),
	}
	known := analyzerNames()
	for _, f := range p.Files {
		// Map doc comment groups to the declarations they document, so a
		// directive in a doc comment scopes to the declaration.
		docOf := make(map[*ast.CommentGroup]ast.Decl)
		hotOwner := make(map[*ast.CommentGroup]*ast.FuncDecl)
		ownedOK := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Doc != nil {
					docOf[dd.Doc] = dd
					hotOwner[dd.Doc] = dd
					ownedOK[dd.Doc] = true
				}
			case *ast.GenDecl:
				if dd.Doc != nil {
					docOf[dd.Doc] = dd
					ownedOK[dd.Doc] = dd.Tok == token.TYPE
				}
				if dd.Tok == token.TYPE {
					for _, spec := range dd.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok && ts.Doc != nil {
							ownedOK[ts.Doc] = true
						}
					}
				}
			}
		}
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				verb, rest := splitWord(text)
				switch verb {
				case "hotpath":
					fn := hotOwner[group]
					if fn == nil {
						d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
							Message: "//edmlint:hotpath must sit in a function's doc comment"})
						continue
					}
					d.hot[fn] = true
				case "owned":
					// Semantics live in the typed loader (typecheck.go);
					// here the placement and scope word are validated.
					scope, _ := splitWord(rest)
					if scope != ownedScopeCallback {
						d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
							Message: fmt.Sprintf("//edmlint:owned scope must be %q", ownedScopeCallback)})
						continue
					}
					if !ownedOK[group] {
						d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
							Message: "//edmlint:owned must sit in a type or function declaration's doc comment"})
					}
				case "allow":
					checkList, reason := splitWord(rest)
					if checkList == "" {
						d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
							Message: "//edmlint:allow needs a check name and a reason"})
						continue
					}
					if strings.TrimSpace(reason) == "" {
						d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
							Message: fmt.Sprintf("//edmlint:allow %s needs a reason", checkList)})
						continue
					}
					checks := make(map[string]bool)
					bad := false
					for _, name := range strings.Split(checkList, ",") {
						if !known[name] {
							d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
								Message: fmt.Sprintf("//edmlint:allow names unknown check %q", name)})
							bad = true
							continue
						}
						checks[name] = true
					}
					if bad && len(checks) == 0 {
						continue
					}
					d.record(p, f, group, docOf[group], pos, checks)
				default:
					d.Bad = append(d.Bad, Finding{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown directive //edmlint:%s", verb)})
				}
			}
		}
	}
	return d
}

// record files one allow directive under the right scope.
func (d *Directives) record(p *Package, f *ast.File, group *ast.CommentGroup, decl ast.Decl, pos token.Position, checks map[string]bool) {
	fname := pos.Filename
	switch {
	case decl != nil:
		d.declSpans = append(d.declSpans, declSpan{
			file:   fname,
			from:   p.Fset.Position(decl.Pos()).Line,
			to:     p.Fset.Position(decl.End()).Line,
			checks: checks,
		})
	case group.End() < f.Package:
		if d.fileAllow[fname] == nil {
			d.fileAllow[fname] = make(map[string]bool)
		}
		for c := range checks {
			d.fileAllow[fname][c] = true
		}
	default:
		if d.lineAllow[fname] == nil {
			d.lineAllow[fname] = make(map[int]map[string]bool)
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			if d.lineAllow[fname][line] == nil {
				d.lineAllow[fname][line] = make(map[string]bool)
			}
			for c := range checks {
				d.lineAllow[fname][line][c] = true
			}
		}
	}
}

// directiveText strips the comment marker and reports whether the comment
// is an edmlint directive. Directives must be line comments with no space
// after // (the Go convention for machine-readable comments).
func directiveText(comment string) (string, bool) {
	if !strings.HasPrefix(comment, "//"+directivePrefix) {
		return "", false
	}
	return strings.TrimPrefix(comment, "//"+directivePrefix), true
}

// splitWord splits off the first space-separated word.
func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}
