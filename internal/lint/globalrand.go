package lint

import (
	"fmt"
	"go/ast"
)

// globalRandFuncs are the math/rand (and /v2) package-level functions backed
// by the process-global source. Constructing an explicitly seeded generator
// (rand.New(rand.NewSource(seed))) is not in this set — outside
// deterministic packages that is legal, if discouraged in favour of
// workload.Rand.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// Globalrand enforces the repo's randomness discipline: every random draw
// in deterministic code comes from a named workload.Partition stream, so
// adding a draw to one subsystem never perturbs another's sequence. The
// analyzer forbids importing math/rand at all in deterministic packages,
// and calling its global-source top-level functions anywhere.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid the global math/rand source; use workload.Partition streams",
	Run: func(p *Package, _ *Directives) []Finding {
		var out []Finding
		det := p.deterministic()
		for _, f := range p.Files {
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				name := importName(f, path)
				if name == "" || name == "_" {
					continue
				}
				if name == "." {
					for _, imp := range f.Imports {
						if imp.Name != nil && imp.Name.Name == "." {
							out = append(out, Finding{
								Pos:      p.Fset.Position(imp.Pos()),
								Analyzer: "globalrand",
								Message:  "dot-import of " + path + " defeats randomness analysis; import it qualified",
							})
						}
					}
					continue
				}
				if det {
					for _, imp := range f.Imports {
						if imp.Path.Value == `"`+path+`"` {
							out = append(out, Finding{
								Pos:      p.Fset.Position(imp.Pos()),
								Analyzer: "globalrand",
								Message:  path + " import in deterministic package; derive a workload.Rand from a named workload.Partition stream instead",
							})
						}
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || id.Name != name || !globalRandFuncs[sel.Sel.Name] {
						return true
					}
					out = append(out, Finding{
						Pos:      p.Fset.Position(call.Pos()),
						Analyzer: "globalrand",
						Message: fmt.Sprintf("global math/rand source via %s.%s; draw from a named workload.Partition stream instead",
							name, sel.Sel.Name),
					})
					return true
				})
			}
		}
		return out
	},
}
