package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Pooledescape enforces the callback-scoped ownership contract behind the
// allocation-free hot path: pooled wire.Msg structs, response byte slices,
// and completion records are valid only for the duration of the callback
// that received them, then return to their pool. A value is callback-scoped
// when its type is annotated //edmlint:owned callback, or when it arrives
// as an argument of a function literal passed to an //edmlint:owned
// function. Such values (and anything reached through them that can alias
// pooled memory) must not be stored into struct fields, package-level
// variables, channels, or goroutine closures — retention requires an
// explicit copy (Msg.Clone, append into a caller-owned buffer).
//
// The analysis is per-function and value-based: ownership seeds at
// parameters and receivers and propagates through local assignments,
// selectors, index/slice expressions, and append-to-owned. Call results are
// never owned — which is exactly what makes Clone and element-copying
// append the sanctioned boundaries. Passing an owned value as an ordinary
// call argument is not flagged (synchronous callees are fine); spawning a
// goroutine with one is.
var Pooledescape = &Analyzer{
	Name: "pooledescape",
	Doc:  "forbid //edmlint:owned callback-scoped values escaping their callback",
	Run:  runPooledescape,
}

func runPooledescape(p *Package, _ *Directives) []Finding {
	if p.Info == nil || p.World == nil || !p.World.hasOwned() {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ec := &escaper{p: p, w: p.World, owned: make(map[types.Object]bool)}
			ec.seed(fn)
			if len(ec.owned) > 0 {
				ec.propagate(fn.Body)
				ec.checkSinks(fn.Body)
			}
			out = append(out, ec.out...)
		}
	}
	return out
}

// escaper tracks which objects hold callback-scoped values inside one
// top-level function (closures included: objects are unique, so one map
// covers all nesting).
type escaper struct {
	p     *Package
	w     *World
	owned map[types.Object]bool
	out   []Finding
}

// seed marks the ownership sources: parameters and receivers of owned
// types, closure parameters of owned types, and every aliasing parameter of
// a function literal passed to an //edmlint:owned function.
func (ec *escaper) seed(fn *ast.FuncDecl) {
	ec.seedOwnedTyped(fn.Recv)
	ec.seedOwnedTyped(fn.Type.Params)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			ec.seedOwnedTyped(x.Type.Params)
		case *ast.CallExpr:
			if ec.ownedCallee(x) {
				for _, arg := range x.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						ec.seedCallbackParams(lit.Type.Params)
					}
				}
			}
		}
		return true
	})
}

func (ec *escaper) seedOwnedTyped(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			if obj := ec.p.objectOf(name); obj != nil && ec.w.OwnedType(obj.Type()) {
				ec.owned[obj] = true
			}
		}
	}
}

// seedCallbackParams marks a callback's aliasing parameters (slices,
// pointers, maps, owned types) as callback-scoped; scalars and plain
// interfaces like error copy safely and stay free.
func (ec *escaper) seedCallbackParams(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			obj := ec.p.objectOf(name)
			if obj == nil {
				continue
			}
			t := obj.Type()
			if ec.w.OwnedType(t) {
				ec.owned[obj] = true
				continue
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Pointer, *types.Map:
				ec.owned[obj] = true
			}
		}
	}
}

// ownedCallee reports whether the call's target function is annotated
// //edmlint:owned callback.
func (ec *escaper) ownedCallee(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return ec.w.OwnedFunc(ec.p.objectOf(fun))
	case *ast.SelectorExpr:
		return ec.w.OwnedFunc(ec.p.selObj(fun))
	}
	return false
}

// propagate runs local assignments and range clauses to a fixpoint so
// aliases of owned values are owned too.
func (ec *escaper) propagate(body ast.Node) {
	track := func(lhs ast.Expr, rhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := ec.p.objectOf(id)
		if obj == nil || ec.owned[obj] || ec.isGlobal(obj) {
			return false
		}
		if !ec.ownedExpr(rhs) {
			return false
		}
		ec.owned[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i := range s.Lhs {
					if track(s.Lhs[i], s.Rhs[i]) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, name := range s.Names {
					if track(name, s.Values[i]) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if !ec.ownedExpr(s.X) {
					return true
				}
				for _, v := range []ast.Expr{s.Key, s.Value} {
					id, ok := v.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := ec.p.objectOf(id)
					if obj == nil || ec.owned[obj] || !aliasing(obj.Type()) {
						continue
					}
					ec.owned[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// ownedExpr reports whether e evaluates to a callback-scoped value. Calls
// break the chain (Clone and friends return fresh memory); append keeps the
// ownership of its first argument. Expressions whose type cannot alias
// heap memory (scalars, strings) are never owned: copying them is free.
func (ec *escaper) ownedExpr(e ast.Expr) bool {
	if t := ec.p.typeOf(e); t != nil && !aliasing(t) {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := ec.p.objectOf(x)
		return obj != nil && ec.owned[obj]
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := ec.p.objectOf(id).(*types.PkgName); isPkg {
				return false
			}
		}
		return ec.ownedExpr(x.X)
	case *ast.ParenExpr:
		return ec.ownedExpr(x.X)
	case *ast.StarExpr:
		return ec.ownedExpr(x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && ec.ownedExpr(x.X)
	case *ast.IndexExpr:
		return ec.ownedExpr(x.X)
	case *ast.SliceExpr:
		return ec.ownedExpr(x.X)
	case *ast.TypeAssertExpr:
		return ec.ownedExpr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if ec.ownedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if isBuiltinAppend(ec.p, x) && len(x.Args) > 0 {
			return ec.ownedExpr(x.Args[0])
		}
		return false
	case *ast.FuncLit:
		return ec.capturesOwned(x) != nil
	}
	return false
}

// capturesOwned returns an owned object the literal captures from its
// enclosing function, or nil.
func (ec *escaper) capturesOwned(lit *ast.FuncLit) types.Object {
	var captured types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ec.p.Info.Uses[id]
		if obj != nil && ec.owned[obj] && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			captured = obj
		}
		return true
	})
	return captured
}

// checkSinks walks the function for escape points.
func (ec *escaper) checkSinks(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true // multi-value call results are never owned
			}
			for i := range s.Lhs {
				ec.checkStore(s.Lhs[i], s.Rhs[i])
			}
		case *ast.SendStmt:
			if ec.ownedExpr(s.Value) {
				ec.report(s.Value.Pos(),
					"callback-scoped %s sent on a channel; the receiver outlives the callback — send a copy",
					ec.typeStr(s.Value))
			}
		case *ast.GoStmt:
			ec.checkGo(s)
		case *ast.CallExpr:
			ec.checkAppend(s)
		}
		return true
	})
}

// checkStore flags an owned right-hand side landing anywhere that outlives
// the callback: fields and elements of non-owned values, package-level
// variables, dereferenced pointers. Stores into owned values and plain
// locals are fine (locals are tracked by propagate).
func (ec *escaper) checkStore(lhs, rhs ast.Expr) {
	if !ec.ownedExpr(rhs) {
		return
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		if obj := ec.p.objectOf(l); obj != nil && ec.isGlobal(obj) {
			ec.report(rhs.Pos(),
				"callback-scoped %s stored in package-level variable %s; copy it first",
				ec.typeStr(rhs), l.Name)
		}
	case *ast.SelectorExpr:
		if !ec.ownedExpr(l.X) {
			ec.report(rhs.Pos(),
				"callback-scoped %s stored into field %s, which outlives the callback; copy it first (Clone, or append into a caller-owned buffer)",
				ec.typeStr(rhs), l.Sel.Name)
		}
	case *ast.IndexExpr:
		if !ec.ownedExpr(l.X) {
			ec.report(rhs.Pos(),
				"callback-scoped %s stored into an element of a container that outlives the callback; copy it first",
				ec.typeStr(rhs))
		}
	case *ast.StarExpr:
		if !ec.ownedExpr(l.X) {
			ec.report(rhs.Pos(),
				"callback-scoped %s stored through a pointer that outlives the callback; copy it first",
				ec.typeStr(rhs))
		}
	}
}

// checkGo flags owned values crossing into a goroutine, by argument or by
// closure capture: the goroutine runs after the callback returns the value
// to its pool.
func (ec *escaper) checkGo(s *ast.GoStmt) {
	call := s.Call
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		if obj := ec.capturesOwned(lit); obj != nil {
			ec.report(lit.Pos(), "goroutine closure captures callback-scoped %s; copy it before spawning", obj.Name())
		}
	} else if ec.ownedExpr(call.Fun) {
		ec.report(call.Fun.Pos(), "goroutine started on callback-scoped %s", ec.typeStr(call.Fun))
	}
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			if obj := ec.capturesOwned(lit); obj != nil {
				ec.report(lit.Pos(), "goroutine closure captures callback-scoped %s; copy it before spawning", obj.Name())
			}
			continue
		}
		if ec.ownedExpr(arg) {
			ec.report(arg.Pos(), "callback-scoped %s handed to a goroutine; copy it before spawning", ec.typeStr(arg))
		}
	}
}

// checkAppend flags owned values escaping through append into non-owned
// slices. Spread appends copy elements, so they escape only when the
// elements themselves alias pooled memory — append(dst[:0], m.Data...) is
// the sanctioned copy idiom and stays clean.
func (ec *escaper) checkAppend(call *ast.CallExpr) {
	if !isBuiltinAppend(ec.p, call) || len(call.Args) < 2 {
		return
	}
	if ec.ownedExpr(call.Args[0]) {
		return // appending into owned storage stays in scope
	}
	if call.Ellipsis.IsValid() {
		src := call.Args[1]
		if !ec.ownedExpr(src) {
			return
		}
		t := ec.p.typeOf(src)
		if t == nil {
			return
		}
		if st, ok := t.Underlying().(*types.Slice); ok && aliasing(st.Elem()) {
			ec.report(src.Pos(),
				"append spreads callback-scoped %s whose elements alias pooled memory; deep-copy instead",
				ec.typeStr(src))
		}
		return
	}
	for _, el := range call.Args[1:] {
		if ec.ownedExpr(el) {
			ec.report(el.Pos(),
				"callback-scoped %s appended to a slice that is not callback-scoped; copy it first",
				ec.typeStr(el))
		}
	}
}

func (ec *escaper) isGlobal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && ec.p.Types != nil && v.Parent() == ec.p.Types.Scope()
}

func (ec *escaper) typeStr(e ast.Expr) string {
	t := ec.p.typeOf(e)
	if t == nil {
		return "value"
	}
	return types.TypeString(t, types.RelativeTo(ec.p.Types))
}

func (ec *escaper) report(pos token.Pos, format string, args ...any) {
	ec.out = append(ec.out, Finding{
		Pos:      ec.p.Fset.Position(pos),
		Analyzer: "pooledescape",
		Message:  fmt.Sprintf(format, args...),
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj := p.objectOf(id); obj != nil {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}
