// Package pooledescape_fixture exercises the pooledescape analyzer: values
// of owned types stay inside their callback, and the sanctioned copy
// idioms pass.
package pooledescape_fixture

// msg is a pooled record; values are valid only inside their callback.
//
//edmlint:owned callback
type msg struct {
	data []byte
}

// clone is the sanctioned copy boundary: a call's result is a fresh value.
func (m *msg) clone() *msg {
	return &msg{data: append([]byte(nil), m.data...)}
}

// useLocally reads an owned value without retaining it.
func useLocally(m *msg) int {
	view := m.data // aliasing stays inside the frame
	return len(view)
}

// kept holds only explicit copies.
var kept *msg

// copyOut retains a clone, never the pooled value itself.
func copyOut(m *msg) {
	kept = m.clone()
}

// withView invokes cb with a view of pooled memory; the annotation makes
// cb's arguments callback-scoped at every call site.
//
//edmlint:owned callback
func withView(cb func(b []byte)) {
	cb(nil)
}

// consume uses the view inside the callback only.
func consume() int {
	total := 0
	withView(func(b []byte) {
		total += len(b)
	})
	return total
}
