package pooledescape_fixture

var lastMsg *msg

var lastData []byte

// holder outlives any single callback.
type holder struct {
	m    *msg
	data []byte
}

// stash retains the pooled value in a package-level variable.
func stash(m *msg) {
	lastMsg = m // want "stored in package-level variable"
}

// stashField retains it in a struct field.
func (h *holder) stashField(m *msg) {
	h.m = m // want "stored into field m"
}

// stashData retains a view of pooled memory.
func (h *holder) stashData(m *msg) {
	h.data = m.data // want "stored into field data"
}

// leakChan sends the pooled value to a receiver that outlives the callback.
func leakChan(m *msg, ch chan *msg) {
	ch <- m // want "sent on a channel"
}

// leakGo hands the pooled value to a goroutine.
func leakGo(m *msg) {
	go func() { // want "goroutine closure captures callback-scoped m"
		_ = m.data
	}()
}

// history outlives every callback.
var history []*msg

// leakAppend grows a long-lived log with an owned element. (A []*msg
// parameter would itself be callback-scoped; the package-level slice is
// not.)
func leakAppend(m *msg) {
	history = append(history, m) // want "appended to a slice that is not callback-scoped"
}

// leakCallback escapes a callback-scoped argument of an annotated function.
func leakCallback() {
	withView(func(b []byte) {
		lastData = b // want "stored in package-level variable"
	})
}

// leakAlias escapes through a local alias of the owned value.
func leakAlias(m *msg) {
	alias := m.data
	lastData = alias // want "stored in package-level variable"
}
