package pooledescape_fixture

// pool recycles retired records; its free list is the one sanctioned place
// a pooled value may be stored.
type pool struct {
	free *msg
}

// recycle is the pool's own storage of retired records.
//
//edmlint:allow pooledescape the free list is the pool's own storage
func (p *pool) recycle(m *msg) {
	p.free = m
}
