// Package cleanfixture has nothing for any analyzer to find; cmd/edmlint's
// tests use it for the exit-0 path.
package cleanfixture

func Add(a, b int) int { return a + b }
