// Package lockcheck_typed_fixture exercises typed resolution in lockcheck:
// same-named fields on different structs must not satisfy each other's
// guards, and chained selectors must reach the right annotation. The old
// AST-only check passed both bad cases below.
package lockcheck_typed_fixture

import "sync"

type alpha struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type beta struct {
	mu sync.Mutex
	m  int // guarded by mu
}

// crossLock locks the wrong struct's mu: name-based matching accepted
// this, object-identity matching does not.
func crossLock(a *alpha, b *beta) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return a.n // want "field n is guarded by mu but crossLock never locks mu"
}

// rightLock locks the owning struct's mu.
func rightLock(a *alpha) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

type inner struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type outer struct {
	inner inner
}

// chained reaches the guarded field through a selector chain the AST
// check could not resolve.
func chained(o *outer) int {
	return o.inner.n // want "field n is guarded by mu but chained never locks mu"
}

// chainedOK locks the chained mutex.
func chainedOK(o *outer) int {
	o.inner.mu.Lock()
	defer o.inner.mu.Unlock()
	return o.inner.n
}
