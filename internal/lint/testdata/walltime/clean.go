package walltime_fixture

import "time"

// Durations and time types are configuration, not clock reads; the analyzer
// leaves them alone.
const pollInterval = 50 * time.Millisecond

func double(d time.Duration) time.Duration { return 2 * d }
