package walltime_fixture

import "time"

func stamp() time.Time {
	return time.Now() // want "wall-clock time.Now"
}

func nap() {
	time.Sleep(pollInterval) // want "wall-clock time.Sleep"
}

func metronome() <-chan time.Time {
	return time.Tick(time.Second) // want "wall-clock time.Tick"
}
