package walltime_fixture

import wall "time"

// expiry polls the real deadline: the retransmission contract is wall-time
// by design, so the whole function is allowed.
//
//edmlint:allow walltime fixture demonstrates a declaration-scoped allow
func expiry() wall.Time {
	return wall.Now()
}

func fence() {
	//edmlint:allow walltime fixture demonstrates a line-scoped allow
	wall.Sleep(pollInterval)
}
