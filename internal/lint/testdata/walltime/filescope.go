//edmlint:allow walltime fixture demonstrates a file-scoped allow

package walltime_fixture

import "time"

func fileScoped() time.Time { return time.Now() }
