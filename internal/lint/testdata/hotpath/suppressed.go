package hotpath_fixture

// issue is hot but keeps one deliberate defensive copy: the caller may
// mutate payload after the call returns.
//
//edmlint:hotpath
func issue(payload []byte) []byte {
	//edmlint:allow hotpath fixture demonstrates an allowed defensive copy
	return append([]byte(nil), payload...)
}
