package hotpath_fixture

import "repro/internal/telemetry"

// metrics is the right shape: lookups at construction, atomics per op.
type metrics struct {
	ops *telemetry.Counter
	lat *telemetry.Histogram
}

// newMetrics registers once, outside any hot path — lookups here are fine.
func newMetrics(r *telemetry.Registry) *metrics {
	return &metrics{
		ops: r.Counter("fixture_ops_total"),
		lat: r.Histogram("fixture_lat_ns"),
	}
}

// record holds pre-registered pointers; atomic updates are hot-path-safe.
//
//edmlint:hotpath
func record(m *metrics, ns int64) {
	m.ops.Inc()
	m.ops.Add(2)
	m.lat.Observe(ns)
}

// lookupPerOp hashes the metric name behind the registry mutex on every op.
//
//edmlint:hotpath
func lookupPerOp(r *telemetry.Registry, ns int64) {
	r.Counter("fixture_ops_total").Inc()      // want "telemetry registry lookup Counter(name) per op"
	r.Gauge("fixture_depth").Set(1)           // want "telemetry registry lookup Gauge(name) per op"
	r.Histogram("fixture_lat_ns").Observe(ns) // want "telemetry registry lookup Histogram(name) per op"
}
