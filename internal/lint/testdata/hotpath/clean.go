package hotpath_fixture

import "fmt"

// encode is allocation-lean: sized make, errors built only on the way out.
//
//edmlint:hotpath
func encode(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("empty payload")
	}
	dst := make([]byte, 0, len(src)+4)
	return append(dst, src...), nil
}
