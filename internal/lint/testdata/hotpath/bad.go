package hotpath_fixture

import (
	"fmt"
	"time"
)

type msg struct{ id uint64 }

// serve does one allocation-heavy op per call; every line is a pattern the
// analyzer knows.
//
//edmlint:hotpath
func serve(id uint64, payload []byte) *msg {
	tag := fmt.Sprintf("op-%d", id) // want "fmt.Sprintf allocates per op"
	_ = tag
	index := make(map[uint64]bool) // want "make(map) without size hint"
	_ = index
	buf := make([]byte, 0) // want "make([]T, 0) without capacity"
	_ = buf
	copyOf := append([]byte(nil), payload...) // want "append([]T(nil), ...) copies per op"
	_ = copyOf
	t := time.NewTimer(time.Second) // want "time.NewTimer allocates a timer per op"
	_ = t
	return &msg{id: id} // want "composite literal escapes"
}
