// Package atomicmix_fixture exercises the atomicmix analyzer: all-atomic
// access and typed wrappers pass; plain-only variables are not atomics.
package atomicmix_fixture

import "sync/atomic"

type counters struct {
	hits  uint64
	typed atomic.Uint64
}

// bump and load agree on atomic access for hits.
func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) load() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// typedOnly uses the typed wrapper: mixing is impossible by construction.
func (c *counters) typedOnly() uint64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// plainOnly is never accessed atomically, so plain access is fine.
var plainOnly uint64

func touch() {
	plainOnly++
}
