package atomicmix_fixture

import "sync/atomic"

type gauge struct {
	val uint64
}

func (g *gauge) inc() {
	atomic.AddUint64(&g.val, 1)
}

// peek reads the same field without the atomic.
func (g *gauge) peek() uint64 {
	return g.val // want "read or written plainly"
}

// reset writes it plainly.
func (g *gauge) reset() {
	g.val = 0 // want "read or written plainly"
}

var misses uint64

func bumpVar() {
	atomic.AddUint64(&misses, 1)
}

func peekVar() uint64 {
	return misses // want "read or written plainly"
}
