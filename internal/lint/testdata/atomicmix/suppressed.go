package atomicmix_fixture

import "sync/atomic"

type stat struct {
	n uint64
}

func (s *stat) add() {
	atomic.AddUint64(&s.n, 1)
}

// snapshot reads n plainly after all writer goroutines are joined.
//
//edmlint:allow atomicmix read happens after the writers are joined
func (s *stat) snapshot() uint64 {
	return s.n
}
