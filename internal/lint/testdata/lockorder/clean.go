// Package lockorder_fixture exercises the lockorder analyzer: ascending
// shard locking and consistent cross-class ordering pass.
package lockorder_fixture

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type table struct {
	shards [8]shard
}

// ascending acquires shard locks in provably ascending index order.
func (t *table) ascending(i int) {
	t.shards[i].mu.Lock()
	t.shards[i+1].mu.Lock()
	t.shards[i+1].n++
	t.shards[i+1].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// piecewise never holds two shard locks at once.
func (t *table) piecewise() {
	for i := range t.shards {
		t.shards[i].mu.Lock()
		t.shards[i].n++
		t.shards[i].mu.Unlock()
	}
}

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

// abOrder nests two classes in one consistent order.
func abOrder(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// abOrderAgain repeats the same order with deferred unlocks: consistent,
// no cycle.
func abOrderAgain(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// closureUnit locks inside a function literal: a separate unit, so its
// acquisition does not interleave with the enclosing function's.
func closureUnit(x *a, y *b) func() {
	x.mu.Lock()
	defer x.mu.Unlock()
	return func() {
		y.mu.Lock()
		y.mu.Unlock()
	}
}
