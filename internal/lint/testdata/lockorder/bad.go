package lockorder_fixture

import "sync"

// descending violates the ascending-shard discipline.
func (t *table) descending(i int) {
	t.shards[i].mu.Lock()
	t.shards[i-1].mu.Lock() // want "shard locks must be acquired in ascending order"
	t.shards[i-1].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// unprovable holds two shard locks at unrelated indices.
func (t *table) unprovable(i, j int) {
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock() // want "ascending order cannot be proven"
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

type c struct{ mu sync.Mutex }

type d struct{ mu sync.Mutex }

// forward acquires c then d.
func forward(x *c, y *d) {
	x.mu.Lock()
	y.mu.Lock() // want "lock-order cycle"
	y.mu.Unlock()
	x.mu.Unlock()
}

// backward acquires d then c: together with forward, an AB/BA deadlock.
func backward(x *c, y *d) {
	y.mu.Lock()
	x.mu.Lock() // want "lock-order cycle"
	x.mu.Unlock()
	y.mu.Unlock()
}
