package lockorder_fixture

import "sync"

// pair nodes link to a peer; links are acyclic by construction.
type pair struct {
	mu    sync.Mutex
	other *pair
}

// link locks a node and its peer. Same lock class with no provable order,
// but the construction invariant (links never form a cycle) makes it safe.
//
//edmlint:allow lockorder pairs are linked acyclically at construction
func (p *pair) link() {
	p.mu.Lock()
	p.other.mu.Lock()
	p.other.mu.Unlock()
	p.mu.Unlock()
}
