package lockcheck_fixture

// snapshotRacy deliberately reads without the lock: the estimate feeds a
// monitoring line where a torn read is benign.
//
//edmlint:allow lockcheck fixture demonstrates a suppressed unlocked read
func snapshotRacy(c *Counter) int {
	return c.n
}
