package lockcheck_fixture

// Peek reads the counter without the lock.
func (c *Counter) Peek() int {
	return c.n // want "field n is guarded by mu but Peek never locks mu"
}

// poke mutates a counter it received and never locked.
func poke(c *Counter) {
	c.n = 7 // want "field n is guarded by mu but poke never locks mu"
}

// siphon goes around Table's methods from a free function.
func siphon(t *Table) int {
	return t.slots[0] // want "guarded by caller (owner-methods only) but siphon"
}
