package lockcheck_fixture

import "sync"

// Counter is the through-the-lock shape the checker wants to see.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// drainLocked requires c.mu held by the caller; the Locked suffix is the
// contract the checker honours.
func (c *Counter) drainLocked() int {
	v := c.n
	c.n = 0
	return v
}

// Table is externally serialized: only its own methods may touch slots.
type Table struct {
	slots []int // guarded by caller (rmem.Server serializes access)
}

func (t *Table) Get(i int) int { return t.slots[i] }
