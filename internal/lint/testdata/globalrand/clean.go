package globalrand_fixture

// mix is deterministic arithmetic (a splitmix64 round): randomness in this
// repo flows through workload.Partition streams built on exactly this.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return z
}
