package globalrand_fixture

import "math/rand" // want "math/rand import in deterministic package"

func roll() int {
	return rand.Intn(6) // want "global math/rand source via rand.Intn"
}

func jitter() float64 {
	return rand.Float64() // want "global math/rand source via rand.Float64"
}
