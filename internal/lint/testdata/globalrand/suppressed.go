package globalrand_fixture

//edmlint:allow globalrand fixture demonstrates suppressing the import ban
import mrand "math/rand"

func seeded() int {
	//edmlint:allow globalrand fixture demonstrates suppressing a call
	return mrand.Intn(6)
}
