// Package pooledescape_wire proves the owned annotation on the real
// wire.Msg type is enforced across package boundaries: the fixture imports
// the production type and retains it the way a buggy Completion would.
package pooledescape_wire

import "repro/internal/wire"

// lastResponse would retain a pooled response beyond its callback.
var lastResponse *wire.Msg

type watcher struct {
	raw []byte
}

// Done implements wire.Completion and illegally retains the pooled Msg.
func (w *watcher) Done(m *wire.Msg, err error) {
	lastResponse = m // want "stored in package-level variable"
	w.raw = m.Data   // want "stored into field raw"
}
