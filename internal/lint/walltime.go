package lint

import (
	"fmt"
	"go/ast"
)

// forbiddenTime is the set of package-level time functions that read or
// schedule against the wall clock. Types (time.Duration, time.Timer) and
// duration constants stay legal: configuration is fine, consulting the real
// clock is not.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// Walltime forbids wall-clock reads in deterministic packages: seeded runs
// are byte-reproducible only if every latency and timestamp flows through
// the virtual clock (sim.Time). cmd/* and examples/* are exempt wholesale;
// inherently real-time code elsewhere (the UDP transport, retransmission
// timers, session lifecycle deadlines) carries explicit
// //edmlint:allow walltime directives with its justification.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time in deterministic packages",
	Run: func(p *Package, _ *Directives) []Finding {
		if !p.deterministic() {
			return nil
		}
		var out []Finding
		for _, f := range p.Files {
			name := importName(f, "time")
			if name == "" || name == "_" {
				continue
			}
			if name == "." {
				for _, imp := range f.Imports {
					if imp.Name != nil && imp.Name.Name == "." {
						out = append(out, Finding{
							Pos:      p.Fset.Position(imp.Pos()),
							Analyzer: "walltime",
							Message:  "dot-import of time defeats wall-clock analysis; import it qualified",
						})
					}
				}
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != name || !forbiddenTime[sel.Sel.Name] {
					return true
				}
				out = append(out, Finding{
					Pos:      p.Fset.Position(sel.Pos()),
					Analyzer: "walltime",
					Message: fmt.Sprintf("wall-clock %s.%s in a deterministic package; thread the virtual clock (sim.Time) through, or annotate //edmlint:allow walltime <reason>",
						name, sel.Sel.Name),
				})
				return true
			})
		}
		return out
	},
}
