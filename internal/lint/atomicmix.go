package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Atomicmix flags variables that are accessed through sync/atomic in one
// place and read or written plainly in another. Mixing the two is a data
// race even when the plain access "only reads a counter": the race detector
// flags it, and on weakly-ordered machines the plain read can observe torn
// or stale values. The fix is either all-atomic access (or the typed
// atomic.Uint64-style wrappers, which make mixing impossible) or a mutex.
//
// Detection is type-resolved: pass one collects every field or variable
// whose address is taken as the first argument of a sync/atomic call; pass
// two reports any other mention of those objects outside a sanctioned
// atomic call. Typed wrappers (atomic.Uint64 et al.) never trip the check —
// their plain method calls are not address-of arguments.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid mixing sync/atomic access with plain reads/writes of the same variable",
	Run:  runAtomicmix,
}

// atomicSpan is a source range sanctioned for mentions of an atomic
// variable.
type atomicSpan struct{ from, to token.Pos }

func runAtomicmix(p *Package, _ *Directives) []Finding {
	if p.Info == nil {
		return nil
	}
	// Pass one: objects passed by address into sync/atomic functions, with
	// the first atomic site for the diagnostic, and the sanctioned spans.
	atomicObjs := make(map[*types.Var]token.Position)
	var spans []atomicSpan
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.objectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			ue, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			v := addressedVar(p, ue.X)
			if v == nil {
				return true
			}
			if _, seen := atomicObjs[v]; !seen {
				atomicObjs[v] = p.Fset.Position(call.Pos())
			}
			spans = append(spans, atomicSpan{from: ue.Pos(), to: ue.End()})
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	sanctioned := func(pos token.Pos) bool {
		for _, s := range spans {
			if pos >= s.from && pos < s.to {
				return true
			}
		}
		return false
	}

	// Pass two: any other mention of those objects is a plain access.
	var out []Finding
	for _, f := range p.Files {
		consumed := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				consumed[x.Sel] = true
				if v, ok := p.selObj(x).(*types.Var); ok {
					if site, hot := atomicObjs[v]; hot && !sanctioned(x.Pos()) {
						out = append(out, plainAccess(p, x.Pos(), v, site))
					}
				}
			case *ast.Ident:
				if consumed[x] {
					return true
				}
				// Uses only: the declaration itself is not an access.
				if p.Info == nil || p.Info.Uses[x] == nil {
					return true
				}
				if v, ok := p.Info.Uses[x].(*types.Var); ok {
					if site, hot := atomicObjs[v]; hot && !sanctioned(x.Pos()) {
						out = append(out, plainAccess(p, x.Pos(), v, site))
					}
				}
			}
			return true
		})
	}
	return out
}

// addressedVar resolves the operand of an address-of expression to the
// field or variable it denotes.
func addressedVar(p *Package, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		v, _ := p.selObj(x).(*types.Var)
		return v
	case *ast.Ident:
		v, _ := p.objectOf(x).(*types.Var)
		return v
	case *ast.IndexExpr:
		return addressedVar(p, x.X)
	case *ast.ParenExpr:
		return addressedVar(p, x.X)
	}
	return nil
}

func plainAccess(p *Package, pos token.Pos, v *types.Var, site token.Position) Finding {
	return Finding{Pos: p.Fset.Position(pos), Analyzer: "atomicmix",
		Message: fmt.Sprintf("%s is read or written plainly here but accessed via sync/atomic at %s:%d; use atomic ops (or a typed atomic wrapper) everywhere",
			v.Name(), filepath.Base(site.Filename), site.Line)}
}
