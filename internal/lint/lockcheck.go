package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
)

// guardedRe matches the annotation grammar in a field comment:
//
//	mu sync.Mutex
//	n  int // guarded by mu
//
// The guard name is either a mutex field (the enclosing function must call
// <mu>.Lock or <mu>.RLock somewhere in its body — flow-insensitive) or the
// literal word `caller`, meaning the field may only be touched from the
// owning struct's own methods (for types like memctl.Controller that are
// serialized one level up).
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardCaller is the special guard name for externally synchronized state.
const guardCaller = "caller"

// lockedSuffix marks functions whose contract is "caller holds the lock".
const lockedSuffix = "Locked"

// Lockcheck verifies annotated lock discipline: every intra-package access
// to a field commented `// guarded by <mu>` must occur in a function that
// locks <mu> (or is named *Locked, the caller-holds-it convention). The
// check is flow-insensitive by design — it asks "does this function ever
// take the lock", not "is it held at this statement" — which is cheap,
// stdlib-only, and catches the real bug class: a new accessor that forgot
// the mutex entirely.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "verify accesses to `guarded by` fields happen under their lock",
	Run:  runLockcheck,
}

func runLockcheck(p *Package, _ *Directives) []Finding {
	// Pass 1: collect annotations across the package.
	structGuards := make(map[string]map[string]string) // struct -> field -> mu
	fieldMus := make(map[string]map[string]bool)       // field -> set of mus
	fieldOwners := make(map[string]map[string]bool)    // field -> set of structs
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if structGuards[ts.Name.Name] == nil {
						structGuards[ts.Name.Name] = make(map[string]string)
					}
					structGuards[ts.Name.Name][name.Name] = mu
					if fieldMus[name.Name] == nil {
						fieldMus[name.Name] = make(map[string]bool)
						fieldOwners[name.Name] = make(map[string]bool)
					}
					fieldMus[name.Name][mu] = true
					fieldOwners[name.Name][ts.Name.Name] = true
				}
			}
			return true
		})
	}
	if len(fieldMus) == 0 {
		return nil
	}

	// Pass 2: check every function's accesses.
	var out []Finding
	for _, f := range p.Files {
		pkgNames := importNames(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkFunc(p, fn, pkgNames, structGuards, fieldMus, fieldOwners)...)
		}
	}
	return out
}

// guardName extracts the guard from a field's doc or trailing comment.
func guardName(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// recvInfo extracts a method's receiver name and base type name.
func recvInfo(fn *ast.FuncDecl) (name, typ string) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return "", ""
	}
	r := fn.Recv.List[0]
	if len(r.Names) > 0 {
		name = r.Names[0].Name
	}
	t := r.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[K]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typ = id.Name
	}
	return name, typ
}

// locksTaken collects the final names of mutexes the function body locks
// (c.mu.Lock() and mu.RLock() both record "mu"), including inside closures.
func locksTaken(body ast.Node) map[string]bool {
	locks := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			locks[x.Name] = true
		case *ast.SelectorExpr:
			locks[x.Sel.Name] = true
		}
		return true
	})
	return locks
}

func checkFunc(p *Package, fn *ast.FuncDecl, pkgNames map[string]bool,
	structGuards map[string]map[string]string,
	fieldMus map[string]map[string]bool,
	fieldOwners map[string]map[string]bool) []Finding {

	if strings.HasSuffix(fn.Name.Name, lockedSuffix) {
		return nil // contract: the caller holds the lock
	}
	recvName, recvType := recvInfo(fn)
	locks := locksTaken(fn.Body)

	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := sel.Sel.Name
		id, isIdent := sel.X.(*ast.Ident)
		if isIdent && pkgNames[id.Name] {
			return true // package-qualified selector, not a field access
		}

		var mus map[string]bool
		var owners map[string]bool
		switch {
		case isIdent && recvName != "" && id.Name == recvName && structGuards[recvType][field] != "":
			mu := structGuards[recvType][field]
			mus = map[string]bool{mu: true}
			owners = map[string]bool{recvType: true}
		case isIdent && fieldMus[field] != nil:
			// Name-based fallback: the base is some other identifier, so
			// treat any annotated field of this name as a match.
			mus = fieldMus[field]
			owners = fieldOwners[field]
		default:
			return true
		}

		if mus[guardCaller] {
			if owners[recvType] {
				return true
			}
			out = append(out, Finding{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "lockcheck",
				Message: fmt.Sprintf("field %s is guarded by caller (owner-methods only) but %s is not a method of its struct",
					field, fn.Name.Name),
			})
			return true
		}
		for mu := range mus {
			if locks[mu] {
				return true
			}
		}
		mu := oneKey(mus)
		out = append(out, Finding{
			Pos:      p.Fset.Position(sel.Pos()),
			Analyzer: "lockcheck",
			Message: fmt.Sprintf("field %s is guarded by %s but %s never locks %s",
				field, mu, fn.Name.Name, mu),
		})
		return true
	})
	return out
}

// oneKey returns some key of a non-empty set (for messages).
func oneKey(set map[string]bool) string {
	for k := range set {
		return k
	}
	return ""
}
