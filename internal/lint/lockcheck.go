package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedRe matches the annotation grammar in a field comment:
//
//	mu sync.Mutex
//	n  int // guarded by mu
//
// The guard name is either a mutex field (the enclosing function must call
// <mu>.Lock or <mu>.RLock somewhere in its body — flow-insensitive) or the
// literal word `caller`, meaning the field may only be touched from the
// owning struct's own methods (for types like memctl.Controller that are
// serialized one level up).
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardCaller is the special guard name for externally synchronized state.
const guardCaller = "caller"

// lockedSuffix marks functions whose contract is "caller holds the lock".
const lockedSuffix = "Locked"

// Lockcheck verifies annotated lock discipline: every intra-package access
// to a field commented `// guarded by <mu>` must occur in a function that
// locks <mu> (or is named *Locked, the caller-holds-it convention). The
// check is flow-insensitive by design — it asks "does this function ever
// take the lock", not "is it held at this statement" — which is cheap,
// stdlib-only, and catches the real bug class: a new accessor that forgot
// the mutex entirely.
//
// Field accesses resolve through go/types, so two structs with same-named
// fields never shadow each other's guards, and chained selectors
// (o.inner.n) reach the right annotation. When the named guard is a
// sibling field of the same struct, the lock requirement is type-resolved
// too: locking a same-named mutex on a different struct does not count.
// Annotations whose guard lives elsewhere (`guarded by mu (the server's)`)
// fall back to matching the lock by name.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "verify accesses to `guarded by` fields happen under their lock",
	Run:  runLockcheck,
}

// guardSpec is one annotated field's contract.
type guardSpec struct {
	mu    string          // guard name as written
	muObj types.Object    // sibling mutex field, nil when the guard lives elsewhere
	owner *types.TypeName // the struct that declares the field
}

func runLockcheck(p *Package, _ *Directives) []Finding {
	if p.Info == nil {
		return nil
	}
	// Pass 1: collect annotations across the package, keyed by the guarded
	// field's object identity.
	guards := make(map[types.Object]*guardSpec)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, _ := p.objectOf(ts.Name).(*types.TypeName)
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				muObj := structFieldObj(p, st, mu)
				for _, name := range field.Names {
					if obj := p.objectOf(name); obj != nil {
						guards[obj] = &guardSpec{mu: mu, muObj: muObj, owner: owner}
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}

	// Pass 2: check every function's accesses.
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkFunc(p, fn, guards)...)
		}
	}
	return out
}

// guardName extracts the guard from a field's doc or trailing comment.
func guardName(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structFieldObj finds the object of the struct's own field named name.
func structFieldObj(p *Package, st *ast.StructType, name string) types.Object {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				return p.objectOf(id)
			}
		}
	}
	return nil
}

// recvTypeName resolves a method's receiver to its type name object.
func recvTypeName(p *Package, fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[K]
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		default:
			id, ok := t.(*ast.Ident)
			if !ok {
				return nil
			}
			tn, _ := p.objectOf(id).(*types.TypeName)
			return tn
		}
	}
}

// locksTaken collects the mutexes the function body locks — by object
// identity where the receiver resolves to a field or variable, and by final
// name as a fallback for annotations whose guard lives on another struct.
// Closures count: a goroutine body locking the mutex is this function
// taking it.
func locksTaken(p *Package, body ast.Node) (objs map[types.Object]bool, names map[string]bool) {
	objs = make(map[types.Object]bool)
	names = make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			names[x.Name] = true
			if obj := p.objectOf(x); obj != nil {
				objs[obj] = true
			}
		case *ast.SelectorExpr:
			names[x.Sel.Name] = true
			if obj := p.selObj(x); obj != nil {
				objs[obj] = true
			}
		}
		return true
	})
	return objs, names
}

func checkFunc(p *Package, fn *ast.FuncDecl, guards map[types.Object]*guardSpec) []Finding {
	if strings.HasSuffix(fn.Name.Name, lockedSuffix) {
		return nil // contract: the caller holds the lock
	}
	recvType := recvTypeName(p, fn)
	lockObjs, lockNames := locksTaken(p, fn.Body)

	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.selObj(sel)
		if obj == nil {
			return true
		}
		gs, ok := guards[obj]
		if !ok {
			return true
		}
		field := sel.Sel.Name

		if gs.mu == guardCaller {
			if recvType != nil && recvType == gs.owner {
				return true
			}
			out = append(out, Finding{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "lockcheck",
				Message: fmt.Sprintf("field %s is guarded by caller (owner-methods only) but %s is not a method of its struct",
					field, fn.Name.Name),
			})
			return true
		}

		held := false
		if gs.muObj != nil {
			held = lockObjs[gs.muObj]
		} else {
			held = lockNames[gs.mu]
		}
		if held {
			return true
		}
		out = append(out, Finding{
			Pos:      p.Fset.Position(sel.Pos()),
			Analyzer: "lockcheck",
			Message: fmt.Sprintf("field %s is guarded by %s but %s never locks %s",
				field, gs.mu, fn.Name.Name, gs.mu),
		})
		return true
	})
	return out
}
