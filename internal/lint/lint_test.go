package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadFixture parses one testdata package through the real loader.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	mod, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pkgs, err := LoadPackages(mod, []string{filepath.Join("testdata", name)})
	if err != nil {
		t.Fatalf("LoadPackages(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// wants collects the fixture's expected diagnostics: every `// want "sub"`
// comment expects one finding on its line whose message contains sub.
func wants(p *Package) map[string][]string {
	out := make(map[string][]string) // "file:line" -> substrings
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := p.Fset.Position(c.Pos())
					key := filepath.Base(pos.Filename) + ":" + itoa(pos.Line)
					out[key] = append(out[key], m[1])
				}
			}
		}
	}
	return out
}

func itoa(n int) string { return strconv.Itoa(n) }

// checkFixture runs one analyzer over a fixture and matches findings against
// the want comments, both directions.
func checkFixture(t *testing.T, fixture string, a *Analyzer) {
	t.Helper()
	p := loadFixture(t, fixture)
	expected := wants(p)
	for _, f := range Check(p, []*Analyzer{a}) {
		key := filepath.Base(f.Pos.Filename) + ":" + itoa(f.Pos.Line)
		subs := expected[key]
		matched := -1
		for i, sub := range subs {
			if strings.Contains(f.Message, sub) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s: [%s] %s", key, f.Analyzer, f.Message)
			continue
		}
		expected[key] = append(subs[:matched], subs[matched+1:]...)
		if len(expected[key]) == 0 {
			delete(expected, key)
		}
	}
	for key, subs := range expected {
		for _, sub := range subs {
			t.Errorf("missing finding at %s containing %q", key, sub)
		}
	}
}

func TestWalltimeFixture(t *testing.T)     { checkFixture(t, "walltime", Walltime) }
func TestGlobalrandFixture(t *testing.T)   { checkFixture(t, "globalrand", Globalrand) }
func TestLockcheckFixture(t *testing.T)    { checkFixture(t, "lockcheck", Lockcheck) }
func TestHotpathFixture(t *testing.T)      { checkFixture(t, "hotpath", Hotpath) }
func TestPooledescapeFixture(t *testing.T) { checkFixture(t, "pooledescape", Pooledescape) }
func TestLockorderFixture(t *testing.T)    { checkFixture(t, "lockorder", Lockorder) }
func TestAtomicmixFixture(t *testing.T)    { checkFixture(t, "atomicmix", Atomicmix) }

// TestLockcheckTypedFixture pins the false negatives the typed rewrite
// closed: a same-named mutex on another struct no longer satisfies a
// guard, and chained selectors resolve to the right annotation.
func TestLockcheckTypedFixture(t *testing.T) { checkFixture(t, "lockcheck_typed", Lockcheck) }

// TestPooledescapeAcrossPackages proves the //edmlint:owned annotation on
// the production wire.Msg type is seen by a fixture package that merely
// imports it — ownership is a property of the loaded World, not of the
// package under analysis.
func TestPooledescapeAcrossPackages(t *testing.T) {
	checkFixture(t, "pooledescape_wire", Pooledescape)
}

// TestTypedLoaderResolvesImports spot-checks the World: the fixture package
// typechecks with real type information for both stdlib and module-internal
// imports, with no hard errors.
func TestTypedLoaderResolvesImports(t *testing.T) {
	p := loadFixture(t, "pooledescape_wire")
	if p.Types == nil || p.Info == nil {
		t.Fatal("typed layer missing after LoadPackages")
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("unexpected type errors: %v", p.TypeErrors)
	}
	if !p.World.hasOwned() {
		t.Fatal("owned annotations from repro/internal/wire were not registered")
	}
}

// TestWalltimeSkipsCmdPackages rebinds the walltime fixture under cmd/ and
// expects the analyzer to stand down entirely.
func TestWalltimeSkipsCmdPackages(t *testing.T) {
	p := loadFixture(t, "walltime")
	p.Path = p.ModulePath + "/cmd/fixture"
	if got := Check(p, []*Analyzer{Walltime}); len(got) != 0 {
		t.Fatalf("cmd package: got %d findings, want 0: %v", len(got), got)
	}
}

// TestGlobalrandOutsideDeterministic rebinds the globalrand fixture under
// cmd/: the import ban lifts, but global-source calls stay banned.
func TestGlobalrandOutsideDeterministic(t *testing.T) {
	p := loadFixture(t, "globalrand")
	p.Path = p.ModulePath + "/cmd/fixture"
	got := Check(p, []*Analyzer{Globalrand})
	if len(got) != 2 {
		t.Fatalf("cmd package: got %d findings, want 2 (calls only): %v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "global math/rand source") {
			t.Errorf("unexpected finding in cmd package: %s", f.Message)
		}
	}
}

// parseSource builds an in-memory Package from one file of source.
func parseSource(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "inline.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{ModulePath: "repro", Path: "repro/internal/inline", Fset: fset, Files: []*ast.File{f}}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "allow without reason",
			src:  "package x\n\nfunc f() {\n\t//edmlint:allow walltime\n}\n",
			want: "needs a reason",
		},
		{
			name: "allow without anything",
			src:  "package x\n\nfunc f() {\n\t//edmlint:allow\n}\n",
			want: "needs a check name and a reason",
		},
		{
			name: "unknown check",
			src:  "package x\n\nfunc f() {\n\t//edmlint:allow sloth it naps\n}\n",
			want: `unknown check "sloth"`,
		},
		{
			name: "hotpath off a function",
			src:  "package x\n\nfunc f() {\n\t//edmlint:hotpath\n}\n",
			want: "must sit in a function's doc comment",
		},
		{
			name: "unknown verb",
			src:  "package x\n\n//edmlint:frobnicate\nfunc f() {}\n",
			want: "unknown directive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := parseSource(t, tc.src)
			got := Check(p, Analyzers())
			found := false
			for _, f := range got {
				if f.Analyzer == "directive" && strings.Contains(f.Message, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no directive finding containing %q in %v", tc.want, got)
			}
		})
	}
}
