package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// Lockorder builds a per-package lock-acquisition graph from sync.Mutex /
// sync.RWMutex usage and enforces two rules:
//
//   - The graph stays acyclic: if one function acquires B while holding A,
//     no function may acquire A while holding B (the classic AB/BA
//     deadlock). Lock classes are struct mutex fields (one class per field
//     declaration, so every shard of rmem.Server's shards array is one
//     class) and package-level or local mutex variables.
//   - Nested acquisitions of the same class must be provably ascending:
//     holding shards[i] while locking shards[j] is only clean when the two
//     index expressions share a base and the second is a larger constant
//     offset (i then i+1). Descending or unprovable orders are findings —
//     rmem.Server's piecewise walk (lock, op, unlock, advance) never holds
//     two shard locks and stays clean by construction.
//
// Tracking is intra-procedural and source-ordered: Lock pushes the class,
// Unlock pops it, deferred Unlocks hold to function end, and function
// literals are analyzed as their own units (their locks do not interleave
// with the enclosing function's linear order).
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag cyclic lock orderings and non-ascending same-class (shard) lock nesting",
	Run:  runLockorder,
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
)

// lockEvent is one Lock/Unlock call in source order.
type lockEvent struct {
	kind  int
	class types.Object // mutex field or variable identity
	name  string       // display name ("shard.mu", "mu")
	index ast.Expr     // index expression nearest the mutex, nil if none
	pos   token.Pos
}

// lockEdge is "to acquired while from is held".
type lockEdge struct{ from, to types.Object }

// edgeSite remembers where an edge was first observed.
type edgeSite struct {
	pos      token.Position
	fn       string
	from, to string
}

func runLockorder(p *Package, _ *Directives) []Finding {
	if p.Info == nil {
		return nil
	}
	edges := make(map[lockEdge]edgeSite)
	var edgeOrder []lockEdge
	var out []Finding

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			units := []ast.Node{fn.Body}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					units = append(units, lit.Body)
				}
				return true
			})
			for i, unit := range units {
				name := fn.Name.Name
				if i > 0 {
					name = "a closure in " + name
				}
				events := collectLockEvents(p, unit)
				out = append(out, processLockEvents(p, name, events, edges, &edgeOrder)...)
			}
		}
	}

	// Cycle pass: an edge participating in a cycle (its target can reach
	// its source) is an ordering violation.
	adj := make(map[types.Object][]types.Object)
	for _, e := range edgeOrder {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, e := range edgeOrder {
		if e.from == e.to || !lockReachable(adj, e.to, e.from) {
			continue
		}
		site := edges[e]
		msg := fmt.Sprintf("%s acquired while %s is held, but elsewhere the order reverses (lock-order cycle)",
			site.to, site.from)
		if rev, ok := edges[lockEdge{from: e.to, to: e.from}]; ok {
			msg = fmt.Sprintf("%s acquired while %s is held here, but %s acquires them in the opposite order (lock-order cycle)",
				site.to, site.from, rev.fn)
		}
		out = append(out, Finding{Pos: site.pos, Analyzer: "lockorder", Message: msg})
	}
	return out
}

// collectLockEvents gathers Lock/RLock/Unlock/RUnlock calls in source
// order, treating deferred unlocks as held-to-end and skipping function
// literals (they are separate units).
func collectLockEvents(p *Package, unit ast.Node) []lockEvent {
	var events []lockEvent
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(unit, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x.Body != unit {
				return false
			}
		case *ast.DeferStmt:
			if ev, ok := lockCallEvent(p, x.Call); ok && ev.kind == evUnlock {
				ev.kind = evDeferUnlock
				events = append(events, ev)
				deferred[x.Call] = true
			}
		case *ast.CallExpr:
			if deferred[x] {
				return true
			}
			if ev, ok := lockCallEvent(p, x); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	return events
}

// lockCallEvent classifies a call as a mutex acquisition or release and
// resolves its lock class through the type information.
func lockCallEvent(p *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return lockEvent{}, false
	}
	fn, ok := p.objectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	class, name, idx := lockClassOf(p, sel.X)
	if class == nil {
		return lockEvent{}, false
	}
	return lockEvent{kind: kind, class: class, name: name, index: idx, pos: call.Pos()}, true
}

// lockClassOf maps a mutex expression to its class: the struct field object
// for selector chains (s.shards[i].mu → the shard.mu field), the variable
// object for plain identifiers. The nearest index expression in the chain
// is kept for same-class ascending-order proofs.
func lockClassOf(p *Package, x ast.Expr) (types.Object, string, ast.Expr) {
	idx := innerIndex(x)
	base := x
strip:
	for {
		switch t := base.(type) {
		case *ast.ParenExpr:
			base = t.X
		case *ast.IndexExpr:
			base = t.X
		case *ast.StarExpr:
			base = t.X
		default:
			break strip
		}
	}
	switch e := base.(type) {
	case *ast.SelectorExpr:
		if v, ok := p.selObj(e).(*types.Var); ok {
			name := e.Sel.Name
			if bt := p.typeOf(e.X); bt != nil {
				if named := derefNamed(bt); named != nil {
					name = named.Obj().Name() + "." + name
				}
			}
			return v, name, idx
		}
	case *ast.Ident:
		if v, ok := p.objectOf(e).(*types.Var); ok {
			return v, e.Name, idx
		}
	}
	return nil, "", nil
}

// innerIndex returns the index expression nearest the mutex in a receiver
// chain (s.shards[i].mu → i), or nil.
func innerIndex(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			return t.Index
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return nil
			}
			e = t.X
		default:
			return nil
		}
	}
}

// derefNamed unwraps pointers and aliases to the named type, if any.
func derefNamed(t types.Type) *types.Named {
	for {
		t = types.Unalias(t)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		named, _ := t.(*types.Named)
		return named
	}
}

// processLockEvents replays one unit's events against a held-lock list,
// emitting same-class ordering findings and recording cross-class edges.
func processLockEvents(p *Package, fnName string, events []lockEvent,
	edges map[lockEdge]edgeSite, edgeOrder *[]lockEdge) []Finding {

	var out []Finding
	var held []lockEvent
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			for _, h := range held {
				if h.class == ev.class {
					if f, bad := checkSameClass(p, h, ev); bad {
						out = append(out, f)
					}
					continue
				}
				e := lockEdge{from: h.class, to: ev.class}
				if _, ok := edges[e]; !ok {
					edges[e] = edgeSite{pos: p.Fset.Position(ev.pos), fn: fnName,
						from: h.name, to: ev.name}
					*edgeOrder = append(*edgeOrder, e)
				}
			}
			held = append(held, ev)
		case evUnlock:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].class == ev.class {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evDeferUnlock:
			// Held to function end: nothing to pop.
		}
	}
	return out
}

// checkSameClass judges a nested same-class acquisition: clean only when
// both index expressions share a base and the new index is strictly larger
// (the ascending-shard discipline).
func checkSameClass(p *Package, h, ev lockEvent) (Finding, bool) {
	hb, hd, hok := indexKey(h.index)
	nb, nd, nok := indexKey(ev.index)
	if hok && nok && hb == nb {
		if nd > hd {
			return Finding{}, false
		}
		return Finding{Pos: p.Fset.Position(ev.pos), Analyzer: "lockorder",
			Message: fmt.Sprintf("%s locked at index %s while the same lock class is held at index %s; shard locks must be acquired in ascending order",
				ev.name, indexStr(ev.index), indexStr(h.index))}, true
	}
	return Finding{Pos: p.Fset.Position(ev.pos), Analyzer: "lockorder",
		Message: fmt.Sprintf("%s acquired while another %s is held and ascending order cannot be proven; restructure to piecewise locking or annotate",
			ev.name, h.name)}, true
}

// indexKey canonicalizes an index expression to (base, constant offset):
// i → ("i", 0), i+1 → ("i", 1), 3 → ("", 3). Two keys compare only when
// their bases match.
func indexKey(e ast.Expr) (base string, delta int64, ok bool) {
	switch x := e.(type) {
	case nil:
		return "", 0, false
	case *ast.BasicLit:
		if x.Kind != token.INT {
			return "", 0, false
		}
		v, err := strconv.ParseInt(x.Value, 0, 64)
		if err != nil {
			return "", 0, false
		}
		return "", v, true
	case *ast.ParenExpr:
		return indexKey(x.X)
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return "", 0, false
		}
		if lit, okLit := x.Y.(*ast.BasicLit); okLit && lit.Kind == token.INT {
			v, err := strconv.ParseInt(lit.Value, 0, 64)
			if err != nil {
				return "", 0, false
			}
			if x.Op == token.SUB {
				v = -v
			}
			return types.ExprString(x.X), v, true
		}
		if lit, okLit := x.X.(*ast.BasicLit); okLit && lit.Kind == token.INT && x.Op == token.ADD {
			v, err := strconv.ParseInt(lit.Value, 0, 64)
			if err != nil {
				return "", 0, false
			}
			return types.ExprString(x.Y), v, true
		}
		return "", 0, false
	default:
		return types.ExprString(e), 0, true
	}
}

func indexStr(e ast.Expr) string {
	if e == nil {
		return "?"
	}
	return types.ExprString(e)
}

// lockReachable reports whether to is reachable from from in the edge
// graph.
func lockReachable(adj map[types.Object][]types.Object, from, to types.Object) bool {
	seen := make(map[types.Object]bool)
	stack := []types.Object{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

// sortFindings orders findings deterministically (used by tests).
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
}
