package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module locates the enclosing Go module: its root directory and path.
type Module struct {
	Dir  string
	Path string
}

// FindModule walks up from dir to the nearest go.mod and reads its module
// path. Parsing the single `module` line by hand keeps the loader free of
// golang.org/x/mod (stdlib-only constraint).
func FindModule(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					path := strings.TrimSpace(rest)
					if path == "" {
						break
					}
					return &Module{Dir: dir, Path: strings.Trim(path, `"`)}, nil
				}
			}
			return nil, fmt.Errorf("go.mod in %s has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns resolves command-line package patterns to directories.
// "./..." (or "dir/...") walks recursively, skipping testdata, vendor, .git
// and hidden directories — fixture files under testdata do not build as part
// of the module. Naming a testdata directory explicitly still loads it,
// which is how edmlint's own tests point the driver at violating fixtures.
func ExpandPatterns(mod *Module, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = filepath.Clean(strings.TrimSuffix(root, string(filepath.Separator)))
		if root == "" || root == "."+string(filepath.Separator) {
			root = "."
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(filepath.Clean(pat))
				continue
			}
			return nil, fmt.Errorf("no Go files in %s", pat)
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadPackages parses every buildable .go file (tests included) in each
// directory and groups them by package clause, so a directory with an
// external _test package yields two Packages. Comments are kept: directives
// live there. Each group is then typechecked through one shared World
// (go/types + source importer), tolerantly: soft type errors land in
// Package.TypeErrors rather than failing the load. Files excluded by build
// constraints on the current platform are skipped, matching go vet.
func LoadPackages(mod *Module, dirs []string) ([]*Package, error) {
	w := NewWorld(mod)
	var pkgs []*Package
	for _, dir := range dirs {
		files, err := w.parseDir(dir, true)
		if err != nil {
			return nil, err
		}
		byName := make(map[string][]*ast.File)
		var names []string
		for _, file := range files {
			name := file.Name.Name
			if byName[name] == nil {
				names = append(names, name)
			}
			byName[name] = append(byName[name], file)
		}
		importPath, err := dirImportPath(mod, dir)
		if err != nil {
			return nil, err
		}
		sort.Strings(names)
		for _, name := range names {
			// External test packages typecheck under path_test (go list's
			// ImportPath for them); Package.Path keeps the directory's
			// import path so package-level gating is unchanged.
			checkPath := importPath
			if strings.HasSuffix(name, "_test") {
				checkPath = importPath + "_test"
			}
			tpkg, info, terrs := w.typeCheck(checkPath, byName[name])
			pkgs = append(pkgs, &Package{
				ModulePath: mod.Path,
				Path:       importPath,
				Fset:       w.fset,
				Files:      byName[name],
				Types:      tpkg,
				Info:       info,
				World:      w,
				TypeErrors: terrs,
			})
		}
	}
	return pkgs, nil
}

// dirImportPath maps a directory to its import path within the module.
func dirImportPath(mod *Module, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(mod.Dir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return mod.Path, nil
	}
	return mod.Path + "/" + filepath.ToSlash(rel), nil
}
