package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ownedScopeCallback is the only //edmlint:owned scope: the value is valid
// exactly for the duration of the callback that received it.
const ownedScopeCallback = "callback"

// World is the typed half of the loader: one per LoadPackages call, shared
// by every Package it produces. It owns the FileSet, resolves imports —
// module-internal paths from the module's own source, the standard library
// through go/importer's source importer — and indexes the module-wide
// //edmlint:owned annotations that pooledescape enforces across package
// boundaries.
type World struct {
	mod  *Module
	fset *token.FileSet
	std  types.ImporterFrom

	pkgs  map[string]*depPkg // module packages typechecked as dependencies
	stack []string           // in-flight import chain, for cycle diagnostics

	ownedTypes map[types.Object]bool // type names marked //edmlint:owned callback
	ownedFuncs map[types.Object]bool // functions marked //edmlint:owned callback
}

// depPkg memoizes one module package typechecked for import resolution.
type depPkg struct {
	pkg *types.Package
	err error
}

// noCgo pins the build context to CgoEnabled=false once per process: the
// source importer then resolves packages like net through their pure-Go
// fallbacks, independent of whether the host has a C toolchain, and
// build-constraint matching stays deterministic.
var noCgo sync.Once

// NewWorld builds the typed loader state for one module.
func NewWorld(mod *Module) *World {
	noCgo.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &World{
		mod:        mod,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*depPkg),
		ownedTypes: make(map[types.Object]bool),
		ownedFuncs: make(map[types.Object]bool),
	}
}

// Import implements types.Importer.
func (w *World) Import(path string) (*types.Package, error) {
	return w.ImportFrom(path, ".", 0)
}

// ImportFrom implements types.ImporterFrom, splitting module-internal paths
// (resolved from source under the module root) from everything else (the
// standard library, via the source importer).
func (w *World) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == w.mod.Path || strings.HasPrefix(path, w.mod.Path+"/") {
		return w.modulePkg(path)
	}
	if w.std == nil {
		return nil, fmt.Errorf("no source importer for %q", path)
	}
	return w.std.ImportFrom(path, dir, mode)
}

// modulePkg typechecks a module-internal import path from its non-test
// sources, memoized. Soft type errors inside a dependency do not fail the
// import: the returned package is as complete as the checker could make it.
func (w *World) modulePkg(path string) (*types.Package, error) {
	if d, ok := w.pkgs[path]; ok {
		return d.pkg, d.err
	}
	for _, s := range w.stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	w.stack = append(w.stack, path)
	defer func() { w.stack = w.stack[:len(w.stack)-1] }()

	rel := strings.TrimPrefix(path, w.mod.Path)
	dir := filepath.Join(w.mod.Dir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	files, err := w.parseDir(dir, false)
	if err == nil && len(files) == 0 {
		err = fmt.Errorf("no buildable Go files in %s", dir)
	}
	if err != nil {
		w.pkgs[path] = &depPkg{err: err}
		return nil, err
	}
	pkg, _, _ := w.typeCheck(path, files)
	d := &depPkg{pkg: pkg}
	if pkg == nil {
		d.err = fmt.Errorf("typecheck of %s produced no package", path)
	}
	w.pkgs[path] = d
	return d.pkg, d.err
}

// parseDir parses the directory's buildable .go files into the shared
// FileSet. Files excluded by build constraints for the current platform are
// skipped, matching what the compiler would build here.
func (w *World) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err == nil && !ok {
			continue
		}
		f, err := parser.ParseFile(w.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs go/types over one file group, tolerantly: soft errors are
// collected, not fatal, so analyzers see as much type information as the
// checker could recover. The group's //edmlint:owned annotations are
// registered as a side effect.
func (w *World) typeCheck(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer:    w,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, w.fset, files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	w.scanOwned(files, info)
	return pkg, info, errs
}

// scanOwned registers //edmlint:owned callback annotations on type and
// function declarations, keyed by their type-checked objects.
func (w *World) scanOwned(files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasOwnedDirective(d.Doc) {
					if obj := info.Defs[d.Name]; obj != nil {
						w.ownedFuncs[obj] = true
					}
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				declOwned := hasOwnedDirective(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declOwned || hasOwnedDirective(ts.Doc) {
						if obj := info.Defs[ts.Name]; obj != nil {
							w.ownedTypes[obj] = true
						}
					}
				}
			}
		}
	}
}

// hasOwnedDirective reports whether a doc comment carries a well-formed
// //edmlint:owned callback directive.
func hasOwnedDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := directiveText(c.Text)
		if !ok {
			continue
		}
		verb, rest := splitWord(text)
		if verb != "owned" {
			continue
		}
		if scope, _ := splitWord(rest); scope == ownedScopeCallback {
			return true
		}
	}
	return false
}

// OwnedType reports whether t is — or points or slices into — a named type
// annotated //edmlint:owned callback.
func (w *World) OwnedType(t types.Type) bool {
	for t != nil {
		t = types.Unalias(t)
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			return w.ownedTypes[u.Obj()]
		default:
			return false
		}
	}
	return false
}

// OwnedFunc reports whether obj is a function annotated //edmlint:owned
// callback: function literals passed to it receive callback-scoped
// arguments.
func (w *World) OwnedFunc(obj types.Object) bool {
	return obj != nil && w.ownedFuncs[obj]
}

// hasOwned reports whether any owned annotations exist module-wide, letting
// pooledescape stand down cheaply on unannotated modules.
func (w *World) hasOwned() bool {
	return len(w.ownedTypes) > 0 || len(w.ownedFuncs) > 0
}

// aliasing reports whether values of t can alias heap memory: holding a
// copy of such a value can retain callback-scoped storage. Basic types and
// strings are safe to copy anywhere.
func aliasing(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasing(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return aliasing(u.Elem())
	default:
		return false
	}
}
