package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// perCallTimers are the time functions that allocate a runtime timer per
// invocation. On a path that runs once per message, each of these is one
// heap object plus one runtime.timers entry per op.
var perCallTimers = map[string]bool{
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"After": true, "Tick": true,
}

// registryLookups are the telemetry registry's string-keyed lookup methods.
// The lookups take a mutex and hash a name — setup-time work. The atomic
// operations on the metrics they return (Inc, Add, Observe, Set) are
// hot-path-safe; the rule is: register once, hold the pointer, update atomics
// per op.
var registryLookups = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

// telemetryPath is the metrics package whose registry lookups are flagged on
// hot paths.
const telemetryPath = "repro/internal/telemetry"

// Hotpath flags allocation- and syscall-per-op patterns in functions whose
// doc comment carries //edmlint:hotpath. The patterns are the ones that have
// actually shown up in this repo's per-message paths:
//
//   - fmt.* calls (interface boxing + formatting per op) — exempt inside a
//     return statement, where they build cold-path errors;
//   - &T{...} composite literals, which escape to the heap when the pointer
//     outlives the frame;
//   - make(map/chan) and make([]T, 0) with no useful capacity;
//   - append([]T(nil), src...) defensive copies;
//   - per-call timers (time.NewTimer and friends);
//   - telemetry registry lookups (Counter/Gauge/Histogram by name) in files
//     importing repro/internal/telemetry: string-keyed map lookups behind a
//     mutex per op. Pre-register the metric and hold the pointer — the
//     atomic Inc/Add/Observe/Set calls on held metrics are hot-path-safe
//     and are deliberately not flagged.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation/syscall-per-op patterns in //edmlint:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(p *Package, d *Directives) []Finding {
	var out []Finding
	for _, f := range p.Files {
		fmtName := importName(f, "fmt")
		timeName := importName(f, "time")
		hasTelemetry := importName(f, telemetryPath) != ""
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !d.Hot(fn) {
				continue
			}
			out = append(out, checkHot(p, fn, fmtName, timeName, hasTelemetry)...)
		}
	}
	return out
}

// isRegistryLookup resolves a method call to the telemetry registry's
// string-keyed lookups through the type information, so a renamed import or
// a registry reached through a field chain is still caught, and an
// unrelated type's Counter method is not.
func isRegistryLookup(p *Package, sel *ast.SelectorExpr) bool {
	fn, ok := p.selObj(sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == telemetryPath &&
		registryLookups[fn.Name()]
}

// span is a position range, used to mark return statements so error
// formatting on the way out is not flagged.
type span struct{ from, to token.Pos }

func checkHot(p *Package, fn *ast.FuncDecl, fmtName, timeName string, hasTelemetry bool) []Finding {
	var returns []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, span{r.Pos(), r.End()})
		}
		return true
	})
	inReturn := func(pos token.Pos) bool {
		for _, s := range returns {
			if pos >= s.from && pos <= s.to {
				return true
			}
		}
		return false
	}

	finding := func(pos token.Pos, format string, args ...any) Finding {
		return Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "hotpath",
			Message:  fmt.Sprintf(format, args...) + " in hot path " + fn.Name.Name,
		}
	}

	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					out = append(out, finding(node.Pos(), "&composite literal escapes to the heap"))
				}
			}
		case *ast.CallExpr:
			sel, isSel := node.Fun.(*ast.SelectorExpr)
			if isSel {
				// Registry lookups hash a metric name behind a mutex on
				// every call; the receiver can be any expression (a field
				// chain, a package-level registry). With type information
				// the method is resolved to the telemetry package exactly;
				// without it, match on name and arity once the file imports
				// the telemetry package. Atomic updates on held metric
				// pointers (Inc, Add, Observe, Set) stay unflagged.
				registryHit := registryLookups[sel.Sel.Name] && len(node.Args) == 1
				if p.Info != nil {
					registryHit = registryHit && isRegistryLookup(p, sel)
				} else {
					registryHit = registryHit && hasTelemetry
				}
				if registryHit {
					out = append(out, finding(node.Pos(),
						"telemetry registry lookup %s(name) per op; register once and hold the metric pointer", sel.Sel.Name))
				}
				// fmt and time resolve through the import binding when types
				// are available (robust to renamed imports and shadowing),
				// by local import name otherwise.
				isFmt, isTime := false, false
				if p.Info != nil {
					isFmt = p.isPkgIdent(sel.X, "fmt")
					isTime = p.isPkgIdent(sel.X, "time")
				} else if id, ok := sel.X.(*ast.Ident); ok {
					isFmt = fmtName != "" && id.Name == fmtName
					isTime = timeName != "" && id.Name == timeName
				}
				if isFmt && !inReturn(node.Pos()) {
					out = append(out, finding(node.Pos(), "fmt.%s allocates per op", sel.Sel.Name))
				}
				if isTime && perCallTimers[sel.Sel.Name] {
					out = append(out, finding(node.Pos(), "time.%s allocates a timer per op", sel.Sel.Name))
				}
				return true
			}
			id, ok := node.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "make":
				out = append(out, checkMake(p, fn, node)...)
			case "append":
				// append([]T(nil), src...): a fresh defensive copy per call.
				if len(node.Args) >= 2 {
					if conv, ok := node.Args[0].(*ast.CallExpr); ok && len(conv.Args) == 1 {
						if lit, ok := conv.Args[0].(*ast.Ident); ok && lit.Name == "nil" {
							if _, isArr := conv.Fun.(*ast.ArrayType); isArr {
								out = append(out, finding(node.Pos(), "append([]T(nil), ...) copies per op"))
							}
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// checkMake flags make calls that allocate with no useful capacity: maps and
// channels built fresh per op, and zero-length zero-cap slices that will grow
// by reallocation.
func checkMake(p *Package, fn *ast.FuncDecl, call *ast.CallExpr) []Finding {
	if len(call.Args) == 0 {
		return nil
	}
	f := func(format string) []Finding {
		return []Finding{{
			Pos:      p.Fset.Position(call.Pos()),
			Analyzer: "hotpath",
			Message:  format + " in hot path " + fn.Name.Name,
		}}
	}
	switch call.Args[0].(type) {
	case *ast.MapType:
		if len(call.Args) == 1 {
			return f("make(map) without size hint allocates per op")
		}
	case *ast.ChanType:
		if len(call.Args) == 1 {
			return f("make(chan) per op; reuse a channel or pool")
		}
	case *ast.ArrayType:
		if len(call.Args) == 2 {
			if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
				return f("make([]T, 0) without capacity grows by reallocation")
			}
		}
	}
	return nil
}
