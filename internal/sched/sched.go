// Package sched implements EDM's centralized in-network memory-traffic
// scheduler (§3.1): a priority-augmented Parallel Iterative Matching (PIM)
// engine that dynamically reserves bandwidth between compute and memory
// nodes by admitting at most one sender per receiver at a time, creating
// virtual circuits with zero switch queuing while keeping the matching
// maximal (near-optimal bandwidth utilization).
//
// The scheduler is shared by the block-level testbed fabric (internal/edm)
// and the large-scale message-level simulator (internal/netsim).
package sched

import (
	"errors"
	"fmt"

	"repro/internal/hwsim"
	"repro/internal/sim"
)

// Policy selects the priority assignment for conflict resolution (§3.1.1
// property 4).
type Policy int

const (
	// SRPT prioritizes by remaining bytes; optimal for heavy-tailed
	// workloads and the paper's default for the §4.3 evaluation. To
	// preserve in-order delivery it is applied only across messages of
	// different source-destination pairs; within a pair messages are
	// served in notification order (§3.1.1 property 5). It is the zero
	// value so that zero-configured schedulers match the paper.
	SRPT Policy = iota
	// FCFS prioritizes by notification time; optimal for light-tailed
	// workloads.
	FCFS
)

// String names the policy.
func (p Policy) String() string {
	if p == SRPT {
		return "SRPT"
	}
	return "FCFS"
}

// Config parameterizes the scheduler.
type Config struct {
	// Ports is N, the number of switch ports.
	Ports int
	// ChunkBytes is c, the maximum bytes granted at once. The paper sets
	// it so the chunk's transmission time covers one maximal matching
	// (§3.1.3): 128 B minimum for a 512x100G switch, 256 B in simulations.
	ChunkBytes int64
	// LinkBandwidth is B, used for the l/B busy-release optimization.
	LinkBandwidth sim.Gbps
	// ClockPeriod is the scheduler pipeline clock (333 ps at the 3 GHz
	// ASIC synthesis; 2.56 ns on the 25 GbE FPGA prototype).
	ClockPeriod sim.Time
	// Policy selects FCFS or SRPT.
	Policy Policy
	// MaxActivePerPair is X, the per source-destination notification bound
	// (paper finds X=3 best). Notify returns ErrPairLimit beyond it.
	MaxActivePerPair int
	// MaxIterations caps PIM iterations per matching round; 0 means iterate
	// to a maximal matching (the paper's behaviour, ~log N iterations on
	// average). Values >0 are used by the ablation benchmarks.
	MaxIterations int
	// ChunkTime, if set, overrides the busy-release duration for a granted
	// chunk of l bytes. Callers whose wire format adds framing (e.g. EDM's
	// 66-bit blocks) use it so grants are paced at the true line occupancy;
	// the default is TransmissionTime(l, LinkBandwidth).
	ChunkTime func(l int64) sim.Time
}

// DefaultConfig mirrors the paper's simulation parameters (§4.3).
func DefaultConfig(ports int) Config {
	return Config{
		Ports:            ports,
		ChunkBytes:       256,
		LinkBandwidth:    100,
		ClockPeriod:      333 * sim.Picosecond,
		Policy:           SRPT,
		MaxActivePerPair: 3,
	}
}

// IterationCycles is the pipeline depth of one PIM iteration: one cycle of
// parallel notification-queue peeks, one cycle of priority-encoder
// arbitration per source, one cycle to commit busy bits (§3.1.2).
const IterationCycles = 3

// MsgRef identifies a message awaiting scheduling.
type MsgRef struct {
	// Src and Dst are switch ports: the sender and receiver of the data
	// message (for an RRES, Src is the memory node).
	Src, Dst int
	// ID distinguishes messages between the same pair (8 bits on the wire).
	ID uint64
	// Size is the total bytes to move.
	Size int64
	// Tag is opaque caller state, e.g. the buffered RREQ that the switch
	// forwards to the memory node as the implicit first grant.
	Tag any
}

// Grant is one scheduling decision: permission to send Chunk bytes of the
// referenced message starting at Offset.
type Grant struct {
	MsgRef
	Offset int64
	Chunk  int64
	// First marks the message's first grant (for RRES messages this is the
	// moment the buffered RREQ is released toward the memory node).
	First bool
	// Final marks the grant that exhausts the message.
	Final bool
	// Iteration records which PIM iteration of the round produced the
	// grant (1-based), for latency accounting and tests.
	Iteration int
}

// Scheduler errors.
var (
	ErrPairLimit = errors.New("sched: per-pair active notification limit exceeded")
	ErrBadRef    = errors.New("sched: invalid message reference")
	ErrDupID     = errors.New("sched: duplicate message id for pair")
)

type message struct {
	MsgRef
	remaining  int64
	granted    int64
	notifyTime sim.Time
	enqueued   bool // currently the head of its pair FIFO, present in queues[dst]
}

type pairKey struct{ src, dst int }

// Scheduler is the central PIM scheduler. It is event-driven: notifications
// and port releases trigger matching rounds on the provided engine. Not
// safe for concurrent use (the engine is single-threaded).
type Scheduler struct {
	cfg    Config
	engine *sim.Engine

	// OnGrant delivers each grant at its issue time. The caller models
	// grant propagation to the sender.
	OnGrant func(Grant)

	queues    []*hwsim.OrderedList[*message] // per destination port
	srcArrays []*hwsim.SortedArray           // per source port
	busySrc   []bool
	busyDst   []bool
	pairs     map[pairKey][]*message

	roundPending bool

	// statistics
	grantsIssued   uint64
	notifies       uint64
	totalIters     uint64
	rounds         uint64
	maxQueueLen    int
	activeMessages int
}

// New returns a scheduler bound to the engine.
func New(engine *sim.Engine, cfg Config) *Scheduler {
	if cfg.Ports <= 0 || cfg.ChunkBytes <= 0 || cfg.LinkBandwidth <= 0 || cfg.ClockPeriod <= 0 {
		panic("sched: invalid config")
	}
	if cfg.MaxActivePerPair <= 0 {
		cfg.MaxActivePerPair = 3
	}
	s := &Scheduler{
		cfg:       cfg,
		engine:    engine,
		queues:    make([]*hwsim.OrderedList[*message], cfg.Ports),
		srcArrays: make([]*hwsim.SortedArray, cfg.Ports),
		busySrc:   make([]bool, cfg.Ports),
		busyDst:   make([]bool, cfg.Ports),
		pairs:     make(map[pairKey][]*message),
	}
	for i := range s.queues {
		s.queues[i] = &hwsim.OrderedList[*message]{}
		s.srcArrays[i] = hwsim.NewSortedArray(cfg.Ports)
	}
	return s
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Stats reports grants issued, notifications accepted, matching rounds run
// and total PIM iterations across them.
func (s *Scheduler) Stats() (grants, notifies, rounds, iters uint64) {
	return s.grantsIssued, s.notifies, s.rounds, s.totalIters
}

// Active reports messages currently known to the scheduler.
func (s *Scheduler) Active() int { return s.activeMessages }

// QueueLen reports the notification-queue length for destination port d.
func (s *Scheduler) QueueLen(d int) int { return s.queues[d].Len() }

// MatchingLatency reports the average time to form one maximal matching:
// 3*log2(N) cycles (§3.1.3).
func (s *Scheduler) MatchingLatency() sim.Time {
	return sim.Time(IterationCycles*log2ceil(s.cfg.Ports)) * s.cfg.ClockPeriod
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// priority returns the ordering key for m (lower = higher priority).
func (s *Scheduler) priority(m *message) int64 {
	if s.cfg.Policy == SRPT {
		return m.remaining
	}
	return int64(m.notifyTime)
}

// Notify registers a demand notification: an explicit /N/ for a WREQ, or an
// intercepted RREQ/RMWREQ standing in for its RRES. It returns ErrPairLimit
// when the sender exceeded its X active notifications for this pair.
func (s *Scheduler) Notify(ref MsgRef) error {
	if ref.Src < 0 || ref.Src >= s.cfg.Ports || ref.Dst < 0 || ref.Dst >= s.cfg.Ports {
		return fmt.Errorf("%w: src=%d dst=%d", ErrBadRef, ref.Src, ref.Dst)
	}
	if ref.Src == ref.Dst {
		return fmt.Errorf("%w: src == dst == %d", ErrBadRef, ref.Src)
	}
	if ref.Size <= 0 {
		return fmt.Errorf("%w: size=%d", ErrBadRef, ref.Size)
	}
	key := pairKey{ref.Src, ref.Dst}
	fifo := s.pairs[key]
	if len(fifo) >= s.cfg.MaxActivePerPair {
		return fmt.Errorf("%w: %d active for %d->%d", ErrPairLimit, len(fifo), ref.Src, ref.Dst)
	}
	for _, m := range fifo {
		if m.ID == ref.ID {
			return fmt.Errorf("%w: id=%d pair %d->%d", ErrDupID, ref.ID, ref.Src, ref.Dst)
		}
	}
	m := &message{MsgRef: ref, remaining: ref.Size, notifyTime: s.engine.Now()}
	s.pairs[key] = append(fifo, m)
	s.activeMessages++
	s.notifies++
	if len(s.pairs[key]) == 1 {
		s.enqueueHead(m)
	}
	s.kick()
	return nil
}

// enqueueHead makes m (the head of its pair FIFO) visible to the matching.
// Only pair heads are eligible, which restricts SRPT to inter-pair
// competition and guarantees in-order delivery within a pair.
func (s *Scheduler) enqueueHead(m *message) {
	m.enqueued = true
	p := s.priority(m)
	s.queues[m.Dst].Insert(p, m)
	s.srcArrays[m.Src].Update(m.Dst, s.bestKeyFor(m.Src, m.Dst))
	if l := s.queues[m.Dst].Len(); l > s.maxQueueLen {
		s.maxQueueLen = l
	}
}

// bestKeyFor returns the priority of the best enqueued message from src to
// dst, for maintaining the per-source sorted arrays.
func (s *Scheduler) bestKeyFor(src, dst int) int64 {
	e, ok := s.queues[dst].PeekMinWhere(func(m *message) bool { return m.Src == src })
	if !ok {
		return 1 << 62
	}
	return e.Key
}

// kick coalesces round requests: at most one matching round is pending at a
// time, scheduled one iteration-pipeline delay ahead.
func (s *Scheduler) kick() {
	if s.roundPending {
		return
	}
	s.roundPending = true
	s.engine.After(0, s.round)
}

// round runs PIM iterations until the matching is maximal (or the
// configured iteration cap), issuing grants with the pipeline's cycle
// latency applied.
func (s *Scheduler) round() {
	s.roundPending = false
	s.rounds++
	iter := 0
	for {
		if s.cfg.MaxIterations > 0 && iter >= s.cfg.MaxIterations {
			return
		}
		// Cycle 1: every free destination port peeks the highest-priority
		// eligible message in its notification queue, in parallel.
		reqBySrc := make([][]*message, s.cfg.Ports)
		any := false
		for d := 0; d < s.cfg.Ports; d++ {
			if s.busyDst[d] || s.queues[d].Len() == 0 {
				continue
			}
			e, ok := s.queues[d].PeekMinWhere(func(m *message) bool { return !s.busySrc[m.Src] })
			if !ok {
				continue
			}
			m := e.Value
			reqBySrc[m.Src] = append(reqBySrc[m.Src], m)
			any = true
		}
		if !any {
			return
		}
		iter++
		s.totalIters++
		// Cycle 2: every source port with requests arbitrates with its
		// priority encoder over the sorted destination array.
		for src := 0; src < s.cfg.Ports; src++ {
			reqs := reqBySrc[src]
			if len(reqs) == 0 {
				continue
			}
			winner := reqs[0]
			if len(reqs) > 1 {
				set := make(map[int]bool, len(reqs))
				byDst := make(map[int]*message, len(reqs))
				for _, m := range reqs {
					set[m.Dst] = true
					byDst[m.Dst] = m
				}
				if d, ok := s.srcArrays[src].Arbitrate(set); ok {
					winner = byDst[d]
				}
			}
			// Cycle 3: commit the match and issue the grant.
			s.issue(winner, iter)
		}
	}
}

// issue grants the next chunk of m and marks its ports busy until the chunk
// would have been serialized (the l/B early-release optimization of
// §3.1.1 step 7).
func (s *Scheduler) issue(m *message, iter int) {
	l := s.cfg.ChunkBytes
	if m.remaining < l {
		l = m.remaining
	}
	g := Grant{
		MsgRef:    m.MsgRef,
		Offset:    m.granted,
		Chunk:     l,
		First:     m.granted == 0,
		Final:     m.remaining == l,
		Iteration: iter,
	}
	m.granted += l
	m.remaining -= l
	s.busySrc[m.Src] = true
	s.busyDst[m.Dst] = true
	s.grantsIssued++

	issueDelay := sim.Time(IterationCycles*iter) * s.cfg.ClockPeriod
	src, dst := m.Src, m.Dst
	if s.OnGrant != nil {
		gg := g
		s.engine.After(issueDelay, func() { s.OnGrant(gg) })
	}
	chunkTime := sim.TransmissionTime(int(l), s.cfg.LinkBandwidth)
	if s.cfg.ChunkTime != nil {
		chunkTime = s.cfg.ChunkTime(l)
	}
	release := issueDelay + chunkTime
	s.engine.After(release, func() {
		s.busySrc[src] = false
		s.busyDst[dst] = false
		s.kick()
	})

	if g.Final {
		s.retire(m)
	} else if s.cfg.Policy == SRPT {
		// Remaining bytes changed: reposition in the destination queue and
		// refresh the source array (a delete+insert pipeline in hardware).
		s.queues[m.Dst].UpdateKey(func(x *message) bool { return x == m }, s.priority(m))
		s.srcArrays[m.Src].Update(m.Dst, s.bestKeyFor(m.Src, m.Dst))
	}
}

// retire removes a fully granted message and promotes the next message of
// its pair, if any.
func (s *Scheduler) retire(m *message) {
	s.queues[m.Dst].DeleteWhere(func(x *message) bool { return x == m })
	m.enqueued = false
	key := pairKey{m.Src, m.Dst}
	fifo := s.pairs[key]
	if len(fifo) == 0 || fifo[0] != m {
		panic("sched: retired message is not its pair head")
	}
	fifo = fifo[1:]
	s.activeMessages--
	if len(fifo) == 0 {
		delete(s.pairs, key)
		s.srcArrays[m.Src].Remove(m.Dst)
		return
	}
	s.pairs[key] = fifo
	s.enqueueHead(fifo[0])
}
