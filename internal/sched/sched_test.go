package sched

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func testCfg(ports int) Config {
	c := DefaultConfig(ports)
	c.ChunkBytes = 64
	return c
}

// collector gathers grants in issue order.
type collector struct {
	grants []Grant
}

func newSched(t *testing.T, cfg Config) (*sim.Engine, *Scheduler, *collector) {
	t.Helper()
	e := sim.NewEngine()
	s := New(e, cfg)
	c := &collector{}
	s.OnGrant = func(g Grant) { c.grants = append(c.grants, g) }
	return e, s, c
}

func TestSingleMessageFullyGranted(t *testing.T) {
	e, s, c := newSched(t, testCfg(4))
	if err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: 1, Size: 200}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// 200 B at 64 B chunks = 4 grants (64+64+64+8).
	if len(c.grants) != 4 {
		t.Fatalf("grants = %d, want 4", len(c.grants))
	}
	var total int64
	for i, g := range c.grants {
		total += g.Chunk
		if g.Offset != int64(i)*64 {
			t.Errorf("grant %d offset %d", i, g.Offset)
		}
	}
	if total != 200 {
		t.Fatalf("granted %d bytes, want 200", total)
	}
	if !c.grants[0].First || c.grants[0].Final {
		t.Error("first grant flags wrong")
	}
	last := c.grants[len(c.grants)-1]
	if !last.Final || last.Chunk != 8 {
		t.Errorf("final grant = %+v", last)
	}
	if s.Active() != 0 {
		t.Fatalf("Active = %d after drain", s.Active())
	}
}

func TestGrantsPacedAtLineRate(t *testing.T) {
	// Consecutive grants for one message must be spaced by l/B: the
	// early-release optimization keeps the link busy, no faster, no slower.
	e, s, _ := newSched(t, testCfg(4))
	var times []sim.Time
	s.OnGrant = func(g Grant) { times = append(times, e.Now()) }
	if err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: 1, Size: 64 * 10}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(times) != 10 {
		t.Fatalf("grants = %d", len(times))
	}
	want := sim.TransmissionTime(64, 100) // 5.12ns
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		// Allow the iteration pipeline latency on top of l/B.
		if gap < want || gap > want+10*sim.Nanosecond {
			t.Fatalf("grant gap %d = %v, want ~%v", i, gap, want)
		}
	}
}

func TestMatchingIsAMatching(t *testing.T) {
	// With many overlapping demands, at any instant at most one in-flight
	// chunk per source and per destination.
	cfg := testCfg(8)
	e := sim.NewEngine()
	s := New(e, cfg)
	type slot struct{ src, dst int }
	inflight := map[int]bool{} // port -> busy as src
	inflightDst := map[int]bool{}
	s.OnGrant = func(g Grant) {
		if inflight[g.Src] || inflightDst[g.Dst] {
			t.Errorf("overlapping grant for src %d dst %d", g.Src, g.Dst)
		}
		inflight[g.Src] = true
		inflightDst[g.Dst] = true
		e.After(sim.TransmissionTime(int(g.Chunk), cfg.LinkBandwidth), func() {
			delete(inflight, g.Src)
			delete(inflightDst, g.Dst)
		})
		_ = slot{}
	}
	rng := workload.NewPartition(1).Stream("sched-matching")
	id := uint64(0)
	for i := 0; i < 40; i++ {
		src := rng.Intn(8)
		dst := rng.Intn(8)
		if src == dst {
			continue
		}
		id++
		// Ignore pair-limit rejections; senders would hold back.
		_ = s.Notify(MsgRef{Src: src, Dst: dst, ID: id, Size: int64(64 * (1 + rng.Intn(5)))})
	}
	e.Run()
}

func TestMaximalMatchingParallelism(t *testing.T) {
	// Four disjoint pairs must all be granted in the same round (PIM runs
	// per-destination in parallel), not serialized.
	e, s, c := newSched(t, testCfg(8))
	for i := 0; i < 4; i++ {
		if err := s.Notify(MsgRef{Src: i, Dst: i + 4, ID: uint64(i), Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if len(c.grants) != 4 {
		t.Fatalf("grants = %d", len(c.grants))
	}
	// All four must issue within one round's iterations, i.e. within
	// 3*log2(8)*clock of each other — they are disjoint so one iteration.
	_, _, rounds, iters := s.Stats()
	if rounds < 1 || iters < 1 {
		t.Fatalf("rounds=%d iters=%d", rounds, iters)
	}
	if iters != 1 {
		t.Fatalf("disjoint pairs took %d iterations, want 1", iters)
	}
}

func TestPIMIterationsResolveConflicts(t *testing.T) {
	// Three destinations all want the same source: needs 3 iterations
	// over time as the source frees, but within one round only one wins.
	e, s, c := newSched(t, testCfg(8))
	for d := 1; d <= 3; d++ {
		if err := s.Notify(MsgRef{Src: 0, Dst: d, ID: uint64(d), Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if len(c.grants) != 3 {
		t.Fatalf("grants = %d", len(c.grants))
	}
	// Grants must be serialized by the source's busy periods.
	for i := 1; i < len(c.grants); i++ {
		if c.grants[i].Src != 0 {
			t.Fatal("unexpected source")
		}
	}
}

func TestFCFSOrder(t *testing.T) {
	cfg := testCfg(8)
	cfg.Policy = FCFS
	e, s, c := newSched(t, cfg)
	// Two messages to the same destination from different sources,
	// notified at different times: FCFS must grant in notification order
	// even though the second is shorter.
	e.At(1*sim.Nanosecond, func() {
		_ = s.Notify(MsgRef{Src: 0, Dst: 2, ID: 1, Size: 640})
	})
	e.At(2*sim.Nanosecond, func() {
		_ = s.Notify(MsgRef{Src: 1, Dst: 2, ID: 2, Size: 64})
	})
	e.Run()
	if c.grants[0].Src != 0 {
		t.Fatalf("FCFS granted src %d first", c.grants[0].Src)
	}
	// The long message runs to completion before the short one starts
	// (destination busy the whole time, single chunk in flight at a time,
	// FCFS never reorders).
	var seen1 bool
	for _, g := range c.grants {
		if g.Src == 1 {
			seen1 = true
		}
		if seen1 && g.Src == 0 {
			t.Fatal("FCFS interleaved a later arrival before completion")
		}
	}
}

func TestSRPTPrefersShort(t *testing.T) {
	cfg := testCfg(8)
	cfg.Policy = SRPT
	e, s, c := newSched(t, cfg)
	// Notify the long message first, short second, at the same instant.
	_ = s.Notify(MsgRef{Src: 0, Dst: 2, ID: 1, Size: 6400})
	_ = s.Notify(MsgRef{Src: 1, Dst: 2, ID: 2, Size: 64})
	e.Run()
	// The short message must finish before the long one.
	finish := map[uint64]int{}
	for i, g := range c.grants {
		if g.Final {
			finish[g.ID] = i
		}
	}
	if finish[2] > finish[1] {
		t.Fatalf("SRPT finished long before short: %v", finish)
	}
}

func TestInOrderWithinPair(t *testing.T) {
	// Under SRPT, a shorter later message between the SAME pair must not
	// overtake the earlier longer one (§3.1.1 property 5).
	cfg := testCfg(4)
	cfg.Policy = SRPT
	e, s, c := newSched(t, cfg)
	_ = s.Notify(MsgRef{Src: 0, Dst: 1, ID: 1, Size: 640})
	_ = s.Notify(MsgRef{Src: 0, Dst: 1, ID: 2, Size: 64})
	e.Run()
	firstOf2 := -1
	finalOf1 := -1
	for i, g := range c.grants {
		if g.ID == 2 && firstOf2 < 0 {
			firstOf2 = i
		}
		if g.ID == 1 && g.Final {
			finalOf1 = i
		}
	}
	if firstOf2 < finalOf1 {
		t.Fatalf("message 2 started (grant %d) before message 1 finished (grant %d)", firstOf2, finalOf1)
	}
}

func TestPairLimit(t *testing.T) {
	cfg := testCfg(4)
	cfg.MaxActivePerPair = 3
	e, s, _ := newSched(t, cfg)
	_ = e
	for i := 0; i < 3; i++ {
		if err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: uint64(i), Size: 64}); err != nil {
			t.Fatalf("notify %d: %v", i, err)
		}
	}
	err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: 99, Size: 64})
	if !errors.Is(err, ErrPairLimit) {
		t.Fatalf("4th notify: %v", err)
	}
	// A different pair is unaffected.
	if err := s.Notify(MsgRef{Src: 0, Dst: 2, ID: 100, Size: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyValidation(t *testing.T) {
	_, s, _ := newSched(t, testCfg(4))
	cases := []MsgRef{
		{Src: -1, Dst: 1, Size: 64},
		{Src: 0, Dst: 4, Size: 64},
		{Src: 2, Dst: 2, Size: 64},
		{Src: 0, Dst: 1, Size: 0},
	}
	for _, ref := range cases {
		if err := s.Notify(ref); !errors.Is(err, ErrBadRef) {
			t.Errorf("Notify(%+v) = %v", ref, err)
		}
	}
	if err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: 7, Size: 64 * 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: 7, Size: 64}); !errors.Is(err, ErrDupID) {
		t.Errorf("duplicate id: %v", err)
	}
}

func TestMatchingLatency(t *testing.T) {
	cfg := DefaultConfig(512)
	s := New(sim.NewEngine(), cfg)
	// Paper §3.1.3: 3*log2(512) = 27 cycles at 3 GHz ≈ 9 ns.
	got := s.MatchingLatency()
	if got != sim.Time(27)*cfg.ClockPeriod {
		t.Fatalf("MatchingLatency = %v", got)
	}
	if got < 8*sim.Nanosecond || got > 10*sim.Nanosecond {
		t.Fatalf("512-port matching latency %v outside ~9ns", got)
	}
}

func TestFullLoadUtilization(t *testing.T) {
	// A saturated permutation workload must keep every link ~fully used:
	// total granted bytes per unit time ≈ N * B. We check the schedule
	// completes within ~1.1x the ideal serialization time.
	cfg := testCfg(8)
	e, s, c := newSched(t, cfg)
	const msgSize = 640
	const perPair = 5
	for i := 0; i < 8; i++ {
		dst := (i + 1) % 8
		for k := 0; k < perPair; k++ {
			// Stay within the pair limit by chaining IDs; the limit is 3,
			// so feed two now and the rest as grants complete.
			if k < 3 {
				_ = s.Notify(MsgRef{Src: i, Dst: dst, ID: uint64(k), Size: msgSize})
			}
		}
	}
	e.Run()
	ideal := sim.TransmissionTime(msgSize*3, cfg.LinkBandwidth)
	if e.Now() > ideal+ideal/5 {
		t.Fatalf("permutation schedule took %v, ideal %v", e.Now(), ideal)
	}
	var bytes int64
	for _, g := range c.grants {
		bytes += g.Chunk
	}
	if bytes != msgSize*3*8 {
		t.Fatalf("granted %d bytes", bytes)
	}
}

func TestIterationCap(t *testing.T) {
	// With MaxIterations=1 and two destinations contending for distinct
	// sources, matching still completes but may take more rounds.
	cfg := testCfg(8)
	cfg.MaxIterations = 1
	e, s, c := newSched(t, cfg)
	for d := 1; d <= 3; d++ {
		_ = s.Notify(MsgRef{Src: 0, Dst: d, ID: uint64(d), Size: 64})
	}
	e.Run()
	if len(c.grants) != 3 {
		t.Fatalf("grants = %d under iteration cap", len(c.grants))
	}
}

func TestStatsAndQueueLen(t *testing.T) {
	e, s, _ := newSched(t, testCfg(4))
	_ = s.Notify(MsgRef{Src: 0, Dst: 1, ID: 1, Size: 64})
	_ = s.Notify(MsgRef{Src: 2, Dst: 1, ID: 2, Size: 64})
	if s.QueueLen(1) != 2 {
		t.Fatalf("QueueLen(1) = %d", s.QueueLen(1))
	}
	e.Run()
	grants, notifies, rounds, _ := s.Stats()
	if grants != 2 || notifies != 2 || rounds == 0 {
		t.Fatalf("stats: grants=%d notifies=%d rounds=%d", grants, notifies, rounds)
	}
}

// Property-style test: random workloads always (a) grant every byte exactly
// once, (b) never overlap a port, (c) deliver pairs in order.
func TestRandomWorkloadInvariants(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		rng := workload.NewPartition(seed).Stream("sched-invariants")
		cfg := testCfg(6)
		if seed%2 == 0 {
			cfg.Policy = FCFS
		}
		e := sim.NewEngine()
		s := New(e, cfg)
		granted := map[uint64]int64{}
		sizes := map[uint64]int64{}
		firstGrant := map[uint64]int{}
		finalGrant := map[uint64]int{}
		idx := 0
		s.OnGrant = func(g Grant) {
			granted[g.ID] += g.Chunk
			if g.First {
				firstGrant[g.ID] = idx
			}
			if g.Final {
				finalGrant[g.ID] = idx
			}
			idx++
		}
		id := uint64(0)
		pairSeq := map[pairKey][]uint64{}
		for i := 0; i < 30; i++ {
			src, dst := rng.Intn(6), rng.Intn(6)
			if src == dst {
				continue
			}
			id++
			size := int64(1 + rng.Intn(500))
			at := sim.Time(rng.Intn(100)) * sim.Nanosecond
			ref := MsgRef{Src: src, Dst: dst, ID: id, Size: size}
			myID := id
			e.At(at, func() {
				if err := s.Notify(ref); err == nil {
					sizes[myID] = size
					pairSeq[pairKey{src, dst}] = append(pairSeq[pairKey{src, dst}], myID)
				}
			})
		}
		e.Run()
		for mid, size := range sizes {
			if granted[mid] != size {
				t.Fatalf("seed %d: msg %d granted %d of %d", seed, mid, granted[mid], size)
			}
		}
		for pk, seq := range pairSeq {
			for i := 1; i < len(seq); i++ {
				if firstGrant[seq[i]] < finalGrant[seq[i-1]] {
					t.Fatalf("seed %d pair %v: msg %d started before %d finished",
						seed, pk, seq[i], seq[i-1])
				}
			}
		}
		if s.Active() != 0 {
			t.Fatalf("seed %d: %d messages stuck", seed, s.Active())
		}
	}
}

func TestChunkTimeOverridesPacing(t *testing.T) {
	// With a ChunkTime that doubles the busy period, grants for one
	// message must be spaced twice as far apart.
	cfg := testCfg(4)
	cfg.ChunkTime = func(l int64) sim.Time {
		return 2 * sim.TransmissionTime(int(l), cfg.LinkBandwidth)
	}
	e := sim.NewEngine()
	s := New(e, cfg)
	var times []sim.Time
	s.OnGrant = func(Grant) { times = append(times, e.Now()) }
	if err := s.Notify(MsgRef{Src: 0, Dst: 1, ID: 1, Size: 64 * 4}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(times) != 4 {
		t.Fatalf("grants = %d", len(times))
	}
	want := 2 * sim.TransmissionTime(64, cfg.LinkBandwidth)
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap < want {
			t.Fatalf("gap %d = %v < %v with doubled ChunkTime", i, gap, want)
		}
	}
}

func TestSchedulerStarvationFreedomFCFS(t *testing.T) {
	// Under FCFS, a continuous stream of later-arriving messages must not
	// starve an early one, even when they share its destination.
	cfg := testCfg(8)
	cfg.Policy = FCFS
	e := sim.NewEngine()
	s := New(e, cfg)
	doneFirst := sim.Time(0)
	s.OnGrant = func(g Grant) {
		if g.ID == 0 && g.Final {
			doneFirst = e.Now()
		}
	}
	_ = s.Notify(MsgRef{Src: 0, Dst: 7, ID: 0, Size: 640})
	for i := 1; i <= 6; i++ {
		i := i
		e.At(sim.Time(i)*10*sim.Nanosecond, func() {
			_ = s.Notify(MsgRef{Src: i, Dst: 7, ID: uint64(i), Size: 640})
		})
	}
	e.Run()
	if doneFirst == 0 {
		t.Fatal("first message never finished")
	}
	// It must finish within roughly its own serialization time plus one
	// competitor's worth of interleaving at the destination.
	if doneFirst > 3*sim.TransmissionTime(640, cfg.LinkBandwidth)+sim.Microsecond {
		t.Fatalf("first message finished at %v: starved", doneFirst)
	}
}
