// Package kvstore implements the remote key-value store application of
// §4.2.2: fixed-slot values stored in disaggregated memory, accessed over
// the EDM fabric, with an optional local-DRAM tier for the Figure 7
// local:remote placement sweep. It is the application layer the YCSB
// workloads (Figures 6 and 7) drive.
package kvstore

import (
	"errors"
	"fmt"

	"repro/internal/edm"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config sizes the store.
type Config struct {
	// Slots is the number of keys.
	Slots int
	// SlotBytes is the fixed value size per key. Figure 6 uses 1 KB reads
	// and 100 B writes; the slot must hold the larger.
	SlotBytes int
	// ReadBytes and WriteBytes are the per-operation access sizes (both
	// default to SlotBytes).
	ReadBytes, WriteBytes int
	// LocalSlots places keys [0, LocalSlots) in node-local DRAM; the rest
	// live on the remote memory node (Figure 7's Local:Remote split).
	LocalSlots int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Slots <= 0 || c.SlotBytes <= 0 {
		return fmt.Errorf("kvstore: invalid geometry %+v", *c)
	}
	if c.ReadBytes == 0 {
		c.ReadBytes = c.SlotBytes
	}
	if c.WriteBytes == 0 {
		c.WriteBytes = c.SlotBytes
	}
	if c.ReadBytes > c.SlotBytes || c.WriteBytes > c.SlotBytes {
		return fmt.Errorf("kvstore: access exceeds slot: %+v", *c)
	}
	if c.LocalSlots < 0 || c.LocalSlots > c.Slots {
		return fmt.Errorf("kvstore: local slots %d of %d", c.LocalSlots, c.Slots)
	}
	return nil
}

// Store errors.
var (
	ErrBadKey = errors.New("kvstore: key out of range")
)

// Store is a client handle: key-addressed remote memory with an optional
// local tier.
type Store struct {
	cfg     Config
	fabric  *edm.Fabric
	client  int // compute node port
	memNode int // remote memory node port
	local   *memctl.Controller

	// Stats
	localOps, remoteOps uint64
}

// New builds a store over fabric, serving remote keys from memNode's
// memory. If cfg.LocalSlots > 0 a local DRAM controller must be supplied.
func New(fabric *edm.Fabric, client, memNode int, local *memctl.Controller, cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fabric.Host(memNode).Memory() == nil {
		return nil, fmt.Errorf("kvstore: node %d has no memory attached", memNode)
	}
	if cfg.LocalSlots > 0 && local == nil {
		return nil, fmt.Errorf("kvstore: %d local slots but no local DRAM", cfg.LocalSlots)
	}
	need := uint64(cfg.Slots) * uint64(cfg.SlotBytes)
	if got := fabric.Host(memNode).Memory().Size(); got < need {
		return nil, fmt.Errorf("kvstore: store needs %d bytes, memory node has %d", need, got)
	}
	return &Store{cfg: cfg, fabric: fabric, client: client, memNode: memNode, local: local}, nil
}

// Stats reports local and remote operation counts.
func (s *Store) Stats() (local, remote uint64) { return s.localOps, s.remoteOps }

// IsLocal reports whether key lives in the local tier.
func (s *Store) IsLocal(key int) bool { return key < s.cfg.LocalSlots }

func (s *Store) addr(key int) (uint64, error) {
	if key < 0 || key >= s.cfg.Slots {
		return 0, fmt.Errorf("%w: %d", ErrBadKey, key)
	}
	return uint64(key) * uint64(s.cfg.SlotBytes), nil
}

// Get reads the value for key; cb receives the value bytes.
func (s *Store) Get(key int, cb edm.ReadCallback) error {
	a, err := s.addr(key)
	if err != nil {
		return err
	}
	if s.IsLocal(key) {
		s.localOps++
		data, lat, err := s.local.Read(a, s.cfg.ReadBytes)
		if err != nil {
			return err
		}
		s.fabric.Engine.After(lat, func() { cb(data, nil) })
		return nil
	}
	s.remoteOps++
	s.fabric.Host(s.client).Read(s.memNode, a, s.cfg.ReadBytes, cb)
	return nil
}

// Put writes value to key; cb fires when the write is durable in DRAM.
func (s *Store) Put(key int, value []byte, cb edm.WriteCallback) error {
	a, err := s.addr(key)
	if err != nil {
		return err
	}
	if len(value) > s.cfg.SlotBytes {
		return fmt.Errorf("kvstore: value %d bytes exceeds slot %d", len(value), s.cfg.SlotBytes)
	}
	if s.IsLocal(key) {
		s.localOps++
		lat, err := s.local.Write(a, value)
		if err != nil {
			return err
		}
		s.fabric.Engine.After(lat, func() {
			if cb != nil {
				cb(nil)
			}
		})
		return nil
	}
	s.remoteOps++
	s.fabric.Host(s.client).Write(s.memNode, a, value, cb)
	return nil
}

// CompareAndSwap atomically updates an 8-byte word within the key's slot
// (remote keys only), demonstrating EDM's RMWREQ path for synchronization
// primitives.
func (s *Store) CompareAndSwap(key int, offset uint64, expected, newVal uint64, cb edm.ReadCallback) error {
	a, err := s.addr(key)
	if err != nil {
		return err
	}
	if s.IsLocal(key) {
		res, lat, err := s.local.RMW(a+offset, memctl.OpCAS, expected, newVal)
		if err != nil {
			return err
		}
		s.fabric.Engine.After(lat, func() {
			out := make([]byte, 8)
			out[0] = byte(res)
			cb(out, nil)
		})
		return nil
	}
	s.fabric.Host(s.client).RMW(s.memNode, a+offset, memctl.OpCAS, []uint64{expected, newVal}, cb)
	return nil
}

// OpLatency is one completed YCSB operation.
type OpLatency struct {
	Update  bool
	Local   bool
	Latency sim.Time
}

// RunYCSB drives count operations of the given workload through the store,
// back to back (closed loop, one outstanding op), returning per-op
// latencies. This is the measurement loop behind Figure 7.
func (s *Store) RunYCSB(w workload.YCSBWorkload, count int, seed uint64) ([]OpLatency, error) {
	gen := workload.NewYCSB(w, s.cfg.Slots, seed)
	out := make([]OpLatency, 0, count)
	val := make([]byte, s.cfg.WriteBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < count; i++ {
		op := gen.Next()
		start := s.fabric.Engine.Now()
		done := false
		var opErr error
		fin := func(err error) { done, opErr = true, err }
		var err error
		if op.Update {
			err = s.Put(op.Key, val, func(e error) { fin(e) })
		} else {
			err = s.Get(op.Key, func(_ []byte, e error) { fin(e) })
		}
		if err != nil {
			return nil, err
		}
		for !done && s.fabric.Engine.Step() {
		}
		if !done {
			return nil, fmt.Errorf("kvstore: op %d never completed", i)
		}
		if opErr != nil {
			return nil, fmt.Errorf("kvstore: op %d: %w", i, opErr)
		}
		out = append(out, OpLatency{
			Update:  op.Update,
			Local:   s.IsLocal(op.Key),
			Latency: s.fabric.Engine.Now() - start,
		})
	}
	return out, nil
}
