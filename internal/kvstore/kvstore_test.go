package kvstore

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/edm"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newStore(t *testing.T, localSlots int) *Store {
	t.Helper()
	f := edm.New(edm.DefaultConfig(2))
	f.AttachMemory(1, memctl.New(memctl.DefaultConfig()))
	var local *memctl.Controller
	if localSlots > 0 {
		local = memctl.New(memctl.DefaultConfig())
	}
	s, err := New(f, 0, 1, local, Config{
		Slots: 1024, SlotBytes: 1024, ReadBytes: 1024, WriteBytes: 100,
		LocalSlots: localSlots,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func putGetSync(t *testing.T, s *Store, key int, val []byte) []byte {
	t.Helper()
	done := false
	if err := s.Put(key, val, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	for !done && s.fabric.Engine.Step() {
	}
	var got []byte
	done = false
	if err := s.Get(key, func(d []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got, done = d, true
	}); err != nil {
		t.Fatal(err)
	}
	for !done && s.fabric.Engine.Step() {
	}
	return got
}

func TestPutGetRemote(t *testing.T) {
	s := newStore(t, 0)
	val := bytes.Repeat([]byte{0x7e}, 100)
	got := putGetSync(t, s, 42, val)
	if len(got) != 1024 || !bytes.Equal(got[:100], val) {
		t.Fatal("remote value mismatch")
	}
	if l, r := s.Stats(); l != 0 || r != 2 {
		t.Fatalf("stats local=%d remote=%d", l, r)
	}
}

func TestPutGetLocal(t *testing.T) {
	s := newStore(t, 512)
	val := bytes.Repeat([]byte{0x11}, 100)
	got := putGetSync(t, s, 7, val) // key 7 < 512: local
	if !bytes.Equal(got[:100], val) {
		t.Fatal("local value mismatch")
	}
	if l, r := s.Stats(); l != 2 || r != 0 {
		t.Fatalf("stats local=%d remote=%d", l, r)
	}
}

func TestLocalFasterThanRemote(t *testing.T) {
	s := newStore(t, 512)
	eng := s.fabric.Engine
	measure := func(key int) sim.Time {
		start := eng.Now()
		done := false
		if err := s.Get(key, func(_ []byte, err error) { done = true }); err != nil {
			t.Fatal(err)
		}
		for !done && eng.Step() {
		}
		return eng.Now() - start
	}
	local := measure(3)    // < 512
	remote := measure(700) // >= 512
	t.Logf("local=%v remote=%v", local, remote)
	if local >= remote {
		t.Fatalf("local %v not faster than remote %v", local, remote)
	}
	// Local ~ DRAM latency (~82ns + row dynamics); remote adds the fabric.
	if local > 400*sim.Nanosecond {
		t.Fatalf("local access %v too slow", local)
	}
}

func TestCompareAndSwapRemote(t *testing.T) {
	s := newStore(t, 0)
	var res []byte
	done := false
	if err := s.CompareAndSwap(5, 0, 0, 99, func(d []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		res, done = d, true
	}); err != nil {
		t.Fatal(err)
	}
	for !done && s.fabric.Engine.Step() {
	}
	if len(res) != 8 || res[0] != 1 {
		t.Fatalf("CAS result %v", res)
	}
}

func TestKeyValidation(t *testing.T) {
	s := newStore(t, 0)
	if err := s.Get(-1, nil); !errors.Is(err, ErrBadKey) {
		t.Errorf("negative key: %v", err)
	}
	if err := s.Get(1024, nil); !errors.Is(err, ErrBadKey) {
		t.Errorf("overflow key: %v", err)
	}
	if err := s.Put(0, make([]byte, 2048), nil); err == nil {
		t.Error("oversize value accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	f := edm.New(edm.DefaultConfig(2))
	f.AttachMemory(1, memctl.New(memctl.DefaultConfig()))
	if _, err := New(f, 0, 1, nil, Config{Slots: 0, SlotBytes: 64}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := New(f, 0, 1, nil, Config{Slots: 8, SlotBytes: 64, LocalSlots: 4}); err == nil {
		t.Error("local slots without local DRAM accepted")
	}
	if _, err := New(f, 0, 0, nil, Config{Slots: 8, SlotBytes: 64}); err == nil {
		t.Error("memory-less node accepted")
	}
	// Store larger than the memory node.
	if _, err := New(f, 0, 1, nil, Config{Slots: 1 << 22, SlotBytes: 1 << 12}); err == nil {
		t.Error("oversized store accepted")
	}
}

func TestRunYCSBMix(t *testing.T) {
	s := newStore(t, 512) // 50% local
	lats, err := s.RunYCSB(workload.YCSBA, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 200 {
		t.Fatalf("got %d latencies", len(lats))
	}
	var updates, locals int
	for _, l := range lats {
		if l.Latency <= 0 {
			t.Fatal("non-positive latency")
		}
		if l.Update {
			updates++
		}
		if l.Local {
			locals++
		}
	}
	// YCSB-A is 50% updates; zipf keys mean most hits are in the hot (low,
	// local) keys.
	if updates < 60 || updates > 140 {
		t.Fatalf("updates = %d of 200", updates)
	}
	if locals == 0 || locals == 200 {
		t.Fatalf("locals = %d of 200 (tiering broken)", locals)
	}
}

func TestRunYCSBAllRemoteSlower(t *testing.T) {
	remote := newStore(t, 0)
	mixed := newStore(t, 900)
	rl, err := remote.RunYCSB(workload.YCSBA, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := mixed.RunYCSB(workload.YCSBA, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(ls []OpLatency) float64 {
		var s float64
		for _, l := range ls {
			s += float64(l.Latency)
		}
		return s / float64(len(ls))
	}
	ra, ma := avg(rl), avg(ml)
	t.Logf("all-remote avg %v, mostly-local avg %v", sim.Time(ra), sim.Time(ma))
	if ra <= ma {
		t.Fatalf("all-remote (%f) not slower than mostly-local (%f)", ra, ma)
	}
}
