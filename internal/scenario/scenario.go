// Package scenario is a config-driven simulation runner that composes the
// repo's two evaluation layers — the block-level edm.Fabric testbed (up to
// edm.MaxPorts hosts) and the flow-level netsim protocol models (1000+
// nodes) — into named, reproducible scenarios: multi-phase load schedules
// with timed fault events (link disable/enable, corruption bursts, node
// join/leave) and seeded chaos generation (random link flaps, corruption
// bursts), reported with per-phase latency percentiles, drop/corruption
// counters and failover recovery times.
//
// All randomness flows through one workload.Partition rooted at Spec.Seed:
// the arrival processes, size samplers, chaos engine and per-node streams
// each draw from an isolated deterministic stream, so the same seed yields
// byte-identical reports even as individual subsystems evolve.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Backend selects the simulation layer a scenario runs on.
type Backend string

const (
	// BackendNetsim runs on the flow-level protocol models of
	// internal/netsim: scales past 1000 nodes, faults are applied as a
	// deterministic trace transformation (§4.3-style evaluation).
	BackendNetsim Backend = "netsim"
	// BackendFabric runs on the block-level edm.Fabric testbed: faults are
	// injected into the live links (Disable, CorruptOneIn, DropOneIn), the
	// §3.3 fault-handling path end to end. Limited to edm.MaxPorts hosts.
	BackendFabric Backend = "fabric"
	// BackendLive runs the real service code path — the wire protocol's
	// reliable layer and an rmem memory node — over the in-process loopback
	// transport, replayed closed-loop on its virtual clock. Faults map to
	// datagram drops/corruptions recovered by retransmission. Reports are
	// deterministic functions of the spec, like the other backends.
	BackendLive Backend = "live"
	// BackendLiveCluster runs the dual-homed cluster service: MemNodes rmem
	// memory nodes, each behind its own loopback transport, all charging one
	// shared virtual clock, fronted by a cluster.Client that stripes the
	// address space by extent. Fault events target memory nodes: NodeLeave
	// kills a node's transport for good (failover + epoch advance +
	// re-mirroring after DetectDelay), NodeJoin brings one in, and the
	// window events darken or degrade one node's link. Reports stay
	// deterministic functions of the spec.
	BackendLiveCluster Backend = "live-cluster"
)

// FailoverPolicy is what happens to flow-level ops that hit a dead link.
type FailoverPolicy string

const (
	// Failover defers the op to the outage's end plus DetectDelay — the
	// dual-ToR §3.3 behaviour where the survivor plane carries the op after
	// the loser's copy times out.
	Failover FailoverPolicy = "failover"
	// Drop discards the op and counts it.
	Drop FailoverPolicy = "drop"
)

// Phase is one segment of the load schedule. Phases run back to back; each
// generates Count ops at the given load and size profile.
type Phase struct {
	Name     string  `json:"name"`
	Count    int     `json:"count"`
	Load     float64 `json:"load"`
	ReadFrac float64 `json:"read_frac"`
	// Profile names a built-in size distribution: fixed64, hadoop, spark,
	// sparksql, graphlab or memcached.
	Profile string `json:"profile"`
}

// EventKind is a timed fault event type.
type EventKind string

const (
	// LinkDown disables node's link over [At, Until) (Fabric.DisableLink).
	LinkDown EventKind = "link-down"
	// CorruptBurst injects corruption on node's link over [At, Until):
	// OneIn on the fabric backend, per-op probability Prob on netsim.
	CorruptBurst EventKind = "corrupt"
	// DropBurst makes node's link lossy over [At, Until): OneIn blocks
	// dropped on the fabric backend, per-op probability Prob on netsim.
	DropBurst EventKind = "drop"
	// NodeLeave removes node at At: its link goes down for good and its
	// pending flow-level ops are dropped.
	NodeLeave EventKind = "leave"
	// NodeJoin brings node up at At: its link is down before At and
	// flow-level ops involving it before At are dropped.
	NodeJoin EventKind = "join"
)

// Event is one timed fault.
type Event struct {
	Kind  EventKind `json:"kind"`
	Node  int       `json:"node"`
	At    sim.Time  `json:"at"`
	Until sim.Time  `json:"until,omitempty"`
	// OneIn is the fabric-backend injection rate (1-in-N blocks); 0 means
	// the default (64). A zero-rate window cannot be expressed — delete
	// the event instead.
	OneIn uint64 `json:"one_in,omitempty"`
	// Prob is the netsim-backend per-op hit probability; 0 means the
	// default (0.25). A zero-rate window cannot be expressed — delete the
	// event instead.
	Prob float64 `json:"prob,omitempty"`
}

// Chaos seeds randomized fault generation on top of the authored Events.
// All draws come from the partition's "chaos" stream, so a chaos schedule
// is a pure function of (Spec.Seed, Chaos, Nodes, horizon).
type Chaos struct {
	// LinkFlaps is the number of random link-down windows to inject.
	LinkFlaps int `json:"link_flaps"`
	// FlapMin/FlapMax bound each flap's duration.
	FlapMin sim.Time `json:"flap_min"`
	FlapMax sim.Time `json:"flap_max"`
	// CorruptBursts is the number of random corruption windows.
	CorruptBursts int `json:"corrupt_bursts"`
	// BurstMin/BurstMax bound each burst's duration.
	BurstMin sim.Time `json:"burst_min"`
	BurstMax sim.Time `json:"burst_max"`
	// CorruptOneIn is the fabric-backend burst rate (default 64).
	CorruptOneIn uint64 `json:"corrupt_one_in"`
	// CorruptProb is the netsim-backend per-op corruption probability
	// inside a burst (default 0.25).
	CorruptProb float64 `json:"corrupt_prob"`
}

func (c Chaos) enabled() bool { return c.LinkFlaps > 0 || c.CorruptBursts > 0 }

// Spec is a complete scenario description. The zero value of optional
// fields is filled by Validate: netsim backend, 100 Gbps, MTU 1500, EDM
// protocol, failover policy with 10 us detection delay.
type Spec struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Backend     Backend `json:"backend"`
	Nodes       int     `json:"nodes"`
	// MemNodes is the memory-node count on the live-cluster backend (the
	// cluster being striped over); fault events there target memory nodes.
	// Zero defaults to Nodes. Ignored by the other backends.
	MemNodes int    `json:"mem_nodes,omitempty"`
	Seed     uint64 `json:"seed"`
	// Protocol picks the netsim protocol model (EDM, IRD, pFabric, PFC,
	// DCTCP, CXL, Fastpass). Ignored by the fabric backend, which always
	// runs the EDM block-level stack.
	Protocol  string   `json:"protocol,omitempty"`
	Bandwidth sim.Gbps `json:"bandwidth,omitempty"`
	MTU       int      `json:"mtu,omitempty"`
	Phases    []Phase  `json:"phases"`
	Events    []Event  `json:"events,omitempty"`
	Chaos     Chaos    `json:"chaos,omitempty"`
	// Policy and DetectDelay govern flow-level ops that hit a dead link.
	Policy      FailoverPolicy `json:"policy,omitempty"`
	DetectDelay sim.Time       `json:"detect_delay,omitempty"`
}

// Validate checks the spec and fills defaults in place.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Backend == "" {
		s.Backend = BackendNetsim
	}
	if s.Backend != BackendNetsim && s.Backend != BackendFabric &&
		s.Backend != BackendLive && s.Backend != BackendLiveCluster {
		return fmt.Errorf("scenario %s: unknown backend %q", s.Name, s.Backend)
	}
	if s.Nodes < 2 {
		return fmt.Errorf("scenario %s: nodes=%d", s.Name, s.Nodes)
	}
	if s.Backend == BackendLiveCluster {
		if s.MemNodes == 0 {
			s.MemNodes = s.Nodes
		}
		if s.MemNodes < 2 {
			return fmt.Errorf("scenario %s: mem_nodes=%d (dual-homing needs 2)", s.Name, s.MemNodes)
		}
	} else {
		s.MemNodes = 0
	}
	if s.Protocol == "" {
		s.Protocol = "EDM"
	}
	if s.Bandwidth <= 0 {
		if s.Backend == BackendNetsim {
			s.Bandwidth = 100
		} else {
			s.Bandwidth = 25
		}
	}
	if s.MTU <= 0 {
		s.MTU = 1500
	}
	if s.Policy == "" {
		s.Policy = Failover
	}
	if s.Policy != Failover && s.Policy != Drop {
		return fmt.Errorf("scenario %s: unknown policy %q", s.Name, s.Policy)
	}
	if s.DetectDelay <= 0 {
		s.DetectDelay = 10 * sim.Microsecond
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	for i, p := range s.Phases {
		if p.Count <= 0 {
			return fmt.Errorf("scenario %s: phase %d count=%d", s.Name, i, p.Count)
		}
		if p.Load <= 0 || p.Load > 1 {
			return fmt.Errorf("scenario %s: phase %d load=%f", s.Name, i, p.Load)
		}
		if p.ReadFrac < 0 || p.ReadFrac > 1 {
			return fmt.Errorf("scenario %s: phase %d read_frac=%f", s.Name, i, p.ReadFrac)
		}
		if _, err := sizeDist(p.Profile); err != nil {
			return fmt.Errorf("scenario %s: phase %d: %w", s.Name, i, err)
		}
	}
	// Fault events target memory nodes on the cluster backend, fabric/flow
	// nodes everywhere else.
	eventNodes := s.Nodes
	if s.Backend == BackendLiveCluster {
		eventNodes = s.MemNodes
	}
	for i, e := range s.Events {
		if e.Node < 0 || e.Node >= eventNodes {
			return fmt.Errorf("scenario %s: event %d node=%d of %d", s.Name, i, e.Node, eventNodes)
		}
		switch e.Kind {
		case LinkDown, CorruptBurst, DropBurst:
			if e.Until <= e.At {
				return fmt.Errorf("scenario %s: event %d empty window", s.Name, i)
			}
			if e.Kind != LinkDown {
				if e.Prob < 0 || e.Prob > 1 {
					return fmt.Errorf("scenario %s: event %d prob=%f out of [0,1]", s.Name, i, e.Prob)
				}
				// Default both backends' injection rates (only when unset)
				// so a spec written for one backend means the same thing on
				// the other: OneIn drives the fabric links, Prob the
				// flow-level coin flips.
				if s.Events[i].OneIn == 0 {
					s.Events[i].OneIn = 64
				}
				if e.Prob == 0 {
					s.Events[i].Prob = 0.25
				}
			}
		case NodeLeave, NodeJoin:
		default:
			return fmt.Errorf("scenario %s: event %d kind %q", s.Name, i, e.Kind)
		}
	}
	ch := &s.Chaos
	if ch.LinkFlaps < 0 || ch.CorruptBursts < 0 {
		return fmt.Errorf("scenario %s: negative chaos counts", s.Name)
	}
	if ch.LinkFlaps > 0 {
		if ch.FlapMin <= 0 {
			ch.FlapMin = 20 * sim.Microsecond
		}
		if ch.FlapMax < ch.FlapMin {
			ch.FlapMax = 4 * ch.FlapMin
		}
	}
	if ch.CorruptProb < 0 || ch.CorruptProb > 1 {
		return fmt.Errorf("scenario %s: chaos corrupt_prob=%f out of [0,1]", s.Name, ch.CorruptProb)
	}
	if ch.CorruptBursts > 0 {
		if ch.BurstMin <= 0 {
			ch.BurstMin = 10 * sim.Microsecond
		}
		if ch.BurstMax < ch.BurstMin {
			ch.BurstMax = 4 * ch.BurstMin
		}
		if ch.CorruptOneIn == 0 {
			ch.CorruptOneIn = 64
		}
		if ch.CorruptProb == 0 {
			ch.CorruptProb = 0.25
		}
	}
	return nil
}

// Load parses a JSON scenario spec.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Builtin returns the named built-in scenario, or nil.
func Builtin(name string) *Spec {
	for _, s := range Builtins() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Builtins returns the built-in scenario library, sorted by name. Each call
// returns fresh copies safe to mutate.
func Builtins() []*Spec {
	specs := []*Spec{
		{
			Name:        "chaos-1024",
			Description: "1024-node fleet under phase-shifted load with random link flaps and corruption bursts (flow level)",
			Backend:     BackendNetsim,
			Nodes:       1024,
			Seed:        1,
			Protocol:    "EDM",
			Phases: []Phase{
				{Name: "warm", Count: 3000, Load: 0.3, ReadFrac: 0.5, Profile: "fixed64"},
				{Name: "peak", Count: 5000, Load: 0.8, ReadFrac: 0.5, Profile: "memcached"},
				{Name: "drain", Count: 3000, Load: 0.5, ReadFrac: 0.9, Profile: "fixed64"},
			},
			Chaos: Chaos{LinkFlaps: 12, CorruptBursts: 6},
		},
		{
			Name:        "protocol-storm",
			Description: "144-node heavy-tailed storm for §4.3 protocol comparison under chaos (flow level)",
			Backend:     BackendNetsim,
			Nodes:       144,
			Seed:        1,
			Protocol:    "EDM",
			Phases: []Phase{
				{Name: "ramp", Count: 4000, Load: 0.4, ReadFrac: 0.5, Profile: "memcached"},
				{Name: "storm", Count: 6000, Load: 0.9, ReadFrac: 0.5, Profile: "sparksql"},
			},
			Chaos: Chaos{LinkFlaps: 6, CorruptBursts: 3},
		},
		{
			Name:        "failover-16",
			Description: "16-host block-level testbed: a mid-run link outage and a corruption burst exercise the §3.3 fault path",
			Backend:     BackendFabric,
			Nodes:       16,
			Seed:        1,
			Phases: []Phase{
				// 300 ops/node at load 0.3 spans ~20 us, so the fault
				// windows below sit mid-trace.
				{Name: "steady", Count: 4800, Load: 0.3, ReadFrac: 0.5, Profile: "fixed64"},
			},
			Events: []Event{
				{Kind: LinkDown, Node: 3, At: 5 * sim.Microsecond, Until: 12 * sim.Microsecond},
				{Kind: CorruptBurst, Node: 7, At: 6 * sim.Microsecond, Until: 10 * sim.Microsecond, OneIn: 32},
			},
		},
		{
			Name:        "live-loopback",
			Description: "8-node trace replayed through the real wire/rmem service over the loopback transport, with a drop burst and a corruption burst recovered by retransmission",
			Backend:     BackendLive,
			Nodes:       8,
			Seed:        1,
			Phases: []Phase{
				// ~150 ops/node at load 0.3 spans ~10 us of virtual time,
				// so the burst windows below sit mid-trace.
				{Name: "steady", Count: 1200, Load: 0.3, ReadFrac: 0.5, Profile: "fixed64"},
			},
			Events: []Event{
				{Kind: DropBurst, Node: 2, At: 3 * sim.Microsecond, Until: 5 * sim.Microsecond, OneIn: 4},
				{Kind: CorruptBurst, Node: 5, At: 6 * sim.Microsecond, Until: 8 * sim.Microsecond, OneIn: 4},
			},
		},
		{
			Name:        "live-cluster",
			Description: "16-node dual-homed cluster over loopback transports sharing one virtual clock; a mid-run node kill exercises read failover, write-through, and extent re-mirroring",
			Backend:     BackendLiveCluster,
			Nodes:       16,
			MemNodes:    16,
			Seed:        1,
			// Short detection keeps the failover window (where every op
			// touching the dead node burns a real retry budget) a bounded
			// slice of the trace.
			DetectDelay: 2 * sim.Microsecond,
			Phases: []Phase{
				// ~150 ops/node at load 0.3 spans ~10 us of virtual time,
				// so the kill below lands mid-trace with the recovery
				// inside the run.
				{Name: "steady", Count: 2400, Load: 0.3, ReadFrac: 0.5, Profile: "fixed64"},
			},
			Events: []Event{
				{Kind: NodeLeave, Node: 5, At: 5 * sim.Microsecond},
			},
		},
		{
			Name:        "corruption-soak",
			Description: "8-host block-level soak with seeded random corruption bursts on live links",
			Backend:     BackendFabric,
			Nodes:       8,
			Seed:        1,
			Phases: []Phase{
				{Name: "soak", Count: 2400, Load: 0.5, ReadFrac: 0.5, Profile: "fixed64"},
			},
			Chaos: Chaos{CorruptBursts: 4, CorruptOneIn: 48,
				BurstMin: 2 * sim.Microsecond, BurstMax: 4 * sim.Microsecond},
		},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}
