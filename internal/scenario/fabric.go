package scenario

import (
	"fmt"

	"repro/internal/edm"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// maxFabricMsg caps op sizes on the block-level backend: the EDM message
// header carries a 16-bit length, so heavy-tailed profile samples are
// clamped here (the flow-level backend carries them unclamped).
const maxFabricMsg = 32 * 1024

// runFabric executes the scenario on the block-level edm.Fabric testbed.
// Faults are injected into the live links at their scheduled times — reads
// caught in an outage take the §3.3 NULL-response timeout path, corrupted
// blocks are detected (and the op retried or failed) by the receiver's
// decode path, and one-sided writes lost to a dead link surface as
// never-completed ops in the report.
func runFabric(spec *Spec) (*Report, error) {
	if spec.Nodes > edm.MaxPorts {
		return nil, fmt.Errorf("scenario %s: %d nodes exceeds the fabric backend's %d ports (use backend %q)",
			spec.Name, spec.Nodes, edm.MaxPorts, BackendNetsim)
	}
	part := workload.NewPartition(spec.Seed)
	tagged, bounds, horizon, err := buildTrace(part, spec)
	if err != nil {
		return nil, err
	}
	events := append(append([]Event(nil), spec.Events...),
		expandChaos(part.Sub("chaos"), spec.Chaos, spec.Nodes, horizon)...)
	sortEvents(events)

	cfg := edm.DefaultConfig(spec.Nodes)
	cfg.LinkBandwidth = spec.Bandwidth
	fabric := edm.New(cfg)
	memCfg := memctl.DefaultConfig()
	for i := 0; i < spec.Nodes; i++ {
		fabric.AttachMemory(i, memctl.New(memCfg))
	}
	engine := fabric.Engine

	// Outages: merged per-node windows drive DisableLink/EnableLink. At
	// block level flaps and absences are the same thing — the link is dark.
	flaps, absent := outageWindows(events)
	down := map[int][]interval{}
	for n := 0; n < spec.Nodes; n++ {
		iv := append(append([]interval(nil), flaps[n]...), absent[n]...)
		sortIntervals(iv)
		down[n] = mergeIntervals(iv)
	}
	for n := 0; n < spec.Nodes; n++ {
		for _, iv := range down[n] {
			n, iv := n, iv
			if iv.start <= 0 {
				fabric.DisableLink(n)
			} else {
				engine.At(iv.start, func() { fabric.DisableLink(n) })
			}
			if iv.end < forever {
				engine.At(iv.end, func() { fabric.EnableLink(n) })
			}
		}
	}
	// Corruption and loss bursts on the live links. Overlapping same-node
	// bursts nest: the rate is only cleared when the last active burst
	// ends (an earlier burst's end must not cancel a later one). With
	// overlapping bursts of different rates the most recently started
	// rate wins — a documented simplification.
	type burstDepth struct{ corrupt, drop int }
	depth := make([]burstDepth, spec.Nodes)
	for _, e := range events {
		e := e
		switch e.Kind {
		case CorruptBurst:
			engine.At(e.At, func() {
				depth[e.Node].corrupt++
				fabric.UpLink(e.Node).CorruptOneIn(e.OneIn)
				fabric.DownLink(e.Node).CorruptOneIn(e.OneIn)
			})
			engine.At(e.Until, func() {
				depth[e.Node].corrupt--
				if depth[e.Node].corrupt == 0 {
					fabric.UpLink(e.Node).CorruptOneIn(0)
					fabric.DownLink(e.Node).CorruptOneIn(0)
				}
			})
		case DropBurst:
			engine.At(e.At, func() {
				depth[e.Node].drop++
				fabric.UpLink(e.Node).DropOneIn(e.OneIn)
				fabric.DownLink(e.Node).DropOneIn(e.OneIn)
			})
			engine.At(e.Until, func() {
				depth[e.Node].drop--
				if depth[e.Node].drop == 0 {
					fabric.UpLink(e.Node).DropOneIn(0)
					fabric.DownLink(e.Node).DropOneIn(0)
				}
			})
		}
	}

	// Fault-window exposure per op, for the phase counters and the recovery
	// summary: which ops were issued while a fault affecting their src or
	// dst was active (or within DetectDelay of an outage's end).
	corrupt := probWindows(events, CorruptBurst)
	inOutage := func(op workload.Op) bool {
		for _, n := range []int{op.Src, op.Dst} {
			for _, w := range down[n] {
				if op.Arrival >= w.start && op.Arrival < w.end+spec.DetectDelay {
					return true
				}
			}
		}
		return false
	}
	inCorrupt := func(op workload.Op) bool {
		_, a := coveringProb(corrupt, op.Src, op.Arrival)
		_, b := coveringProb(corrupt, op.Dst, op.Arrival)
		return a || b
	}

	// Issue the trace. Completion state is recorded per op index.
	type opDone struct {
		done    bool
		failed  bool
		latency sim.Time
	}
	results := make([]opDone, len(tagged))
	addrs := part.Stream("addr")
	addrSpace := memCfg.Size - maxFabricMsg
	for i := range tagged {
		i := i
		op := tagged[i].op
		if op.Size > maxFabricMsg {
			op.Size = maxFabricMsg
		}
		addr := (addrs.Uint64() % addrSpace) &^ 63
		engine.At(op.Arrival, func() {
			start := engine.Now()
			if op.Read {
				fabric.Host(op.Src).Read(op.Dst, addr, op.Size, func(_ []byte, err error) {
					results[i] = opDone{done: true, failed: err != nil, latency: engine.Now() - start}
				})
			} else {
				fabric.Host(op.Src).Write(op.Dst, addr, make([]byte, op.Size), func(err error) {
					results[i] = opDone{done: true, failed: err != nil, latency: engine.Now() - start}
				})
			}
		})
	}
	fabric.Run()

	rep := &Report{
		Scenario: spec.Name, Backend: spec.Backend, Protocol: "EDM",
		Nodes: spec.Nodes, Seed: spec.Seed,
		Horizon: engine.Now(), Issued: len(tagged),
		Events: len(events), Links: fabric.LinkStats(),
	}
	for i := 0; i < spec.Nodes; i++ {
		rep.Timeouts += fabric.Host(i).Stats().Timeouts
	}
	type phaseAcc struct{ absNs []float64 }
	acc := make([]phaseAcc, len(spec.Phases))
	var recovery []float64
	prs := make([]PhaseReport, len(spec.Phases))
	for i, ph := range spec.Phases {
		prs[i].Name = ph.Name
		prs[i].Start = bounds[i].start
		prs[i].End = bounds[i].end
	}
	for i, t := range tagged {
		pr := &prs[t.meta.phase]
		pr.Issued++
		r := results[i]
		outage := inOutage(t.op)
		if inCorrupt(t.op) {
			pr.Corrupt++
			rep.Corrupted++
		}
		if r.done && !r.failed {
			rep.Completed++
			pr.Done++
			acc[t.meta.phase].absNs = append(acc[t.meta.phase].absNs, r.latency.Nanoseconds())
			if outage {
				// The op rode out a fault window and still completed: its
				// latency is the failover tail the fault imposed.
				pr.Failover++
				rep.Failovers++
				recovery = append(recovery, r.latency.Microseconds())
			}
		} else {
			// Timed-out reads and writes lost on a dead link.
			rep.Dropped++
			pr.Dropped++
		}
	}
	rep.Recovery = stats.Summarize(recovery)
	for i := range prs {
		prs[i].AbsNs = stats.Summarize(acc[i].absNs)
	}
	rep.Phases = prs
	return rep, nil
}
