package scenario

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/edm"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PhaseReport summarizes one load phase's completions (grouped by the phase
// that issued the op).
type PhaseReport struct {
	Name     string
	Start    sim.Time // first possible arrival of the phase
	End      sim.Time // end of the phase's arrival window
	Issued   int
	Done     int
	AbsNs    stats.Summary // absolute completion latency, ns
	Norm     stats.Summary // latency / unloaded ideal (netsim backend only)
	Corrupt  int           // ops hit by corruption in this phase
	Failover int           // ops rerouted around a dead link in this phase
	Dropped  int           // ops lost to dead links / leave / join
	// Wire, on the live backend, is the reliable layer's activity during
	// the phase: deltas of the transport counters snapshotted at phase
	// boundaries. Nil on the other backends.
	Wire *WireDelta
}

// WireDelta is the transport activity attributed to one phase of a live
// run (counter differences between the phase's boundary snapshots).
type WireDelta struct {
	Sent        uint64 // datagrams transmitted (retransmissions included)
	Retransmits uint64
	Timeouts    uint64 // ops that exhausted their retry budget
	Dropped     uint64 // datagrams the fault hook dropped
	Corrupted   uint64 // datagrams the fault hook corrupted
}

// Report is a completed scenario run. All fields are deterministic
// functions of the Spec, so two runs with equal specs render byte-identical
// reports.
type Report struct {
	Scenario  string
	Backend   Backend
	Protocol  string
	Nodes     int
	Seed      uint64
	Horizon   sim.Time
	Issued    int
	Completed int
	Dropped   int
	Failovers int
	Corrupted int
	Timeouts  uint64 // fabric backend: reads answered by NULL (§3.3)
	// Recovery summarizes fault-window ops in microseconds. On the netsim
	// backend each sample is a rerouted op's deferral: how long after its
	// intended arrival it could be issued. On the fabric backend each
	// sample is the raw completion latency of an op issued inside (or
	// within DetectDelay of) a fault window that still completed — the
	// latency tail the fault imposed.
	Recovery stats.Summary
	Events   int           // fault events applied (authored + chaos)
	Links    edm.LinkStats // fabric backend: aggregate link fault counters
	// Cluster is the live-cluster backend's map/replication summary; nil on
	// the other backends.
	Cluster *ClusterReport
	Phases  []PhaseReport
}

// ClusterReport summarizes the cluster layer of a live-cluster run.
type ClusterReport struct {
	MemNodes    int
	Extents     int
	ExtentBytes uint64
	FinalEpoch  uint64 // map epoch after all membership changes
	Failovers   uint64 // segments that survived on one replica or re-routed
	Rebalances  int    // membership changes that triggered a re-mirror pass
	MovedBytes  uint64 // bytes copied to new extent holders
	LostExtents int    // extents whose every holder died (should be 0)
	// RecoveryUS summarizes, per membership change, the virtual time from
	// the failure to full re-mirroring: the spec's DetectDelay plus the
	// measured rebalance duration (joins contribute just the re-mirror).
	RecoveryUS stats.Summary
}

// Format renders the report as an aligned text table.
func (r *Report) Format(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario\t%s\n", r.Scenario)
	fmt.Fprintf(tw, "backend\t%s\n", r.Backend)
	if r.Backend == BackendNetsim {
		fmt.Fprintf(tw, "protocol\t%s\n", r.Protocol)
	}
	fmt.Fprintf(tw, "nodes\t%d\n", r.Nodes)
	fmt.Fprintf(tw, "seed\t%d\n", r.Seed)
	fmt.Fprintf(tw, "horizon\t%v\n", r.Horizon)
	fmt.Fprintf(tw, "fault events\t%d\n", r.Events)
	fmt.Fprintf(tw, "ops\tissued %d completed %d dropped %d\n",
		r.Issued, r.Completed, r.Dropped)
	fmt.Fprintf(tw, "faults\tfailovers %d corrupted %d timeouts %d\n",
		r.Failovers, r.Corrupted, r.Timeouts)
	if r.Links.Sent+r.Links.Dropped > 0 {
		fmt.Fprintf(tw, "link blocks\tsent %d dropped %d corrupted %d\n",
			r.Links.Sent, r.Links.Dropped, r.Links.Corrupted)
	}
	if r.Recovery.N > 0 {
		fmt.Fprintf(tw, "recovery (us)\t%s\n", r.Recovery.Row())
	}
	if c := r.Cluster; c != nil {
		fmt.Fprintf(tw, "cluster\tmem nodes %d extents %d x %d B epoch %d\n",
			c.MemNodes, c.Extents, c.ExtentBytes, c.FinalEpoch)
		fmt.Fprintf(tw, "cluster faults\tfailovers %d rebalances %d moved %d B lost %d\n",
			c.Failovers, c.Rebalances, c.MovedBytes, c.LostExtents)
		if c.RecoveryUS.N > 0 {
			fmt.Fprintf(tw, "cluster recovery (us)\t%s\n", c.RecoveryUS.Row())
		}
	}
	for _, p := range r.Phases {
		fmt.Fprintf(tw, "phase %s\t[%v, %v) issued %d done %d corrupt %d failover %d dropped %d\n",
			p.Name, p.Start, p.End, p.Issued, p.Done, p.Corrupt, p.Failover, p.Dropped)
		if p.AbsNs.N > 0 {
			fmt.Fprintf(tw, "  latency (ns)\t%s\n", p.AbsNs.Row())
		}
		if p.Norm.N > 0 {
			fmt.Fprintf(tw, "  normalized\t%s\n", p.Norm.Row())
		}
		if p.Wire != nil {
			fmt.Fprintf(tw, "  wire\tsent %d retransmits %d timeouts %d dropped %d corrupted %d\n",
				p.Wire.Sent, p.Wire.Retransmits, p.Wire.Timeouts, p.Wire.Dropped, p.Wire.Corrupted)
		}
	}
	return tw.Flush()
}
