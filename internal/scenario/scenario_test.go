package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func render(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Format(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestChaos1024Deterministic is the acceptance scenario: a 1024-node fleet
// under phase-shifted load with random link flaps and corruption bursts
// must run to completion and produce byte-identical stats across two runs
// with the same seed — and different stats with a different seed.
func TestChaos1024Deterministic(t *testing.T) {
	spec := Builtin("chaos-1024")
	if spec == nil {
		t.Fatal("chaos-1024 not registered")
	}
	if spec.Nodes != 1024 {
		t.Fatalf("chaos-1024 has %d nodes", spec.Nodes)
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Builtin("chaos-1024"))
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := render(t, a), render(t, b)
	if ra != rb {
		t.Fatalf("same seed produced different reports:\n--- a ---\n%s\n--- b ---\n%s", ra, rb)
	}
	other := Builtin("chaos-1024")
	other.Seed = 2
	c, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if rc := render(t, c); rc == ra {
		t.Fatal("different seed produced an identical report")
	}
	if a.Completed == 0 || a.Completed+a.Dropped != a.Issued {
		t.Fatalf("op accounting broken: issued %d completed %d dropped %d",
			a.Issued, a.Completed, a.Dropped)
	}
	if a.Events < spec.Chaos.LinkFlaps+spec.Chaos.CorruptBursts {
		t.Fatalf("chaos did not expand: %d events", a.Events)
	}
	if a.Failovers == 0 && a.Dropped == 0 {
		t.Error("12 link flaps over the run touched no ops (chaos not applied?)")
	}
	if a.Corrupted == 0 {
		t.Error("6 corruption bursts hit no ops")
	}
	if len(a.Phases) != 3 {
		t.Fatalf("expected 3 phase reports, got %d", len(a.Phases))
	}
	for _, p := range a.Phases {
		if p.Done == 0 || p.AbsNs.N != p.Done {
			t.Fatalf("phase %s: done=%d latency samples=%d", p.Name, p.Done, p.AbsNs.N)
		}
	}
	t.Logf("chaos-1024:\n%s", ra)
}

// TestCorruptionCostsLatency: corrupted ops pay the retransmission penalty,
// so the corrupted population's mean latency must exceed the clean one's.
func TestCorruptionPenaltyApplied(t *testing.T) {
	spec := &Spec{
		Name: "corrupt-only", Backend: BackendNetsim, Nodes: 64, Seed: 5,
		Protocol: "EDM",
		Phases:   []Phase{{Name: "p", Count: 2000, Load: 0.4, ReadFrac: 0.5, Profile: "fixed64"}},
		Chaos:    Chaos{CorruptBursts: 8, CorruptProb: 0.9},
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupted == 0 {
		t.Fatal("no ops corrupted at prob 0.9 across 8 bursts")
	}
	if rep.Failovers != 0 || rep.Dropped != 0 {
		t.Fatalf("corruption-only scenario recorded failovers=%d dropped=%d",
			rep.Failovers, rep.Dropped)
	}
}

// TestFailoverPolicies: the same outage either defers ops (failover, with
// recovery times recorded) or discards them (drop).
func TestFailoverPolicies(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name: "outage", Backend: BackendNetsim, Nodes: 32, Seed: 3,
			Protocol: "EDM",
			Phases:   []Phase{{Name: "p", Count: 3000, Load: 0.5, ReadFrac: 0.5, Profile: "fixed64"}},
			Events: []Event{
				{Kind: LinkDown, Node: 4, At: 0, Until: 400 * sim.Microsecond},
			},
		}
	}
	fo, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if fo.Failovers == 0 {
		t.Fatal("outage over node 4 deferred no ops")
	}
	if fo.Recovery.N != fo.Failovers || fo.Recovery.Min <= 0 {
		t.Fatalf("recovery summary inconsistent: %+v vs %d failovers", fo.Recovery, fo.Failovers)
	}
	// Deferred ops re-issue after the outage plus the detection delay.
	if min := fo.Recovery.Min; min < base().DetectDelay.Microseconds() {
		t.Logf("min recovery %.3fus", min)
	}
	dropped := base()
	dropped.Policy = Drop
	dr, err := Run(dropped)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Dropped == 0 || dr.Failovers != 0 {
		t.Fatalf("drop policy: dropped=%d failovers=%d", dr.Dropped, dr.Failovers)
	}
	if dr.Completed+dr.Dropped != dr.Issued {
		t.Fatalf("drop accounting: %d+%d != %d", dr.Completed, dr.Dropped, dr.Issued)
	}
}

// TestNodeLeaveJoin: departures drop subsequent ops, joins drop earlier
// ones.
func TestNodeLeaveJoin(t *testing.T) {
	spec := &Spec{
		Name: "churn", Backend: BackendNetsim, Nodes: 16, Seed: 9,
		Protocol: "DCTCP",
		Phases:   []Phase{{Name: "p", Count: 2000, Load: 0.5, ReadFrac: 0.5, Profile: "fixed64"}},
		Events: []Event{
			{Kind: NodeLeave, Node: 2, At: 100 * sim.Microsecond},
			{Kind: NodeJoin, Node: 9, At: 200 * sim.Microsecond},
		},
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatal("churn dropped no ops")
	}
	if rep.Completed+rep.Dropped != rep.Issued {
		t.Fatalf("accounting: %d+%d != %d", rep.Completed, rep.Dropped, rep.Issued)
	}
	// A join alone must DROP pre-join ops even under the default failover
	// policy — a node that is not there yet has no survivor plane — and
	// must record no failovers.
	joinOnly := &Spec{
		Name: "join-only", Backend: BackendNetsim, Nodes: 16, Seed: 9,
		Protocol: "DCTCP",
		Phases:   []Phase{{Name: "p", Count: 2000, Load: 0.5, ReadFrac: 0.5, Profile: "fixed64"}},
		Events:   []Event{{Kind: NodeJoin, Node: 9, At: 200 * sim.Microsecond}},
	}
	jr, err := Run(joinOnly)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Dropped == 0 {
		t.Fatal("pre-join ops were not dropped")
	}
	if jr.Failovers != 0 {
		t.Fatalf("join deferred %d ops as failovers (no survivor plane exists)", jr.Failovers)
	}
}

// TestFabricBackendFaults runs the block-level builtin: real link disable
// and corruption injection on a live fabric.
func TestFabricBackendFaults(t *testing.T) {
	spec := Builtin("failover-16")
	if spec == nil {
		t.Fatal("failover-16 not registered")
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Backend != BackendFabric {
		t.Fatalf("backend %s", a.Backend)
	}
	if a.Completed == 0 {
		t.Fatal("nothing completed on the fabric")
	}
	if a.Links.Corrupted == 0 {
		t.Error("corruption burst injected no block errors")
	}
	if a.Links.Dropped == 0 {
		t.Error("link outage dropped no blocks")
	}
	if a.Dropped == 0 && a.Timeouts == 0 && a.Failovers == 0 {
		t.Error("outage had no observable op-level effect")
	}
	b, err := Run(Builtin("failover-16"))
	if err != nil {
		t.Fatal(err)
	}
	if render(t, a) != render(t, b) {
		t.Fatal("fabric backend not deterministic")
	}
	t.Logf("failover-16:\n%s", render(t, a))
}

// TestFabricChaosSoak: seeded chaos on the block-level backend is
// deterministic and injects real corruption.
func TestFabricChaosSoak(t *testing.T) {
	a, err := Run(Builtin("corruption-soak"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Builtin("corruption-soak"))
	if err != nil {
		t.Fatal(err)
	}
	if render(t, a) != render(t, b) {
		t.Fatal("corruption-soak not deterministic")
	}
	if a.Links.Corrupted == 0 {
		t.Error("soak injected no corruption")
	}
}

// TestFabricRejectsOversizedFleet: >512 ports must be redirected to the
// flow-level backend, not panic.
func TestFabricRejectsOversizedFleet(t *testing.T) {
	spec := &Spec{
		Name: "too-big", Backend: BackendFabric, Nodes: 1024, Seed: 1,
		Phases: []Phase{{Name: "p", Count: 100, Load: 0.5, Profile: "fixed64"}},
	}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "netsim") {
		t.Fatalf("oversized fabric fleet: err=%v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []*Spec{
		{},
		{Name: "x", Nodes: 1, Phases: []Phase{{Count: 1, Load: 0.5}}},
		{Name: "x", Nodes: 4},
		{Name: "x", Nodes: 4, Phases: []Phase{{Count: 0, Load: 0.5}}},
		{Name: "x", Nodes: 4, Phases: []Phase{{Count: 1, Load: 1.5}}},
		{Name: "x", Nodes: 4, Phases: []Phase{{Count: 1, Load: 0.5, Profile: "nope"}}},
		{Name: "x", Nodes: 4, Backend: "quantum", Phases: []Phase{{Count: 1, Load: 0.5}}},
		{Name: "x", Nodes: 4, Phases: []Phase{{Count: 1, Load: 0.5}},
			Events: []Event{{Kind: LinkDown, Node: 9, At: 0, Until: 1}}},
		{Name: "x", Nodes: 4, Phases: []Phase{{Count: 1, Load: 0.5}},
			Events: []Event{{Kind: "meteor", Node: 0, At: 0, Until: 1}}},
		{Name: "x", Nodes: 4, Phases: []Phase{{Count: 1, Load: 0.5}},
			Events: []Event{{Kind: LinkDown, Node: 0, At: 5, Until: 5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
	for _, s := range Builtins() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", s.Name, err)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	src := `{
		"name": "from-json", "nodes": 64, "seed": 7, "protocol": "DCTCP",
		"phases": [{"name": "p", "count": 500, "load": 0.5, "read_frac": 0.5, "profile": "memcached"}],
		"events": [{"kind": "link-down", "node": 3, "at": 1000000, "until": 2000000}],
		"chaos": {"link_flaps": 2, "corrupt_bursts": 1}
	}`
	spec, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Protocol != "DCTCP" || spec.Nodes != 64 {
		t.Fatalf("parsed %+v", spec)
	}
	if _, err := Load(strings.NewReader(`{"name": "x", "bogus_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("JSON scenario ran nothing")
	}
}

// TestExpandChaosDeterministic: the chaos schedule is a pure function of
// seed and config.
func TestExpandChaosDeterministic(t *testing.T) {
	c := Chaos{LinkFlaps: 10, FlapMin: sim.Microsecond, FlapMax: 5 * sim.Microsecond,
		CorruptBursts: 5, BurstMin: sim.Microsecond, BurstMax: 2 * sim.Microsecond,
		CorruptOneIn: 64, CorruptProb: 0.5}
	h := 10 * sim.Millisecond
	a := expandChaos(workload.NewPartition(1).Sub("chaos"), c, 100, h)
	b := expandChaos(workload.NewPartition(1).Sub("chaos"), c, 100, h)
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("expanded %d/%d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].At < 0 || a[i].Until > h || a[i].Until <= a[i].At {
			t.Fatalf("event %d window invalid: %+v", i, a[i])
		}
		if a[i].Node < 0 || a[i].Node >= 100 {
			t.Fatalf("event %d node out of range: %+v", i, a[i])
		}
	}
	d := expandChaos(workload.NewPartition(2).Sub("chaos"), c, 100, h)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical chaos")
	}
}
