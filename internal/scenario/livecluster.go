package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/edm"
	"repro/internal/rmem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Cluster backend sizing: a slab small enough that a re-mirror pass is a
// bounded slice of the run, with enough extents (64 at these sizes) that a
// killed node always holds a few.
const (
	clusterSlabBytes   = 32 << 20
	clusterExtentBytes = 512 << 10
)

// clusterRetry tightens the reliable layer for cluster runs: every op that
// touches a dead node burns the whole budget in wall time before failing
// over, so the budget is kept to a few milliseconds.
var clusterRetry = wire.ConnConfig{RetryTimeout: time.Millisecond, MaxRetries: 2}

// clusterFaults is the shared fault state consulted by every memory node's
// loopback hook. Hooks on different loopbacks run concurrently (each under
// its own loopback lock), hence the mutex.
type clusterFaults struct {
	mu   sync.Mutex
	cur  *workload.Op       // guarded by mu: op whose datagrams are on the wire
	dead []bool             // guarded by mu: killed (or not-yet-joined) nodes
	down map[int][]interval // static: LinkDown windows per memory node
	// rate and kind are built before any hook runs and never change after;
	// each window's seen counter advances only while mu is held.
	rate []*rateWindow
	kind map[*rateWindow]EventKind
}

// hook builds memory node n's fault adjudicator. Death drops everything —
// including the membership driver's traffic — while the window faults match
// the current op's arrival time, as on the single-node live backend.
func (fs *clusterFaults) hook(n int) func(sim.Time, wire.Dir, []byte) wire.Fault {
	return func(_ sim.Time, _ wire.Dir, _ []byte) wire.Fault {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.dead[n] {
			return wire.FaultDrop
		}
		op := fs.cur
		if op == nil {
			return wire.FaultNone // handshake, teardown, rebalance traffic
		}
		if _, hit := covering(fs.down[n], op.Arrival); hit {
			return wire.FaultDrop
		}
		for _, w := range fs.rate {
			if w.node != n || op.Arrival < w.start || op.Arrival >= w.end {
				continue
			}
			w.seen++
			if w.seen%w.oneIn == 0 {
				if fs.kind[w] == DropBurst {
					return wire.FaultDrop
				}
				return wire.FaultCorrupt
			}
		}
		return wire.FaultNone
	}
}

func (fs *clusterFaults) setCur(op *workload.Op) {
	fs.mu.Lock()
	fs.cur = op
	fs.mu.Unlock()
}

func (fs *clusterFaults) setDead(n int, dead bool) {
	fs.mu.Lock()
	fs.dead[n] = dead
	fs.mu.Unlock()
}

// clusterAction is one membership step of the replay: kill darkens a node's
// transport at the event time, recover advances the map epoch and
// re-mirrors after DetectDelay, join does both at once for an arrival.
type clusterAction struct {
	at   sim.Time
	kind EventKind // NodeLeave (kill), "recover" reuses NodeLeave with detect=true, NodeJoin
	node int
	// detect marks the post-DetectDelay half of a NodeLeave: the epoch
	// advance + rebalance, as opposed to the transport going dark.
	detect bool
}

// runLiveCluster executes the scenario against the dual-homed cluster
// service: MemNodes in-process rmem servers, each behind its own loopback,
// all charging one shared virtual clock so the whole fabric has a single
// deterministic timebase, fronted by a cluster.Client. The trace is
// replayed closed-loop; membership events interleave at their arrival
// times. With one op in flight, retransmissions and failover re-issues
// serialize, so reports are byte-reproducible for a fixed spec.
func runLiveCluster(spec *Spec) (*Report, error) {
	part := workload.NewPartition(spec.Seed)
	tagged, bounds, horizon, err := buildTrace(part, spec)
	if err != nil {
		return nil, err
	}
	memN := spec.MemNodes
	events := append(append([]Event(nil), spec.Events...),
		expandChaos(part.Sub("chaos"), spec.Chaos, memN, horizon)...)
	sortEvents(events)

	// Window faults: LinkDown flaps darken one node's link transiently (its
	// replica peers carry the load — no epoch change); bursts degrade it.
	flapW, _ := outageWindows(events)
	fs := &clusterFaults{
		dead: make([]bool, memN),
		down: map[int][]interval{},
		kind: map[*rateWindow]EventKind{},
	}
	for n := 0; n < memN; n++ {
		iv := append([]interval(nil), flapW[n]...)
		sortIntervals(iv)
		fs.down[n] = mergeIntervals(iv)
	}
	for _, e := range events {
		if e.Kind != CorruptBurst && e.Kind != DropBurst {
			continue
		}
		oneIn := e.OneIn
		if oneIn == 0 {
			oneIn = 64
		}
		w := &rateWindow{interval: interval{e.At, e.Until}, node: e.Node, oneIn: oneIn}
		fs.rate = append(fs.rate, w)
		fs.kind[w] = e.Kind
	}

	// Membership actions, in arrival order.
	var acts []clusterAction
	for _, e := range events {
		switch e.Kind {
		case NodeLeave:
			acts = append(acts, clusterAction{at: e.At, kind: NodeLeave, node: e.Node})
			acts = append(acts, clusterAction{at: e.At + spec.DetectDelay, kind: NodeLeave, node: e.Node, detect: true})
		case NodeJoin:
			acts = append(acts, clusterAction{at: e.At, kind: NodeJoin, node: e.Node})
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })

	// One shared clock across every node's transport: each delivered or
	// dropped datagram anywhere in the cluster charges the same timebase.
	clock := wire.NewVirtualClock()
	nowNS := func() int64 { return int64(clock.Now() / sim.Nanosecond) }
	clients := make([]*rmem.Client, memN)
	lbs := make([]*wire.Loopback, memN)
	for n := 0; n < memN; n++ {
		srv, err := rmem.NewServer(rmem.ServerConfig{Geometry: rmem.Geometry{SlabBytes: clusterSlabBytes}})
		if err != nil {
			return nil, err
		}
		lb := wire.NewLoopback(wire.LoopbackConfig{Fault: fs.hook(n), Clock: clock})
		cl := rmem.NewClient(lb.ClientPipe(), rmem.ClientConfig{Window: 4, Retry: clusterRetry})
		lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
		lb.BindClient(cl.Deliver)
		if err := cl.Connect(); err != nil {
			return nil, err
		}
		clients[n], lbs[n] = cl, lb
	}
	cc, err := cluster.New(clients, cluster.Config{
		Seed:        spec.Seed,
		ExtentBytes: clusterExtentBytes,
		NowNS:       nowNS,
	})
	if err != nil {
		return nil, err
	}
	ccm := cc.Metrics()

	// Nodes with a pending join start outside the membership (and dark).
	for _, e := range events {
		if e.Kind == NodeJoin {
			fs.setDead(e.Node, true)
			if _, _, err := cc.MarkDead(e.Node); err != nil {
				return nil, fmt.Errorf("scenario %s: initial join set: %w", spec.Name, err)
			}
		}
	}

	// Membership driver state.
	var (
		rebalances int
		movedBytes uint64
		lostExt    int
		recoveryUS []float64
	)
	actIdx := 0
	applyActs := func(upTo sim.Time) error {
		for actIdx < len(acts) && acts[actIdx].at <= upTo {
			a := acts[actIdx]
			actIdx++
			clock.AdvanceTo(a.at)
			switch {
			case a.kind == NodeLeave && !a.detect:
				fs.setDead(a.node, true)
			case a.kind == NodeLeave:
				old, cur, err := cc.MarkDead(a.node)
				if err != nil {
					return fmt.Errorf("scenario %s: node %d leave: %w", spec.Name, a.node, err)
				}
				st, err := cc.Rebalance(old, cur)
				if err != nil {
					return fmt.Errorf("scenario %s: rebalance after node %d leave: %w", spec.Name, a.node, err)
				}
				rebalances++
				movedBytes += st.Bytes
				lostExt += st.Lost
				recoveryUS = append(recoveryUS,
					(spec.DetectDelay + sim.Time(st.DurNS)*sim.Nanosecond).Microseconds())
			case a.kind == NodeJoin:
				fs.setDead(a.node, false)
				old, cur, err := cc.Rejoin(a.node)
				if err != nil {
					return fmt.Errorf("scenario %s: node %d join: %w", spec.Name, a.node, err)
				}
				st, err := cc.Rebalance(old, cur)
				if err != nil {
					return fmt.Errorf("scenario %s: rebalance after node %d join: %w", spec.Name, a.node, err)
				}
				rebalances++
				movedBytes += st.Bytes
				lostExt += st.Lost
				recoveryUS = append(recoveryUS, (sim.Time(st.DurNS) * sim.Nanosecond).Microseconds())
			}
		}
		return nil
	}

	// Closed-loop replay on the shared clock, as on the live backend.
	type opDone struct {
		ok       bool
		failover bool
		latency  sim.Time
	}
	results := make([]opDone, len(tagged))
	addrs := part.Stream("addr")
	addrSpace := cc.Size() - maxFabricMsg
	buf := make([]byte, maxFabricMsg)

	sumConn := func() wire.ConnStats {
		var s wire.ConnStats
		for _, cl := range clients {
			cs := cl.ConnStats()
			s.Sent += cs.Sent
			s.Retransmit += cs.Retransmit
			s.Timeouts += cs.Timeouts
		}
		return s
	}
	sumLB := func() wire.LoopbackStats {
		var s wire.LoopbackStats
		for _, lb := range lbs {
			ls := lb.Stats()
			s.Delivered += ls.Delivered
			s.Dropped += ls.Dropped
			s.Corrupted += ls.Corrupted
		}
		return s
	}
	type wireSnap struct {
		cs wire.ConnStats
		ls wire.LoopbackStats
	}
	deltas := make([]WireDelta, len(spec.Phases))
	lastPhase := -1
	var snap wireSnap
	boundary := func(next int) {
		s := wireSnap{sumConn(), sumLB()}
		if lastPhase >= 0 {
			d := &deltas[lastPhase]
			d.Sent += s.cs.Sent - snap.cs.Sent
			d.Retransmits += s.cs.Retransmit - snap.cs.Retransmit
			d.Timeouts += s.cs.Timeouts - snap.cs.Timeouts
			d.Dropped += s.ls.Dropped - snap.ls.Dropped
			d.Corrupted += s.ls.Corrupted - snap.ls.Corrupted
		}
		snap, lastPhase = s, next
	}
	boundary(-1)
	for i := range tagged {
		op := tagged[i].op
		if tagged[i].meta.phase != lastPhase {
			boundary(tagged[i].meta.phase)
		}
		if err := applyActs(op.Arrival); err != nil {
			return nil, err
		}
		if op.Size > maxFabricMsg {
			op.Size = maxFabricMsg
		}
		addr := (addrs.Uint64() % addrSpace) &^ 63
		clock.AdvanceTo(op.Arrival)
		fs.setCur(&op)
		start := clock.Now()
		foBefore := ccm.Failovers.Load()
		var opErr error
		if op.Read {
			_, opErr = cc.ReadSync(addr, op.Size)
		} else {
			opErr = cc.WriteSync(addr, buf[:op.Size])
		}
		fs.setCur(nil)
		results[i] = opDone{
			ok:       opErr == nil,
			failover: ccm.Failovers.Load() > foBefore,
			latency:  clock.Now() - start,
		}
	}
	// Membership changes scheduled past the last arrival still run (a kill
	// near the horizon must finish its re-mirror before the report).
	if err := applyActs(horizon + spec.DetectDelay); err != nil {
		return nil, err
	}
	boundary(-1)
	liveHorizon := clock.Now()
	connStats := sumConn()
	lbStats := sumLB()
	cc.Close()

	rep := &Report{
		Scenario: spec.Name, Backend: spec.Backend, Protocol: "EDM",
		Nodes: spec.Nodes, Seed: spec.Seed,
		Horizon: liveHorizon, Issued: len(tagged),
		Events:   len(events),
		Timeouts: connStats.Timeouts,
		Links: edm.LinkStats{
			Sent:      lbStats.Delivered,
			Dropped:   lbStats.Dropped,
			Corrupted: lbStats.Corrupted,
		},
		Cluster: &ClusterReport{
			MemNodes:    memN,
			Extents:     cc.Map().Extents(),
			ExtentBytes: cc.ExtentBytes(),
			FinalEpoch:  cc.Epoch(),
			Failovers:   ccm.Failovers.Load(),
			Rebalances:  rebalances,
			MovedBytes:  movedBytes,
			LostExtents: lostExt,
			RecoveryUS:  stats.Summarize(recoveryUS),
		},
	}
	type phaseAcc struct{ absNs []float64 }
	acc := make([]phaseAcc, len(spec.Phases))
	var recovery []float64
	prs := make([]PhaseReport, len(spec.Phases))
	for i, ph := range spec.Phases {
		prs[i].Name = ph.Name
		prs[i].Start = bounds[i].start
		prs[i].End = bounds[i].end
		prs[i].Wire = &deltas[i]
	}
	for i, t := range tagged {
		pr := &prs[t.meta.phase]
		pr.Issued++
		r := results[i]
		if r.ok {
			rep.Completed++
			pr.Done++
			acc[t.meta.phase].absNs = append(acc[t.meta.phase].absNs, r.latency.Nanoseconds())
			if r.failover {
				pr.Failover++
				rep.Failovers++
				recovery = append(recovery, r.latency.Microseconds())
			}
		} else {
			rep.Dropped++
			pr.Dropped++
		}
	}
	rep.Recovery = stats.Summarize(recovery)
	for i := range prs {
		prs[i].AbsNs = stats.Summarize(acc[i].absNs)
	}
	rep.Phases = prs
	return rep, nil
}
