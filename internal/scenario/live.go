package scenario

import (
	"sync"
	"time"

	"repro/internal/edm"
	"repro/internal/rmem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/internal/workload"
)

// liveRetry tunes the reliable layer for live scenario runs: a short real
// retransmission timer (the virtual clock, not the wall clock, is what the
// report measures) and enough retries to ride out a fault window a few
// microseconds of virtual time wide.
var liveRetry = wire.ConnConfig{RetryTimeout: time.Millisecond, MaxRetries: 8}

// rateWindow is a fault window with a deterministic 1-in-N hit counter.
type rateWindow struct {
	interval
	node  int
	oneIn uint64
	seen  uint64
}

// runLive executes the scenario against the real wire/rmem code path: an
// in-process rmem server behind the reliable-UDP protocol stack over the
// loopback transport. The trace is replayed closed-loop on the loopback's
// virtual clock (arrivals honoured via AdvanceTo), so every latency — and
// therefore the whole report — is a deterministic function of the spec.
// Fault events map onto the transport: LinkDown windows drop every datagram
// of ops touching the node, DropBurst windows drop 1-in-OneIn, CorruptBurst
// windows flip a bit in 1-in-OneIn (caught by the codec CRC and recovered
// by retransmission). Ops whose retry budget is exhausted inside a window
// surface as drops, the live analogue of the fabric backend's NULL-response
// timeouts.
func runLive(spec *Spec) (*Report, error) {
	part := workload.NewPartition(spec.Seed)
	tagged, bounds, horizon, err := buildTrace(part, spec)
	if err != nil {
		return nil, err
	}
	events := append(append([]Event(nil), spec.Events...),
		expandChaos(part.Sub("chaos"), spec.Chaos, spec.Nodes, horizon)...)
	sortEvents(events)

	// Per-node outage windows (flaps and absences are both just darkness at
	// this level, as on the fabric backend) and rate-limited burst windows.
	flapW, absentW := outageWindows(events)
	down := map[int][]interval{}
	for n := 0; n < spec.Nodes; n++ {
		iv := append(append([]interval(nil), flapW[n]...), absentW[n]...)
		sortIntervals(iv)
		down[n] = mergeIntervals(iv)
	}
	var bursts []*rateWindow
	burstKind := map[*rateWindow]EventKind{}
	for _, e := range events {
		if e.Kind != CorruptBurst && e.Kind != DropBurst {
			continue
		}
		oneIn := e.OneIn
		if oneIn == 0 {
			oneIn = 64
		}
		w := &rateWindow{interval: interval{e.At, e.Until}, node: e.Node, oneIn: oneIn}
		bursts = append(bursts, w)
		burstKind[w] = e.Kind
	}

	srv, err := rmem.NewServer(rmem.ServerConfig{})
	if err != nil {
		return nil, err
	}

	// cur names the op whose datagrams are currently on the wire; the fault
	// hook uses its endpoints and arrival time to decide which windows
	// apply. Windows are matched against the op's *arrival* (the spec's
	// timeline), not the transport's virtual now: the closed-loop replay
	// serializes the whole cluster's trace through one connection, so the
	// virtual clock outruns the arrival schedule almost immediately and
	// window membership in transport time would be meaningless. Arrival
	// matching also keeps fault exposure identical to the report's
	// definition on the other backends. The replay is closed-loop, so at
	// most one op is in flight — but retransmissions fire from timer
	// goroutines, hence the mutex.
	var curMu sync.Mutex
	var cur *workload.Op
	fault := func(_ sim.Time, _ wire.Dir, _ []byte) wire.Fault {
		curMu.Lock()
		op := cur
		curMu.Unlock()
		if op == nil {
			return wire.FaultNone // handshake/teardown traffic
		}
		for _, n := range []int{op.Src, op.Dst} {
			if _, hit := covering(down[n], op.Arrival); hit {
				return wire.FaultDrop
			}
		}
		for _, w := range bursts {
			if w.node != op.Src && w.node != op.Dst {
				continue
			}
			if op.Arrival < w.start || op.Arrival >= w.end {
				continue
			}
			w.seen++
			if w.seen%w.oneIn == 0 {
				if burstKind[w] == DropBurst {
					return wire.FaultDrop
				}
				return wire.FaultCorrupt
			}
		}
		return wire.FaultNone
	}

	lb := wire.NewLoopback(wire.LoopbackConfig{Fault: fault})
	client := rmem.NewClient(lb.ClientPipe(), rmem.ClientConfig{Window: 1, Retry: liveRetry})
	lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
	lb.BindClient(client.Deliver)
	if err := client.Connect(); err != nil {
		return nil, err
	}

	// Replay closed-loop. Addresses come from the partition's addr stream,
	// the same discipline as the fabric backend; sizes are clamped to the
	// block-level cap so live and fabric runs of one spec stay comparable.
	type opDone struct {
		ok      bool
		latency sim.Time
	}
	results := make([]opDone, len(tagged))
	addrs := part.Stream("addr")
	addrSpace := srv.Geometry().SlabBytes - maxFabricMsg
	buf := make([]byte, maxFabricMsg)

	// Per-phase transport deltas: counters are snapshotted at every phase
	// boundary of the (arrival-ordered) replay, so each phase's row in the
	// report attributes the retransmissions and fault hits it caused.
	// Handshake traffic lands in the baseline snapshot, not phase 0.
	type wireSnap struct {
		cs wire.ConnStats
		ls wire.LoopbackStats
	}
	deltas := make([]WireDelta, len(spec.Phases))
	lastPhase := -1
	var snap wireSnap
	boundary := func(next int) {
		s := wireSnap{client.ConnStats(), lb.Stats()}
		if lastPhase >= 0 {
			d := &deltas[lastPhase]
			d.Sent += s.cs.Sent - snap.cs.Sent
			d.Retransmits += s.cs.Retransmit - snap.cs.Retransmit
			d.Timeouts += s.cs.Timeouts - snap.cs.Timeouts
			d.Dropped += s.ls.Dropped - snap.ls.Dropped
			d.Corrupted += s.ls.Corrupted - snap.ls.Corrupted
		}
		snap, lastPhase = s, next
	}
	boundary(-1)
	for i := range tagged {
		op := tagged[i].op
		if tagged[i].meta.phase != lastPhase {
			boundary(tagged[i].meta.phase)
		}
		if op.Size > maxFabricMsg {
			op.Size = maxFabricMsg
		}
		addr := (addrs.Uint64() % addrSpace) &^ 63
		lb.AdvanceTo(op.Arrival)
		curMu.Lock()
		cur = &op
		curMu.Unlock()
		start := lb.Now()
		var opErr error
		if op.Read {
			_, opErr = client.ReadSync(addr, op.Size)
		} else {
			opErr = client.WriteSync(addr, buf[:op.Size])
		}
		curMu.Lock()
		cur = nil
		curMu.Unlock()
		results[i] = opDone{ok: opErr == nil, latency: lb.Now() - start}
	}
	boundary(-1)
	liveHorizon := lb.Now()
	connStats := client.ConnStats()
	client.Close()

	// Fault-window exposure, for the failover/corrupt counters and the
	// recovery summary — same definitions as the fabric backend.
	corrupt := probWindows(events, CorruptBurst)
	inOutage := func(op workload.Op) bool {
		for _, n := range []int{op.Src, op.Dst} {
			for _, w := range down[n] {
				if op.Arrival >= w.start && op.Arrival < w.end+spec.DetectDelay {
					return true
				}
			}
		}
		return false
	}
	inCorrupt := func(op workload.Op) bool {
		_, a := coveringProb(corrupt, op.Src, op.Arrival)
		_, b := coveringProb(corrupt, op.Dst, op.Arrival)
		return a || b
	}

	lbStats := lb.Stats()
	rep := &Report{
		Scenario: spec.Name, Backend: spec.Backend, Protocol: "EDM",
		Nodes: spec.Nodes, Seed: spec.Seed,
		Horizon: liveHorizon, Issued: len(tagged),
		Events:   len(events),
		Timeouts: connStats.Timeouts,
		Links: edm.LinkStats{
			Sent:      lbStats.Delivered,
			Dropped:   lbStats.Dropped,
			Corrupted: lbStats.Corrupted,
		},
	}
	type phaseAcc struct{ absNs []float64 }
	acc := make([]phaseAcc, len(spec.Phases))
	var recovery []float64
	prs := make([]PhaseReport, len(spec.Phases))
	for i, ph := range spec.Phases {
		prs[i].Name = ph.Name
		prs[i].Start = bounds[i].start
		prs[i].End = bounds[i].end
		prs[i].Wire = &deltas[i]
	}
	for i, t := range tagged {
		pr := &prs[t.meta.phase]
		pr.Issued++
		r := results[i]
		outage := inOutage(t.op)
		if inCorrupt(t.op) {
			pr.Corrupt++
			rep.Corrupted++
		}
		if r.ok {
			rep.Completed++
			pr.Done++
			acc[t.meta.phase].absNs = append(acc[t.meta.phase].absNs, r.latency.Nanoseconds())
			if outage {
				pr.Failover++
				rep.Failovers++
				recovery = append(recovery, r.latency.Microseconds())
			}
		} else {
			rep.Dropped++
			pr.Dropped++
		}
	}
	rep.Recovery = stats.Summarize(recovery)
	for i := range prs {
		prs[i].AbsNs = stats.Summarize(acc[i].absNs)
	}
	rep.Phases = prs
	return rep, nil
}
