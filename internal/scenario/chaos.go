package scenario

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// sizeDist resolves a phase profile name.
func sizeDist(name string) (workload.SizeDist, error) {
	return workload.SizeDistByName(name)
}

// expandChaos turns the chaos knobs into concrete fault events over
// [0, horizon), drawing every choice (victim node, window position, window
// length) from the partition's isolated chaos streams. The schedule is a
// pure function of (partition seed, chaos config, nodes, horizon).
func expandChaos(part *workload.Partition, c Chaos, nodes int, horizon sim.Time) []Event {
	if !c.enabled() || horizon <= 0 {
		return nil
	}
	// Windows are clamped to a quarter of the horizon so one chaos config
	// scales from nanosecond-scale block-level traces to millisecond
	// flow-level runs without a single flap swallowing the whole schedule.
	maxDur := horizon / 4
	if maxDur < 1 {
		maxDur = 1
	}
	clamp := func(d sim.Time) sim.Time {
		if d > maxDur {
			return maxDur
		}
		if d < 1 {
			return 1
		}
		return d
	}
	var events []Event
	flaps := part.Stream("flaps")
	for i := 0; i < c.LinkFlaps; i++ {
		node := flaps.Intn(nodes)
		dur := clamp(uniformTime(flaps, c.FlapMin, c.FlapMax))
		at := uniformTime(flaps, 0, horizon-dur)
		events = append(events, Event{
			Kind: LinkDown, Node: node, At: at, Until: at + dur,
		})
	}
	bursts := part.Stream("bursts")
	for i := 0; i < c.CorruptBursts; i++ {
		node := bursts.Intn(nodes)
		dur := clamp(uniformTime(bursts, c.BurstMin, c.BurstMax))
		at := uniformTime(bursts, 0, horizon-dur)
		events = append(events, Event{
			Kind: CorruptBurst, Node: node, At: at, Until: at + dur,
			OneIn: c.CorruptOneIn, Prob: c.CorruptProb,
		})
	}
	return events
}

// uniformTime draws uniformly from [lo, hi]; degenerate ranges return lo.
func uniformTime(r *workload.Rand, lo, hi sim.Time) sim.Time {
	if hi <= lo {
		return lo
	}
	return lo + sim.Time(r.Float64()*float64(hi-lo))
}

// sortEvents orders events by (At, Kind, Node) for deterministic replay.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Node < b.Node
	})
}

// outageWindows derives per-node outage intervals from the event list,
// split by flow-level consequence: flaps (LinkDown) are recoverable — a
// dual-ToR survivor plane can carry the op once the loss is detected —
// while absences (NodeLeave's permanent departure, NodeJoin's pre-join
// window) have no survivor, so their ops are always dropped.
type interval struct{ start, end sim.Time }

const forever = sim.Time(1) << 62

func outageWindows(events []Event) (flaps, absent map[int][]interval) {
	flaps, absent = map[int][]interval{}, map[int][]interval{}
	for _, e := range events {
		switch e.Kind {
		case LinkDown:
			flaps[e.Node] = append(flaps[e.Node], interval{e.At, e.Until})
		case NodeLeave:
			absent[e.Node] = append(absent[e.Node], interval{e.At, forever})
		case NodeJoin:
			absent[e.Node] = append(absent[e.Node], interval{0, e.At})
		}
	}
	for _, m := range []map[int][]interval{flaps, absent} {
		for n := range m {
			iv := m[n]
			sortIntervals(iv)
			m[n] = mergeIntervals(iv)
		}
	}
	return flaps, absent
}

func sortIntervals(iv []interval) {
	sort.Slice(iv, func(i, j int) bool { return iv[i].start < iv[j].start })
}

// mergeIntervals coalesces overlapping or touching intervals; input must be
// sorted by start.
func mergeIntervals(iv []interval) []interval {
	if len(iv) <= 1 {
		return iv
	}
	out := iv[:1]
	for _, w := range iv[1:] {
		last := &out[len(out)-1]
		if w.start <= last.end {
			if w.end > last.end {
				last.end = w.end
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// lookup returns the interval covering t, if any.
func covering(iv []interval, t sim.Time) (interval, bool) {
	for _, w := range iv {
		if t >= w.start && t < w.end {
			return w, true
		}
	}
	return interval{}, false
}
