package scenario

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Run executes the scenario and returns its report. The report is a
// deterministic function of the (validated) spec: equal specs produce
// byte-identical Format output.
func Run(spec *Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Backend {
	case BackendFabric:
		return runFabric(spec)
	case BackendLive:
		return runLive(spec)
	case BackendLiveCluster:
		return runLiveCluster(spec)
	default:
		return runNetsim(spec)
	}
}

// opMeta carries per-op scenario state through generation, fault
// transformation and the protocol run.
type opMeta struct {
	phase    int
	corrupt  bool
	failover bool
	dropped  bool
	recovery sim.Time // failover deferral (intended arrival -> actual issue)
}

type taggedOp struct {
	op   workload.Op
	meta opMeta
}

// buildTrace generates the phase-shifted load schedule: each phase's ops
// come from an isolated sub-partition and are offset to start where the
// previous phase's arrival window ends. It returns the tagged ops sorted by
// arrival, the per-phase arrival windows, and the trace horizon.
func buildTrace(part *workload.Partition, spec *Spec) ([]taggedOp, []interval, sim.Time, error) {
	var tagged []taggedOp
	bounds := make([]interval, len(spec.Phases))
	offset := sim.Time(0)
	for i, ph := range spec.Phases {
		dist, err := sizeDist(ph.Profile)
		if err != nil {
			return nil, nil, 0, err
		}
		ops, err := workload.GeneratePartitioned(part.Sub(fmt.Sprintf("phase/%d", i)), workload.GenConfig{
			Nodes: spec.Nodes, Load: ph.Load, Bandwidth: spec.Bandwidth,
			Sizes: dist, ReadFrac: ph.ReadFrac, Count: ph.Count,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		var span sim.Time
		for _, op := range ops {
			if op.Arrival > span {
				span = op.Arrival
			}
		}
		for _, op := range ops {
			op.Arrival += offset
			tagged = append(tagged, taggedOp{op: op, meta: opMeta{phase: i}})
		}
		bounds[i] = interval{offset, offset + span + 1}
		offset += span + 1
	}
	sortTagged(tagged)
	return tagged, bounds, offset, nil
}

func sortTagged(tagged []taggedOp) {
	sort.Slice(tagged, func(i, j int) bool {
		a, b := tagged[i].op, tagged[j].op
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// probWindow is a fault window with a per-op hit probability (flow level).
type probWindow struct {
	interval
	prob float64
}

func probWindows(events []Event, kind EventKind) map[int][]probWindow {
	m := map[int][]probWindow{}
	for _, e := range events {
		if e.Kind != kind {
			continue
		}
		m[e.Node] = append(m[e.Node], probWindow{interval{e.At, e.Until}, e.Prob})
	}
	return m
}

func coveringProb(m map[int][]probWindow, node int, t sim.Time) (float64, bool) {
	for _, w := range m[node] {
		if t >= w.start && t < w.end {
			return w.prob, true
		}
	}
	return 0, false
}

// applyFaults transforms the trace per the fault timeline, flow-level
// semantics:
//
//   - An op whose src or dst link is flapped down at its arrival is
//     deferred to the outage's end plus DetectDelay (policy Failover, the
//     §3.3 dual-ToR behaviour: the survivor plane carries it once the loss
//     is detected) or discarded (policy Drop). Ops touching an absent node
//     (departed, or not yet joined) are always discarded — there is no
//     survivor plane for a node that is not there.
//   - An op inside a corruption window covering its src or dst is hit with
//     the window's probability; a hit costs one full retransmission (its
//     measured latency is doubled after the protocol run).
//   - An op inside a drop window is discarded with the window's probability.
//
// Every probabilistic choice draws from the partition's "fault-coins"
// stream in arrival order, so the transformation is deterministic.
func applyFaults(part *workload.Partition, spec *Spec, tagged []taggedOp, events []Event) {
	flaps, absent := outageWindows(events)
	corrupt := probWindows(events, CorruptBurst)
	lossy := probWindows(events, DropBurst)
	coins := part.Stream("fault-coins")
	for i := range tagged {
		t := &tagged[i]
		arr := t.op.Arrival
		for hop := 0; hop < 16; hop++ {
			if _, gone := covering(absent[t.op.Src], arr); gone {
				t.meta.dropped = true
				break
			}
			if _, gone := covering(absent[t.op.Dst], arr); gone {
				t.meta.dropped = true
				break
			}
			w, ok := covering(flaps[t.op.Src], arr)
			if !ok {
				w, ok = covering(flaps[t.op.Dst], arr)
			}
			if !ok {
				break
			}
			if spec.Policy == Drop {
				t.meta.dropped = true
				break
			}
			arr = w.end + spec.DetectDelay
		}
		if t.meta.dropped {
			continue
		}
		if arr != t.op.Arrival {
			t.meta.failover = true
			t.meta.recovery = arr - t.op.Arrival
			t.op.Arrival = arr
		}
		if p, ok := coveringProb(lossy, t.op.Src, arr); ok {
			if coins.Float64() < p {
				t.meta.dropped = true
				continue
			}
		} else if p, ok := coveringProb(lossy, t.op.Dst, arr); ok {
			if coins.Float64() < p {
				t.meta.dropped = true
				continue
			}
		}
		if p, ok := coveringProb(corrupt, t.op.Src, arr); ok {
			t.meta.corrupt = coins.Float64() < p
		} else if p, ok := coveringProb(corrupt, t.op.Dst, arr); ok {
			t.meta.corrupt = coins.Float64() < p
		}
	}
}

// liveOps drops discarded ops, re-sorts (failover moved arrivals) and
// re-indexes; the returned meta slice is aligned with op Index.
func liveOps(tagged []taggedOp) ([]workload.Op, []opMeta) {
	live := tagged[:0:0]
	for _, t := range tagged {
		if !t.meta.dropped {
			live = append(live, t)
		}
	}
	sortTagged(live)
	ops := make([]workload.Op, len(live))
	meta := make([]opMeta, len(live))
	for i, t := range live {
		t.op.Index = i
		ops[i] = t.op
		meta[i] = t.meta
	}
	return ops, meta
}

func runNetsim(spec *Spec) (*Report, error) {
	proto := netsim.ProtocolByName(spec.Protocol)
	if proto == nil {
		return nil, fmt.Errorf("scenario %s: unknown protocol %q", spec.Name, spec.Protocol)
	}
	part := workload.NewPartition(spec.Seed)
	tagged, bounds, horizon, err := buildTrace(part, spec)
	if err != nil {
		return nil, err
	}
	events := append(append([]Event(nil), spec.Events...),
		expandChaos(part.Sub("chaos"), spec.Chaos, spec.Nodes, horizon)...)
	sortEvents(events)
	applyFaults(part, spec, tagged, events)
	ops, meta := liveOps(tagged)
	if len(ops) == 0 {
		return nil, fmt.Errorf("scenario %s: every op was dropped", spec.Name)
	}

	cfg := netsim.Config{
		Nodes: spec.Nodes, Bandwidth: spec.Bandwidth,
		Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: spec.MTU,
	}
	res, err := netsim.RunNormalized(proto, cfg, ops)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	// Corruption penalty: detection happens only once the full message has
	// arrived, and the retransmission traverses the same loaded path — one
	// hit doubles the op's completion latency.
	for i := range res.Ops {
		if meta[res.Ops[i].Op.Index].corrupt {
			res.Ops[i].Latency *= 2
		}
	}

	rep := &Report{
		Scenario: spec.Name, Backend: spec.Backend, Protocol: proto.Name(),
		Nodes: spec.Nodes, Seed: spec.Seed,
		Horizon: res.Horizon, Issued: len(tagged), Completed: res.Completed,
		Events: len(events),
	}
	type phaseAcc struct {
		absNs, norm, recovery []float64
	}
	acc := make([]phaseAcc, len(spec.Phases))
	var recovery []float64
	for _, t := range tagged {
		m := t.meta
		if m.dropped {
			rep.Dropped++
		}
		if m.failover {
			rep.Failovers++
			recovery = append(recovery, m.recovery.Microseconds())
		}
		if m.corrupt && !m.dropped {
			rep.Corrupted++
		}
	}
	for _, o := range res.Ops {
		m := meta[o.Op.Index]
		a := &acc[m.phase]
		a.absNs = append(a.absNs, o.Latency.Nanoseconds())
		if o.Ideal > 0 {
			a.norm = append(a.norm, float64(o.Latency)/float64(o.Ideal))
		}
	}
	rep.Recovery = stats.Summarize(recovery)
	// Report phase windows in the same timebase as Horizon: RunNormalized
	// stretches arrivals by the protocol's wire inflation, so the trace-
	// timebase bounds are mapped through the same ratio.
	wire, data := netsim.ArrivalScale(proto, ops)
	for i, ph := range spec.Phases {
		pr := PhaseReport{
			Name:  ph.Name,
			Start: netsim.ScaleArrival(bounds[i].start, wire, data),
			End:   netsim.ScaleArrival(bounds[i].end, wire, data),
			AbsNs: stats.Summarize(acc[i].absNs),
			Norm:  stats.Summarize(acc[i].norm),
			Done:  len(acc[i].absNs),
		}
		for _, t := range tagged {
			if t.meta.phase != i {
				continue
			}
			pr.Issued++
			if t.meta.dropped {
				pr.Dropped++
			} else {
				if t.meta.corrupt {
					pr.Corrupt++
				}
				if t.meta.failover {
					pr.Failover++
				}
			}
		}
		rep.Phases = append(rep.Phases, pr)
	}
	return rep, nil
}
