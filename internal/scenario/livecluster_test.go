package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestLiveClusterDeterministic runs the built-in 16-node live-cluster
// scenario (a node is killed mid-run) twice: the dual-homed service over N
// loopbacks must lose zero ops, recover within the retry budget, and render
// byte-identical reports.
func TestLiveClusterDeterministic(t *testing.T) {
	run := func() (*Report, string) {
		rep, err := Run(Builtin("live-cluster"))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Format(&buf); err != nil {
			t.Fatal(err)
		}
		return rep, buf.String()
	}
	rep, a := run()
	_, b := run()
	if a != b {
		t.Fatalf("live-cluster backend not deterministic:\n%s\n---\n%s", a, b)
	}
	if rep.Backend != BackendLiveCluster {
		t.Fatalf("backend %q", rep.Backend)
	}
	if rep.Completed != rep.Issued || rep.Dropped != 0 {
		t.Fatalf("a mid-run node kill must lose zero ops on a dual-homed cluster: %+v", rep)
	}
	c := rep.Cluster
	if c == nil {
		t.Fatal("no cluster section in a live-cluster report")
	}
	if c.MemNodes != 16 {
		t.Fatalf("mem nodes %d", c.MemNodes)
	}
	if c.Failovers == 0 {
		t.Error("killing a node triggered no failovers")
	}
	if c.FinalEpoch == 0 {
		t.Error("node kill never advanced the map epoch")
	}
	if c.Rebalances == 0 || c.MovedBytes == 0 {
		t.Errorf("node kill triggered no re-mirroring: %+v", c)
	}
	if c.LostExtents != 0 {
		t.Errorf("%d extents lost on a single-node kill", c.LostExtents)
	}
	// Recovery is bounded: detection delay plus the re-mirror pass, well
	// under the virtual run horizon.
	if c.RecoveryUS.N == 0 || sim.Time(c.RecoveryUS.Max*float64(sim.Microsecond)) > rep.Horizon {
		t.Errorf("recovery unbounded or unmeasured: %+v (horizon %v)", c.RecoveryUS, rep.Horizon)
	}
	if !strings.Contains(a, "cluster faults") {
		t.Errorf("report rendering missing cluster lines:\n%s", a)
	}
}

// TestLiveClusterJoin: a node that joins mid-run starts outside the
// membership, is admitted at the event time, and receives its extents.
func TestLiveClusterJoin(t *testing.T) {
	spec := &Spec{
		Name: "cluster-join", Backend: BackendLiveCluster, Nodes: 4, MemNodes: 4, Seed: 9,
		Phases: []Phase{
			{Name: "p", Count: 300, Load: 0.3, ReadFrac: 0.5, Profile: "fixed64"},
		},
		Events: []Event{
			{Kind: NodeJoin, Node: 3, At: 3 * sim.Microsecond},
		},
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("join lost %d ops", rep.Dropped)
	}
	c := rep.Cluster
	// Pre-darkened leave (epoch 1) plus the join (epoch 2).
	if c.FinalEpoch != 2 {
		t.Fatalf("final epoch %d, want 2", c.FinalEpoch)
	}
	if c.Rebalances != 1 || c.MovedBytes == 0 {
		t.Fatalf("join did not re-mirror onto the new node: %+v", c)
	}
}

// TestLiveClusterValidate: the backend requires at least two memory nodes
// and defaults MemNodes to Nodes.
func TestLiveClusterValidate(t *testing.T) {
	s := &Spec{Name: "v", Backend: BackendLiveCluster, Nodes: 4,
		Phases: []Phase{{Count: 10, Load: 0.5, Profile: "fixed64"}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MemNodes != 4 {
		t.Fatalf("MemNodes default %d, want Nodes", s.MemNodes)
	}
	bad := &Spec{Name: "v", Backend: BackendLiveCluster, Nodes: 4, MemNodes: 1,
		Phases: []Phase{{Count: 10, Load: 0.5, Profile: "fixed64"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("single-node cluster accepted")
	}
	// Events must target memory nodes, not compute nodes.
	evt := &Spec{Name: "v", Backend: BackendLiveCluster, Nodes: 2, MemNodes: 8,
		Phases: []Phase{{Count: 10, Load: 0.5, Profile: "fixed64"}},
		Events: []Event{{Kind: NodeLeave, Node: 7, At: sim.Microsecond}}}
	if err := evt.Validate(); err != nil {
		t.Fatalf("event on memory node 7 of 8 rejected: %v", err)
	}
}
