package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestLiveBackendDeterministic runs the built-in live scenario twice: the
// real wire/rmem code path over the loopback must render byte-identical
// reports, with its fault windows actually exercised and recovered.
func TestLiveBackendDeterministic(t *testing.T) {
	run := func() (*Report, string) {
		rep, err := Run(Builtin("live-loopback"))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Format(&buf); err != nil {
			t.Fatal(err)
		}
		return rep, buf.String()
	}
	rep, a := run()
	_, b := run()
	if a != b {
		t.Fatalf("live backend not deterministic:\n%s\n---\n%s", a, b)
	}
	if rep.Backend != BackendLive {
		t.Fatalf("backend %q", rep.Backend)
	}
	if rep.Completed != rep.Issued || rep.Dropped != 0 {
		t.Fatalf("burst faults should be recovered by retransmission: %+v", rep)
	}
	if rep.Links.Dropped == 0 {
		t.Error("drop burst never dropped a datagram")
	}
	if rep.Links.Corrupted == 0 {
		t.Error("corruption burst never corrupted a datagram")
	}
	if rep.Corrupted == 0 {
		t.Error("no ops counted as corruption-exposed")
	}
	ph := rep.Phases[0]
	if ph.AbsNs.N == 0 || ph.AbsNs.Max <= ph.AbsNs.P50 {
		t.Errorf("expected a retransmission latency tail, got %+v", ph.AbsNs)
	}
	if !strings.Contains(a, "backend") || !strings.Contains(a, "live") {
		t.Errorf("report rendering missing backend line:\n%s", a)
	}
}

// TestLiveBackendOutage: ops arriving inside a link-down window exhaust
// their retry budget and surface as drops and timeouts, like the fabric
// backend's NULL responses.
func TestLiveBackendOutage(t *testing.T) {
	spec := &Spec{
		Name: "live-outage", Backend: BackendLive, Nodes: 4, Seed: 3,
		Phases: []Phase{
			{Name: "p", Count: 240, Load: 0.4, ReadFrac: 0.5, Profile: "fixed64"},
		},
		Events: []Event{
			{Kind: LinkDown, Node: 1, At: 2 * sim.Microsecond, Until: 3 * sim.Microsecond},
		},
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatalf("outage window lost no ops: %+v", rep)
	}
	if rep.Timeouts == 0 {
		t.Fatalf("outage produced no retry-budget timeouts: %+v", rep)
	}
	if rep.Completed+rep.Dropped != rep.Issued {
		t.Fatalf("op accounting: %d + %d != %d", rep.Completed, rep.Dropped, rep.Issued)
	}
	if rep.Phases[0].Dropped != rep.Dropped {
		t.Fatalf("phase accounting disagrees: %+v", rep.Phases[0])
	}
}

// TestLiveBackendValidate: backend "live" is a first-class spec value with
// the fabric-style bandwidth default.
func TestLiveBackendValidate(t *testing.T) {
	s := &Spec{Name: "v", Backend: BackendLive, Nodes: 4,
		Phases: []Phase{{Count: 10, Load: 0.5, Profile: "fixed64"}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Bandwidth != 25 {
		t.Fatalf("bandwidth default %v", s.Bandwidth)
	}
}
