package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// PFC models lossless Ethernet (priority flow control) under an RDMA-class
// stack: an input-queued switch whose per-ingress FIFOs pause the upstream
// sender above Xoff and resume below Xon. Losslessness costs head-of-line
// blocking: the ingress FIFO head waiting for a busy egress blocks every
// packet behind it, including traffic for idle egresses — the failure mode
// §2.4 limitation 6 describes. (DCQCN's rate control is subsumed by the
// pause behaviour at this timescale.)
type PFC struct {
	// XoffBytes pauses the sender when the ingress queue exceeds it
	// (default 20 KB); XonBytes resumes below it (default 10 KB).
	XoffBytes int64
	XonBytes  int64
}

// Name implements Protocol.
func (p *PFC) Name() string { return "PFC" }

// WireBytes implements Protocol.
func (p *PFC) WireBytes(n int) int {
	total := 0
	for _, k := range packetize(n, 1500) {
		total += transport.WireBytes(transport.StackRoCE, k)
	}
	return total
}

// ReqWireBytes implements Protocol.
func (p *PFC) ReqWireBytes() int { return transport.WireBytes(transport.StackRoCE, 8) }

func (p *PFC) defaults() {
	if p.XoffBytes == 0 {
		p.XoffBytes = 20 << 10
	}
	if p.XonBytes == 0 {
		p.XonBytes = 10 << 10
	}
}

type pfcPkt struct {
	opIdx int
	data  int
	isReq bool
	size  int
	wire  int
	src   int
	dst   int
}

// pfcIngress is one ingress port: an unbounded FIFO whose occupancy drives
// pause frames.
type pfcIngress struct {
	q      []*pfcPkt
	bytes  int64
	paused bool
}

type pfcRun struct {
	p       *PFC
	cfg     Config
	eng     *sim.Engine
	up      []*pipe // sender NIC serializers
	nicQ    [][]*pfcPkt
	nicBusy []bool
	ingress []*pfcIngress
	egBusy  []bool
	rr      []int // per-egress round-robin ingress pointer
	track   *tracker
	pauses  uint64
}

// Run implements Protocol.
func (p *PFC) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p.defaults()
	eng := sim.NewEngine()
	r := &pfcRun{p: p, cfg: cfg, eng: eng, track: newTracker(eng, p.Name(), ops)}
	r.up = make([]*pipe, cfg.Nodes)
	r.nicQ = make([][]*pfcPkt, cfg.Nodes)
	r.nicBusy = make([]bool, cfg.Nodes)
	r.ingress = make([]*pfcIngress, cfg.Nodes)
	r.egBusy = make([]bool, cfg.Nodes)
	r.rr = make([]int, cfg.Nodes)
	for i := range r.up {
		r.up[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
		r.ingress[i] = &pfcIngress{}
	}
	for _, op := range ops {
		op := op
		eng.At(op.Arrival, func() { r.arrive(op) })
	}
	eng.Run()
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("pfc run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

func (r *pfcRun) arrive(op workload.Op) {
	r.eng.After(transport.RoCEStackLatency, func() {
		if op.Read {
			pkt := &pfcPkt{opIdx: op.Index, isReq: true, size: op.Size, src: op.Src, dst: op.Dst}
			pkt.wire = transport.WireBytes(transport.StackRoCE, 8)
			r.nicEnqueue(pkt)
			return
		}
		r.enqueueData(op.Src, op.Dst, op.Index, op.Size)
	})
}

func (r *pfcRun) enqueueData(src, dst, opIdx, size int) {
	for _, n := range packetize(size, r.cfg.MTU) {
		pkt := &pfcPkt{opIdx: opIdx, data: n, size: size, src: src, dst: dst}
		pkt.wire = transport.WireBytes(transport.StackRoCE, n)
		r.nicEnqueue(pkt)
	}
}

// nicEnqueue queues at the sender NIC; the NIC serializes unless paused.
func (r *pfcRun) nicEnqueue(pkt *pfcPkt) {
	r.nicQ[pkt.src] = append(r.nicQ[pkt.src], pkt)
	r.nicPump(pkt.src)
}

func (r *pfcRun) nicPump(src int) {
	if r.nicBusy[src] || len(r.nicQ[src]) == 0 || r.ingress[src].paused {
		return
	}
	r.nicBusy[src] = true
	pkt := r.nicQ[src][0]
	r.nicQ[src] = r.nicQ[src][1:]
	tx := sim.TransmissionTime(pkt.wire, r.cfg.Bandwidth)
	r.eng.After(tx, func() {
		r.nicBusy[src] = false
		r.nicPump(src) // pipeline next packet while this one propagates
	})
	r.eng.After(tx+r.cfg.linkLat(), func() { r.ingressArrive(pkt) })
}

// ingressArrive appends to the ingress FIFO and manages pause state.
func (r *pfcRun) ingressArrive(pkt *pfcPkt) {
	ing := r.ingress[pkt.src]
	ing.q = append(ing.q, pkt)
	ing.bytes += int64(pkt.wire)
	if !ing.paused && ing.bytes > r.p.XoffBytes {
		// Pause frame reaches the sender after one propagation; modelled
		// as taking effect now at the NIC pump (conservatively early) —
		// in-flight packets still land, as with real PFC headroom.
		ing.paused = true
		r.pauses++
	}
	r.tryForward(pkt.dst)
}

// tryForward matches free egresses to ingress heads, round-robin.
func (r *pfcRun) tryForward(egressHint int) {
	for _, d := range r.candidates(egressHint) {
		if r.egBusy[d] {
			continue
		}
		// Find an ingress whose HEAD targets d, starting at the RR pointer.
		n := r.cfg.Nodes
		for k := 0; k < n; k++ {
			i := (r.rr[d] + k) % n
			ing := r.ingress[i]
			if len(ing.q) == 0 || ing.q[0].dst != d {
				continue
			}
			r.rr[d] = (i + 1) % n
			pkt := ing.q[0]
			ing.q = ing.q[1:]
			ing.bytes -= int64(pkt.wire)
			if ing.paused && ing.bytes < r.p.XonBytes {
				ing.paused = false
				r.nicPump(i)
			}
			r.egBusy[d] = true
			tx := sim.TransmissionTime(pkt.wire, r.cfg.Bandwidth)
			// The egress is occupied for the serialization time only; the
			// L2 pipeline latency is pipelined, not occupancy.
			r.eng.After(tx, func() {
				r.egBusy[d] = false
				r.eng.After(transport.L2ForwardingLatency+r.cfg.linkLat(), func() { r.deliver(pkt) })
				// Freeing this egress may unblock several ingress heads.
				r.tryForwardAll()
			})
			break
		}
	}
}

// candidates returns the egress set to try: just the hinted one normally.
func (r *pfcRun) candidates(hint int) []int { return []int{hint} }

// tryForwardAll rescans every egress (after an egress frees, any ingress
// head may now be forwardable).
func (r *pfcRun) tryForwardAll() {
	for d := 0; d < r.cfg.Nodes; d++ {
		r.tryForward(d)
	}
}

func (r *pfcRun) deliver(pkt *pfcPkt) {
	r.eng.After(transport.RoCEStackLatency, func() {
		if pkt.isReq {
			r.enqueueData(pkt.dst, pkt.src, pkt.opIdx, pkt.size)
			return
		}
		r.track.delivered(pkt.opIdx, pkt.data)
	})
}
