package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// CXL models a PCIe/CXL switch fabric: 256 B flits, link-level credit-based
// flow control, and an input-queued switch. Its unloaded latency is
// excellent (thin stack, ~100 ns per switch hop), but under load the
// credit loop fails exactly as §4.3.1 describes: an incast victim egress
// holds flits in ingress queues, those flits pin credits, and the deficit
// blocks every other flow crossing the same ingress — head-of-line
// blocking equivalent to PFC's.
type CXL struct {
	// FlitBytes is the transfer granularity (default 256, CXL 3.0 flit).
	FlitBytes int
	// Credits per sender link (default 8 flits).
	Credits int
	// HopLatency is the per-switch-hop latency (default 100 ns, Pond).
	HopLatency sim.Time
	// StackLatency is the endpoint controller latency (default 70 ns).
	StackLatency sim.Time
}

// Name implements Protocol.
func (c *CXL) Name() string { return "CXL" }

// WireBytes implements Protocol.
func (c *CXL) WireBytes(n int) int {
	flit := c.FlitBytes
	if flit == 0 {
		flit = 256
	}
	total := 0
	for _, f := range packetize(n, flit) {
		total += f + cxlFlitOverhead
	}
	return total
}

// ReqWireBytes implements Protocol.
func (c *CXL) ReqWireBytes() int { return 64 + cxlFlitOverhead }

func (c *CXL) defaults() {
	if c.FlitBytes == 0 {
		c.FlitBytes = 256
	}
	if c.Credits == 0 {
		c.Credits = 8
	}
	if c.HopLatency == 0 {
		c.HopLatency = 100 * sim.Nanosecond
	}
	if c.StackLatency == 0 {
		c.StackLatency = 70 * sim.Nanosecond
	}
}

// cxlFlitOverhead is the per-flit framing (CRC, sequence, DLLP share).
const cxlFlitOverhead = 16

type cxlFlit struct {
	opIdx int
	data  int
	isReq bool
	size  int
	wire  int
	src   int
	dst   int
}

type cxlIngress struct {
	q     []*cxlFlit
	bytes int64
}

type cxlRun struct {
	p       *CXL
	cfg     Config
	eng     *sim.Engine
	nicQ    [][]*cxlFlit
	nicBusy []bool
	credits []int
	ingress []*cxlIngress
	egBusy  []bool
	rr      []int
	track   *tracker
	stalls  uint64 // sends blocked on zero credits
}

// Run implements Protocol.
func (c *CXL) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c.defaults()
	eng := sim.NewEngine()
	r := &cxlRun{p: c, cfg: cfg, eng: eng, track: newTracker(eng, c.Name(), ops)}
	r.nicQ = make([][]*cxlFlit, cfg.Nodes)
	r.nicBusy = make([]bool, cfg.Nodes)
	r.credits = make([]int, cfg.Nodes)
	r.ingress = make([]*cxlIngress, cfg.Nodes)
	r.egBusy = make([]bool, cfg.Nodes)
	r.rr = make([]int, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		r.credits[i] = c.Credits
		r.ingress[i] = &cxlIngress{}
	}
	for _, op := range ops {
		op := op
		eng.At(op.Arrival, func() { r.arrive(op) })
	}
	eng.Run()
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("cxl run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

func (r *cxlRun) arrive(op workload.Op) {
	r.eng.After(r.p.StackLatency, func() {
		if op.Read {
			// Read request flit c->m; the memory side streams data back.
			f := &cxlFlit{opIdx: op.Index, isReq: true, size: op.Size, src: op.Src, dst: op.Dst}
			f.wire = 64 + cxlFlitOverhead // request slot: address + framing
			r.nicEnqueue(f)
			return
		}
		r.enqueueData(op.Src, op.Dst, op.Index, op.Size)
	})
}

func (r *cxlRun) enqueueData(src, dst, opIdx, size int) {
	for _, n := range packetize(size, r.p.FlitBytes) {
		f := &cxlFlit{opIdx: opIdx, data: n, size: size, src: src, dst: dst}
		f.wire = n + cxlFlitOverhead // per-flit framing (CRC, sequence)
		r.nicEnqueue(f)
	}
}

func (r *cxlRun) nicEnqueue(f *cxlFlit) {
	r.nicQ[f.src] = append(r.nicQ[f.src], f)
	r.nicPump(f.src)
}

// nicPump serializes flits while credits remain.
func (r *cxlRun) nicPump(src int) {
	if r.nicBusy[src] || len(r.nicQ[src]) == 0 {
		return
	}
	if r.credits[src] == 0 {
		r.stalls++
		return // resumed by credit return
	}
	r.nicBusy[src] = true
	r.credits[src]--
	f := r.nicQ[src][0]
	r.nicQ[src] = r.nicQ[src][1:]
	tx := sim.TransmissionTime(f.wire, r.cfg.Bandwidth)
	r.eng.After(tx, func() {
		r.nicBusy[src] = false
		r.nicPump(src)
	})
	r.eng.After(tx+r.cfg.linkLat(), func() { r.ingressArrive(f) })
}

func (r *cxlRun) ingressArrive(f *cxlFlit) {
	ing := r.ingress[f.src]
	ing.q = append(ing.q, f)
	ing.bytes += int64(f.wire)
	r.tryForward(f.dst)
}

// tryForward advances ingress heads into free egresses. A flit leaving its
// ingress queue returns one credit to the sender (after one propagation).
func (r *cxlRun) tryForward(d int) {
	if r.egBusy[d] {
		return
	}
	n := r.cfg.Nodes
	for k := 0; k < n; k++ {
		i := (r.rr[d] + k) % n
		ing := r.ingress[i]
		if len(ing.q) == 0 || ing.q[0].dst != d {
			continue
		}
		r.rr[d] = (i + 1) % n
		f := ing.q[0]
		ing.q = ing.q[1:]
		ing.bytes -= int64(f.wire)
		// Credit return to sender i.
		r.eng.After(r.cfg.Prop, func() {
			r.credits[i]++
			r.nicPump(i)
		})
		r.egBusy[d] = true
		tx := sim.TransmissionTime(f.wire, r.cfg.Bandwidth)
		// Egress occupied for serialization only; the switch hop latency is
		// pipelined.
		r.eng.After(tx, func() {
			r.egBusy[d] = false
			r.eng.After(r.p.HopLatency+r.cfg.linkLat(), func() { r.deliver(f) })
			r.tryForwardAll()
		})
		return
	}
}

func (r *cxlRun) tryForwardAll() {
	for d := 0; d < r.cfg.Nodes; d++ {
		r.tryForward(d)
	}
}

func (r *cxlRun) deliver(f *cxlFlit) {
	r.eng.After(r.p.StackLatency, func() {
		if f.isReq {
			r.enqueueData(f.dst, f.src, f.opIdx, f.size)
			return
		}
		r.track.delivered(f.opIdx, f.data)
	})
}
