package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Fastpass models the centralized server-based arbiter with the paper's
// idealized assumptions: the arbiter solves the global matching infinitely
// fast and assigns conflict-free timeslots, but every request and grant
// must cross the arbiter server's single 100 Gbps NIC. With per-message
// control traffic and hundreds of nodes, that NIC is the bottleneck — the
// aggregate cluster bandwidth is >100x the server's — so control messages
// queue for ages even though the data plane is perfectly scheduled.
type Fastpass struct {
	// ControlBytes is the wire size of a request or grant (default: one
	// minimum Ethernet frame, 84 B).
	ControlBytes int
	// Stack is the endpoint stack latency (default RoCE-class).
	Stack sim.Time
}

// Name implements Protocol.
func (f *Fastpass) Name() string { return "Fastpass" }

// WireBytes implements Protocol.
func (f *Fastpass) WireBytes(n int) int { return dataWireRoCE(n, 1500) }

// ReqWireBytes implements Protocol: the request/grant pair rides the
// arbiter links, not the data path.
func (f *Fastpass) ReqWireBytes() int { return 0 }

type fpRun struct {
	p        *Fastpass
	cfg      Config
	eng      *sim.Engine
	up, down []*pipe
	// arbIn serializes all requests into the arbiter; arbOut all grants
	// out of it. These two pipes are the protocol's defining bottleneck.
	arbIn, arbOut *pipe
	srcFree       []sim.Time // per-source next free timeslot
	dstFree       []sim.Time
	track         *tracker
}

// Run implements Protocol.
func (f *Fastpass) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctl := f.ControlBytes
	if ctl == 0 {
		ctl = 84
	}
	stack := f.Stack
	if stack == 0 {
		stack = transport.RoCEStackLatency
	}
	eng := sim.NewEngine()
	r := &fpRun{p: f, cfg: cfg, eng: eng, track: newTracker(eng, f.Name(), ops)}
	r.up = make([]*pipe, cfg.Nodes)
	r.down = make([]*pipe, cfg.Nodes)
	r.srcFree = make([]sim.Time, cfg.Nodes)
	r.dstFree = make([]sim.Time, cfg.Nodes)
	for i := range r.up {
		r.up[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
		r.down[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
	}
	r.arbIn = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
	r.arbOut = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
	for _, op := range ops {
		op := op
		eng.At(op.Arrival, func() {
			eng.After(stack, func() { r.request(op, ctl, stack) })
		})
	}
	eng.Run()
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("fastpass run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

// request sends the demand to the arbiter. For reads the data sender is the
// memory node; the requesting side's ask covers it (Fastpass would have the
// memory node ask, adding RTT/2, modelled as one extra propagation).
func (r *fpRun) request(op workload.Op, ctl int, stack sim.Time) {
	src, dst := op.Src, op.Dst
	if op.Read {
		src, dst = op.Dst, op.Src
	}
	extra := sim.Time(0)
	if op.Read {
		extra = 2 * r.cfg.Prop // request leg to the memory node
	}
	r.eng.After(extra, func() {
		// Request: sender uplink -> switch -> arbiter ingress (the choke
		// point: requests from all N nodes serialize here).
		r.up[op.Src].send(ctl, func() {
			r.arbIn.send(ctl, func() {
				// Infinitely fast matching: allocate the earliest
				// conflict-free timeslot.
				wire := dataWireRoCE(op.Size, r.cfg.MTU)
				slot := r.eng.Now()
				if r.srcFree[src] > slot {
					slot = r.srcFree[src]
				}
				if r.dstFree[dst] > slot {
					slot = r.dstFree[dst]
				}
				txAll := sim.TransmissionTime(wire, r.cfg.Bandwidth)
				r.srcFree[src] = slot + txAll
				r.dstFree[dst] = slot + txAll
				// Grant: arbiter egress -> switch -> sender.
				r.arbOut.send(ctl, func() {
					r.down[src].send(ctl, func() {
						start := slot
						if now := r.eng.Now(); now > start {
							start = now
						}
						r.eng.At(start, func() { r.sendData(src, dst, op, stack) })
					})
				})
			})
		})
	})
}

// dataWireRoCE is the total wire bytes of a message packetized at the MTU.
func dataWireRoCE(size, mtu int) int {
	total := 0
	for _, n := range packetize(size, mtu) {
		total += transport.WireBytes(transport.StackRoCE, n)
	}
	return total
}

// sendData streams the scheduled message; by construction the path is
// conflict-free, so only serialization and propagation apply.
func (r *fpRun) sendData(src, dst int, op workload.Op, stack sim.Time) {
	for _, n := range packetize(op.Size, r.cfg.MTU) {
		n := n
		wire := transport.WireBytes(transport.StackRoCE, n)
		r.up[src].send(wire, nil)
		arrive := r.up[src].busyUntil + r.cfg.Prop + 2*r.cfg.PMA + transport.L2ForwardingLatency
		r.eng.At(arrive, func() {
			r.down[dst].send(wire, func() {
				r.eng.After(stack, func() { r.track.delivered(op.Index, n) })
			})
		})
	}
}
