package netsim

import (
	"math"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Protocols returns the seven §4.3 protocols in the paper's presentation
// order, with default parameters.
func Protocols() []Protocol {
	return []Protocol{
		&EDM{},
		&IRD{},
		&PFabric{},
		&PFC{},
		&DCTCP{},
		&CXL{},
		&Fastpass{},
	}
}

// ProtocolByName finds a protocol by its display name.
func ProtocolByName(name string) Protocol {
	for _, p := range Protocols() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// RunNormalized runs the trace and stamps every op's Ideal with the latency
// the same operation achieves alone in an empty cluster (the paper's
// normalization basis for both Figure 8a, "the corresponding unloaded
// latency", and Figure 8b, "the ideal completion time ... if it were the
// only message in the network"). Ideals are measured by replaying one op
// per distinct (size, direction) through the same protocol, memoized.
func RunNormalized(p Protocol, cfg Config, ops []workload.Op) (*Result, error) {
	res, err := p.Run(cfg, ScaleArrivals(p, ops))
	if err != nil {
		return nil, err
	}
	ideals, err := newIdealModel(p, cfg, ops)
	if err != nil {
		return nil, err
	}
	for i := range res.Ops {
		op := res.Ops[i].Op
		ideal, err := ideals.For(op.Size, op.Read)
		if err != nil {
			return nil, err
		}
		res.Ops[i].Ideal = ideal
	}
	return res, nil
}

// idealModel computes unloaded per-op latencies. With few distinct sizes it
// measures each exactly; for heavy-tailed traces it fits a linear model
// (latency = fixed + slope*size) per direction from the extreme sizes —
// unloaded latency is linear in size for every protocol here (constant
// stack/request legs plus per-byte serialization and per-packet pipeline
// costs), and the fit is exact at both anchors.
type idealModel struct {
	p     Protocol
	cfg   Config
	exact map[int64]sim.Time
	fit   map[bool][2]float64 // read -> {fixed_ps, slope_ps_per_byte}
}

const idealExactLimit = 12

func newIdealModel(p Protocol, cfg Config, ops []workload.Op) (*idealModel, error) {
	m := &idealModel{p: p, cfg: cfg, exact: make(map[int64]sim.Time)}
	distinct := map[bool]map[int]bool{false: {}, true: {}}
	minSize := map[bool]int{}
	maxSize := map[bool]int{}
	for _, op := range ops {
		distinct[op.Read][op.Size] = true
		if v, ok := minSize[op.Read]; !ok || op.Size < v {
			minSize[op.Read] = op.Size
		}
		if v, ok := maxSize[op.Read]; !ok || op.Size > v {
			maxSize[op.Read] = op.Size
		}
	}
	for _, read := range []bool{false, true} {
		sizes := distinct[read]
		if len(sizes) == 0 {
			continue
		}
		if len(sizes) <= idealExactLimit {
			for size := range sizes {
				if err := m.measure(size, read); err != nil {
					return nil, err
				}
			}
			continue
		}
		lo, hi := minSize[read], maxSize[read]
		if err := m.measure(lo, read); err != nil {
			return nil, err
		}
		if err := m.measure(hi, read); err != nil {
			return nil, err
		}
		tLo := float64(m.exact[idealKey(lo, read)])
		tHi := float64(m.exact[idealKey(hi, read)])
		slope := 0.0
		if hi > lo {
			slope = (tHi - tLo) / float64(hi-lo)
		}
		if m.fit == nil {
			m.fit = make(map[bool][2]float64)
		}
		m.fit[read] = [2]float64{tLo - slope*float64(lo), slope}
	}
	return m, nil
}

func idealKey(size int, read bool) int64 {
	k := int64(size) << 1
	if read {
		k |= 1
	}
	return k
}

func (m *idealModel) measure(size int, read bool) error {
	key := idealKey(size, read)
	if _, ok := m.exact[key]; ok {
		return nil
	}
	single, err := m.p.Run(m.cfg, []workload.Op{{
		Index: 0, Src: 0, Dst: 1, Size: size, Read: read, Arrival: 0,
	}})
	if err != nil {
		return err
	}
	m.exact[key] = single.Ops[0].Latency
	return nil
}

// For returns the unloaded latency for the op.
func (m *idealModel) For(size int, read bool) (sim.Time, error) {
	if v, ok := m.exact[idealKey(size, read)]; ok {
		return v, nil
	}
	f, ok := m.fit[read]
	if !ok {
		if err := m.measure(size, read); err != nil {
			return 0, err
		}
		return m.exact[idealKey(size, read)], nil
	}
	return sim.Time(f[0] + f[1]*float64(size)), nil
}

// ScaleArrivals stretches the trace's arrival times by the protocol's wire
// inflation (wire bytes per data byte, including read-request frames), so
// that the generator's target load is the protocol's wire-byte link
// utilization. Without this, a protocol with 2x framing overhead would be
// driven into saturation at a nominal load of 0.6 and every latency would
// measure queue growth rather than protocol behaviour; the paper's own
// Figure 8a note records the same load-accounting subtlety.
func ScaleArrivals(p Protocol, ops []workload.Op) []workload.Op {
	wire, data := ArrivalScale(p, ops)
	if data == 0 || wire <= data {
		return ops
	}
	out := make([]workload.Op, len(ops))
	for i, op := range ops {
		op.Arrival = scaleTime(op.Arrival, wire, data)
		out[i] = op
	}
	return out
}

// ArrivalScale reports the wire-inflation ratio (wire, data) ScaleArrivals
// stretches the trace by, so callers can map other trace-timebase instants
// (phase boundaries, event times) into the scaled run timebase.
func ArrivalScale(p Protocol, ops []workload.Op) (wire, data int64) {
	for _, op := range ops {
		data += int64(op.Size)
		wire += int64(p.WireBytes(op.Size))
		if op.Read {
			wire += int64(p.ReqWireBytes())
		}
	}
	return wire, data
}

// ScaleArrival maps one instant from the offered-trace timebase to the
// scaled run timebase (identity when there is no inflation).
func ScaleArrival(t sim.Time, wire, data int64) sim.Time {
	if data == 0 || wire <= data {
		return t
	}
	return scaleTime(t, wire, data)
}

// scaleTime computes t*num/den without overflowing: a multi-second trace
// (t ~ 1e12 ps) times a large wire-byte total overflows int64 long before
// the quotient does, so the product is kept in 128 bits.
func scaleTime(t sim.Time, num, den int64) sim.Time {
	hi, lo := bits.Mul64(uint64(t), uint64(num))
	if hi >= uint64(den) {
		// Quotient would overflow 64 bits; unreachable for physical traces
		// (it needs t*num/den > 292 years of simulated time) but saturate
		// rather than panic in Div64.
		return sim.Time(math.MaxInt64)
	}
	q, _ := bits.Div64(hi, lo, uint64(den))
	if q > math.MaxInt64 {
		return sim.Time(math.MaxInt64)
	}
	return sim.Time(q)
}

// RunTrace is a convenience wrapper: generate a trace and run it
// normalized.
func RunTrace(p Protocol, cfg Config, gen workload.GenConfig) (*Result, error) {
	ops, err := workload.Generate(gen)
	if err != nil {
		return nil, err
	}
	return RunNormalized(p, cfg, ops)
}
