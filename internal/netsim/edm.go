package netsim

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// EDM is the paper's fabric at message level: demand notifications and
// RREQ interception feed the central PIM scheduler; granted chunks flow
// through virtual circuits with no switch queueing. Parameters follow §4.3
// (chunk 256 B, X=3, SRPT).
type EDM struct {
	// ChunkBytes is the scheduler grant unit (default 256).
	ChunkBytes int
	// X is the per-pair active notification bound (default 3).
	X int
	// Policy is FCFS or SRPT (default SRPT).
	Policy sched.Policy
	// MaxIterations caps PIM iterations per round (0 = maximal matching).
	MaxIterations int
	// BatchBytes, when positive, enables the §3.1.2 sender optimization:
	// several small writes waiting on the same pair are coalesced into one
	// "mega" message of up to BatchBytes and announced with a single
	// notification, reducing notification bandwidth and scheduler
	// occupancy under bursts of tiny messages.
	BatchBytes int
}

// Name implements Protocol.
func (e *EDM) Name() string { return "EDM" }

// WireBytes implements Protocol: data is chunked, each chunk framed in
// 66-bit blocks.
func (e *EDM) WireBytes(n int) int {
	chunk := e.ChunkBytes
	if chunk <= 0 {
		chunk = 256
	}
	total := 0
	for _, c := range packetize(n, chunk) {
		total += edmWire(c)
	}
	return total
}

// ReqWireBytes implements Protocol: an 8 B RREQ in three blocks.
func (e *EDM) ReqWireBytes() int { return edmRreqWire }

// Fixed host/switch pipeline costs at 100 Gbps (the Table 1 cycle budgets,
// scaled to the 100 GbE block clock).
const (
	edmHostTx    = 8 * sim.Nanosecond
	edmHostRx    = 8 * sim.Nanosecond
	edmSwitchFwd = 11 * sim.Nanosecond
	edmNotifyLen = 9  // /N/ or /G/ block, bytes on wire
	edmRreqWire  = 25 // 8 B RREQ in 3 blocks
)

func edmWire(n int) int { return transport.WireBytes(transport.StackEDM, n) }

type edmPair struct {
	active int
	wait   []workload.Op
}

// megaGroup is one batched mega-message: member ops credited in order as
// the group's bytes arrive.
type megaGroup struct {
	members []workload.Op
	cursor  int // member currently being credited
	credit  int // bytes already credited to that member
}

type edmRun struct {
	p        *EDM
	cfg      Config
	eng      *sim.Engine
	sch      *sched.Scheduler
	up, down []*pipe
	track    *tracker
	pairs    map[[2]int]*edmPair
	ops      map[int]workload.Op
	groups   map[int]*megaGroup // keyed by lead op index
	err      error              // first notification error (always a bug if set)
}

// Run implements Protocol.
func (e *EDM) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chunk := e.ChunkBytes
	if chunk <= 0 {
		chunk = 256
	}
	x := e.X
	if x <= 0 {
		x = 3
	}
	eng := sim.NewEngine()
	r := &edmRun{
		p:      e,
		cfg:    cfg,
		eng:    eng,
		track:  newTracker(eng, e.Name(), ops),
		pairs:  make(map[[2]int]*edmPair),
		ops:    make(map[int]workload.Op, len(ops)),
		groups: make(map[int]*megaGroup),
	}
	r.sch = sched.New(eng, sched.Config{
		Ports:            cfg.Nodes,
		ChunkBytes:       int64(chunk),
		LinkBandwidth:    cfg.Bandwidth,
		ClockPeriod:      333 * sim.Picosecond, // 3 GHz ASIC scheduler
		Policy:           e.Policy,
		MaxActivePerPair: x,
		MaxIterations:    e.MaxIterations,
		// Pace grants at the chunk's true line occupancy, including the
		// 66-bit block framing.
		ChunkTime: func(l int64) sim.Time {
			return sim.TransmissionTime(edmWire(int(l)), cfg.Bandwidth)
		},
	})
	r.sch.OnGrant = r.onGrant
	r.up = make([]*pipe, cfg.Nodes)
	r.down = make([]*pipe, cfg.Nodes)
	for i := range r.up {
		r.up[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
		r.down[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
	}
	for _, op := range ops {
		op := op
		r.ops[op.Index] = op
		eng.At(op.Arrival, func() { r.arrive(op) })
	}
	eng.Run()
	if r.err != nil {
		return nil, fmt.Errorf("edm run: %w", r.err)
	}
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("edm run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

// pairKeyOf keys the window by the DATA direction (for a read the data
// message flows Dst->Src), which is exactly the scheduler's notion of a
// source-destination pair, so the sender-side window of §3.1.2 can never
// exceed the scheduler's per-pair bound.
func pairKeyOf(op workload.Op) [2]int {
	if op.Read {
		return [2]int{op.Dst, op.Src}
	}
	return [2]int{op.Src, op.Dst}
}

func (r *edmRun) arrive(op workload.Op) {
	pk := pairKeyOf(op)
	p := r.pairs[pk]
	if p == nil {
		p = &edmPair{}
		r.pairs[pk] = p
	}
	if p.active >= r.windowX() {
		p.wait = append(p.wait, op)
		return
	}
	p.active++
	r.start(op)
}

func (r *edmRun) windowX() int {
	if r.p.X > 0 {
		return r.p.X
	}
	return 3
}

// start sends the demand toward the switch: an RREQ for reads, an /N/ block
// for writes.
func (r *edmRun) start(op workload.Op) {
	src, dst := op.Src, op.Dst
	if op.Read {
		// RREQ c->switch; interception notifies the RRES (m->c) demand.
		r.eng.After(edmHostTx, func() {
			r.up[src].send(edmRreqWire, func() {
				if err := r.sch.Notify(sched.MsgRef{
					Src: dst, Dst: src, ID: uint64(op.Index), Size: int64(op.Size),
					Tag: op,
				}); err != nil && r.err == nil {
					r.err = err
				}
			})
		})
		return
	}
	r.eng.After(edmHostTx, func() {
		r.up[src].send(edmNotifyLen, func() {
			if err := r.sch.Notify(sched.MsgRef{
				Src: src, Dst: dst, ID: uint64(op.Index), Size: int64(op.Size), Tag: op,
			}); err != nil && r.err == nil {
				r.err = err
			}
		})
	})
}

func (r *edmRun) onGrant(g sched.Grant) {
	op := r.ops[int(g.ID)]
	if g.First && op.Read {
		// The buffered RREQ is forwarded to the memory node as the first
		// grant; the memory node responds with the first chunk.
		r.eng.After(edmSwitchFwd, func() {
			r.down[g.Src].send(edmRreqWire, func() {
				r.eng.After(edmHostRx, func() { r.sendChunk(g) })
			})
		})
		return
	}
	// Explicit /G/ to the data sender.
	r.down[g.Src].send(edmNotifyLen, func() {
		r.eng.After(edmHostRx, func() { r.sendChunk(g) })
	})
}

// sendChunk moves one granted chunk through the virtual circuit.
func (r *edmRun) sendChunk(g sched.Grant) {
	wire := edmWire(int(g.Chunk))
	idx := int(g.ID)
	r.up[g.Src].send(wire, func() {
		r.eng.After(edmSwitchFwd, func() {
			r.down[g.Dst].send(wire, func() {
				r.eng.After(edmHostRx, func() {
					if grp, ok := r.groups[idx]; ok {
						r.creditGroup(grp, int(g.Chunk))
					} else {
						r.track.delivered(idx, int(g.Chunk))
					}
					if g.Final {
						delete(r.groups, idx)
						r.retire(idx)
					}
				})
			})
		})
	})
}

// retire frees the pair window slot and admits waiters. With batching
// enabled, consecutive waiting small writes of the pair are coalesced into
// one mega message announced by a single notification (§3.1.2).
func (r *edmRun) retire(idx int) {
	op := r.ops[idx]
	pk := pairKeyOf(op)
	p := r.pairs[pk]
	p.active--
	if len(p.wait) == 0 {
		return
	}
	next := p.wait[0]
	p.wait = p.wait[1:]
	p.active++
	if r.p.BatchBytes <= 0 || next.Read || next.Size >= r.p.BatchBytes {
		r.start(next)
		return
	}
	group := &megaGroup{members: []workload.Op{next}}
	total := next.Size
	for len(p.wait) > 0 {
		cand := p.wait[0]
		if cand.Read || total+cand.Size > r.p.BatchBytes {
			break
		}
		group.members = append(group.members, cand)
		total += cand.Size
		p.wait = p.wait[1:]
	}
	if len(group.members) == 1 {
		r.start(next)
		return
	}
	r.groups[next.Index] = group
	src, dst := next.Src, next.Dst
	r.eng.After(edmHostTx, func() {
		r.up[src].send(edmNotifyLen, func() {
			if err := r.sch.Notify(sched.MsgRef{
				Src: src, Dst: dst, ID: uint64(next.Index), Size: int64(total),
			}); err != nil && r.err == nil {
				r.err = err
			}
		})
	})
}

// creditGroup distributes n arrived bytes across the group's members in
// order, completing each as its bytes fill.
func (r *edmRun) creditGroup(g *megaGroup, n int) {
	for n > 0 && g.cursor < len(g.members) {
		m := g.members[g.cursor]
		need := m.Size - g.credit
		take := n
		if take > need {
			take = need
		}
		r.track.delivered(m.Index, take)
		g.credit += take
		n -= take
		if g.credit == m.Size {
			g.cursor++
			g.credit = 0
		}
	}
}
