// Package netsim is the large-scale network simulator behind the paper's
// §4.3 evaluation: a single-switch cluster of N nodes running one of seven
// protocol models — EDM's in-network scheduler and six congestion/flow
// control baselines (DCTCP, idealized receiver-driven, pFabric, PFC, CXL,
// Fastpass) — against open-loop traces from internal/workload.
//
// It is message/packet-level (like the paper's C simulator), in contrast to
// the block-level testbed in internal/edm: protocol dynamics and queueing
// are modelled exactly, per-block pipelines by their published constants.
package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config is the cluster under simulation. The paper's setup: 144 nodes,
// 100 Gbps links, one switch.
type Config struct {
	Nodes     int
	Bandwidth sim.Gbps
	// Prop is the host-switch propagation delay (one hop).
	Prop sim.Time
	// PMA is the PMA/PMD+transceiver delay per crossing (each link
	// traversal crosses twice); Table 1 measures 19 ns.
	PMA sim.Time
	// MTU bounds packet payloads for the MAC-based protocols.
	MTU int
}

// linkLat is the fixed one-way latency of a link traversal after
// serialization: TX PMA + propagation + RX PMA.
func (c Config) linkLat() sim.Time { return c.Prop + 2*c.PMA }

// DefaultConfig returns the §4.3 parameters.
func DefaultConfig() Config {
	return Config{Nodes: 144, Bandwidth: 100, Prop: 10 * sim.Nanosecond,
		PMA: 19 * sim.Nanosecond, MTU: 1500}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("netsim: nodes=%d", c.Nodes)
	}
	if c.Bandwidth <= 0 || c.MTU <= 0 || c.Prop < 0 {
		return fmt.Errorf("netsim: invalid config %+v", c)
	}
	return nil
}

// OpResult records one completed operation.
type OpResult struct {
	Op      workload.Op
	Latency sim.Time // issue to last data byte delivered
	Ideal   sim.Time // same op alone in an unloaded network
}

// Result is a protocol run over a trace.
type Result struct {
	Proto     string
	Ops       []OpResult
	Horizon   sim.Time // simulated time span
	Completed int
}

// Normalized returns latency/ideal ratios, optionally filtered to reads or
// writes (pass nil for all).
func (r *Result) Normalized(filter func(workload.Op) bool) []float64 {
	out := make([]float64, 0, len(r.Ops))
	for _, o := range r.Ops {
		if filter != nil && !filter(o.Op) {
			continue
		}
		if o.Ideal > 0 {
			out = append(out, float64(o.Latency)/float64(o.Ideal))
		}
	}
	return out
}

// NormalizedSummary summarizes latency/ideal ratios.
func (r *Result) NormalizedSummary(filter func(workload.Op) bool) stats.Summary {
	return stats.Summarize(r.Normalized(filter))
}

// Reads filters read operations.
func Reads(op workload.Op) bool { return op.Read }

// Writes filters write operations.
func Writes(op workload.Op) bool { return !op.Read }

// Protocol runs a trace on a cluster.
type Protocol interface {
	Name() string
	Run(cfg Config, ops []workload.Op) (*Result, error)
	// WireBytes reports the protocol's on-wire cost of moving n data
	// bytes (headers, framing, minimum frames), and ReqWireBytes the cost
	// of a read-request on the data path (0 if requests ride a control
	// plane). Used to interpret offered load as wire-byte utilization.
	WireBytes(n int) int
	ReqWireBytes() int
}

// pipe is a FIFO serializing resource (a link or switch egress port): each
// send occupies the pipe for the transmission time, then the payload
// arrives after a fixed latency. Queueing is implicit in busyUntil.
type pipe struct {
	eng       *sim.Engine
	bw        sim.Gbps
	lat       sim.Time
	busyUntil sim.Time
	// paused freezes the pipe head (PFC); pending sends queue behind it.
	pausedUntil sim.Time
}

func newPipe(eng *sim.Engine, bw sim.Gbps, lat sim.Time) *pipe {
	return &pipe{eng: eng, bw: bw, lat: lat}
}

// queuedBytes reports the backlog not yet serialized, in bytes.
func (p *pipe) queuedBytes() int64 {
	now := p.eng.Now()
	if p.busyUntil <= now {
		return 0
	}
	d := p.busyUntil - now
	return int64(d) * int64(p.bw) / 8000 // ps * Gbps -> bytes
}

// send enqueues n wire bytes; then runs when the last byte arrives at the
// far end. It returns the queueing delay experienced.
func (p *pipe) send(n int, then func()) sim.Time {
	now := p.eng.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if p.pausedUntil > start {
		start = p.pausedUntil
	}
	p.busyUntil = start + sim.TransmissionTime(n, p.bw)
	if then != nil {
		p.eng.At(p.busyUntil+p.lat, then)
	}
	return start - now
}

// packetize splits n bytes into MTU-bounded packet payloads.
func packetize(n, mtu int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, 0, n/mtu+1)
	for n > mtu {
		out = append(out, mtu)
		n -= mtu
	}
	return append(out, n)
}

// tracker counts remaining bytes per op and records completion.
type tracker struct {
	res     *Result
	pending map[int]*OpResult
	left    map[int]int
	eng     *sim.Engine
}

func newTracker(eng *sim.Engine, proto string, ops []workload.Op) *tracker {
	t := &tracker{
		res:     &Result{Proto: proto},
		pending: make(map[int]*OpResult, len(ops)),
		left:    make(map[int]int, len(ops)),
		eng:     eng,
	}
	for _, op := range ops {
		t.pending[op.Index] = &OpResult{Op: op}
		t.left[op.Index] = op.Size
	}
	return t
}

// delivered credits n data bytes to op idx; on the last byte it records the
// completion latency.
func (t *tracker) delivered(idx, n int) {
	left, ok := t.left[idx]
	if !ok {
		return
	}
	left -= n
	if left > 0 {
		t.left[idx] = left
		return
	}
	delete(t.left, idx)
	r := t.pending[idx]
	delete(t.pending, idx)
	r.Latency = t.eng.Now() - r.Op.Arrival
	t.res.Ops = append(t.res.Ops, *r)
	t.res.Completed++
}

// finish seals the result.
func (t *tracker) finish() *Result {
	t.res.Horizon = t.eng.Now()
	return t.res
}
