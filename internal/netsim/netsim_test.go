package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func smallCfg() Config {
	return Config{Nodes: 16, Bandwidth: 100, Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500}
}

func smallTrace(t *testing.T, load float64, count int, readFrac float64) []workload.Op {
	t.Helper()
	ops, err := workload.Generate(workload.GenConfig{
		Nodes: 16, Load: load, Bandwidth: 100,
		Sizes: workload.Fixed(64), ReadFrac: readFrac, Count: count, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestPipeSerializes(t *testing.T) {
	eng := sim.NewEngine()
	p := newPipe(eng, 100, 10*sim.Nanosecond)
	var t1, t2 sim.Time
	p.send(1250, func() { t1 = eng.Now() }) // 100ns tx
	p.send(1250, func() { t2 = eng.Now() })
	eng.Run()
	if t1 != 110*sim.Nanosecond {
		t.Fatalf("first delivery at %v", t1)
	}
	if t2 != 210*sim.Nanosecond {
		t.Fatalf("second delivery at %v (no serialization?)", t2)
	}
}

func TestPipeQueuedBytes(t *testing.T) {
	eng := sim.NewEngine()
	p := newPipe(eng, 100, 0)
	p.send(12500, func() {}) // 1us
	if q := p.queuedBytes(); q != 12500 {
		t.Fatalf("queuedBytes = %d", q)
	}
	eng.Run()
	if q := p.queuedBytes(); q != 0 {
		t.Fatalf("queuedBytes after drain = %d", q)
	}
}

func TestPacketize(t *testing.T) {
	cases := []struct {
		n, mtu int
		want   []int
	}{
		{64, 1500, []int{64}},
		{1500, 1500, []int{1500}},
		{1501, 1500, []int{1500, 1}},
		{4000, 1500, []int{1500, 1500, 1000}},
		{0, 1500, nil},
	}
	for _, c := range cases {
		got := packetize(c.n, c.mtu)
		if len(got) != len(c.want) {
			t.Errorf("packetize(%d): %v", c.n, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("packetize(%d): %v", c.n, got)
			}
		}
	}
}

// TestAllProtocolsComplete runs every protocol over the same moderate-load
// trace and checks basic sanity: all ops complete with positive latency and
// ideals, and no normalized latency is materially below 1.
func TestAllProtocolsComplete(t *testing.T) {
	ops := smallTrace(t, 0.5, 2000, 0.5)
	for _, p := range Protocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res, err := RunNormalized(p, smallCfg(), ops)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != len(ops) {
				t.Fatalf("completed %d of %d", res.Completed, len(ops))
			}
			norm := res.Normalized(nil)
			if len(norm) != len(ops) {
				t.Fatalf("normalized %d of %d", len(norm), len(ops))
			}
			s := res.NormalizedSummary(nil)
			if s.Mean < 0.95 {
				t.Fatalf("mean normalized %.3f < 0.95 (ideal mis-measured)", s.Mean)
			}
			t.Logf("%s: normalized %v", p.Name(), s)
		})
	}
}

// TestSingleOpMatchesIdeal: with one op in the network, normalized latency
// must be exactly 1 for every protocol (determinism of the ideal replay).
func TestSingleOpMatchesIdeal(t *testing.T) {
	for _, p := range Protocols() {
		for _, read := range []bool{false, true} {
			ops := []workload.Op{{Index: 0, Src: 2, Dst: 9, Size: 64, Read: read, Arrival: 0}}
			res, err := RunNormalized(p, smallCfg(), ops)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			n := res.Normalized(nil)
			if len(n) != 1 || n[0] < 0.999 || n[0] > 1.001 {
				t.Errorf("%s read=%v: single-op normalized = %v", p.Name(), read, n)
			}
		}
	}
}

// TestEDMStaysNearUnloaded is the headline claim: EDM's average latency at
// high load stays within ~1.3x unloaded (§4.3.1).
func TestEDMStaysNearUnloaded(t *testing.T) {
	ops := smallTrace(t, 0.8, 4000, 0.5)
	res, err := RunNormalized(&EDM{}, smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	s := res.NormalizedSummary(nil)
	t.Logf("EDM at load 0.8: %v", s)
	if s.Mean > 1.5 {
		t.Fatalf("EDM normalized mean %.3f at load 0.8, want <= 1.5", s.Mean)
	}
}

// TestProtocolOrderingAtHighLoad checks the comparisons the paper's Figure
// 8a supports robustly in this model: EDM's absolute latency is the lowest
// of every protocol even at high load (the Table 1 gap persists under
// load); CXL's normalized latency exceeds EDM's (credit HOL); and Fastpass
// is catastrophically worst in normalized terms (arbiter bottleneck).
// Normalized ratios for the TCP/RoCE-stack baselines are muted relative to
// the paper because their multi-microsecond stacks dwarf queueing when the
// network is kept below wire saturation; see EXPERIMENTS.md.
func TestProtocolOrderingAtHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ops := smallTrace(t, 0.8, 4000, 0.5)
	norm := map[string]float64{}
	abs := map[string]float64{}
	for _, p := range Protocols() {
		res, err := RunNormalized(p, smallCfg(), ops)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		norm[p.Name()] = res.NormalizedSummary(nil).Mean
		var sum float64
		for _, o := range res.Ops {
			sum += float64(o.Latency)
		}
		abs[p.Name()] = sum / float64(len(res.Ops))
		t.Logf("%-10s normalized=%.3f absolute=%.0fns", p.Name(), norm[p.Name()], abs[p.Name()]/1000)
	}
	for name, a := range abs {
		if name == "EDM" {
			continue
		}
		if a < abs["EDM"] {
			t.Errorf("%s absolute latency (%.0fns) below EDM (%.0fns) at load 0.8",
				name, a/1000, abs["EDM"]/1000)
		}
	}
	if norm["CXL"] < norm["EDM"] {
		t.Errorf("CXL normalized (%.3f) below EDM (%.3f): credit HOL missing", norm["CXL"], norm["EDM"])
	}
	if norm["Fastpass"] < 3*norm["EDM"] {
		t.Errorf("Fastpass (%.3f) not clearly worst vs EDM (%.3f)", norm["Fastpass"], norm["EDM"])
	}
}

// TestEDMLoadMonotone: EDM's normalized latency grows gently with load and
// stays bounded.
func TestEDMLoadMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prev := 0.0
	for _, load := range []float64{0.2, 0.6, 0.9} {
		ops := smallTrace(t, load, 3000, 0.5)
		res, err := RunNormalized(&EDM{}, smallCfg(), ops)
		if err != nil {
			t.Fatal(err)
		}
		m := res.NormalizedSummary(nil).Mean
		t.Logf("EDM load %.1f: %.3f", load, m)
		if m < prev-0.1 {
			t.Errorf("normalized latency fell sharply with load: %.3f -> %.3f", prev, m)
		}
		prev = m
	}
	if prev > 2.0 {
		t.Errorf("EDM at 0.9 load: %.3f, want < 2", prev)
	}
}

// TestIRDWastesBandwidthUnderConflicts: engineering a conflict — two
// receivers repeatedly granting the same sender — must register wasted
// grant time in IRD but still complete.
func TestIRDConflictAccounting(t *testing.T) {
	// 1 sender, 2 receivers, many messages: receiver grants collide at the
	// shared sender.
	var ops []workload.Op
	for i := 0; i < 40; i++ {
		ops = append(ops, workload.Op{
			Index: i, Src: 0, Dst: 1 + i%2, Size: 4000, Read: false,
			Arrival: sim.Time(i) * 100 * sim.Nanosecond,
		})
	}
	p := &IRD{}
	res, err := p.Run(smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(ops) {
		t.Fatalf("completed %d", res.Completed)
	}
}

// TestCXLReadWrite: CXL flit accounting moves exactly the op's bytes.
func TestCXLDelivery(t *testing.T) {
	ops := []workload.Op{
		{Index: 0, Src: 0, Dst: 1, Size: 1000, Read: false, Arrival: 0},
		{Index: 1, Src: 2, Dst: 3, Size: 100, Read: true, Arrival: 0},
	}
	res, err := (&CXL{}).Run(smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d", res.Completed)
	}
	for _, o := range res.Ops {
		if o.Latency <= 0 {
			t.Fatalf("op %d latency %v", o.Op.Index, o.Latency)
		}
	}
}

// TestReadsCostMoreThanWrites: for request-response protocols an unloaded
// read (request + response) must cost more than an unloaded write.
func TestReadsCostMoreThanWrites(t *testing.T) {
	for _, p := range []Protocol{&EDM{}, &DCTCP{}, &PFC{}, &CXL{}, &PFabric{}} {
		rRes, err := p.Run(smallCfg(), []workload.Op{{Index: 0, Src: 0, Dst: 1, Size: 64, Read: true}})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		wRes, err := p.Run(smallCfg(), []workload.Op{{Index: 0, Src: 0, Dst: 1, Size: 64, Read: false}})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		r, w := rRes.Ops[0].Latency, wRes.Ops[0].Latency
		if r <= w {
			t.Errorf("%s: read %v <= write %v", p.Name(), r, w)
		}
	}
}

// TestLargeMessagesComplete exercises MTU packetization end to end.
func TestLargeMessagesComplete(t *testing.T) {
	ops := []workload.Op{
		{Index: 0, Src: 0, Dst: 1, Size: 100000, Read: false, Arrival: 0},
		{Index: 1, Src: 1, Dst: 2, Size: 50000, Read: true, Arrival: 0},
	}
	for _, p := range Protocols() {
		res, err := p.Run(smallCfg(), ops)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Completed != 2 {
			t.Fatalf("%s: completed %d", p.Name(), res.Completed)
		}
		// 100 KB at 100 Gbps is 8 us serialization: latency must be at
		// least that.
		for _, o := range res.Ops {
			min := sim.TransmissionTime(o.Op.Size, 100)
			if o.Latency < min {
				t.Errorf("%s op %d: latency %v < serialization %v", p.Name(), o.Op.Index, o.Latency, min)
			}
		}
	}
}

// TestFastpassArbiterBottleneck: under incast-free but high-rate control
// load, Fastpass latency must blow up while EDM stays flat.
func TestFastpassArbiterBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ops := smallTrace(t, 0.8, 3000, 0.0)
	fp, err := RunNormalized(&Fastpass{}, smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	edm, err := RunNormalized(&EDM{}, smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	fpm := fp.NormalizedSummary(nil).Mean
	edmm := edm.NormalizedSummary(nil).Mean
	t.Logf("Fastpass %.2f vs EDM %.2f", fpm, edmm)
	if fpm < 1.5*edmm {
		t.Errorf("Fastpass %.2f not clearly above EDM %.2f", fpm, edmm)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 1, Bandwidth: 100, MTU: 1500},
		{Nodes: 4, Bandwidth: 0, MTU: 1500},
		{Nodes: 4, Bandwidth: 100, MTU: 0},
		{Nodes: 4, Bandwidth: 100, MTU: 1500, Prop: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestProtocolByName(t *testing.T) {
	for _, p := range Protocols() {
		if got := ProtocolByName(p.Name()); got == nil {
			t.Errorf("ProtocolByName(%q) = nil", p.Name())
		}
	}
	if ProtocolByName("nope") != nil {
		t.Error("unknown name resolved")
	}
}

// TestEDMBatchingCorrectness: with mega-message batching on, every op still
// completes exactly once with all its bytes, and ops batched behind the
// pair window complete no later than without batching.
func TestEDMBatchingCorrectness(t *testing.T) {
	// 20 small writes from one sender to one receiver back to back: the
	// X=3 window forces most to wait, so batching engages.
	var ops []workload.Op
	for i := 0; i < 20; i++ {
		ops = append(ops, workload.Op{
			Index: i, Src: 0, Dst: 1, Size: 128, Read: false,
			Arrival: sim.Time(i) * 20 * sim.Nanosecond,
		})
	}
	plain, err := (&EDM{}).Run(smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := (&EDM{BatchBytes: 2048}).Run(smallCfg(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Completed != 20 || batched.Completed != 20 {
		t.Fatalf("completed plain=%d batched=%d", plain.Completed, batched.Completed)
	}
	mean := func(r *Result) float64 {
		var s float64
		for _, o := range r.Ops {
			s += float64(o.Latency)
		}
		return s / float64(len(r.Ops))
	}
	mp, mb := mean(plain), mean(batched)
	t.Logf("mean latency plain %.0fns, batched %.0fns", mp/1000, mb/1000)
	if mb > mp*1.25 {
		t.Errorf("batching made the burst worse: %.0f vs %.0f", mb, mp)
	}
}

// TestScaleArrivalsProperty: scaling never shortens inter-arrival gaps and
// preserves op order and count.
func TestScaleArrivalsProperty(t *testing.T) {
	ops := smallTrace(t, 0.7, 500, 0.5)
	for _, p := range Protocols() {
		scaled := ScaleArrivals(p, ops)
		if len(scaled) != len(ops) {
			t.Fatalf("%s: length changed", p.Name())
		}
		for i := range scaled {
			if scaled[i].Arrival < ops[i].Arrival {
				t.Fatalf("%s: arrival shrank at %d", p.Name(), i)
			}
			if i > 0 && scaled[i].Arrival < scaled[i-1].Arrival {
				t.Fatalf("%s: order broken at %d", p.Name(), i)
			}
			if scaled[i].Size != ops[i].Size || scaled[i].Read != ops[i].Read {
				t.Fatalf("%s: op mutated", p.Name())
			}
		}
	}
}

// TestWireBytesSane: every protocol's wire cost is at least the data size
// and grows monotonically.
func TestWireBytesSane(t *testing.T) {
	for _, p := range Protocols() {
		prev := 0
		for _, n := range []int{1, 8, 64, 256, 1500, 4000, 100000} {
			w := p.WireBytes(n)
			if w < n {
				t.Errorf("%s: WireBytes(%d) = %d < data", p.Name(), n, w)
			}
			if w < prev {
				t.Errorf("%s: WireBytes not monotone at %d", p.Name(), n)
			}
			prev = w
		}
		if p.ReqWireBytes() < 0 {
			t.Errorf("%s: negative request wire", p.Name())
		}
	}
}

// TestIdealModelLinearity: for a protocol with per-byte costs, the linear
// ideal fit must be within a few percent of a directly measured mid-size
// op.
func TestIdealModelLinearity(t *testing.T) {
	cfg := smallCfg()
	for _, p := range []Protocol{&EDM{}, &DCTCP{}, &CXL{}} {
		// Trace with many distinct sizes to force the linear-fit path.
		var ops []workload.Op
		for i := 0; i < 40; i++ {
			ops = append(ops, workload.Op{
				Index: i, Src: i % 8, Dst: 8 + i%8, Size: 64 + i*777,
				Arrival: sim.Time(i) * sim.Microsecond,
			})
		}
		m, err := newIdealModel(p, cfg, ops)
		if err != nil {
			t.Fatal(err)
		}
		const mid = 9000
		fit, err := m.For(mid, false)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := p.Run(cfg, []workload.Op{{Index: 0, Src: 0, Dst: 1, Size: mid}})
		if err != nil {
			t.Fatal(err)
		}
		d := direct.Ops[0].Latency
		dev := float64(fit-d) / float64(d)
		if dev < 0 {
			dev = -dev
		}
		t.Logf("%s: fit %v vs direct %v (%.1f%%)", p.Name(), fit, d, dev*100)
		if dev > 0.05 {
			t.Errorf("%s: linear ideal deviates %.1f%% at %dB", p.Name(), dev*100, mid)
		}
	}
}
