package netsim

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// PFabric models pFabric: senders transmit at line rate, switches keep
// very small per-port buffers ordered by remaining flow size (SRPT) and
// drop the lowest-priority packet on overflow; dropped packets are
// recovered by a short timeout. It runs over the DCTCP-class stack (the
// paper runs pFabric "on top of DCTCP"). With uniform single-packet
// messages its SRPT degenerates to FIFO, which is why the paper finds it
// tracks DCTCP on the 64 B microbenchmark.
type PFabric struct {
	// BufferBytes is the per-egress buffer (default 24 KB, pFabric's
	// shallow-buffer regime).
	BufferBytes int64
	// RTO is the retransmission timeout, default 45 us (the pFabric
	// paper's setting; smaller values cause spurious retransmissions for
	// multi-packet messages whose ACKs are delayed by their own queueing).
	RTO sim.Time
	// Window bounds a sender pair's packets in flight (default 12,
	// approximately one BDP of line-rate probing).
	Window int
}

// Name implements Protocol.
func (p *PFabric) Name() string { return "pFabric" }

// WireBytes implements Protocol.
func (p *PFabric) WireBytes(n int) int {
	total := 0
	for _, k := range packetize(n, 1500) {
		total += transport.WireBytes(transport.StackTCP, k)
	}
	return total
}

// ReqWireBytes implements Protocol.
func (p *PFabric) ReqWireBytes() int { return transport.WireBytes(transport.StackTCP, 8) }

func (p *PFabric) defaults() {
	if p.BufferBytes == 0 {
		p.BufferBytes = 24 << 10
	}
	if p.RTO == 0 {
		p.RTO = 45 * sim.Microsecond
	}
	if p.Window == 0 {
		p.Window = 12
	}
}

type pfPkt struct {
	opIdx    int
	data     int
	isReq    bool
	size     int // total op size: the SRPT priority (lower = better)
	remain   int // remaining at send time
	acked    bool
	credited bool // delivered-and-counted once (guards RTO duplicates)
	conn     *pfConn
	wire     int
}

type pfConn struct {
	src, dst int
	inflight int
	q        []*pfPkt
}

// pfEgress is an explicit priority-queue egress port.
type pfEgress struct {
	q       []*pfPkt
	bytes   int64
	serving bool
}

type pfabricRun struct {
	p     *PFabric
	cfg   Config
	eng   *sim.Engine
	up    []*pipe
	eg    []*pfEgress
	conns map[[2]int]*pfConn
	track *tracker
	drops uint64
}

// Run implements Protocol.
func (p *PFabric) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p.defaults()
	eng := sim.NewEngine()
	r := &pfabricRun{p: p, cfg: cfg, eng: eng,
		conns: make(map[[2]int]*pfConn),
		track: newTracker(eng, p.Name(), ops)}
	r.up = make([]*pipe, cfg.Nodes)
	r.eg = make([]*pfEgress, cfg.Nodes)
	for i := range r.up {
		r.up[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
		r.eg[i] = &pfEgress{}
	}
	for _, op := range ops {
		op := op
		eng.At(op.Arrival, func() { r.arrive(op) })
	}
	eng.Run()
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("pfabric run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

func (r *pfabricRun) conn(src, dst int) *pfConn {
	key := [2]int{src, dst}
	c := r.conns[key]
	if c == nil {
		c = &pfConn{src: src, dst: dst}
		r.conns[key] = c
	}
	return c
}

func (r *pfabricRun) arrive(op workload.Op) {
	r.eng.After(transport.TCPStackLatency, func() {
		if op.Read {
			c := r.conn(op.Src, op.Dst)
			pkt := &pfPkt{opIdx: op.Index, isReq: true, size: op.Size, remain: 8, conn: c}
			pkt.wire = transport.WireBytes(transport.StackTCP, 8)
			c.q = append(c.q, pkt)
			r.pump(c)
			return
		}
		r.enqueueData(op.Src, op.Dst, op.Index, op.Size)
	})
}

func (r *pfabricRun) enqueueData(src, dst, opIdx, size int) {
	c := r.conn(src, dst)
	remain := size
	for _, n := range packetize(size, r.cfg.MTU) {
		pkt := &pfPkt{opIdx: opIdx, data: n, size: size, remain: remain, conn: c}
		pkt.wire = transport.WireBytes(transport.StackTCP, n)
		remain -= n
		c.q = append(c.q, pkt)
	}
	r.pump(c)
}

func (r *pfabricRun) pump(c *pfConn) {
	for len(c.q) > 0 && c.inflight < r.p.Window {
		pkt := c.q[0]
		c.q = c.q[1:]
		c.inflight++
		r.sendPkt(pkt)
	}
}

func (r *pfabricRun) sendPkt(pkt *pfPkt) {
	c := pkt.conn
	r.up[c.src].send(pkt.wire, func() {
		r.eng.After(transport.L2ForwardingLatency, func() { r.egEnqueue(r.eg[c.dst], c.dst, pkt) })
	})
	r.eng.After(r.p.RTO, func() {
		if pkt.acked {
			return
		}
		c.inflight--
		if c.inflight < 0 {
			c.inflight = 0
		}
		c.q = append([]*pfPkt{pkt}, c.q...)
		r.pump(c)
	})
}

// egEnqueue inserts by SRPT priority; on overflow the lowest-priority
// (largest remaining) packet is dropped.
func (r *pfabricRun) egEnqueue(eg *pfEgress, port int, pkt *pfPkt) {
	eg.q = append(eg.q, pkt)
	eg.bytes += int64(pkt.wire)
	sort.SliceStable(eg.q, func(i, j int) bool { return eg.q[i].remain < eg.q[j].remain })
	for eg.bytes > r.p.BufferBytes && len(eg.q) > 0 {
		victim := eg.q[len(eg.q)-1]
		eg.q = eg.q[:len(eg.q)-1]
		eg.bytes -= int64(victim.wire)
		r.drops++ // victim recovers via its sender's RTO
	}
	r.egServe(eg, port)
}

func (r *pfabricRun) egServe(eg *pfEgress, port int) {
	if eg.serving || len(eg.q) == 0 {
		return
	}
	eg.serving = true
	pkt := eg.q[0]
	eg.q = eg.q[1:]
	eg.bytes -= int64(pkt.wire)
	tx := sim.TransmissionTime(pkt.wire, r.cfg.Bandwidth)
	r.eng.After(tx, func() {
		eg.serving = false
		r.eng.After(r.cfg.linkLat(), func() { r.deliver(pkt) })
		r.egServe(eg, port)
	})
}

func (r *pfabricRun) deliver(pkt *pfPkt) {
	c := pkt.conn
	r.eng.After(2*r.cfg.linkLat()+transport.L2ForwardingLatency, func() {
		if pkt.acked {
			return
		}
		pkt.acked = true
		c.inflight--
		if c.inflight < 0 {
			c.inflight = 0
		}
		r.pump(c)
	})
	r.eng.After(transport.TCPStackLatency, func() {
		if pkt.credited {
			return // duplicate of a retransmitted packet
		}
		pkt.credited = true
		if pkt.isReq {
			r.enqueueData(c.dst, c.src, pkt.opIdx, pkt.size)
			return
		}
		r.track.delivered(pkt.opIdx, pkt.data)
	})
}
