package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// IRD is the paper's idealized receiver-driven protocol: receivers learn of
// new messages in zero time, schedule SRPT, and credit one sender at a
// time. We idealize generously — a receiver only grants to a sender that is
// currently idle (instant global knowledge) — yet the decentralized
// conflicts remain: two receivers may credit the same idle sender in the
// same instant and one granted downlink idles; and when every pending
// message's sender is busy serving someone else, the receiver's downlink
// sits unused even though other traffic could have filled it. EDM's central
// scheduler exists to eliminate exactly this under-utilization.
type IRD struct {
	// Stack is the per-endpoint latency (default RoCE-class 230 ns).
	Stack sim.Time
	// Window is the receiver's grant overcommitment (default 8): how many
	// granted-but-unfinished messages it keeps in flight to cover the
	// grant RTT, as receiver-driven protocols do with their credit BDP.
	Window int
}

// Name implements Protocol.
func (i *IRD) Name() string { return "IRD" }

// WireBytes implements Protocol.
func (i *IRD) WireBytes(n int) int {
	total := 0
	for _, k := range packetize(n, 1500) {
		total += transport.WireBytes(transport.StackRoCE, k)
	}
	return total
}

// ReqWireBytes implements Protocol: notifications are idealized (free).
func (i *IRD) ReqWireBytes() int { return 0 }

type irdMsg struct {
	opIdx    int
	size     int
	src, dst int
}

type irdRun struct {
	p       *IRD
	cfg     Config
	eng     *sim.Engine
	up      []*pipe
	down    []*pipe
	pending [][]*irdMsg // per receiver: ungranted messages
	rxOut   []int       // receiver's outstanding grants
	window  int
	sendQ   [][]*irdMsg // per sender: granted messages, FIFO
	txBusy  []bool
	track   *tracker
	// Conflicts counts grants that found their sender already busy (two
	// receivers granted the same sender in the same instant).
	Conflicts uint64
}

// Run implements Protocol.
func (i *IRD) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stack := i.Stack
	if stack == 0 {
		stack = transport.RoCEStackLatency
	}
	eng := sim.NewEngine()
	r := &irdRun{p: i, cfg: cfg, eng: eng, track: newTracker(eng, i.Name(), ops)}
	r.window = i.Window
	if r.window <= 0 {
		r.window = 8
	}
	r.up = make([]*pipe, cfg.Nodes)
	r.down = make([]*pipe, cfg.Nodes)
	r.pending = make([][]*irdMsg, cfg.Nodes)
	r.rxOut = make([]int, cfg.Nodes)
	r.sendQ = make([][]*irdMsg, cfg.Nodes)
	r.txBusy = make([]bool, cfg.Nodes)
	for k := range r.up {
		r.up[k] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
		r.down[k] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
	}
	for _, op := range ops {
		op := op
		eng.At(op.Arrival, func() { r.arrive(op, stack) })
	}
	eng.Run()
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("ird run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

// arrive registers the data message at its receiver. For reads the data
// sender is the memory node and the receiver is the requester (the request
// leg is covered by the zero-time notification idealization).
func (r *irdRun) arrive(op workload.Op, stack sim.Time) {
	m := &irdMsg{opIdx: op.Index, size: op.Size, src: op.Src, dst: op.Dst}
	if op.Read {
		m.src, m.dst = op.Dst, op.Src
	}
	r.eng.After(stack, func() {
		r.pending[m.dst] = append(r.pending[m.dst], m)
		r.rxSchedule(m.dst)
	})
}

// rxSchedule commits the receiver to the SRPT-best pending message whose
// sender is idle right now. If every pending sender is busy, the receiver
// waits (under-utilization) until a sender frees.
func (r *irdRun) rxSchedule(dst int) {
	if r.rxOut[dst] >= r.window || len(r.pending[dst]) == 0 {
		return
	}
	best := -1
	for k, m := range r.pending[dst] {
		if r.txBusy[m.src] {
			continue
		}
		if best < 0 || m.size < r.pending[dst][best].size {
			best = k
		}
	}
	if best < 0 {
		return
	}
	m := r.pending[dst][best]
	r.pending[dst] = append(r.pending[dst][:best], r.pending[dst][best+1:]...)
	r.rxOut[dst]++
	// The grant travels one hop to the sender; two receivers may commit to
	// the same sender in the same instant — the loser queues (conflict).
	r.eng.After(r.cfg.linkLat(), func() {
		if r.txBusy[m.src] {
			r.Conflicts++
		}
		r.sendQ[m.src] = append(r.sendQ[m.src], m)
		r.txPump(m.src)
	})
}

func (r *irdRun) txPump(src int) {
	if r.txBusy[src] || len(r.sendQ[src]) == 0 {
		return
	}
	r.txBusy[src] = true
	m := r.sendQ[src][0]
	r.sendQ[src] = r.sendQ[src][1:]
	r.sendMsg(src, m)
}

// sendMsg streams the message. The receiver releases its commitment when
// the sender finishes serializing (receiver credits are pipelined, so the
// next grant's data lands back to back), and all receivers rescan because a
// sender is about to become idle.
func (r *irdRun) sendMsg(src int, m *irdMsg) {
	for _, n := range packetize(m.size, r.cfg.MTU) {
		n := n
		wire := transport.WireBytes(transport.StackRoCE, n)
		r.up[src].send(wire, nil)
		arrive := r.up[src].busyUntil + r.cfg.Prop + transport.L2ForwardingLatency
		r.eng.At(arrive, func() {
			r.down[m.dst].send(wire, func() {
				r.track.delivered(m.opIdx, n)
			})
		})
	}
	r.eng.At(r.up[src].busyUntil, func() {
		r.txBusy[src] = false
		r.txPump(src)
		r.rxOut[m.dst]--
		r.rxSchedule(m.dst)
		if !r.txBusy[src] {
			// The sender is idle: any waiting receiver may grab it.
			for d := 0; d < r.cfg.Nodes; d++ {
				r.rxSchedule(d)
			}
		}
	})
}
