package netsim

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestScaleArrivalsNoOverflow is the regression test for the int64 overflow
// in ScaleArrivals: a multi-second trace (arrivals ~ 5e12 ps) with a large
// aggregate wire-byte total made int64(op.Arrival)*wire wrap negative, which
// then fed negative arrival times into the engine (a panic) or scrambled op
// order.
func TestScaleArrivalsNoOverflow(t *testing.T) {
	// 200k ops of 64 KB is ~13 GB of data; EDM's wire total is ~1.05x that,
	// so wire ~ 1.4e10 and arrival*wire ~ 7e22 >> MaxInt64 ~ 9.2e18.
	const (
		count = 200000
		size  = 65536
	)
	ops := make([]workload.Op, count)
	for i := range ops {
		ops[i] = workload.Op{
			Index: i, Src: i % 8, Dst: 8 + i%8, Size: size,
			Arrival: sim.Time(i) * 25 * sim.Microsecond, // last arrival: 5 s
		}
	}
	p := &EDM{}
	scaled := ScaleArrivals(p, ops)
	var data, wire int64
	for _, op := range ops {
		data += int64(op.Size)
		wire += int64(p.WireBytes(op.Size))
	}
	if wire <= data {
		t.Fatalf("test needs wire (%d) > data (%d) to exercise scaling", wire, data)
	}
	for i, op := range scaled {
		if op.Arrival < ops[i].Arrival {
			t.Fatalf("op %d: scaled arrival %d < original %d (overflow)",
				i, op.Arrival, ops[i].Arrival)
		}
		if i > 0 && op.Arrival < scaled[i-1].Arrival {
			t.Fatalf("op %d: arrival order broken after scaling", i)
		}
	}
	// Exact check on the largest arrival: t*wire/data via math/big.
	last := ops[count-1].Arrival
	want := new(big.Int).Mul(big.NewInt(int64(last)), big.NewInt(wire))
	want.Quo(want, big.NewInt(data))
	if got := scaled[count-1].Arrival; got != sim.Time(want.Int64()) {
		t.Fatalf("last arrival scaled to %d, want %d", got, want.Int64())
	}
}

func TestScaleTimeSaturates(t *testing.T) {
	// A quotient beyond int64 must saturate, not panic in bits.Div64.
	got := scaleTime(sim.Time(math.MaxInt64), math.MaxInt64, 2)
	if got != sim.Time(math.MaxInt64) {
		t.Fatalf("scaleTime did not saturate: %d", got)
	}
}
