package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// DCTCP models the representative sender-driven reactive protocol: per-pair
// connections with DCTCP's ECN-fraction window control over an
// output-queued switch with finite buffers; drops recover by timeout
// (single-packet messages cannot trigger 3-dupACK fast retransmit, §2.4
// limitation 6).
type DCTCP struct {
	// MarkThresholdBytes is the ECN marking threshold K (default 30 KB).
	MarkThresholdBytes int64
	// BufferBytes is the per-egress buffer (default 256 KB).
	BufferBytes int64
	// RTO is the retransmission timeout (default 200 us; datacenter TCP
	// stacks use hundreds of microseconds to milliseconds).
	RTO sim.Time
	// InitCwnd in packets (default 10).
	InitCwnd float64
	// Gain is DCTCP's g (default 1/16).
	Gain float64
}

// Name implements Protocol.
func (d *DCTCP) Name() string { return "DCTCP" }

// WireBytes implements Protocol.
func (d *DCTCP) WireBytes(n int) int {
	total := 0
	for _, p := range packetize(n, 1500) {
		total += transport.WireBytes(transport.StackTCP, p)
	}
	return total
}

// ReqWireBytes implements Protocol.
func (d *DCTCP) ReqWireBytes() int { return transport.WireBytes(transport.StackTCP, 8) }

func (d *DCTCP) defaults() {
	if d.MarkThresholdBytes == 0 {
		d.MarkThresholdBytes = 30 << 10
	}
	if d.BufferBytes == 0 {
		d.BufferBytes = 256 << 10
	}
	if d.RTO == 0 {
		d.RTO = 200 * sim.Microsecond
	}
	if d.InitCwnd == 0 {
		d.InitCwnd = 10
	}
	if d.Gain == 0 {
		d.Gain = 1.0 / 16
	}
}

type tcpPkt struct {
	opIdx    int
	data     int  // payload bytes credited to the op on delivery
	isReq    bool // read request: triggers the response at the receiver
	size     int  // remaining op bytes at send time (for bookkeeping only)
	acked    bool
	dropped  bool
	marked   bool
	credited bool // delivered-and-counted once (guards RTO duplicates)
	conn     *tcpConn
}

type tcpConn struct {
	src, dst int
	cwnd     float64
	inflight int
	q        []*tcpPkt
	alpha    float64
	ackSeen  int
	ackMark  int
	windowSz int
}

type dctcpRun struct {
	p      *DCTCP
	cfg    Config
	eng    *sim.Engine
	up     []*pipe
	egress []*pipe // switch egress ports (output-queued)
	conns  map[[2]int]*tcpConn
	track  *tracker
	stats  struct{ drops, marks, rtos uint64 }
}

// Run implements Protocol.
func (d *DCTCP) Run(cfg Config, ops []workload.Op) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d.defaults()
	eng := sim.NewEngine()
	r := &dctcpRun{p: d, cfg: cfg, eng: eng,
		conns: make(map[[2]int]*tcpConn),
		track: newTracker(eng, d.Name(), ops)}
	r.up = make([]*pipe, cfg.Nodes)
	r.egress = make([]*pipe, cfg.Nodes)
	for i := range r.up {
		r.up[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
		r.egress[i] = newPipe(eng, cfg.Bandwidth, cfg.linkLat())
	}
	for _, op := range ops {
		op := op
		eng.At(op.Arrival, func() { r.arrive(op) })
	}
	eng.Run()
	if r.track.res.Completed != len(ops) {
		return nil, fmt.Errorf("dctcp run: %d of %d ops completed", r.track.res.Completed, len(ops))
	}
	return r.track.finish(), nil
}

func (r *dctcpRun) conn(src, dst int) *tcpConn {
	key := [2]int{src, dst}
	c := r.conns[key]
	if c == nil {
		c = &tcpConn{src: src, dst: dst, cwnd: r.p.InitCwnd}
		r.conns[key] = c
	}
	return c
}

// arrive queues the op's packets after the sender-side stack latency.
func (r *dctcpRun) arrive(op workload.Op) {
	r.eng.After(transport.TCPStackLatency, func() {
		if op.Read {
			// 8 B read request travels c->m first.
			c := r.conn(op.Src, op.Dst)
			c.q = append(c.q, &tcpPkt{opIdx: op.Index, data: 0, isReq: true, size: op.Size, conn: c})
			r.pump(c)
			return
		}
		r.enqueueData(op.Src, op.Dst, op.Index, op.Size)
	})
}

func (r *dctcpRun) enqueueData(src, dst, opIdx, size int) {
	c := r.conn(src, dst)
	for _, n := range packetize(size, r.cfg.MTU) {
		c.q = append(c.q, &tcpPkt{opIdx: opIdx, data: n, size: size, conn: c})
	}
	r.pump(c)
}

// pump sends while the window allows.
func (r *dctcpRun) pump(c *tcpConn) {
	for len(c.q) > 0 && float64(c.inflight) < c.cwnd {
		pkt := c.q[0]
		c.q = c.q[1:]
		c.inflight++
		r.sendPkt(pkt)
	}
}

func (r *dctcpRun) wireBytes(pkt *tcpPkt) int {
	n := pkt.data
	if pkt.isReq {
		n = 8
	}
	return transport.WireBytes(transport.StackTCP, n)
}

func (r *dctcpRun) sendPkt(pkt *tcpPkt) {
	wire := r.wireBytes(pkt)
	c := pkt.conn
	r.up[c.src].send(wire, func() {
		// At the switch after L2 parsing: drop if the egress buffer is
		// full, else enqueue (ECN mark above K).
		eg := r.egress[c.dst]
		if eg.queuedBytes()+int64(wire) > r.p.BufferBytes {
			pkt.dropped = true
			r.stats.drops++
			return // recovery via RTO below
		}
		if eg.queuedBytes() > r.p.MarkThresholdBytes {
			pkt.marked = true
			r.stats.marks++
		}
		r.eng.After(transport.L2ForwardingLatency, func() {
			eg.send(wire, func() { r.deliver(pkt) })
		})
	})
	// Arm the retransmission timeout.
	r.eng.After(r.p.RTO, func() {
		if pkt.acked {
			return
		}
		r.stats.rtos++
		pkt.dropped = false
		c.inflight--
		if c.inflight < 0 {
			c.inflight = 0
		}
		// Timeout implies severe congestion: collapse the window.
		c.cwnd = 1
		c.q = append([]*tcpPkt{pkt}, c.q...)
		r.pump(c)
	})
}

// deliver handles arrival at the receiver: ACK back to the sender, then the
// receiver-side stack; read requests trigger the data in the reverse
// direction.
func (r *dctcpRun) deliver(pkt *tcpPkt) {
	c := pkt.conn
	// ACK returns after one propagation (ACKs ride the reverse path; their
	// 64 B frames are negligible next to data and not serialized here).
	r.eng.After(2*r.cfg.linkLat()+transport.L2ForwardingLatency, func() { r.ack(pkt) })
	r.eng.After(transport.TCPStackLatency, func() {
		if pkt.credited {
			return // duplicate of a retransmitted packet
		}
		pkt.credited = true
		if pkt.isReq {
			// Memory node issues the response data m->c.
			r.enqueueData(c.dst, c.src, pkt.opIdx, pkt.size)
			return
		}
		r.track.delivered(pkt.opIdx, pkt.data)
	})
}

// ack runs DCTCP's window update at the sender.
func (r *dctcpRun) ack(pkt *tcpPkt) {
	if pkt.acked {
		return
	}
	pkt.acked = true
	c := pkt.conn
	c.inflight--
	if c.inflight < 0 {
		c.inflight = 0
	}
	c.ackSeen++
	if pkt.marked {
		c.ackMark++
	}
	c.windowSz++
	if float64(c.windowSz) >= c.cwnd {
		frac := float64(c.ackMark) / float64(c.ackSeen)
		c.alpha = (1-r.p.Gain)*c.alpha + r.p.Gain*frac
		if c.ackMark > 0 {
			c.cwnd *= 1 - c.alpha/2
			if c.cwnd < 1 {
				c.cwnd = 1
			}
		} else {
			c.cwnd++
		}
		c.ackSeen, c.ackMark, c.windowSz = 0, 0, 0
	} else if pkt.marked {
		// keep counting; decrease applied at window boundary
	} else {
		c.cwnd += 1 / c.cwnd
	}
	r.pump(c)
}
