package ethstack

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/transport"
)

func fastMem() *memctl.Controller {
	cfg := memctl.DefaultConfig()
	cfg.TRP, cfg.TRCD, cfg.TCAS, cfg.TBurst, cfg.Overhead = 0, 0, 0, 0, 0
	return memctl.New(cfg)
}

func newNet(t *testing.T, ports int) *Network {
	t.Helper()
	n := New(DefaultConfig(ports))
	n.Host(ports - 1).AttachMemory(fastMem())
	return n
}

func TestReadWriteRoundTrip(t *testing.T) {
	n := newNet(t, 2)
	data := bytes.Repeat([]byte{0xab}, 64)
	if _, err := n.WriteSync(0, 1, 4096, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := n.ReadSync(0, 1, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

// TestUnloadedLatencyMatchesTable1 is the point of this package: the
// measured frame-level latency must land on the paper's raw-Ethernet rows
// (1.11 us read, 557 ns write) within the serialization terms the
// component model folds into TD+PD.
func TestUnloadedLatencyMatchesTable1(t *testing.T) {
	n := newNet(t, 2)
	if _, err := n.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, readLat, err := n.ReadSync(0, 1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	writeLat, err := n.WriteSync(0, 1, 4096, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	paperRead := float64(transport.Table1(transport.StackRawEthernet, false).Total())
	paperWrite := float64(transport.Table1(transport.StackRawEthernet, true).Total())
	devR := math.Abs(float64(readLat)-paperRead) / paperRead
	devW := math.Abs(float64(writeLat)-paperWrite) / paperWrite
	t.Logf("raw Ethernet measured: read %v (paper %.0fns, %.1f%%), write %v (paper %.0fns, %.1f%%)",
		readLat, paperRead/1000, devR*100, writeLat, paperWrite/1000, devW*100)
	// Allow 25%: the component model excludes frame serialization
	// (~27-30ns per hop at 25G) and store-and-forward buffering.
	if devR > 0.25 || devW > 0.25 {
		t.Fatalf("measured raw-Ethernet latency too far from Table 1")
	}
}

// TestRawEthernetSlowerThanEDM: the two measured fabrics, same memory
// workload — the frame-level stack pays the MAC/L2 penalty.
func TestRawEthernetSlowerThanEDM(t *testing.T) {
	n := newNet(t, 2)
	if _, err := n.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, raw, err := n.ReadSync(0, 1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// EDM measured ~312ns (see internal/edm tests); raw must be several
	// times slower.
	if raw < 2*312*sim.Nanosecond {
		t.Fatalf("raw Ethernet read %v suspiciously fast", raw)
	}
}

func TestIncastQueuesAtSwitch(t *testing.T) {
	// 8 senders writing to one memory node simultaneously: the egress
	// queue must grow (limitation 6) — contrast with EDM's zero-queue
	// switch (edm.TestZeroQueuingAtSwitch).
	const senders = 8
	n := New(DefaultConfig(senders + 1))
	n.Host(senders).AttachMemory(fastMem())
	done := 0
	for i := 0; i < senders; i++ {
		if err := n.Host(i).Write(senders, uint64(i)*4096, make([]byte, 1400), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	n.Run()
	if done != senders {
		t.Fatalf("completed %d", done)
	}
	if q := n.MaxEgressQueue(); q < 3*1400 {
		t.Fatalf("egress queue max %dB; expected a deep incast backlog", q)
	}
}

func TestSmallMessagePaysMinFrame(t *testing.T) {
	// An 8 B read and a 28 B one cost the same on the wire
	// (limitation 1): identical unloaded latency.
	n1 := newNet(t, 2)
	if _, err := n1.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, lat8, err := n1.ReadSync(0, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	n2 := newNet(t, 2)
	if _, err := n2.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, lat28, err := n2.ReadSync(0, 1, 0, 28)
	if err != nil {
		t.Fatal(err)
	}
	// Both responses (14B header + data) fit the 64B minimum frame: same
	// latency despite 3.5x the data.
	if lat8 != lat28 {
		t.Fatalf("8B read %v != 28B read %v: min-frame padding not charged", lat8, lat28)
	}
}

func TestReadTimeout(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ReadTimeout = 2 * sim.Microsecond
	n := New(cfg) // no memory attached anywhere
	var gotErr error
	if err := n.Host(0).Read(1, 0, 64, func(_ []byte, err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
	if n.Host(0).Timeouts() != 1 {
		t.Fatal("timeout not counted")
	}
}

func TestManyOutstandingReads(t *testing.T) {
	n := newNet(t, 3)
	mem := n.Host(2).Memory()
	for i := 0; i < 16; i++ {
		if _, err := mem.Write(uint64(i)*128, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	done := 0
	for i := 0; i < 16; i++ {
		i := i
		src := i % 2
		if err := n.Host(src).Read(2, uint64(i)*128, 64, func(d []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if d[0] != byte(i+1) {
				t.Errorf("read %d wrong data %d", i, d[0])
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	n.Run()
	if done != 16 {
		t.Fatalf("completed %d of 16", done)
	}
}
