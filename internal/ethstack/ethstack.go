// Package ethstack implements the conventional MAC-layer remote-memory
// fabric that EDM is measured against: memory messages carried in standard
// Ethernet frames through a store-and-forward layer-2 switch. It is the
// "raw Ethernet (standard Ethernet MAC + PHY only)" baseline of §4.2 built
// as a running system rather than a component-latency sum, so Table 1's
// baseline rows can be *measured* and the limitations of §2.4 (minimum
// frame size, IFG, no preemption, L2 pipeline, switch queueing) arise
// mechanically.
package ethstack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mac"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Config parameterizes the frame-level network. Defaults reproduce the
// 25 GbE testbed constants of Table 1.
type Config struct {
	Ports     int
	Bandwidth sim.Gbps
	Prop      sim.Time // one-hop propagation
	PMA       sim.Time // per PMA/PMD crossing
	MACLat    sim.Time // MAC latency per traversal
	PCSLat    sim.Time // PCS latency per traversal
	L2Lat     sim.Time // switch forwarding pipeline
	// ReadTimeout bounds outstanding reads.
	ReadTimeout sim.Time
}

// DefaultConfig returns the Table 1 baseline constants.
func DefaultConfig(ports int) Config {
	return Config{
		Ports:       ports,
		Bandwidth:   25,
		Prop:        10 * sim.Nanosecond,
		PMA:         19 * sim.Nanosecond,
		MACLat:      transport.MACLatency,
		PCSLat:      transport.PCSLatency,
		L2Lat:       transport.L2ForwardingLatency,
		ReadTimeout: 100 * sim.Microsecond,
	}
}

// Frame payload opcodes.
const (
	opRead  uint8 = 1
	opWrite uint8 = 2
	opResp  uint8 = 3
)

// payload header: op(1) id(1) addr(8) len(4).
const hdrBytes = 14

// Stack errors.
var (
	ErrTimeout = errors.New("ethstack: read timed out")
	ErrBadWire = errors.New("ethstack: malformed payload")
)

// ReadCallback delivers a read result.
type ReadCallback func(data []byte, err error)

// WriteCallback fires when the write is applied at the remote memory.
type WriteCallback func(err error)

// Network is the frame-level cluster: hosts, their links, and one layer-2
// switch with per-egress output queues.
type Network struct {
	Engine *sim.Engine
	cfg    Config
	hosts  []*Host
	// egress[i] serializes frames leaving the switch toward host i.
	egress []*serializer
	// egressQueueMax tracks the deepest egress backlog in bytes — the
	// queueing EDM's scheduler exists to eliminate.
	egressQueueMax int64
}

// serializer is a FIFO link: frames occupy it for their wire time, then
// arrive after the fixed latency.
type serializer struct {
	eng       *sim.Engine
	bw        sim.Gbps
	lat       sim.Time
	busyUntil sim.Time
}

func (s *serializer) send(wire int, deliver func()) (queued int64) {
	now := s.eng.Now()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	backlog := int64(0)
	if s.busyUntil > now {
		backlog = int64(s.busyUntil-now) * int64(s.bw) / 8000
	}
	s.busyUntil = start + sim.TransmissionTime(wire, s.bw)
	s.eng.At(s.busyUntil+s.lat, deliver)
	return backlog
}

// New builds the network.
func New(cfg Config) *Network {
	if cfg.Ports < 2 {
		panic("ethstack: need at least 2 ports")
	}
	n := &Network{Engine: sim.NewEngine(), cfg: cfg}
	n.hosts = make([]*Host, cfg.Ports)
	n.egress = make([]*serializer, cfg.Ports)
	for i := range n.hosts {
		n.hosts[i] = &Host{
			net: n, port: i,
			uplink:   &serializer{eng: n.Engine, bw: cfg.Bandwidth, lat: n.linkLat()},
			readTab:  make(map[uint8]*pendingRead),
			writeTab: make(map[uint8]WriteCallback),
		}
		n.egress[i] = &serializer{eng: n.Engine, bw: cfg.Bandwidth, lat: n.linkLat()}
	}
	return n
}

// linkLat is the fixed one-way link latency after serialization.
func (n *Network) linkLat() sim.Time { return n.cfg.Prop + 2*n.cfg.PMA }

// Host returns the host at port i.
func (n *Network) Host(i int) *Host { return n.hosts[i] }

// MaxEgressQueue reports the deepest switch egress backlog seen, in bytes.
func (n *Network) MaxEgressQueue() int64 { return n.egressQueueMax }

// Run drains the engine.
func (n *Network) Run() { n.Engine.Run() }

// forward is the switch: ingress MAC+PCS, the L2 pipeline, then the egress
// queue toward the destination (store-and-forward: the frame was fully
// received before this is called).
func (n *Network) forward(dstPort int, wire []byte) {
	n.Engine.After(n.cfg.MACLat+n.cfg.PCSLat+n.cfg.L2Lat, func() {
		q := n.egress[dstPort].send(len(wire)+mac.PreambleBytes+mac.IFGBytes, func() {
			n.hosts[dstPort].receive(wire)
		})
		if q > n.egressQueueMax {
			n.egressQueueMax = q
		}
	})
}

type pendingRead struct {
	cb   ReadCallback
	done bool
}

// Host is a frame-level endpoint: it encapsulates memory operations in
// Ethernet frames (paying minimum-frame padding and IFG) and, when a
// memctl.Controller is attached, serves remote requests.
type Host struct {
	net    *Network
	port   int
	uplink *serializer
	mem    *memctl.Controller

	nextID   uint8
	readTab  map[uint8]*pendingRead
	writeTab map[uint8]WriteCallback
	timeouts uint64
}

// AttachMemory makes the host a memory node.
func (h *Host) AttachMemory(ctl *memctl.Controller) { h.mem = ctl }

// Memory returns the attached controller.
func (h *Host) Memory() *memctl.Controller { return h.mem }

// Timeouts reports expired reads.
func (h *Host) Timeouts() uint64 { return h.timeouts }

func (h *Host) payload(op uint8, id uint8, addr uint64, length uint32, data []byte) []byte {
	p := make([]byte, hdrBytes+len(data))
	p[0] = op
	p[1] = id
	binary.LittleEndian.PutUint64(p[2:], addr)
	binary.LittleEndian.PutUint32(p[10:], length)
	copy(p[hdrBytes:], data)
	return p
}

// send frames the payload and transmits it: MAC+PCS latency, then the
// uplink serializes preamble+frame+IFG.
func (h *Host) send(dst int, payload []byte) error {
	f := &mac.Frame{
		Dst: mac.NodeAddr(dst), Src: mac.NodeAddr(h.port),
		EtherType: mac.EtherTypeRemoteMem, Payload: payload,
	}
	wire, err := f.Marshal()
	if err != nil {
		return err
	}
	h.net.Engine.After(h.net.cfg.MACLat+h.net.cfg.PCSLat, func() {
		h.uplink.send(len(wire)+mac.PreambleBytes+mac.IFGBytes, func() {
			h.net.forward(dst, wire)
		})
	})
	return nil
}

// Read issues a remote read over raw Ethernet.
func (h *Host) Read(dst int, addr uint64, length int, cb ReadCallback) error {
	id := h.nextID
	h.nextID++
	pr := &pendingRead{cb: cb}
	h.readTab[id] = pr
	h.net.Engine.After(h.net.cfg.ReadTimeout, func() {
		if pr.done {
			return
		}
		pr.done = true
		delete(h.readTab, id)
		h.timeouts++
		if cb != nil {
			cb(nil, ErrTimeout)
		}
	})
	return h.send(dst, h.payload(opRead, id, addr, uint32(length), nil))
}

// Write issues a remote write; cb fires at remote apply (measured through
// simulator state — the wire protocol itself has no acknowledgement,
// exactly like the paper's one-sided raw-Ethernet writes).
func (h *Host) Write(dst int, addr uint64, data []byte, cb WriteCallback) error {
	id := h.nextID
	h.nextID++
	if cb != nil {
		h.writeTab[id] = cb
	}
	return h.send(dst, h.payload(opWrite, id, addr, uint32(len(data)), data))
}

// receive terminates a frame: MAC+PCS on the way up, then the operation.
func (h *Host) receive(wire []byte) {
	h.net.Engine.After(h.net.cfg.MACLat+h.net.cfg.PCSLat, func() {
		f, err := mac.Unmarshal(wire)
		if err != nil {
			return // corrupted frame: dropped, requester times out
		}
		if len(f.Payload) < hdrBytes {
			return
		}
		op, id := f.Payload[0], f.Payload[1]
		addr := binary.LittleEndian.Uint64(f.Payload[2:])
		length := binary.LittleEndian.Uint32(f.Payload[10:])
		src := int(binary.BigEndian.Uint32(f.Src[2:]))
		switch op {
		case opRead:
			if h.mem == nil {
				return
			}
			data, lat, err := h.mem.Read(addr, int(length))
			if err != nil {
				return
			}
			h.net.Engine.After(lat, func() {
				_ = h.send(src, h.payload(opResp, id, addr, length, data))
			})
		case opWrite:
			if h.mem == nil {
				return
			}
			data := f.Payload[hdrBytes:]
			if int(length) <= len(data) {
				data = data[:length]
			}
			lat, err := h.mem.Write(addr, data)
			if err != nil {
				return
			}
			h.net.Engine.After(lat, func() { h.net.hosts[src].writeApplied(id) })
		case opResp:
			pr, ok := h.readTab[id]
			if !ok || pr.done {
				return
			}
			pr.done = true
			delete(h.readTab, id)
			if pr.cb != nil {
				data := f.Payload[hdrBytes:]
				if int(length) <= len(data) {
					data = data[:length]
				}
				pr.cb(data, nil)
			}
		}
	})
}

func (h *Host) writeApplied(id uint8) {
	if cb, ok := h.writeTab[id]; ok {
		delete(h.writeTab, id)
		cb(nil)
	}
}

// ReadSync issues a read and steps the engine to completion, returning the
// elapsed fabric latency.
func (n *Network) ReadSync(from, memNode int, addr uint64, length int) ([]byte, sim.Time, error) {
	start := n.Engine.Now()
	var out []byte
	var rerr error
	done := false
	if err := n.hosts[from].Read(memNode, addr, length, func(d []byte, err error) {
		out, rerr, done = d, err, true
	}); err != nil {
		return nil, 0, err
	}
	for !done && n.Engine.Step() {
	}
	if !done {
		return nil, 0, fmt.Errorf("ethstack: read never completed")
	}
	return out, n.Engine.Now() - start, rerr
}

// WriteSync issues a write and steps the engine until it is applied.
func (n *Network) WriteSync(from, memNode int, addr uint64, data []byte) (sim.Time, error) {
	start := n.Engine.Now()
	var werr error
	done := false
	if err := n.hosts[from].Write(memNode, addr, data, func(err error) {
		werr, done = err, true
	}); err != nil {
		return 0, err
	}
	for !done && n.Engine.Step() {
	}
	if !done {
		return 0, fmt.Errorf("ethstack: write never completed")
	}
	return n.Engine.Now() - start, werr
}
