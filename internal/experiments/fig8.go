package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig8Config scales the §4.3 simulations. The paper uses 144 nodes at
// 100 Gbps; OpsPerRun trades precision for runtime.
type Fig8Config struct {
	Nodes     int
	Bandwidth sim.Gbps
	OpsPerRun int
	Seed      uint64
}

// DefaultFig8Config returns the paper-scale setup.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Nodes: 144, Bandwidth: 100, OpsPerRun: 20000, Seed: 1}
}

func (c Fig8Config) netCfg() netsim.Config {
	return netsim.Config{
		Nodes: c.Nodes, Bandwidth: c.Bandwidth,
		Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500,
	}
}

// Fig8aRow is one (protocol, load) point of Figure 8a: mean normalized
// latency for reads and writes separately.
type Fig8aRow struct {
	Proto      string
	Load       float64
	ReadsNorm  float64
	WritesNorm float64
}

// Fig8a sweeps network load for all seven protocols on the 64 B
// microbenchmark (8 B RREQ, equal read/write mix).
func Fig8a(cfg Fig8Config, loads []float64) ([]Fig8aRow, error) {
	if len(loads) == 0 {
		loads = []float64{0.2, 0.4, 0.6, 0.8, 0.9}
	}
	var rows []Fig8aRow
	for _, load := range loads {
		ops, err := workload.Generate(workload.GenConfig{
			Nodes: cfg.Nodes, Load: load, Bandwidth: cfg.Bandwidth,
			Sizes: workload.Fixed(64), ReadFrac: 0.5,
			Count: cfg.OpsPerRun, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range netsim.Protocols() {
			res, err := netsim.RunNormalized(p, cfg.netCfg(), ops)
			if err != nil {
				return nil, fmt.Errorf("fig8a %s load %.1f: %w", p.Name(), load, err)
			}
			rows = append(rows, Fig8aRow{
				Proto:      p.Name(),
				Load:       load,
				ReadsNorm:  res.NormalizedSummary(netsim.Reads).Mean,
				WritesNorm: res.NormalizedSummary(netsim.Writes).Mean,
			})
		}
	}
	return rows, nil
}

// Fig8aMixRow is one (protocol, write:read mix) point at load 0.8.
type Fig8aMixRow struct {
	Proto     string
	WriteFrac float64
	Norm      float64
}

// Fig8aMix sweeps the write:read mixture at a fixed load of 0.8
// (the paper's 100:0 / 80:20 / 50:50 / 20:80 / 0:100 groups).
func Fig8aMix(cfg Fig8Config, writeFracs []float64) ([]Fig8aMixRow, error) {
	if len(writeFracs) == 0 {
		writeFracs = []float64{1.0, 0.8, 0.5, 0.2, 0.0}
	}
	var rows []Fig8aMixRow
	for _, wf := range writeFracs {
		ops, err := workload.Generate(workload.GenConfig{
			Nodes: cfg.Nodes, Load: 0.8, Bandwidth: cfg.Bandwidth,
			Sizes: workload.Fixed(64), ReadFrac: 1 - wf,
			Count: cfg.OpsPerRun, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range netsim.Protocols() {
			res, err := netsim.RunNormalized(p, cfg.netCfg(), ops)
			if err != nil {
				return nil, fmt.Errorf("fig8a-mix %s wf %.1f: %w", p.Name(), wf, err)
			}
			rows = append(rows, Fig8aMixRow{
				Proto:     p.Name(),
				WriteFrac: wf,
				Norm:      res.NormalizedSummary(nil).Mean,
			})
		}
	}
	return rows, nil
}

// Fig8bRow is one (application, protocol) bar of Figure 8b: mean message
// completion time normalized by the ideal, plus the absolute mean MCT
// (normalized ratios penalize protocols with small unloaded latency — EDM
// above all — so the absolute column carries the direct comparison).
type Fig8bRow struct {
	App       string
	Proto     string
	NormMCT   float64
	AbsMeanNs float64
}

// Fig8b replays the disaggregated-application traces (heavy-tailed size
// CDFs, equal read/write mix, load 0.8) through every protocol.
func Fig8b(cfg Fig8Config) ([]Fig8bRow, error) {
	var rows []Fig8bRow
	for _, app := range workload.AppProfiles() {
		ops, err := workload.Generate(workload.GenConfig{
			Nodes: cfg.Nodes, Load: 0.8, Bandwidth: cfg.Bandwidth,
			Sizes: app, ReadFrac: 0.5,
			Count: cfg.OpsPerRun, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range netsim.Protocols() {
			res, err := netsim.RunNormalized(p, cfg.netCfg(), ops)
			if err != nil {
				return nil, fmt.Errorf("fig8b %s/%s: %w", app.Name(), p.Name(), err)
			}
			var abs float64
			for _, o := range res.Ops {
				abs += float64(o.Latency)
			}
			if len(res.Ops) > 0 {
				abs /= float64(len(res.Ops)) * 1000
			}
			rows = append(rows, Fig8bRow{
				App:       app.Name(),
				Proto:     p.Name(),
				NormMCT:   res.NormalizedSummary(nil).Mean,
				AbsMeanNs: abs,
			})
		}
	}
	return rows, nil
}
