package experiments

import (
	"fmt"

	"repro/internal/edm"
	"repro/internal/kvstore"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Figure 6 workload constants (§4.2.2): each read queries 1 KB, each write
// carries 100 B, RREQ is 8 B.
const (
	fig6ReadBytes  = 1024
	fig6WriteBytes = 100
	fig6Bandwidth  = sim.Gbps(100)
	// fig6Window is the client's outstanding-request window: the KV client
	// keeps this many operations in flight (closed loop). EDM saturates
	// the link inside this window; RDMA's microsecond-scale stack makes it
	// latency-bound — the mechanism behind the paper's ~2.7x gap.
	fig6Window = 16
)

// Fig6Row is one workload group of Figure 6.
type Fig6Row struct {
	Workload workload.YCSBWorkload
	EDMMrps  float64
	RDMAMrps float64
	Ratio    float64
}

// wirePerOp reports the bottleneck-direction wire bytes per operation for
// the given stack and write fraction: reads move fig6ReadBytes from the
// memory node (its TX), writes move fig6WriteBytes into it (its RX). The
// memory node's TX dominates for read-heavy mixes.
func wirePerOp(s transport.Stack, writeFrac float64) float64 {
	readFrac := 1 - writeFrac
	tx := readFrac * float64(transport.WireBytes(s, fig6ReadBytes))
	rx := readFrac*float64(transport.WireBytes(s, 8)) +
		writeFrac*float64(transport.WireBytes(s, fig6WriteBytes))
	if s == transport.StackEDM {
		// Grants and notifications share the links: one 9 B block per
		// 256 B chunk granted plus one notification per write (§3.1.4).
		chunks := float64((fig6ReadBytes + 255) / 256)
		rx += readFrac*chunks*9 + writeFrac*9
		tx += writeFrac * 9
	}
	if tx > rx {
		return tx
	}
	return rx
}

// stackLatencyPerOp is the mean unloaded operation latency for the mix.
func stackLatencyPerOp(s transport.Stack, writeFrac float64) sim.Time {
	r := transport.Table1(s, false).Total()
	w := transport.Table1(s, true).Total()
	return sim.Time(float64(r)*(1-writeFrac) + float64(w)*writeFrac)
}

// Fig6 computes the request throughput of EDM vs RDMA for YCSB A, B and F:
// throughput = min(link-bound, window/latency-bound), per the closed-loop
// client model above.
func Fig6() []Fig6Row {
	var rows []Fig6Row
	for _, w := range []workload.YCSBWorkload{workload.YCSBA, workload.YCSBB, workload.YCSBF} {
		wf := w.WriteFraction()
		rate := func(s transport.Stack) float64 {
			linkBound := float64(fig6Bandwidth) * 1e9 / (8 * wirePerOp(s, wf))
			latBound := fig6Window / (float64(stackLatencyPerOp(s, wf)) * 1e-12)
			if latBound < linkBound {
				return latBound / 1e6
			}
			return linkBound / 1e6
		}
		e, r := rate(transport.StackEDM), rate(transport.StackRoCE)
		rows = append(rows, Fig6Row{Workload: w, EDMMrps: e, RDMAMrps: r, Ratio: e / r})
	}
	return rows
}

// Figure 7: end-to-end average latency of YCSB-A over a store whose objects
// are split local:remote in the paper's five ratios.

// Fig7Row is one group of Figure 7.
type Fig7Row struct {
	Label      string // e.g. "50:50"
	LocalFrac  float64
	EDMNanos   float64
	CXLNanos   float64
	RDMANanos  float64
	PaperEDM   float64 // paper-reported values for comparison
	PaperCXL   float64
	PaperRDMA  float64
	EDMSamples stats.Summary
}

// fig7Ratios are the paper's Local:Remote splits with its reported values.
var fig7Ratios = []struct {
	label             string
	localFrac         float64
	pEDM, pCXL, pRDMA float64
}{
	{"100:10", 100.0 / 110, 113, 107, 227},
	{"66:34", 0.66, 195, 168, 639},
	{"50:50", 0.50, 250, 207, 915},
	{"34:66", 0.34, 311, 252, 1218},
	{"10:100", 10.0 / 110, 395, 313, 1637},
}

// CXL latency model for Figure 7: one switch hop each way (~100 ns, Pond)
// plus the controller path; calibrated to the paper's measured ~230 ns
// remote access excess over local DRAM.
const cxlRemoteFabric = 230 * sim.Nanosecond

// Fig7 measures EDM's per-ratio average latency on the block-level fabric
// (64 B objects, YCSB-A zipfian keys remapped uniformly across the tiers so
// the local fraction is exact) and compares against the CXL and RDMA
// latency models.
func Fig7(opsPerRatio int) ([]Fig7Row, error) {
	if opsPerRatio <= 0 {
		opsPerRatio = 400
	}
	var rows []Fig7Row
	for _, rc := range fig7Ratios {
		// Build a fresh testbed per ratio with realistic DRAM timing.
		f := edm.New(edm.DefaultConfig(2))
		f.AttachMemory(1, memctl.New(memctl.DefaultConfig()))
		local := memctl.New(memctl.DefaultConfig())
		slots := 4096
		st, err := kvstore.New(f, 0, 1, local, kvstore.Config{
			Slots: slots, SlotBytes: 64,
			LocalSlots: int(rc.localFrac * float64(slots)),
		})
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", rc.label, err)
		}
		lats, err := st.RunYCSB(workload.YCSBA, opsPerRatio, 99)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", rc.label, err)
		}
		// Key popularity is zipfian, which would skew the local fraction;
		// reweight to the exact split the paper prescribes by averaging
		// local and remote pools separately.
		var localSum, remoteSum float64
		var localN, remoteN int
		samples := make([]float64, 0, len(lats))
		for _, l := range lats {
			ns := l.Latency.Nanoseconds()
			samples = append(samples, ns)
			if l.Local {
				localSum += ns
				localN++
			} else {
				remoteSum += ns
				remoteN++
			}
		}
		if localN == 0 {
			localSum, localN = measureLocalDRAM(), 1
		}
		if remoteN == 0 {
			return nil, fmt.Errorf("fig7 %s: no remote samples", rc.label)
		}
		localAvg := localSum / float64(localN)
		remoteAvg := remoteSum / float64(remoteN)
		edmAvg := rc.localFrac*localAvg + (1-rc.localFrac)*remoteAvg

		// Baselines: same local tier, different remote fabrics.
		rdmaRemote := localAvg + float64(stackLatencyPerOp(transport.StackRoCE, 0.5))/1000
		cxlRemote := localAvg + float64(cxlRemoteFabric)/1000
		rows = append(rows, Fig7Row{
			Label:     rc.label,
			LocalFrac: rc.localFrac,
			EDMNanos:  edmAvg,
			CXLNanos:  rc.localFrac*localAvg + (1-rc.localFrac)*cxlRemote,
			RDMANanos: rc.localFrac*localAvg + (1-rc.localFrac)*rdmaRemote,
			PaperEDM:  rc.pEDM, PaperCXL: rc.pCXL, PaperRDMA: rc.pRDMA,
			EDMSamples: stats.Summarize(samples),
		})
	}
	return rows, nil
}

// measureLocalDRAM returns the average latency (ns) of a 64 B local DRAM
// access with default timing, used when a ratio has no local keys.
func measureLocalDRAM() float64 {
	ctl := memctl.New(memctl.DefaultConfig())
	_, t, err := ctl.Read(0, 64)
	if err != nil {
		return 82
	}
	return t.Nanoseconds()
}
