// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 1 and Figure 5 from the block-level testbed fabric
// and the component-latency models, Figures 6-7 from the key-value store
// application, and Figure 8 from the large-scale network simulator. Each
// experiment returns plain row structs; cmd/edmbench formats them, and
// bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"

	"repro/internal/edm"
	"repro/internal/ethstack"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Table1Row is one stack/operation cell column of Table 1.
type Table1Row struct {
	Stack      transport.Stack
	Write      bool
	StackTotal sim.Time // network stack latency
	Total      sim.Time // total fabric latency
	// Measured is the latency observed on a running fabric simulation:
	// the block-level EDM testbed for the EDM rows, and the frame-level
	// MAC/L2 stack (internal/ethstack) for the raw-Ethernet rows. TCP and
	// RoCE rows are component models only, as their stack latencies are
	// opaque constants from the paper's RTL.
	Measured sim.Time
	// PaperTotal is the value printed in the paper for comparison.
	PaperTotal sim.Time
}

// paper-reported totals (Table 1). The paper prints 3.79 us for the TCP
// read; the exact sum of its own components is 3779.68 ns, which we use.
var paperTotals = map[transport.Stack][2]sim.Time{ // [read, write]
	transport.StackTCP:         {3779680 * sim.Picosecond, 1889840 * sim.Picosecond},
	transport.StackRoCE:        {2035680 * sim.Picosecond, 1017840 * sim.Picosecond},
	transport.StackRawEthernet: {1114880 * sim.Picosecond, 557440 * sim.Picosecond},
	transport.StackEDM:         {299520 * sim.Picosecond, 296960 * sim.Picosecond},
}

// zeroLatencyMemory returns a memory controller with no access latency, so
// the testbed measures pure fabric latency as Table 1 does.
func zeroLatencyMemory() *memctl.Controller {
	cfg := memctl.DefaultConfig()
	cfg.TRP, cfg.TRCD, cfg.TCAS, cfg.TBurst, cfg.Overhead = 0, 0, 0, 0, 0
	return memctl.New(cfg)
}

// newTestbed builds the paper's testbed: compute node on port 0, memory
// node on port 1, 25 GbE (Figure 4), with zero-latency DRAM.
func newTestbed() *edm.Fabric {
	f := edm.New(edm.DefaultConfig(2))
	f.AttachMemory(1, zeroLatencyMemory())
	return f
}

// MeasureEDMUnloaded runs one 64 B read and one 64 B write through the
// block-level fabric and returns their latencies.
func MeasureEDMUnloaded() (read, write sim.Time, err error) {
	f := newTestbed()
	if _, err := f.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		return 0, 0, err
	}
	_, read, err = f.ReadSync(0, 1, 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("table1: read: %w", err)
	}
	write, err = f.WriteSync(0, 1, 4096, make([]byte, 64))
	if err != nil {
		return 0, 0, fmt.Errorf("table1: write: %w", err)
	}
	return read, write, nil
}

// MeasureRawEthernetUnloaded runs one 64 B read and write through the
// frame-level MAC/L2 fabric.
func MeasureRawEthernetUnloaded() (read, write sim.Time, err error) {
	n := ethstack.New(ethstack.DefaultConfig(2))
	n.Host(1).AttachMemory(zeroLatencyMemory())
	if _, err := n.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		return 0, 0, err
	}
	_, read, err = n.ReadSync(0, 1, 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("table1 raw: read: %w", err)
	}
	write, err = n.WriteSync(0, 1, 4096, make([]byte, 64))
	if err != nil {
		return 0, 0, fmt.Errorf("table1 raw: write: %w", err)
	}
	return read, write, nil
}

// Table1 regenerates the table: eight rows (four stacks x read/write).
func Table1() ([]Table1Row, error) {
	edmRead, edmWrite, err := MeasureEDMUnloaded()
	if err != nil {
		return nil, err
	}
	rawRead, rawWrite, err := MeasureRawEthernetUnloaded()
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, s := range []transport.Stack{
		transport.StackTCP, transport.StackRoCE, transport.StackRawEthernet, transport.StackEDM,
	} {
		for _, write := range []bool{false, true} {
			b := transport.Table1(s, write)
			row := Table1Row{
				Stack:      s,
				Write:      write,
				StackTotal: b.StackTotal(),
				Total:      b.Total(),
			}
			idx := 0
			if write {
				idx = 1
			}
			row.PaperTotal = paperTotals[s][idx]
			switch s {
			case transport.StackEDM:
				if write {
					row.Measured = edmWrite
				} else {
					row.Measured = edmRead
				}
			case transport.StackRawEthernet:
				if write {
					row.Measured = rawWrite
				} else {
					row.Measured = rawRead
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Ratio reports how much slower the row is than EDM's model total for the
// same operation — the §4.2.1 headline ratios (3.7x/6.8x/12.7x reads,
// 1.9x/3.4x/6.4x writes).
func (r Table1Row) Ratio() float64 {
	base := transport.Table1(transport.StackEDM, r.Write).Total()
	return float64(r.Total) / float64(base)
}
