package experiments

import (
	"repro/internal/edm"
	"repro/internal/sim"
)

// Fig5Stage is one arrow of Figure 5: a pipeline stage on the 64 B
// read/write path with its cycle cost (2.56 ns cycles).
type Fig5Stage struct {
	Location string // "compute", "switch", "memory", "wire"
	Op       string // "read", "write", or "both"
	Name     string
	Cycles   int
	Time     sim.Time
}

func stage(loc, op, name string, cycles int) Fig5Stage {
	return Fig5Stage{Location: loc, Op: op, Name: name, Cycles: cycles,
		Time: sim.Time(cycles) * edm.BlockPeriod}
}

// Fig5 reproduces the latency breakdown of Figure 5: every pipeline stage a
// 64 B read and write traverse, with the cycle counts of §3.2.1-§3.2.2.
// Wire stages (TD+PD) are reported separately by the caller from the fabric
// configuration.
func Fig5() []Fig5Stage {
	return []Fig5Stage{
		// Write path: notify -> grant -> WREQ.
		stage("compute", "write", "generate /N/ (read msg queue + create block)", edm.GenNotifyCycles),
		stage("switch", "write", "classify /N/ and enqueue notification", edm.SwClassifyCycles),
		stage("switch", "write", "generate /G/", edm.SwGenGrantCycles),
		stage("compute", "write", "receive /G/ (parse + grant queue)", edm.RxGrantCycles),
		stage("compute", "write", "read grant queue (RX->TX clock crossing)", edm.GrantReadCycles),
		stage("compute", "write", "generate WREQ data blocks", edm.GenDataCycles),
		stage("switch", "write", "forward WREQ blocks (RX->TX crossing)", edm.SwForwardCycles),
		stage("memory", "write", "receive WREQ data (parse+extract+deliver)", edm.RxDataCycles),

		// Read path: RREQ -> implicit grant -> RRES.
		stage("compute", "read", "generate RREQ (read msg queue + create block)", edm.GenRequestCycles),
		stage("switch", "read", "classify RREQ as implicit notification", edm.SwClassifyCycles),
		stage("switch", "read", "forward buffered RREQ as first grant", edm.SwForwardCycles),
		stage("memory", "read", "receive RREQ (+1 cycle to memory controller)", edm.RxDataCycles+edm.RxReqToMemCycles),
		stage("memory", "read", "generate RRES data blocks", edm.GenDataCycles),
		stage("switch", "read", "forward RRES blocks (RX->TX crossing)", edm.SwForwardCycles),
		stage("compute", "read", "receive RRES data (parse+extract+deliver)", edm.RxDataCycles),
	}
}

// Fig5Totals sums the stage cycles per operation.
func Fig5Totals() (readCycles, writeCycles int) {
	for _, s := range Fig5() {
		switch s.Op {
		case "read":
			readCycles += s.Cycles
		case "write":
			writeCycles += s.Cycles
		case "both":
			readCycles += s.Cycles
			writeCycles += s.Cycles
		}
	}
	return readCycles, writeCycles
}
