package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// smallFig8 keeps simulation-based tests fast.
func smallFig8() Fig8Config {
	return Fig8Config{Nodes: 16, Bandwidth: 100, OpsPerRun: 2000, Seed: 3}
}

func TestTable1ReproducesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The component model must match the paper's totals exactly.
		if r.Total != r.PaperTotal {
			t.Errorf("%v write=%v: model %v, paper %v", r.Stack, r.Write, r.Total, r.PaperTotal)
		}
		// The measured block-level fabric must land within 10% of the
		// paper for EDM.
		if r.Stack == transport.StackEDM {
			dev := math.Abs(float64(r.Measured-r.PaperTotal)) / float64(r.PaperTotal)
			t.Logf("EDM write=%v measured %v vs paper %v (%.1f%%)", r.Write, r.Measured, r.PaperTotal, dev*100)
			if dev > 0.10 {
				t.Errorf("EDM write=%v measured %v deviates %.1f%% from paper %v",
					r.Write, r.Measured, dev*100, r.PaperTotal)
			}
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[transport.Stack][2]float64{ // [read, write] vs EDM
		transport.StackRawEthernet: {3.7, 1.9},
		transport.StackRoCE:        {6.8, 3.4},
		transport.StackTCP:         {12.7, 6.4},
	}
	for _, r := range rows {
		w, ok := want[r.Stack]
		if !ok {
			continue
		}
		idx := 0
		if r.Write {
			idx = 1
		}
		if got := r.Ratio(); math.Abs(got-w[idx]) > 0.1 {
			t.Errorf("%v write=%v ratio %.2f, want %.1f", r.Stack, r.Write, got, w[idx])
		}
	}
}

func TestFig5BreakdownConsistent(t *testing.T) {
	stages := Fig5()
	if len(stages) == 0 {
		t.Fatal("no stages")
	}
	readC, writeC := Fig5Totals()
	t.Logf("read pipeline %d cycles, write pipeline %d cycles", readC, writeC)
	// The stage cycles must account for the bulk of the measured
	// network-stack time (the remainder is block serialization).
	if readC < 15 || readC > 45 || writeC < 15 || writeC > 45 {
		t.Fatalf("cycle totals out of plausible range: read=%d write=%d", readC, writeC)
	}
	for _, s := range stages {
		if s.Time != sim.Time(s.Cycles)*2560*sim.Picosecond {
			t.Errorf("stage %q time mismatch", s.Name)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%v: EDM %.1f Mrps, RDMA %.1f Mrps (%.2fx)", r.Workload, r.EDMMrps, r.RDMAMrps, r.Ratio)
		// Paper: EDM ~2.7x RDMA. Our closed-loop model lands 1.5-3x
		// depending on the mix; EDM must always win by >1.4x.
		if r.Ratio < 1.4 {
			t.Errorf("%v: EDM/RDMA ratio %.2f < 1.4", r.Workload, r.Ratio)
		}
	}
	// YCSB-A: EDM saturates the link near the paper's ~23 Mrps.
	if a := rows[0]; a.EDMMrps < 18 || a.EDMMrps > 28 {
		t.Errorf("YCSB-A EDM throughput %.1f Mrps outside 18-28", a.EDMMrps)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	prevEDM := 0.0
	for _, r := range rows {
		t.Logf("%7s: EDM %.0fns (paper %.0f)  CXL %.0fns (paper %.0f)  RDMA %.0fns (paper %.0f)",
			r.Label, r.EDMNanos, r.PaperEDM, r.CXLNanos, r.PaperCXL, r.RDMANanos, r.PaperRDMA)
		// More remote => slower, monotonically.
		if r.EDMNanos < prevEDM {
			t.Errorf("%s: EDM latency fell as remote fraction grew", r.Label)
		}
		prevEDM = r.EDMNanos
		// Ordering per the paper: CXL < EDM < RDMA, with EDM within ~1.6x
		// of CXL and far below RDMA.
		if !(r.CXLNanos <= r.EDMNanos && r.EDMNanos < r.RDMANanos) {
			t.Errorf("%s: ordering violated: CXL %.0f, EDM %.0f, RDMA %.0f",
				r.Label, r.CXLNanos, r.EDMNanos, r.RDMANanos)
		}
		if ratio := r.EDMNanos / r.CXLNanos; ratio > 1.8 {
			t.Errorf("%s: EDM/CXL %.2f > 1.8", r.Label, ratio)
		}
	}
}

func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig8a(smallFig8(), []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto string, load float64) Fig8aRow {
		for _, r := range rows {
			if r.Proto == proto && r.Load == load {
				return r
			}
		}
		t.Fatalf("missing row %s/%.1f", proto, load)
		return Fig8aRow{}
	}
	// EDM stays near unloaded at both loads.
	for _, load := range []float64{0.2, 0.8} {
		r := get("EDM", load)
		t.Logf("EDM load %.1f: reads %.2f writes %.2f", load, r.ReadsNorm, r.WritesNorm)
		if r.ReadsNorm > 1.8 || r.WritesNorm > 1.8 {
			t.Errorf("EDM at load %.1f: reads %.2f writes %.2f", load, r.ReadsNorm, r.WritesNorm)
		}
	}
	// Fastpass is far worse at high load and grows with load.
	fp2, fp8 := get("Fastpass", 0.2), get("Fastpass", 0.8)
	if fp8.WritesNorm < 2*get("EDM", 0.8).WritesNorm {
		t.Errorf("Fastpass at 0.8 (%.2f) not clearly above EDM", fp8.WritesNorm)
	}
	if fp8.WritesNorm <= fp2.WritesNorm {
		t.Errorf("Fastpass did not degrade with load: %.2f -> %.2f", fp2.WritesNorm, fp8.WritesNorm)
	}
}

func TestFig8bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Heavy-tailed MCT is scale-sensitive: with few nodes the in-order
	// pair FIFOs (§3.1.1 property 5) serialize small ops behind huge ones
	// far more often than at the paper's 144 nodes. Use 64 nodes here;
	// cmd/edmbench runs the full scale.
	cfg := Fig8Config{Nodes: 64, Bandwidth: 100, OpsPerRun: 1500, Seed: 3}
	rows, err := Fig8b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]map[string]float64{}
	absByApp := map[string]map[string]float64{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]float64{}
			absByApp[r.App] = map[string]float64{}
		}
		byApp[r.App][r.Proto] = r.NormMCT
		absByApp[r.App][r.Proto] = r.AbsMeanNs
	}
	for app, m := range byApp {
		t.Logf("%-20s EDM %.2f  IRD %.2f  CXL %.2f  Fastpass %.2f", app, m["EDM"], m["IRD"], m["CXL"], m["Fastpass"])
		// Paper: EDM within 1.2-1.4x ideal at 144 nodes; allow headroom at
		// this reduced scale where pair-FIFO serialization is more common.
		if m["EDM"] > 8 {
			t.Errorf("%s: EDM MCT %.2f too far from ideal", app, m["EDM"])
		}
		if m["Fastpass"] < m["EDM"] {
			t.Errorf("%s: Fastpass (%.2f) beat EDM (%.2f)", app, m["Fastpass"], m["EDM"])
		}
		// EDM's ABSOLUTE mean MCT must be the lowest of all protocols.
		for proto, abs := range absByApp[app] {
			if proto != "EDM" && abs < absByApp[app]["EDM"] {
				t.Errorf("%s: %s absolute MCT %.0fns below EDM %.0fns",
					app, proto, abs, absByApp[app]["EDM"])
			}
		}
	}
}

func TestAblationChunkSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallFig8()
	cfg.OpsPerRun = 1000
	rows, err := AblationChunkSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("chunk %s: %.3f", r.Value, r.Norm)
		if r.Norm <= 0 {
			t.Errorf("chunk %s: norm %.3f", r.Value, r.Norm)
		}
	}
}

func TestAblationPolicySRPTWinsOnHeavyTail(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallFig8()
	cfg.OpsPerRun = 1500
	rows, err := AblationPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fcfs, srpt float64
	for _, r := range rows {
		t.Logf("policy %s: %.3f", r.Value, r.Norm)
		if r.Value == "FCFS" {
			fcfs = r.Norm
		} else {
			srpt = r.Norm
		}
	}
	// SRPT must not lose to FCFS on a heavy-tailed workload (§3.1.1).
	if srpt > fcfs*1.10 {
		t.Errorf("SRPT (%.3f) materially worse than FCFS (%.3f) on heavy tail", srpt, fcfs)
	}
}

func TestAblationPreemption(t *testing.T) {
	res, err := AblationPreemption(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	pre, noPre := res[0], res[1]
	t.Logf("preempting: mean %.0fns max %.0fns; frame-first: mean %.0fns max %.0fns",
		pre.MeanReadNs, pre.MaxReadNs, noPre.MeanReadNs, noPre.MaxReadNs)
	// Without preemption the RREQ waits behind 1500 B frames (480ns at
	// 25G); with preemption reads stay near the unloaded ~310ns.
	if pre.MeanReadNs >= noPre.MeanReadNs {
		t.Errorf("preemption did not help: %.0f vs %.0f", pre.MeanReadNs, noPre.MeanReadNs)
	}
	if pre.MaxReadNs > 600 {
		t.Errorf("preempting max read %.0fns too high", pre.MaxReadNs)
	}
}

func TestIncast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Incast(smallFig8(), 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	var edmMean float64
	for _, r := range res {
		t.Logf("incast %-6s mean %.2f p99 %.2f", r.Proto, r.MeanNorm, r.P99Norm)
		if r.Proto == "EDM" {
			edmMean = r.MeanNorm
		}
	}
	for _, r := range res {
		if r.Proto != "EDM" && r.MeanNorm < edmMean*0.9 {
			t.Errorf("incast: %s (%.2f) beat EDM (%.2f)", r.Proto, r.MeanNorm, edmMean)
		}
	}
}

func TestWirePerOpSanity(t *testing.T) {
	// Read-heavy: bottleneck is the 1 KB response direction.
	e := wirePerOp(transport.StackEDM, 0.05)
	r := wirePerOp(transport.StackRoCE, 0.05)
	if e >= r {
		t.Errorf("EDM wire/op %.0f >= RoCE %.0f", e, r)
	}
	if e < 900 || e > 1200 {
		t.Errorf("EDM read-heavy wire/op %.0f implausible", e)
	}
}

func TestFig8TraceDeterminism(t *testing.T) {
	cfg := smallFig8()
	a, err := fig8aTrace(cfg, workload.Fixed(64), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fig8aTrace(cfg, workload.Fixed(64), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
}

func TestAblationBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallFig8()
	cfg.OpsPerRun = 1500
	rows, err := AblationBatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("batch %s: %.3f", r.Value, r.Norm)
		if r.Norm <= 0 {
			t.Errorf("batch %s: %.3f", r.Value, r.Norm)
		}
	}
}
