package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/edm"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationRow is one point of a design-choice sweep.
type AblationRow struct {
	Param string
	Value string
	Norm  float64 // mean normalized latency / MCT
}

func fig8aTrace(cfg Fig8Config, sizes workload.SizeDist, load float64) ([]workload.Op, error) {
	return workload.Generate(workload.GenConfig{
		Nodes: cfg.Nodes, Load: load, Bandwidth: cfg.Bandwidth,
		Sizes: sizes, ReadFrac: 0.5, Count: cfg.OpsPerRun, Seed: cfg.Seed,
	})
}

// AblationChunkSize sweeps the scheduler chunk size c (§3.1.3 sets the
// floor at the matching latency; §4.3 uses 256 B).
func AblationChunkSize(cfg Fig8Config) ([]AblationRow, error) {
	ops, err := fig8aTrace(cfg, workload.Hadoop(), 0.8)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, c := range []int{64, 128, 256, 512, 1024} {
		res, err := netsim.RunNormalized(&netsim.EDM{ChunkBytes: c}, cfg.netCfg(), ops)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", c, err)
		}
		rows = append(rows, AblationRow{
			Param: "chunk", Value: fmt.Sprintf("%dB", c),
			Norm: res.NormalizedSummary(nil).Mean,
		})
	}
	return rows, nil
}

// AblationNotifyCap sweeps X, the active notifications allowed per pair
// (§3.1.2: "we empirically find that the value of X=3 works best").
func AblationNotifyCap(cfg Fig8Config) ([]AblationRow, error) {
	ops, err := fig8aTrace(cfg, workload.Fixed(64), 0.8)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, x := range []int{1, 2, 3, 8} {
		res, err := netsim.RunNormalized(&netsim.EDM{X: x}, cfg.netCfg(), ops)
		if err != nil {
			return nil, fmt.Errorf("X=%d: %w", x, err)
		}
		rows = append(rows, AblationRow{
			Param: "X", Value: fmt.Sprintf("%d", x),
			Norm: res.NormalizedSummary(nil).Mean,
		})
	}
	return rows, nil
}

// AblationPolicy compares FCFS and SRPT on a heavy-tailed workload, where
// the paper argues SRPT is near-optimal (§3.1.1 property 4).
func AblationPolicy(cfg Fig8Config) ([]AblationRow, error) {
	ops, err := fig8aTrace(cfg, workload.Hadoop(), 0.8)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, p := range []sched.Policy{sched.FCFS, sched.SRPT} {
		res, err := netsim.RunNormalized(&netsim.EDM{Policy: p}, cfg.netCfg(), ops)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", p, err)
		}
		rows = append(rows, AblationRow{
			Param: "policy", Value: p.String(),
			Norm: res.NormalizedSummary(nil).Mean,
		})
	}
	return rows, nil
}

// AblationPIMIterations caps PIM iterations per matching round: 1 iteration
// is classic single-round PIM; 0 iterates to a maximal matching as EDM
// does.
func AblationPIMIterations(cfg Fig8Config) ([]AblationRow, error) {
	ops, err := fig8aTrace(cfg, workload.Fixed(64), 0.8)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, it := range []int{1, 2, 4, 0} {
		res, err := netsim.RunNormalized(&netsim.EDM{MaxIterations: it}, cfg.netCfg(), ops)
		if err != nil {
			return nil, fmt.Errorf("iters=%d: %w", it, err)
		}
		label := fmt.Sprintf("%d", it)
		if it == 0 {
			label = "maximal"
		}
		rows = append(rows, AblationRow{Param: "pim-iterations", Value: label,
			Norm: res.NormalizedSummary(nil).Mean})
	}
	return rows, nil
}

// AblationBatching compares the §3.1.2 mega-message batching on a
// small-message-heavy workload (Memcached profile) at high load.
func AblationBatching(cfg Fig8Config) ([]AblationRow, error) {
	ops, err := fig8aTrace(cfg, workload.Memcached(), 0.9)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, batch := range []int{0, 1024, 4096} {
		res, err := netsim.RunNormalized(&netsim.EDM{BatchBytes: batch}, cfg.netCfg(), ops)
		if err != nil {
			return nil, fmt.Errorf("batch=%d: %w", batch, err)
		}
		label := "off"
		if batch > 0 {
			label = fmt.Sprintf("%dB", batch)
		}
		rows = append(rows, AblationRow{Param: "batch", Value: label,
			Norm: res.NormalizedSummary(nil).Mean})
	}
	return rows, nil
}

// PreemptionResult compares memory-message latency with and without
// intra-frame preemption while a host streams MTU frames (§3.2.3 and §2.4
// limitation 3) on the block-level testbed.
type PreemptionResult struct {
	Policy       string
	MeanReadNs   float64
	MaxReadNs    float64
	FramesRx     uint64
	MemBlocksTx  uint64
	FrameBlocksT uint64
}

// AblationPreemption measures 64 B reads issued while the compute node
// concurrently transmits 1500 B frames, under the fair (preempting) mux and
// the frame-first (MAC-like, non-preempting) mux.
func AblationPreemption(reads int) ([]PreemptionResult, error) {
	if reads <= 0 {
		reads = 20
	}
	var out []PreemptionResult
	for _, pol := range []struct {
		name string
		mux  phy.MuxPolicy
	}{{"preempting (fair)", phy.PolicyFair}, {"no preemption (frame first)", phy.PolicyFrameFirst}} {
		cfg := edm.DefaultConfig(2)
		cfg.MuxPolicy = pol.mux
		f := edm.New(cfg)
		f.AttachMemory(1, zeroLatencyMemory())
		if _, err := f.Host(1).Memory().Write(0, bytes.Repeat([]byte{1}, 64)); err != nil {
			return nil, err
		}
		frame := make([]byte, 1500)
		var sum, max float64
		for i := 0; i < reads; i++ {
			// Keep the frame pipe full: enqueue a fresh MTU frame right
			// before each read.
			f.Host(0).SendFrame(frame)
			f.Host(0).SendFrame(frame)
			_, lat, err := f.ReadSync(0, 1, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("preemption %s read %d: %w", pol.name, i, err)
			}
			ns := lat.Nanoseconds()
			sum += ns
			if ns > max {
				max = ns
			}
		}
		f.Run() // drain remaining frames
		hs := f.Host(0).Stats()
		out = append(out, PreemptionResult{
			Policy:       pol.name,
			MeanReadNs:   sum / float64(reads),
			MaxReadNs:    max,
			MemBlocksTx:  hs.MemBlocksTX,
			FrameBlocksT: hs.FrameBlocksTX,
		})
	}
	return out, nil
}

// IncastResult is the bonus experiment: an N-to-1 incast of 64 B reads,
// demonstrating limitation 6 (reactive protocols queue; EDM schedules).
type IncastResult struct {
	Proto    string
	MeanNorm float64
	P99Norm  float64
}

// Incast runs an n-to-1 burst through EDM and DCTCP models.
func Incast(cfg Fig8Config, senders, opsEach int) ([]IncastResult, error) {
	if senders <= 0 {
		senders = 16
	}
	if opsEach <= 0 {
		opsEach = 50
	}
	var ops []workload.Op
	idx := 0
	for s := 1; s <= senders; s++ {
		for k := 0; k < opsEach; k++ {
			ops = append(ops, workload.Op{
				Index: idx, Src: s, Dst: 0, Size: 64, Read: false,
				Arrival: sim.Time(k) * 100 * sim.Nanosecond, // synchronized bursts
			})
			idx++
		}
	}
	var out []IncastResult
	for _, p := range []netsim.Protocol{&netsim.EDM{}, &netsim.DCTCP{}, &netsim.CXL{}} {
		res, err := netsim.RunNormalized(p, netsim.Config{
			Nodes: senders + 1, Bandwidth: cfg.Bandwidth,
			Prop: 10 * sim.Nanosecond, PMA: 19 * sim.Nanosecond, MTU: 1500,
		}, ops)
		if err != nil {
			return nil, fmt.Errorf("incast %s: %w", p.Name(), err)
		}
		s := res.NormalizedSummary(nil)
		out = append(out, IncastResult{Proto: p.Name(), MeanNorm: s.Mean, P99Norm: s.P99})
	}
	return out, nil
}
