package phy

import (
	"bytes"
	"testing"
)

// FuzzMemMsgRoundTrip checks the block-level memory-message codec is the
// identity over arbitrary headers and bodies: Encode must produce exactly
// WireBlocks blocks, and DecodeMemMsg must consume them all and reproduce
// the message — the PHY-granularity analogue of the wire codec's datagram
// round trip.
func FuzzMemMsgRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, []byte(nil))
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0, 0xff}, []byte{0xaa})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9}, bytes.Repeat([]byte{0x5c}, BlockPayloadBytes))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0}, bytes.Repeat([]byte{7}, 3*BlockPayloadBytes+5))

	f.Fuzz(func(t *testing.T, hdr, body []byte) {
		const maxBody = 1 << 16
		if len(body) > maxBody {
			body = body[:maxBody]
		}
		var m MemMsg
		copy(m.Header[:], hdr)
		m.Body = body

		blocks := m.Encode()
		if len(blocks) != m.WireBlocks() {
			t.Fatalf("Encode produced %d blocks, WireBlocks says %d", len(blocks), m.WireBlocks())
		}
		if w := MemMsgWireBlocks(len(body)); w != len(blocks) {
			t.Fatalf("MemMsgWireBlocks(%d) = %d, Encode produced %d", len(body), w, len(blocks))
		}
		got, n, err := DecodeMemMsg(blocks)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if n != len(blocks) {
			t.Fatalf("decode consumed %d of %d blocks", n, len(blocks))
		}
		if got.Header != m.Header {
			t.Fatalf("header round trip: sent %x got %x", m.Header, got.Header)
		}
		if !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("body round trip: sent %d bytes, got %d", len(m.Body), len(got.Body))
		}
	})
}
