package phy

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mkMsg(hdr byte, body []byte) MemMsg {
	var m MemMsg
	for i := range m.Header {
		m.Header[i] = hdr + byte(i)
	}
	m.Body = body
	return m
}

func TestMemMsgRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 6, 7, 8, 9, 15, 16, 63, 64, 256, 1024} {
		body := make([]byte, n)
		for i := range body {
			body[i] = byte(i*3 + 1)
		}
		in := mkMsg(0x10, body)
		blocks := in.Encode()
		if len(blocks) != in.WireBlocks() || len(blocks) != MemMsgWireBlocks(n) {
			t.Errorf("n=%d: encoded %d blocks, WireBlocks=%d", n, len(blocks), in.WireBlocks())
		}
		out, consumed, err := DecodeMemMsg(blocks)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if consumed != len(blocks) {
			t.Errorf("n=%d: consumed %d of %d", n, consumed, len(blocks))
		}
		if out.Header != in.Header || !bytes.Equal(out.Body, in.Body) {
			t.Errorf("n=%d: message mismatch (got %d body bytes, want %d)", n, len(out.Body), len(in.Body))
		}
	}
}

func TestMemMsgSingleBlock(t *testing.T) {
	// A header-only message is a single 66-bit block — versus 10 blocks for
	// a minimum Ethernet frame. This is EDM design idea D1 in miniature.
	m := mkMsg(0x42, nil)
	blocks := m.Encode()
	if len(blocks) != 1 || blocks[0].Type() != BTMemSingle {
		t.Fatalf("header-only message = %v", blocks)
	}
}

func TestMemMsgWireOverheadVsEthernet(t *testing.T) {
	// An 8 B RREQ: EDM wire cost is 3 blocks (24.75 B) vs a minimum
	// Ethernet frame of 10 blocks + 12 B IFG. Check the block counts that
	// drive the paper's Figure 6 bandwidth argument.
	if got := MemMsgWireBlocks(8); got != 3 {
		t.Errorf("8B body = %d blocks, want 3", got)
	}
	if got := MemMsgWireBlocks(64); got != 10 {
		t.Errorf("64B body = %d blocks, want 10", got)
	}
	if got := MemMsgWireBlocks(256); got != 34 {
		t.Errorf("256B body = %d blocks, want 34", got)
	}
}

func TestRxDemuxSeparatesStreams(t *testing.T) {
	var d RxDemux
	mem := mkMsg(7, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	frame := bytes.Repeat([]byte{0x5a}, 64)
	frameBlocks := FrameToBlocks(frame)

	// Interleave: frame start, two frame data blocks, then a whole memory
	// message preempting the frame, then the rest of the frame.
	var stream []Block
	stream = append(stream, frameBlocks[:3]...)
	stream = append(stream, mem.Encode()...)
	stream = append(stream, frameBlocks[3:]...)
	stream = append(stream, ControlBlock(BTNotify, []byte{0xaa}), ControlBlock(BTGrant, []byte{0xbb}))

	var gotMem []MemMsg
	var gotNotify, gotGrant int
	var fd FrameDecoder
	var gotFrames [][]byte
	for _, b := range stream {
		ev, err := d.Feed(b)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Msg != nil {
			gotMem = append(gotMem, *ev.Msg)
		}
		if ev.Notify != nil {
			gotNotify++
			if ev.Notify[0] != 0xaa {
				t.Error("notify payload corrupted")
			}
		}
		if ev.Grant != nil {
			gotGrant++
		}
		if ev.FrameBlock != nil {
			f, done, err := fd.Feed(*ev.FrameBlock)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				gotFrames = append(gotFrames, f)
			}
		}
	}
	if len(gotMem) != 1 || !bytes.Equal(gotMem[0].Body, mem.Body) {
		t.Fatalf("memory messages: %d", len(gotMem))
	}
	if gotNotify != 1 || gotGrant != 1 {
		t.Fatalf("notify=%d grant=%d", gotNotify, gotGrant)
	}
	if len(gotFrames) != 1 || !bytes.Equal(gotFrames[0], frame) {
		t.Fatalf("frames: %d", len(gotFrames))
	}
}

func TestRxDemuxErrors(t *testing.T) {
	var d RxDemux
	if _, err := d.Feed(ControlBlock(BTMemTerm, []byte{1})); !errors.Is(err, ErrMemUnexpected) {
		t.Errorf("/MT/ outside: %v", err)
	}
	d = RxDemux{}
	if _, err := d.Feed(ControlBlock(BTMemStart, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Feed(ControlBlock(BTMemStart, nil)); !errors.Is(err, ErrMemUnexpected) {
		t.Errorf("double /MS/: %v", err)
	}
	d = RxDemux{}
	_, _ = d.Feed(ControlBlock(BTMemStart, nil))
	_, _ = d.Feed(DataBlock(make([]byte, 8)))
	if _, err := d.Feed(ControlBlock(BTMemTerm, []byte{9})); !errors.Is(err, ErrMemBadTerm) {
		t.Errorf("bad term count: %v", err)
	}
	// Frames may not interrupt a memory message.
	d = RxDemux{}
	_, _ = d.Feed(ControlBlock(BTMemStart, nil))
	if _, err := d.Feed(StartBlock(nil)); !errors.Is(err, ErrMemUnexpected) {
		t.Errorf("/S/ inside memory message: %v", err)
	}
}

func TestDecodeMemMsgTruncated(t *testing.T) {
	m := mkMsg(1, make([]byte, 16))
	blocks := m.Encode()
	if _, _, err := DecodeMemMsg(blocks[:len(blocks)-1]); !errors.Is(err, ErrMemTruncated) {
		t.Errorf("truncated: %v", err)
	}
}

func TestMemMsgRoundTripProperty(t *testing.T) {
	f := func(hdr [MemHeaderBytes]byte, body []byte) bool {
		in := MemMsg{Header: hdr, Body: body}
		out, n, err := DecodeMemMsg(in.Encode())
		if err != nil || n != in.WireBlocks() {
			return false
		}
		return out.Header == in.Header && bytes.Equal(out.Body, in.Body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: wire size is minimal and monotone.
func TestMemMsgWireBlocksProperty(t *testing.T) {
	f := func(n uint16) bool {
		w := MemMsgWireBlocks(int(n))
		if n == 0 {
			return w == 1
		}
		// bracket blocks + ceil(n/8) data blocks
		want := 2 + (int(n)+7)/8
		return w == want && w >= MemMsgWireBlocks(int(n)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
