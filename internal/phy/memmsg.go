package phy

import (
	"errors"
	"fmt"
)

// MemHeaderBytes is the size of the opaque memory-message header carried in
// the /MS/ (or /MST/) control payload. Its content is defined by the edm
// package; the PHY treats it as 7 opaque bytes.
const MemHeaderBytes = ControlPayloadBytes

// MemMsg is a memory message at PHY granularity: a 7-byte header plus an
// arbitrary body. The wire encoding is
//
//	body empty:  /MST hdr/                                   (1 block)
//	otherwise:   /MS hdr/ /D/.../D/ /MT lastValid/           (2 + ceil(len/8))
//
// where the final /D/ block is zero-padded and /MT/'s first payload byte
// records how many of its 8 bytes are valid. Unlike a MAC frame, which must
// span at least 9 blocks, a memory message can be a single 66-bit block —
// this is the source of EDM's bandwidth advantage for small messages.
type MemMsg struct {
	Header [MemHeaderBytes]byte
	Body   []byte
}

// WireBlocks reports how many 66-bit blocks the message occupies on the wire.
func (m MemMsg) WireBlocks() int {
	if len(m.Body) == 0 {
		return 1
	}
	return 2 + (len(m.Body)+BlockPayloadBytes-1)/BlockPayloadBytes
}

// MemMsgWireBlocks reports the wire size in blocks of a message with an
// n-byte body, without building it.
func MemMsgWireBlocks(n int) int {
	if n == 0 {
		return 1
	}
	return 2 + (n+BlockPayloadBytes-1)/BlockPayloadBytes
}

// Encode renders the message into its block sequence.
func (m MemMsg) Encode() []Block {
	if len(m.Body) == 0 {
		return []Block{ControlBlock(BTMemSingle, m.Header[:])}
	}
	blocks := make([]Block, 0, m.WireBlocks())
	blocks = append(blocks, ControlBlock(BTMemStart, m.Header[:]))
	body := m.Body
	for len(body) >= BlockPayloadBytes {
		blocks = append(blocks, DataBlock(body[:BlockPayloadBytes]))
		body = body[BlockPayloadBytes:]
	}
	lastValid := BlockPayloadBytes
	if len(body) > 0 {
		var pad [BlockPayloadBytes]byte
		copy(pad[:], body)
		blocks = append(blocks, DataBlock(pad[:]))
		lastValid = len(body)
	}
	blocks = append(blocks, ControlBlock(BTMemTerm, []byte{byte(lastValid)}))
	return blocks
}

// Demux errors.
var (
	ErrMemTruncated  = errors.New("phy: memory message truncated")
	ErrMemBadTerm    = errors.New("phy: /MT/ with invalid trailing count")
	ErrMemUnexpected = errors.New("phy: unexpected block inside memory message")
)

// RxEvent is what the demux produces for one input block.
type RxEvent struct {
	// Msg is non-nil when a complete memory message finished on this block.
	Msg *MemMsg
	// Notify holds the payload of an /N/ block, Grant of a /G/ block.
	Notify, Grant *[MemHeaderBytes]byte
	// FrameBlock is non-nil when the block belongs to the standard Ethernet
	// stream and should be forwarded to the frame decoder. Per the paper,
	// consumed memory blocks are replaced by idle blocks before the standard
	// decoder; callers that need that behaviour can substitute IdleBlock()
	// whenever FrameBlock is nil.
	FrameBlock *Block
}

// RxDemux is EDM's receive-side splitter (§3.2.1): it sits between the
// descrambler and the standard decoder, extracts /M*/, /N/ and /G/ blocks,
// and passes everything else through to the Ethernet stack. Data blocks are
// interpreted contextually: inside an /MS/../MT/ bracket they are memory
// data (/MD/); outside, they belong to the preempted Ethernet frame.
type RxDemux struct {
	inMsg bool
	hdr   [MemHeaderBytes]byte
	body  []byte
}

// InMessage reports whether the demux is mid-memory-message.
func (d *RxDemux) InMessage() bool { return d.inMsg }

// Feed consumes one block.
func (d *RxDemux) Feed(b Block) (RxEvent, error) {
	if b.IsData() {
		if d.inMsg {
			d.body = append(d.body, b.Payload[:]...)
			return RxEvent{}, nil
		}
		return RxEvent{FrameBlock: &b}, nil
	}
	switch bt := b.Type(); bt {
	case BTMemStart:
		if d.inMsg {
			return RxEvent{}, fmt.Errorf("%w: /MS/ inside message", ErrMemUnexpected)
		}
		d.inMsg = true
		d.hdr = b.ControlPayload()
		d.body = d.body[:0]
		return RxEvent{}, nil
	case BTMemTerm:
		if !d.inMsg {
			return RxEvent{}, fmt.Errorf("%w: /MT/ outside message", ErrMemUnexpected)
		}
		p := b.ControlPayload()
		valid := int(p[0])
		if valid < 1 || valid > BlockPayloadBytes || len(d.body) == 0 {
			return RxEvent{}, ErrMemBadTerm
		}
		d.inMsg = false
		body := make([]byte, len(d.body)-(BlockPayloadBytes-valid))
		copy(body, d.body)
		return RxEvent{Msg: &MemMsg{Header: d.hdr, Body: body}}, nil
	case BTMemSingle:
		if d.inMsg {
			return RxEvent{}, fmt.Errorf("%w: /MST/ inside message", ErrMemUnexpected)
		}
		hdr := b.ControlPayload()
		return RxEvent{Msg: &MemMsg{Header: hdr}}, nil
	case BTNotify:
		p := b.ControlPayload()
		return RxEvent{Notify: &p}, nil
	case BTGrant:
		p := b.ControlPayload()
		return RxEvent{Grant: &p}, nil
	default:
		if d.inMsg {
			// A standard control block may not interrupt a memory message:
			// the TX mux only preempts Ethernet frames with memory blocks,
			// never the reverse.
			return RxEvent{}, fmt.Errorf("%w: %v", ErrMemUnexpected, b)
		}
		return RxEvent{FrameBlock: &b}, nil
	}
}

// DecodeMemMsg decodes one complete memory message from the front of blocks
// and reports how many blocks it consumed.
func DecodeMemMsg(blocks []Block) (MemMsg, int, error) {
	var d RxDemux
	for i, b := range blocks {
		ev, err := d.Feed(b)
		if err != nil {
			return MemMsg{}, i, err
		}
		if ev.Msg != nil {
			return *ev.Msg, i + 1, nil
		}
		if ev.FrameBlock != nil {
			return MemMsg{}, i, fmt.Errorf("%w: %v", ErrMemUnexpected, b)
		}
	}
	return MemMsg{}, len(blocks), ErrMemTruncated
}
