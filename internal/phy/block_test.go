package phy

import (
	"testing"
	"testing/quick"
)

func TestBlockConstructors(t *testing.T) {
	d := DataBlock([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if !d.IsData() || d.IsControl() || d.IsIdle() || d.IsMemory() {
		t.Fatal("data block misclassified")
	}
	s := StartBlock([]byte{0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0xd5})
	if !s.IsControl() || s.Type() != BTStart {
		t.Fatal("start block misclassified")
	}
	e := IdleBlock()
	if !e.IsIdle() {
		t.Fatal("idle block misclassified")
	}
	for _, bt := range []BlockType{BTMemStart, BTMemTerm, BTMemSingle, BTNotify, BTGrant} {
		b := ControlBlock(bt, []byte{0xaa})
		if !b.IsMemory() {
			t.Errorf("%v not classified as memory", b)
		}
		if IsStandardType(bt) {
			t.Errorf("%#x classified standard", bt)
		}
	}
}

func TestEDMTypesAreUnusedCodePoints(t *testing.T) {
	std := map[BlockType]bool{BTIdle: true, BTStart: true}
	for i := 0; i < 8; i++ {
		std[TermType(i)] = true
	}
	for _, bt := range []BlockType{BTMemStart, BTMemTerm, BTMemSingle, BTNotify, BTGrant} {
		if std[bt] {
			t.Errorf("EDM type %#x collides with a standard type", bt)
		}
	}
	// All five EDM types must be distinct.
	seen := map[BlockType]bool{}
	for _, bt := range []BlockType{BTMemStart, BTMemTerm, BTMemSingle, BTNotify, BTGrant} {
		if seen[bt] {
			t.Errorf("duplicate EDM type %#x", bt)
		}
		seen[bt] = true
	}
}

func TestTermTypeRoundTrip(t *testing.T) {
	for n := 0; n <= 7; n++ {
		bt := TermType(n)
		got, ok := TermBytes(bt)
		if !ok || got != n {
			t.Errorf("TermBytes(TermType(%d)) = %d,%v", n, got, ok)
		}
	}
	if _, ok := TermBytes(BTStart); ok {
		t.Error("BTStart classified as terminate")
	}
}

func TestTermTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TermType(8) did not panic")
		}
	}()
	TermType(8)
}

func TestControlPayloadTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("8-byte control payload did not panic")
		}
	}()
	ControlBlock(BTIdle, make([]byte, 8))
}

func TestBlockString(t *testing.T) {
	cases := []struct {
		b    Block
		want string
	}{
		{IdleBlock(), "/E/"},
		{StartBlock(nil), "/S/"},
		{ControlBlock(BTTerm3, nil), "/T3/"},
		{ControlBlock(BTMemStart, nil), "/MS/"},
		{ControlBlock(BTMemTerm, nil), "/MT/"},
		{ControlBlock(BTMemSingle, nil), "/MST/"},
		{ControlBlock(BTNotify, nil), "/N/"},
		{ControlBlock(BTGrant, nil), "/G/"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestScramblerRoundTrip(t *testing.T) {
	s := NewScrambler(^uint64(0))
	d := NewDescrambler(^uint64(0))
	blocks := []Block{
		DataBlock([]byte{0, 0, 0, 0, 0, 0, 0, 0}),
		DataBlock([]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		IdleBlock(),
		ControlBlock(BTMemStart, []byte{9, 8, 7}),
	}
	for _, in := range blocks {
		sc := s.ScrambleBlock(in)
		out := d.DescrambleBlock(sc)
		if out != in {
			t.Fatalf("round trip failed: in=%v out=%v", in, out)
		}
	}
}

func TestScramblerWhitens(t *testing.T) {
	// 8 idle blocks (all-zero payloads) must not come out all-zero: the
	// scrambler exists precisely to give the line transitions during IFG.
	s := NewScrambler(^uint64(0))
	nonZero := false
	for i := 0; i < 8; i++ {
		b := s.ScrambleBlock(IdleBlock())
		for _, x := range b.Payload[1:] { // skip type byte
			if x != 0 {
				nonZero = true
			}
		}
	}
	if !nonZero {
		t.Fatal("scrambler produced all-zero output for idle stream")
	}
}

func TestDescramblerSelfSynchronizes(t *testing.T) {
	// Seed the descrambler differently from the scrambler: after 58 bits
	// (8 bytes covers it) the output must match the plaintext again.
	s := NewScrambler(^uint64(0))
	d := NewDescrambler(0x123456789)
	var in []Block
	for i := 0; i < 4; i++ {
		in = append(in, DataBlock([]byte{byte(i), 1, 2, 3, 4, 5, 6, 7}))
	}
	var out []Block
	for _, b := range in {
		out = append(out, d.DescrambleBlock(s.ScrambleBlock(b)))
	}
	// First block may be corrupted; all subsequent blocks must be exact.
	for i := 1; i < len(in); i++ {
		if out[i] != in[i] {
			t.Fatalf("block %d not recovered after sync window", i)
		}
	}
}

func TestScramblerProperty(t *testing.T) {
	f := func(payloads [][8]byte, seed uint64) bool {
		s := NewScrambler(seed)
		d := NewDescrambler(seed)
		for _, p := range payloads {
			in := DataBlock(p[:])
			if d.DescrambleBlock(s.ScrambleBlock(in)) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
