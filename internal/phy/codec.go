package phy

import (
	"errors"
	"fmt"
)

// Standard preamble bytes carried in the /S/ block. On XGMII the start
// character replaces the first preamble byte, so seven remain (six 0x55
// plus the 0xd5 start-frame delimiter).
var preamble7 = []byte{0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0xd5}

// FrameToBlocks encodes one MAC frame into its PCS block sequence:
// an /S/ block (carrying the trailing preamble), /D/ blocks with the frame
// body, and a /Tn/ block carrying the final 0..7 bytes. A 64 B minimum
// frame therefore occupies 10 blocks.
func FrameToBlocks(frame []byte) []Block {
	blocks := make([]Block, 0, len(frame)/BlockPayloadBytes+2)
	blocks = append(blocks, StartBlock(preamble7))
	i := 0
	for ; i+BlockPayloadBytes <= len(frame); i += BlockPayloadBytes {
		blocks = append(blocks, DataBlock(frame[i:i+BlockPayloadBytes]))
	}
	rest := frame[i:]
	blocks = append(blocks, ControlBlock(TermType(len(rest)), rest))
	return blocks
}

// FrameBlockCount reports how many PCS blocks FrameToBlocks produces for an
// n-byte frame, without allocating.
func FrameBlockCount(n int) int { return 2 + n/BlockPayloadBytes }

// Decode errors.
var (
	ErrNoFrame       = errors.New("phy: block stream held no frame")
	ErrTruncated     = errors.New("phy: frame truncated (missing /T/)")
	ErrUnexpected    = errors.New("phy: unexpected block in frame body")
	ErrStrayData     = errors.New("phy: data block outside a frame")
	ErrBadStart      = errors.New("phy: frame did not begin with /S/")
	ErrMemoryInFrame = errors.New("phy: memory block inside a frame body (demux it first)")
)

// BlocksToFrame decodes exactly one frame from blocks, skipping leading
// idles, and returns the frame bytes plus the number of blocks consumed.
func BlocksToFrame(blocks []Block) (frame []byte, consumed int, err error) {
	i := 0
	for i < len(blocks) && blocks[i].IsControl() && blocks[i].Type() == BTIdle {
		i++
	}
	if i == len(blocks) {
		return nil, i, ErrNoFrame
	}
	if !blocks[i].IsControl() || blocks[i].Type() != BTStart {
		return nil, i, ErrBadStart
	}
	i++
	for i < len(blocks) {
		b := blocks[i]
		if b.IsData() {
			frame = append(frame, b.Payload[:]...)
			i++
			continue
		}
		bt := b.Type()
		if n, ok := TermBytes(bt); ok {
			p := b.ControlPayload()
			frame = append(frame, p[:n]...)
			return frame, i + 1, nil
		}
		if IsEDMType(bt) {
			return nil, i, ErrMemoryInFrame
		}
		return nil, i, fmt.Errorf("%w: %v", ErrUnexpected, b)
	}
	return nil, i, ErrTruncated
}

// FrameDecoder is the streaming form of BlocksToFrame: feed blocks one at a
// time (as a receiver would each cycle) and collect completed frames. It is
// the decoder that sits above EDM's RX demux, so it only ever sees standard
// blocks; memory blocks are an error here.
type FrameDecoder struct {
	inFrame bool
	buf     []byte
}

// Feed consumes one block. It returns a completed frame (done=true) when the
// terminate block arrives.
func (d *FrameDecoder) Feed(b Block) (frame []byte, done bool, err error) {
	if b.IsData() {
		if !d.inFrame {
			return nil, false, ErrStrayData
		}
		d.buf = append(d.buf, b.Payload[:]...)
		return nil, false, nil
	}
	switch bt := b.Type(); {
	case bt == BTIdle:
		return nil, false, nil
	case bt == BTStart:
		if d.inFrame {
			return nil, false, fmt.Errorf("%w: /S/ inside frame", ErrUnexpected)
		}
		d.inFrame = true
		d.buf = d.buf[:0]
		return nil, false, nil
	case IsEDMType(bt):
		return nil, false, ErrMemoryInFrame
	default:
		n, ok := TermBytes(bt)
		if !ok {
			return nil, false, fmt.Errorf("%w: %v", ErrUnexpected, b)
		}
		if !d.inFrame {
			return nil, false, fmt.Errorf("%w: /T/ outside frame", ErrUnexpected)
		}
		p := b.ControlPayload()
		d.buf = append(d.buf, p[:n]...)
		out := make([]byte, len(d.buf))
		copy(out, d.buf)
		d.inFrame = false
		return out, true, nil
	}
}

// InFrame reports whether the decoder is mid-frame (a /T/ has not yet been
// seen for the current /S/).
func (d *FrameDecoder) InFrame() bool { return d.inFrame }
