// Package phy models the Physical Coding Sublayer (PCS) of 10/25/40/100 GbE.
//
// The PCS transfers data in 66-bit blocks: a 2-bit sync header followed by a
// 64-bit payload. EDM's entire remote-memory protocol lives at this
// granularity, below the MAC. The package provides:
//
//   - the standard block vocabulary (/S/, /D/, /T0/../T7/, /E/),
//   - EDM's extended vocabulary (/MS/, /MD/, /MT/, /MST/, /N/, /G/),
//   - a frame encoder/decoder (MAC frame bytes <-> block sequence, with
//     inter-frame-gap idle insertion), and
//   - the x^58 self-synchronizing scrambler used on the line side.
//
// One block serializes in one PCS clock cycle: 2.56 ns at 25 GbE.
package phy

import "fmt"

// SyncHeader is the 2-bit prefix that distinguishes data from control blocks.
type SyncHeader uint8

const (
	// SyncData (binary 10) prefixes a block whose 64-bit payload is all data.
	SyncData SyncHeader = 0b10
	// SyncControl (binary 01) prefixes a block whose payload starts with an
	// 8-bit block-type field followed by 56 bits of type-specific content.
	SyncControl SyncHeader = 0b01
)

// BlockType identifies a control block. Standard values come from IEEE
// 802.3 clause 49; EDM values are chosen from the unused code space as the
// paper prescribes (§3.2: "we assign them unique unused block-type values").
type BlockType uint8

const (
	// Standard Ethernet control block types.
	BTIdle  BlockType = 0x1e // /E/: all-idle block, forms the inter-frame gap
	BTStart BlockType = 0x78 // /S/: start of MAC frame
	BTTerm0 BlockType = 0x87 // /T0/: terminate with 0 trailing data bytes
	BTTerm1 BlockType = 0x99
	BTTerm2 BlockType = 0xaa
	BTTerm3 BlockType = 0xb4
	BTTerm4 BlockType = 0xcc
	BTTerm5 BlockType = 0xd2
	BTTerm6 BlockType = 0xe1
	BTTerm7 BlockType = 0xff

	// EDM control block types (unused code points).
	BTMemStart  BlockType = 0x3c // /MS/: start of a memory message
	BTMemTerm   BlockType = 0x69 // /MT/: end of a memory message
	BTMemSingle BlockType = 0x5a // /MST/: complete single-block memory message
	BTNotify    BlockType = 0xc3 // /N/: demand notification to the scheduler
	BTGrant     BlockType = 0x96 // /G/: grant from the scheduler
)

var termTypes = [8]BlockType{BTTerm0, BTTerm1, BTTerm2, BTTerm3, BTTerm4, BTTerm5, BTTerm6, BTTerm7}

// TermType returns the terminate block type carrying n trailing data bytes
// (0 <= n <= 7).
func TermType(n int) BlockType {
	if n < 0 || n > 7 {
		panic(fmt.Sprintf("phy: invalid terminate byte count %d", n))
	}
	return termTypes[n]
}

// TermBytes reports how many trailing data bytes a terminate type carries,
// and whether bt is a terminate type at all.
func TermBytes(bt BlockType) (int, bool) {
	for i, t := range termTypes {
		if t == bt {
			return i, true
		}
	}
	return 0, false
}

// IsEDMType reports whether bt belongs to EDM's extended vocabulary.
func IsEDMType(bt BlockType) bool {
	switch bt {
	case BTMemStart, BTMemTerm, BTMemSingle, BTNotify, BTGrant:
		return true
	}
	return false
}

// IsStandardType reports whether bt is a standard Ethernet control type.
func IsStandardType(bt BlockType) bool {
	if bt == BTIdle || bt == BTStart {
		return true
	}
	_, ok := TermBytes(bt)
	return ok
}

// Block is one 66-bit PCS block.
type Block struct {
	Sync    SyncHeader
	Payload [8]byte // control blocks: Payload[0] is the BlockType
}

// Type returns the control block type. Calling Type on a data block panics;
// use IsControl first.
func (b Block) Type() BlockType {
	if b.Sync != SyncControl {
		panic("phy: Type called on data block")
	}
	return BlockType(b.Payload[0])
}

// IsControl reports whether b is a control block.
func (b Block) IsControl() bool { return b.Sync == SyncControl }

// IsData reports whether b is a data block.
func (b Block) IsData() bool { return b.Sync == SyncData }

// IsIdle reports whether b is an /E/ idle block.
func (b Block) IsIdle() bool { return b.IsControl() && b.Type() == BTIdle }

// IsMemory reports whether b is one of EDM's control blocks.
func (b Block) IsMemory() bool { return b.IsControl() && IsEDMType(b.Type()) }

// ControlPayload returns the 7 type-specific bytes of a control block.
func (b Block) ControlPayload() [7]byte {
	if !b.IsControl() {
		panic("phy: ControlPayload on data block")
	}
	var p [7]byte
	copy(p[:], b.Payload[1:])
	return p
}

// String renders a compact human-readable form, useful in tests and traces.
func (b Block) String() string {
	if b.IsData() {
		return fmt.Sprintf("/D %x/", b.Payload)
	}
	switch bt := b.Type(); bt {
	case BTIdle:
		return "/E/"
	case BTStart:
		return "/S/"
	case BTMemStart:
		return "/MS/"
	case BTMemTerm:
		return "/MT/"
	case BTMemSingle:
		return "/MST/"
	case BTNotify:
		return "/N/"
	case BTGrant:
		return "/G/"
	default:
		if n, ok := TermBytes(bt); ok {
			return fmt.Sprintf("/T%d/", n)
		}
		return fmt.Sprintf("/C%#02x/", uint8(bt))
	}
}

// DataBlock builds a /D/ block from exactly 8 bytes.
func DataBlock(p []byte) Block {
	if len(p) != 8 {
		panic(fmt.Sprintf("phy: data block needs 8 bytes, got %d", len(p)))
	}
	var b Block
	b.Sync = SyncData
	copy(b.Payload[:], p)
	return b
}

// ControlBlock builds a control block of type bt with up to 7 payload bytes.
func ControlBlock(bt BlockType, payload []byte) Block {
	if len(payload) > 7 {
		panic(fmt.Sprintf("phy: control payload too long: %d", len(payload)))
	}
	var b Block
	b.Sync = SyncControl
	b.Payload[0] = byte(bt)
	copy(b.Payload[1:], payload)
	return b
}

// IdleBlock returns a fresh /E/ block (payload all zero, the standard idle
// pattern).
func IdleBlock() Block { return ControlBlock(BTIdle, nil) }

// StartBlock returns an /S/ block carrying the first 7 bytes of the frame.
func StartBlock(first7 []byte) Block { return ControlBlock(BTStart, first7) }

// BlockBits is the size of one block on the wire.
const BlockBits = 66

// BlockPayloadBytes is the data capacity of a /D/ block.
const BlockPayloadBytes = 8

// ControlPayloadBytes is the data capacity of a control block after the
// type field.
const ControlPayloadBytes = 7
