package phy

import (
	"bytes"
	"testing"
)

// drive pushes all frame blocks through the mux (respecting back-pressure)
// alongside preloaded memory blocks, and returns the emitted sequence with
// sources.
func drive(m *TxMux, frameBlocks []Block, cycles int) ([]Block, []Source) {
	var out []Block
	var srcs []Source
	next := 0
	for c := 0; c < cycles; c++ {
		for next < len(frameBlocks) && m.EnqueueFrame(frameBlocks[next]) {
			next++
		}
		b, s := m.Next()
		out = append(out, b)
		srcs = append(srcs, s)
	}
	return out, srcs
}

func TestTxMuxIdleWhenEmpty(t *testing.T) {
	m := NewTxMux(PolicyFair)
	b, s := m.Next()
	if s != SrcIdle || !b.IsIdle() {
		t.Fatalf("empty mux emitted %v/%v", b, s)
	}
}

func TestTxMuxPreemptsFrame(t *testing.T) {
	// A memory message arriving mid-frame must not wait for the frame end.
	m := NewTxMux(PolicyFair)
	frame := FrameToBlocks(bytes.Repeat([]byte{1}, 1500)) // 189 blocks
	mem := mkMsg(3, []byte{9, 9, 9, 9, 9, 9, 9, 9}).Encode()

	// Emit a few frame blocks first, then the memory message arrives.
	for i := 0; i < 4; i++ {
		m.EnqueueFrame(frame[i])
	}
	for i := 0; i < 3; i++ {
		m.Next()
	}
	m.EnqueueMemory(mem...)
	// With fair policy the memory message must complete within
	// 2*len(mem) cycles of arrival, far before the 189-block frame would
	// have ended.
	deadline := 2*len(mem) + 2
	done := false
	feed := 4
	for c := 0; c < deadline; c++ {
		if feed < len(frame) && m.EnqueueFrame(frame[feed]) {
			feed++
		}
		b, s := m.Next()
		if s == SrcMemory && b.IsControl() && b.Type() == BTMemTerm {
			done = true
			break
		}
	}
	if !done {
		t.Fatal("memory message did not preempt the frame in time")
	}
}

func TestTxMuxNoPreemptionWithFrameFirst(t *testing.T) {
	// PolicyFrameFirst reproduces the MAC behaviour: memory waits for the
	// entire frame.
	m := NewTxMux(PolicyFrameFirst)
	frame := FrameToBlocks(bytes.Repeat([]byte{1}, 256))
	mem := mkMsg(3, nil).Encode()
	m.EnqueueMemory(mem...)
	_, srcs := drive(m, frame, len(frame)+len(mem))
	// Memory must appear only after every frame block.
	sawMem := false
	framesAfterMem := 0
	for _, s := range srcs {
		if s == SrcMemory {
			sawMem = true
		}
		if sawMem && s == SrcFrame {
			framesAfterMem++
		}
	}
	if !sawMem {
		t.Fatal("memory never emitted")
	}
	if framesAfterMem > 0 {
		t.Fatalf("%d frame blocks after memory under FrameFirst", framesAfterMem)
	}
}

func TestTxMuxMemoryMessageAtomic(t *testing.T) {
	// Once /MS/ is emitted, no frame block may appear before /MT/.
	m := NewTxMux(PolicyFair)
	frame := FrameToBlocks(bytes.Repeat([]byte{1}, 512))
	mem := mkMsg(3, make([]byte, 64)).Encode()
	m.EnqueueMemory(mem...)
	out, srcs := drive(m, frame, len(frame)+len(mem)+8)
	inMsg := false
	for i, b := range out {
		if srcs[i] == SrcMemory && b.IsControl() {
			switch b.Type() {
			case BTMemStart:
				inMsg = true
			case BTMemTerm:
				inMsg = false
			}
			continue
		}
		if inMsg && srcs[i] != SrcMemory {
			t.Fatalf("block %d (%v) interleaved inside memory message", i, out[i])
		}
	}
}

func TestTxMuxFairAlternates(t *testing.T) {
	// With both queues saturated with single-block items, fair policy
	// should give each stream about half the cycles.
	m := NewTxMux(PolicyFair)
	for i := 0; i < 50; i++ {
		m.EnqueueMemory(mkMsg(1, nil).Encode()...) // /MST/ singles
	}
	frame := FrameToBlocks(bytes.Repeat([]byte{1}, 792)) // 101 blocks
	_, srcs := drive(m, frame, 100)
	var memCount, frameCount int
	for _, s := range srcs {
		switch s {
		case SrcMemory:
			memCount++
		case SrcFrame:
			frameCount++
		}
	}
	if memCount < 45 || frameCount < 45 {
		t.Fatalf("fair mux skewed: mem=%d frame=%d", memCount, frameCount)
	}
}

func TestTxMuxRepurposesIFG(t *testing.T) {
	// With no frame traffic, memory blocks flow back-to-back in what would
	// otherwise be idle (IFG) cycles: zero idles while memory is queued.
	m := NewTxMux(PolicyFair)
	for i := 0; i < 10; i++ {
		m.EnqueueMemory(mkMsg(byte(i), nil).Encode()...)
	}
	for i := 0; i < 10; i++ {
		_, s := m.Next()
		if s != SrcMemory {
			t.Fatalf("cycle %d: %v, want memory", i, s)
		}
	}
	if m.Emitted(SrcIdle) != 0 {
		t.Fatal("idles emitted while memory queued")
	}
}

func TestTxMuxBackPressure(t *testing.T) {
	m := NewTxMux(PolicyFair)
	b := IdleBlock()
	for i := 0; i < DefaultFrameBufferBlocks; i++ {
		if !m.EnqueueFrame(b) {
			t.Fatalf("enqueue %d rejected before buffer full", i)
		}
	}
	if m.EnqueueFrame(b) {
		t.Fatal("enqueue accepted beyond buffer bound")
	}
	m.Next()
	if !m.EnqueueFrame(b) {
		t.Fatal("enqueue rejected after drain")
	}
}

func TestRxReorderBuffer(t *testing.T) {
	var r RxReorderBuffer
	frame := bytes.Repeat([]byte{0x77}, 128)
	blocks := FrameToBlocks(frame)
	var released []Block
	// Feed with idle gaps simulating preemption holes.
	for i, b := range blocks {
		if i%3 == 0 {
			if out, done := r.Feed(IdleBlock()); done || (i == 0 && out != nil) {
				t.Fatal("idle between frames released blocks")
			}
		}
		out, done := r.Feed(b)
		if done {
			released = out
		}
	}
	if released == nil {
		t.Fatal("frame never released")
	}
	got, _, err := BlocksToFrame(released)
	if err != nil || !bytes.Equal(got, frame) {
		t.Fatalf("reordered frame corrupt: %v", err)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after release", r.Pending())
	}
}

func TestMuxDemuxEndToEnd(t *testing.T) {
	// Full path: TX mux interleaves a frame and memory messages; the RX
	// demux plus reorder buffer plus frame decoder must recover both
	// streams intact. This is the paper's Figure 3 data path in software.
	tx := NewTxMux(PolicyFair)
	frame := bytes.Repeat([]byte{0xe5}, 700)
	frameBlocks := FrameToBlocks(frame)
	var msgs []MemMsg
	for i := 0; i < 5; i++ {
		msgs = append(msgs, mkMsg(byte(i), bytes.Repeat([]byte{byte(i + 1)}, 24)))
	}
	for _, mm := range msgs {
		tx.EnqueueMemory(mm.Encode()...)
	}

	var rx RxDemux
	var rb RxReorderBuffer
	var fd FrameDecoder
	var gotMsgs []MemMsg
	var gotFrame []byte

	next := 0
	cycles := len(frameBlocks) + 5*msgs[0].WireBlocks() + 32
	for c := 0; c < cycles; c++ {
		for next < len(frameBlocks) && tx.EnqueueFrame(frameBlocks[next]) {
			next++
		}
		b, _ := tx.Next()
		ev, err := rx.Feed(b)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Msg != nil {
			gotMsgs = append(gotMsgs, *ev.Msg)
		}
		fb := IdleBlock()
		if ev.FrameBlock != nil {
			fb = *ev.FrameBlock
		}
		if rel, done := rb.Feed(fb); done {
			for _, rbk := range rel {
				f, fdone, err := fd.Feed(rbk)
				if err != nil {
					t.Fatal(err)
				}
				if fdone {
					gotFrame = f
				}
			}
		}
	}
	if len(gotMsgs) != len(msgs) {
		t.Fatalf("got %d memory messages, want %d", len(gotMsgs), len(msgs))
	}
	for i, mm := range gotMsgs {
		if !bytes.Equal(mm.Body, msgs[i].Body) {
			t.Errorf("message %d body mismatch", i)
		}
	}
	if !bytes.Equal(gotFrame, frame) {
		t.Fatal("frame corrupted through mux/demux path")
	}
}

func TestTxMuxMemoryFirstStarvesFrames(t *testing.T) {
	// Strict memory priority: while memory blocks are queued, no frame
	// block is emitted.
	m := NewTxMux(PolicyMemoryFirst)
	for i := 0; i < 20; i++ {
		m.EnqueueMemory(mkMsg(byte(i), nil).Encode()...)
	}
	frame := FrameToBlocks(bytes.Repeat([]byte{1}, 64))
	for _, b := range frame[:DefaultFrameBufferBlocks] {
		m.EnqueueFrame(b)
	}
	for i := 0; i < 20; i++ {
		_, s := m.Next()
		if s != SrcMemory {
			t.Fatalf("emission %d was %v under MemoryFirst", i, s)
		}
	}
	if _, s := m.Next(); s != SrcFrame {
		t.Fatalf("frames not served after memory drained: %v", s)
	}
}

func TestTxMuxEmittedAccounting(t *testing.T) {
	m := NewTxMux(PolicyFair)
	m.EnqueueMemory(mkMsg(1, nil).Encode()...)
	m.Next() // memory
	m.Next() // idle
	if m.Emitted(SrcMemory) != 1 || m.Emitted(SrcIdle) != 1 || m.Emitted(SrcFrame) != 0 {
		t.Fatalf("emitted counts: mem=%d idle=%d frame=%d",
			m.Emitted(SrcMemory), m.Emitted(SrcIdle), m.Emitted(SrcFrame))
	}
}
