package phy

// Scrambler is the x^58 + x^39 + 1 self-synchronizing scrambler of IEEE
// 802.3 clause 49. It whitens the 64-bit block payload (the 2-bit sync
// header is never scrambled) so the line has enough transitions for clock
// recovery. Because it is self-synchronizing, a Descrambler recovers the
// plaintext after at most 58 bits regardless of its initial state; EDM's
// stack sits between the encoder and the scrambler, so memory blocks are
// scrambled exactly like ordinary traffic.
type Scrambler struct {
	state uint64 // 58-bit shift register
}

// NewScrambler returns a scrambler seeded with the given state (only the low
// 58 bits are used). Hardware typically seeds with all ones.
func NewScrambler(seed uint64) *Scrambler {
	return &Scrambler{state: seed & ((1 << 58) - 1)}
}

// ScrambleBlock scrambles the payload of b in place and returns it.
func (s *Scrambler) ScrambleBlock(b Block) Block {
	for i := range b.Payload {
		b.Payload[i] = s.scrambleByte(b.Payload[i])
	}
	return b
}

func (s *Scrambler) scrambleByte(in byte) byte {
	var out byte
	for bit := 0; bit < 8; bit++ {
		d := (in >> uint(bit)) & 1
		fb := byte((s.state>>38)&1) ^ byte((s.state>>57)&1) // taps x^39, x^58
		sc := d ^ fb
		s.state = ((s.state << 1) | uint64(sc)) & ((1 << 58) - 1)
		out |= sc << uint(bit)
	}
	return out
}

// Descrambler reverses Scrambler. It is self-synchronizing: its state is the
// last 58 scrambled bits seen, so it recovers even if seeded differently.
type Descrambler struct {
	state uint64
}

// NewDescrambler returns a descrambler seeded with the given state.
func NewDescrambler(seed uint64) *Descrambler {
	return &Descrambler{state: seed & ((1 << 58) - 1)}
}

// DescrambleBlock descrambles the payload of b in place and returns it.
func (d *Descrambler) DescrambleBlock(b Block) Block {
	for i := range b.Payload {
		b.Payload[i] = d.descrambleByte(b.Payload[i])
	}
	return b
}

func (d *Descrambler) descrambleByte(in byte) byte {
	var out byte
	for bit := 0; bit < 8; bit++ {
		sc := (in >> uint(bit)) & 1
		fb := byte((d.state>>38)&1) ^ byte((d.state>>57)&1)
		dec := sc ^ fb
		d.state = ((d.state << 1) | uint64(sc)) & ((1 << 58) - 1)
		out |= dec << uint(bit)
	}
	return out
}
