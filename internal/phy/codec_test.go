package phy

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{64, 65, 71, 72, 100, 1500, 9000} {
		frame := make([]byte, n)
		for i := range frame {
			frame[i] = byte(i * 7)
		}
		blocks := FrameToBlocks(frame)
		if len(blocks) != FrameBlockCount(n) {
			t.Errorf("n=%d: %d blocks, want %d", n, len(blocks), FrameBlockCount(n))
		}
		got, consumed, err := BlocksToFrame(blocks)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if consumed != len(blocks) {
			t.Errorf("n=%d: consumed %d of %d", n, consumed, len(blocks))
		}
		if !bytes.Equal(got, frame) {
			t.Errorf("n=%d: frame mismatch", n)
		}
	}
}

func TestMinFrameBlockCount(t *testing.T) {
	// A 64 B minimum Ethernet frame spans /S/ + 8x/D/ + /T0/ = 10 blocks.
	// The MAC layer cannot go below this; an EDM memory message can be a
	// single block (see memmsg tests) — the heart of limitation 1 vs D1.
	if got := FrameBlockCount(64); got != 10 {
		t.Fatalf("FrameBlockCount(64) = %d, want 10", got)
	}
}

func TestBlocksToFrameSkipsIdles(t *testing.T) {
	frame := make([]byte, 64)
	blocks := append([]Block{IdleBlock(), IdleBlock()}, FrameToBlocks(frame)...)
	got, consumed, err := BlocksToFrame(blocks)
	if err != nil || !bytes.Equal(got, frame) {
		t.Fatalf("decode with leading idles: %v", err)
	}
	if consumed != len(blocks) {
		t.Fatalf("consumed %d, want %d", consumed, len(blocks))
	}
}

func TestBlocksToFrameErrors(t *testing.T) {
	if _, _, err := BlocksToFrame([]Block{IdleBlock()}); !errors.Is(err, ErrNoFrame) {
		t.Errorf("idle-only: %v", err)
	}
	if _, _, err := BlocksToFrame([]Block{DataBlock(make([]byte, 8))}); !errors.Is(err, ErrBadStart) {
		t.Errorf("no /S/: %v", err)
	}
	trunc := FrameToBlocks(make([]byte, 64))[:5]
	if _, _, err := BlocksToFrame(trunc); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	memInside := []Block{StartBlock(nil), ControlBlock(BTMemSingle, nil)}
	if _, _, err := BlocksToFrame(memInside); !errors.Is(err, ErrMemoryInFrame) {
		t.Errorf("memory inside: %v", err)
	}
}

func TestFrameDecoderStreaming(t *testing.T) {
	var d FrameDecoder
	f1 := bytes.Repeat([]byte{0xab}, 64)
	f2 := bytes.Repeat([]byte{0xcd}, 127)
	var got [][]byte
	stream := append(FrameToBlocks(f1), IdleBlock(), IdleBlock())
	stream = append(stream, FrameToBlocks(f2)...)
	for _, b := range stream {
		frame, done, err := d.Feed(b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			got = append(got, frame)
		}
	}
	if len(got) != 2 || !bytes.Equal(got[0], f1) || !bytes.Equal(got[1], f2) {
		t.Fatalf("streaming decode failed: %d frames", len(got))
	}
	if d.InFrame() {
		t.Error("decoder left mid-frame")
	}
}

func TestFrameDecoderErrors(t *testing.T) {
	var d FrameDecoder
	if _, _, err := d.Feed(DataBlock(make([]byte, 8))); !errors.Is(err, ErrStrayData) {
		t.Errorf("stray data: %v", err)
	}
	if _, _, err := d.Feed(ControlBlock(BTTerm0, nil)); err == nil {
		t.Error("stray /T/ accepted")
	}
	if _, _, err := d.Feed(ControlBlock(BTNotify, nil)); !errors.Is(err, ErrMemoryInFrame) {
		t.Errorf("memory block: %v", err)
	}
	if _, _, err := d.Feed(StartBlock(nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Feed(StartBlock(nil)); err == nil {
		t.Error("/S/ inside frame accepted")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(body []byte) bool {
		frame := append(make([]byte, 0, len(body)+64), bytes.Repeat([]byte{0}, 64)...)
		frame = append(frame, body...)
		got, _, err := BlocksToFrame(FrameToBlocks(frame))
		return err == nil && bytes.Equal(got, frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
