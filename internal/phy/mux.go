package phy

// MuxPolicy selects how the TX mux arbitrates between memory blocks and
// non-memory (Ethernet frame) blocks.
type MuxPolicy int

const (
	// PolicyFair alternates between the memory and frame streams at block
	// granularity when both have data — the paper's default (§3.2.3).
	PolicyFair MuxPolicy = iota
	// PolicyMemoryFirst strictly prioritizes memory blocks.
	PolicyMemoryFirst
	// PolicyFrameFirst strictly prioritizes frame blocks; with this policy a
	// memory message waits for the whole frame, reproducing the MAC-layer
	// no-preemption behaviour of conventional Ethernet (used as an ablation
	// baseline).
	PolicyFrameFirst
)

// Source labels where an emitted block came from, for bandwidth accounting.
type Source int

const (
	SrcIdle Source = iota
	SrcFrame
	SrcMemory
)

// String implements fmt.Stringer for test failure readability.
func (s Source) String() string {
	switch s {
	case SrcIdle:
		return "idle"
	case SrcFrame:
		return "frame"
	case SrcMemory:
		return "memory"
	}
	return "?"
}

// DefaultFrameBufferBlocks is the TX-side non-memory buffer bound. The paper
// bounds it to 4 blocks by back-pressuring the MAC (§3.2.3).
const DefaultFrameBufferBlocks = 4

// TxMux is EDM's intra-frame preemption multiplexer. It sits at the output
// of the PCS encoder and interleaves memory blocks (/N/, /G/, /M*/) with the
// encoder's frame blocks at 66-bit granularity, so a small memory message
// never waits behind a large Ethernet frame. One invariant is enforced: a
// memory message in flight (/MS/ seen, /MT/ not yet) is never interrupted by
// frame blocks, because data blocks inside the bracket are interpreted as
// memory data by the receiver.
//
// Call Next once per PCS cycle; it emits an idle block when it has nothing
// to send (forming the inter-frame gap, which memory traffic may repurpose).
type TxMux struct {
	Policy MuxPolicy

	// FrameBufferBlocks bounds the frame queue; EnqueueFrame reports whether
	// it accepted the block so the caller can model MAC back-pressure.
	FrameBufferBlocks int

	frameQ   []Block
	memQ     []Block
	inMemMsg bool // mid /MS/../MT/: memory holds the line
	lastMem  bool // last non-idle emission was a memory block (for fairness)

	emitted map[Source]int
}

// NewTxMux returns a mux with the given policy and the default frame buffer.
func NewTxMux(policy MuxPolicy) *TxMux {
	return &TxMux{
		Policy:            policy,
		FrameBufferBlocks: DefaultFrameBufferBlocks,
		emitted:           make(map[Source]int),
	}
}

// EnqueueFrame offers one frame block. It reports false when the TX buffer
// is full, in which case the caller must retry later (MAC back-pressure).
func (m *TxMux) EnqueueFrame(b Block) bool {
	if len(m.frameQ) >= m.FrameBufferBlocks {
		return false
	}
	m.frameQ = append(m.frameQ, b)
	return true
}

// EnqueueMemory appends memory blocks (a whole encoded message, or a single
// /N/ or /G/ block). Memory queueing is not bounded here: the scheduler's
// grant mechanism already bounds outstanding memory data.
func (m *TxMux) EnqueueMemory(blocks ...Block) {
	m.memQ = append(m.memQ, blocks...)
}

// FrameBacklog reports queued frame blocks.
func (m *TxMux) FrameBacklog() int { return len(m.frameQ) }

// MemoryBacklog reports queued memory blocks.
func (m *TxMux) MemoryBacklog() int { return len(m.memQ) }

// Emitted reports how many blocks of each source have been emitted.
func (m *TxMux) Emitted(s Source) int { return m.emitted[s] }

// Next emits the block for the current cycle.
func (m *TxMux) Next() (Block, Source) {
	b, s := m.pick()
	m.emitted[s]++
	return b, s
}

func (m *TxMux) pick() (Block, Source) {
	memReady := len(m.memQ) > 0
	frameReady := len(m.frameQ) > 0
	switch {
	case !memReady && !frameReady:
		return IdleBlock(), SrcIdle
	case memReady && (!frameReady || m.chooseMemory()):
		return m.popMemory(), SrcMemory
	default:
		return m.popFrame(), SrcFrame
	}
}

// chooseMemory decides the memory-vs-frame conflict when both queues have
// blocks ready.
func (m *TxMux) chooseMemory() bool {
	if m.inMemMsg {
		return true // never interrupt a memory message
	}
	switch m.Policy {
	case PolicyMemoryFirst:
		return true
	case PolicyFrameFirst:
		return false
	default: // PolicyFair: alternate
		return !m.lastMem
	}
}

func (m *TxMux) popMemory() Block {
	b := m.memQ[0]
	m.memQ = m.memQ[1:]
	if b.IsControl() {
		switch b.Type() {
		case BTMemStart:
			m.inMemMsg = true
		case BTMemTerm:
			m.inMemMsg = false
		}
	}
	m.lastMem = true
	return b
}

func (m *TxMux) popFrame() Block {
	b := m.frameQ[0]
	m.frameQ = m.frameQ[1:]
	m.lastMem = false
	return b
}

// RxReorderBuffer is the receive-side companion of TxMux (§3.2.3): because
// preemption makes a frame's blocks arrive in non-consecutive cycles, EDM
// buffers them until the frame's /T/ block and then releases the whole frame
// to the decoder in consecutive cycles. Latency cost: the transmission delay
// of the frame itself, which the caller models.
type RxReorderBuffer struct {
	buf []Block
}

// Feed adds one frame-stream block (post-demux). When the frame completes it
// returns the frame's full block sequence ready for a FrameDecoder.
func (r *RxReorderBuffer) Feed(b Block) ([]Block, bool) {
	if b.IsControl() && b.Type() == BTIdle {
		// Idles are never part of a frame: between frames they are the IFG,
		// and mid-frame they are the holes left by preempting memory blocks.
		return nil, false
	}
	r.buf = append(r.buf, b)
	if b.IsControl() {
		if _, isTerm := TermBytes(b.Type()); isTerm {
			out := make([]Block, len(r.buf))
			copy(out, r.buf)
			r.buf = r.buf[:0]
			return out, true
		}
	}
	return nil, false
}

// Pending reports buffered blocks of the in-progress frame.
func (r *RxReorderBuffer) Pending() int { return len(r.buf) }
