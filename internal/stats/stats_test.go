package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %f", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := Percentile(sorted, 0.5); p != 5 {
		t.Fatalf("P50 of {0,10} = %f", p)
	}
	if p := Percentile(sorted, 0); p != 0 {
		t.Fatalf("P0 = %f", p)
	}
	if p := Percentile(sorted, 1); p != 10 {
		t.Fatalf("P100 = %f", p)
	}
}

func TestRatios(t *testing.T) {
	r := Ratios([]float64{2, 6, 9}, []float64{1, 2, 0})
	if len(r) != 2 || r[0] != 2 || r[1] != 3 {
		t.Fatalf("ratios: %v", r)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			} else {
				// Keep inputs in a latency-like range; quick generates
				// values near ±MaxFloat64 whose sums overflow.
				xs[i] = math.Mod(x, 1e12)
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}
