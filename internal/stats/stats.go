// Package stats provides the summary statistics the experiment harness
// reports: means, percentiles and normalized latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P90  float64
	P99  float64
	Std  float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:    len(sorted),
		Mean: mean,
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  Percentile(sorted, 0.50),
		P90:  Percentile(sorted, 0.90),
		P99:  Percentile(sorted, 0.99),
		Std:  math.Sqrt(variance),
	}
}

// Percentile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.P50, s.P99, s.Max)
}

// Row renders the percentile row used by tabular reports (no n= prefix, so
// rows align under a caption column).
func (s Summary) Row() string {
	return fmt.Sprintf("mean %.3f p50 %.3f p90 %.3f p99 %.3f max %.3f",
		s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Ratios divides each observation by its paired baseline, for normalized
// latency/MCT plots. Pairs with non-positive baselines are skipped.
func Ratios(values, baselines []float64) []float64 {
	n := len(values)
	if len(baselines) < n {
		n = len(baselines)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if baselines[i] > 0 {
			out = append(out, values[i]/baselines[i])
		}
	}
	return out
}
