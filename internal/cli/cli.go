// Package cli carries the exit-code conventions shared by every command in
// the repo: usage errors exit 2 (like flag-parse failures, which the flag
// package has already reported on stderr), runtime errors exit 1, and -h
// exits 0.
package cli

import (
	"errors"
	"fmt"
	"os"
)

// ErrFlagParse marks a flag-parse failure the flag package has already
// reported (with usage) on stderr; Exit terminates without printing it
// again.
var ErrFlagParse = errors.New("flag parse error")

// UsageError distinguishes bad invocations (exit 2, like flag-parse
// failures) from runtime failures (exit 1).
type UsageError struct{ S string }

func (e UsageError) Error() string { return e.S }

// Usagef builds a UsageError.
func Usagef(format string, a ...any) error {
	return UsageError{S: fmt.Sprintf(format, a...)}
}

// Exit terminates the process with the conventional code for err: return
// normally for nil, 2 for usage/flag-parse errors, 1 otherwise. Non-flag
// errors are printed as "<name>: <err>" on stderr.
func Exit(name string, err error) {
	if err == nil {
		return
	}
	if !errors.Is(err, ErrFlagParse) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	var ue UsageError
	if errors.Is(err, ErrFlagParse) || errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}
