package memctl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newCtl(t *testing.T) *Controller {
	t.Helper()
	return New(DefaultConfig())
}

func TestReadWriteRoundTrip(t *testing.T) {
	c := newCtl(t)
	data := bytes.Repeat([]byte{0xa5}, 256)
	if _, err := c.Write(4096, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Read(4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
}

func TestReadCrossesPages(t *testing.T) {
	c := newCtl(t)
	data := make([]byte, 10000) // spans 3 internal pages
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := c.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Read(100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page read mismatch")
	}
}

func TestZeroFill(t *testing.T) {
	c := newCtl(t)
	got, _, err := c.Read(1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched memory not zero")
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	c := newCtl(t)
	if _, _, err := c.Read(c.Size(), 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read at size: %v", err)
	}
	if _, _, err := c.Read(c.Size()-4, 8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if _, err := c.Write(c.Size()-1, []byte{1, 2}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write past end: %v", err)
	}
	if _, _, err := c.Read(0, 0); !errors.Is(err, ErrBadLength) {
		t.Errorf("zero-length read: %v", err)
	}
}

func TestRowBufferTiming(t *testing.T) {
	c := newCtl(t)
	// First access: row miss. Second access to the same row: hit, faster.
	_, t1, err := c.Read(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := c.Read(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t2 >= t1 {
		t.Fatalf("row hit (%v) not faster than miss (%v)", t2, t1)
	}
	_, hits := c.Stats()
	if hits != 1 {
		t.Fatalf("rowHits = %d, want 1", hits)
	}
}

func TestRandomAccessLatencyNearPaper(t *testing.T) {
	// The paper's Figure 7 uses ~82 ns local DDR4 latency. A row-miss
	// 64 B access should land in 70–100 ns with the default config.
	c := newCtl(t)
	_, lat, err := c.Read(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 70*sim.Nanosecond || lat > 100*sim.Nanosecond {
		t.Fatalf("cold 64B access latency %v outside 70-100ns", lat)
	}
}

func TestLargeReadPipelinesBursts(t *testing.T) {
	c := newCtl(t)
	_, t64, _ := c.Read(0, 64)
	c2 := newCtl(t)
	_, t1k, _ := c2.Read(0, 1024)
	// 1 KB = 16 bursts; must cost much less than 16 independent accesses.
	if t1k >= 16*t64 {
		t.Fatalf("1KB read %v not pipelined vs 16x64B %v", t1k, 16*t64)
	}
	if t1k <= t64 {
		t.Fatalf("1KB read %v not slower than 64B %v", t1k, t64)
	}
}

func TestCAS(t *testing.T) {
	c := newCtl(t)
	if _, err := c.Write(64, []byte{42, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// Failed CAS: expected doesn't match.
	res, _, err := c.RMW(64, OpCAS, 7, 99)
	if err != nil || res != 0 {
		t.Fatalf("CAS mismatch: res=%d err=%v", res, err)
	}
	// Successful CAS.
	res, _, err = c.RMW(64, OpCAS, 42, 99)
	if err != nil || res != 1 {
		t.Fatalf("CAS match: res=%d err=%v", res, err)
	}
	got, _, _ := c.Read(64, 8)
	if got[0] != 99 {
		t.Fatalf("CAS did not write: %v", got)
	}
}

func TestFetchAddAndFriends(t *testing.T) {
	c := newCtl(t)
	cases := []struct {
		op        RMWOp
		arg       uint64
		wantRes   uint64 // previous value (initial 10)
		wantAfter uint64
	}{
		{OpFetchAdd, 5, 10, 15},
		{OpSwap, 77, 15, 77},
		{OpAnd, 0x0f, 77, 77 & 0x0f},
		{OpOr, 0xf0, 13, 13 | 0xf0},
		{OpXor, 0xff, 253, 253 ^ 0xff},
		{OpMin, 1, 2, 1},
		{OpMax, 100, 1, 100},
	}
	if _, err := c.Write(0, []byte{10, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		res, _, err := c.RMW(0, tc.op, tc.arg)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if res != tc.wantRes {
			t.Errorf("%v result = %d, want %d", tc.op, res, tc.wantRes)
		}
		got, _, _ := c.Read(0, 8)
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(got[i])
		}
		if v != tc.wantAfter {
			t.Errorf("%v stored %d, want %d", tc.op, v, tc.wantAfter)
		}
	}
}

func TestRMWSignedMinMax(t *testing.T) {
	c := newCtl(t)
	neg := uint64(0xffffffffffffffff) // -1
	if _, _, err := c.RMW(8, OpMin, neg); err != nil {
		t.Fatal(err)
	}
	got, _, _ := c.Read(8, 8)
	if got[0] != 0xff {
		t.Fatal("signed min did not store -1 over 0")
	}
}

func TestRMWErrors(t *testing.T) {
	c := newCtl(t)
	if _, _, err := c.RMW(3, OpCAS, 1, 2); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned: %v", err)
	}
	if _, _, err := c.RMW(0, RMWOp(200), 1); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("bad opcode: %v", err)
	}
	if _, _, err := c.RMW(0, OpCAS, 1); err == nil {
		t.Error("CAS with one arg accepted")
	}
	if _, _, err := c.RMW(c.Size(), OpSwap, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range RMW: %v", err)
	}
}

func TestRMWArgCount(t *testing.T) {
	if n, err := RMWArgCount(OpCAS); err != nil || n != 2 {
		t.Fatalf("CAS args = %d, %v", n, err)
	}
	if n, err := RMWArgCount(OpFetchAdd); err != nil || n != 1 {
		t.Fatalf("FAA args = %d, %v", n, err)
	}
	if _, err := RMWArgCount(RMWOp(0)); err == nil {
		t.Fatal("opcode 0 accepted")
	}
}

// Property: write-then-read returns exactly the written bytes for arbitrary
// in-range addresses and sizes.
func TestRoundTripProperty(t *testing.T) {
	c := New(Config{
		Size: 1 << 22, Banks: 4, RowBytes: 2048,
		TRP: 1, TRCD: 1, TCAS: 1, TBurst: 1, Overhead: 1,
	})
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			data = []byte{1}
		}
		a := uint64(addr) % (c.Size() - uint64(len(data)))
		if _, err := c.Write(a, data); err != nil {
			return false
		}
		got, _, err := c.Read(a, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: latency is always positive and monotone-ish in access size for
// same-start reads on a fresh controller.
func TestLatencyMonotoneProperty(t *testing.T) {
	f := func(k uint8) bool {
		n1 := int(k)%512 + 1
		n2 := n1 + 512
		c1 := New(DefaultConfig())
		_, t1, err1 := c1.Read(0, n1)
		c2 := New(DefaultConfig())
		_, t2, err2 := c2.Read(0, n2)
		return err1 == nil && err2 == nil && t1 > 0 && t2 > t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
