// Package memctl models a DDR4-like memory controller and its DRAM.
//
// The memory node in EDM terminates RREQ/WREQ/RMWREQ messages at a memory
// controller, and the paper's demand-estimation trick relies on the
// controller interface requiring an explicit byte count per access. This
// model provides a byte-addressable store with bank/row timing (row-buffer
// hits are fast, conflicts pay precharge+activate) and the NIC-side atomic
// read-modify-write operations of §3.2.1.
package memctl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Config describes the DRAM geometry and timing. The defaults approximate
// DDR4-2400 with a controller overhead chosen so that a random (row-miss)
// access lands near the ~82 ns local-DRAM latency the paper uses in
// Figure 7.
type Config struct {
	Size     uint64 // total bytes of addressable memory
	Banks    int
	RowBytes uint64 // row-buffer (page) size per bank

	TRP      sim.Time // precharge
	TRCD     sim.Time // activate (row to column delay)
	TCAS     sim.Time // column access (CL)
	TBurst   sim.Time // one burst transfer (64 B)
	Overhead sim.Time // fixed controller/queueing overhead per access
}

// DefaultConfig returns the DDR4-2400-like configuration used throughout
// the experiments.
func DefaultConfig() Config {
	return Config{
		Size:     1 << 30, // 1 GiB
		Banks:    16,
		RowBytes: 8192,
		TRP:      13320 * sim.Picosecond,
		TRCD:     13320 * sim.Picosecond,
		TCAS:     13320 * sim.Picosecond,
		TBurst:   3330 * sim.Picosecond,
		Overhead: 52 * sim.Nanosecond,
	}
}

// BurstBytes is the DDR4 burst size: 8 beats of a 64-bit interface.
const BurstBytes = 64

// WordBytes is the DDR word size used by the atomic operations.
const WordBytes = 8

// Controller errors.
var (
	ErrOutOfRange = errors.New("memctl: address out of range")
	ErrBadLength  = errors.New("memctl: length must be positive")
	ErrUnaligned  = errors.New("memctl: atomic access must be 8-byte aligned")
	ErrBadOpcode  = errors.New("memctl: unknown RMW opcode")
)

const pageBytes = 4096

// Controller is a single-channel memory controller with a per-bank open-row
// policy. It is not safe for concurrent use; the simulation kernel is
// single-threaded by design.
type Controller struct {
	cfg      Config
	pages    map[uint64]*[pageBytes]byte // guarded by caller (single-threaded by design; rmem.Server serializes under its mu)
	openRow  []int64                     // per bank; -1 = closed; guarded by caller
	accesses uint64                      // guarded by caller
	rowHits  uint64                      // guarded by caller
}

// New returns a controller with the given configuration.
func New(cfg Config) *Controller {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 || cfg.Size == 0 {
		panic("memctl: invalid config")
	}
	open := make([]int64, cfg.Banks)
	for i := range open {
		open[i] = -1
	}
	return &Controller{cfg: cfg, pages: make(map[uint64]*[pageBytes]byte), openRow: open}
}

// Size reports addressable bytes.
func (c *Controller) Size() uint64 { return c.cfg.Size }

// Stats reports total accesses and row-buffer hits.
func (c *Controller) Stats() (accesses, rowHits uint64) { return c.accesses, c.rowHits }

func (c *Controller) check(addr uint64, n int) error {
	if n <= 0 {
		return ErrBadLength
	}
	if addr >= c.cfg.Size || uint64(n) > c.cfg.Size-addr {
		return fmt.Errorf("%w: addr=%#x len=%d size=%#x", ErrOutOfRange, addr, n, c.cfg.Size)
	}
	return nil
}

// accessTime charges bank timing for one access touching [addr, addr+n).
//
//edmlint:hotpath runs once per served memory access
func (c *Controller) accessTime(addr uint64, n int) sim.Time {
	total := c.cfg.Overhead
	// Walk the bursts the access spans; consecutive bursts in an open row
	// pipeline at TBurst each.
	for off := addr &^ (BurstBytes - 1); off < addr+uint64(n); off += BurstBytes {
		bank := int((off / c.cfg.RowBytes) % uint64(c.cfg.Banks))
		row := int64(off / (c.cfg.RowBytes * uint64(c.cfg.Banks)))
		c.accesses++
		if c.openRow[bank] == row {
			c.rowHits++
			total += c.cfg.TCAS + c.cfg.TBurst
		} else {
			if c.openRow[bank] >= 0 {
				total += c.cfg.TRP // close the old row
			}
			total += c.cfg.TRCD + c.cfg.TCAS + c.cfg.TBurst
			c.openRow[bank] = row
		}
		// Only the first burst pays the full column latency; subsequent
		// bursts in the same request stream out back to back.
		if off > addr&^(BurstBytes-1) {
			total -= c.cfg.TCAS
		}
	}
	return total
}

func (c *Controller) page(addr uint64) *[pageBytes]byte {
	idx := addr / pageBytes
	p := c.pages[idx]
	if p == nil {
		p = new([pageBytes]byte)
		c.pages[idx] = p
	}
	return p
}

func (c *Controller) copyOut(dst []byte, addr uint64) {
	for len(dst) > 0 {
		p := c.page(addr)
		off := addr % pageBytes
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

func (c *Controller) copyIn(addr uint64, src []byte) {
	for len(src) > 0 {
		p := c.page(addr)
		off := addr % pageBytes
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// Read returns n bytes at addr and the access latency.
//
//edmlint:hotpath
func (c *Controller) Read(addr uint64, n int) ([]byte, sim.Time, error) {
	if err := c.check(addr, n); err != nil {
		return nil, 0, err
	}
	//edmlint:allow hotpath convenience form; the zero-alloc hot path uses ReadInto
	out := make([]byte, n)
	t, err := c.ReadInto(addr, out)
	if err != nil {
		return nil, 0, err
	}
	return out, t, nil
}

// ReadInto fills dst from addr and returns the access latency: the
// allocation-free read used by the serving hot path, which reads into a
// recycled response buffer.
//
//edmlint:hotpath
func (c *Controller) ReadInto(addr uint64, dst []byte) (sim.Time, error) {
	if err := c.check(addr, len(dst)); err != nil {
		return 0, err
	}
	c.copyOut(dst, addr)
	return c.accessTime(addr, len(dst)), nil
}

// Write stores data at addr and returns the access latency.
//
//edmlint:hotpath
func (c *Controller) Write(addr uint64, data []byte) (sim.Time, error) {
	if err := c.check(addr, len(data)); err != nil {
		return 0, err
	}
	c.copyIn(addr, data)
	return c.accessTime(addr, len(data)), nil
}

// RMWOp is the opcode of an atomic read-modify-write (§2.3 RMWREQ).
type RMWOp uint8

const (
	OpCAS RMWOp = iota + 1 // compare-and-swap: args[0]=expected, args[1]=new
	OpFetchAdd
	OpSwap
	OpAnd
	OpOr
	OpXor
	OpMin // signed
	OpMax // signed
)

// String names the opcode.
func (op RMWOp) String() string {
	switch op {
	case OpCAS:
		return "cas"
	case OpFetchAdd:
		return "fetch-add"
	case OpSwap:
		return "swap"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("rmw(%d)", uint8(op))
}

// RMWArgCount reports how many 64-bit arguments op consumes.
func RMWArgCount(op RMWOp) (int, error) {
	switch op {
	case OpCAS:
		return 2, nil
	case OpFetchAdd, OpSwap, OpAnd, OpOr, OpXor, OpMin, OpMax:
		return 1, nil
	}
	return 0, fmt.Errorf("%w: %d", ErrBadOpcode, op)
}

// RMW performs an atomic read-modify-write on the 64-bit word at addr and
// returns the operation result (for CAS: 1 if it swapped, else 0; for the
// others: the previous value) and the access latency. The three steps —
// read, modify, write — are atomic with respect to other requests because
// the controller is driven by a single-threaded event loop, exactly like
// the non-preemptible NIC pipeline in the paper.
//
//edmlint:hotpath
func (c *Controller) RMW(addr uint64, op RMWOp, args ...uint64) (uint64, sim.Time, error) {
	if addr%WordBytes != 0 {
		return 0, 0, ErrUnaligned
	}
	if err := c.check(addr, WordBytes); err != nil {
		return 0, 0, err
	}
	want, err := RMWArgCount(op)
	if err != nil {
		return 0, 0, err
	}
	if len(args) != want {
		return 0, 0, fmt.Errorf("memctl: %v needs %d args, got %d", op, want, len(args))
	}
	var buf [WordBytes]byte
	c.copyOut(buf[:], addr)
	old := binary.LittleEndian.Uint64(buf[:])
	var newVal, result uint64
	switch op {
	case OpCAS:
		if old == args[0] {
			newVal, result = args[1], 1
		} else {
			newVal, result = old, 0
		}
	case OpFetchAdd:
		newVal, result = old+args[0], old
	case OpSwap:
		newVal, result = args[0], old
	case OpAnd:
		newVal, result = old&args[0], old
	case OpOr:
		newVal, result = old|args[0], old
	case OpXor:
		newVal, result = old^args[0], old
	case OpMin:
		newVal, result = old, old
		if int64(args[0]) < int64(old) {
			newVal = args[0]
		}
	case OpMax:
		newVal, result = old, old
		if int64(args[0]) > int64(old) {
			newVal = args[0]
		}
	}
	binary.LittleEndian.PutUint64(buf[:], newVal)
	c.copyIn(addr, buf[:])
	// Read + write to the same open row: one activate, two column accesses.
	t := c.accessTime(addr, WordBytes) + c.cfg.TCAS + c.cfg.TBurst
	return result, t, nil
}
