// Package hwsim models the hardware data structures EDM's scheduler is built
// from, with their cycle costs.
//
// The paper's scheduler achieves constant-time PIM iterations by using
// recent hardware ordered-list designs (Shrivastav, SIGCOMM'19/'22; PIFO,
// SIGCOMM'16) plus a priority encoder. In hardware these structures perform
// parallel reads, comparisons and shifts across all entries in a single
// clock; in software we model the same *interface and cycle costs* with
// conventional algorithms, and the scheduler charges the documented cycle
// costs when computing latency.
package hwsim

import "sort"

// Cycle costs of the ordered-list hardware (§3.1.2): inserts and deletes
// take 2 cycles and are fully pipelined (a new operation may be issued every
// cycle); reading the head takes 1 cycle.
const (
	InsertCycles = 2
	DeleteCycles = 2
	PeekCycles   = 1
)

// Entry is one ordered-list element: a 64-bit priority key (lower value =
// higher priority) and an opaque value.
type Entry[V any] struct {
	Key   int64
	Value V
	seq   uint64 // insertion order; ties dequeue FIFO, matching shift-register hardware
}

// OrderedList is a constant-cycle hardware priority queue model. Entries are
// kept sorted ascending by (Key, insertion order).
type OrderedList[V any] struct {
	entries []Entry[V]
	nextSeq uint64
	ops     uint64 // total operations issued, for pipeline accounting
}

// Len reports the number of entries.
func (l *OrderedList[V]) Len() int { return len(l.entries) }

// Ops reports how many mutating operations have been issued (each occupies
// one pipeline slot; latency of each is 2 cycles).
func (l *OrderedList[V]) Ops() uint64 { return l.ops }

// Insert adds an entry.
func (l *OrderedList[V]) Insert(key int64, v V) {
	l.ops++
	e := Entry[V]{Key: key, Value: v, seq: l.nextSeq}
	l.nextSeq++
	i := sort.Search(len(l.entries), func(i int) bool {
		other := l.entries[i]
		if other.Key != key {
			return other.Key > key
		}
		return other.seq > e.seq
	})
	l.entries = append(l.entries, Entry[V]{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
}

// PeekMin returns the highest-priority entry without removing it.
func (l *OrderedList[V]) PeekMin() (Entry[V], bool) {
	if len(l.entries) == 0 {
		return Entry[V]{}, false
	}
	return l.entries[0], true
}

// PeekMinWhere returns the highest-priority entry satisfying pred. In
// hardware the predicate is a parallel mask over all entries evaluated in
// the same cycle as the read (this is how PIM step 1 skips busy sources).
func (l *OrderedList[V]) PeekMinWhere(pred func(V) bool) (Entry[V], bool) {
	for _, e := range l.entries {
		if pred(e.Value) {
			return e, true
		}
	}
	return Entry[V]{}, false
}

// DeleteMin removes and returns the highest-priority entry.
func (l *OrderedList[V]) DeleteMin() (Entry[V], bool) {
	if len(l.entries) == 0 {
		return Entry[V]{}, false
	}
	l.ops++
	e := l.entries[0]
	l.entries = l.entries[1:]
	return e, true
}

// DeleteWhere removes the first (highest-priority) entry satisfying pred and
// reports whether one was found.
func (l *OrderedList[V]) DeleteWhere(pred func(V) bool) (Entry[V], bool) {
	for i, e := range l.entries {
		if pred(e.Value) {
			l.ops++
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return e, true
		}
	}
	return Entry[V]{}, false
}

// UpdateKey changes the priority of the first entry satisfying pred,
// preserving FIFO order among equal keys. Hardware implements this as a
// delete+insert pipeline (the paper updates priorities when remaining bytes
// change under SRPT).
func (l *OrderedList[V]) UpdateKey(pred func(V) bool, newKey int64) bool {
	e, ok := l.DeleteWhere(pred)
	if !ok {
		return false
	}
	l.Insert(newKey, e.Value)
	return true
}

// Scan calls fn for each entry in priority order; used by tests and for
// demand-matrix snapshots.
func (l *OrderedList[V]) Scan(fn func(Entry[V]) bool) {
	for _, e := range l.entries {
		if !fn(e) {
			return
		}
	}
}
