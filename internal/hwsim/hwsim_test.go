package hwsim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestOrderedListBasics(t *testing.T) {
	var l OrderedList[string]
	l.Insert(30, "c")
	l.Insert(10, "a")
	l.Insert(20, "b")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	e, ok := l.PeekMin()
	if !ok || e.Key != 10 || e.Value != "a" {
		t.Fatalf("PeekMin = %+v", e)
	}
	var got []string
	for {
		e, ok := l.DeleteMin()
		if !ok {
			break
		}
		got = append(got, e.Value)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("drain order %v", got)
	}
}

func TestOrderedListFIFOTies(t *testing.T) {
	var l OrderedList[int]
	for i := 0; i < 10; i++ {
		l.Insert(5, i)
	}
	for i := 0; i < 10; i++ {
		e, _ := l.DeleteMin()
		if e.Value != i {
			t.Fatalf("tie order broken: got %d at position %d", e.Value, i)
		}
	}
}

func TestOrderedListPeekWhere(t *testing.T) {
	var l OrderedList[int]
	l.Insert(1, 100)
	l.Insert(2, 200)
	l.Insert(3, 300)
	e, ok := l.PeekMinWhere(func(v int) bool { return v >= 200 })
	if !ok || e.Value != 200 {
		t.Fatalf("PeekMinWhere = %+v, %v", e, ok)
	}
	_, ok = l.PeekMinWhere(func(v int) bool { return v > 1000 })
	if ok {
		t.Fatal("PeekMinWhere matched nothing but returned ok")
	}
}

func TestOrderedListDeleteWhere(t *testing.T) {
	var l OrderedList[int]
	for i := 0; i < 5; i++ {
		l.Insert(int64(i), i)
	}
	e, ok := l.DeleteWhere(func(v int) bool { return v == 3 })
	if !ok || e.Value != 3 || l.Len() != 4 {
		t.Fatalf("DeleteWhere: %+v len=%d", e, l.Len())
	}
	if _, ok := l.DeleteWhere(func(v int) bool { return v == 99 }); ok {
		t.Fatal("DeleteWhere found absent value")
	}
}

func TestOrderedListUpdateKey(t *testing.T) {
	var l OrderedList[string]
	l.Insert(10, "x")
	l.Insert(20, "y")
	if !l.UpdateKey(func(v string) bool { return v == "y" }, 5) {
		t.Fatal("UpdateKey failed")
	}
	e, _ := l.PeekMin()
	if e.Value != "y" || e.Key != 5 {
		t.Fatalf("after update head = %+v", e)
	}
}

// Property: OrderedList drains in nondecreasing key order for any input.
func TestOrderedListSortProperty(t *testing.T) {
	f := func(keys []int16) bool {
		var l OrderedList[int]
		for i, k := range keys {
			l.Insert(int64(k), i)
		}
		prev := int64(-1 << 62)
		for {
			e, ok := l.DeleteMin()
			if !ok {
				break
			}
			if e.Key < prev {
				return false
			}
			prev = e.Key
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the list agrees with sort.SliceStable on (key, arrival) order.
func TestOrderedListStableAgainstReference(t *testing.T) {
	rng := workload.NewPartition(42).Stream("hwsim-orderedlist")
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64) + 1
		type item struct {
			key int64
			id  int
		}
		items := make([]item, n)
		var l OrderedList[int]
		for i := range items {
			items[i] = item{key: int64(rng.Intn(8)), id: i}
			l.Insert(items[i].key, items[i].id)
		}
		ref := append([]item(nil), items...)
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].key < ref[b].key })
		for i := 0; i < n; i++ {
			e, _ := l.DeleteMin()
			if e.Value != ref[i].id {
				t.Fatalf("trial %d pos %d: got id %d want %d", trial, i, e.Value, ref[i].id)
			}
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	p := NewPriorityEncoder(8)
	if _, ok := p.Encode(); ok {
		t.Fatal("empty encoder returned a value")
	}
	p.Set(5)
	p.Set(2)
	p.Set(7)
	if i, ok := p.Encode(); !ok || i != 2 {
		t.Fatalf("Encode = %d,%v want 2", i, ok)
	}
	p.ClearAll()
	if _, ok := p.Encode(); ok {
		t.Fatal("encoder not cleared")
	}
}

func TestSortedArrayArbitrate(t *testing.T) {
	s := NewSortedArray(8)
	// dst 3 has priority 50, dst 1 has 10 (best), dst 6 has 30.
	s.Update(3, 50)
	s.Update(1, 10)
	s.Update(6, 30)
	dst, ok := s.Arbitrate(map[int]bool{3: true, 6: true})
	if !ok || dst != 6 {
		t.Fatalf("Arbitrate({3,6}) = %d,%v want 6", dst, ok)
	}
	dst, ok = s.Arbitrate(map[int]bool{3: true, 6: true, 1: true})
	if !ok || dst != 1 {
		t.Fatalf("Arbitrate(all) = %d,%v want 1", dst, ok)
	}
	if _, ok := s.Arbitrate(map[int]bool{7: true}); ok {
		t.Fatal("Arbitrate matched unknown dst")
	}
}

func TestSortedArrayUpdateMovesPriority(t *testing.T) {
	s := NewSortedArray(4)
	s.Update(0, 100)
	s.Update(1, 200)
	// Re-update dst 1 to the best priority; must win arbitration now.
	s.Update(1, 1)
	dst, ok := s.Arbitrate(map[int]bool{0: true, 1: true})
	if !ok || dst != 1 {
		t.Fatalf("after update Arbitrate = %d", dst)
	}
	s.Remove(1)
	if s.Len() != 1 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
}

// Property: Arbitrate always returns the requesting destination with the
// minimum key.
func TestSortedArrayArbitrateProperty(t *testing.T) {
	f := func(keys []uint8, mask uint8) bool {
		if len(keys) == 0 {
			return true
		}
		if len(keys) > 8 {
			keys = keys[:8]
		}
		s := NewSortedArray(8)
		for d, k := range keys {
			s.Update(d, int64(k))
		}
		req := map[int]bool{}
		bestKey := int64(1 << 40)
		bestSet := false
		for d := range keys {
			if mask&(1<<uint(d)) != 0 {
				req[d] = true
				if int64(keys[d]) < bestKey {
					bestKey = int64(keys[d])
					bestSet = true
				}
			}
		}
		dst, ok := s.Arbitrate(req)
		if !bestSet {
			return !ok
		}
		return ok && int64(keys[dst]) == bestKey && req[dst]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCycleCostConstants(t *testing.T) {
	// The paper's 3-cycle PIM iteration decomposes as: 1 cycle queue peek,
	// 1 cycle encoder arbitration, 1 cycle busy-mark. Guard the data
	// structure costs that claim rests on.
	if PeekCycles != 1 || EncodeCycles != 1 {
		t.Fatalf("peek=%d encode=%d; PIM iteration budget broken", PeekCycles, EncodeCycles)
	}
	if InsertCycles != 2 || DeleteCycles != 2 {
		t.Fatalf("insert=%d delete=%d; pipelined op cost broken", InsertCycles, DeleteCycles)
	}
}
