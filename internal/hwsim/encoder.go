package hwsim

// EncodeCycles is the latency of a priority-encoder lookup. A priority
// encoder is pure combinational logic; its output settles within the same
// clock cycle its inputs are applied (§3.1.2: "a priority encoder
// synchronously returns the most significant index set to 1").
const EncodeCycles = 1

// PriorityEncoder models an N-input hardware priority encoder: given a bit
// vector, it reports the lowest index whose bit is set. In EDM the array is
// pre-sorted so that lower index = higher priority, which lets a source port
// pick the highest-priority matching request among up to N contenders in one
// cycle instead of log(N) cycles of comparator tree.
type PriorityEncoder struct {
	bits []bool
}

// NewPriorityEncoder returns an encoder over n inputs.
func NewPriorityEncoder(n int) *PriorityEncoder {
	return &PriorityEncoder{bits: make([]bool, n)}
}

// Size reports the input width.
func (p *PriorityEncoder) Size() int { return len(p.bits) }

// Set asserts input i.
func (p *PriorityEncoder) Set(i int) { p.bits[i] = true }

// ClearAll deasserts every input (done between PIM iterations).
func (p *PriorityEncoder) ClearAll() {
	for i := range p.bits {
		p.bits[i] = false
	}
}

// Encode returns the lowest asserted index, or ok=false if no input is set.
func (p *PriorityEncoder) Encode() (int, bool) {
	for i, b := range p.bits {
		if b {
			return i, true
		}
	}
	return 0, false
}

// SortedArray is the per-source-port structure from §3.1.2: an array of
// destination-port numbers kept sorted by the priority of each destination's
// best pending message, paired with a priority encoder over the array
// indices. During PIM's second cycle each requesting destination sets the
// bit at its array position in parallel, and the encoder returns the
// position of the highest-priority requester.
type SortedArray struct {
	list    OrderedList[int] // value = destination port
	encoder *PriorityEncoder
}

// NewSortedArray returns an array sized for n destinations.
func NewSortedArray(n int) *SortedArray {
	return &SortedArray{encoder: NewPriorityEncoder(n)}
}

// Update sets destination dst's priority key, inserting it if absent. Called
// on every demand notification arrival and priority change, mirroring the
// notification queue updates.
func (s *SortedArray) Update(dst int, key int64) {
	s.list.DeleteWhere(func(d int) bool { return d == dst })
	s.list.Insert(key, dst)
}

// Remove deletes destination dst from the array (its queue went empty).
func (s *SortedArray) Remove(dst int) {
	s.list.DeleteWhere(func(d int) bool { return d == dst })
}

// Len reports how many destinations are present.
func (s *SortedArray) Len() int { return s.list.Len() }

// Arbitrate resolves one PIM grant cycle: given the set of destinations
// requesting this source, it returns the one whose queue priority is
// highest. Cost: EncodeCycles (1 cycle), regardless of contender count.
func (s *SortedArray) Arbitrate(requesting map[int]bool) (int, bool) {
	s.encoder.ClearAll()
	idx := 0
	found := false
	s.list.Scan(func(e Entry[int]) bool {
		if idx >= s.encoder.Size() {
			return false
		}
		if requesting[e.Value] {
			s.encoder.Set(idx)
			found = true
		}
		idx++
		return true
	})
	if !found {
		return 0, false
	}
	pos, _ := s.encoder.Encode()
	// Map encoder position back to the destination stored there.
	var dst int
	i := 0
	s.list.Scan(func(e Entry[int]) bool {
		if i == pos {
			dst = e.Value
			return false
		}
		i++
		return true
	})
	return dst, true
}
