package workload

import (
	"fmt"
	"sort"
)

// SizeDist samples message sizes in bytes.
type SizeDist interface {
	Sample(r *Rand) int
	Mean() float64
	Name() string
}

// Fixed is a degenerate distribution: every message is the same size
// (Figure 8a uses Fixed(64)).
type Fixed int

// Sample implements SizeDist.
func (f Fixed) Sample(*Rand) int { return int(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%dB", int(f)) }

// CDFPoint is one knot of a piecewise-linear CDF.
type CDFPoint struct {
	Size int     // message size in bytes
	Frac float64 // P(X <= Size)
}

// CDF is a piecewise-linear message-size distribution, the format the
// paper's trace generator consumes ("pre-existing CDF profiles of
// disaggregated workloads", §A.5.2).
type CDF struct {
	name   string
	points []CDFPoint
}

// NewCDF builds a distribution from knots. Knots must be strictly
// increasing in size and non-decreasing in fraction, with the final
// fraction equal to 1.
func NewCDF(name string, points []CDFPoint) (*CDF, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: empty CDF %q", name)
	}
	sorted := append([]CDFPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Size < sorted[j].Size })
	prevFrac := 0.0
	for i, p := range sorted {
		if p.Size <= 0 {
			return nil, fmt.Errorf("workload: CDF %q: size %d", name, p.Size)
		}
		if i > 0 && p.Size == sorted[i-1].Size {
			return nil, fmt.Errorf("workload: CDF %q: duplicate size %d", name, p.Size)
		}
		if p.Frac < prevFrac || p.Frac > 1 {
			return nil, fmt.Errorf("workload: CDF %q: fraction %f out of order", name, p.Frac)
		}
		prevFrac = p.Frac
	}
	if sorted[len(sorted)-1].Frac != 1 {
		return nil, fmt.Errorf("workload: CDF %q: last fraction %f != 1", name, sorted[len(sorted)-1].Frac)
	}
	return &CDF{name: name, points: sorted}, nil
}

// MustCDF is NewCDF that panics on error; for the built-in profiles.
func MustCDF(name string, points []CDFPoint) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements SizeDist.
func (c *CDF) Name() string { return c.name }

// Sample draws a size by inverse-transform sampling with linear
// interpolation between knots.
func (c *CDF) Sample(r *Rand) int {
	u := r.Float64()
	pts := c.points
	// First knot at or above u.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Frac >= u })
	if i == 0 {
		// Interpolate from size 1 at fraction 0.
		return interp(1, 0, pts[0].Size, pts[0].Frac, u)
	}
	if i == len(pts) {
		return pts[len(pts)-1].Size
	}
	return interp(pts[i-1].Size, pts[i-1].Frac, pts[i].Size, pts[i].Frac, u)
}

func interp(s0 int, f0 float64, s1 int, f1 float64, u float64) int {
	if f1 <= f0 {
		return s1
	}
	t := (u - f0) / (f1 - f0)
	v := float64(s0) + t*float64(s1-s0)
	if v < 1 {
		v = 1
	}
	return int(v + 0.5)
}

// Mean integrates the piecewise-linear CDF analytically.
func (c *CDF) Mean() float64 {
	mean := 0.0
	prevS, prevF := 1.0, 0.0
	for _, p := range c.points {
		df := p.Frac - prevF
		mean += df * (prevS + float64(p.Size)) / 2
		prevS, prevF = float64(p.Size), p.Frac
	}
	return mean
}

// Percentile reports the size at quantile q in [0, 1].
func (c *CDF) Percentile(q float64) int {
	pts := c.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Frac >= q })
	if i == 0 {
		return pts[0].Size
	}
	if i == len(pts) {
		return pts[len(pts)-1].Size
	}
	return interp(pts[i-1].Size, pts[i-1].Frac, pts[i].Size, pts[i].Frac, q)
}

// Application trace profiles for Figure 8b. The paper derives its traces
// from the public Gao et al. (OSDI'16) and Shoal disaggregation traces by
// fitting message-size CDFs per application; the originals are not
// redistributable, so these knots are synthetic approximations that
// preserve the properties the experiment depends on: a mixture of small
// control messages and a heavy tail that differs per application
// (Memcached shortest tail, Hadoop/Spark sort the heaviest).

// The tails top out at a few hundred KB: disaggregated-memory messages are
// page-granularity transfers (the Gao et al. traces the paper draws on are
// remote-paging workloads), not the multi-MB shuffles of the underlying
// application's storage traffic.

// Hadoop is the Hadoop (Sort) profile.
func Hadoop() *CDF {
	return MustCDF("hadoop-sort", []CDFPoint{
		{64, 0.10}, {512, 0.25}, {4096, 0.60}, {16384, 0.80},
		{65536, 0.93}, {262144, 1.0},
	})
}

// Spark is the Spark (Sort) profile.
func Spark() *CDF {
	return MustCDF("spark-sort", []CDFPoint{
		{64, 0.15}, {1024, 0.35}, {4096, 0.60}, {32768, 0.85},
		{131072, 0.95}, {524288, 1.0},
	})
}

// SparkSQL is the Spark SQL (Query) profile.
func SparkSQL() *CDF {
	return MustCDF("sparksql-query", []CDFPoint{
		{64, 0.30}, {256, 0.50}, {4096, 0.75}, {16384, 0.88},
		{131072, 0.98}, {262144, 1.0},
	})
}

// GraphLab is the GraphLab (Filtering) profile.
func GraphLab() *CDF {
	return MustCDF("graphlab-filtering", []CDFPoint{
		{64, 0.25}, {512, 0.50}, {4096, 0.75}, {32768, 0.90},
		{131072, 1.0},
	})
}

// Memcached is the Memcached (KV store) profile: dominated by small
// messages with a modest tail.
func Memcached() *CDF {
	return MustCDF("memcached-kv", []CDFPoint{
		{64, 0.40}, {128, 0.60}, {512, 0.80}, {1024, 0.90},
		{4096, 0.96}, {32768, 1.0},
	})
}

// AppProfiles returns the Figure 8b applications in presentation order.
func AppProfiles() []*CDF {
	return []*CDF{Hadoop(), Spark(), SparkSQL(), GraphLab(), Memcached()}
}

// SizeDistByName resolves the profile names shared by cmd/tracegen and the
// scenario runner: fixed64, hadoop, spark, sparksql, graphlab, memcached.
func SizeDistByName(name string) (SizeDist, error) {
	switch name {
	case "fixed64", "":
		return Fixed(64), nil
	case "hadoop":
		return Hadoop(), nil
	case "spark":
		return Spark(), nil
	case "sparksql":
		return SparkSQL(), nil
	case "graphlab":
		return GraphLab(), nil
	case "memcached":
		return Memcached(), nil
	}
	return nil, fmt.Errorf("workload: unknown size profile %q", name)
}
