package workload

import (
	"math"
	"testing"
)

func TestPartitionDeterministic(t *testing.T) {
	a, b := NewPartition(42), NewPartition(42)
	for _, name := range []string{"arrival", "size", "chaos"} {
		x, y := a.Stream(name), b.Stream(name)
		for i := 0; i < 64; i++ {
			if x.Uint64() != y.Uint64() {
				t.Fatalf("stream %q diverged for equal seeds", name)
			}
		}
	}
	if NewPartition(1).Stream("a").Uint64() == NewPartition(2).Stream("a").Uint64() {
		t.Fatal("different partition seeds collided")
	}
}

func TestPartitionStreamsIndependent(t *testing.T) {
	// Drawing any number of values from one stream must not perturb another:
	// that is the whole point of partitioning vs chained Split.
	p := NewPartition(7)
	want := make([]uint64, 16)
	s := p.Stream("size")
	for i := range want {
		want[i] = s.Uint64()
	}

	q := NewPartition(7)
	chaos := q.Stream("chaos")
	for i := 0; i < 1000; i++ { // chaos engine suddenly draws 1000 extra values
		chaos.Uint64()
	}
	s2 := q.Stream("size")
	for i := range want {
		if got := s2.Uint64(); got != want[i] {
			t.Fatalf("stream %q changed when another stream's draw count changed", "size")
		}
	}
}

func TestPartitionFamiliesDistinct(t *testing.T) {
	p := NewPartition(3)
	seen := map[uint64]string{}
	for i := 0; i < 100; i++ {
		v := p.StreamN("node", i).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("StreamN collision between %q and node %d", prev, i)
		}
		seen[v] = "node"
	}
	if p.Stream("node").Uint64() == p.StreamN("node", 0).Uint64() {
		t.Fatal("Stream and StreamN(0) alias")
	}
	if p.Sub("a").Stream("x").Uint64() == p.Sub("b").Stream("x").Uint64() {
		t.Fatal("sub-partitions alias")
	}
}

// TestZipfBoundaryClamped is the regression test for the u→1 boundary: float
// rounding can push eta*u-eta+1 to exactly 1, and rank to n, outside the
// documented [0, n) range.
func TestZipfBoundaryClamped(t *testing.T) {
	for _, n := range []int{2, 10, 1000, 1 << 20} {
		z := NewZipf(NewRand(1), n, 0.99)
		for _, u := range []float64{
			math.Nextafter(1, 0),           // largest value below 1
			1 - 1e-14, 1 - 1e-12, 0.999999, // near-boundary band
		} {
			if r := z.rank(u); r < 0 || r >= n {
				t.Fatalf("n=%d: rank(%.17g) = %d outside [0, %d)", n, u, r, n)
			}
		}
	}
}

// TestGenerateSizeDistIsolation: with partitioned streams, swapping the size
// distribution must leave arrivals, sources, destinations and the read/write
// pattern untouched.
func TestGenerateSizeDistIsolation(t *testing.T) {
	base := GenConfig{
		Nodes: 32, Load: 0.6, Bandwidth: 100,
		Sizes: Fixed(64), ReadFrac: 0.5, Count: 2000, Seed: 11,
	}
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Sizes = Fixed(64 * 7) // same mean-gap scale factor not required; compare per-node order
	b, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival times scale with the distribution mean (load targeting), so
	// compare the per-node op sequence: src, dst and read must match 1:1.
	perNode := func(ops []Op) map[int][]Op {
		m := map[int][]Op{}
		for _, op := range ops {
			m[op.Src] = append(m[op.Src], op)
		}
		return m
	}
	am, bm := perNode(a), perNode(b)
	for n, aops := range am {
		bops := bm[n]
		if len(aops) != len(bops) {
			t.Fatalf("node %d: op count changed with size dist", n)
		}
		for i := range aops {
			if aops[i].Dst != bops[i].Dst || aops[i].Read != bops[i].Read {
				t.Fatalf("node %d op %d: dst/read changed with size dist", n, i)
			}
		}
	}
}

func TestGeneratePartitionedMatchesGenerate(t *testing.T) {
	cfg := GenConfig{
		Nodes: 8, Load: 0.5, Bandwidth: 100,
		Sizes: Memcached(), ReadFrac: 0.3, Count: 500, Seed: 99,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePartitioned(NewPartition(99), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
