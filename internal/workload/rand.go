// Package workload generates the traffic the paper evaluates on: open-loop
// Poisson all-to-all microbenchmarks at a target load (Figure 8a), synthetic
// heavy-tailed traces matching disaggregated-application message-size
// distributions (Figure 8b), and YCSB key-value workloads (Figures 6-7).
//
// All randomness flows from a splitmix64 PRNG so runs are reproducible from
// a seed, which the experiment harness relies on for paper-vs-measured
// comparisons.
package workload

import "math"

// Rand is a deterministic splitmix64 PRNG. The zero value is a valid
// generator seeded with 0.
type Rand struct {
	state uint64
}

// NewRand returns a generator with the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean —
// the inter-arrival time of a Poisson process.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Split derives an independent generator (for parallel deterministic
// streams, one per node).
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Partition derives independent named streams from one root seed. Unlike
// chaining Split calls off a single generator — where every subsystem's
// stream depends on how many draws earlier subsystems made — a Partition
// keys each stream on its name alone, so adding a draw to one subsystem
// (or adding a whole new subsystem) leaves every other stream byte-for-byte
// unchanged. The scenario runner and trace generator give each subsystem
// (arrival process, size sampler, chaos engine, per-node streams) its own
// stream so runs are reproducible under evolution of any one of them.
type Partition struct {
	seed uint64
}

// NewPartition returns a partition rooted at seed.
func NewPartition(seed uint64) *Partition { return &Partition{seed: seed} }

// streamSeed hashes (seed, name) into a sub-seed: FNV-1a over the name,
// mixed with the root seed through one Split step so that nearby roots and
// similar names land far apart in state space.
func (p *Partition) streamSeed(name string) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return NewRand(p.seed ^ h).Uint64()
}

// Stream returns the generator for the named subsystem. Repeated calls with
// the same name return generators with identical sequences.
func (p *Partition) Stream(name string) *Rand {
	return NewRand(p.streamSeed(name))
}

// StreamN returns the i-th generator of a named family (e.g. one arrival
// process per node).
func (p *Partition) StreamN(name string, i int) *Rand {
	return NewRand(NewRand(p.streamSeed(name) + uint64(i)).Uint64())
}

// Seed derives a sub-seed for the named subsystem, for APIs that take a
// seed rather than a *Rand.
func (p *Partition) Seed(name string) uint64 { return p.streamSeed(name) }

// Sub returns a child partition for the named subsystem, so a subsystem can
// partition its own randomness further without coordinating names globally.
func (p *Partition) Sub(name string) *Partition {
	return NewPartition(p.streamSeed(name))
}

// Zipf samples ranks in [0, n) with the YCSB zipfian skew (theta = 0.99),
// using the Gray et al. construction that YCSB itself uses.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *Rand
}

// NewZipf returns a zipfian sampler over [0, n).
func NewZipf(rng *Rand, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with non-positive n")
	}
	z := &Zipf{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank; rank 0 is the most popular.
func (z *Zipf) Next() int { return z.rank(z.rng.Float64()) }

func (z *Zipf) rank(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	// For u near 1, float rounding can push eta*u-eta+1 to exactly 1 and the
	// rank to n, outside the documented [0, n) range — clamp to n-1.
	rank := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}
