package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.47 || mean > 0.53 {
		t.Fatalf("Float64 mean = %f", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	if mean := sum / n; mean < 97 || mean > 103 {
		t.Fatalf("Exp mean = %f, want ~100", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(NewRand(1), 1000, 0.99)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 must be much hotter than rank 100.
	if counts[0] < 10*counts[100] {
		t.Fatalf("zipf not skewed: c0=%d c100=%d", counts[0], counts[100])
	}
	// Head (top 10%) should hold the majority of accesses.
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.5 {
		t.Fatalf("zipf head fraction = %f", float64(head)/n)
	}
}

func TestCDFValidation(t *testing.T) {
	if _, err := NewCDF("x", nil); err == nil {
		t.Error("empty CDF accepted")
	}
	if _, err := NewCDF("x", []CDFPoint{{100, 0.5}}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
	if _, err := NewCDF("x", []CDFPoint{{100, 0.5}, {100, 1.0}}); err == nil {
		t.Error("duplicate size accepted")
	}
	if _, err := NewCDF("x", []CDFPoint{{100, 0.9}, {200, 0.5}}); err == nil {
		t.Error("decreasing fraction accepted")
	}
	if _, err := NewCDF("x", []CDFPoint{{0, 1.0}}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestCDFSampleWithinSupport(t *testing.T) {
	for _, c := range AppProfiles() {
		r := NewRand(5)
		maxSize := c.points[len(c.points)-1].Size
		for i := 0; i < 10000; i++ {
			s := c.Sample(r)
			if s < 1 || s > maxSize {
				t.Fatalf("%s: sample %d outside (0, %d]", c.Name(), s, maxSize)
			}
		}
	}
}

func TestCDFEmpiricalMeanMatchesAnalytic(t *testing.T) {
	for _, c := range AppProfiles() {
		r := NewRand(11)
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		emp := sum / n
		ana := c.Mean()
		if math.Abs(emp-ana)/ana > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name(), emp, ana)
		}
	}
}

func TestAppProfilesAreHeavyTailed(t *testing.T) {
	// The Figure 8b traces are heavy-tailed: p99 must dwarf the median,
	// and Memcached must have the lightest tail of the set.
	var maxP99 int
	mcP99 := Memcached().Percentile(0.99)
	for _, c := range AppProfiles() {
		p50 := c.Percentile(0.50)
		p99 := c.Percentile(0.99)
		if p99 < 20*p50 {
			t.Errorf("%s: p99/p50 = %d/%d not heavy-tailed", c.Name(), p99, p50)
		}
		if p99 > maxP99 {
			maxP99 = p99
		}
	}
	if mcP99 >= maxP99 {
		t.Errorf("memcached p99 %d is not the lightest tail", mcP99)
	}
}

func TestGenerateLoadAccuracy(t *testing.T) {
	cfg := GenConfig{
		Nodes: 16, Load: 0.6, Bandwidth: 100,
		Sizes: Fixed(64), ReadFrac: 0.5, Count: 32000, Seed: 9,
	}
	ops, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != cfg.Count {
		t.Fatalf("generated %d ops", len(ops))
	}
	// Offered load per node: bytes sent / (horizon * bandwidth).
	perNode := make(map[int]int64)
	var horizon sim.Time
	for _, op := range ops {
		perNode[op.Src] += int64(op.Size)
		if op.Arrival > horizon {
			horizon = op.Arrival
		}
	}
	bitsPerPs := float64(cfg.Bandwidth) / 1000
	for n, bytes := range perNode {
		load := float64(bytes*8) / (float64(horizon) * bitsPerPs)
		if load < 0.45 || load > 0.75 {
			t.Errorf("node %d offered load %.3f, want ~0.6", n, load)
		}
	}
}

func TestGenerateSortedAndValid(t *testing.T) {
	ops, err := Generate(GenConfig{
		Nodes: 8, Load: 0.9, Bandwidth: 100,
		Sizes: Hadoop(), ReadFrac: 0.5, Count: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	for i, op := range ops {
		if op.Src == op.Dst {
			t.Fatal("self-directed op")
		}
		if op.Src < 0 || op.Src >= 8 || op.Dst < 0 || op.Dst >= 8 {
			t.Fatal("node out of range")
		}
		if i > 0 && op.Arrival < ops[i-1].Arrival {
			t.Fatal("ops not sorted")
		}
		if op.Index != i {
			t.Fatal("index not assigned")
		}
		if op.Read {
			reads++
		}
	}
	if f := float64(reads) / float64(len(ops)); f < 0.45 || f > 0.55 {
		t.Fatalf("read fraction %f", f)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Nodes: 1, Load: 0.5, Bandwidth: 100, Sizes: Fixed(64), Count: 10},
		{Nodes: 4, Load: 0, Bandwidth: 100, Sizes: Fixed(64), Count: 10},
		{Nodes: 4, Load: 1.5, Bandwidth: 100, Sizes: Fixed(64), Count: 10},
		{Nodes: 4, Load: 0.5, Bandwidth: 0, Sizes: Fixed(64), Count: 10},
		{Nodes: 4, Load: 0.5, Bandwidth: 100, Sizes: nil, Count: 10},
		{Nodes: 4, Load: 0.5, Bandwidth: 100, Sizes: Fixed(64), Count: 0},
		{Nodes: 4, Load: 0.5, Bandwidth: 100, Sizes: Fixed(64), ReadFrac: 2, Count: 10},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestYCSBFractions(t *testing.T) {
	for _, w := range []YCSBWorkload{YCSBA, YCSBB, YCSBF} {
		g := NewYCSB(w, 10000, 3)
		updates := 0
		const n = 20000
		for i := 0; i < n; i++ {
			op := g.Next()
			if op.Key < 0 || op.Key >= 10000 {
				t.Fatalf("%v: key %d", w, op.Key)
			}
			if op.Update {
				updates++
			}
		}
		got := float64(updates) / n
		want := w.WriteFraction()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v: update fraction %.3f, want %.2f", w, got, want)
		}
	}
}

// Property: CDF sampling is monotone in the uniform draw (inverse
// transform) — verified indirectly: percentiles are monotone.
func TestPercentileMonotoneProperty(t *testing.T) {
	c := Hadoop()
	f := func(a, b uint8) bool {
		qa := float64(a) / 256
		qb := float64(b) / 256
		pa, pb := c.Percentile(qa), c.Percentile(qb)
		if qa <= qb {
			return pa <= pb
		}
		return pb <= pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRand(123)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}
