package workload

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Op is one remote-memory operation in a trace.
type Op struct {
	// Index is the op's position in the trace.
	Index int
	// Src is the issuing (compute) node; Dst is the remote (memory) node.
	Src, Dst int
	// Size is the data size in bytes: the RRES size for reads, the WREQ
	// payload for writes.
	Size int
	// Read distinguishes reads (data flows Dst->Src after a small request
	// Src->Dst) from writes (data flows Src->Dst).
	Read bool
	// Arrival is when the op is issued at Src.
	Arrival sim.Time
}

// GenConfig describes an open-loop all-to-all trace at a target load, the
// setup of the paper's §4.3 simulations.
type GenConfig struct {
	// Nodes in the cluster; destinations are uniform over the other nodes.
	Nodes int
	// Load is the per-link offered load in (0, 1], counted on data bytes
	// (the paper's convention: an 8 B RREQ does not count toward load).
	Load float64
	// Bandwidth of each link.
	Bandwidth sim.Gbps
	// Sizes samples data sizes.
	Sizes SizeDist
	// ReadFrac is the fraction of operations that are reads (the rest are
	// writes). Figure 8a sweeps this via the W:R mixtures.
	ReadFrac float64
	// Count is the total number of operations to generate.
	Count int
	// Seed makes the trace reproducible.
	Seed uint64
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("workload: need >= 2 nodes, got %d", c.Nodes)
	}
	if c.Load <= 0 || c.Load > 1 {
		return fmt.Errorf("workload: load %f out of (0,1]", c.Load)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("workload: bandwidth %d", c.Bandwidth)
	}
	if c.Sizes == nil {
		return fmt.Errorf("workload: nil size distribution")
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("workload: read fraction %f", c.ReadFrac)
	}
	if c.Count <= 0 {
		return fmt.Errorf("workload: count %d", c.Count)
	}
	return nil
}

// Generate produces the trace, sorted by arrival time. Each node runs an
// independent Poisson process whose rate makes its outgoing data bytes
// consume Load of its link.
//
// Randomness is partitioned per subsystem and per node (arrival process,
// destination choice, size sampler, read/write coin each draw from their own
// stream), so e.g. swapping the size distribution leaves each node's
// destination and read/write sequence unchanged for the same seed. (Arrival
// times still rescale with the distribution's mean — the load-targeting gap
// is meanGap = Sizes.Mean()*8/(Load*bw) — but the underlying exponential
// draws are identical.)
func Generate(cfg GenConfig) ([]Op, error) {
	return GeneratePartitioned(NewPartition(cfg.Seed), cfg)
}

// GeneratePartitioned is Generate drawing from an existing Partition
// (cfg.Seed is ignored); the scenario runner uses it to give each load phase
// an isolated sub-partition of one scenario seed.
func GeneratePartitioned(part *Partition, cfg GenConfig) ([]Op, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Mean inter-arrival per node: size_bits / (load * bandwidth_bits_per_ps).
	bitsPerPs := float64(cfg.Bandwidth) / 1000.0
	meanGap := (cfg.Sizes.Mean() * 8) / (cfg.Load * bitsPerPs) // picoseconds

	perNode := cfg.Count / cfg.Nodes
	if perNode == 0 {
		perNode = 1
	}
	ops := make([]Op, 0, cfg.Count)
	for n := 0; n < cfg.Nodes && len(ops) < cfg.Count; n++ {
		arrivals := part.StreamN("arrival", n)
		dsts := part.StreamN("dst", n)
		sizes := part.StreamN("size", n)
		rw := part.StreamN("rw", n)
		t := 0.0
		for k := 0; k < perNode && len(ops) < cfg.Count; k++ {
			t += arrivals.Exp(meanGap)
			dst := dsts.Intn(cfg.Nodes - 1)
			if dst >= n {
				dst++
			}
			ops = append(ops, Op{
				Src:     n,
				Dst:     dst,
				Size:    cfg.Sizes.Sample(sizes),
				Read:    rw.Float64() < cfg.ReadFrac,
				Arrival: sim.Time(t),
			})
		}
	}
	sortOps(ops)
	for i := range ops {
		ops[i].Index = i
	}
	return ops, nil
}

// sortOps orders by (arrival, src, dst) for deterministic replay.
func sortOps(ops []Op) {
	sort.Slice(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// YCSBWorkload identifies the YCSB mixes used in Figures 6-7.
type YCSBWorkload int

const (
	YCSBA YCSBWorkload = iota // 50% reads, 50% writes
	YCSBB                     // 95% reads, 5% writes
	YCSBF                     // 67% reads, 33% read-modify-writes
)

// String names the workload.
func (w YCSBWorkload) String() string {
	switch w {
	case YCSBA:
		return "YCSB-A"
	case YCSBB:
		return "YCSB-B"
	case YCSBF:
		return "YCSB-F"
	}
	return "YCSB-?"
}

// WriteFraction reports the update fraction of the mix (F's RMW counts as a
// write for traffic purposes, per the paper: "A: 50% write, B: 5% write,
// F: 33% write").
func (w YCSBWorkload) WriteFraction() float64 {
	switch w {
	case YCSBA:
		return 0.50
	case YCSBB:
		return 0.05
	case YCSBF:
		return 0.33
	}
	return 0
}

// KVOp is one key-value operation.
type KVOp struct {
	Key    int
	Update bool
}

// YCSBGen generates zipfian key-value operations.
type YCSBGen struct {
	workload YCSBWorkload
	zipf     *Zipf
	rng      *Rand
}

// NewYCSB returns a generator over nkeys keys with the standard zipfian
// skew.
func NewYCSB(w YCSBWorkload, nkeys int, seed uint64) *YCSBGen {
	rng := NewRand(seed)
	return &YCSBGen{workload: w, zipf: NewZipf(rng.Split(), nkeys, 0.99), rng: rng}
}

// Next returns the next operation.
func (g *YCSBGen) Next() KVOp {
	return KVOp{
		Key:    g.zipf.Next(),
		Update: g.rng.Float64() < g.workload.WriteFraction(),
	}
}
