// Package trace serializes workload traces as line-oriented text so that
// cmd/tracegen and cmd/edmsim can exchange them, mirroring the paper
// artifact's trace-generator / simulator split (§A.5.2).
//
// Format: one op per line, '#' comments allowed:
//
//	<arrival_ps> <src> <dst> <size_bytes> <R|W>
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Write renders ops to w.
func Write(w io.Writer, ops []workload.Op) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# arrival_ps src dst size_bytes R|W"); err != nil {
		return err
	}
	for _, op := range ops {
		kind := 'W'
		if op.Read {
			kind = 'R'
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %c\n",
			int64(op.Arrival), op.Src, op.Dst, op.Size, kind); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace, assigning sequential indices.
func Read(r io.Reader) ([]workload.Op, error) {
	var ops []workload.Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var arrival int64
		var src, dst, size int
		var kind string
		if _, err := fmt.Sscanf(line, "%d %d %d %d %s", &arrival, &src, &dst, &size, &kind); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if arrival < 0 || src < 0 || dst < 0 || size <= 0 {
			return nil, fmt.Errorf("trace: line %d: invalid fields", lineNo)
		}
		var read bool
		switch kind {
		case "R":
			read = true
		case "W":
			read = false
		default:
			return nil, fmt.Errorf("trace: line %d: kind %q", lineNo, kind)
		}
		ops = append(ops, workload.Op{
			Index: len(ops), Src: src, Dst: dst, Size: size,
			Read: read, Arrival: sim.Time(arrival),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
