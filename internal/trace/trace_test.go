package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	in := []workload.Op{
		{Index: 0, Src: 1, Dst: 2, Size: 64, Read: true, Arrival: 0},
		{Index: 1, Src: 3, Dst: 0, Size: 1500, Read: false, Arrival: 2560 * sim.Picosecond},
		{Index: 2, Src: 0, Dst: 9, Size: 1 << 20, Read: true, Arrival: sim.Microsecond},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d ops", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("op %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	src := "# header\n\n100 0 1 64 R\n# mid comment\n200 1 0 128 W\n"
	ops, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || !ops[0].Read || ops[1].Read {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"abc 0 1 64 R",
		"100 0 1 64 X",
		"100 0 1 0 R",
		"-1 0 1 64 R",
		"100 0 1 R",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestGeneratedTraceRoundTrip(t *testing.T) {
	ops, err := workload.Generate(workload.GenConfig{
		Nodes: 8, Load: 0.5, Bandwidth: 100,
		Sizes: workload.Memcached(), ReadFrac: 0.5, Count: 500, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		if out[i] != ops[i] {
			t.Fatalf("op %d mismatch", i)
		}
	}
}
