package telemetry

import "sync"

// Stage labels one event in an operation's life. The vocabulary follows
// the reliable layer's op lifecycle; StageServe is the server-side record.
type Stage uint8

const (
	// StageEnqueue: the op was assigned its message ID.
	StageEnqueue Stage = iota + 1
	// StageSend: the first transmission left the pipe.
	StageSend
	// StageRetry: a retransmission fired (Arg carries the attempt number).
	StageRetry
	// StageComplete: the matching response arrived (Arg carries the
	// end-to-end latency in nanoseconds when a clock is wired).
	StageComplete
	// StageTimeout: the retry budget ran out (Arg carries the attempts).
	StageTimeout
	// StageServe: the server executed the request (Arg carries the handle
	// duration in nanoseconds when a clock is wired).
	StageServe
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageEnqueue:
		return "enqueue"
	case StageSend:
		return "send"
	case StageRetry:
		return "retry"
	case StageComplete:
		return "complete"
	case StageTimeout:
		return "timeout"
	case StageServe:
		return "serve"
	}
	return "stage?"
}

// OpRecord is one trace-ring event. Records are fixed-size and
// pointer-free; Op is the wire message kind (uint8 to keep this package
// dependency-free), TS is a caller-supplied timestamp in nanoseconds (wall
// or virtual — the ring does not care), and Arg is stage-specific.
type OpRecord struct {
	Seq   uint64 `json:"seq"`
	ID    uint64 `json:"id"`
	TS    int64  `json:"ts_ns"`
	Stage Stage  `json:"stage"`
	Op    uint8  `json:"op"`
	Arg   uint64 `json:"arg"`
}

// TraceRing is a bounded ring of per-op event records: enough to explain
// why an individual op was slow (how many retries, where the time went)
// without unbounded logging. Recording into a nil ring is a no-op, so
// call sites stay unconditional; a mutex (not a lock-free slot claim)
// keeps whole records torn-write-free under the race detector. The ring
// allocates only at construction.
type TraceRing struct {
	mu   sync.Mutex
	recs []OpRecord
	next uint64 // total records ever written; next slot is next % len
}

// NewTraceRing builds a ring holding the last n records (minimum 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{recs: make([]OpRecord, n)}
}

// Record appends one event, overwriting the oldest once full. The Seq
// field is assigned here (global arrival order).
func (t *TraceRing) Record(id uint64, stage Stage, op uint8, ts int64, arg uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	rec := OpRecord{Seq: t.next, ID: id, TS: ts, Stage: stage, Op: op, Arg: arg}
	t.recs[t.next%uint64(len(t.recs))] = rec
	t.next++
	t.mu.Unlock()
}

// Len reports how many records the ring currently holds.
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.recs)) {
		return int(t.next)
	}
	return len(t.recs)
}

// SnapshotRecords returns the held records oldest-first.
func (t *TraceRing) SnapshotRecords() []OpRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.recs))
	out := make([]OpRecord, 0, n)
	start := uint64(0)
	if t.next > n {
		start = t.next - n
	}
	for s := start; s < t.next; s++ {
		out = append(out, t.recs[s%n])
	}
	return out
}
