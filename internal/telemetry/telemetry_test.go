package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestBucketLayout: every value lands in a bucket whose bounds contain it,
// bounds tile the space without gaps, and relative width is <= 1/16.
func TestBucketLayout(t *testing.T) {
	vals := []uint64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		lo, hi := BucketBounds(i)
		if v < lo || (hi != 0 && v >= hi) { // hi==0: top bucket wrapped past MaxUint64
			if !(hi == 0 && v >= lo) {
				t.Errorf("value %d landed in bucket %d [%d, %d)", v, i, lo, hi)
			}
		}
	}
	prevHi := uint64(0)
	for i := 0; i < NumHistBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if lo >= histSub && hi != 0 {
			if width := hi - lo; float64(width)/float64(lo) > 1.0/16+1e-12 {
				t.Fatalf("bucket %d [%d,%d) relative width %f > 1/16", i, lo, hi, float64(hi-lo)/float64(lo))
			}
		}
		prevHi = hi
	}
}

// TestHistogramQuantilesMatchSummarize is the property test: on the same
// samples, histogram-reported p50/p90/p99 agree with stats.Summarize
// within the bucket resolution (1/16 relative, interpolation included),
// across several seeded distributions.
func TestHistogramQuantilesMatchSummarize(t *testing.T) {
	part := workload.NewPartition(0xED31)
	dists := []struct {
		name string
		gen  func(r *workload.Rand) float64
	}{
		{"uniform", func(r *workload.Rand) float64 { return float64(r.Intn(2_000_000)) }},
		{"exponential", func(r *workload.Rand) float64 { return r.Exp(50_000) }},
		{"bimodal", func(r *workload.Rand) float64 {
			if r.Float64() < 0.9 {
				return 2_000 + float64(r.Intn(500))
			}
			return 1_000_000 + float64(r.Intn(200_000))
		}},
		{"small", func(r *workload.Rand) float64 { return float64(r.Intn(12)) }},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := part.Stream(d.name)
			var h Histogram
			samples := make([]float64, 0, 20_000)
			for i := 0; i < 20_000; i++ {
				v := math.Floor(d.gen(r))
				samples = append(samples, v)
				h.Observe(int64(v))
			}
			want := stats.Summarize(samples)
			snap := h.Snapshot()
			if snap.Count != uint64(len(samples)) {
				t.Fatalf("count %d, want %d", snap.Count, len(samples))
			}
			check := func(name string, got, want float64) {
				// One bucket of slack on each side: 1/16 relative plus a
				// one-unit absolute floor for the exact small buckets.
				tol := want/16 + 1.5
				if math.Abs(got-want) > tol {
					t.Errorf("%s: histogram %f vs Summarize %f (tolerance %f)", name, got, want, tol)
				}
			}
			check("p50", snap.P50, want.P50)
			check("p90", snap.P90, want.P90)
			check("p99", snap.P99, want.P99)
			check("p99 via Quantile", h.Quantile(0.99), want.P99)
			if snap.Min > want.Min+1 || snap.Min < want.Min-want.Min/16-1 {
				t.Errorf("min estimate %f vs %f", snap.Min, want.Min)
			}
			if snap.Max < want.Max || snap.Max > want.Max+want.Max/8+2 {
				t.Errorf("max estimate %f vs %f", snap.Max, want.Max)
			}
		})
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if snap := h.Snapshot(); snap.Count != 1 || snap.Sum != 0 {
		t.Fatalf("negative observation: %+v", snap)
	}
}

func TestRegistrySharingAndNil(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`x_total{kind="a"}`)
	b := r.Counter(`x_total{kind="a"}`)
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if got := r.Snapshot().Counters[`x_total{kind="a"}`]; got != 1 {
		t.Fatalf("snapshot counter = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	var nilReg *Registry
	if c := nilReg.Counter("y"); c == nil {
		t.Fatal("nil registry must hand out working metrics")
	}
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("y").Observe(1)
	r.Gauge(`x_total{kind="a"}`) // same name, different kind: panics
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ops_total{op="read"}`).Add(3)
	r.Counter(`ops_total{op="write"}`).Add(1)
	r.Gauge("inflight").Set(2)
	h := r.Histogram(`lat_ns{op="read"}`)
	h.Observe(10)
	h.Observe(100)
	h.Observe(100000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE inflight gauge\ninflight 2\n",
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{op="read",le="11"} 1`,
		`lat_ns_bucket{op="read",le="+Inf"} 3`,
		`lat_ns_sum{op="read"} 100110`,
		`lat_ns_count{op="read"} 3`,
		"# TYPE ops_total counter\n",
		`ops_total{op="read"} 3`,
		`ops_total{op="write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative:\n%s", out)
		}
		last = n
	}
}

func TestTraceRing(t *testing.T) {
	var nilRing *TraceRing
	nilRing.Record(1, StageSend, 0, 0, 0) // must not panic
	if nilRing.Len() != 0 || nilRing.SnapshotRecords() != nil {
		t.Fatal("nil ring must be empty")
	}

	ring := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		ring.Record(uint64(i), StageSend, 5, int64(i*10), 0)
	}
	recs := ring.SnapshotRecords()
	if len(recs) != 4 || ring.Len() != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.ID != uint64(i+2) || rec.Seq != uint64(i+2) {
			t.Fatalf("record %d = %+v, want ID/Seq %d (oldest-first after wrap)", i, rec, i+2)
		}
	}
	if got := recs[0].Stage.String(); got != "send" {
		t.Fatalf("stage name %q", got)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ring.Record(uint64(g), StageRetry, 1, int64(i), uint64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := ring.Len(); got != 64 {
		t.Fatalf("ring length %d, want 64", got)
	}
}
