package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func fetch(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestAdminMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_ops_total").Add(9)
	reg.Histogram(`admin_lat_ns{op="read"}`).Observe(1234)
	ring := NewTraceRing(8)
	ring.Record(3, StageComplete, 5, 42, 1234)

	srv := httptest.NewServer(AdminMux(reg, ring))
	defer srv.Close()

	if got := fetch(t, srv, "/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	metrics := fetch(t, srv, "/metrics")
	for _, want := range []string{
		"admin_ops_total 9",
		`admin_lat_ns_count{op="read"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(fetch(t, srv, "/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["admin_ops_total"] != 9 {
		t.Errorf("/metrics.json counters: %+v", snap.Counters)
	}

	var recs []OpRecord
	if err := json.Unmarshal([]byte(fetch(t, srv, "/debug/traceops")), &recs); err != nil {
		t.Fatalf("/debug/traceops: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != 3 || recs[0].Arg != 1234 {
		t.Errorf("/debug/traceops = %+v", recs)
	}

	if vars := fetch(t, srv, "/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if idx := fetch(t, srv, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

// TestTraceHandlerNilRing: the route stays mountable with tracing off.
func TestTraceHandlerNilRing(t *testing.T) {
	srv := httptest.NewServer(AdminMux(NewRegistry(), nil))
	defer srv.Close()
	if got := strings.TrimSpace(fetch(t, srv, "/debug/traceops")); got != "[]" {
		t.Errorf("/debug/traceops with nil ring = %q, want []", got)
	}
}
