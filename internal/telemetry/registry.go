package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric. name is the full registered form
// (`base{label="v",...}` or bare `base`); base and labels are the split
// parts the Prometheus encoder works from.
type entry struct {
	name   string
	base   string
	labels string // inside the braces, without them; "" if none
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named metric namespace. Registration (Counter, Gauge,
// Histogram) is mutex-guarded and string-keyed — setup-time work; the
// returned metric pointers are what hot paths touch. Registering the same
// name twice returns the same metric, so components can share counters
// (e.g. every session of one server aggregating into one family).
//
// A nil *Registry is valid everywhere and returns unregistered metrics:
// components that are not wired to an export surface still count, and
// their Stats() snapshots still work.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// splitName separates `base{labels}` into its parts.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// register returns the entry for name, creating it with kind k. A name
// reused with a different kind panics: that is a wiring bug, caught at
// setup time.
func (r *Registry) register(name string, k metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: %q re-registered with a different kind", name))
		}
		return e
	}
	base, labels := splitName(name)
	e := &entry{name: name, base: base, labels: labels, kind: k}
	switch k {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	}
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name (created on first
// use). name may carry Prometheus-style labels: `wire_sent_total{kind="RREQ"}`.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.register(name, kindCounter).c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.register(name, kindGauge).g
}

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	return r.register(name, kindHistogram).h
}

// sorted snapshots the entry list ordered by (base, labels), the stable
// order both exposition forms use.
func (r *Registry) sorted() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one `# TYPE` line per family, then its series). Histograms emit
// cumulative `_bucket` series at each non-empty bucket's upper bound plus
// `+Inf`, with `_sum` and `_count`. Latency histograms are exported in
// their native nanoseconds (the metric names say so) rather than rescaled
// to seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.sorted()
	lastBase := ""
	for _, e := range entries {
		if e.base != lastBase {
			lastBase = e.base
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.base, typeName(e.kind)); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.g.Load())
		case kindHistogram:
			err = writePromHistogram(w, e)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func typeName(k metricKind) string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "counter"
}

// series renders base+suffix with labels, splicing extra (e.g. `le="…"`)
// into the label set.
func series(base, suffix, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return base + suffix
	}
	return base + suffix + "{" + all + "}"
}

func writePromHistogram(w io.Writer, e *entry) error {
	var cum uint64
	for i := 0; i < NumHistBuckets; i++ {
		c := e.h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		_, hi := BucketBounds(i)
		le := `le="` + strconv.FormatUint(hi, 10) + `"`
		if _, err := fmt.Fprintf(w, "%s %d\n", series(e.base, "_bucket", e.labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", series(e.base, "_bucket", e.labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", series(e.base, "_sum", e.labels, ""), e.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series(e.base, "_count", e.labels, ""), cum)
	return err
}

// Snapshot is the registry's JSON form: full registered names mapped to
// values, histograms as their summary form. encoding/json renders map keys
// sorted, so marshaling a snapshot is deterministic.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.c.Load()
		case kindGauge:
			s.Gauges[e.name] = e.g.Load()
		case kindHistogram:
			s.Histograms[e.name] = e.h.Snapshot()
		}
	}
	return s
}
