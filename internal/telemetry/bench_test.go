// Benchmarks for the telemetry primitives themselves: every number here
// is paid once per op on an instrumented hot path, so each must be a few
// nanoseconds and allocation-free. Run with:
//
//	go test -bench=. -benchmem ./internal/telemetry
package telemetry

import "testing"

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)&0xffff + 1)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = v<<1&0xffff + 1
		}
	})
}

func BenchmarkTraceRingRecord(b *testing.B) {
	r := NewTraceRing(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(uint64(i), StageComplete, 2, int64(i), 0)
	}
}
