// Package telemetry is the repo's allocation-free, dependency-free metrics
// core: atomic counters, gauges and fixed-size log-bucketed latency
// histograms behind a named registry, with a Prometheus-text exposition
// encoder and a JSON snapshot form (registry.go), a bounded per-op trace
// ring (ring.go), and an HTTP admin surface (http.go).
//
// Two properties shape the design:
//
//   - Hot-path safety. Recording is a handful of atomic adds on
//     pre-registered metric pointers — no locks, no allocation, no map
//     lookups. Registry lookups (string-keyed, mutex-guarded) belong at
//     setup time only; edmlint's hotpath analyzer flags them inside
//     //edmlint:hotpath functions.
//
//   - Clock agnosticism. The package never reads a clock: callers pass
//     timestamps and durations (int64 nanoseconds), so deterministic
//     packages can observe virtual-clock latencies without tripping the
//     walltime analyzer, and seeded loopback runs stay byte-reproducible
//     with telemetry enabled.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Registry.Counter returns a named, exported one.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight operations,
// window occupancy). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: values 0..15 get exact unit buckets; above that,
// each power-of-two octave splits into histSub linear sub-buckets, so the
// relative bucket width — and therefore the worst-case quantile error — is
// 1/histSub (6.25%). The layout covers all of uint64, so there is no
// overflow bucket to saturate.
const (
	histSub     = 16
	histSubBits = 4
	// NumHistBuckets is the fixed bucket count: histSub exact unit buckets
	// plus histSub per octave for exponents histSubBits..63.
	NumHistBuckets = histSub * (64 - histSubBits + 1)
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	s := uint(exp - histSubBits)
	return histSub*(int(s)+1) + int((v>>s)&(histSub-1))
}

// BucketBounds reports bucket i's half-open value range [lo, hi).
func BucketBounds(i int) (lo, hi uint64) {
	if i < histSub {
		return uint64(i), uint64(i) + 1
	}
	s := uint(i/histSub - 1)
	m := uint64(i % histSub)
	lo = (histSub + m) << s
	return lo, lo + 1<<s
}

// Histogram is a fixed-size log-bucketed distribution of non-negative
// int64 observations (canonically latencies in nanoseconds). Observing is
// three atomic adds; negative observations clamp to zero. The zero value is
// ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumHistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bucketIndex(uint64(v))].Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running total of observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// HistSnapshot is a histogram's point-in-time summary. Min and Max are
// bucket-resolution estimates (the bounds of the extreme non-empty
// buckets), and the quantiles carry the layout's 1/16 relative error.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram. Concurrent observations may land
// between the count and bucket reads; the snapshot is internally consistent
// to within those in-flight updates.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [NumHistBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := HistSnapshot{Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(total)
	for i, c := range counts {
		if c > 0 {
			lo, _ := BucketBounds(i)
			s.Min = float64(lo)
			break
		}
	}
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			_, hi := BucketBounds(i)
			s.Max = float64(hi)
			break
		}
	}
	s.P50 = quantile(&counts, total, 0.50)
	s.P90 = quantile(&counts, total, 0.90)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the live buckets.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [NumHistBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return quantile(&counts, total, q)
}

// quantile mirrors stats.Percentile's rank convention (pos = q*(n-1)) so
// histogram-reported percentiles are comparable to stats.Summarize rows on
// the same samples, then interpolates linearly inside the landing bucket.
func quantile(counts *[NumHistBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(total-1) // fractional rank, 0-indexed
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		// Ranks [cum, cum+c) live in bucket i.
		if pos < float64(cum+c) {
			lo, hi := BucketBounds(i)
			frac := (pos - float64(cum) + 0.5) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	// pos == total-1 landed past the loop due to float rounding: the max.
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			_, hi := BucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}
