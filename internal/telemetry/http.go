package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry's JSON snapshot form.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// TraceHandler serves a trace ring's records oldest-first as JSON. A nil
// ring serves an empty list, so the route can be mounted unconditionally.
func TraceHandler(t *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := t.SnapshotRecords()
		if recs == nil {
			recs = []OpRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(recs)
	})
}

// AdminMux assembles the admin endpoint a daemon mounts on its -metrics
// address:
//
//	/metrics          Prometheus text exposition
//	/metrics.json     JSON snapshot of the same registry
//	/healthz          liveness probe ("ok")
//	/debug/traceops   the op trace ring, oldest-first
//	/debug/vars       expvar (cmdline, memstats)
//	/debug/pprof/*    the standard profiling surface
//
// The pprof handlers are mounted explicitly rather than via the package's
// DefaultServeMux side effect, so daemons that never enable -metrics
// expose nothing.
func AdminMux(r *Registry, t *TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/traceops", TraceHandler(t))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
