package edm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/memctl"
	"repro/internal/workload"
)

// TestConcurrentReadsGetOwnData is the regression test for a circuit-order
// bug: the memory node must emit chunks in exactly grant-issue order or the
// switch's per-ingress circuit FIFO forwards one requester's data to
// another (message ids collide across hosts, so the wrong host accepts it).
// Every reader gets distinct bytes; any cross-delivery fails the test.
func TestConcurrentReadsGetOwnData(t *testing.T) {
	const readers = 6
	cfg := DefaultConfig(readers + 1)
	f := New(cfg)
	// Realistic DRAM timing matters: the bug only bites when reads spend
	// variable time in DRAM while later grants pile up.
	f.AttachMemory(readers, memctl.New(memctl.DefaultConfig()))
	mem := f.Host(readers).Memory()
	for i := 0; i < readers; i++ {
		if _, err := mem.Write(uint64(i)*4096, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 10
	done := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < readers; i++ {
			i := i
			f.Host(i).Read(readers, uint64(i)*4096, 64, func(d []byte, err error) {
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				for _, b := range d {
					if b != byte(i+1) {
						t.Errorf("reader %d received byte %d: cross-circuit delivery", i, b)
						return
					}
				}
				done++
			})
		}
		f.Run()
	}
	if done != readers*rounds {
		t.Fatalf("completed %d of %d", done, readers*rounds)
	}
}

// TestSpinlockMutualExclusion drives the full lock protocol from the locks
// example: N nodes contend via remote CAS for a lock word, increment a
// shared counter read-modify-write style in their critical sections, and
// release via swap. Lost updates mean mutual exclusion (and hence EDM's
// ordering or atomicity) is broken.
func TestSpinlockMutualExclusion(t *testing.T) {
	const (
		nodes      = 4
		increments = 5
		memNode    = nodes
		lockAddr   = 0
		ctrAddr    = 64
	)
	f := New(DefaultConfig(nodes + 1))
	f.AttachMemory(memNode, memctl.New(memctl.DefaultConfig()))

	var acquire func(n, left int)
	critical := func(n, left int) {
		f.Host(n).Read(memNode, ctrAddr, 8, func(data []byte, err error) {
			if err != nil {
				t.Errorf("node %d read: %v", n, err)
				return
			}
			v := binary.LittleEndian.Uint64(data)
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, v+1)
			f.Host(n).Write(memNode, ctrAddr, buf, func(err error) {
				if err != nil {
					t.Errorf("node %d write: %v", n, err)
					return
				}
				f.Host(n).RMW(memNode, lockAddr, memctl.OpSwap, []uint64{0}, func(_ []byte, err error) {
					if err != nil {
						t.Errorf("node %d unlock: %v", n, err)
						return
					}
					if left > 1 {
						acquire(n, left-1)
					}
				})
			})
		})
	}
	acquire = func(n, left int) {
		f.Host(n).RMW(memNode, lockAddr, memctl.OpCAS, []uint64{0, uint64(n) + 1},
			func(res []byte, err error) {
				if err != nil {
					t.Errorf("node %d cas: %v", n, err)
					return
				}
				if res[0] == 1 {
					critical(n, left)
					return
				}
				acquire(n, left)
			})
	}
	for n := 0; n < nodes; n++ {
		acquire(n, increments)
	}
	f.Run()
	data, _, err := f.Host(memNode).Memory().Read(ctrAddr, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint64(data)
	if got != nodes*increments {
		t.Fatalf("counter = %d, want %d: mutual exclusion violated", got, nodes*increments)
	}
}

// TestOutOfRangeReadReturnsZeros: a read beyond the memory size cannot be
// NACKed by the fabric; the memory node responds with zero-filled data of
// the demanded size so the switch's circuit accounting stays aligned.
func TestOutOfRangeReadReturnsZeros(t *testing.T) {
	f := New(DefaultConfig(2))
	f.AttachMemory(1, fastMem())
	size := f.Host(1).Memory().Size()
	data, _, err := f.ReadSync(0, 1, size+4096, 64)
	if err != nil {
		t.Fatalf("out-of-range read: %v", err)
	}
	if len(data) != 64 {
		t.Fatalf("got %d bytes", len(data))
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("non-zero bytes for out-of-range read")
		}
	}
	// A good read right after must still route correctly.
	if _, err := f.Host(1).Memory().Write(0, bytes.Repeat([]byte{0xee}, 64)); err != nil {
		t.Fatal(err)
	}
	good, _, err := f.ReadSync(0, 1, 0, 64)
	if err != nil || good[0] != 0xee {
		t.Fatalf("subsequent read broken: %v", err)
	}
}

// TestRandomizedMixedTraffic floods the fabric with a random mixture of
// reads, writes and RMWs from several hosts and checks that every
// operation completes with its own data (per-op tagged addresses).
func TestRandomizedMixedTraffic(t *testing.T) {
	const hosts = 4
	cfg := DefaultConfig(hosts + 1)
	f := New(cfg)
	f.AttachMemory(hosts, memctl.New(memctl.DefaultConfig()))
	mem := f.Host(hosts).Memory()

	rng := workload.NewRand(77)
	type expect struct {
		host int
		addr uint64
		val  byte
		size int
	}
	var pending []expect
	for i := 0; i < 120; i++ {
		h := rng.Intn(hosts)
		addr := uint64(i) * 256
		val := byte(rng.Intn(255) + 1)
		size := 8 << rng.Intn(5) // 8..128
		switch rng.Intn(3) {
		case 0: // seeded read
			if _, err := mem.Write(addr, bytes.Repeat([]byte{val}, size)); err != nil {
				t.Fatal(err)
			}
			e := expect{h, addr, val, size}
			f.Host(h).Read(hosts, addr, size, func(d []byte, err error) {
				if err != nil {
					t.Errorf("read %v: %v", e, err)
					return
				}
				for _, b := range d {
					if b != e.val {
						t.Errorf("read %v got byte %d", e, b)
						return
					}
				}
			})
		case 1: // write then verify at drain
			e := expect{h, addr, val, size}
			pending = append(pending, e)
			f.Host(h).Write(hosts, addr, bytes.Repeat([]byte{val}, size), func(err error) {
				if err != nil {
					t.Errorf("write %v: %v", e, err)
				}
			})
		case 2: // fetch-add on a fresh word
			f.Host(h).RMW(hosts, addr, memctl.OpFetchAdd, []uint64{uint64(val)}, func(d []byte, err error) {
				if err != nil {
					t.Errorf("rmw: %v", err)
				}
			})
		}
	}
	f.Run()
	for _, e := range pending {
		got, _, err := mem.Read(e.addr, e.size)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != e.val {
				t.Errorf("write %v not applied correctly (got %d)", e, b)
				break
			}
		}
	}
	hs := f.Host(0).Stats()
	if hs.Timeouts != 0 {
		t.Errorf("timeouts under mixed traffic: %d", hs.Timeouts)
	}
}
