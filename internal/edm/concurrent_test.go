package edm

import (
	"errors"
	"testing"

	"repro/internal/memctl"
	"repro/internal/sim"
)

// TestBidirectionalPairNoIDCollision is the regression test for the
// message-ID collision between the two directions of a pair: host A's
// writes to B and B's reads from A both land in scheduler pair (A->B) and
// in A's send table under {B, id} — with IDs allocated by two different
// hosts' counters. Before the ID space was split by parity (writes even,
// reads odd), both started at 0, so the scheduler rejected the read demand
// as a duplicate and the memory node's RRES state overwrote the write's,
// stranding ops until timeout.
func TestBidirectionalPairNoIDCollision(t *testing.T) {
	f := New(DefaultConfig(4))
	for i := 0; i < 4; i++ {
		f.AttachMemory(i, memctl.New(memctl.DefaultConfig()))
	}
	const each = 30
	done, failed := 0, 0
	for i := 0; i < each; i++ {
		at := sim.Time(i) * 100 * sim.Nanosecond
		// A(0) writes to B(1) while B(1) reads from A(0), interleaved so
		// both directions of pair (0,1) are concurrently active.
		f.Engine.At(at, func() {
			f.Host(0).Write(1, 0, make([]byte, 64), func(err error) {
				done++
				if err != nil {
					failed++
				}
			})
		})
		f.Engine.At(at+10*sim.Nanosecond, func() {
			f.Host(1).Read(0, 4096, 64, func(_ []byte, err error) {
				done++
				if err != nil {
					failed++
				}
			})
		})
	}
	f.Run()
	if done != 2*each || failed != 0 {
		t.Fatalf("completed %d of %d, failed %d", done, 2*each, failed)
	}
	if rej := f.Switch().Stats().RejectedNotify; rej != 0 {
		t.Fatalf("%d notifications rejected (ID spaces collide)", rej)
	}
	var timeouts uint64
	for i := 0; i < 4; i++ {
		timeouts += f.Host(i).Stats().Timeouts
	}
	if timeouts != 0 {
		t.Fatalf("%d reads timed out", timeouts)
	}
}

// TestConcurrentReadsCircuitOrder is the regression test for circuit-FIFO
// misalignment: the switch used to record a grant's ingress->egress circuit
// at issue time, but an implicit first-RRES grant (the forwarded RREQ,
// SwForwardCycles) and an explicit /G/ (SwGenGrantCycles) reach the data
// sender with different delays, so its chunks could leave in the opposite
// of issue order and be forwarded to the wrong egress port. With the
// scheduler clocked at the PCS period the pipeline spacing happens to
// exceed the skew, so the test runs the 3 GHz ASIC scheduler clock of
// §4.3, where back-to-back grants to one source sit inside the skew
// window. Every read must return its own data.
func TestConcurrentReadsCircuitOrder(t *testing.T) {
	const ports = 8
	cfg := DefaultConfig(ports)
	cfg.SchedClockPeriod = 333 * sim.Picosecond
	f := New(cfg)
	mem := memctl.New(memctl.DefaultConfig())
	f.AttachMemory(0, mem)
	// Give each reader a distinct pattern at a distinct address.
	for r := 1; r < ports; r++ {
		buf := make([]byte, 256)
		for i := range buf {
			buf[i] = byte(r)
		}
		if _, err := mem.Write(uint64(r)*4096, buf); err != nil {
			t.Fatal(err)
		}
	}
	done, wrong, failed := 0, 0, 0
	const rounds = 20
	for k := 0; k < rounds; k++ {
		for r := 1; r < ports; r++ {
			r := r
			// Alternate tiny (8 B) and multi-chunk (256 B) reads issued
			// back to back: an 8 B first chunk releases the scheduler's
			// source port in ~2.5 ns, under the 3-cycle delay gap between
			// the implicit and explicit grant paths, which is what lets a
			// later-issued /G/ overtake an earlier forwarded RREQ.
			n := 8
			if r%2 == 0 {
				n = 256
			}
			at := sim.Time(k*ports+r) * 5 * sim.Nanosecond
			f.Engine.At(at, func() {
				f.Host(r).Read(0, uint64(r)*4096, n, func(data []byte, err error) {
					done++
					if err != nil {
						failed++
						return
					}
					for _, b := range data {
						if b != byte(r) {
							wrong++
							return
						}
					}
				})
			})
		}
	}
	f.Run()
	want := rounds * (ports - 1)
	if done != want || failed != 0 {
		t.Fatalf("completed %d of %d, failed %d", done, want, failed)
	}
	if wrong != 0 {
		t.Fatalf("%d reads returned another reader's data (chunks misrouted)", wrong)
	}
}

// TestIDWrapFailsFast: the 7-bit per-destination ID counter wraps after 128
// submissions; an op whose ID is still in flight must be rejected with
// ErrTooManyOut rather than silently crossing state with the old op.
func TestIDWrapFailsFast(t *testing.T) {
	f := New(DefaultConfig(4))
	for i := 0; i < 4; i++ {
		f.AttachMemory(i, memctl.New(memctl.DefaultConfig()))
	}
	const burst = 200
	completed, rejected, otherErr := 0, 0, 0
	f.Engine.At(0, func() {
		for i := 0; i < burst; i++ {
			f.Host(0).Write(1, 0, make([]byte, 64), func(err error) {
				switch {
				case err == nil:
					completed++
				case errors.Is(err, ErrTooManyOut):
					rejected++
				default:
					otherErr++
				}
			})
		}
	})
	f.Run()
	if otherErr != 0 {
		t.Fatalf("%d unexpected errors", otherErr)
	}
	if completed != 128 || rejected != burst-128 {
		t.Fatalf("completed %d rejected %d (want 128/%d): ID wrap not guarded",
			completed, rejected, burst-128)
	}
}

// TestGrantLossResyncsCircuits: a grant block dropped on a disabled link
// leaves a stale head in the switch's circuit FIFO for that ingress; without
// the dst-match resync every post-recovery chunk from that ingress would be
// routed one circuit behind (to the wrong egress) forever. Reads during the
// outage may fail — reads issued well after recovery must all succeed.
func TestGrantLossResyncsCircuits(t *testing.T) {
	const ports = 4
	f := New(DefaultConfig(ports))
	for i := 0; i < ports; i++ {
		f.AttachMemory(i, memctl.New(memctl.DefaultConfig()))
	}
	// Requester 1 reads from memory node 0 continuously across an outage
	// of node 0's links, so grants toward node 0 are dropped and their
	// circuits (all toward egress 1) go stale. Using a single requester
	// here keeps the stale heads distinct from the fresh phase's
	// destinations — a rotating pattern can realign with the stale FIFO
	// by coincidence and mask the bug.
	for i := 0; i < 60; i++ {
		at := sim.Time(i) * 50 * sim.Nanosecond
		f.Engine.At(at, func() {
			f.Host(1).Read(0, 4096, 64, func([]byte, error) {})
		})
	}
	f.Engine.At(1*sim.Microsecond, func() { f.DisableLink(0) })
	f.Engine.At(2*sim.Microsecond, func() { f.EnableLink(0) })
	// Fresh reads from the OTHER requesters long after recovery (outage
	// reads have timed out by 103us): every one must complete cleanly.
	freshDone, freshFailed := 0, 0
	const fresh = 30
	for i := 0; i < fresh; i++ {
		r := 2 + i%2
		at := 150*sim.Microsecond + sim.Time(i)*100*sim.Nanosecond
		f.Engine.At(at, func() {
			f.Host(r).Read(0, uint64(r)*4096, 64, func(_ []byte, err error) {
				freshDone++
				if err != nil {
					freshFailed++
				}
			})
		})
	}
	f.Run()
	if freshDone != fresh || freshFailed != 0 {
		t.Fatalf("post-recovery reads: %d/%d done, %d failed (stale circuits not resynced; resyncs=%d)",
			freshDone, fresh, freshFailed, f.Switch().Stats().CircuitResyncs)
	}
}
