package edm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

func newDualTestbed(t *testing.T) *DualFabric {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.ReadTimeout = 5 * sim.Microsecond
	d := NewDual(cfg)
	d.AttachMemory(1, fastMem)
	return d
}

func TestDualReadHealthy(t *testing.T) {
	d := newDualTestbed(t)
	// Seed both replicas through the mirrored write path.
	var werr error
	d.Write(0, 1, 0, bytes.Repeat([]byte{0x3c}, 64), func(err error) { werr = err })
	d.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	d.Read(0, 1, 0, 64, func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = data
	})
	d.Run()
	if len(got) != 64 || got[0] != 0x3c {
		t.Fatal("dual read wrong data")
	}
	// Both replicas applied the write.
	for _, f := range []*Fabric{d.Primary, d.Backup} {
		data, _, err := f.Host(1).Memory().Read(0, 64)
		if err != nil || data[0] != 0x3c {
			t.Fatal("replica divergence")
		}
	}
}

func TestDualSurvivesPrimarySwitchFailure(t *testing.T) {
	d := newDualTestbed(t)
	var werr error
	d.Write(0, 1, 0, bytes.Repeat([]byte{0x11}, 64), func(err error) { werr = err })
	d.Run()
	if werr != nil {
		t.Fatal(werr)
	}

	d.FailPrimarySwitch()
	completed := 0
	for i := 0; i < 5; i++ {
		d.Read(0, 1, 0, 64, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read after failover: %v", err)
				return
			}
			if data[0] != 0x11 {
				t.Error("failover read wrong data")
				return
			}
			completed++
		})
	}
	d.Run()
	if completed != 5 {
		t.Fatalf("completed %d of 5 after primary failure", completed)
	}
	// Writes also continue, applied on the surviving replica.
	d.Write(0, 1, 4096, []byte{9, 9, 9, 9, 9, 9, 9, 9}, func(err error) {
		if err != nil {
			t.Errorf("write after failover: %v", err)
		}
	})
	d.Run()
	data, _, err := d.Backup.Host(1).Memory().Read(4096, 8)
	if err != nil || data[0] != 9 {
		t.Fatal("failover write not applied on backup")
	}
}

func TestDualBothPlanesFailed(t *testing.T) {
	d := newDualTestbed(t)
	d.FailPrimarySwitch()
	for i := 0; i < d.Backup.cfg.Ports; i++ {
		d.Backup.DisableLink(i)
	}
	var gotErr error
	d.Read(0, 1, 0, 64, func(_ []byte, err error) { gotErr = err })
	d.Run()
	if !errors.Is(gotErr, ErrBothPlanesFailed) {
		t.Fatalf("err = %v, want ErrBothPlanesFailed", gotErr)
	}
}

func TestDualLatencyMatchesSinglePlane(t *testing.T) {
	// With both planes healthy the first copy wins, so dual-plane latency
	// equals single-plane latency (mirroring costs bandwidth, not time).
	d := newDualTestbed(t)
	var wdone bool
	d.Write(0, 1, 0, make([]byte, 64), func(error) { wdone = true })
	d.Run()
	if !wdone {
		t.Fatal("seed write incomplete")
	}
	start := d.Engine().Now()
	var lat sim.Time
	d.Read(0, 1, 0, 64, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		lat = d.Engine().Now() - start
	})
	d.Run()

	single := New(DefaultConfig(2))
	single.AttachMemory(1, fastMem())
	if _, err := single.Host(1).Memory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, sLat, err := single.ReadSync(0, 1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lat != sLat {
		t.Fatalf("dual latency %v != single %v", lat, sLat)
	}
}
