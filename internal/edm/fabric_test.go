package edm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/memctl"
	"repro/internal/sim"
)

// fastMem returns a zero-latency memory controller: Table 1 measures fabric
// latency excluding DRAM access time.
func fastMem() *memctl.Controller {
	cfg := memctl.DefaultConfig()
	cfg.TRP, cfg.TRCD, cfg.TCAS, cfg.TBurst, cfg.Overhead = 0, 0, 0, 0, 0
	return memctl.New(cfg)
}

// newTestbed builds the paper's 2-host testbed: port 0 compute, port 1
// memory.
func newTestbed(t *testing.T) *Fabric {
	t.Helper()
	f := New(DefaultConfig(2))
	f.AttachMemory(1, fastMem())
	return f
}

func TestReadRoundTrip(t *testing.T) {
	f := newTestbed(t)
	want := bytes.Repeat([]byte{0xab}, 64)
	if _, err := f.Host(1).Memory().Write(4096, want); err != nil {
		t.Fatal(err)
	}
	got, lat, err := f.ReadSync(0, 1, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read returned wrong data")
	}
	t.Logf("64B read fabric latency: %v", lat)
	// Paper Table 1: 299.52 ns for a 64 B read on the unloaded testbed.
	if lat < 250*sim.Nanosecond || lat > 400*sim.Nanosecond {
		t.Fatalf("read latency %v outside 250-400ns", lat)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	f := newTestbed(t)
	data := bytes.Repeat([]byte{0x5c}, 64)
	lat, err := f.WriteSync(0, 1, 8192, data)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Host(1).Memory().Read(8192, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("write not applied")
	}
	t.Logf("64B write fabric latency: %v", lat)
	// Paper Table 1: 296.96 ns for a 64 B write.
	if lat < 250*sim.Nanosecond || lat > 400*sim.Nanosecond {
		t.Fatalf("write latency %v outside 250-400ns", lat)
	}
}

func TestSmallReadIs8Bytes(t *testing.T) {
	// Reading a single pointer (8 B) — the paper's motivating small
	// message — must work and be no slower than a 64 B read.
	f := newTestbed(t)
	if _, err := f.Host(1).Memory().Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	got, lat, err := f.ReadSync(0, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[0] != 1 {
		t.Fatalf("8B read returned %v", got)
	}
	if lat > 400*sim.Nanosecond {
		t.Fatalf("8B read latency %v", lat)
	}
}

func TestLargeChunkedRead(t *testing.T) {
	// 1 KB read = 16 chunks of 64 B, each individually granted.
	f := newTestbed(t)
	want := make([]byte, 1024)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if _, err := f.Host(1).Memory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	got, lat, err := f.ReadSync(0, 1, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("1KB read mismatch")
	}
	grants, _, _, _ := f.Switch().Scheduler().Stats()
	if grants != 16 {
		t.Fatalf("grants = %d, want 16", grants)
	}
	t.Logf("1KB read latency: %v", lat)
}

func TestLargeChunkedWrite(t *testing.T) {
	f := newTestbed(t)
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := f.WriteSync(0, 1, 256, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Host(1).Memory().Read(256, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked write mismatch")
	}
}

func TestRMWCompareAndSwap(t *testing.T) {
	f := newTestbed(t)
	if _, err := f.Host(1).Memory().Write(64, []byte{5, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// CAS(expected=5, new=9): succeeds.
	res, lat, err := f.RMWSync(0, 1, 64, memctl.OpCAS, 5, 9)
	if err != nil || res != 1 {
		t.Fatalf("CAS: res=%d err=%v", res, err)
	}
	got, _, _ := f.Host(1).Memory().Read(64, 8)
	if got[0] != 9 {
		t.Fatal("CAS did not store")
	}
	// Second CAS with stale expected fails.
	res, _, err = f.RMWSync(0, 1, 64, memctl.OpCAS, 5, 77)
	if err != nil || res != 0 {
		t.Fatalf("stale CAS: res=%d err=%v", res, err)
	}
	t.Logf("CAS latency: %v", lat)
	if lat > 450*sim.Nanosecond {
		t.Fatalf("CAS latency %v too high", lat)
	}
}

func TestFetchAdd(t *testing.T) {
	f := newTestbed(t)
	for i := 0; i < 3; i++ {
		res, _, err := f.RMWSync(0, 1, 128, memctl.OpFetchAdd, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res != uint64(i*10) {
			t.Fatalf("FAA %d returned %d", i, res)
		}
	}
}

func TestConcurrentReadsManyHosts(t *testing.T) {
	// 4 compute nodes all read from one memory node; every read completes
	// correctly (the scheduler serializes the shared egress).
	cfg := DefaultConfig(5)
	f := New(cfg)
	f.AttachMemory(4, fastMem())
	want := bytes.Repeat([]byte{0x77}, 64)
	if _, err := f.Host(4).Memory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	results := make([][]byte, 4)
	for i := 0; i < 4; i++ {
		i := i
		f.Host(i).Read(4, 0, 64, func(d []byte, err error) {
			if err != nil {
				t.Errorf("host %d: %v", i, err)
			}
			results[i] = d
		})
	}
	f.Run()
	for i, r := range results {
		if !bytes.Equal(r, want) {
			t.Fatalf("host %d got wrong data", i)
		}
	}
}

func TestPipelinedReadsSameHost(t *testing.T) {
	// Multiple outstanding reads from one host respect the X=3 window but
	// all complete, in order per pair.
	f := newTestbed(t)
	mem := f.Host(1).Memory()
	for i := 0; i < 8; i++ {
		if _, err := mem.Write(uint64(i*64), bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		f.Host(0).Read(1, uint64(i*64), 64, func(d []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if d[0] != byte(i+1) {
				t.Errorf("read %d wrong data %d", i, d[0])
			}
			order = append(order, i)
		})
	}
	f.Run()
	if len(order) != 8 {
		t.Fatalf("completed %d of 8", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reads completed out of order: %v", order)
		}
	}
}

func TestWritesAreInOrderPerPair(t *testing.T) {
	// Two writes to overlapping addresses from the same host must apply in
	// issue order (§3.1.1 property 5).
	f := newTestbed(t)
	f.Host(0).Write(1, 0, bytes.Repeat([]byte{1}, 128), nil)
	f.Host(0).Write(1, 0, bytes.Repeat([]byte{2}, 64), nil)
	f.Run()
	got, _, err := f.Host(1).Memory().Read(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got[i] != 2 {
			t.Fatalf("byte %d = %d, want 2 (second write lost or reordered)", i, got[i])
		}
	}
	for i := 64; i < 128; i++ {
		if got[i] != 1 {
			t.Fatalf("byte %d = %d, want 1", i, got[i])
		}
	}
}

func TestReadTimeoutOnDisabledLink(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ReadTimeout = 2 * sim.Microsecond
	f := New(cfg)
	f.AttachMemory(1, fastMem())
	f.DisableLink(1) // memory node unreachable
	var gotErr error
	done := false
	f.Host(0).Read(1, 0, 64, func(d []byte, err error) {
		gotErr, done = err, true
		if d != nil {
			t.Error("data returned on timeout")
		}
	})
	f.Run()
	if !done || !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("timeout path: done=%v err=%v", done, gotErr)
	}
	if f.Host(0).Stats().Timeouts != 1 {
		t.Fatal("timeout not counted")
	}
}

func TestReadToNonMemoryNode(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.ReadTimeout = 2 * sim.Microsecond
	f := New(cfg)
	f.AttachMemory(2, fastMem())
	var gotErr error
	f.Host(0).Read(1, 0, 64, func(d []byte, err error) { gotErr = err })
	f.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("read to compute node: %v", gotErr)
	}
}

func TestLinkCorruptionDetected(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ReadTimeout = 5 * sim.Microsecond
	f := New(cfg)
	f.AttachMemory(1, fastMem())
	f.UpLink(0).CorruptOneIn(2) // heavy corruption on the request path
	var errs, oks int
	for i := 0; i < 4; i++ {
		f.Host(0).Read(1, uint64(i*64), 64, func(d []byte, err error) {
			if err != nil {
				errs++
			} else {
				oks++
			}
		})
	}
	f.Run()
	if errs == 0 {
		t.Fatal("no read failed despite corruption")
	}
	swErr := f.Switch().Stats().RxErrors
	if swErr == 0 {
		t.Fatal("switch did not detect corrupted blocks")
	}
}

func TestWriteReadBack(t *testing.T) {
	// Full workflow: write then read the same location remotely.
	f := newTestbed(t)
	data := []byte("hello, disaggregated world!")
	if _, err := f.WriteSync(0, 1, 1<<20, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.ReadSync(0, 1, 1<<20, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	// Two hosts each with memory, reading from each other concurrently.
	cfg := DefaultConfig(2)
	f := New(cfg)
	f.AttachMemory(0, fastMem())
	f.AttachMemory(1, fastMem())
	_, _ = f.Host(0).Memory().Write(0, bytes.Repeat([]byte{0xaa}, 64))
	_, _ = f.Host(1).Memory().Write(0, bytes.Repeat([]byte{0xbb}, 64))
	var got0, got1 []byte
	f.Host(0).Read(1, 0, 64, func(d []byte, err error) { got0 = d })
	f.Host(1).Read(0, 0, 64, func(d []byte, err error) { got1 = d })
	f.Run()
	if len(got0) != 64 || got0[0] != 0xbb {
		t.Fatal("host 0 read wrong")
	}
	if len(got1) != 64 || got1[0] != 0xaa {
		t.Fatal("host 1 read wrong")
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newTestbed(t)
	_, _, _ = f.ReadSync(0, 1, 0, 64)
	_, _ = f.WriteSync(0, 1, 0, make([]byte, 64))
	hs := f.Host(0).Stats()
	if hs.ReadsIssued != 1 || hs.WritesIssued != 1 || hs.ReadsDone != 1 {
		t.Fatalf("host stats: %+v", hs)
	}
	ss := f.Switch().Stats()
	// Read: 1 RRES chunk. Write: body is 8 B address + 64 B data = 72 B,
	// i.e. two 64 B chunks. Total 3 chunks forwarded, 3 grants.
	if ss.RequestsRX != 1 || ss.NotifiesRX != 1 || ss.ChunksForward != 3 || ss.GrantsTX != 3 {
		t.Fatalf("switch stats: %+v", ss)
	}
	ms := f.Host(1).Stats()
	if ms.WritesDone != 1 {
		t.Fatalf("memory stats: %+v", ms)
	}
}
