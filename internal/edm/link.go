package edm

import (
	"repro/internal/phy"
	"repro/internal/sim"
)

// Link is one direction of an Ethernet link at block granularity. The
// sender's block pump paces transmissions at one block per PCS cycle, so the
// link itself only models latency: PMA/PMD+transceiver at each end plus
// propagation. It also provides the fault hooks of §3.3: administrative
// disable and periodic corruption injection.
type Link struct {
	engine *sim.Engine
	prop   sim.Time
	pma    sim.Time
	// Deliver receives each block at the far end.
	Deliver func(phy.Block)

	disabled     bool
	corruptEvery uint64 // corrupt every Nth block; 0 = never
	dropEvery    uint64 // drop every Nth block; 0 = never
	sent         uint64
	dropped      uint64
	corrupted    uint64
}

// LinkStats counts per-link fault events for the scenario reports.
type LinkStats struct {
	Sent      uint64 // blocks delivered (including corrupted ones)
	Dropped   uint64 // blocks lost to administrative disable or DropOneIn
	Corrupted uint64 // blocks delivered with an injected bit error
}

// Add accumulates another link's counters (for fabric-wide aggregation).
func (s *LinkStats) Add(o LinkStats) {
	s.Sent += o.Sent
	s.Dropped += o.Dropped
	s.Corrupted += o.Corrupted
}

// NewLink returns a link with the given one-way propagation delay and
// per-crossing PMA/PMD delay.
func NewLink(engine *sim.Engine, prop, pma sim.Time) *Link {
	return &Link{engine: engine, prop: prop, pma: pma}
}

// Latency reports the fixed one-way latency a block experiences after
// serialization: TX PMA + propagation + RX PMA.
func (l *Link) Latency() sim.Time { return 2*l.pma + l.prop }

// Disable makes the link silently drop all traffic — the paper's response
// to persistent data corruption (§3.3).
func (l *Link) Disable() { l.disabled = true }

// Enable re-enables a disabled link.
func (l *Link) Enable() { l.disabled = false }

// Disabled reports the administrative state.
func (l *Link) Disabled() bool { return l.disabled }

// CorruptOneIn makes every nth block arrive with a flipped payload byte
// (n=0 disables injection). Corruption is detected by the receiver's
// descrambler/decode path.
func (l *Link) CorruptOneIn(n uint64) { l.corruptEvery = n }

// DropOneIn makes every nth block vanish on the line (n=0 disables) — the
// lossy-link chaos mode, distinct from Disable's total outage.
func (l *Link) DropOneIn(n uint64) { l.dropEvery = n }

// Stats reports the link's fault counters.
func (l *Link) Stats() LinkStats {
	return LinkStats{Sent: l.sent, Dropped: l.dropped, Corrupted: l.corrupted}
}

// Send schedules delivery of one block. The caller is responsible for
// pacing (one block per BlockPeriod).
func (l *Link) Send(b phy.Block) {
	if l.disabled {
		l.dropped++
		return
	}
	if l.dropEvery > 0 && (l.sent+l.dropped+1)%l.dropEvery == 0 {
		l.dropped++
		return
	}
	l.sent++
	if l.corruptEvery > 0 && l.sent%l.corruptEvery == 0 {
		l.corrupted++
		b.Payload[1] ^= 0x40 // single bit error on the line
	}
	l.engine.After(l.Latency(), func() {
		if l.Deliver != nil {
			l.Deliver(b)
		}
	})
}
