package edm

import "repro/internal/sim"

// Pipeline latencies of EDM's host and switch stacks, in PCS clock cycles,
// exactly as measured on the paper's FPGA prototype (§3.2.1, §3.2.2,
// Figure 5). One cycle is 2.56 ns at 25 GbE.
const (
	// Host TX.
	GenRequestCycles = 2 // RREQ/RMWREQ: read message queue + create block/write state table
	GenNotifyCycles  = 2 // /N/: read message queue + create block/write state table
	GrantReadCycles  = 4 // dequeue grant (crosses RX->TX clock domains)
	GenDataCycles    = 3 // chunk: read state table + read data buffer + create block

	// Host RX.
	RxGrantCycles    = 2 // /G/: parse + add to grant queue
	RxReqToMemCycles = 1 // received RREQ: extra cycle to the memory controller
	RxDataCycles     = 3 // received /M*/ data: parse + extract address + deliver

	// Switch.
	SwGenGrantCycles = 1 // generate a /G/ block
	SwClassifyCycles = 1 // identify /N/, /G/, /M*/ by block type
	SwForwardCycles  = 4 // data movement RX clock domain -> TX clock domain
)

// Physical-layer timing of the 25 GbE testbed (Table 1).
const (
	// BlockPeriod is the PCS clock: one 66-bit block per cycle.
	BlockPeriod = 2560 * sim.Picosecond
	// PMAPMDDelay is the PMA+PMD+transceiver latency per crossing; each
	// link traversal crosses twice (TX serializer, RX deserializer).
	PMAPMDDelay = 19 * sim.Nanosecond
	// DefaultPropDelay is the one-hop propagation delay used in Table 1.
	DefaultPropDelay = 10 * sim.Nanosecond
)
