package edm

import (
	"errors"
	"fmt"

	"repro/internal/memctl"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Client-visible errors.
var (
	ErrTimeout    = errors.New("edm: read timed out (NULL response)")
	ErrNoMemory   = errors.New("edm: destination is not a memory node")
	ErrTooManyOut = errors.New("edm: too many outstanding operations to destination")
)

// ReadCallback delivers a read/RMW result. On timeout data is nil and err is
// ErrTimeout — the paper's NULL (zero size) response (§3.3).
type ReadCallback func(data []byte, err error)

// WriteCallback fires when the write has been applied at the remote memory
// controller. EDM writes are one-sided (no acknowledgement on the wire);
// the fabric invokes this through simulation state for measurement.
type WriteCallback func(err error)

type skey struct {
	peer int // remote port
	id   uint8
}

// idParity is the direction bit of the split message-ID space: reads and
// RMWs (whose data flows dst->src) take odd IDs, writes even. See submit.
func idParity(k Kind) uint8 {
	if k == KindRREQ || k == KindRMW {
		return 1
	}
	return 0
}

// sendState is one message-state-table entry on the TX side: a granted
// message whose chunks are being sent.
type sendState struct {
	msg   *Message
	body  []byte
	sent  int
	ready bool // RRES data read from memory; WREQ is always ready
}

// writeState is the in-flight marker of an issued write, from submit until
// the remote apply ack (or the post-send quarantine) clears it.
type writeState struct {
	cb WriteCallback
}

// readState tracks an outstanding RREQ/RMWREQ at the compute node.
type readState struct {
	cb       ReadCallback
	done     bool
	deadline sim.Time
}

// rxState reassembles a chunked inbound WREQ/RRES.
type rxState struct {
	kind Kind
	buf  []byte
	got  int
}

// grantItem is one entry in the grant queue, which crosses the RX and TX
// clock domains.
type grantItem struct {
	key      skey
	chunk    int
	implicit bool // first RRES chunk: granted by the forwarded RREQ itself
}

// HostStats counts host-level events.
type HostStats struct {
	ReadsIssued   uint64
	WritesIssued  uint64
	RMWsIssued    uint64
	ReadsDone     uint64
	WritesDone    uint64
	Timeouts      uint64
	RxErrors      uint64
	BlocksTX      uint64
	FramesRX      uint64
	MemBlocksTX   uint64
	FrameBlocksTX uint64
}

// Host is EDM's NIC-resident network stack (Figure 3b): the message queue,
// message state table, grant queue and data buffers on the TX side, and the
// demux, reorder buffer and reassembly state on the RX side. A Host with an
// attached memctl.Controller acts as a memory node; any host can issue
// remote reads/writes (compute role).
type Host struct {
	engine *sim.Engine
	cfg    Config
	port   int
	mem    *memctl.Controller
	link   *Link // toward the switch
	mux    *phy.TxMux
	demux  phy.RxDemux
	rb     phy.RxReorderBuffer
	fd     phy.FrameDecoder

	msgQ     []*Message
	waitQ    map[int][]*Message // per-destination holdback beyond X
	active   map[int]int        // active notifications per destination
	nextID   map[int]uint8
	sendTab  map[skey]*sendState
	readTab  map[skey]*readState
	rxTab    map[skey]*rxState
	writeCBs map[skey]*writeState

	grantQ    []grantItem
	grantBusy bool
	msgBusy   bool
	pumpBusy  bool

	frameBacklog [][]byte // frames waiting for mux space (MAC back-pressure)
	framePos     int      // next block within frameBacklog[0]
	frameBlocks  []phy.Block

	// OnFrame receives completed non-memory Ethernet frames.
	OnFrame func([]byte)
	// onWriteApplied is wired by the Fabric: invoked at the memory node
	// when a WREQ has been applied, to fire the writer's callback.
	onWriteApplied func(srcPort int, id uint8)

	stats HostStats
}

func newHost(engine *sim.Engine, cfg Config, port int, link *Link) *Host {
	h := &Host{
		engine:   engine,
		cfg:      cfg,
		port:     port,
		link:     link,
		mux:      phy.NewTxMux(cfg.MuxPolicy),
		waitQ:    make(map[int][]*Message),
		active:   make(map[int]int),
		nextID:   make(map[int]uint8),
		sendTab:  make(map[skey]*sendState),
		readTab:  make(map[skey]*readState),
		rxTab:    make(map[skey]*rxState),
		writeCBs: make(map[skey]*writeState),
	}
	return h
}

// Port reports the host's switch port number.
func (h *Host) Port() int { return h.port }

// Stats returns a copy of the host's counters.
func (h *Host) Stats() HostStats { return h.stats }

// Memory returns the attached memory controller, if any.
func (h *Host) Memory() *memctl.Controller { return h.mem }

// cycles converts pipeline cycles to time.
func (h *Host) cycles(n int) sim.Time { return sim.Time(n) * h.cfg.BlockPeriod }

// Read issues a remote read of n bytes at addr on the memory node at port
// dst. cb fires with the data, or with ErrTimeout after the read deadline.
func (h *Host) Read(dst int, addr uint64, n int, cb ReadCallback) {
	h.stats.ReadsIssued++
	m := &Message{Kind: KindRREQ, Src: h.port, Dst: dst, Addr: addr, Len: uint32(n)}
	h.submit(m, cb, nil)
}

// Write issues a remote write. cb fires when the remote memory controller
// has applied the data.
func (h *Host) Write(dst int, addr uint64, data []byte, cb WriteCallback) {
	h.stats.WritesIssued++
	m := &Message{Kind: KindWREQ, Src: h.port, Dst: dst, Addr: addr,
		Len: uint32(len(data)), Data: append([]byte(nil), data...)}
	h.submit(m, nil, cb)
}

// RMW issues an atomic read-modify-write; cb receives the 8-byte result
// (for CAS: 1 on success, 0 on failure; otherwise the previous value).
func (h *Host) RMW(dst int, addr uint64, op memctl.RMWOp, args []uint64, cb ReadCallback) {
	h.stats.RMWsIssued++
	m := &Message{Kind: KindRMW, Src: h.port, Dst: dst, Addr: addr,
		Op: op, Args: append([]uint64(nil), args...)}
	h.submit(m, cb, nil)
}

// SendFrame transmits a non-memory Ethernet frame (already MAC-framed).
// Frames share the link with memory traffic through the preemption mux.
func (h *Host) SendFrame(frame []byte) {
	h.frameBacklog = append(h.frameBacklog, frame)
	h.kickPump()
}

// submit assigns an id and either activates the message or holds it back to
// respect the X active-notifications-per-pair bound (§3.1.2).
//
// The ID space is split by direction: writes take even IDs, reads (and
// RMWs) odd. A read's response travels the reverse pair — this host's read
// from dst creates scheduler demand and send-table state for (dst -> this
// host), the same pair dst's own writes to this host use — and the two
// ID counters live at different hosts, so a shared per-destination
// sequence collides: the scheduler rejects the demand as a duplicate ID
// and the memory node's send table entry overwrites the write's. Parity
// keeps the two allocators disjoint with no wire-format change.
func (h *Host) submit(m *Message, rcb ReadCallback, wcb WriteCallback) {
	m.ID = h.nextID[m.Dst]<<1 | idParity(m.Kind)
	h.nextID[m.Dst]++
	key := skey{m.Dst, m.ID}
	// The 7-bit counter wraps after 128 submissions to one destination; if
	// the op that used this ID is still in flight, reusing the key would
	// silently cross their state (stolen callbacks, spurious timeouts).
	// Fail the new op instead — reaching here means >127 ops outstanding
	// to one node, far past the X=3 pacing window: the caller is
	// overdriving the fabric. The check is per direction: a read's
	// in-flight window is its readTab entry; a write's is its callback or
	// send-table entry. (sendTab also holds RRES entries served for the
	// peer's reads under the peer's odd IDs, which a new read's odd ID can
	// legitimately coincide with — those are not collisions.)
	busy := false
	switch m.Kind {
	case KindRREQ, KindRMW:
		_, busy = h.readTab[key]
	default:
		if _, ok := h.writeCBs[key]; ok {
			busy = true
		} else if _, ok := h.sendTab[key]; ok {
			busy = true
		}
	}
	if busy {
		if rcb != nil {
			rcb(nil, ErrTooManyOut)
		}
		if wcb != nil {
			wcb(ErrTooManyOut)
		}
		return
	}
	switch m.Kind {
	case KindRREQ, KindRMW:
		rs := &readState{cb: rcb, deadline: h.engine.Now() + h.cfg.ReadTimeout}
		h.readTab[key] = rs
		h.engine.After(h.cfg.ReadTimeout, func() { h.timeout(key) })
	case KindWREQ:
		// Register even a nil callback: the entry doubles as the write's
		// in-flight marker for the ID-reuse guard above (the sendTab
		// entry only appears later, at the message pump).
		h.writeCBs[key] = &writeState{cb: wcb}
	}
	if h.active[m.Dst] >= h.cfg.MaxActivePerPair {
		h.waitQ[m.Dst] = append(h.waitQ[m.Dst], m)
		return
	}
	h.activate(m)
}

func (h *Host) activate(m *Message) {
	h.active[m.Dst]++
	h.msgQ = append(h.msgQ, m)
	h.kickMsgPump()
}

// release frees one notification slot for dst and activates a waiter.
func (h *Host) release(dst int) {
	h.active[dst]--
	if q := h.waitQ[dst]; len(q) > 0 {
		m := q[0]
		h.waitQ[dst] = q[1:]
		h.activate(m)
	}
}

// timeout fires the NULL response for a read that never completed.
func (h *Host) timeout(key skey) {
	rs, ok := h.readTab[key]
	if !ok || rs.done {
		return
	}
	if h.engine.Now() < rs.deadline {
		// Stale timer from an earlier read whose key was freed and reused
		// after the 7-bit ID wrap; the current read's own timer is still
		// pending and will fire at its deadline.
		return
	}
	rs.done = true
	// The entry is quarantined rather than deleted: the memory node may
	// still hold send state and a queued grant for this key (e.g. blocked
	// behind a dead link), which the issuing host cannot observe. Keeping
	// the done entry makes submit's ID-reuse guard treat the key as busy,
	// so a wrapped counter cannot cross a new read with the stale remote
	// state. A late RRES frees it early (completeRead); otherwise a
	// second timeout period bounds the quarantine — by then any remote
	// state has drained (a blocked memory node keeps pumping chunks into
	// the dead link, which drops them), so the ID never wedges
	// permanently when the RREQ itself was lost.
	h.engine.After(h.cfg.ReadTimeout, func() {
		if cur, ok := h.readTab[key]; ok && cur == rs {
			delete(h.readTab, key)
		}
	})
	h.release(key.peer)
	h.stats.Timeouts++
	if rs.cb != nil {
		rs.cb(nil, ErrTimeout)
	}
}

// kickMsgPump starts the TX message-queue pump (Figure 3b: "EDM
// continuously dequeues messages from the message queue").
func (h *Host) kickMsgPump() {
	if h.msgBusy {
		return
	}
	h.msgBusy = true
	h.msgPumpStep()
}

func (h *Host) msgPumpStep() {
	if len(h.msgQ) == 0 {
		h.msgBusy = false
		return
	}
	m := h.msgQ[0]
	h.msgQ = h.msgQ[1:]
	switch m.Kind {
	case KindRREQ, KindRMW:
		h.engine.After(h.cycles(GenRequestCycles), func() {
			w, err := m.MarshalRREQ()
			if err != nil {
				panic(fmt.Sprintf("edm: marshal RREQ: %v", err))
			}
			h.mux.EnqueueMemory(w.Encode()...)
			h.kickPump()
			h.msgPumpStep()
		})
	case KindWREQ:
		h.engine.After(h.cycles(GenNotifyCycles), func() {
			body, err := m.Body()
			if err != nil {
				panic(fmt.Sprintf("edm: marshal WREQ: %v", err))
			}
			h.sendTab[skey{m.Dst, m.ID}] = &sendState{msg: m, body: body, ready: true}
			nb, err := Notification{Src: h.port, Dst: m.Dst, ID: m.ID, Size: uint32(len(body))}.PackNotify()
			if err != nil {
				panic(fmt.Sprintf("edm: pack notify: %v", err))
			}
			h.mux.EnqueueMemory(nb)
			h.kickPump()
			h.msgPumpStep()
		})
	default:
		panic("edm: unexpected kind in message queue")
	}
}

// kickPump starts the per-cycle block pump that drains the preemption mux
// onto the link.
func (h *Host) kickPump() {
	if h.pumpBusy {
		return
	}
	h.pumpBusy = true
	h.engine.After(h.cfg.BlockPeriod, h.pumpStep)
}

func (h *Host) pumpStep() {
	h.feedFrames()
	if h.mux.FrameBacklog()+h.mux.MemoryBacklog() == 0 {
		h.pumpBusy = false
		return
	}
	b, src := h.mux.Next()
	if src != phy.SrcIdle {
		h.link.Send(b)
		h.stats.BlocksTX++
		if src == phy.SrcMemory {
			h.stats.MemBlocksTX++
		} else {
			h.stats.FrameBlocksTX++
		}
	}
	h.engine.After(h.cfg.BlockPeriod, h.pumpStep)
}

// feedFrames moves pending frame blocks into the mux as back-pressure
// allows, encoding lazily.
func (h *Host) feedFrames() {
	for {
		if h.frameBlocks == nil {
			if len(h.frameBacklog) == 0 {
				return
			}
			h.frameBlocks = phy.FrameToBlocks(h.frameBacklog[0])
			h.frameBacklog = h.frameBacklog[1:]
			h.framePos = 0
		}
		for h.framePos < len(h.frameBlocks) {
			if !h.mux.EnqueueFrame(h.frameBlocks[h.framePos]) {
				return // MAC back-pressure
			}
			h.framePos++
		}
		h.frameBlocks = nil
	}
}

// receive is the link delivery callback: the PCS RX path.
func (h *Host) receive(b phy.Block) {
	ev, err := h.demux.Feed(b)
	if err != nil {
		// Corrupted or out-of-protocol block: count and resynchronize, as
		// the scrambler-based corruption detection would (§3.3).
		h.stats.RxErrors++
		h.demux = phy.RxDemux{}
		return
	}
	switch {
	case ev.Grant != nil:
		g := UnpackGrant(*ev.Grant)
		h.engine.After(h.cycles(RxGrantCycles), func() {
			h.grantQ = append(h.grantQ, grantItem{key: skey{g.Dst, g.ID}, chunk: int(g.Chunk)})
			h.kickGrants()
		})
	case ev.Notify != nil:
		// Hosts never receive /N/ blocks; tolerate and count.
		h.stats.RxErrors++
	case ev.Msg != nil:
		h.handleWireMsg(*ev.Msg)
	case ev.FrameBlock != nil:
		if blocks, done := h.rb.Feed(*ev.FrameBlock); done {
			for _, fb := range blocks {
				if frame, fdone, err := h.fd.Feed(fb); err != nil {
					h.stats.RxErrors++
					h.fd = phy.FrameDecoder{}
				} else if fdone {
					h.stats.FramesRX++
					if h.OnFrame != nil {
						h.OnFrame(frame)
					}
				}
			}
		}
	}
}

// handleWireMsg dispatches a completed inbound memory message.
func (h *Host) handleWireMsg(w phy.MemMsg) {
	kind, src, _, id, size, cont := PeekHeader(w)
	switch kind {
	case KindRREQ, KindRMW:
		h.handleRequest(w)
	case KindWREQ, KindRRES:
		h.handleDataChunk(kind, src, id, size, cont, w.Body)
	default:
		h.stats.RxErrors++
	}
}

// handleRequest serves an RREQ/RMWREQ at the memory node. Its arrival via
// the switch is the implicit grant for the first RRES chunk (§3.1.4).
func (h *Host) handleRequest(w phy.MemMsg) {
	req, demand, err := UnmarshalRREQ(w)
	if err != nil {
		h.stats.RxErrors++
		return
	}
	if h.mem == nil {
		// Not a memory node: drop; the requester will receive a NULL
		// response via its timeout.
		h.stats.RxErrors++
		return
	}
	key := skey{req.Src, req.ID}
	res := &Message{Kind: KindRRES, Src: h.port, Dst: req.Src, ID: req.ID}
	st := &sendState{msg: res}
	h.sendTab[key] = st
	firstChunk := demand
	if firstChunk > h.cfg.ChunkBytes {
		firstChunk = h.cfg.ChunkBytes
	}
	h.engine.After(h.cycles(RxReqToMemCycles), func() {
		// The forwarded RREQ *is* the first grant. It must take its grant-
		// queue slot now, in arrival order: the switch's circuit FIFO maps
		// this port's outgoing chunks to egresses in grant-issue order, so
		// chunks must leave in exactly that order. If the DRAM read is
		// still in flight when this entry reaches the queue head, the
		// queue waits (st.ready gates the pump).
		h.grantQ = append(h.grantQ, grantItem{key: key, chunk: firstChunk, implicit: true})
		var data []byte
		var lat sim.Time
		var err error
		switch req.Kind {
		case KindRREQ:
			data, lat, err = h.mem.Read(req.Addr, demand)
		case KindRMW:
			var result uint64
			result, lat, err = h.mem.RMW(req.Addr, req.Op, req.Args...)
			if err == nil {
				data = make([]byte, 8)
				putUint64(data, result)
			}
		}
		if err != nil {
			// Out-of-range access: the paper's fabric has no NACK; the
			// requester times out with a NULL response. The queued grant
			// stays and is discarded when it reaches the head (the state
			// table entry is gone), keeping circuit order intact... but a
			// missing sendTab entry would also desynchronize the switch's
			// circuit FIFO, so keep the entry and send a zero-filled
			// response of the demanded size instead.
			data = make([]byte, demand)
			lat = 0
		}
		h.engine.After(lat, func() {
			st.body = data
			st.ready = true
			h.kickGrants()
		})
	})
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// kickGrants starts the grant-queue pump. Grants are served strictly in
// order; a grant whose RRES data is still being read from DRAM blocks the
// queue (chunks must leave in grant order so the switch's circuit FIFO
// stays aligned).
func (h *Host) kickGrants() {
	if h.grantBusy {
		return
	}
	h.grantBusy = true
	h.grantStep()
}

func (h *Host) grantStep() {
	if len(h.grantQ) == 0 {
		h.grantBusy = false
		return
	}
	g := h.grantQ[0]
	st, ok := h.sendTab[g.key]
	if !ok {
		// Grant for an unknown message (e.g. state dropped after memory
		// error): discard.
		h.grantQ = h.grantQ[1:]
		h.stats.RxErrors++
		h.engine.After(h.cycles(GrantReadCycles), h.grantStep)
		return
	}
	if !st.ready {
		// RRES data not back from DRAM yet: retry when it is (kickGrants
		// is called again on readiness).
		h.grantBusy = false
		return
	}
	h.grantQ = h.grantQ[1:]
	delay := GrantReadCycles
	if g.implicit {
		delay = 0 // implicit grant never sat in the grant queue
	}
	h.engine.After(h.cycles(delay)+h.cycles(GenDataCycles), func() {
		n := g.chunk
		if n > len(st.body)-st.sent {
			n = len(st.body) - st.sent
		}
		if n > 0 {
			w, err := st.msg.MarshalChunk(st.body, st.sent, n)
			if err != nil {
				panic(fmt.Sprintf("edm: marshal chunk: %v", err))
			}
			st.sent += n
			h.mux.EnqueueMemory(w.Encode()...)
			h.kickPump()
		}
		if st.sent == len(st.body) {
			delete(h.sendTab, g.key)
			if st.msg.Kind == KindWREQ {
				// All chunks granted and sent: free the notification slot.
				h.release(st.msg.Dst)
				// If the chunks were lost on a dead link the apply ack
				// never comes and the writeCBs marker would pin this ID
				// forever; quarantine it for one timeout period past the
				// last chunk, then free the ID (without firing the
				// callback — EDM writes are unacknowledged on the wire,
				// so a lost write is silent by design). Writes whose
				// NOTIFICATION was lost keep their marker: that pair is
				// wedged anyway (its window slots never free), and
				// fail-fast on reuse is the honest signal.
				key, ws := g.key, h.writeCBs[g.key]
				if ws != nil {
					h.engine.After(h.cfg.ReadTimeout, func() {
						if cur, ok := h.writeCBs[key]; ok && cur == ws {
							delete(h.writeCBs, key)
						}
					})
				}
			}
		}
		h.grantStep()
	})
}

// handleDataChunk reassembles inbound WREQ/RRES chunks and completes the
// operation when the message is whole.
func (h *Host) handleDataChunk(kind Kind, src int, id uint8, total int, cont bool, body []byte) {
	key := skey{src, id}
	rs, ok := h.rxTab[key]
	if !ok {
		if cont {
			h.stats.RxErrors++ // continuation without a first chunk
			return
		}
		rs = &rxState{kind: kind, buf: make([]byte, total)}
		h.rxTab[key] = rs
	}
	if rs.got+len(body) > len(rs.buf) {
		h.stats.RxErrors++
		delete(h.rxTab, key)
		return
	}
	copy(rs.buf[rs.got:], body)
	rs.got += len(body)
	if rs.got < len(rs.buf) {
		return
	}
	delete(h.rxTab, key)
	h.engine.After(h.cycles(RxDataCycles), func() {
		switch kind {
		case KindWREQ:
			h.applyWrite(src, id, rs.buf)
		case KindRRES:
			h.completeRead(key, rs.buf)
		}
	})
}

// applyWrite commits an inbound WREQ at the memory node.
func (h *Host) applyWrite(src int, id uint8, body []byte) {
	if h.mem == nil || len(body) < 8 {
		h.stats.RxErrors++
		return
	}
	addr := uint64(0)
	for i := 7; i >= 0; i-- {
		addr = addr<<8 | uint64(body[i])
	}
	lat, err := h.mem.Write(addr, body[8:])
	if err != nil {
		h.stats.RxErrors++
		return
	}
	h.engine.After(lat, func() {
		h.stats.WritesDone++
		if h.onWriteApplied != nil {
			h.onWriteApplied(src, id)
		}
	})
}

// completeRead fires the callback for a finished RREQ/RMWREQ.
func (h *Host) completeRead(key skey, data []byte) {
	rs, ok := h.readTab[key]
	if !ok {
		return
	}
	if rs.done {
		// Late response for a timed-out read: the remote state is now
		// drained, so the key becomes safe to reuse.
		delete(h.readTab, key)
		return
	}
	rs.done = true
	delete(h.readTab, key)
	h.release(key.peer)
	h.stats.ReadsDone++
	if rs.cb != nil {
		rs.cb(data, nil)
	}
}

// fireWriteApplied is invoked (via the fabric) on the writing host when its
// WREQ was applied remotely.
func (h *Host) fireWriteApplied(dst int, id uint8) {
	key := skey{dst, id}
	if ws, ok := h.writeCBs[key]; ok {
		delete(h.writeCBs, key)
		if ws.cb != nil {
			ws.cb(nil)
		}
	}
}
