// Package edm implements the core of the paper: EDM's host and switch
// network stacks for remote memory access in the Ethernet PHY (§3.2), glued
// to the central PIM scheduler (internal/sched) into a complete block-level
// fabric (Fabric) with a client API of remote reads, writes and atomic
// read-modify-writes.
package edm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/memctl"
	"repro/internal/phy"
)

// Kind is the message type (§2.3).
type Kind uint8

const (
	KindRREQ Kind = iota + 1 // remote read request
	KindWREQ                 // remote write request
	KindRMW                  // atomic read-modify-write request
	KindRRES                 // read response
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRREQ:
		return "RREQ"
	case KindWREQ:
		return "WREQ"
	case KindRMW:
		return "RMWREQ"
	case KindRRES:
		return "RRES"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is one remote-memory message.
type Message struct {
	Kind Kind
	// Src and Dst are switch port numbers (the paper's 9-bit node ids).
	Src, Dst int
	// ID distinguishes concurrent messages between a pair (8 bits).
	ID uint8
	// Addr is the remote memory address (RREQ/WREQ/RMW).
	Addr uint64
	// Len is the number of bytes to read (RREQ) — the implicit demand for
	// the RRES — or the data length for WREQ/RRES.
	Len uint32
	// Op and Args describe the RMW operation.
	Op   memctl.RMWOp
	Args []uint64
	// Data is the write payload (WREQ) or the read result (RRES).
	Data []byte
}

// Wire format limits.
const (
	MaxPorts   = 512     // 9-bit port ids
	MaxMsgLen  = 1 << 16 // 16-bit size field
	maxRMWArgs = 4
)

// header flag bits.
const (
	flagCont uint8 = 1 << 0 // continuation chunk of a chunked message
)

// Wire format errors.
var (
	ErrMsgTooLarge = errors.New("edm: message exceeds 16-bit size field")
	ErrBadPort     = errors.New("edm: port out of 9-bit range")
	ErrBadWire     = errors.New("edm: malformed wire message")
)

// header is the 7-byte /MS//MST/ control payload:
//
//	bits  0..3  kind
//	bits  4..12 src port   (9 bits)
//	bits 13..21 dst port   (9 bits)
//	bits 22..29 message id (8 bits)
//	bits 30..45 size       (16 bits; body bytes for the whole message)
//	bits 46..53 opcode (RMW) / flags
//	bit  54     continuation flag
type header struct {
	kind Kind
	src  int
	dst  int
	id   uint8
	size uint32
	op   uint8
	cont bool
}

func (h header) pack() [phy.MemHeaderBytes]byte {
	var v uint64
	v |= uint64(h.kind) & 0xf
	v |= (uint64(h.src) & 0x1ff) << 4
	v |= (uint64(h.dst) & 0x1ff) << 13
	v |= uint64(h.id) << 22
	v |= (uint64(h.size) & 0xffff) << 30
	v |= uint64(h.op) << 46
	if h.cont {
		v |= 1 << 54
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	var out [phy.MemHeaderBytes]byte
	copy(out[:], buf[:phy.MemHeaderBytes])
	return out
}

func unpackHeader(p [phy.MemHeaderBytes]byte) header {
	var buf [8]byte
	copy(buf[:], p[:])
	v := binary.LittleEndian.Uint64(buf[:])
	return header{
		kind: Kind(v & 0xf),
		src:  int((v >> 4) & 0x1ff),
		dst:  int((v >> 13) & 0x1ff),
		id:   uint8(v >> 22),
		size: uint32((v >> 30) & 0xffff),
		op:   uint8((v >> 46) & 0xff),
		cont: v&(1<<54) != 0,
	}
}

// Body renders the message body that follows the header on the wire:
//
//	RREQ: addr(8)
//	WREQ: addr(8) + data
//	RMW:  addr(8) + op args (8 each)
//	RRES: data
func (m *Message) Body() ([]byte, error) {
	switch m.Kind {
	case KindRREQ:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], m.Addr)
		return b[:], nil
	case KindWREQ:
		b := make([]byte, 8+len(m.Data))
		binary.LittleEndian.PutUint64(b, m.Addr)
		copy(b[8:], m.Data)
		return b, nil
	case KindRMW:
		if len(m.Args) > maxRMWArgs {
			return nil, fmt.Errorf("%w: %d RMW args", ErrBadWire, len(m.Args))
		}
		b := make([]byte, 8+8*len(m.Args))
		binary.LittleEndian.PutUint64(b, m.Addr)
		for i, a := range m.Args {
			binary.LittleEndian.PutUint64(b[8+8*i:], a)
		}
		return b, nil
	case KindRRES:
		return m.Data, nil
	}
	return nil, fmt.Errorf("%w: kind %v", ErrBadWire, m.Kind)
}

// WireSize reports the body length in bytes — the quantity the scheduler
// reserves bandwidth for.
func (m *Message) WireSize() (int, error) {
	b, err := m.Body()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

func (m *Message) validate() error {
	if m.Src < 0 || m.Src >= MaxPorts || m.Dst < 0 || m.Dst >= MaxPorts {
		return fmt.Errorf("%w: src=%d dst=%d", ErrBadPort, m.Src, m.Dst)
	}
	return nil
}

// hdr builds the wire header for the message with the given body size.
func (m *Message) hdr(size int, cont bool) (header, error) {
	if size >= MaxMsgLen {
		return header{}, fmt.Errorf("%w: %d bytes", ErrMsgTooLarge, size)
	}
	return header{
		kind: m.Kind, src: m.Src, dst: m.Dst, id: m.ID,
		size: uint32(size), op: uint8(m.Op), cont: cont,
	}, nil
}

// Marshal renders the entire message as one PHY memory message.
func (m *Message) Marshal() (phy.MemMsg, error) {
	if err := m.validate(); err != nil {
		return phy.MemMsg{}, err
	}
	body, err := m.Body()
	if err != nil {
		return phy.MemMsg{}, err
	}
	h, err := m.hdr(len(body), false)
	if err != nil {
		return phy.MemMsg{}, err
	}
	return phy.MemMsg{Header: h.pack(), Body: body}, nil
}

// MarshalChunk renders the chunk [offset, offset+n) of the message body as
// its own PHY memory message. Chunks after the first carry the continuation
// flag; the header's size field always holds the total body size so the
// receiver can size its reassembly buffer from the first chunk.
func (m *Message) MarshalChunk(body []byte, offset, n int) (phy.MemMsg, error) {
	if err := m.validate(); err != nil {
		return phy.MemMsg{}, err
	}
	if offset < 0 || n <= 0 || offset+n > len(body) {
		return phy.MemMsg{}, fmt.Errorf("%w: chunk [%d,%d) of %d", ErrBadWire, offset, offset+n, len(body))
	}
	h, err := m.hdr(len(body), offset > 0)
	if err != nil {
		return phy.MemMsg{}, err
	}
	return phy.MemMsg{Header: h.pack(), Body: body[offset : offset+n]}, nil
}

// parseBody fills the kind-specific fields from a complete body.
func (m *Message) parseBody(body []byte) error {
	switch m.Kind {
	case KindRREQ:
		if len(body) != 8 {
			return fmt.Errorf("%w: RREQ body %d bytes", ErrBadWire, len(body))
		}
		m.Addr = binary.LittleEndian.Uint64(body)
	case KindWREQ:
		if len(body) < 8 {
			return fmt.Errorf("%w: WREQ body %d bytes", ErrBadWire, len(body))
		}
		m.Addr = binary.LittleEndian.Uint64(body)
		m.Data = append([]byte(nil), body[8:]...)
		m.Len = uint32(len(m.Data))
	case KindRMW:
		if len(body) < 8 || (len(body)-8)%8 != 0 {
			return fmt.Errorf("%w: RMW body %d bytes", ErrBadWire, len(body))
		}
		m.Addr = binary.LittleEndian.Uint64(body)
		nargs := (len(body) - 8) / 8
		if nargs > maxRMWArgs {
			return fmt.Errorf("%w: %d RMW args", ErrBadWire, nargs)
		}
		m.Args = make([]uint64, nargs)
		for i := range m.Args {
			m.Args[i] = binary.LittleEndian.Uint64(body[8+8*i:])
		}
	case KindRRES:
		m.Data = append([]byte(nil), body...)
		m.Len = uint32(len(body))
	default:
		return fmt.Errorf("%w: kind %d", ErrBadWire, m.Kind)
	}
	return nil
}

// Unmarshal decodes a complete (unchunked) PHY memory message.
func Unmarshal(w phy.MemMsg) (*Message, error) {
	h := unpackHeader(w.Header)
	if h.cont {
		return nil, fmt.Errorf("%w: continuation chunk passed to Unmarshal", ErrBadWire)
	}
	if int(h.size) != len(w.Body) {
		return nil, fmt.Errorf("%w: header size %d, body %d", ErrBadWire, h.size, len(w.Body))
	}
	m := &Message{Kind: h.kind, Src: h.src, Dst: h.dst, ID: h.id, Op: memctl.RMWOp(h.op)}
	if m.Kind == KindRREQ {
		// For RREQ the size field carries the read demand, not body size;
		// handled below.
	}
	if err := m.parseBody(w.Body); err != nil {
		return nil, err
	}
	return m, nil
}

// MarshalRREQ is a special case: the header's size field carries the read
// demand (bytes to read) rather than the 8-byte body size, because the
// switch extracts the RRES demand from it inline (§3.1.1 Notification).
func (m *Message) MarshalRREQ() (phy.MemMsg, error) {
	if m.Kind != KindRREQ && m.Kind != KindRMW {
		return phy.MemMsg{}, fmt.Errorf("%w: MarshalRREQ on %v", ErrBadWire, m.Kind)
	}
	if err := m.validate(); err != nil {
		return phy.MemMsg{}, err
	}
	body, err := m.Body()
	if err != nil {
		return phy.MemMsg{}, err
	}
	demand := int(m.Len)
	if m.Kind == KindRMW {
		demand = 8 // RRES carries the 64-bit RMW result; inferred from opcode
	}
	h, err := m.hdr(demand, false)
	if err != nil {
		return phy.MemMsg{}, err
	}
	return phy.MemMsg{Header: h.pack(), Body: body}, nil
}

// UnmarshalRREQ decodes an RREQ/RMWREQ whose size field is the read demand.
func UnmarshalRREQ(w phy.MemMsg) (m *Message, demand int, err error) {
	h := unpackHeader(w.Header)
	if h.kind != KindRREQ && h.kind != KindRMW {
		return nil, 0, fmt.Errorf("%w: %v is not a request", ErrBadWire, h.kind)
	}
	m = &Message{Kind: h.kind, Src: h.src, Dst: h.dst, ID: h.id, Op: memctl.RMWOp(h.op)}
	if err := m.parseBody(w.Body); err != nil {
		return nil, 0, err
	}
	m.Len = h.size
	return m, int(h.size), nil
}

// PeekKind inspects the kind of a wire message without full decoding — the
// one-cycle block classification the switch performs (§3.2.2).
func PeekKind(w phy.MemMsg) Kind { return unpackHeader(w.Header).kind }

// PeekHeader exposes the routing fields the switch needs.
func PeekHeader(w phy.MemMsg) (kind Kind, src, dst int, id uint8, size int, cont bool) {
	h := unpackHeader(w.Header)
	return h.kind, h.src, h.dst, h.id, int(h.size), h.cont
}

// Control messages: demand notifications (/N/) and grants (/G/), each a
// single 66-bit block with a 7-byte payload (§3.1.4: destination 9 bits,
// message id 8 bits, size 16 bits).

// Notification is the /N/ payload announcing a WREQ demand.
type Notification struct {
	Src, Dst int
	ID       uint8
	Size     uint32
}

// PackNotify renders the /N/ block.
func (n Notification) PackNotify() (phy.Block, error) {
	if n.Src < 0 || n.Src >= MaxPorts || n.Dst < 0 || n.Dst >= MaxPorts {
		return phy.Block{}, fmt.Errorf("%w: %d->%d", ErrBadPort, n.Src, n.Dst)
	}
	if n.Size >= MaxMsgLen {
		return phy.Block{}, fmt.Errorf("%w: %d", ErrMsgTooLarge, n.Size)
	}
	h := header{kind: KindWREQ, src: n.Src, dst: n.Dst, id: n.ID, size: n.Size}
	p := h.pack()
	return phy.ControlBlock(phy.BTNotify, p[:]), nil
}

// UnpackNotify decodes an /N/ payload.
func UnpackNotify(p [phy.MemHeaderBytes]byte) Notification {
	h := unpackHeader(p)
	return Notification{Src: h.src, Dst: h.dst, ID: h.id, Size: h.size}
}

// GrantMsg is the /G/ payload: permission for the receiving host to send a
// chunk of the identified message.
type GrantMsg struct {
	// Dst is the data message's destination (with the message id this keys
	// the sender's state table).
	Dst   int
	ID    uint8
	Chunk uint32
}

// PackGrant renders the /G/ block.
func (g GrantMsg) PackGrant() (phy.Block, error) {
	if g.Dst < 0 || g.Dst >= MaxPorts {
		return phy.Block{}, fmt.Errorf("%w: %d", ErrBadPort, g.Dst)
	}
	h := header{kind: KindWREQ, dst: g.Dst, id: g.ID, size: g.Chunk}
	p := h.pack()
	return phy.ControlBlock(phy.BTGrant, p[:]), nil
}

// UnpackGrant decodes a /G/ payload.
func UnpackGrant(p [phy.MemHeaderBytes]byte) GrantMsg {
	h := unpackHeader(p)
	return GrantMsg{Dst: h.dst, ID: h.id, Chunk: h.size}
}
