package edm

import (
	"fmt"

	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/sim"
)

// SwitchStats counts switch-level events.
type SwitchStats struct {
	NotifiesRX     uint64
	RequestsRX     uint64
	ChunksForward  uint64
	GrantsTX       uint64
	RejectedNotify uint64
	RxErrors       uint64
	// CircuitResyncs counts stale circuit-FIFO heads discarded when a
	// granted chunk never materialized (its grant block was lost on a
	// disabled or lossy link) — the §3.3 circuit-teardown repair path.
	CircuitResyncs uint64
	// MaxEgressBacklog is the largest number of blocks ever queued on any
	// egress port — the paper's zero-queuing claim (§3.1.1 property 1)
	// bounds it to roughly one in-flight chunk plus control blocks.
	MaxEgressBacklog int
}

// Switch is EDM's switch network stack (Figure 3c): per-port PHY demuxes on
// ingress, the central scheduler, a grant generator, and virtual-circuit
// forwarding of data chunks from ingress to egress with no layer-2
// processing. /N/ blocks and RREQ/RMWREQ messages are intercepted as demand
// notifications; WREQ/RRES chunks are forwarded along the circuit FIFO that
// grants established.
type Switch struct {
	engine *sim.Engine
	cfg    Config
	sched  *sched.Scheduler
	ports  []*swPort
	stats  SwitchStats
}

type swPort struct {
	sw       *Switch
	idx      int
	egress   *Link // toward the host on this port
	mux      *phy.TxMux
	pumpBusy bool
	demux    phy.RxDemux
	circuits []int // FIFO of egress ports for inbound chunks, in grant order
}

func newSwitch(engine *sim.Engine, cfg Config) *Switch {
	sw := &Switch{engine: engine, cfg: cfg}
	sw.sched = sched.New(engine, sched.Config{
		Ports:            cfg.Ports,
		ChunkBytes:       int64(cfg.ChunkBytes),
		LinkBandwidth:    cfg.LinkBandwidth,
		ClockPeriod:      cfg.SchedClockPeriod,
		Policy:           cfg.Policy,
		MaxActivePerPair: cfg.MaxActivePerPair,
		MaxIterations:    cfg.MaxPIMIterations,
	})
	sw.sched.OnGrant = sw.onGrant
	sw.ports = make([]*swPort, cfg.Ports)
	for i := range sw.ports {
		sw.ports[i] = &swPort{sw: sw, idx: i, mux: phy.NewTxMux(cfg.MuxPolicy)}
	}
	return sw
}

// Stats returns a copy of the switch counters.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// Scheduler exposes the embedded scheduler (read-only use in experiments).
func (sw *Switch) Scheduler() *sched.Scheduler { return sw.sched }

func (sw *Switch) cycles(n int) sim.Time { return sim.Time(n) * sw.cfg.BlockPeriod }

// receive is the ingress path for port p.
func (sw *Switch) receive(p int, b phy.Block) {
	port := sw.ports[p]
	ev, err := port.demux.Feed(b)
	if err != nil {
		sw.stats.RxErrors++
		port.demux = phy.RxDemux{}
		return
	}
	switch {
	case ev.Notify != nil:
		n := UnpackNotify(*ev.Notify)
		sw.stats.NotifiesRX++
		sw.engine.After(sw.cycles(SwClassifyCycles), func() {
			err := sw.sched.Notify(sched.MsgRef{
				Src: p, Dst: n.Dst, ID: uint64(n.ID), Size: int64(n.Size),
			})
			if err != nil {
				sw.stats.RejectedNotify++
			}
		})
	case ev.Msg != nil:
		sw.handleMsg(p, *ev.Msg)
	case ev.Grant != nil:
		// Hosts never send grants.
		sw.stats.RxErrors++
	case ev.FrameBlock != nil:
		// Non-memory traffic traverses the standard layer-2 pipeline, which
		// EDM leaves untouched; this reproduction forwards memory traffic
		// only and counts stray frame blocks.
	}
}

// handleMsg classifies a completed inbound memory message: requests become
// notifications, data chunks ride their pre-established circuit.
func (sw *Switch) handleMsg(p int, w phy.MemMsg) {
	kind, src, dst, id, size, _ := PeekHeader(w)
	switch kind {
	case KindRREQ, KindRMW:
		sw.stats.RequestsRX++
		sw.engine.After(sw.cycles(SwClassifyCycles), func() {
			// The RREQ is an implicit demand notification for the RRES
			// from dst (memory node) back to src (requester); the wire
			// message itself is buffered as the Tag and forwarded on the
			// first grant (§3.1.1).
			err := sw.sched.Notify(sched.MsgRef{
				Src: dst, Dst: src, ID: uint64(id), Size: int64(size), Tag: w,
			})
			if err != nil {
				sw.stats.RejectedNotify++
			}
		})
	case KindWREQ, KindRRES:
		port := sw.ports[p]
		// Stale circuit heads accumulate when a grant block is dropped on
		// a disabled/lossy link after its circuit was recorded: the
		// granted chunk never arrives, and without repair every later
		// chunk from this ingress would pop the wrong head and misroute.
		// The chunk's header dst is exactly what the scheduler granted
		// toward, so heads that do not match it belong to lost grants —
		// discard them (the §3.3 teardown of a faulted circuit).
		for len(port.circuits) > 0 && port.circuits[0] != dst {
			port.circuits = port.circuits[1:]
			sw.stats.CircuitResyncs++
		}
		if len(port.circuits) == 0 {
			sw.stats.RxErrors++ // chunk with no circuit: protocol violation
			return
		}
		out := port.circuits[0]
		port.circuits = port.circuits[1:]
		sw.stats.ChunksForward++
		sw.engine.After(sw.cycles(SwForwardCycles), func() {
			sw.ports[out].enqueue(w.Encode()...)
		})
	default:
		sw.stats.RxErrors++
	}
}

// onGrant implements the switch side of a scheduling decision.
func (sw *Switch) onGrant(g sched.Grant) {
	// The circuit — granted chunks arrive on ingress g.Src and leave on
	// egress g.Dst — is recorded when the grant block is enqueued on the
	// egress mux, NOT at issue time: an implicit first-RRES grant (the
	// forwarded RREQ, SwForwardCycles) and an explicit /G/
	// (SwGenGrantCycles) cross the switch with different pipeline delays,
	// so two grants to the same data sender can reach it in the opposite
	// of issue order when the scheduler clock outpaces the skew (e.g. the
	// 3 GHz ASIC clock of §4.3). The host serves its grant queue in
	// arrival order; stamping the circuit at egress-enqueue time keeps
	// both FIFOs identically ordered, where stamping at issue time
	// misroutes chunks to the wrong egress under concurrent reads.
	sw.stats.GrantsTX++

	if g.First && g.Tag != nil {
		// First grant of an RRES: forward the buffered RREQ/RMWREQ to the
		// memory node (it doubles as the grant).
		w, ok := g.Tag.(phy.MemMsg)
		if !ok {
			panic("edm: grant tag is not a wire message")
		}
		sw.engine.After(sw.cycles(SwForwardCycles), func() {
			sw.ports[g.Src].circuits = append(sw.ports[g.Src].circuits, g.Dst)
			sw.ports[g.Src].enqueue(w.Encode()...)
		})
		return
	}
	gb, err := GrantMsg{Dst: g.Dst, ID: uint8(g.ID), Chunk: uint32(g.Chunk)}.PackGrant()
	if err != nil {
		panic(fmt.Sprintf("edm: pack grant: %v", err))
	}
	sw.engine.After(sw.cycles(SwGenGrantCycles), func() {
		sw.ports[g.Src].circuits = append(sw.ports[g.Src].circuits, g.Dst)
		sw.ports[g.Src].enqueue(gb)
	})
}

// enqueue queues blocks on the port's egress mux and ensures the pump runs.
func (p *swPort) enqueue(blocks ...phy.Block) {
	p.mux.EnqueueMemory(blocks...)
	if b := p.mux.MemoryBacklog(); b > p.sw.stats.MaxEgressBacklog {
		p.sw.stats.MaxEgressBacklog = b
	}
	if p.pumpBusy {
		return
	}
	p.pumpBusy = true
	p.sw.engine.After(p.sw.cfg.BlockPeriod, p.pumpStep)
}

func (p *swPort) pumpStep() {
	if p.mux.MemoryBacklog()+p.mux.FrameBacklog() == 0 {
		p.pumpBusy = false
		return
	}
	b, src := p.mux.Next()
	if src != phy.SrcIdle && p.egress != nil {
		p.egress.Send(b)
	}
	p.sw.engine.After(p.sw.cfg.BlockPeriod, p.pumpStep)
}
