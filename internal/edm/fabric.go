package edm

import (
	"fmt"

	"repro/internal/memctl"
	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config parameterizes a Fabric. The defaults reproduce the paper's 25 GbE
// FPGA testbed (§4.1, Table 1).
type Config struct {
	// Ports is the number of hosts on the single switch.
	Ports int
	// ChunkBytes is the scheduler's maximum grant size c.
	ChunkBytes int
	// MaxActivePerPair is X, the sender-side notification window.
	MaxActivePerPair int
	// BlockPeriod is the PCS cycle (2.56 ns at 25 GbE).
	BlockPeriod sim.Time
	// SchedClockPeriod is the scheduler pipeline clock.
	SchedClockPeriod sim.Time
	// LinkBandwidth in Gbps, used for busy-release pacing.
	LinkBandwidth sim.Gbps
	// PropDelay is the one-hop propagation delay.
	PropDelay sim.Time
	// PMADelay is the PMA/PMD+transceiver delay per crossing.
	PMADelay sim.Time
	// Policy is the scheduling policy (FCFS or SRPT).
	Policy sched.Policy
	// MuxPolicy controls memory/frame interleaving on every TX path.
	MuxPolicy phy.MuxPolicy
	// ReadTimeout bounds outstanding reads; expiry yields a NULL response.
	ReadTimeout sim.Time
	// MaxPIMIterations caps matching iterations (0 = maximal, the default).
	MaxPIMIterations int
}

// DefaultConfig is the 25 GbE testbed configuration.
func DefaultConfig(ports int) Config {
	return Config{
		Ports:            ports,
		ChunkBytes:       64,
		MaxActivePerPair: 3,
		BlockPeriod:      BlockPeriod,
		SchedClockPeriod: BlockPeriod, // FPGA prototype clocks the scheduler at the PCS clock
		LinkBandwidth:    25,
		PropDelay:        DefaultPropDelay,
		PMADelay:         PMAPMDDelay,
		Policy:           sched.SRPT,
		MuxPolicy:        phy.PolicyFair,
		ReadTimeout:      100 * sim.Microsecond,
	}
}

// Fabric assembles hosts, links and the EDM switch into a runnable
// block-level testbed: the software equivalent of the paper's three-FPGA
// setup (Figure 4), generalized to N ports.
type Fabric struct {
	Engine *sim.Engine
	cfg    Config
	sw     *Switch
	hosts  []*Host
	up     []*Link // host -> switch
	down   []*Link // switch -> host
}

// New builds a fabric with cfg.Ports hosts, none of which has memory
// attached yet (see AttachMemory).
func New(cfg Config) *Fabric { return NewWithEngine(cfg, sim.NewEngine()) }

// NewWithEngine builds a fabric on an existing event engine, so multiple
// fabrics can share one simulated timeline (used by DualFabric for the
// redundant-ToR design of §3.3).
func NewWithEngine(cfg Config, engine *sim.Engine) *Fabric {
	if cfg.Ports < 2 || cfg.Ports > MaxPorts {
		panic(fmt.Sprintf("edm: invalid port count %d", cfg.Ports))
	}
	if cfg.ChunkBytes <= 0 || cfg.BlockPeriod <= 0 || cfg.LinkBandwidth <= 0 {
		panic("edm: invalid config")
	}
	f := &Fabric{Engine: engine, cfg: cfg}
	f.sw = newSwitch(f.Engine, cfg)
	f.hosts = make([]*Host, cfg.Ports)
	f.up = make([]*Link, cfg.Ports)
	f.down = make([]*Link, cfg.Ports)
	for i := 0; i < cfg.Ports; i++ {
		i := i
		up := NewLink(f.Engine, cfg.PropDelay, cfg.PMADelay)
		down := NewLink(f.Engine, cfg.PropDelay, cfg.PMADelay)
		h := newHost(f.Engine, cfg, i, up)
		up.Deliver = func(b phy.Block) { f.sw.receive(i, b) }
		down.Deliver = h.receive
		f.sw.ports[i].egress = down
		h.onWriteApplied = func(srcPort int, id uint8) {
			f.hosts[srcPort].fireWriteApplied(i, id)
		}
		f.hosts[i] = h
		f.up[i] = up
		f.down[i] = down
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Host returns the host at port i.
func (f *Fabric) Host(i int) *Host { return f.hosts[i] }

// Switch returns the EDM switch.
func (f *Fabric) Switch() *Switch { return f.sw }

// AttachMemory turns port i into a memory node backed by ctl.
func (f *Fabric) AttachMemory(i int, ctl *memctl.Controller) {
	f.hosts[i].mem = ctl
}

// DisableLink administratively disables both directions of port i's link
// (§3.3 fault handling).
func (f *Fabric) DisableLink(i int) {
	f.up[i].Disable()
	f.down[i].Disable()
}

// EnableLink re-enables port i's link.
func (f *Fabric) EnableLink(i int) {
	f.up[i].Enable()
	f.down[i].Enable()
}

// UpLink returns the host->switch link for fault injection in tests.
func (f *Fabric) UpLink(i int) *Link { return f.up[i] }

// DownLink returns the switch->host link.
func (f *Fabric) DownLink(i int) *Link { return f.down[i] }

// LinkStats aggregates the fault counters of every link in the fabric
// (both directions of every port).
func (f *Fabric) LinkStats() LinkStats {
	var s LinkStats
	for i := 0; i < f.cfg.Ports; i++ {
		s.Add(f.up[i].Stats())
		s.Add(f.down[i].Stats())
	}
	return s
}

// Run drains all pending events.
func (f *Fabric) Run() { f.Engine.Run() }

// RunUntil advances simulated time to the deadline.
func (f *Fabric) RunUntil(t sim.Time) { f.Engine.RunUntil(t) }

// ReadSync issues a read and runs the engine until it completes, returning
// the data and the elapsed fabric latency. Intended for tests, examples and
// unloaded-latency experiments.
func (f *Fabric) ReadSync(from, memNode int, addr uint64, n int) ([]byte, sim.Time, error) {
	start := f.Engine.Now()
	var data []byte
	var err error
	done := false
	f.hosts[from].Read(memNode, addr, n, func(d []byte, e error) {
		data, err, done = d, e, true
	})
	for !done && f.Engine.Step() {
	}
	if !done {
		return nil, 0, fmt.Errorf("edm: read never completed")
	}
	return data, f.Engine.Now() - start, err
}

// WriteSync issues a write and runs until it is applied remotely.
func (f *Fabric) WriteSync(from, memNode int, addr uint64, data []byte) (sim.Time, error) {
	start := f.Engine.Now()
	var err error
	done := false
	f.hosts[from].Write(memNode, addr, data, func(e error) {
		err, done = e, true
	})
	for !done && f.Engine.Step() {
	}
	if !done {
		return 0, fmt.Errorf("edm: write never completed")
	}
	return f.Engine.Now() - start, err
}

// RMWSync issues an atomic and runs until its response arrives.
func (f *Fabric) RMWSync(from, memNode int, addr uint64, op memctl.RMWOp, args ...uint64) (uint64, sim.Time, error) {
	start := f.Engine.Now()
	var result uint64
	var err error
	done := false
	f.hosts[from].RMW(memNode, addr, op, args, func(d []byte, e error) {
		if e == nil && len(d) == 8 {
			for i := 7; i >= 0; i-- {
				result = result<<8 | uint64(d[i])
			}
		}
		err, done = e, true
	})
	for !done && f.Engine.Step() {
	}
	if !done {
		return 0, 0, fmt.Errorf("edm: RMW never completed")
	}
	return result, f.Engine.Now() - start, err
}
