package edm

import (
	"testing"

	"repro/internal/memctl"
	"repro/internal/workload"
)

// TestZeroQueuingAtSwitch verifies the paper's §3.1.1 property 1: because
// the matching admits at most one sender per receiver, the switch never
// accumulates more than about one in-flight chunk (plus single-block
// control messages) on any egress port, even under a sustained incast of
// remote reads from many compute nodes to one memory node.
func TestZeroQueuingAtSwitch(t *testing.T) {
	const computes = 8
	cfg := DefaultConfig(computes + 1)
	f := New(cfg)
	f.AttachMemory(computes, fastMem())
	mem := f.Host(computes).Memory()
	for i := 0; i < computes; i++ {
		if _, err := mem.Write(uint64(i)*4096, make([]byte, 256)); err != nil {
			t.Fatal(err)
		}
	}
	// Three rounds of full incast.
	done := 0
	for r := 0; r < 3; r++ {
		for i := 0; i < computes; i++ {
			i := i
			f.Host(i).Read(computes, uint64(i)*4096, 256, func(_ []byte, err error) {
				if err != nil {
					t.Errorf("read: %v", err)
				}
				done++
			})
		}
		f.Run()
	}
	if done != 3*computes {
		t.Fatalf("completed %d", done)
	}
	st := f.Switch().Stats()
	// One 64 B chunk is 10 blocks; with the RREQ forwards and grant blocks
	// interleaved the bound is ~2 chunks' worth. A store-and-forward
	// shared-queue switch would have accumulated an 8-deep incast here.
	chunkBlocks := 2 + (cfg.ChunkBytes+7)/8
	if st.MaxEgressBacklog > 3*chunkBlocks {
		t.Fatalf("max egress backlog %d blocks exceeds ~%d (zero-queuing violated)",
			st.MaxEgressBacklog, 3*chunkBlocks)
	}
	t.Logf("max egress backlog: %d blocks (chunk = %d blocks)", st.MaxEgressBacklog, chunkBlocks)
}

// TestSchedulerPairLimitHoldback: a burst of operations beyond X to the
// same destination is admitted gradually by the sender-side window; the
// switch must never reject a notification (the sender throttles first).
func TestSchedulerPairLimitHoldback(t *testing.T) {
	f := New(DefaultConfig(2))
	f.AttachMemory(1, fastMem())
	done := 0
	for i := 0; i < 20; i++ {
		f.Host(0).Read(1, 0, 64, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			done++
		})
	}
	f.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	if rej := f.Switch().Stats().RejectedNotify; rej != 0 {
		t.Fatalf("switch rejected %d notifications despite sender window", rej)
	}
}

// TestGrantsNeverExceedDemand: total granted bytes equal the total demand
// exactly for a random mixed workload (conservation at the scheduler).
func TestGrantsNeverExceedDemand(t *testing.T) {
	const hosts = 5
	f := New(DefaultConfig(hosts + 1))
	f.AttachMemory(hosts, memctl.New(memctl.DefaultConfig()))
	rng := workload.NewRand(5)
	var demand int64
	ops := 0
	for i := 0; i < 60; i++ {
		h := rng.Intn(hosts)
		size := 8 * (1 + rng.Intn(32))
		if rng.Intn(2) == 0 {
			f.Host(h).Read(hosts, uint64(i)*512, size, nil)
			demand += int64(size)
		} else {
			f.Host(h).Write(hosts, uint64(i)*512, make([]byte, size), nil)
			demand += int64(size) + 8 // WREQ body carries the address
		}
		ops++
	}
	f.Run()
	grants, notifies, _, _ := f.Switch().Scheduler().Stats()
	if notifies != uint64(ops) {
		t.Fatalf("notifies = %d, want %d", notifies, ops)
	}
	// Each grant moves at most ChunkBytes; their sum must cover demand
	// exactly: ceil per message.
	if grants == 0 {
		t.Fatal("no grants issued")
	}
	st := f.Switch().Stats()
	if st.ChunksForward != grants {
		t.Fatalf("chunks forwarded %d != grants %d (lost or duplicated chunks)",
			st.ChunksForward, grants)
	}
}
