package edm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/memctl"
	"repro/internal/phy"
)

func TestMessageWireRoundTrip(t *testing.T) {
	cases := []*Message{
		{Kind: KindWREQ, Src: 3, Dst: 200, ID: 7, Addr: 0xdeadbeef, Data: bytes.Repeat([]byte{9}, 64)},
		{Kind: KindWREQ, Src: 0, Dst: 1, ID: 255, Addr: 8, Data: []byte{1}},
		{Kind: KindRRES, Src: 511, Dst: 0, ID: 42, Data: bytes.Repeat([]byte{3}, 100)},
	}
	for _, in := range cases {
		w, err := in.Marshal()
		if err != nil {
			t.Fatalf("%v: %v", in.Kind, err)
		}
		out, err := Unmarshal(w)
		if err != nil {
			t.Fatalf("%v: %v", in.Kind, err)
		}
		if out.Kind != in.Kind || out.Src != in.Src || out.Dst != in.Dst || out.ID != in.ID {
			t.Fatalf("%v: header mismatch %+v", in.Kind, out)
		}
		if in.Kind != KindRRES && out.Addr != in.Addr {
			t.Fatalf("%v: addr %#x != %#x", in.Kind, out.Addr, in.Addr)
		}
		if !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("%v: data mismatch", in.Kind)
		}
	}
}

func TestRREQWireCarriesDemand(t *testing.T) {
	in := &Message{Kind: KindRREQ, Src: 1, Dst: 2, ID: 9, Addr: 4096, Len: 1024}
	w, err := in.MarshalRREQ()
	if err != nil {
		t.Fatal(err)
	}
	// 8 B RREQ = 3 blocks on the wire.
	if got := w.WireBlocks(); got != 3 {
		t.Fatalf("RREQ wire blocks = %d, want 3", got)
	}
	out, demand, err := UnmarshalRREQ(w)
	if err != nil {
		t.Fatal(err)
	}
	if demand != 1024 || out.Addr != 4096 || out.Len != 1024 {
		t.Fatalf("demand=%d addr=%d len=%d", demand, out.Addr, out.Len)
	}
}

func TestRMWWire(t *testing.T) {
	in := &Message{Kind: KindRMW, Src: 1, Dst: 2, ID: 3, Addr: 64,
		Op: memctl.OpCAS, Args: []uint64{10, 20}}
	w, err := in.MarshalRREQ()
	if err != nil {
		t.Fatal(err)
	}
	out, demand, err := UnmarshalRREQ(w)
	if err != nil {
		t.Fatal(err)
	}
	if demand != 8 {
		t.Fatalf("RMW RRES demand = %d, want 8 (inferred from opcode)", demand)
	}
	if out.Op != memctl.OpCAS || len(out.Args) != 2 || out.Args[0] != 10 || out.Args[1] != 20 {
		t.Fatalf("RMW fields: %+v", out)
	}
}

func TestChunkedMarshal(t *testing.T) {
	m := &Message{Kind: KindRRES, Src: 1, Dst: 2, ID: 5}
	body := make([]byte, 200)
	for i := range body {
		body[i] = byte(i)
	}
	// Chunk into 64-byte wire messages and reassemble.
	var got []byte
	var total int
	for off := 0; off < len(body); off += 64 {
		n := 64
		if off+n > len(body) {
			n = len(body) - off
		}
		w, err := m.MarshalChunk(body, off, n)
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, _, size, cont := PeekHeader(w)
		if size != len(body) {
			t.Fatalf("chunk at %d: size field %d, want %d", off, size, len(body))
		}
		if cont != (off > 0) {
			t.Fatalf("chunk at %d: cont=%v", off, cont)
		}
		got = append(got, w.Body...)
		total += len(w.Body)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("reassembled body mismatch")
	}
}

func TestChunkValidation(t *testing.T) {
	m := &Message{Kind: KindRRES, Src: 1, Dst: 2}
	body := make([]byte, 10)
	if _, err := m.MarshalChunk(body, 8, 4); !errors.Is(err, ErrBadWire) {
		t.Errorf("overrun chunk: %v", err)
	}
	if _, err := m.MarshalChunk(body, -1, 4); !errors.Is(err, ErrBadWire) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := m.MarshalChunk(body, 0, 0); !errors.Is(err, ErrBadWire) {
		t.Errorf("empty chunk: %v", err)
	}
}

func TestWireSizeLimits(t *testing.T) {
	m := &Message{Kind: KindWREQ, Src: 1, Dst: 2, Data: make([]byte, MaxMsgLen)}
	if _, err := m.Marshal(); !errors.Is(err, ErrMsgTooLarge) {
		t.Errorf("oversize: %v", err)
	}
	m2 := &Message{Kind: KindRREQ, Src: 600, Dst: 2}
	if _, err := m2.MarshalRREQ(); !errors.Is(err, ErrBadPort) {
		t.Errorf("bad port: %v", err)
	}
}

func TestNotifyGrantBlocks(t *testing.T) {
	n := Notification{Src: 17, Dst: 300, ID: 200, Size: 4096}
	nb, err := n.PackNotify()
	if err != nil {
		t.Fatal(err)
	}
	if nb.Type() != phy.BTNotify {
		t.Fatal("notify block type wrong")
	}
	if got := UnpackNotify(nb.ControlPayload()); got != n {
		t.Fatalf("notify round trip: %+v", got)
	}
	g := GrantMsg{Dst: 300, ID: 200, Chunk: 256}
	gb, err := g.PackGrant()
	if err != nil {
		t.Fatal(err)
	}
	if gb.Type() != phy.BTGrant {
		t.Fatal("grant block type wrong")
	}
	if got := UnpackGrant(gb.ControlPayload()); got != g {
		t.Fatalf("grant round trip: %+v", got)
	}
}

func TestNotifyGrantAreSingleBlocks(t *testing.T) {
	// §3.1.4: a notification and a grant each fit in one 66-bit block.
	// Their wire cost is what makes the 6% overhead bound work for 64 B
	// chunks: 1 grant block per 10-block chunk.
	n, _ := Notification{Src: 1, Dst: 2, ID: 3, Size: 64}.PackNotify()
	g, _ := GrantMsg{Dst: 2, ID: 3, Chunk: 64}.PackGrant()
	if !n.IsMemory() || !g.IsMemory() {
		t.Fatal("control blocks not in EDM vocabulary")
	}
}

func TestHeaderPackProperty(t *testing.T) {
	f := func(kind uint8, src, dst uint16, id uint8, size uint16, op uint8, cont bool) bool {
		h := header{
			kind: Kind(kind%4 + 1),
			src:  int(src % MaxPorts),
			dst:  int(dst % MaxPorts),
			id:   id,
			size: uint32(size),
			op:   op,
			cont: cont,
		}
		return unpackHeader(h.pack()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeekKindMatchesUnmarshal(t *testing.T) {
	msgs := []*Message{
		{Kind: KindRREQ, Src: 1, Dst: 2, Len: 64},
		{Kind: KindRMW, Src: 1, Dst: 2, Op: memctl.OpSwap, Args: []uint64{1}},
		{Kind: KindWREQ, Src: 1, Dst: 2, Data: []byte{1, 2, 3}},
		{Kind: KindRRES, Src: 2, Dst: 1, Data: []byte{9}},
	}
	for _, m := range msgs {
		var w phy.MemMsg
		var err error
		if m.Kind == KindRREQ || m.Kind == KindRMW {
			w, err = m.MarshalRREQ()
		} else {
			w, err = m.Marshal()
		}
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if got := PeekKind(w); got != m.Kind {
			t.Errorf("PeekKind = %v, want %v", got, m.Kind)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRREQ: "RREQ", KindWREQ: "WREQ", KindRMW: "RMWREQ", KindRRES: "RRES", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
}

func TestWireSizeMatchesBody(t *testing.T) {
	m := &Message{Kind: KindWREQ, Src: 0, Dst: 1, Addr: 4, Data: make([]byte, 100)}
	n, err := m.WireSize()
	if err != nil || n != 108 {
		t.Fatalf("WireSize = %d, %v", n, err)
	}
}
