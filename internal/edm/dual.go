package edm

import (
	"errors"

	"repro/internal/memctl"
	"repro/internal/sim"
)

// DualFabric implements the paper's fault-tolerance design (§3.3): a
// primary and a back-up ToR switch network. Every outgoing remote-memory
// operation is mirrored on both planes so the two switches observe the same
// message stream and keep their scheduler state synchronized (no consensus
// needed: all communication is single-hop, so both replicas see each pair's
// messages in the same order). The receive side accepts the first completed
// copy of an operation and ignores the duplicate. If either plane's switch
// or links fail, operations continue over the survivor with no
// reconfiguration; only the per-op latency changes (the loser's copy times
// out silently).
type DualFabric struct {
	// Primary and Backup are complete independent fabrics (switch + links).
	Primary, Backup *Fabric
	engine          *sim.Engine
}

// ErrBothPlanesFailed reports an operation that completed on neither plane.
var ErrBothPlanesFailed = errors.New("edm: operation failed on both planes")

// NewDual builds a dual-plane fabric; both planes share one event engine so
// simulated time is common.
func NewDual(cfg Config) *DualFabric {
	engine := sim.NewEngine()
	return &DualFabric{
		Primary: NewWithEngine(cfg, engine),
		Backup:  NewWithEngine(cfg, engine),
		engine:  engine,
	}
}

// Engine returns the shared event engine.
func (d *DualFabric) Engine() *sim.Engine { return d.engine }

// AttachMemory attaches identical memory state to port i on both planes.
// The two controllers are replicas: both apply every write and RMW because
// both planes carry every message.
func (d *DualFabric) AttachMemory(i int, mk func() *memctl.Controller) {
	d.Primary.AttachMemory(i, mk())
	d.Backup.AttachMemory(i, mk())
}

// FailPrimarySwitch disables every link of the primary plane, simulating a
// ToR switch failure.
func (d *DualFabric) FailPrimarySwitch() {
	for i := 0; i < d.Primary.cfg.Ports; i++ {
		d.Primary.DisableLink(i)
	}
}

// Read mirrors a remote read on both planes and delivers the first copy.
func (d *DualFabric) Read(from, memNode int, addr uint64, n int, cb ReadCallback) {
	done := false
	var lastErr error
	pending := 2
	each := func(data []byte, err error) {
		pending--
		if done {
			return
		}
		if err == nil {
			done = true
			cb(data, nil)
			return
		}
		lastErr = err
		if pending == 0 {
			done = true
			cb(nil, errors.Join(ErrBothPlanesFailed, lastErr))
		}
	}
	d.Primary.Host(from).Read(memNode, addr, n, each)
	d.Backup.Host(from).Read(memNode, addr, n, each)
}

// Write mirrors a remote write on both planes; cb fires when the first
// replica has applied it. Both replicas converge because each plane applies
// every mirrored write in the same per-pair order.
func (d *DualFabric) Write(from, memNode int, addr uint64, data []byte, cb WriteCallback) {
	done := false
	pending := 2
	each := func(err error) {
		pending--
		if done {
			return
		}
		if err == nil {
			done = true
			if cb != nil {
				cb(nil)
			}
			return
		}
		if pending == 0 {
			done = true
			if cb != nil {
				cb(errors.Join(ErrBothPlanesFailed, err))
			}
		}
	}
	d.Primary.Host(from).Write(memNode, addr, data, each)
	d.Backup.Host(from).Write(memNode, addr, data, each)
}

// Run drains the shared engine.
func (d *DualFabric) Run() { d.engine.Run() }
