// Package mac implements Ethernet Media Access Control framing.
//
// It exists for two reasons. First, the paper's baselines (raw Ethernet,
// RoCEv2, TCP/IP) all run on top of the MAC, so reproducing their bandwidth
// and latency behaviour requires real MAC semantics: 64 B minimum frame,
// 12 B inter-frame gap, 8 B preamble, CRC-32 FCS, and no intra-frame
// preemption. Second, EDM runs in parallel with the standard MAC pipeline,
// and the interference experiments need genuine MAC frames to preempt.
package mac

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Ethernet frame geometry (IEEE 802.3).
const (
	AddrBytes     = 6
	HeaderBytes   = 2*AddrBytes + 2 // dst + src + EtherType
	FCSBytes      = 4
	MinFrameBytes = 64   // including FCS; enforced by padding
	MTUBytes      = 1500 // maximum payload
	MaxFrameBytes = HeaderBytes + MTUBytes + FCSBytes
	JumboMTUBytes = 9000
	PreambleBytes = 8  // preamble + SFD, sent before every frame
	IFGBytes      = 12 // minimum inter-frame gap (96 bit times)
	// MinPayloadBytes is the smallest payload that avoids padding.
	MinPayloadBytes = MinFrameBytes - HeaderBytes - FCSBytes // 46
)

// EtherType values used in this repo.
const (
	EtherTypeIPv4 uint16 = 0x0800
	// EtherTypeRemoteMem marks frames carrying remote-memory messages for
	// the MAC-layer baselines (raw Ethernet / RoCE-like encapsulation).
	EtherTypeRemoteMem uint16 = 0x88b5 // IEEE "local experimental" value
)

// Addr is a 48-bit MAC address.
type Addr [AddrBytes]byte

// String renders the conventional colon-separated form.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// NodeAddr derives a deterministic locally-administered unicast address for
// a node index, convenient for simulations.
func NodeAddr(node int) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	binary.BigEndian.PutUint32(a[2:], uint32(node))
	return a
}

// Frame is a parsed Ethernet frame.
type Frame struct {
	Dst, Src  Addr
	EtherType uint16
	Payload   []byte
	// Padded reports how many pad bytes were appended to reach the minimum
	// frame size (set by Unmarshal when length information is available
	// from the payload's own framing; zero otherwise).
	Padded int
}

// Marshal errors.
var (
	ErrPayloadTooLarge = errors.New("mac: payload exceeds MTU")
	ErrFrameTooShort   = errors.New("mac: frame below minimum size")
	ErrBadFCS          = errors.New("mac: FCS mismatch")
)

// Marshal renders the frame to wire bytes: header, payload, padding to the
// 64 B minimum, and CRC-32 FCS. The preamble and IFG are not part of the
// returned bytes; use WireBytes for full bandwidth accounting.
func (f *Frame) Marshal() ([]byte, error) {
	return f.marshalMTU(MTUBytes)
}

// MarshalJumbo is Marshal with the 9000 B jumbo MTU.
func (f *Frame) MarshalJumbo() ([]byte, error) {
	return f.marshalMTU(JumboMTUBytes)
}

func (f *Frame) marshalMTU(mtu int) ([]byte, error) {
	if len(f.Payload) > mtu {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(f.Payload), mtu)
	}
	n := HeaderBytes + len(f.Payload)
	if n+FCSBytes < MinFrameBytes {
		n = MinFrameBytes - FCSBytes
	}
	buf := make([]byte, n+FCSBytes)
	copy(buf[0:], f.Dst[:])
	copy(buf[AddrBytes:], f.Src[:])
	binary.BigEndian.PutUint16(buf[2*AddrBytes:], f.EtherType)
	copy(buf[HeaderBytes:], f.Payload)
	fcs := crc32.ChecksumIEEE(buf[:n])
	binary.LittleEndian.PutUint32(buf[n:], fcs)
	return buf, nil
}

// Unmarshal parses wire bytes produced by Marshal, verifying the FCS.
// The returned payload includes any padding (the MAC cannot distinguish pad
// bytes from payload; higher layers carry their own lengths).
func Unmarshal(wire []byte) (*Frame, error) {
	if len(wire) < MinFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(wire))
	}
	body := wire[:len(wire)-FCSBytes]
	want := binary.LittleEndian.Uint32(wire[len(wire)-FCSBytes:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadFCS
	}
	var f Frame
	copy(f.Dst[:], body[0:])
	copy(f.Src[:], body[AddrBytes:])
	f.EtherType = binary.BigEndian.Uint16(body[2*AddrBytes:])
	f.Payload = append([]byte(nil), body[HeaderBytes:]...)
	return &f, nil
}

// FrameBytesFor reports the on-wire frame size (header+payload+pad+FCS) for
// an n-byte payload, excluding preamble and IFG.
func FrameBytesFor(n int) int {
	size := HeaderBytes + n + FCSBytes
	if size < MinFrameBytes {
		size = MinFrameBytes
	}
	return size
}

// WireBytes reports the full link occupancy of one frame carrying an n-byte
// payload: preamble + frame + inter-frame gap. This is the denominator in
// the paper's Limitation 1 and 2 bandwidth-overhead arguments.
func WireBytes(n int) int {
	return PreambleBytes + FrameBytesFor(n) + IFGBytes
}

// Efficiency reports the fraction of link bandwidth delivering payload when
// sending n-byte payloads back to back.
func Efficiency(n int) float64 {
	return float64(n) / float64(WireBytes(n))
}
