package mac

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	f := &Frame{
		Dst:       NodeAddr(1),
		Src:       NodeAddr(2),
		EtherType: EtherTypeRemoteMem,
		Payload:   bytes.Repeat([]byte{0xab}, 100),
	}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.EtherType != f.EtherType {
		t.Fatal("header mismatch")
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestMinimumFramePadding(t *testing.T) {
	// An 8 B payload — a remote memory read request — still occupies a full
	// 64 B frame: the paper's Limitation 1.
	f := &Frame{Payload: make([]byte, 8)}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != MinFrameBytes {
		t.Fatalf("8B payload frame = %d bytes, want %d", len(wire), MinFrameBytes)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Padding is indistinguishable at the MAC: payload comes back padded.
	if len(got.Payload) != MinPayloadBytes {
		t.Fatalf("padded payload = %d, want %d", len(got.Payload), MinPayloadBytes)
	}
}

func TestMTUEnforced(t *testing.T) {
	f := &Frame{Payload: make([]byte, MTUBytes+1)}
	if _, err := f.Marshal(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize marshal: %v", err)
	}
	if _, err := f.MarshalJumbo(); err != nil {
		t.Fatalf("jumbo marshal of 1501B: %v", err)
	}
	f.Payload = make([]byte, JumboMTUBytes+1)
	if _, err := f.MarshalJumbo(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize jumbo: %v", err)
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	f := &Frame{Dst: NodeAddr(1), Payload: make([]byte, 64)}
	wire, _ := f.Marshal()
	for _, i := range []int{0, 13, len(wire) - 1} {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x01
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadFCS) {
			t.Errorf("corruption at byte %d not detected: %v", i, err)
		}
	}
}

func TestUnmarshalTooShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 32)); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("short frame: %v", err)
	}
}

func TestWireBytesAccounting(t *testing.T) {
	// 8B payload: 8 preamble + 64 frame + 12 IFG = 84 bytes on the wire.
	if got := WireBytes(8); got != 84 {
		t.Fatalf("WireBytes(8) = %d, want 84", got)
	}
	// Paper §2.4: "88% bandwidth wastage while sending 8B RREQ messages
	// using minimum-sized Ethernet frames" — 8/64 leaves ~88% of the frame
	// wasted even before preamble/IFG. With full wire accounting the
	// efficiency is below 10%.
	if eff := Efficiency(8); eff > 0.10 {
		t.Fatalf("Efficiency(8) = %.3f, want < 0.10", eff)
	}
	// Paper §2.4 Limitation 2: IFG alone is ~16% overhead for 64B frames.
	// 12 IFG / 64 frame = 18.75%; with preamble counted, per-frame overhead
	// of (12+8)/84 ≈ 24%.
	overhead := float64(IFGBytes) / float64(MinFrameBytes)
	if math.Abs(overhead-0.1875) > 1e-9 {
		t.Fatalf("IFG overhead = %.4f", overhead)
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n <= MTUBytes; n++ {
		e := Efficiency(n)
		if e < prev {
			t.Fatalf("efficiency not monotone at %d: %f < %f", n, e, prev)
		}
		prev = e
	}
	if prev < 0.95 {
		t.Fatalf("MTU efficiency = %f, want > 0.95", prev)
	}
}

func TestNodeAddrDistinct(t *testing.T) {
	seen := map[Addr]bool{}
	for i := 0; i < 512; i++ {
		a := NodeAddr(i)
		if seen[a] {
			t.Fatalf("duplicate address for node %d", i)
		}
		seen[a] = true
		if a[0]&0x01 != 0 {
			t.Fatalf("node %d address is multicast", i)
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(dst, src [6]byte, et uint16, payload []byte) bool {
		if len(payload) > MTUBytes {
			payload = payload[:MTUBytes]
		}
		in := &Frame{Dst: dst, Src: src, EtherType: et, Payload: payload}
		wire, err := in.Marshal()
		if err != nil {
			return false
		}
		if len(wire) != FrameBytesFor(len(payload)) {
			return false
		}
		out, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		// Payload may gain padding, never lose bytes.
		return out.Dst == in.Dst && out.Src == in.Src &&
			out.EtherType == in.EtherType &&
			len(out.Payload) >= len(in.Payload) &&
			bytes.Equal(out.Payload[:len(in.Payload)], in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
