package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(10*Nanosecond, func() {
		trace = append(trace, e.Now())
		e.After(5*Nanosecond, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10*Nanosecond || trace[1] != 15*Nanosecond {
		t.Fatalf("nested scheduling wrong: %v", trace)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Nanosecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the engine: fired %d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Nanosecond, func() { count++ })
	}
	e.RunUntil(5 * Nanosecond)
	if count != 5 {
		t.Fatalf("RunUntil fired %d events, want 5", count)
	}
	if e.Now() != 5*Nanosecond {
		t.Fatalf("Now = %v, want 5ns", e.Now())
	}
	e.RunUntil(100 * Nanosecond)
	if count != 10 || e.Now() != 100*Nanosecond {
		t.Fatalf("second RunUntil: count=%d now=%v", count, e.Now())
	}
}

func TestClock(t *testing.T) {
	c := NewClock(2560 * Picosecond) // 25 GbE PCS cycle
	if got := c.Cycles(3); got != 7680*Picosecond {
		t.Fatalf("Cycles(3) = %v, want 7.68ns", got)
	}
	if c.Period() != 2560*Picosecond {
		t.Fatalf("Period = %v", c.Period())
	}
}

func TestTransmissionTime(t *testing.T) {
	cases := []struct {
		bytes int
		bw    Gbps
		want  Time
	}{
		{64, 100, 5120 * Picosecond},  // 64B at 100G = 5.12ns
		{8, 100, 640 * Picosecond},    // 8B at 100G = 0.64ns
		{64, 25, 20480 * Picosecond},  // 64B at 25G = 20.48ns
		{1500, 100, 120 * Nanosecond}, // MTU at 100G = 120ns
		{9000, 100, 720 * Nanosecond}, // jumbo at 100G = 720ns
		{0, 100, 0},
	}
	for _, c := range cases {
		if got := TransmissionTime(c.bytes, c.bw); got != c.want {
			t.Errorf("TransmissionTime(%d, %d) = %v, want %v", c.bytes, c.bw, got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2560 * Picosecond, "2.56ns"},
		{3 * Microsecond, "3.000us"},
		{-Nanosecond, "-1.00ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Property: transmission time is monotone in size and additive within
// rounding (t(a)+t(b) >= t(a+b) >= t(a+b)-1ps).
func TestTransmissionTimeProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		ta := TransmissionTime(int(a), 100)
		tb := TransmissionTime(int(b), 100)
		tab := TransmissionTime(int(a)+int(b), 100)
		if tab < ta || tab < tb {
			return false
		}
		sum := ta + tb
		return tab <= sum && tab >= sum-2*Picosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: engine dispatch order respects (time, insertion) lexicographic
// order for arbitrary schedules.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		type stamp struct {
			at  Time
			seq int
		}
		var fired []stamp
		for i, d := range delays {
			at := Time(d) * Nanosecond
			i := i
			e.At(at, func() { fired = append(fired, stamp{at, i}) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				return false
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
