// Package sim provides a deterministic discrete-event simulation kernel.
//
// All EDM experiments run on this kernel. Time is an integer number of
// picoseconds so that sub-nanosecond quantities (e.g. the 0.64 ns
// transmission time of an 8 B message at 100 Gbps, or the 2.56 ns PCS clock
// of 25 GbE) are represented exactly, with no floating-point drift across a
// long simulation.
//
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes runs bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	}
}

// Handler is the callback invoked when an event fires.
type Handler func()

type event struct {
	at  Time
	seq uint64
	fn  Handler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	fired   uint64
	stopped bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run return after the currently firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// Step fires exactly one event and reports whether one was available. It
// lets callers interleave simulation with condition checks at event
// granularity (e.g. "run until this operation completes").
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.step()
	return true
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= deadline {
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.fired++
	ev.fn()
}

// Clock converts between cycle counts of a fixed-frequency digital pipeline
// and simulated time.
type Clock struct {
	period Time
}

// NewClock returns a clock with the given cycle period.
func NewClock(period Time) Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return Clock{period: period}
}

// Period reports the cycle time.
func (c Clock) Period() Time { return c.period }

// Cycles reports the duration of n cycles.
func (c Clock) Cycles(n int) Time { return Time(n) * c.period }

// Gbps is a link bandwidth in gigabits per second.
type Gbps int64

// TransmissionTime reports how long it takes to serialize n bytes onto a
// link of bandwidth bw. It rounds up to the next picosecond.
func TransmissionTime(n int, bw Gbps) Time {
	if n < 0 {
		panic("sim: negative byte count")
	}
	if bw <= 0 {
		panic("sim: non-positive bandwidth")
	}
	bits := int64(n) * 8
	// bits / (bw Gb/s) seconds = bits*1000/bw picoseconds... carefully:
	// 1 Gbps = 1 bit/ns = 0.001 bit/ps, so time_ps = bits * 1000 / bw.
	ps := (bits*1000 + int64(bw) - 1) / int64(bw)
	return Time(ps)
}
