// Benchmarks for the live service's client hot path. Run with:
//
//	go test -bench=. -benchmem ./internal/rmem
//
// BenchmarkClientPipelining is the headline number: sustained slot-read
// throughput through the bounded-outstanding window over the in-process
// loopback (no kernel UDP cost), reported as ops/s and MB/s.
package rmem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

func benchPair(b *testing.B, window int) *Client {
	b.Helper()
	srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 24, Slots: 4096, SlotBytes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	lb := wire.NewLoopback(wire.LoopbackConfig{})
	client := NewClient(lb.ClientPipe(), ClientConfig{Window: window,
		Retry: wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3}})
	lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
	lb.BindClient(client.Deliver)
	if err := client.Connect(); err != nil {
		b.Fatal(err)
	}
	return client
}

// BenchmarkClientRoundTrip measures one closed-loop remote read through the
// full client/server stack.
func BenchmarkClientRoundTrip(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("read=%d", size), func(b *testing.B) {
			client := benchPair(b, 1)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.ReadSync(uint64(i%1024)*64, size); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkClientPipelining measures batched slot reads pushed through the
// outstanding window from concurrent issuers — the live analogue of the
// paper's pipelined remote reads.
func BenchmarkClientPipelining(b *testing.B) {
	for _, window := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			client := benchPair(b, window)
			slot := client.Geometry().SlotBytes
			b.SetBytes(int64(slot))
			b.ResetTimer()
			var wg sync.WaitGroup
			issuers := 4
			per := b.N / issuers
			for g := 0; g < issuers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						batch := client.NewBatch()
						batch.Get((g*per + i) % 4096)
						if _, err := batch.Flush(); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			b.ReportMetric(float64(per*issuers)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkClientRoundTripTelemetry isolates the instrumentation overhead
// on the closed-loop read path: "noop" is the default wiring (unregistered
// metrics, no clock, no ring — what the counters cost when nobody looks),
// "full" adds a registered registry on both ends, wall-clock latency
// histograms, and the op trace ring. Compare against the plain
// BenchmarkClientRoundTrip/read=64 to see the total telemetry bill; the
// acceptance bar is <2% on this path.
func BenchmarkClientRoundTripTelemetry(b *testing.B) {
	const size = 64
	variants := []struct {
		name  string
		build func(b *testing.B) *Client
	}{
		{"noop", func(b *testing.B) *Client { return benchPair(b, 1) }},
		{"full", func(b *testing.B) *Client {
			reg := telemetry.NewRegistry()
			ring := telemetry.NewTraceRing(1024)
			//edmlint:allow walltime the benchmark measures the real cost of wall-clock instrumentation
			nowNS := func() int64 { return time.Now().UnixNano() }
			srv, err := NewServer(ServerConfig{
				Geometry:  Geometry{SlabBytes: 1 << 24, Slots: 4096, SlotBytes: 1024},
				Metrics:   NewServerMetrics(reg),
				Responder: wire.NewResponderMetrics(reg),
				NowNS:     nowNS, Trace: ring,
			})
			if err != nil {
				b.Fatal(err)
			}
			lb := wire.NewLoopback(wire.LoopbackConfig{})
			client := NewClient(lb.ClientPipe(), ClientConfig{Window: 1,
				Retry:   wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3},
				Metrics: NewClientMetrics(reg), NowNS: nowNS, Trace: ring})
			lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
			lb.BindClient(client.Deliver)
			if err := client.Connect(); err != nil {
				b.Fatal(err)
			}
			return client
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			client := v.build(b)
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.ReadSync(uint64(i%1024)*64, size); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}
