// Benchmarks for the live service's client hot path. Run with:
//
//	go test -bench=. -benchmem ./internal/rmem
//
// BenchmarkClientPipelining is the headline number: sustained slot-read
// throughput through the bounded-outstanding window over the in-process
// loopback (no kernel UDP cost), reported as ops/s and MB/s.
package rmem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

func benchPair(b *testing.B, window int) *Client {
	b.Helper()
	srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 24, Slots: 4096, SlotBytes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	lb := wire.NewLoopback(wire.LoopbackConfig{})
	client := NewClient(lb.ClientPipe(), ClientConfig{Window: window,
		Retry: wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3}})
	lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
	lb.BindClient(client.Deliver)
	if err := client.Connect(); err != nil {
		b.Fatal(err)
	}
	return client
}

// BenchmarkClientRoundTrip measures one closed-loop remote read through the
// full client/server stack.
func BenchmarkClientRoundTrip(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("read=%d", size), func(b *testing.B) {
			client := benchPair(b, 1)
			// Prime the buffer pools and free lists at this transfer size so
			// one-time pool misses don't pollute allocs/op on short runs.
			for i := 0; i < 64; i++ {
				if _, err := client.ReadSync(uint64(i%1024)*64, size); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.ReadSync(uint64(i%1024)*64, size); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkClientPipelining measures batched slot reads pushed through the
// outstanding window from concurrent issuers — the live analogue of the
// paper's pipelined remote reads.
func BenchmarkClientPipelining(b *testing.B) {
	for _, window := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			client := benchPair(b, window)
			slot := client.Geometry().SlotBytes
			b.SetBytes(int64(slot))
			b.ResetTimer()
			var wg sync.WaitGroup
			issuers := 4
			per := b.N / issuers
			for g := 0; g < issuers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						batch := client.NewBatch()
						batch.Get((g*per + i) % 4096)
						if _, err := batch.Flush(); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			b.ReportMetric(float64(per*issuers)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// pipelinedDriver issues asynchronous reads through a channel semaphore with
// one reused callback, so its steady-state loop performs no allocations of
// its own — any allocs/op a benchmark reports come from the client/server
// stack under test.
type pipelinedDriver struct {
	client *Client
	sem    chan struct{}
	cb     func([]byte, error)
	errs   atomic.Uint64
}

func newPipelinedDriver(client *Client, window int) *pipelinedDriver {
	d := &pipelinedDriver{client: client, sem: make(chan struct{}, window)}
	d.cb = func(_ []byte, err error) {
		if err != nil {
			d.errs.Add(1)
		}
		<-d.sem
	}
	return d
}

// read blocks for a semaphore slot (bounding outstanding ops to the client
// window, so the fail-fast path never trips) and issues one async read.
func (d *pipelinedDriver) read(addr uint64, n int) error {
	d.sem <- struct{}{}
	return d.client.Read(addr, n, d.cb)
}

// drain waits for every outstanding read to complete.
func (d *pipelinedDriver) drain() {
	for i := 0; i < cap(d.sem); i++ {
		d.sem <- struct{}{}
	}
	for i := 0; i < cap(d.sem); i++ {
		<-d.sem
	}
}

// warm pushes the stack past the responder's dedup window so the measured
// region sees steady state: pools populated, free lists primed, the
// duplicate-suppression ring at capacity and recycling entries.
func (d *pipelinedDriver) warm(b *testing.B, addrOf func(i int) uint64, size int) {
	b.Helper()
	for i := 0; i < wire.DefaultResponderWindow+1024; i++ {
		if err := d.read(addrOf(i), size); err != nil {
			b.Fatal(err)
		}
	}
	d.drain()
}

// BenchmarkPipelinedRead is the allocation-discipline benchmark: sustained
// asynchronous reads through the pooled client, reliable layer, responder,
// and sharded server. The acceptance bar is 0 allocs/op in steady state.
func BenchmarkPipelinedRead(b *testing.B) {
	const size, window = 64, 64
	client := benchPair(b, window)
	d := newPipelinedDriver(client, window)
	addrOf := func(i int) uint64 { return uint64(i%1024) * 64 }
	d.warm(b, addrOf, size)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.read(addrOf(i), size); err != nil {
			b.Fatal(err)
		}
	}
	d.drain()
	b.StopTimer()
	if n := d.errs.Load(); n > 0 {
		b.Fatalf("%d reads failed", n)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkPipelinedReadParallel measures multi-core scaling: one sharded
// server, one session per GOMAXPROCS goroutine, each hammering a disjoint
// slab range so sessions land on different slab-lock shards.
func BenchmarkPipelinedReadParallel(b *testing.B) {
	const size, window = 64, 64
	const slab = 1 << 26
	srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: slab, Slots: 4096, SlotBytes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	procs := runtime.GOMAXPROCS(0)
	span := (uint64(slab) / uint64(procs)) &^ 4095
	drivers := make([]*pipelinedDriver, procs)
	for i := range drivers {
		lb := wire.NewLoopback(wire.LoopbackConfig{})
		client := NewClient(lb.ClientPipe(), ClientConfig{Window: window,
			Retry: wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3}})
		lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
		lb.BindClient(client.Deliver)
		if err := client.Connect(); err != nil {
			b.Fatal(err)
		}
		d := newPipelinedDriver(client, window)
		base := uint64(i) * span
		d.warm(b, func(j int) uint64 { return base + uint64(j%512)*64 }, size)
		drivers[i] = d
	}
	var next atomic.Int64
	var total atomic.Int64
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		idx := int(next.Add(1) - 1)
		// RunParallel launches exactly GOMAXPROCS goroutines unless
		// SetParallelism raises it; each gets a private session.
		d := drivers[idx%procs]
		base := (uint64(idx) % uint64(procs)) * span
		n := 0
		for pb.Next() {
			if err := d.read(base+uint64(n%512)*64, size); err != nil {
				b.Error(err)
				return
			}
			n++
		}
		d.drain()
		total.Add(int64(n))
	})
	b.StopTimer()
	for _, d := range drivers {
		if n := d.errs.Load(); n > 0 {
			b.Fatalf("%d reads failed", n)
		}
	}
	b.ReportMetric(float64(total.Load())/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkClientRoundTripTelemetry isolates the instrumentation overhead
// on the closed-loop read path: "noop" is the default wiring (unregistered
// metrics, no clock, no ring — what the counters cost when nobody looks),
// "full" adds a registered registry on both ends, wall-clock latency
// histograms, and the op trace ring. Compare against the plain
// BenchmarkClientRoundTrip/read=64 to see the total telemetry bill; the
// acceptance bar is <2% on this path.
func BenchmarkClientRoundTripTelemetry(b *testing.B) {
	const size = 64
	variants := []struct {
		name  string
		build func(b *testing.B) *Client
	}{
		{"noop", func(b *testing.B) *Client { return benchPair(b, 1) }},
		{"full", func(b *testing.B) *Client {
			reg := telemetry.NewRegistry()
			ring := telemetry.NewTraceRing(1024)
			//edmlint:allow walltime the benchmark measures the real cost of wall-clock instrumentation
			nowNS := func() int64 { return time.Now().UnixNano() }
			srv, err := NewServer(ServerConfig{
				Geometry:  Geometry{SlabBytes: 1 << 24, Slots: 4096, SlotBytes: 1024},
				Metrics:   NewServerMetrics(reg),
				Responder: wire.NewResponderMetrics(reg),
				NowNS:     nowNS, Trace: ring,
			})
			if err != nil {
				b.Fatal(err)
			}
			lb := wire.NewLoopback(wire.LoopbackConfig{})
			client := NewClient(lb.ClientPipe(), ClientConfig{Window: 1,
				Retry:   wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3},
				Metrics: NewClientMetrics(reg), NowNS: nowNS, Trace: ring})
			lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
			lb.BindClient(client.Deliver)
			if err := client.Connect(); err != nil {
				b.Fatal(err)
			}
			return client
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			client := v.build(b)
			for i := 0; i < 64; i++ {
				if _, err := client.ReadSync(uint64(i%1024)*64, size); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.ReadSync(uint64(i%1024)*64, size); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}
