// Concurrency stress for the sharded server and determinism regression for
// the corked batch path. Run with -race: the point of the stress test is to
// drive every shard-lock path (single-shard RMW, spanning reads/writes,
// overlapping and disjoint ranges) from enough concurrent sessions that the
// race detector sees any unguarded slab access.
package rmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/wire"
)

// stressPair builds n independent loopback sessions against one server.
func stressPair(t *testing.T, srv *Server, n, window int) []*Client {
	t.Helper()
	clients := make([]*Client, n)
	for i := range clients {
		lb := wire.NewLoopback(wire.LoopbackConfig{})
		c := NewClient(lb.ClientPipe(), ClientConfig{Window: window,
			Retry: wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3}})
		lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
		lb.BindClient(c.Deliver)
		if err := c.Connect(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	return clients
}

// TestShardedServerConcurrentSessions hammers one sharded server from 8
// concurrent sessions: half fetch-add the same counter word (overlapping —
// all contend on one shard and the final sum proves every RMW was atomic and
// exactly-once), half own disjoint ranges (write + read-back proves shards
// do not bleed into each other) and issue reads spanning a shard boundary
// (the piecewise multi-shard lock path).
func TestShardedServerConcurrentSessions(t *testing.T) {
	const (
		sessions = 8
		opsPer   = 300
		slab     = 1 << 22
	)
	srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: slab, Slots: 1024, SlotBytes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Shards() < 2 {
		t.Fatalf("server built with %d shards, want the sharded default", srv.Shards())
	}
	clients := stressPair(t, srv, sessions, 32)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	const counterAddr = 0
	// A spanning read straddling the first shard boundary (shards are
	// slab/DefaultShards rounded up to 4 KiB, so slab/16 sits on or past it).
	const spanAddr = slab/DefaultShards - 512

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if i < sessions/2 {
				// Overlapping: all four sessions bump one word.
				for n := 0; n < opsPer; n++ {
					if _, err := c.RMWSync(counterAddr, memctl.OpFetchAdd, 1); err != nil {
						t.Errorf("session %d fetch-add: %v", i, err)
						return
					}
				}
				return
			}
			// Disjoint: each session owns a private 64 KiB range in the
			// upper half of the slab.
			base := uint64(slab/2) + uint64(i)*(1<<16)
			buf := make([]byte, 128)
			for n := 0; n < opsPer; n++ {
				for j := range buf {
					buf[j] = byte(i*31 + n + j)
				}
				addr := base + uint64(n%64)*128
				if err := c.WriteSync(addr, buf); err != nil {
					t.Errorf("session %d write: %v", i, err)
					return
				}
				got, err := c.ReadSync(addr, len(buf))
				if err != nil {
					t.Errorf("session %d read: %v", i, err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("session %d: read-back mismatch at %#x", i, addr)
					return
				}
				if n%16 == 0 {
					if _, err := c.ReadSync(spanAddr, 1024); err != nil {
						t.Errorf("session %d spanning read: %v", i, err)
						return
					}
				}
			}
		}(i, c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	got, err := clients[0].RMWSync(counterAddr, memctl.OpFetchAdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(sessions / 2 * opsPer); got != want {
		t.Fatalf("shared counter = %d, want %d (lost or duplicated RMWs)", got, want)
	}
}

// TestBatchFlushDeterministic: the corked Batch.Flush path (queue, window
// spill, SendBatch flush) must leave seeded loopback runs byte-identical —
// same virtual-clock reading, same values — across repeated runs. This is
// the regression guard for datagram batching vs loopback determinism.
func TestBatchFlushDeterministic(t *testing.T) {
	run := func() (sim.Time, string) {
		srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 22, Slots: 256, SlotBytes: 512}})
		if err != nil {
			t.Fatal(err)
		}
		lb := wire.NewLoopback(wire.LoopbackConfig{})
		// Window 8 against a 40-op batch forces several cork/uncork spill
		// cycles per flush.
		c := NewClient(lb.ClientPipe(), ClientConfig{Window: 8,
			Retry: wire.ConnConfig{RetryTimeout: time.Second, MaxRetries: 3}})
		lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
		lb.BindClient(c.Deliver)
		if err := c.Connect(); err != nil {
			t.Fatal(err)
		}
		batch := c.NewBatch()
		for k := 0; k < 20; k++ {
			batch.Put(k, bytes.Repeat([]byte{byte(k + 1)}, 64+k))
		}
		if _, err := batch.Flush(); err != nil {
			t.Fatal(err)
		}
		batch = c.NewBatch()
		for k := 0; k < 40; k++ {
			batch.Get(k % 20)
		}
		ops, err := batch.Flush()
		if err != nil {
			t.Fatal(err)
		}
		var sum bytes.Buffer
		for _, op := range ops {
			fmt.Fprintf(&sum, "%d:%x\n", op.Key, op.Value)
		}
		return lb.Now(), sum.String()
	}
	now1, vals1 := run()
	now2, vals2 := run()
	if now1 != now2 {
		t.Errorf("virtual clock diverged across identical runs: %v vs %v", now1, now2)
	}
	if vals1 != vals2 {
		t.Errorf("batch values diverged across identical runs:\n%s\n---\n%s", vals1, vals2)
	}
	if now1 == 0 {
		t.Error("virtual clock never advanced")
	}
}
