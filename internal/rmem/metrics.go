package rmem

import (
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// opLabel is the `op` label value for a request kind: the memory-operation
// vocabulary rather than the wire kind name.
func opLabel(k wire.Kind) string {
	switch k {
	case wire.KindHello:
		return "hello"
	case wire.KindBye:
		return "bye"
	case wire.KindRREQ:
		return "read"
	case wire.KindWREQ:
		return "write"
	case wire.KindRMWREQ:
		return "rmw"
	}
	return "other"
}

// opSeries renders `base{op="..."}` for a request kind.
func opSeries(base string, k wire.Kind) string {
	return base + `{op="` + opLabel(k) + `"}`
}

// ServerMetrics holds the memory node's counters and per-opcode service-time
// histograms, pre-registered so Handle only touches atomics. Arrays are
// indexed by the request's wire.Kind; non-request slots stay nil.
type ServerMetrics struct {
	Ops          [wire.NumKinds]*telemetry.Counter
	Latency      [wire.NumKinds]*telemetry.Histogram // ns; populated only when a clock is wired
	Errors       *telemetry.Counter
	BytesRead    *telemetry.Counter
	BytesWritten *telemetry.Counter
	// ModeledDRAMPS accumulates the memctl-modeled DRAM service time in
	// picoseconds (sim.Time units).
	ModeledDRAMPS *telemetry.Counter
}

// NewServerMetrics registers the server family (`rmem_server_*`) in r. A nil
// registry yields working but unexported metrics.
func NewServerMetrics(r *telemetry.Registry) *ServerMetrics {
	m := &ServerMetrics{
		Errors:        r.Counter("rmem_server_errors_total"),
		BytesRead:     r.Counter("rmem_server_bytes_read_total"),
		BytesWritten:  r.Counter("rmem_server_bytes_written_total"),
		ModeledDRAMPS: r.Counter("rmem_server_modeled_dram_ps_total"),
	}
	for k := wire.KindHello; k <= wire.KindRMWRESP; k++ {
		if k.IsRequest() {
			m.Ops[k] = r.Counter(opSeries("rmem_server_ops_total", k))
			m.Latency[k] = r.Histogram(opSeries("rmem_server_op_latency_ns", k))
		}
	}
	return m
}

// ClientMetrics holds the client's window/completion counters and per-opcode
// end-to-end latency histograms, plus the underlying reliable layer's
// ConnMetrics (the two register as one coherent family set).
type ClientMetrics struct {
	Issued     *telemetry.Counter
	Done       *telemetry.Counter
	Failed     *telemetry.Counter
	WindowFull *telemetry.Counter
	// Window tracks the in-flight operation count (the occupied share of the
	// bounded outstanding window).
	Window  *telemetry.Gauge
	Latency [wire.NumKinds]*telemetry.Histogram // ns; populated only when a clock is wired
	Conn    *wire.ConnMetrics
}

// NewClientMetrics registers the client family (`rmem_client_*` plus
// `wire_client_*`) in r.
func NewClientMetrics(r *telemetry.Registry) *ClientMetrics {
	m := &ClientMetrics{
		Issued:     r.Counter("rmem_client_issued_total"),
		Done:       r.Counter("rmem_client_done_total"),
		Failed:     r.Counter("rmem_client_failed_total"),
		WindowFull: r.Counter("rmem_client_window_full_total"),
		Window:     r.Gauge("rmem_client_window"),
		Conn:       wire.NewConnMetrics(r),
	}
	for k := wire.KindHello; k <= wire.KindRMWRESP; k++ {
		if k.IsRequest() {
			m.Latency[k] = r.Histogram(opSeries("rmem_client_op_latency_ns", k))
		}
	}
	return m
}
