// Package rmem is the live disaggregated-memory service: a server that
// terminates wire requests against a slab of memory with memctl-style
// semantics (byte-addressed reads/writes plus the NIC-side atomic RMW menu
// of §3.2.1), and a client library that mirrors edm.Host's
// bounded-outstanding-ID discipline — asynchronous pipelining, per-ID
// deadlines via the reliable layer's retry budget, and a fail-fast error
// when the window is exhausted. On top of the raw byte API the client
// exposes the kvstore-shaped fixed-slot Get/Put of §4.2.2 with optional
// batching.
//
// The server is transport-agnostic: cmd/edmd mounts it on wire.UDPServer,
// tests and the scenario runner's live backend mount it on wire.Loopback.
package rmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Geometry describes the server's memory slab and its kvstore-compatible
// slot layout. It rides in the HELLO-ACK payload so clients self-configure.
type Geometry struct {
	// SlabBytes is the byte-addressable memory size.
	SlabBytes uint64
	// Slots and SlotBytes define the fixed-slot key-value layout carved
	// from the front of the slab (key k lives at [k*SlotBytes, (k+1)*SlotBytes)).
	Slots     int
	SlotBytes int
}

// geometryBytes is the encoded HELLO-ACK payload size.
const geometryBytes = 16

// Encode renders the geometry as the HELLO-ACK payload.
func (g Geometry) Encode() []byte {
	b := make([]byte, geometryBytes)
	binary.LittleEndian.PutUint64(b, g.SlabBytes)
	binary.LittleEndian.PutUint32(b[8:], uint32(g.Slots))
	binary.LittleEndian.PutUint32(b[12:], uint32(g.SlotBytes))
	return b
}

// DecodeGeometry parses a HELLO-ACK payload.
func DecodeGeometry(b []byte) (Geometry, error) {
	if len(b) != geometryBytes {
		return Geometry{}, fmt.Errorf("rmem: geometry payload %d bytes, want %d", len(b), geometryBytes)
	}
	return Geometry{
		SlabBytes: binary.LittleEndian.Uint64(b),
		Slots:     int(binary.LittleEndian.Uint32(b[8:])),
		SlotBytes: int(binary.LittleEndian.Uint32(b[12:])),
	}, nil
}

// ServerConfig sizes the memory node.
type ServerConfig struct {
	Geometry
	// DupWindow is the per-session duplicate-suppression window
	// (wire.DefaultResponderWindow when zero).
	DupWindow int
	// Metrics receives the operation counters and service-time histograms.
	// Nil gets a private, unregistered instance, so Stats() always works.
	Metrics *ServerMetrics
	// Responder, when set, aggregates every session's reliability counters.
	// Nil gets a private instance shared across sessions all the same.
	Responder *wire.ResponderMetrics
	// NowNS supplies timestamps for the per-opcode service-time histograms
	// and the trace ring (nanoseconds; wall or virtual). Nil disables both.
	NowNS func() int64
	// Trace, when non-nil, receives one StageServe record per request.
	Trace *telemetry.TraceRing
}

// fill applies defaults and validates.
func (c *ServerConfig) fill() error {
	if c.SlabBytes == 0 {
		c.SlabBytes = 64 << 20
	}
	if c.SlotBytes == 0 {
		c.SlotBytes = 4096
	}
	if c.Slots == 0 {
		c.Slots = int(c.SlabBytes) / c.SlotBytes
	}
	if c.Slots < 0 || c.SlotBytes <= 0 {
		return fmt.Errorf("rmem: invalid slot geometry %d x %d", c.Slots, c.SlotBytes)
	}
	if c.SlotBytes > wire.MaxData {
		return fmt.Errorf("rmem: slot %d bytes exceeds the %d-byte datagram payload", c.SlotBytes, wire.MaxData)
	}
	if need := uint64(c.Slots) * uint64(c.SlotBytes); need > c.SlabBytes {
		return fmt.Errorf("rmem: %d x %d slots need %d bytes, slab has %d", c.Slots, c.SlotBytes, need, c.SlabBytes)
	}
	return nil
}

// ServerStats counts served operations.
type ServerStats struct {
	Hellos, Byes        uint64
	Reads, Writes, RMWs uint64
	Errors              uint64 // requests answered with a non-OK status
	BytesRead           uint64
	BytesWritten        uint64
	// ModeledDRAM accumulates the memctl-modeled DRAM service time of every
	// access — what the accesses would have cost on the paper's DDR4 model —
	// so live runs can report a simulator-comparable memory-side figure.
	ModeledDRAM sim.Time
}

// Server terminates wire requests against a memory slab. One mutex
// serializes all slab access, which is what makes the RMW menu atomic under
// concurrent client sessions — the live stand-in for the paper's
// non-preemptible NIC RMW pipeline (§3.2.1).
type Server struct {
	cfg     ServerConfig
	metrics *ServerMetrics

	mu  sync.Mutex
	mem *memctl.Controller // guarded by mu (the slab: Controller is not itself thread-safe)
}

// NewServer builds a memory node with the given slab/slot geometry.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewServerMetrics(nil)
	}
	if cfg.Responder == nil {
		cfg.Responder = wire.NewResponderMetrics(nil)
	}
	mcfg := memctl.DefaultConfig()
	mcfg.Size = cfg.SlabBytes
	return &Server{cfg: cfg, metrics: cfg.Metrics, mem: memctl.New(mcfg)}, nil
}

// Geometry reports the slab layout advertised to clients.
func (s *Server) Geometry() Geometry { return s.cfg.Geometry }

// Stats snapshots the operation counters from the server's metrics.
func (s *Server) Stats() ServerStats {
	m := s.metrics
	return ServerStats{
		Hellos:       m.Ops[wire.KindHello].Load(),
		Byes:         m.Ops[wire.KindBye].Load(),
		Reads:        m.Ops[wire.KindRREQ].Load(),
		Writes:       m.Ops[wire.KindWREQ].Load(),
		RMWs:         m.Ops[wire.KindRMWREQ].Load(),
		Errors:       m.Errors.Load(),
		BytesRead:    m.BytesRead.Load(),
		BytesWritten: m.BytesWritten.Load(),
		ModeledDRAM:  sim.Time(m.ModeledDRAMPS.Load()),
	}
}

// Metrics returns the server's metrics instance (never nil after NewServer).
func (s *Server) Metrics() *ServerMetrics { return s.metrics }

// NewSession builds the reliable server half for one client, replying over
// pipe. Each session gets its own duplicate-suppression window; all sessions
// share the server's responder metrics.
func (s *Server) NewSession(pipe wire.Pipe) *wire.Responder {
	return wire.NewResponder(pipe, wire.ResponderConfig{
		Window: s.cfg.DupWindow, Metrics: s.cfg.Responder}, s.Handle)
}

// statusOf maps a memctl error to a wire status.
func statusOf(err error) wire.Status {
	switch {
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, memctl.ErrOutOfRange), errors.Is(err, memctl.ErrBadLength):
		return wire.StatusRange
	case errors.Is(err, memctl.ErrBadOpcode), errors.Is(err, memctl.ErrUnaligned):
		return wire.StatusOp
	}
	return wire.StatusProto
}

// Handle executes one fresh request and returns its response. It is the
// wire.Responder handler; the responder layer has already suppressed
// duplicates, so every call here executes exactly once.
//
//edmlint:hotpath one Handle per served request
func (s *Server) Handle(m *wire.Msg) *wire.Msg {
	var start int64
	if s.cfg.NowNS != nil {
		start = s.cfg.NowNS()
	}
	mt := s.metrics
	if c := mt.Ops[m.Kind]; c != nil {
		c.Inc()
	}
	s.mu.Lock()
	//edmlint:allow hotpath one response message per request is the protocol
	resp := &wire.Msg{Kind: m.Kind.Response(), ID: m.ID}
	switch m.Kind {
	case wire.KindHello:
		resp.Data = s.cfg.Geometry.Encode()
	case wire.KindBye:
	case wire.KindRREQ:
		if m.Count > wire.MaxData {
			resp.Status = wire.StatusRange
			break
		}
		data, lat, err := s.mem.Read(m.Addr, int(m.Count))
		if err != nil {
			resp.Status = statusOf(err)
			break
		}
		mt.BytesRead.Add(uint64(len(data)))
		mt.ModeledDRAMPS.Add(uint64(lat))
		resp.Data = data
	case wire.KindWREQ:
		lat, err := s.mem.Write(m.Addr, m.Data)
		if err != nil {
			resp.Status = statusOf(err)
			break
		}
		mt.BytesWritten.Add(uint64(len(m.Data)))
		mt.ModeledDRAMPS.Add(uint64(lat))
	case wire.KindRMWREQ:
		result, lat, err := s.mem.RMW(m.Addr, memctl.RMWOp(m.Op), m.Args...)
		if err != nil {
			resp.Status = statusOf(err)
			break
		}
		mt.ModeledDRAMPS.Add(uint64(lat))
		resp.Data = make([]byte, 8)
		binary.LittleEndian.PutUint64(resp.Data, result)
	default:
		//edmlint:allow hotpath cold path: unknown request kind
		resp = &wire.Msg{Kind: wire.KindByeAck, ID: m.ID, Status: wire.StatusProto}
	}
	s.mu.Unlock()
	if resp.Status != wire.StatusOK {
		mt.Errors.Inc()
	}
	if s.cfg.NowNS != nil {
		dur := s.cfg.NowNS() - start
		if h := mt.Latency[m.Kind]; h != nil {
			h.Observe(dur)
		}
		if s.cfg.Trace != nil {
			var d uint64
			if dur > 0 {
				d = uint64(dur)
			}
			s.cfg.Trace.Record(uint64(m.ID), telemetry.StageServe, uint8(m.Kind), start, d)
		}
	}
	return resp
}
