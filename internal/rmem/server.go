// Package rmem is the live disaggregated-memory service: a server that
// terminates wire requests against a slab of memory with memctl-style
// semantics (byte-addressed reads/writes plus the NIC-side atomic RMW menu
// of §3.2.1), and a client library that mirrors edm.Host's
// bounded-outstanding-ID discipline — asynchronous pipelining, per-ID
// deadlines via the reliable layer's retry budget, and a fail-fast error
// when the window is exhausted. On top of the raw byte API the client
// exposes the kvstore-shaped fixed-slot Get/Put of §4.2.2 with optional
// batching.
//
// The server is transport-agnostic: cmd/edmd mounts it on wire.UDPServer,
// tests and the scenario runner's live backend mount it on wire.Loopback.
package rmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Geometry describes the server's memory slab and its kvstore-compatible
// slot layout. It rides in the HELLO-ACK payload so clients self-configure.
type Geometry struct {
	// SlabBytes is the byte-addressable memory size.
	SlabBytes uint64
	// Slots and SlotBytes define the fixed-slot key-value layout carved
	// from the front of the slab (key k lives at [k*SlotBytes, (k+1)*SlotBytes)).
	Slots     int
	SlotBytes int
}

// geometryBytes is the encoded HELLO-ACK payload size.
const geometryBytes = 16

// Encode renders the geometry as the HELLO-ACK payload.
func (g Geometry) Encode() []byte {
	b := make([]byte, geometryBytes)
	binary.LittleEndian.PutUint64(b, g.SlabBytes)
	binary.LittleEndian.PutUint32(b[8:], uint32(g.Slots))
	binary.LittleEndian.PutUint32(b[12:], uint32(g.SlotBytes))
	return b
}

// DecodeGeometry parses a HELLO-ACK payload.
func DecodeGeometry(b []byte) (Geometry, error) {
	if len(b) != geometryBytes {
		return Geometry{}, fmt.Errorf("rmem: geometry payload %d bytes, want %d", len(b), geometryBytes)
	}
	return Geometry{
		SlabBytes: binary.LittleEndian.Uint64(b),
		Slots:     int(binary.LittleEndian.Uint32(b[8:])),
		SlotBytes: int(binary.LittleEndian.Uint32(b[12:])),
	}, nil
}

// DefaultShards is the default slab-lock shard count. It is a fixed
// constant — not derived from GOMAXPROCS — so the shard map, and with it
// the per-shard DRAM-model state, is identical on every machine and
// loopback runs stay seed-deterministic.
const DefaultShards = 16

// ServerConfig sizes the memory node.
type ServerConfig struct {
	Geometry
	// Shards is the slab-lock shard count: the slab is split into
	// contiguous byte ranges, each with its own lock and DRAM model, so
	// concurrent sessions touching different ranges never serialize.
	// Zero means DefaultShards; 1 restores the single-lock behaviour;
	// values above 256 are clamped.
	Shards int
	// DupWindow is the per-session duplicate-suppression window
	// (wire.DefaultResponderWindow when zero).
	DupWindow int
	// Metrics receives the operation counters and service-time histograms.
	// Nil gets a private, unregistered instance, so Stats() always works.
	Metrics *ServerMetrics
	// Responder, when set, aggregates every session's reliability counters.
	// Nil gets a private instance shared across sessions all the same.
	Responder *wire.ResponderMetrics
	// NowNS supplies timestamps for the per-opcode service-time histograms
	// and the trace ring (nanoseconds; wall or virtual). Nil disables both.
	NowNS func() int64
	// Trace, when non-nil, receives one StageServe record per request.
	Trace *telemetry.TraceRing
}

// fill applies defaults and validates.
func (c *ServerConfig) fill() error {
	if c.SlabBytes == 0 {
		c.SlabBytes = 64 << 20
	}
	if c.SlotBytes == 0 {
		c.SlotBytes = 4096
	}
	if c.Slots == 0 {
		c.Slots = int(c.SlabBytes) / c.SlotBytes
	}
	if c.Slots < 0 || c.SlotBytes <= 0 {
		return fmt.Errorf("rmem: invalid slot geometry %d x %d", c.Slots, c.SlotBytes)
	}
	if c.SlotBytes > wire.MaxData {
		return fmt.Errorf("rmem: slot %d bytes exceeds the %d-byte datagram payload", c.SlotBytes, wire.MaxData)
	}
	if need := uint64(c.Slots) * uint64(c.SlotBytes); need > c.SlabBytes {
		return fmt.Errorf("rmem: %d x %d slots need %d bytes, slab has %d", c.Slots, c.SlotBytes, need, c.SlabBytes)
	}
	if c.Shards < 0 {
		return fmt.Errorf("rmem: invalid shard count %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.Shards > 256 {
		c.Shards = 256
	}
	return nil
}

// ServerStats counts served operations.
type ServerStats struct {
	Hellos, Byes        uint64
	Reads, Writes, RMWs uint64
	Errors              uint64 // requests answered with a non-OK status
	BytesRead           uint64
	BytesWritten        uint64
	// ModeledDRAM accumulates the memctl-modeled DRAM service time of every
	// access — what the accesses would have cost on the paper's DDR4 model —
	// so live runs can report a simulator-comparable memory-side figure.
	ModeledDRAM sim.Time
}

// shardAlign is the shard-boundary granularity. A multiple of the RMW word
// size (and of memctl's page size), so an aligned 8-byte RMW can never span
// two shards — every atomic executes under exactly one shard lock.
const shardAlign = 4096

// shard is one contiguous byte range of the slab with its own lock and
// DRAM-timing model. Padded to a cache line so neighbouring shard locks
// don't false-share under multi-core contention.
type shard struct {
	mu  sync.Mutex
	mem *memctl.Controller // guarded by mu (Controller is not itself thread-safe)
	_   [48]byte
}

// Server terminates wire requests against a memory slab. The slab lock is
// sharded by contiguous address range: operations on different shards run
// concurrently; an aligned RMW always falls in exactly one shard, so the
// atomic menu stays atomic under concurrent client sessions — the live
// stand-in for the paper's non-preemptible NIC RMW pipeline (§3.2.1). A
// read or write spanning shards locks them piecewise in ascending order;
// such an access is not atomic with respect to a concurrent overlapping
// write (it never was end-to-end: datagram-sized accesses carry no
// transactional guarantee on the wire either).
type Server struct {
	cfg        ServerConfig
	metrics    *ServerMetrics
	geoPayload []byte // pre-encoded HELLO-ACK geometry, immutable
	shardBytes uint64 // bytes per shard (shardAlign-aligned), immutable
	shards     []shard
}

// NewServer builds a memory node with the given slab/slot geometry.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewServerMetrics(nil)
	}
	if cfg.Responder == nil {
		cfg.Responder = wire.NewResponderMetrics(nil)
	}
	shardBytes := (cfg.SlabBytes + uint64(cfg.Shards) - 1) / uint64(cfg.Shards)
	shardBytes = (shardBytes + shardAlign - 1) &^ uint64(shardAlign-1)
	shards := make([]shard, int((cfg.SlabBytes+shardBytes-1)/shardBytes))
	for i := range shards {
		mcfg := memctl.DefaultConfig()
		mcfg.Size = shardBytes
		if rest := cfg.SlabBytes - uint64(i)*shardBytes; rest < mcfg.Size {
			mcfg.Size = rest
		}
		//edmlint:allow lockcheck shards are not yet published; no other goroutine can observe them
		shards[i].mem = memctl.New(mcfg)
	}
	return &Server{cfg: cfg, metrics: cfg.Metrics,
		geoPayload: cfg.Geometry.Encode(), shardBytes: shardBytes, shards: shards}, nil
}

// Shards reports the effective shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Geometry reports the slab layout advertised to clients.
func (s *Server) Geometry() Geometry { return s.cfg.Geometry }

// Stats snapshots the operation counters from the server's metrics.
func (s *Server) Stats() ServerStats {
	m := s.metrics
	return ServerStats{
		Hellos:       m.Ops[wire.KindHello].Load(),
		Byes:         m.Ops[wire.KindBye].Load(),
		Reads:        m.Ops[wire.KindRREQ].Load(),
		Writes:       m.Ops[wire.KindWREQ].Load(),
		RMWs:         m.Ops[wire.KindRMWREQ].Load(),
		Errors:       m.Errors.Load(),
		BytesRead:    m.BytesRead.Load(),
		BytesWritten: m.BytesWritten.Load(),
		ModeledDRAM:  sim.Time(m.ModeledDRAMPS.Load()),
	}
}

// Metrics returns the server's metrics instance (never nil after NewServer).
func (s *Server) Metrics() *ServerMetrics { return s.metrics }

// NewSession builds the reliable server half for one client, replying over
// pipe. Each session gets its own duplicate-suppression window; all sessions
// share the server's responder metrics.
func (s *Server) NewSession(pipe wire.Pipe) *wire.Responder {
	return wire.NewResponder(pipe, wire.ResponderConfig{
		Window: s.cfg.DupWindow, Metrics: s.cfg.Responder}, s.Handle)
}

// statusOf maps a memctl error to a wire status.
func statusOf(err error) wire.Status {
	switch {
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, memctl.ErrOutOfRange), errors.Is(err, memctl.ErrBadLength):
		return wire.StatusRange
	case errors.Is(err, memctl.ErrBadOpcode), errors.Is(err, memctl.ErrUnaligned):
		return wire.StatusOp
	}
	return wire.StatusProto
}

// grow returns a length-n slice reusing d's capacity.
//
//edmlint:hotpath
func grow(d []byte, n int) []byte {
	if cap(d) < n {
		//edmlint:allow hotpath allocates only until the recycled buffer reaches its high-water mark
		return make([]byte, n)
	}
	return d[:n]
}

// read fills dst from slab address addr, locking the spanned shards
// piecewise in ascending order, and returns the summed modeled latency.
//
//edmlint:hotpath one call per served RREQ
func (s *Server) read(addr uint64, dst []byte) (sim.Time, error) {
	if len(dst) == 0 {
		return 0, memctl.ErrBadLength
	}
	if addr >= s.cfg.SlabBytes || uint64(len(dst)) > s.cfg.SlabBytes-addr {
		return 0, fmt.Errorf("%w: addr=%#x len=%d size=%#x", memctl.ErrOutOfRange, addr, len(dst), s.cfg.SlabBytes)
	}
	var total sim.Time
	for len(dst) > 0 {
		si := int(addr / s.shardBytes)
		base := uint64(si) * s.shardBytes
		n := len(dst)
		if room := base + s.shardBytes - addr; uint64(n) > room {
			n = int(room)
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		lat, err := sh.mem.ReadInto(addr-base, dst[:n])
		sh.mu.Unlock()
		if err != nil {
			return 0, err
		}
		total += lat
		addr += uint64(n)
		dst = dst[n:]
	}
	return total, nil
}

// write stores src at slab address addr, locking the spanned shards
// piecewise in ascending order, and returns the summed modeled latency.
//
//edmlint:hotpath one call per served WREQ
func (s *Server) write(addr uint64, src []byte) (sim.Time, error) {
	if len(src) == 0 {
		return 0, memctl.ErrBadLength
	}
	if addr >= s.cfg.SlabBytes || uint64(len(src)) > s.cfg.SlabBytes-addr {
		return 0, fmt.Errorf("%w: addr=%#x len=%d size=%#x", memctl.ErrOutOfRange, addr, len(src), s.cfg.SlabBytes)
	}
	var total sim.Time
	for len(src) > 0 {
		si := int(addr / s.shardBytes)
		base := uint64(si) * s.shardBytes
		n := len(src)
		if room := base + s.shardBytes - addr; uint64(n) > room {
			n = int(room)
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		lat, err := sh.mem.Write(addr-base, src[:n])
		sh.mu.Unlock()
		if err != nil {
			return 0, err
		}
		total += lat
		addr += uint64(n)
		src = src[n:]
	}
	return total, nil
}

// rmw executes one atomic under its shard's lock. Shard boundaries are
// word-aligned, so an aligned RMW is always single-shard; the unaligned
// check runs first to mirror the controller's error precedence.
//
//edmlint:hotpath one call per served RMWREQ
func (s *Server) rmw(addr uint64, op memctl.RMWOp, args []uint64) (uint64, sim.Time, error) {
	if addr%memctl.WordBytes != 0 {
		return 0, 0, memctl.ErrUnaligned
	}
	if addr >= s.cfg.SlabBytes || memctl.WordBytes > s.cfg.SlabBytes-addr {
		return 0, 0, fmt.Errorf("%w: addr=%#x len=%d size=%#x", memctl.ErrOutOfRange, addr, memctl.WordBytes, s.cfg.SlabBytes)
	}
	si := int(addr / s.shardBytes)
	base := uint64(si) * s.shardBytes
	sh := &s.shards[si]
	sh.mu.Lock()
	result, lat, err := sh.mem.RMW(addr-base, op, args...)
	sh.mu.Unlock()
	return result, lat, err
}

// Handle executes one fresh request, filling resp in place. It is the
// wire.Responder handler; the responder layer has already suppressed
// duplicates, so every call here executes exactly once, and resp arrives
// with Kind/ID pre-set and recycled Data capacity (the zero-alloc path
// reads directly into it).
//
//edmlint:hotpath one Handle per served request
func (s *Server) Handle(m, resp *wire.Msg) {
	var start int64
	if s.cfg.NowNS != nil {
		start = s.cfg.NowNS()
	}
	mt := s.metrics
	if c := mt.Ops[m.Kind]; c != nil {
		c.Inc()
	}
	switch m.Kind {
	case wire.KindHello:
		resp.Data = append(resp.Data[:0], s.geoPayload...)
	case wire.KindBye:
	case wire.KindRREQ:
		if m.Count > wire.MaxData {
			resp.Status = wire.StatusRange
			break
		}
		resp.Data = grow(resp.Data, int(m.Count))
		lat, err := s.read(m.Addr, resp.Data)
		if err != nil {
			resp.Data = resp.Data[:0]
			resp.Status = statusOf(err)
			break
		}
		mt.BytesRead.Add(uint64(len(resp.Data)))
		mt.ModeledDRAMPS.Add(uint64(lat))
	case wire.KindWREQ:
		lat, err := s.write(m.Addr, m.Data)
		if err != nil {
			resp.Status = statusOf(err)
			break
		}
		mt.BytesWritten.Add(uint64(len(m.Data)))
		mt.ModeledDRAMPS.Add(uint64(lat))
	case wire.KindRMWREQ:
		result, lat, err := s.rmw(m.Addr, memctl.RMWOp(m.Op), m.Args)
		if err != nil {
			resp.Status = statusOf(err)
			break
		}
		mt.ModeledDRAMPS.Add(uint64(lat))
		resp.Data = grow(resp.Data, 8)
		binary.LittleEndian.PutUint64(resp.Data, result)
	default:
		resp.Kind = wire.KindByeAck
		resp.Status = wire.StatusProto
	}
	if resp.Status != wire.StatusOK {
		mt.Errors.Inc()
	}
	if s.cfg.NowNS != nil {
		dur := s.cfg.NowNS() - start
		if h := mt.Latency[m.Kind]; h != nil {
			h.Observe(dur)
		}
		if s.cfg.Trace != nil {
			var d uint64
			if dur > 0 {
				d = uint64(dur)
			}
			s.cfg.Trace.Record(uint64(m.ID), telemetry.StageServe, uint8(m.Kind), start, d)
		}
	}
}
